// Command rhythm-bench runs the measurement hot-path micro benchmarks
// (internal/benchmarks) through testing.Benchmark and writes the results as
// JSON — the BENCH_engine.json trajectory file `make bench` maintains.
//
// Output format (one object; "benchmarks" in fixed registry order):
//
//	{
//	  "schema": "rhythm-bench/v1",
//	  "goos": "linux", "goarch": "amd64", "cpus": 8,
//	  "benchmarks": [
//	    {"name": "EngineTick", "iters": 1234, "ns_per_op": 98765.4,
//	     "allocs_per_op": 3, "bytes_per_op": 512},
//	    ...
//	  ]
//	}
//
// ns_per_op is wall time and varies with the host; allocs_per_op and
// bytes_per_op are deterministic for a given build and are what the
// acceptance gates compare across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rhythm/internal/benchmarks"
)

type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Schema     string   `json:"schema"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []result `json:"benchmarks"`
}

// registry fixes the benchmark order so successive BENCH_engine.json files
// diff cleanly.
var registry = []struct {
	name string
	fn   func(*testing.B)
}{
	{"TailTrackerAdd", benchmarks.TailTrackerAdd},
	{"TailTrackerAddP99", benchmarks.TailTrackerAddP99},
	{"EngineTick", benchmarks.EngineTick},
	{"PathP99", benchmarks.PathP99},
	{"ObsDisabled", benchmarks.ObsDisabled},
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output file (- for stdout)")
	flag.Parse()

	rep := report{
		Schema: "rhythm-bench/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	for _, entry := range registry {
		r := testing.Benchmark(entry.fn)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:        entry.name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-20s %10d iters  %12.1f ns/op  %6d allocs/op  %8d B/op\n",
			entry.name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rhythm-bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rhythm-bench:", err)
		os.Exit(1)
	}
}
