// Command rhythm-bench runs the measurement hot-path micro benchmarks
// (internal/benchmarks) through testing.Benchmark and writes the results as
// JSON — the BENCH_engine.json trajectory file `make bench` maintains.
//
// Output format (one object; "benchmarks" in fixed registry order):
//
//	{
//	  "schema": "rhythm-bench/v1",
//	  "goos": "linux", "goarch": "amd64", "cpus": 8,
//	  "benchmarks": [
//	    {"name": "EngineTick", "iters": 1234, "ns_per_op": 98765.4,
//	     "allocs_per_op": 3, "bytes_per_op": 512},
//	    ...
//	  ]
//	}
//
// ns_per_op is wall time and varies with the host; allocs_per_op and
// bytes_per_op are deterministic for a given build and are what the
// acceptance gates compare across PRs. Benchmarks that call
// b.ReportMetric also carry an "extras" object (FleetTick reports
// "machines/s", the fleet-scale throughput gate).
//
// Diff mode:
//
//	rhythm-bench -compare old.json new.json
//
// prints a per-benchmark table of ns/op, allocs/op and B/op deltas (signed,
// with percentages) between two report files — `make bench-compare` wires
// it to a saved baseline. Comparison is by benchmark name, so reordered or
// partially overlapping reports still line up; benchmarks present in only
// one file are listed as added/removed. Plain -compare only reads and
// reports; adding -gate makes it exit non-zero when a gated row
// (EngineTick, FleetTick) regresses more than 25% ns/op — the blocking
// drift check `make bench-gate` and CI's quick-bench job run. The other
// rows stay informational at any drift.
//
// -jobs caps GOMAXPROCS for the benchmarked operations, sharing the
// fleet-wide default and validation path (internal/cliflags) with the
// other rhythm binaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"text/tabwriter"

	"rhythm/internal/benchmarks"
	"rhythm/internal/cliflags"
)

type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Extras carries custom b.ReportMetric values (FleetTick's
	// machines/s throughput); omitted for benchmarks that report none.
	Extras map[string]float64 `json:"extras,omitempty"`
}

type report struct {
	Schema     string   `json:"schema"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []result `json:"benchmarks"`
}

// registry fixes the benchmark order so successive BENCH_engine.json files
// diff cleanly.
var registry = []struct {
	name string
	fn   func(*testing.B)
}{
	{"TailTrackerAdd", benchmarks.TailTrackerAdd},
	{"TailTrackerAddP99", benchmarks.TailTrackerAddP99},
	{"EngineTick", benchmarks.EngineTick},
	{"EngineTickDemand", benchmarks.EngineTickDemand},
	{"EngineTickInflation", benchmarks.EngineTickInflation},
	{"EngineTickSojourn", benchmarks.EngineTickSojourn},
	{"EngineTickSample", benchmarks.EngineTickSample},
	{"FleetTick", benchmarks.FleetTick},
	{"PathP99", benchmarks.PathP99},
	{"ObsDisabled", benchmarks.ObsDisabled},
}

// gated are the benchmarks -gate blocks on: the two acceptance-gate rows
// every PR pins (the engine hot tick and the fleet epoch). The remaining
// rows — sub-passes, trackers, obs — are attribution aids and stay
// informational, so a noisy CI host can't fail a build over a benchmark
// nobody gates on.
var gated = map[string]bool{"EngineTick": true, "FleetTick": true}

// gateTolerance is the fractional ns/op regression -gate tolerates on a
// gated row before failing (wall time on shared CI runners is noisy; 25%
// is far outside the observed jitter but well inside a real regression
// from an accidental hot-path allocation).
const gateTolerance = 0.25

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable argv and streams so flag handling is
// table-testable: usage errors exit 2, runtime failures exit 1.
func realMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rhythm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_engine.json", "output file (- for stdout)")
	compare := fs.Bool("compare", false, "compare two report files: rhythm-bench -compare old.json new.json")
	gate := fs.Bool("gate", false, "with -compare: fail when a gated benchmark (EngineTick, FleetTick) regresses more than 25% ns/op")
	var common cliflags.Common
	common.RegisterJobs(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if err := common.Validate(); err != nil {
		fmt.Fprintf(stderr, "rhythm-bench: %v\n", err)
		return 2
	}
	// Benchmarks time single operations; -jobs caps the P they run under
	// (GOMAXPROCS) so a shared CI host can pin the parallelism.
	runtime.GOMAXPROCS(common.Jobs)

	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "usage: rhythm-bench -compare old.json new.json")
			return 2
		}
		if err := compareReports(fs.Arg(0), fs.Arg(1), *gate, stdout); err != nil {
			fmt.Fprintln(stderr, "rhythm-bench:", err)
			return 1
		}
		return 0
	}

	rep := report{
		Schema: "rhythm-bench/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	for _, entry := range registry {
		r := testing.Benchmark(entry.fn)
		res := result{
			Name:        entry.name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extras = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extras[k] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(stderr, "%-20s %10d iters  %12.1f ns/op  %6d allocs/op  %8d B/op\n",
			entry.name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "rhythm-bench:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "-" {
		if _, err := stdout.Write(enc); err != nil {
			fmt.Fprintln(stderr, "rhythm-bench:", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(stderr, "rhythm-bench:", err)
		return 1
	}
	return 0
}

func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Schema != "rhythm-bench/v1" {
		return nil, fmt.Errorf("%s: unsupported schema %q", path, rep.Schema)
	}
	return &rep, nil
}

// delta formats a signed absolute change with its percentage, or "=" when
// nothing moved; the percent is omitted when the old value is zero.
func delta(old, new float64, format string) string {
	if old == new {
		return "="
	}
	d := new - old
	if old == 0 {
		return fmt.Sprintf("%+"+format, d)
	}
	return fmt.Sprintf("%+"+format+" (%+.1f%%)", d, 100*d/old)
}

// compareReports prints the per-benchmark drift between two report files.
// It matches benchmarks by name so partially overlapping registries still
// line up, and lists additions/removals explicitly. With gate set it
// returns an error — after printing the full table — when any gated
// benchmark's ns/op regressed beyond gateTolerance.
func compareReports(oldPath, newPath string, gate bool, w io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]result, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Name] = r
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tΔ ns/op\tΔ allocs/op\tΔ B/op\n")
	seen := make(map[string]bool, len(newRep.Benchmarks))
	var violations []string
	for _, n := range newRep.Benchmarks {
		seen[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.1f\t(added)\t%d\t%d\n",
				n.Name, n.NsPerOp, n.AllocsPerOp, n.BytesPerOp)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%s\t%s\n",
			n.Name, o.NsPerOp, n.NsPerOp,
			delta(o.NsPerOp, n.NsPerOp, ".1f"),
			delta(float64(o.AllocsPerOp), float64(n.AllocsPerOp), ".0f"),
			delta(float64(o.BytesPerOp), float64(n.BytesPerOp), ".0f"))
		if gate && gated[n.Name] && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+gateTolerance) {
			violations = append(violations, fmt.Sprintf("%s regressed %.1f -> %.1f ns/op (%+.1f%%, gate %.0f%%)",
				n.Name, o.NsPerOp, n.NsPerOp, 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp, 100*gateTolerance))
		}
	}
	for _, o := range oldRep.Benchmarks {
		if !seen[o.Name] {
			fmt.Fprintf(tw, "%s\t%.1f\t-\t(removed)\t\t\n", o.Name, o.NsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("gate: %s", strings.Join(violations, "; "))
	}
	return nil
}
