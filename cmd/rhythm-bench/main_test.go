package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fmtFloat renders a benchmark ns/op value as a JSON number.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareReports(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", `{
  "schema": "rhythm-bench/v1", "goos": "linux", "goarch": "amd64", "cpus": 1,
  "benchmarks": [
    {"name": "PathP99", "iters": 100, "ns_per_op": 300000, "allocs_per_op": 0, "bytes_per_op": 2},
    {"name": "Gone", "iters": 10, "ns_per_op": 50, "allocs_per_op": 1, "bytes_per_op": 8}
  ]
}`)
	new := writeReport(t, dir, "new.json", `{
  "schema": "rhythm-bench/v1", "goos": "linux", "goarch": "amd64", "cpus": 1,
  "benchmarks": [
    {"name": "PathP99", "iters": 200, "ns_per_op": 150000, "allocs_per_op": 0, "bytes_per_op": 0},
    {"name": "Fresh", "iters": 10, "ns_per_op": 75, "allocs_per_op": 2, "bytes_per_op": 16}
  ]
}`)

	var sb strings.Builder
	if err := compareReports(old, new, false, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"PathP99", "-150000.0", "(-50.0%)", // ns/op halved, signed with percent
		"-2",        // bytes went 2 -> 0
		"(added)",   // Fresh only in new
		"(removed)", // Gone only in old
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
	// allocs unchanged for PathP99: rendered as bare "=" cell.
	if !strings.Contains(out, "=") {
		t.Fatalf("unchanged metric not rendered as '=':\n%s", out)
	}
}

// TestFlagBehavior pins the shared cliflags contract in this binary:
// -jobs validates through the same path (same message) as cmd/rhythm,
// and -compare usage errors exit 2.
func TestFlagBehavior(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-jobs", "0", "-compare"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-jobs 0: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-jobs must be at least 1, got 0") {
		t.Fatalf("jobs diagnostic: %s", stderr.String())
	}
	stderr.Reset()
	if code := realMain([]string{"-compare", "only-one.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-compare with one arg: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: rhythm-bench -compare") {
		t.Fatalf("compare usage diagnostic: %s", stderr.String())
	}
	stderr.Reset()
	if code := realMain([]string{"-compare", "nope-a.json", "nope-b.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-compare with missing files: exit %d, want 1", code)
	}
}

func TestCompareReportsBadSchema(t *testing.T) {
	dir := t.TempDir()
	bad := writeReport(t, dir, "bad.json", `{"schema": "other/v9"}`)
	good := writeReport(t, dir, "good.json", `{"schema": "rhythm-bench/v1"}`)
	var sb strings.Builder
	if err := compareReports(bad, good, false, &sb); err == nil {
		t.Fatal("expected schema error")
	}
}

// TestCompareGate pins the blocking-drift contract: with gate set, a >25%
// ns/op regression on a gated row (EngineTick, FleetTick) fails after the
// table prints, while any drift on a non-gated row — and regressions
// within tolerance — pass.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", `{
  "schema": "rhythm-bench/v1", "goos": "linux", "goarch": "amd64", "cpus": 1,
  "benchmarks": [
    {"name": "EngineTick", "iters": 100, "ns_per_op": 10000, "allocs_per_op": 0, "bytes_per_op": 0},
    {"name": "FleetTick", "iters": 100, "ns_per_op": 8000000, "allocs_per_op": 9, "bytes_per_op": 512},
    {"name": "TailTrackerAddP99", "iters": 100, "ns_per_op": 1000, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`)
	cases := []struct {
		name     string
		engineNs float64
		trackNs  float64
		wantFail bool
	}{
		{"regression past tolerance fails", 13000, 1000, true},
		{"regression within tolerance passes", 12000, 1000, false},
		{"non-gated row may drift freely", 10000, 90000, false},
		{"improvement passes", 5000, 1000, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			new := writeReport(t, dir, "new.json", `{
  "schema": "rhythm-bench/v1", "goos": "linux", "goarch": "amd64", "cpus": 1,
  "benchmarks": [
    {"name": "EngineTick", "iters": 100, "ns_per_op": `+fmtFloat(tc.engineNs)+`, "allocs_per_op": 0, "bytes_per_op": 0},
    {"name": "FleetTick", "iters": 100, "ns_per_op": 8000000, "allocs_per_op": 9, "bytes_per_op": 512},
    {"name": "TailTrackerAddP99", "iters": 100, "ns_per_op": `+fmtFloat(tc.trackNs)+`, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`)
			var sb strings.Builder
			err := compareReports(old, new, true, &sb)
			if tc.wantFail && err == nil {
				t.Fatalf("gate passed a >25%% EngineTick regression:\n%s", sb.String())
			}
			if !tc.wantFail && err != nil {
				t.Fatalf("gate failed unexpectedly: %v\n%s", err, sb.String())
			}
			if tc.wantFail && !strings.Contains(err.Error(), "EngineTick") {
				t.Fatalf("gate error does not name the regressed row: %v", err)
			}
			// The drift table must print even when the gate trips.
			if !strings.Contains(sb.String(), "EngineTick") {
				t.Fatalf("table missing from gated compare:\n%s", sb.String())
			}
			// Without gate the same reports always pass.
			sb.Reset()
			if err := compareReports(old, new, false, &sb); err != nil {
				t.Fatalf("ungated compare failed: %v", err)
			}
		})
	}
}
