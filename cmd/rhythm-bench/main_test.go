package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareReports(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", `{
  "schema": "rhythm-bench/v1", "goos": "linux", "goarch": "amd64", "cpus": 1,
  "benchmarks": [
    {"name": "PathP99", "iters": 100, "ns_per_op": 300000, "allocs_per_op": 0, "bytes_per_op": 2},
    {"name": "Gone", "iters": 10, "ns_per_op": 50, "allocs_per_op": 1, "bytes_per_op": 8}
  ]
}`)
	new := writeReport(t, dir, "new.json", `{
  "schema": "rhythm-bench/v1", "goos": "linux", "goarch": "amd64", "cpus": 1,
  "benchmarks": [
    {"name": "PathP99", "iters": 200, "ns_per_op": 150000, "allocs_per_op": 0, "bytes_per_op": 0},
    {"name": "Fresh", "iters": 10, "ns_per_op": 75, "allocs_per_op": 2, "bytes_per_op": 16}
  ]
}`)

	var sb strings.Builder
	if err := compareReports(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"PathP99", "-150000.0", "(-50.0%)", // ns/op halved, signed with percent
		"-2",        // bytes went 2 -> 0
		"(added)",   // Fresh only in new
		"(removed)", // Gone only in old
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
	// allocs unchanged for PathP99: rendered as bare "=" cell.
	if !strings.Contains(out, "=") {
		t.Fatalf("unchanged metric not rendered as '=':\n%s", out)
	}
}

// TestFlagBehavior pins the shared cliflags contract in this binary:
// -jobs validates through the same path (same message) as cmd/rhythm,
// and -compare usage errors exit 2.
func TestFlagBehavior(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-jobs", "0", "-compare"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-jobs 0: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-jobs must be at least 1, got 0") {
		t.Fatalf("jobs diagnostic: %s", stderr.String())
	}
	stderr.Reset()
	if code := realMain([]string{"-compare", "only-one.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-compare with one arg: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: rhythm-bench -compare") {
		t.Fatalf("compare usage diagnostic: %s", stderr.String())
	}
	stderr.Reset()
	if code := realMain([]string{"-compare", "nope-a.json", "nope-b.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-compare with missing files: exit %d, want 1", code)
	}
}

func TestCompareReportsBadSchema(t *testing.T) {
	dir := t.TempDir()
	bad := writeReport(t, dir, "bad.json", `{"schema": "other/v9"}`)
	good := writeReport(t, dir, "good.json", `{"schema": "rhythm-bench/v1"}`)
	var sb strings.Builder
	if err := compareReports(bad, good, &sb); err == nil {
		t.Fatal("expected schema error")
	}
}
