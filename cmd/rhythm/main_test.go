package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArgValidation is the table test for CLI flag/argument validation:
// usage errors must exit 2 with a clear diagnostic before any experiment
// work starts, and the cheap informational commands must succeed. No case
// here runs an actual experiment, so the table stays fast.
func TestArgValidation(t *testing.T) {
	cases := []struct {
		name     string
		argv     []string
		wantCode int
		wantErr  string // substring expected on stderr ("" = none checked)
	}{
		{"no args", []string{}, 2, "usage:"},
		{"unknown command", []string{"frobnicate"}, 2, `unknown command "frobnicate"`},
		{"unknown flag", []string{"-no-such-flag", "list"}, 2, ""},
		{"jobs zero", []string{"-jobs", "0", "list"}, 2, "-jobs must be at least 1, got 0"},
		{"jobs negative", []string{"-jobs", "-3", "list"}, 2, "-jobs must be at least 1, got -3"},
		{"jobs non-numeric", []string{"-jobs", "many", "list"}, 2, ""},
		{"run without ids", []string{"run"}, 2, "run needs experiment ids"},
		{"run unknown id", []string{"run", "fig999"}, 2, "fig999"},
		{"run unknown id hint", []string{"run", "no-such-figure"}, 2, "rhythm list"},
		{"run mixed known and unknown", []string{"run", "fig2", "bogus"}, 2, "bogus"},
		{"bad trace format", []string{"-trace-format", "xml", "list"}, 2,
			"-trace-format must be jsonl or chrome"},
		{"bad faults preset", []string{"-faults", "no-such-storm", "list"}, 2, "-faults:"},
		{"trace without id", []string{"trace"}, 2, "trace needs exactly one experiment id"},
		{"trace two ids", []string{"trace", "fig2", "fig3"}, 2,
			"trace needs exactly one experiment id"},
		{"trace unknown id", []string{"trace", "fig999"}, 2, "fig999"},
		{"calibrate without artifact", []string{"calibrate"}, 2,
			"calibrate needs -observed"},
		{"calibrate two artifacts", []string{"calibrate", "a.prom", "b.prom"}, 2,
			"one observed artifact"},
		{"calibrate with metrics-out", []string{"-metrics-out", "m.prom", "calibrate", "a.prom"}, 2,
			"cannot be combined"},
		{"calibrate with trace-out", []string{"-trace-out", "t.jsonl", "calibrate", "a.prom"}, 2,
			"cannot be combined"},
		{"calibrate missing file", []string{"calibrate", "no-such-artifact.prom"}, 1, ""},
		{"list ok", []string{"list"}, 0, ""},
		{"catalog ok", []string{"catalog"}, 0, ""},
		{"profile missing arg", []string{"profile"}, 1, "profile needs exactly one service name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := realMain(tc.argv, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("argv %q: exit %d, want %d (stderr: %s)",
					tc.argv, code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("argv %q: stderr %q does not contain %q",
					tc.argv, stderr.String(), tc.wantErr)
			}
			if tc.wantCode == 0 && stdout.Len() == 0 {
				t.Fatalf("argv %q: successful command produced no output", tc.argv)
			}
		})
	}
}

// TestValidateRunIDsAcceptsRegistry: every registered id and the "all"
// alias must pass validation.
func TestValidateRunIDsAcceptsRegistry(t *testing.T) {
	var stderr bytes.Buffer
	if code := validateRunIDs([]string{"all"}, &stderr); code != 0 {
		t.Fatalf(`"all" rejected: %s`, stderr.String())
	}
	if code := validateRunIDs([]string{"fig2", "fig17", "tab1"}, &stderr); code != 0 {
		t.Fatalf("registered ids rejected: %s", stderr.String())
	}
	// Scenario experiments are runnable by id even though `run all`
	// excludes them (the golden stdout must not change).
	if code := validateRunIDs([]string{"resilience"}, &stderr); code != 0 {
		t.Fatalf("resilience rejected: %s", stderr.String())
	}
}

// TestListIncludesScenarios: `rhythm list` advertises the on-demand
// scenarios after the paper experiments, so resilience is discoverable.
func TestListIncludesScenarios(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list failed: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "resilience") {
		t.Fatalf("list does not mention resilience:\n%s", stdout.String())
	}
}

// TestScenarioSubcommand covers the scenario subcommand's usage surface:
// validation mode over good and bad files, missing-file usage errors,
// and the `run scenario` guard when no spec is loaded. No case runs a
// real experiment.
func TestScenarioSubcommand(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	goodBody := `{"version": 1, "name": "cli-test",
	  "service": {"catalog": "Redis"},
	  "run": {"baseline_load": 0.5, "duration_s": 20},
	  "clients": [{"class": "all", "rate_fraction": 1, "arrival": {"process": "constant"}}]}`
	if err := os.WriteFile(good, []byte(goodBody), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 7, "name": ""}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		argv     []string
		wantCode int
		wantOut  string // substring expected on stdout
		wantErr  string // substring expected on stderr
	}{
		{"no file", []string{"scenario"}, 2, "", "needs exactly one spec file"},
		{"two files", []string{"scenario", good, good}, 2, "", "needs exactly one spec file"},
		{"validate no files", []string{"scenario", "-validate"}, 2, "", "at least one spec file"},
		{"validate good", []string{"scenario", "-validate", good}, 0, "ok: " + good, ""},
		{"validate bad", []string{"scenario", "-validate", bad}, 1, "invalid: " + bad, "1 of 1 spec files invalid"},
		{"validate mixed", []string{"scenario", "-validate", good, bad}, 1, "ok: " + good, "1 of 2 spec files invalid"},
		{"validate missing file", []string{"scenario", "-validate", filepath.Join(dir, "nope.json")}, 1, "invalid:", ""},
		{"run scenario without spec", []string{"run", "scenario"}, 2, "", "needs -scenario"},
		{"bad -scenario flag", []string{"-scenario", bad, "list"}, 2, "", "-scenario:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := realMain(tc.argv, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("argv %q: exit %d, want %d (stderr: %s)",
					tc.argv, code, tc.wantCode, stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Fatalf("argv %q: stdout %q does not contain %q",
					tc.argv, stdout.String(), tc.wantOut)
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("argv %q: stderr %q does not contain %q",
					tc.argv, stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestListIncludesScenarioExperiment: the scenario experiment family is
// discoverable from `rhythm list` alongside resilience.
func TestListIncludesScenarioExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list failed: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "scenario") {
		t.Fatalf("list does not mention the scenario experiment:\n%s", stdout.String())
	}
}

// TestCalibrateSelfFixedPoint is the CLI-level fixed-point contract: a
// run's exported metrics snapshot, fed back through `rhythm calibrate`,
// must validate with zero breaches. fig2 is analytic, so the whole loop
// is cheap enough for the unit suite; CI repeats it as a smoke job.
func TestCalibrateSelfFixedPoint(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "m.prom")

	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-quick", "-seed", "2020", "-metrics-out", mpath, "run", "fig2"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("export run failed (%d): %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = realMain([]string{"-quick", "-seed", "2020", "calibrate", "-observed", mpath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-calibration exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "calibration: PASS") {
		t.Fatalf("missing PASS verdict:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "re-ran fig2") {
		t.Fatalf("summary line missing:\n%s", stderr.String())
	}

	// A -report sidecar must be valid JSON with the same verdict, and the
	// -fit pass must converge at the fixed point (identity transform).
	rpath := filepath.Join(dir, "report.json")
	stdout.Reset()
	stderr.Reset()
	code = realMain([]string{"-quick", "-seed", "2020", "calibrate", "-fit", "-report", rpath, mpath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("calibrate -fit exit %d: %s", code, stderr.String())
	}
	body, err := os.ReadFile(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"pass": true`) {
		t.Fatalf("report sidecar lacks pass verdict:\n%s", body)
	}
}

// TestCalibrateRejectsForeignArtifacts: artifacts that carry no
// rhythm experiment ids, or ids this binary cannot re-run, exit 1 with a
// pointed diagnostic rather than silently passing an empty comparison.
func TestCalibrateRejectsForeignArtifacts(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.prom")
	if err := os.WriteFile(empty, []byte("# TYPE foreign_total counter\nforeign_total 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	unknown := filepath.Join(dir, "unknown.prom")
	if err := os.WriteFile(unknown,
		[]byte("# TYPE rhythm_experiments_total counter\nrhythm_experiments_total{id=\"fig999\"} 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"calibrate", empty}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty artifact exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no rhythm_experiments_total series") {
		t.Fatalf("missing re-export hint:\n%s", stderr.String())
	}

	stderr.Reset()
	if code := realMain([]string{"calibrate", unknown}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown id exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fig999") {
		t.Fatalf("diagnostic does not name the unknown id:\n%s", stderr.String())
	}
}
