package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"rhythm/internal/calibration"
	"rhythm/internal/cliflags"
	"rhythm/internal/experiments"
	"rhythm/internal/obs"
)

// runCalibrate executes `rhythm calibrate -observed <artifact>`: it reads
// an exported artifact back (Prometheus snapshot or JSONL trace), learns
// from its rhythm_experiments_total series which experiments produced it,
// re-runs exactly those on a private observability bus, and compares the
// fresh prediction against the observed series under the default
// tolerance rules. The scorecard goes to stdout (and as JSON to -report);
// the exit code is 0 only when every matched series is within tolerance.
//
// The global -quick/-seed/-faults flags must match the run that produced
// the artifact — calibrating a -seed 2020 export with -seed 7 measures
// the seed difference, not simulator drift. With matching flags the
// comparison is a fixed point: the simulator is deterministic, so
// calibrating against its own export passes with zero breaches (the CI
// calibration-smoke job pins this).
func runCalibrate(ctx *experiments.Context, cf cliflags.Calibrate, haveScenario bool, stdout io.Writer, stderr io.Writer) int {
	observed, err := calibration.ImportFile(cf.Observed)
	if err != nil {
		fmt.Fprintf(stderr, "rhythm: calibrate: %s:\n%v\n", cf.Observed, err)
		return 1
	}
	ids := calibration.ExperimentIDs(observed)
	if len(ids) == 0 {
		fmt.Fprintf(stderr, "rhythm: calibrate: %s carries no rhythm_experiments_total series, so there is nothing to re-run; re-export it with `rhythm run <ids> -metrics-out` or `rhythm trace <id>` from this build\n",
			cf.Observed)
		return 1
	}
	for _, id := range ids {
		if _, err := experiments.Get(id); err != nil {
			fmt.Fprintf(stderr, "rhythm: calibrate: artifact names %v (run \"rhythm list\" for the registry)\n", err)
			return 1
		}
		if id == "scenario" && !haveScenario {
			fmt.Fprintln(stderr, "rhythm: calibrate: the artifact was produced by the scenario experiment; pass the same -scenario <spec-file>")
			return 2
		}
	}

	// Predict on a private bus: installed only for the re-run so the
	// prediction carries exactly the instruments the original run carried.
	bus := obs.NewBus()
	obs.Install(bus)
	results := ctx.RunAll(ids, 0)
	obs.Uninstall()
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(stderr, "rhythm: calibrate: re-running %s: %v\n", res.ID, res.Err)
			return 1
		}
	}
	predicted := calibration.Snapshot(bus)

	rep := calibration.Compare(predicted, observed, calibration.DefaultRules())
	if cf.Fit {
		fit, err := calibration.FitReport(predicted, observed)
		if err != nil {
			fmt.Fprintf(stderr, "rhythm: calibrate: %v\n", err)
			return 1
		}
		rep.Fit = fit
	}

	fmt.Fprintf(stderr, "calibrate: re-ran %s against %s (%d observed series, %d predicted)\n",
		strings.Join(ids, ", "), cf.Observed, observed.Len(), predicted.Len())
	if err := rep.WriteText(stdout); err != nil {
		fmt.Fprintf(stderr, "rhythm: calibrate: %v\n", err)
		return 1
	}
	if cf.Report != "" {
		if err := writeJSONReport(rep, cf.Report); err != nil {
			fmt.Fprintf(stderr, "rhythm: calibrate: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "calibration report -> %s\n", cf.Report)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// writeJSONReport writes the machine-readable scorecard.
func writeJSONReport(rep *calibration.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
