// Command rhythm is the CLI for the Rhythm reproduction: it lists and runs
// the paper's evaluation experiments, profiles LC services, replays
// experiments with full decision traces, and prints the workload catalog.
//
// Usage:
//
//	rhythm list                     # registered experiments
//	rhythm run <experiment> [...]   # regenerate tables/figures (or "all")
//	rhythm trace <experiment>       # replay one experiment with decision traces
//	rhythm profile <service>        # offline profiling of one LC service
//	rhythm catalog                  # Table 1 workloads and BE jobs
//	rhythm scenario <spec-file>     # run a workload-spec scenario (SCENARIOS.md)
//	rhythm scenario -validate <spec-file>...  # check spec files end to end
//	rhythm calibrate -observed F    # validate a fresh run against an exported
//	                                # metrics snapshot or trace (-fit tunes
//	                                # workload corrections; DESIGN.md §13)
//
// Flags:
//
//	-quick        run at reduced scale (default true; -quick=false for the
//	              full evaluation scale)
//	-seed N       RNG seed (default 2020)
//	-jobs N       parallel worker count (default runtime.NumCPU(); 1 runs
//	              serially; 0 or negative is a usage error). Tables are
//	              byte-identical for every N — only wall-clock time
//	              changes. Tables go to stdout; timing, speedup and
//	              profile-cache statistics go to stderr, so redirected
//	              output is stable across worker counts.
//	-trace-out F  write the observability event stream to F (controller
//	              decisions with load/slack/action/reason, engine ticks,
//	              BE lifecycle, cache lookups, pool dispatches). Tracing
//	              never changes stdout: tables stay byte-identical.
//	-trace-format jsonl | chrome (default jsonl). chrome emits Chrome
//	              trace_event JSON for chrome://tracing / ui.perfetto.dev.
//	-metrics-out F  write a Prometheus text-format snapshot of the
//	              counters/gauges/histograms accumulated during the run.
//	-faults X     inject a deterministic fault schedule into every run:
//	              a canned preset (surges, storm, chaos) or a JSON
//	              schedule file. Unset (the default) leaves every table
//	              bit-frozen on its golden output.
//	-scenario F   load the workload-spec file F (SCENARIOS.md format) for
//	              the on-demand scenario experiment (`run scenario`).
//	              The scenario family is excluded from `run all`, so the
//	              golden evaluation output never depends on this flag.
//	-fleet P      fleet-size preset (fleet4, fleet100, fleet1000) for the
//	              on-demand fleet experiment (`run fleet`; default
//	              fleet100). Like scenario, the fleet family is excluded
//	              from `run all`.
//	-policy P     candidate policy for the scenario experiment, resolved
//	              through the controller registry (rhythm, heracles, none,
//	              predictive, scoring, rack-central, plus anything
//	              registered via the facade). Overrides the spec's
//	              `policy` field; unknown names are usage errors listing
//	              the registry. The tournament experiment (`run
//	              tournament`) always runs every registered policy.
//
// Exit codes: 0 on success, 1 when an experiment or profile fails while
// running, 2 for usage errors (unknown command or experiment id, missing
// arguments, invalid flag values).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cliflags"
	"rhythm/internal/core"
	"rhythm/internal/experiments"
	"rhythm/internal/obs"
	"rhythm/internal/profiler"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable argv and streams so that flag/argument
// validation — including exit codes — is table-testable. Usage errors
// (bad flags, unknown commands or experiment ids, invalid trace formats)
// return 2 before any experiment work starts; runtime failures return 1.
func realMain(argv []string, stdout, rawStderr io.Writer) int {
	// All diagnostic output funnels through one mutex-guarded writer so
	// lines from parallel workers and sinks never interleave mid-line
	// (tables on stdout are unaffected).
	stderr := obs.NewSyncWriter(rawStderr)

	fs := flag.NewFlagSet("rhythm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var common cliflags.Common
	var traceFlags cliflags.Trace
	var faultFlags cliflags.Faults
	var scenFlags cliflags.Scenario
	var fleetFlags cliflags.Fleet
	var policyFlags cliflags.Policy
	common.Register(fs)
	traceFlags.Register(fs)
	faultFlags.Register(fs)
	scenFlags.Register(fs)
	fleetFlags.Register(fs)
	policyFlags.Register(fs)
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if len(args) == 0 {
		usage(fs, stderr)
		return 2
	}
	// The shared validation path (internal/cliflags) rejects -jobs < 1
	// and unknown trace formats with the same messages in every binary.
	for _, err := range []error{common.Validate(), traceFlags.Validate(), fleetFlags.Validate(), policyFlags.Validate()} {
		if err != nil {
			fmt.Fprintf(stderr, "rhythm: %v\n", err)
			return 2
		}
	}
	sched, err := faultFlags.Resolve(common.Seed, 0)
	if err != nil {
		fmt.Fprintf(stderr, "rhythm: %v\n", err)
		return 2
	}

	// The scenario subcommand: `rhythm scenario -validate <file>...`
	// checks spec files end to end and exits; `rhythm scenario <file>`
	// runs the scenario experiment on the file, shorthand for
	// `rhythm -scenario <file> run scenario`.
	if args[0] == "scenario" {
		sub := flag.NewFlagSet("rhythm scenario", flag.ContinueOnError)
		sub.SetOutput(stderr)
		validate := sub.Bool("validate", false, "validate the spec files and exit")
		sub.Usage = func() {
			fmt.Fprintln(stderr, "usage: rhythm scenario [-validate] <spec-file>...")
			sub.PrintDefaults()
		}
		if err := sub.Parse(args[1:]); err != nil {
			return 2
		}
		files := sub.Args()
		if *validate {
			if len(files) == 0 {
				fmt.Fprintln(stderr, "rhythm: scenario -validate needs at least one spec file")
				return 2
			}
			return validateScenarios(files, common.Seed, stdout, stderr)
		}
		switch {
		case len(files) == 1 && scenFlags.Path == "":
			scenFlags.Path = files[0]
		case len(files) == 0 && scenFlags.Path != "":
			// -scenario carried the file.
		default:
			fmt.Fprintln(stderr, "rhythm: scenario needs exactly one spec file (positional or -scenario)")
			return 2
		}
		args = []string{"run", "scenario"}
	}
	spec, err := scenFlags.Resolve()
	if err != nil {
		fmt.Fprintf(stderr, "rhythm: %v\n", err)
		return 2
	}

	// The calibrate subcommand closes the observability loop: it reads an
	// exported artifact back and validates a fresh run against it
	// (cmd/rhythm/calibrate.go). It installs its own private bus for the
	// re-run, so combining it with the global trace/metrics flags is a
	// usage error rather than a silently shared bus.
	var calFlags cliflags.Calibrate
	if args[0] == "calibrate" {
		sub := flag.NewFlagSet("rhythm calibrate", flag.ContinueOnError)
		sub.SetOutput(stderr)
		calFlags.Register(sub)
		sub.Usage = func() {
			fmt.Fprintln(stderr, "usage: rhythm [flags] calibrate -observed <metrics.prom|trace.jsonl> [-fit] [-report out.json]")
			sub.PrintDefaults()
		}
		if err := sub.Parse(args[1:]); err != nil {
			return 2
		}
		rest := sub.Args()
		switch {
		case len(rest) == 1 && calFlags.Observed == "":
			calFlags.Observed = rest[0] // positional artifact shorthand
		case len(rest) == 0:
		default:
			fmt.Fprintln(stderr, "rhythm: calibrate takes one observed artifact (positional or -observed)")
			return 2
		}
		if err := calFlags.Validate(); err != nil {
			fmt.Fprintf(stderr, "rhythm: %v\n", err)
			return 2
		}
		if traceFlags.Out != "" || traceFlags.MetricsOut != "" {
			fmt.Fprintln(stderr, "rhythm: calibrate re-runs experiments on a private bus; it cannot be combined with -trace-out or -metrics-out")
			return 2
		}
	}

	// The trace subcommand is `run` for a single experiment with the bus
	// forced on: default the trace file from the experiment id when the
	// flag was not given.
	tracing := args[0] == "trace"
	if tracing {
		if len(args) != 2 {
			fmt.Fprintln(stderr, "rhythm: trace needs exactly one experiment id")
			return 2
		}
		if _, err := experiments.Get(args[1]); err != nil {
			fmt.Fprintf(stderr, "rhythm: %v (run \"rhythm list\" for the registry)\n", err)
			return 2
		}
		if traceFlags.Out == "" {
			ext := ".trace.jsonl"
			if traceFlags.Format == cliflags.FormatChrome {
				ext = ".trace.json"
			}
			traceFlags.Out = args[1] + ext
		}
	}

	bus, finish, code := setupObs(traceFlags.Out, traceFlags.Format, traceFlags.MetricsOut, stderr)
	if code != 0 {
		return code
	}
	defer finish()

	ctx := experiments.NewContext(experiments.Options{
		Quick: common.Quick, Seed: common.Seed, Jobs: common.Jobs, Faults: sched,
		Scenario: spec, Fleet: fleetFlags.Preset, Policy: policyFlags.Name,
	})
	switch args[0] {
	case "list":
		err = list(stdout)
	case "run":
		ids := args[1:]
		if code := validateRunIDs(ids, stderr); code != 0 {
			return code
		}
		for _, id := range ids {
			if id == "scenario" && spec == nil {
				fmt.Fprintln(stderr, "rhythm: the scenario experiment needs -scenario <spec-file>")
				return 2
			}
		}
		err = run(ctx, ids, stdout, stderr)
	case "trace":
		err = run(ctx, args[1:2], stdout, stderr)
		if err == nil {
			traceSummary(bus, traceFlags.Out, traceFlags.MetricsOut, stderr)
		}
	case "profile":
		err = profile(ctx, args[1:], stdout)
	case "calibrate":
		return runCalibrate(ctx, calFlags, spec != nil, stdout, stderr)
	case "catalog":
		err = catalog(stdout)
	default:
		fmt.Fprintf(stderr, "rhythm: unknown command %q\n", args[0])
		usage(fs, stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "rhythm:", err)
		return 1
	}
	return 0
}

// setupObs installs the observability bus when any of the trace/metrics
// flags ask for one. The returned finish closes sinks, writes the metrics
// snapshot and uninstalls the bus; it is safe to call when no bus was
// installed. A non-zero code reports a usage-level failure (unwritable
// output file).
func setupObs(traceOut, traceFormat, metricsOut string, stderr *obs.SyncWriter) (*obs.Bus, func(), int) {
	if traceOut == "" && metricsOut == "" {
		return nil, func() {}, 0
	}
	var sinks []obs.Sink
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "rhythm:", err)
			return nil, nil, 2
		}
		traceFile = f
		if traceFormat == "chrome" {
			sinks = append(sinks, obs.NewChromeSink(f))
		} else {
			sinks = append(sinks, obs.NewJSONLSink(f))
		}
	}
	bus := obs.NewBus(sinks...)
	obs.Install(bus)
	finish := func() {
		obs.Uninstall()
		if err := bus.Close(); err != nil {
			fmt.Fprintln(stderr, "rhythm: closing trace sink:", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fmt.Fprintln(stderr, "rhythm: closing trace file:", err)
			}
		}
		if metricsOut != "" {
			f, err := os.Create(metricsOut)
			if err != nil {
				fmt.Fprintln(stderr, "rhythm:", err)
				return
			}
			if err := bus.WriteMetrics(f); err != nil {
				fmt.Fprintln(stderr, "rhythm: writing metrics:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "rhythm: closing metrics file:", err)
			}
		}
	}
	return bus, finish, 0
}

// traceSummary prints what the trace captured: events by kind and the
// decision mix, so a replay is interpretable without opening the file.
func traceSummary(bus *obs.Bus, traceOut, metricsOut string, stderr *obs.SyncWriter) {
	counts := bus.EventCounts()
	kinds := make([]string, 0, len(counts))
	total := uint64(0)
	for k, n := range counts {
		kinds = append(kinds, k)
		total += n
	}
	sort.Strings(kinds)
	fmt.Fprintf(stderr, "\ntrace: %d events -> %s\n", total, traceOut)
	for _, k := range kinds {
		fmt.Fprintf(stderr, "  %-10s %d\n", k, counts[k])
	}
	if metricsOut != "" {
		fmt.Fprintf(stderr, "metrics snapshot -> %s\n", metricsOut)
	}
}

// validateRunIDs rejects a run invocation with no ids or with unknown
// experiment ids before any experiment starts; it returns 0 when ids are
// valid and the usage exit code otherwise.
func validateRunIDs(ids []string, stderr io.Writer) int {
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "rhythm: run needs experiment ids (or \"all\")")
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		return 0
	}
	for _, id := range ids {
		if _, err := experiments.Get(id); err != nil {
			fmt.Fprintf(stderr, "rhythm: %v (run \"rhythm list\" for the registry)\n", err)
			return 2
		}
	}
	return 0
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintf(stderr, `rhythm — EuroSys'20 Rhythm reproduction

usage:
  rhythm [flags] list
  rhythm [flags] run <experiment>... | all
  rhythm [flags] trace <experiment>
  rhythm [flags] profile <service>
  rhythm [flags] catalog
  rhythm [flags] scenario <spec-file>
  rhythm [flags] scenario -validate <spec-file>...
  rhythm [flags] calibrate -observed <metrics.prom|trace.jsonl> [-fit] [-report out.json]

flags:
`)
	fs.PrintDefaults()
}

func list(stdout io.Writer) error {
	for _, id := range append(experiments.IDs(), experiments.ScenarioIDs()...) {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-24s %s\n", e.ID, e.Title)
	}
	return nil
}

func run(ctx *experiments.Context, ids []string, stdout, stderr io.Writer) error {
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	results := ctx.RunAll(ids, 0)
	wall := time.Since(start)

	// Tables on stdout, in request order, regardless of completion order;
	// all timing on stderr so stdout is byte-identical for every -jobs.
	var compute time.Duration
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		fmt.Fprintln(stdout, res.Table)
		fmt.Fprintf(stderr, "(%s generated in %v)\n",
			res.ID, res.Elapsed.Round(time.Millisecond))
		compute += res.Elapsed
	}
	hits, misses := profiler.CacheStats()
	fmt.Fprintf(stderr,
		"\n%d experiments in %v wall (aggregate compute %v, speedup %.2fx, jobs=%d)\n",
		len(results), wall.Round(time.Millisecond), compute.Round(time.Millisecond),
		float64(compute)/float64(wall), sim.Jobs(ctx.Opts.Jobs))
	fmt.Fprintf(stderr, "profile cache: %d hits, %d misses\n", hits, misses)
	return nil
}

func profile(ctx *experiments.Context, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("profile needs exactly one service name")
	}
	sys, err := ctx.System(args[0])
	if err != nil {
		return err
	}
	printSystem(sys, stdout)
	return nil
}

func printSystem(sys *core.System, stdout io.Writer) {
	fmt.Fprintf(stdout, "service: %s (max load %.0f QPS)\n", sys.Service.Name, sys.Service.MaxLoadQPS)
	fmt.Fprintf(stdout, "derived SLA (worst solo p99 at max load): %.2f ms\n", sys.SLA*1000)
	fmt.Fprintf(stdout, "%-16s %12s %6s %6s %8s %10s %10s\n",
		"servpod", "contribution", "rho", "alpha", "weight", "loadlimit", "slacklimit")
	for _, c := range sys.Profile.Contributions {
		th := sys.Thresholds[c.Pod]
		fmt.Fprintf(stdout, "%-16s %12.3f %6.2f %6.2f %8.3f %10.2f %10.3f\n",
			c.Pod, c.Normalized, c.Rho, c.Alpha, c.Weight, th.Loadlimit, th.Slacklimit)
	}
}

// validateScenarios checks each workload-spec file end to end: decode +
// field validation (workload.LoadSpec), service materialization
// including the saturation checks (BuildService), the full arrival-mix
// build including trace-file reads (LoadPattern at the same substream a
// run would use), and the BE job mix. The per-file report goes to
// stdout; the exit code is 0 only when every file is valid.
func validateScenarios(files []string, seed uint64, stdout, stderr io.Writer) int {
	bad := 0
	for _, file := range files {
		err := func() error {
			spec, err := workload.LoadSpec(file)
			if err != nil {
				return err
			}
			svc, err := spec.BuildService()
			if err != nil {
				return err
			}
			if _, err := spec.LoadPattern(sim.SubSeed(seed, "scenario/"+spec.Name)); err != nil {
				return err
			}
			if _, err := spec.BETypes(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "ok: %s — scenario %q: service %s (%d components), %d client classes, %.0fs run\n",
				file, spec.Name, svc.Name, len(svc.Components), len(spec.Clients), spec.Run.DurationS)
			return nil
		}()
		if err != nil {
			bad++
			fmt.Fprintf(stdout, "invalid: %s\n", file)
			for _, line := range strings.Split(err.Error(), "\n") {
				fmt.Fprintf(stdout, "  %s\n", line)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "rhythm: %d of %d spec files invalid\n", bad, len(files))
		return 1
	}
	return 0
}

func catalog(stdout io.Writer) error {
	fmt.Fprintln(stdout, "LC workloads (Table 1):")
	for _, svc := range workload.Services() {
		fmt.Fprintf(stdout, "  %-14s %-22s maxload %-9.0f SLA(paper) %-9v containers %d\n",
			svc.Name, svc.Domain, svc.MaxLoadQPS, svc.SLATable1, svc.Containers)
		for _, c := range svc.Components {
			fmt.Fprintf(stdout, "      servpod %-16s cores %-3d llc %-3d mem %3.0fGB\n",
				c.Name, c.Cores, c.LLCWays, c.MemoryGB)
		}
	}
	fmt.Fprintln(stdout, "BE jobs (Table 1):")
	for _, ty := range bejobs.Types() {
		s := bejobs.MustLookup(ty)
		fmt.Fprintf(stdout, "  %-14s %-34s %s-intensive\n", s.Type, s.Domain, s.Intensive)
	}
	return nil
}
