// Command rhythm is the CLI for the Rhythm reproduction: it lists and runs
// the paper's evaluation experiments, profiles LC services, and prints the
// workload catalog.
//
// Usage:
//
//	rhythm list                     # registered experiments
//	rhythm run <experiment> [...]   # regenerate tables/figures (or "all")
//	rhythm profile <service>        # offline profiling of one LC service
//	rhythm catalog                  # Table 1 workloads and BE jobs
//
// Flags:
//
//	-quick        run at reduced scale (default true; -quick=false for the
//	              full evaluation scale)
//	-seed N       RNG seed (default 2020)
//	-jobs N       parallel worker count (default runtime.NumCPU(); 1 runs
//	              serially). Tables are byte-identical for every N — only
//	              wall-clock time changes. Tables go to stdout; timing,
//	              speedup and profile-cache statistics go to stderr, so
//	              redirected output is stable across worker counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/core"
	"rhythm/internal/experiments"
	"rhythm/internal/profiler"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func main() {
	quick := flag.Bool("quick", true, "reduced experiment scale")
	seed := flag.Uint64("seed", 2020, "RNG seed")
	jobs := flag.Int("jobs", runtime.NumCPU(),
		"parallel worker count (1 = serial; output is identical for any value)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	ctx := experiments.NewContext(experiments.Options{Quick: *quick, Seed: *seed, Jobs: *jobs})
	var err error
	switch args[0] {
	case "list":
		err = list()
	case "run":
		err = run(ctx, args[1:])
	case "profile":
		err = profile(ctx, args[1:])
	case "catalog":
		err = catalog()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rhythm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `rhythm — EuroSys'20 Rhythm reproduction

usage:
  rhythm [flags] list
  rhythm [flags] run <experiment>... | all
  rhythm [flags] profile <service>
  rhythm [flags] catalog

flags:
`)
	flag.PrintDefaults()
}

func list() error {
	for _, id := range experiments.IDs() {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %s\n", e.ID, e.Title)
	}
	return nil
}

func run(ctx *experiments.Context, ids []string) error {
	if len(ids) == 0 {
		return fmt.Errorf("run needs experiment ids (or \"all\")")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	results := ctx.RunAll(ids, 0)
	wall := time.Since(start)

	// Tables on stdout, in request order, regardless of completion order;
	// all timing on stderr so stdout is byte-identical for every -jobs.
	var compute time.Duration
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		fmt.Println(res.Table)
		fmt.Fprintf(os.Stderr, "(%s generated in %v)\n",
			res.ID, res.Elapsed.Round(time.Millisecond))
		compute += res.Elapsed
	}
	hits, misses := profiler.CacheStats()
	fmt.Fprintf(os.Stderr,
		"\n%d experiments in %v wall (aggregate compute %v, speedup %.2fx, jobs=%d)\n",
		len(results), wall.Round(time.Millisecond), compute.Round(time.Millisecond),
		float64(compute)/float64(wall), sim.Jobs(ctx.Opts.Jobs))
	fmt.Fprintf(os.Stderr, "profile cache: %d hits, %d misses\n", hits, misses)
	return nil
}

func profile(ctx *experiments.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("profile needs exactly one service name")
	}
	sys, err := ctx.System(args[0])
	if err != nil {
		return err
	}
	printSystem(sys)
	return nil
}

func printSystem(sys *core.System) {
	fmt.Printf("service: %s (max load %.0f QPS)\n", sys.Service.Name, sys.Service.MaxLoadQPS)
	fmt.Printf("derived SLA (worst solo p99 at max load): %.2f ms\n", sys.SLA*1000)
	fmt.Printf("%-16s %12s %6s %6s %8s %10s %10s\n",
		"servpod", "contribution", "rho", "alpha", "weight", "loadlimit", "slacklimit")
	for _, c := range sys.Profile.Contributions {
		th := sys.Thresholds[c.Pod]
		fmt.Printf("%-16s %12.3f %6.2f %6.2f %8.3f %10.2f %10.3f\n",
			c.Pod, c.Normalized, c.Rho, c.Alpha, c.Weight, th.Loadlimit, th.Slacklimit)
	}
}

func catalog() error {
	fmt.Println("LC workloads (Table 1):")
	for _, svc := range workload.Services() {
		fmt.Printf("  %-14s %-22s maxload %-9.0f SLA(paper) %-9v containers %d\n",
			svc.Name, svc.Domain, svc.MaxLoadQPS, svc.SLATable1, svc.Containers)
		for _, c := range svc.Components {
			fmt.Printf("      servpod %-16s cores %-3d llc %-3d mem %3.0fGB\n",
				c.Name, c.Cores, c.LLCWays, c.MemoryGB)
		}
	}
	fmt.Println("BE jobs (Table 1):")
	for _, ty := range bejobs.Types() {
		s := bejobs.MustLookup(ty)
		fmt.Printf("  %-14s %-34s %s-intensive\n", s.Type, s.Domain, s.Intensive)
	}
	return nil
}
