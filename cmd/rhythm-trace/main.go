// Command rhythm-trace demonstrates the §3.3 request tracer in isolation:
// it generates the kernel-event log of a traced LC service (ACCEPT / RECV /
// SEND / CLOSE events with context and message identifiers, plus noise from
// unrelated processes), reconstructs the causal path graph, and prints the
// recovered per-Servpod sojourn statistics against the ground truth.
//
// Usage:
//
//	rhythm-trace [-service E-commerce] [-requests 500] [-load 0.5]
//	             [-threads 2] [-rate 800] [-persistent] [-seed 2020]
//
// -seed shares the fleet-wide default (2020) and validation path with the
// other rhythm binaries via internal/cliflags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rhythm/internal/cliflags"
	"rhythm/internal/queueing"
	"rhythm/internal/trace"
	"rhythm/internal/workload"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable argv and streams so flag handling is
// table-testable: usage errors exit 2, runtime failures exit 1.
func realMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rhythm-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	service := fs.String("service", "E-commerce", "LC service to trace")
	requests := fs.Int("requests", 500, "requests to trace")
	load := fs.Float64("load", 0.5, "load fraction during tracing")
	threads := fs.Int("threads", 2, "worker threads per Servpod (fewer => more interleaving)")
	rate := fs.Float64("rate", 800, "request arrival rate (req/s)")
	persistent := fs.Bool("persistent", true, "use persistent TCP connections between Servpods")
	noise := fs.Int("noise", 200, "unrelated-process noise events per host")
	var common cliflags.Common
	common.RegisterSeed(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if err := run(stdout, *service, *requests, *load, *threads, *rate, *persistent, *noise, common.Seed); err != nil {
		fmt.Fprintln(stderr, "rhythm-trace:", err)
		return 1
	}
	return 0
}

func run(stdout io.Writer, service string, requests int, load float64, threads int, rate float64,
	persistent bool, noise int, seed uint64) error {
	svc, err := workload.ByName(service)
	if err != nil {
		return err
	}
	topo := trace.NewTopology(svc)
	sojourns := make(map[string]queueing.Sojourn, len(svc.Components))
	for _, c := range svc.Components {
		sojourns[c.Name] = c.Station.Solo(load * svc.MaxLoadQPS)
	}

	events, truth, err := trace.Generate(topo, sojourns, trace.GenOptions{
		Requests:    requests,
		Rate:        rate,
		Threads:     threads,
		Persistent:  persistent,
		NoiseEvents: noise,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "generated %d events for %d requests (%d Servpods, load %.0f%%)\n",
		len(events), requests, len(svc.Components), 100*load)

	cpg := trace.BuildCPG(events, topo.Pods)
	fmt.Fprintf(stdout, "CPG: %d vertices, %d causal edges, acyclic=%v\n",
		len(cpg.Events), len(cpg.Edges), cpg.Acyclic())

	res, err := trace.Analyze(events, topo.Pods, svc.Graph.Comp)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tracer: %d requests, %d noise/client events filtered, %d context edges, %d message edges\n\n",
		res.Requests, res.Filtered, res.ContextEdges, res.MessageEdges)

	fmt.Fprintf(stdout, "%-16s %14s %14s %10s\n", "servpod", "true mean", "tracer mean", "rel err")
	for _, c := range svc.Components {
		want := truth.MeanSojourn(c.Name)
		got := res.PerPod[c.Name].MeanPerRequest
		rel := 0.0
		if want > 0 {
			rel = (got - want) / want
		}
		fmt.Fprintf(stdout, "%-16s %12.3fms %12.3fms %9.2e\n", c.Name, want*1000, got*1000, rel)
	}
	fmt.Fprintf(stdout, "\nend-to-end: mean %.2fms, p99 %.2fms (%d samples)\n",
		res.MeanE2E()*1000, res.TailE2E(0.99)*1000, len(res.E2Es))
	fmt.Fprintln(stdout, "\nThe §3.3 identity: per-request pairings may mismatch under",
		"\nnon-blocking interleavings and persistent connections, but the",
		"\nper-Servpod sojourn means are exactly invariant — which is why the",
		"\ncontribution analyzer (Eq. 1-3) consumes means.")
	return nil
}
