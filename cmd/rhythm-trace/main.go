// Command rhythm-trace demonstrates the §3.3 request tracer in isolation:
// it generates the kernel-event log of a traced LC service (ACCEPT / RECV /
// SEND / CLOSE events with context and message identifiers, plus noise from
// unrelated processes), reconstructs the causal path graph, and prints the
// recovered per-Servpod sojourn statistics against the ground truth.
//
// Usage:
//
//	rhythm-trace [-service E-commerce] [-requests 500] [-load 0.5]
//	             [-threads 2] [-rate 800] [-persistent] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"rhythm/internal/queueing"
	"rhythm/internal/trace"
	"rhythm/internal/workload"
)

func main() {
	service := flag.String("service", "E-commerce", "LC service to trace")
	requests := flag.Int("requests", 500, "requests to trace")
	load := flag.Float64("load", 0.5, "load fraction during tracing")
	threads := flag.Int("threads", 2, "worker threads per Servpod (fewer => more interleaving)")
	rate := flag.Float64("rate", 800, "request arrival rate (req/s)")
	persistent := flag.Bool("persistent", true, "use persistent TCP connections between Servpods")
	noise := flag.Int("noise", 200, "unrelated-process noise events per host")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	if err := run(*service, *requests, *load, *threads, *rate, *persistent, *noise, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rhythm-trace:", err)
		os.Exit(1)
	}
}

func run(service string, requests int, load float64, threads int, rate float64,
	persistent bool, noise int, seed uint64) error {
	svc, err := workload.ByName(service)
	if err != nil {
		return err
	}
	topo := trace.NewTopology(svc)
	sojourns := make(map[string]queueing.Sojourn, len(svc.Components))
	for _, c := range svc.Components {
		sojourns[c.Name] = c.Station.Solo(load * svc.MaxLoadQPS)
	}

	events, truth, err := trace.Generate(topo, sojourns, trace.GenOptions{
		Requests:    requests,
		Rate:        rate,
		Threads:     threads,
		Persistent:  persistent,
		NoiseEvents: noise,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d events for %d requests (%d Servpods, load %.0f%%)\n",
		len(events), requests, len(svc.Components), 100*load)

	cpg := trace.BuildCPG(events, topo.Pods)
	fmt.Printf("CPG: %d vertices, %d causal edges, acyclic=%v\n",
		len(cpg.Events), len(cpg.Edges), cpg.Acyclic())

	res, err := trace.Analyze(events, topo.Pods, svc.Graph.Comp)
	if err != nil {
		return err
	}
	fmt.Printf("tracer: %d requests, %d noise/client events filtered, %d context edges, %d message edges\n\n",
		res.Requests, res.Filtered, res.ContextEdges, res.MessageEdges)

	fmt.Printf("%-16s %14s %14s %10s\n", "servpod", "true mean", "tracer mean", "rel err")
	for _, c := range svc.Components {
		want := truth.MeanSojourn(c.Name)
		got := res.PerPod[c.Name].MeanPerRequest
		rel := 0.0
		if want > 0 {
			rel = (got - want) / want
		}
		fmt.Printf("%-16s %12.3fms %12.3fms %9.2e\n", c.Name, want*1000, got*1000, rel)
	}
	fmt.Printf("\nend-to-end: mean %.2fms, p99 %.2fms (%d samples)\n",
		res.MeanE2E()*1000, res.TailE2E(0.99)*1000, len(res.E2Es))
	fmt.Println("\nThe §3.3 identity: per-request pairings may mismatch under",
		"\nnon-blocking interleavings and persistent connections, but the",
		"\nper-Servpod sojourn means are exactly invariant — which is why the",
		"\ncontribution analyzer (Eq. 1-3) consumes means.")
	return nil
}
