package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagBehavior pins the shared cliflags contract in this binary:
// -seed defaults to 2020 (the fleet-wide default), unknown flags and
// services are diagnosed, and the tracer output lands on the injected
// stdout so redirection is clean.
func TestFlagBehavior(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-service", "NoSuchService"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown service: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}

	// A tiny real run: defaults must produce the sojourn table on stdout,
	// deterministically for the default seed.
	run1, run2 := new(bytes.Buffer), new(bytes.Buffer)
	args := []string{"-requests", "40", "-noise", "20"}
	if code := realMain(args, run1, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if code := realMain(args, run2, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if run1.String() != run2.String() {
		t.Fatal("default-seed runs diverge")
	}
	if !strings.Contains(run1.String(), "servpod") {
		t.Fatalf("no sojourn table on stdout:\n%s", run1.String())
	}
	// Changing -seed must change the draw (pins that the flag is wired).
	seeded := new(bytes.Buffer)
	if code := realMain(append(args, "-seed", "7"), seeded, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if seeded.String() == run1.String() {
		t.Fatal("-seed 7 output identical to default seed")
	}
}
