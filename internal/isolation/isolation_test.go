package isolation

import (
	"math"
	"testing"

	"rhythm/internal/cluster"
)

func newAgent(t *testing.T) *Agent {
	t.Helper()
	m := cluster.NewMachine("m0", cluster.DefaultSpec())
	a := NewAgent(m, "MySQL")
	if err := a.PinLC(12, 8, 48, 1.0); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPinLC(t *testing.T) {
	a := newAgent(t)
	lc := a.Machine.LCAlloc()
	if lc == nil || lc.Cores != 12 || lc.LLCWays != 8 {
		t.Fatalf("LC alloc = %+v", lc)
	}
	if lc.FreqGHz != a.Machine.Spec.MaxGHz {
		t.Fatal("LC should start at nominal frequency")
	}
}

func TestLaunchBEInitialSlice(t *testing.T) {
	a := newAgent(t)
	if err := a.LaunchBE("wc-0"); err != nil {
		t.Fatal(err)
	}
	al := a.Machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: "wc-0"})
	// §3.5.2: one core, 10% LLC (2 of 20 ways), 2 GB.
	if al.Cores != 1 || al.LLCWays != 2 || al.MemoryGB != 2 {
		t.Fatalf("initial BE slice = %+v", al)
	}
}

func TestLaunchBEFailsWithoutHeadroom(t *testing.T) {
	m := cluster.NewMachine("m0", cluster.DefaultSpec())
	a := NewAgent(m, "pod")
	if err := a.PinLC(40, 18, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.LaunchBE("x"); err == nil {
		t.Fatal("launch should fail with no free cores")
	}
}

func TestGrowAndCutBE(t *testing.T) {
	a := newAgent(t)
	if err := a.LaunchBE("b"); err != nil {
		t.Fatal(err)
	}
	o := cluster.Owner{Kind: cluster.OwnerBE, Name: "b"}
	if !a.GrowBE("b") {
		t.Fatal("grow failed with headroom available")
	}
	al := a.Machine.Alloc(o)
	if al.Cores != 2 || al.LLCWays != 4 {
		t.Fatalf("after grow: %+v", al)
	}
	if !a.CutBE("b") {
		t.Fatal("cut failed")
	}
	al = a.Machine.Alloc(o)
	if al.Cores != 1 || al.LLCWays != 2 {
		t.Fatalf("after cut: %+v", al)
	}
	// Cutting the minimal slice does nothing (keeps 1 core + 1 step).
	if a.CutBE("b") {
		t.Fatal("cut below minimum should report false")
	}
}

func TestGrowBoundedByCapacity(t *testing.T) {
	a := newAgent(t) // 28 free cores, 12 free ways
	if err := a.LaunchBE("b"); err != nil {
		t.Fatal(err)
	}
	grown := 0
	for a.GrowBE("b") {
		grown++
		if grown > 100 {
			t.Fatal("grow never saturated")
		}
	}
	if a.Machine.FreeCores() < 0 || a.Machine.FreeLLCWays() < 0 {
		t.Fatal("grow oversubscribed the machine")
	}
}

func TestGrowCutUnknownInstance(t *testing.T) {
	a := newAgent(t)
	if a.GrowBE("ghost") || a.CutBE("ghost") {
		t.Fatal("operations on unknown instance should fail")
	}
}

func TestKillBE(t *testing.T) {
	a := newAgent(t)
	if err := a.LaunchBE("b"); err != nil {
		t.Fatal(err)
	}
	free := a.Machine.FreeCores()
	a.KillBE("b")
	if a.Machine.FreeCores() != free+1 {
		t.Fatal("kill did not release cores")
	}
}

func TestAdjustBEMemory(t *testing.T) {
	a := newAgent(t)
	if err := a.LaunchBE("b"); err != nil {
		t.Fatal(err)
	}
	o := cluster.Owner{Kind: cluster.OwnerBE, Name: "b"}
	if !a.AdjustBEMemory("b", true) {
		t.Fatal("memory grow failed")
	}
	if got := a.Machine.Alloc(o).MemoryGB; math.Abs(got-2.1) > 1e-9 {
		t.Fatalf("memory = %v, want 2.1", got)
	}
	if !a.AdjustBEMemory("b", false) {
		t.Fatal("memory shrink failed")
	}
	// Shrinking stops at the 0.5 GB floor.
	for i := 0; i < 100; i++ {
		a.AdjustBEMemory("b", false)
	}
	if got := a.Machine.Alloc(o).MemoryGB; got < 0.5-1e-9 {
		t.Fatalf("memory shrank below floor: %v", got)
	}
}

func TestSetBENetworkBudget(t *testing.T) {
	a := newAgent(t)
	for _, id := range []string{"b1", "b2"} {
		if err := a.LaunchBE(id); err != nil {
			t.Fatal(err)
		}
	}
	a.SetBENetwork(2.0) // budget = 10 - 2.4 = 7.6, split 3.8 each
	tot := a.Machine.BETotals()
	if math.Abs(tot.NetGbps-7.6) > 1e-9 {
		t.Fatalf("BE network total = %v, want 7.6", tot.NetGbps)
	}
	// LC traffic so heavy the budget clamps at zero.
	a.SetBENetwork(20)
	if got := a.Machine.BETotals().NetGbps; got != 0 {
		t.Fatalf("BE network under saturation = %v, want 0", got)
	}
	// No instances: no-op.
	a2 := newAgent(t)
	a2.SetBENetwork(1)
}

func TestDVFSStepping(t *testing.T) {
	a := newAgent(t)
	if err := a.LaunchBE("b"); err != nil {
		t.Fatal(err)
	}
	if got := a.BEFrequency(); got != a.Machine.Spec.MaxGHz {
		t.Fatalf("initial BE frequency = %v", got)
	}
	if !a.StepDownBEFrequency() {
		t.Fatal("step down failed")
	}
	if got := a.BEFrequency(); math.Abs(got-1.9) > 1e-9 {
		t.Fatalf("after one step: %v, want 1.9", got)
	}
	// Steps stop at the spec minimum.
	for i := 0; i < 100; i++ {
		a.StepDownBEFrequency()
	}
	if got := a.BEFrequency(); got < a.Machine.Spec.MinGHz-1e-9 {
		t.Fatalf("frequency below minimum: %v", got)
	}
	// Restore walks back up to nominal.
	for i := 0; i < 100; i++ {
		a.RestoreBEFrequency()
	}
	if got := a.BEFrequency(); math.Abs(got-a.Machine.Spec.MaxGHz) > 1e-9 {
		t.Fatalf("restore did not reach nominal: %v", got)
	}
	if a.RestoreBEFrequency() {
		t.Fatal("restore at nominal should be a no-op")
	}
}

func TestBEFrequencyWithoutInstances(t *testing.T) {
	a := newAgent(t)
	if got := a.BEFrequency(); got != a.Machine.Spec.MaxGHz {
		t.Fatalf("frequency with no BEs = %v", got)
	}
	if a.StepDownBEFrequency() {
		t.Fatal("step down with no BEs should be a no-op")
	}
}
