// Package isolation provides the simulated counterparts of the isolation
// mechanisms Rhythm drives in §4 of the paper:
//
//   - core/thread isolation via cpuset cgroups (disjoint core sets),
//   - LLC partitioning via Intel CAT (way bitmasks),
//   - network traffic isolation via Linux qdisc (rate classes), and
//   - power isolation via RAPL monitoring and per-core-set DVFS.
//
// Each actuator manipulates the allocation ledger of a cluster.Machine;
// the interference model then reads the resulting state. The actuators
// enforce the same granularities as the paper's subcontrollers: cores one
// at a time, LLC in 10% (2-way) steps, frequency in 100 MHz steps, memory
// in 100 MB steps.
package isolation

import (
	"fmt"

	"rhythm/internal/cluster"
)

// Agent is the per-machine isolation agent: the actuation half of the §3.5
// controller that runs on every machine holding an LC Servpod.
type Agent struct {
	Machine *cluster.Machine
	// LCOwner is the Servpod whose SLA the agent protects.
	LCOwner cluster.Owner
}

// NewAgent returns an agent managing machine m for the named Servpod.
func NewAgent(m *cluster.Machine, servpod string) *Agent {
	return &Agent{Machine: m, LCOwner: cluster.Owner{Kind: cluster.OwnerLC, Name: servpod}}
}

// PinLC installs the LC Servpod's cpuset/CAT/memory reservation.
func (a *Agent) PinLC(cores, llcWays int, memGB, netGbps float64) error {
	return a.Machine.Grant(a.LCOwner, cluster.Alloc{
		Cores:    cores,
		LLCWays:  llcWays,
		MemoryGB: memGB,
		NetGbps:  netGbps,
		FreqGHz:  a.Machine.Spec.MaxGHz,
	})
}

// beOwner names a BE instance's allocation.
func beOwner(id string) cluster.Owner {
	return cluster.Owner{Kind: cluster.OwnerBE, Name: id}
}

// LaunchBE grants a fresh BE instance its initial slice: one core, 10% of
// the LLC, and 2 GB of memory (§3.5.2), at the machine's nominal frequency.
// It fails when the machine lacks headroom.
func (a *Agent) LaunchBE(id string) error {
	ways := a.waysPerStep()
	if a.Machine.FreeCores() < 1 || a.Machine.FreeLLCWays() < ways ||
		a.Machine.FreeMemoryGB() < 2 {
		return fmt.Errorf("isolation: no headroom on %s for BE %s (cores %d, ways %d, mem %.0f GB free)",
			a.Machine.Name, id, a.Machine.FreeCores(), a.Machine.FreeLLCWays(), a.Machine.FreeMemoryGB())
	}
	return a.Machine.Grant(beOwner(id), cluster.Alloc{
		Cores:    1,
		LLCWays:  ways,
		MemoryGB: 2,
		FreqGHz:  a.Machine.Spec.MaxGHz,
	})
}

// waysPerStep is the CAT adjustment quantum: 10% of the LLC (§3.5.2),
// at least one way.
func (a *Agent) waysPerStep() int {
	w := a.Machine.Spec.LLCWays / 10
	if w < 1 {
		w = 1
	}
	return w
}

// GrowBE gives the BE instance one more core and one more LLC step if the
// machine has headroom. It reports whether it grew.
func (a *Agent) GrowBE(id string) bool {
	cur := a.Machine.Alloc(beOwner(id))
	if cur == nil {
		return false
	}
	next := *cur
	grew := false
	if a.Machine.FreeCores() >= 1 {
		next.Cores++
		grew = true
	}
	if ways := a.waysPerStep(); a.Machine.FreeLLCWays() >= ways {
		next.LLCWays += ways
		grew = true
	}
	if !grew {
		return false
	}
	if err := a.Machine.Grant(beOwner(id), next); err != nil {
		return false
	}
	return true
}

// CutBE removes one core and one LLC step from the BE instance, keeping at
// least one core so the job stays schedulable (CutBE in §3.5.2 reduces
// resources without killing). It reports whether anything was cut.
func (a *Agent) CutBE(id string) bool {
	cur := a.Machine.Alloc(beOwner(id))
	if cur == nil {
		return false
	}
	next := *cur
	cut := false
	if next.Cores > 1 {
		next.Cores--
		cut = true
	}
	if ways := a.waysPerStep(); next.LLCWays > ways {
		next.LLCWays -= ways
		cut = true
	}
	if !cut {
		return false
	}
	if err := a.Machine.Grant(beOwner(id), next); err != nil {
		return false
	}
	return true
}

// KillBE releases every resource of the BE instance (StopBE).
func (a *Agent) KillBE(id string) { a.Machine.Release(beOwner(id)) }

// AdjustBEMemory grows or shrinks the instance's memory by the §3.5.2
// 100 MB step. It reports whether the adjustment was applied.
func (a *Agent) AdjustBEMemory(id string, grow bool) bool {
	cur := a.Machine.Alloc(beOwner(id))
	if cur == nil {
		return false
	}
	const step = 0.1 // 100 MB
	next := *cur
	if grow {
		if a.Machine.FreeMemoryGB() < step {
			return false
		}
		next.MemoryGB += step
	} else {
		if next.MemoryGB-step < 0.5 { // keep a minimal resident set
			return false
		}
		next.MemoryGB -= step
	}
	return a.Machine.Grant(beOwner(id), next) == nil
}

// SetBENetwork installs the qdisc class rate for BE traffic:
// Blink - 1.2*B_LC per §3.5.2, split equally among instances.
func (a *Agent) SetBENetwork(lcGbps float64) {
	be := a.Machine.BEOwnersView()
	if len(be) == 0 {
		return
	}
	budget := a.Machine.Spec.NetGbps - 1.2*lcGbps
	if budget < 0 {
		budget = 0
	}
	per := budget / float64(len(be))
	for _, o := range be {
		cur := a.Machine.Alloc(o)
		if cur == nil {
			continue
		}
		next := *cur
		next.NetGbps = per
		// The budget formula guarantees feasibility, but an LC grant may
		// already hold reservation; fall back to zero on conflict.
		if err := a.Machine.Grant(o, next); err != nil {
			next.NetGbps = 0
			_ = a.Machine.Grant(o, next)
		}
	}
}

// StepDownBEFrequency lowers every BE instance's DVFS operating point by
// 100 MHz (§3.5.2's frequency subcontroller step), not below the spec
// minimum. It reports whether any instance changed.
func (a *Agent) StepDownBEFrequency() bool {
	const step = 0.1 // 100 MHz
	changed := false
	for _, o := range a.Machine.BEOwnersView() {
		cur := a.Machine.Alloc(o)
		if cur == nil {
			continue
		}
		f := cur.FreqGHz
		if f == 0 {
			f = a.Machine.Spec.MaxGHz
		}
		if f-step < a.Machine.Spec.MinGHz {
			continue
		}
		next := *cur
		next.FreqGHz = f - step
		if a.Machine.Grant(o, next) == nil {
			changed = true
		}
	}
	return changed
}

// RestoreBEFrequency raises every BE instance back toward nominal by one
// 100 MHz step. It reports whether any instance changed.
func (a *Agent) RestoreBEFrequency() bool {
	const step = 0.1
	changed := false
	for _, o := range a.Machine.BEOwnersView() {
		cur := a.Machine.Alloc(o)
		if cur == nil || cur.FreqGHz == 0 || cur.FreqGHz >= a.Machine.Spec.MaxGHz {
			continue
		}
		next := *cur
		next.FreqGHz = cur.FreqGHz + step
		if next.FreqGHz > a.Machine.Spec.MaxGHz {
			next.FreqGHz = a.Machine.Spec.MaxGHz
		}
		if a.Machine.Grant(o, next) == nil {
			changed = true
		}
	}
	return changed
}

// BEFrequency returns the (lowest) DVFS operating point among BE instances,
// or the nominal frequency when none run.
func (a *Agent) BEFrequency() float64 {
	f := a.Machine.Spec.MaxGHz
	for _, o := range a.Machine.BEOwnersView() {
		if cur := a.Machine.Alloc(o); cur != nil && cur.FreqGHz != 0 && cur.FreqGHz < f {
			f = cur.FreqGHz
		}
	}
	return f
}

// ParkBE releases the instance's cores and cache ways while keeping its
// memory space: the resource meaning of §3.5.2's SuspendBE ("pauses all of
// the running BE jobs, but they can still keep their memory space").
func (a *Agent) ParkBE(id string) {
	cur := a.Machine.Alloc(beOwner(id))
	if cur == nil {
		return
	}
	next := *cur
	next.Cores = 0
	next.LLCWays = 0
	next.NetGbps = 0
	_ = a.Machine.Grant(beOwner(id), next) // shrinking cannot oversubscribe
}

// UnparkBE re-grants a parked instance the minimal runnable slice (one
// core, one LLC step). It reports whether the instance can run; an
// instance that already holds cores is trivially runnable.
func (a *Agent) UnparkBE(id string) bool {
	cur := a.Machine.Alloc(beOwner(id))
	if cur == nil {
		return false
	}
	if cur.Cores > 0 {
		return true
	}
	ways := a.waysPerStep()
	if a.Machine.FreeCores() < 1 || a.Machine.FreeLLCWays() < ways {
		return false
	}
	next := *cur
	next.Cores = 1
	next.LLCWays = ways
	return a.Machine.Grant(beOwner(id), next) == nil
}
