// Package trace implements the request tracer of §3.3: the non-intrusive
// reconstruction of per-Servpod sojourn times from kernel-level events.
//
// The simulated LC services emit the four event types the paper captures
// with SystemTap — ACCEPT, RECV, SEND and CLOSE — each carrying the
// paper's context identifier (hostIP, programName, processID, threadID)
// and message identifier (senderIP, senderPort, receiverIP, receiverPort,
// messageSize). The tracer filters unrelated events, pairs events into
// intra-Servpod (context relation) and inter-Servpod (message relation)
// causal edges, builds the causal path graph (CPG), and extracts sojourn
// times whose *means* are correct even when non-blocking threads or
// persistent TCP connections make individual pairings ambiguous (the §3.3
// identity).
package trace

import (
	"fmt"

	"rhythm/internal/sim"
)

// EventType is one of the four captured system events.
type EventType int

// The §3.3 event types.
const (
	Accept EventType = iota // syscall_accept: acceptance of a request
	Recv                    // tcp_rcvmsg: receiving a data package
	Send                    // tcp_sendmsg: sending a data package
	Close                   // syscall_close: close of a request call
)

// String names the event type as the paper does.
func (t EventType) String() string {
	switch t {
	case Accept:
		return "ACCEPT"
	case Recv:
		return "RECV"
	case Send:
		return "SEND"
	case Close:
		return "CLOSE"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Context is the §3.3 context identifier quad, used to filter noise from
// unrelated processes and to pair events inside a Servpod.
type Context struct {
	HostIP  string
	Program string
	PID     int
	TID     int
}

// MsgID is the §3.3 message identifier five-tuple, used to pair SEND/RECV
// events between neighbouring Servpods and to filter unrelated traffic.
type MsgID struct {
	SrcIP   string
	SrcPort int
	DstIP   string
	DstPort int
	Size    int
}

// Reverse returns the five-tuple of the reply direction with the given
// payload size.
func (m MsgID) Reverse(size int) MsgID {
	return MsgID{SrcIP: m.DstIP, SrcPort: m.DstPort, DstIP: m.SrcIP, DstPort: m.SrcPort, Size: size}
}

// Event is one captured system event.
type Event struct {
	Type EventType
	At   sim.Time
	Ctx  Context
	Msg  MsgID // zero for ACCEPT/CLOSE
}

// PodAddr describes one LC Servpod's identity for filtering: the host it
// runs on and the program names of its components.
type PodAddr struct {
	Name     string
	HostIP   string
	Programs []string
}

// matches reports whether the event context belongs to this pod.
func (p PodAddr) matches(c Context) bool {
	if c.HostIP != p.HostIP {
		return false
	}
	for _, prog := range p.Programs {
		if prog == c.Program {
			return true
		}
	}
	return false
}
