package trace

import (
	"fmt"
	"sort"

	"rhythm/internal/sim"
)

// PodStats aggregates what the tracer learned about one Servpod.
type PodStats struct {
	// Pairs is the number of intra-pod RECV→SEND causal pairs.
	Pairs int
	// UnmatchedSends counts SEND events with no unmatched preceding RECV
	// in their context (arises at fan-out pods, see Analyze).
	UnmatchedSends int
	// TotalSojourn is the summed (SEND - RECV) time over all pairs, in
	// seconds. Individual pairs can be mismatched under non-blocking
	// interleavings, but the total — and hence the mean per request —
	// is invariant (§3.3).
	TotalSojourn float64
	// MeanPerRequest is TotalSojourn divided by the request count.
	MeanPerRequest float64
}

// Result is the output of one tracer run over an event log.
type Result struct {
	// Requests is the number of requests identified at the entry pod.
	Requests int
	// PerPod maps Servpod name to its aggregated sojourn statistics.
	PerPod map[string]*PodStats
	// E2Es are the per-request end-to-end latencies in seconds,
	// extracted from ACCEPT/CLOSE pairs at the entry pod.
	E2Es []float64
	// Filtered counts events discarded by the context-identifier filter
	// (unrelated processes, client-side events).
	Filtered int
	// ContextEdges and MessageEdges count the causal edges recovered.
	ContextEdges int
	MessageEdges int
}

// MeanE2E returns the mean end-to-end latency in seconds.
func (r *Result) MeanE2E() float64 { return sim.Mean(r.E2Es) }

// TailE2E returns the q-quantile of the end-to-end latencies.
func (r *Result) TailE2E(q float64) float64 { return sim.Quantile(r.E2Es, q) }

// Analyze runs the §3.3 pipeline over an event log: filter by context
// identifier, pair intra-Servpod events by context relation (FIFO in order
// of occurrence, as the paper specifies), pair inter-Servpod events by
// message relation, and extract per-pod sojourn statistics plus
// per-request end-to-end latencies from the entry pod's ACCEPT/CLOSE pairs.
//
// Individual pairings can be wrong when non-blocking threads interleave
// requests or persistent TCP connections share message identifiers; the
// per-pod sojourn *sums* are invariant under those permutations, which is
// why the contribution analyzer consumes means (Equations 1-3 of the
// paper). At fan-out pods the strict FIFO discipline leaves the burst's
// extra SENDs unmatched and biases the mean; the paper sidesteps this by
// using the service's built-in tracer (jaeger) for its fan-out workload
// (§5.3.2), and this reproduction does the same.
func Analyze(events []Event, pods []PodAddr, entry string) (*Result, error) {
	if len(pods) == 0 {
		return nil, fmt.Errorf("trace: no Servpods to analyze")
	}
	entryOK := false
	for _, p := range pods {
		if p.Name == entry {
			entryOK = true
		}
	}
	if !entryOK {
		return nil, fmt.Errorf("trace: entry pod %q not among the %d Servpods", entry, len(pods))
	}

	// Defensive sort: SystemTap logs arrive roughly ordered but merged
	// across CPUs.
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })

	res := &Result{PerPod: make(map[string]*PodStats)}
	for _, p := range pods {
		res.PerPod[p.Name] = &PodStats{}
	}

	podOf := func(c Context) (string, bool) {
		for _, p := range pods {
			if p.matches(c) {
				return p.Name, true
			}
		}
		return "", false
	}

	// Intra-pod pairing state: FIFO of unmatched RECV timestamps per
	// context; ACCEPT/CLOSE FIFO per entry-pod context for E2E.
	type ctxKey Context
	recvQ := make(map[ctxKey][]sim.Time)
	acceptQ := make(map[ctxKey][]sim.Time)

	// Inter-pod pairing state: FIFO of unmatched SEND timestamps per
	// message identifier.
	sendQ := make(map[MsgID][]sim.Time)

	for _, e := range evs {
		pod, ok := podOf(e.Ctx)
		if !ok {
			res.Filtered++
			continue
		}
		st := res.PerPod[pod]
		ck := ctxKey(e.Ctx)
		switch e.Type {
		case Accept:
			if pod == entry {
				acceptQ[ck] = append(acceptQ[ck], e.At)
				res.Requests++
			}
		case Close:
			if pod == entry {
				if q := acceptQ[ck]; len(q) > 0 {
					res.E2Es = append(res.E2Es, e.At.Sub(q[0]).Seconds())
					acceptQ[ck] = q[1:]
				}
			}
		case Recv:
			recvQ[ck] = append(recvQ[ck], e.At)
			// Message relation: this RECV completes a SEND from a
			// neighbouring pod with the same five-tuple.
			if q := sendQ[e.Msg]; len(q) > 0 {
				sendQ[e.Msg] = q[1:]
				res.MessageEdges++
			}
		case Send:
			if q := recvQ[ck]; len(q) > 0 {
				st.Pairs++
				st.TotalSojourn += e.At.Sub(q[0]).Seconds()
				recvQ[ck] = q[1:]
				res.ContextEdges++
			} else {
				st.UnmatchedSends++
			}
			sendQ[e.Msg] = append(sendQ[e.Msg], e.At)
		}
	}

	if res.Requests == 0 {
		return nil, fmt.Errorf("trace: no requests found (no ACCEPT events at entry pod %q)", entry)
	}
	for _, st := range res.PerPod {
		st.MeanPerRequest = st.TotalSojourn / float64(res.Requests)
	}
	return res, nil
}

// CPGEdgeKind distinguishes the two causal relations of §3.3.
type CPGEdgeKind int

// Edge kinds: context relations join a RECV to a later SEND inside one
// Servpod; message relations join a SEND to the matching RECV at the
// neighbour pod.
const (
	ContextEdge CPGEdgeKind = iota
	MessageEdge
)

// CPGEdge is a directed causal edge between event indices.
type CPGEdge struct {
	From, To int
	Kind     CPGEdgeKind
}

// CPG is the causal path graph over a filtered event log: vertices are
// events, edges the recovered causal relations.
type CPG struct {
	Events []Event
	Edges  []CPGEdge
}

// BuildCPG constructs the causal path graph over the pod events of the
// log, using the same pairing discipline as Analyze but retaining the
// explicit graph (Fig. 4 of the paper).
func BuildCPG(events []Event, pods []PodAddr) *CPG {
	evs := make([]Event, 0, len(events))
	for _, e := range events {
		for _, p := range pods {
			if p.matches(e.Ctx) {
				evs = append(evs, e)
				break
			}
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })

	g := &CPG{Events: evs}
	type ctxKey Context
	recvQ := make(map[ctxKey][]int)
	sendQ := make(map[MsgID][]int)
	for i, e := range evs {
		ck := ctxKey(e.Ctx)
		switch e.Type {
		case Recv:
			recvQ[ck] = append(recvQ[ck], i)
			if q := sendQ[e.Msg]; len(q) > 0 {
				g.Edges = append(g.Edges, CPGEdge{From: q[0], To: i, Kind: MessageEdge})
				sendQ[e.Msg] = q[1:]
			}
		case Send:
			if q := recvQ[ck]; len(q) > 0 {
				g.Edges = append(g.Edges, CPGEdge{From: q[0], To: i, Kind: ContextEdge})
				recvQ[ck] = q[1:]
			}
			sendQ[e.Msg] = append(sendQ[e.Msg], i)
		}
	}
	return g
}

// Acyclic reports whether the CPG has no directed cycles. Causal edges
// always point forward in time, so a correctly built CPG is acyclic; this
// is the invariant the property tests exercise.
func (g *CPG) Acyclic() bool {
	adj := make(map[int][]int, len(g.Events))
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(g.Events))
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				return false
			case white:
				if !visit(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for i := range g.Events {
		if color[i] == white && !visit(i) {
			return false
		}
	}
	return true
}
