package trace

import (
	"math"
	"testing"
	"testing/quick"

	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// soloSojourns returns per-component sojourn distributions at the given
// fraction of max load.
func soloSojourns(svc *workload.Service, frac float64) map[string]queueing.Sojourn {
	out := make(map[string]queueing.Sojourn)
	for _, c := range svc.Components {
		out[c.Name] = c.Station.Solo(frac * svc.MaxLoadQPS)
	}
	return out
}

func generate(t *testing.T, svc *workload.Service, opts GenOptions) ([]Event, *Truth, *Topology) {
	t.Helper()
	tp := NewTopology(svc)
	evs, truth, err := Generate(tp, soloSojourns(svc, 0.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	return evs, truth, tp
}

func TestTracerRecoversExactSojournsWithoutInterleaving(t *testing.T) {
	svc := workload.ECommerce()
	// Rate low enough that requests never overlap: blocking behaviour.
	evs, truth, tp := generate(t, svc, GenOptions{Requests: 200, Rate: 2, Threads: 8, Seed: 1})
	res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Fatalf("requests = %d, want 200", res.Requests)
	}
	for _, c := range svc.Components {
		want := truth.MeanSojourn(c.Name)
		got := res.PerPod[c.Name].MeanPerRequest
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("%s: tracer mean %v vs truth %v", c.Name, got, want)
		}
		if res.PerPod[c.Name].UnmatchedSends != 0 {
			t.Errorf("%s: unmatched sends in blocking mode", c.Name)
		}
	}
}

func TestMeanInvarianceUnderNonBlockingInterleaving(t *testing.T) {
	// The §3.3 identity: with few threads and high rate, requests overlap
	// on shared thread contexts and individual pairings mismatch, but
	// per-pod sojourn means are exactly preserved.
	svc := workload.ECommerce()
	evs, truth, tp := generate(t, svc, GenOptions{
		Requests: 500, Rate: 800, Threads: 2, Persistent: true, Seed: 7,
	})
	res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range svc.Components {
		want := truth.MeanSojourn(c.Name)
		got := res.PerPod[c.Name].MeanPerRequest
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("%s: mean not invariant: tracer %v vs truth %v", c.Name, got, want)
		}
	}
	// Mean end-to-end latency is likewise invariant under ACCEPT/CLOSE
	// FIFO pairing (the client-visible close trails by half a net delay).
	wantE2E := sim.Mean(truth.E2E)
	if math.Abs(res.MeanE2E()-wantE2E)/wantE2E > 0.02 {
		t.Errorf("mean e2e %v vs truth %v", res.MeanE2E(), wantE2E)
	}
}

func TestNoiseFiltering(t *testing.T) {
	svc := workload.Redis()
	clean, _, tp := generate(t, svc, GenOptions{Requests: 300, Rate: 50, Threads: 4, Seed: 3})
	noisy, _, _ := generate(t, svc, GenOptions{Requests: 300, Rate: 50, Threads: 4, Seed: 3, NoiseEvents: 500})

	rc, err := Analyze(clean, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Analyze(noisy, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Filtered <= rc.Filtered {
		t.Fatalf("noise not filtered: %d vs %d", rn.Filtered, rc.Filtered)
	}
	for _, c := range svc.Components {
		a, b := rc.PerPod[c.Name].MeanPerRequest, rn.PerPod[c.Name].MeanPerRequest
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("%s: noise changed the analysis: %v vs %v", c.Name, a, b)
		}
	}
}

func TestClientEventsAreFiltered(t *testing.T) {
	svc := workload.Redis()
	evs, _, tp := generate(t, svc, GenOptions{Requests: 10, Rate: 5, Threads: 4, Seed: 9})
	res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	// Each request emits one client SEND and one client RECV.
	if res.Filtered < 20 {
		t.Fatalf("client events not filtered: %d", res.Filtered)
	}
}

func TestE2EMatchesTruthPerRequestWhenBlocking(t *testing.T) {
	svc := workload.Solr()
	evs, truth, tp := generate(t, svc, GenOptions{Requests: 100, Rate: 1, Threads: 8, Seed: 11})
	res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.E2Es) != len(truth.E2E) {
		t.Fatalf("e2e count %d vs %d", len(res.E2Es), len(truth.E2E))
	}
	// Tail estimate from the tracer tracks the truth tail.
	gotTail, wantTail := res.TailE2E(0.99), sim.Quantile(truth.E2E, 0.99)
	if math.Abs(gotTail-wantTail)/wantTail > 0.02 {
		t.Fatalf("p99 %v vs truth %v", gotTail, wantTail)
	}
}

func TestFanOutUnmatchedSendsDocumentedBehaviour(t *testing.T) {
	// The strict FIFO context pairing of §3.3 leaves the second SEND of a
	// fan-out burst unmatched; the paper (and this repo) use the built-in
	// tracer for the fan-out SNMS workload instead.
	svc := workload.SNMS()
	evs, _, tp := generate(t, svc, GenOptions{Requests: 100, Rate: 10, Threads: 8, Seed: 5})
	res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerPod["frontend"].UnmatchedSends == 0 {
		t.Fatal("expected unmatched sends at the fan-out pod")
	}
	// Leaf pods remain exact.
	if res.PerPod["UserService"].UnmatchedSends != 0 {
		t.Fatal("leaf pods should pair cleanly")
	}
}

func TestCPGAcyclicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		svc := workload.ECommerce()
		tp := NewTopology(svc)
		r := sim.NewRNG(seed)
		evs, _, err := Generate(tp, soloSojourns(svc, 0.3), GenOptions{
			Requests:   20 + r.Intn(50),
			Rate:       1 + r.Float64()*500,
			Threads:    1 + r.Intn(6),
			Persistent: r.Float64() < 0.5,
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		g := BuildCPG(evs, tp.Pods)
		return g.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCPGEdgeCounts(t *testing.T) {
	svc := workload.ECommerce() // 4-pod chain
	evs, _, tp := generate(t, svc, GenOptions{Requests: 50, Rate: 5, Threads: 8, Seed: 13})
	g := BuildCPG(evs, tp.Pods)
	var ctxE, msgE int
	for _, e := range g.Edges {
		switch e.Kind {
		case ContextEdge:
			ctxE++
		case MessageEdge:
			msgE++
		default:
			t.Fatalf("unknown edge kind %v", e.Kind)
		}
		if g.Events[e.From].At > g.Events[e.To].At {
			t.Fatal("causal edge pointing backward in time")
		}
	}
	// Chain of 4 pods: 7 context pairs per request (2 per non-leaf pod,
	// 1 at the leaf); 6 inter-pod transfers per request (3 forward, 3
	// replies).
	if ctxE != 50*7 {
		t.Fatalf("context edges = %d, want %d", ctxE, 50*7)
	}
	if msgE != 50*6 {
		t.Fatalf("message edges = %d, want %d", msgE, 50*6)
	}
}

func TestMeanInvarianceProperty(t *testing.T) {
	// Property: for chain services, under any thread count, rate and
	// connection persistence, tracer means equal ground-truth means.
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		svcs := []*workload.Service{workload.ECommerce(), workload.Redis(), workload.Elgg()}
		svc := svcs[r.Intn(len(svcs))]
		tp := NewTopology(svc)
		evs, truth, err := Generate(tp, soloSojourns(svc, 0.2+0.6*r.Float64()), GenOptions{
			Requests:   30 + r.Intn(100),
			Rate:       1 + r.Float64()*1000,
			Threads:    1 + r.Intn(8),
			Persistent: r.Float64() < 0.5,
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
		if err != nil {
			return false
		}
		for _, c := range svc.Components {
			want := truth.MeanSojourn(c.Name)
			got := res.PerPod[c.Name].MeanPerRequest
			// Event timestamps quantize to nanoseconds, so allow an
			// absolute ns-scale term besides the relative tolerance.
			if want <= 0 || math.Abs(got-want) > 1e-6*want+1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	svc := workload.Redis()
	tp := NewTopology(svc)
	sj := soloSojourns(svc, 0.5)
	if _, _, err := Generate(tp, sj, GenOptions{Requests: 0, Rate: 1}); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, _, err := Generate(tp, sj, GenOptions{Requests: 10, Rate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	delete(sj, "Slave")
	if _, _, err := Generate(tp, sj, GenOptions{Requests: 10, Rate: 1}); err == nil {
		t.Fatal("missing sojourn distribution accepted")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	svc := workload.Redis()
	evs, _, tp := generate(t, svc, GenOptions{Requests: 5, Rate: 1, Threads: 2, Seed: 1})
	if _, err := Analyze(evs, nil, "Master"); err == nil {
		t.Fatal("no pods accepted")
	}
	if _, err := Analyze(evs, tp.Pods, "Ghost"); err == nil {
		t.Fatal("unknown entry pod accepted")
	}
	if _, err := Analyze(nil, tp.Pods, "Master"); err == nil {
		t.Fatal("empty log should fail: no requests found")
	}
}

func TestEventTypeString(t *testing.T) {
	for ty, want := range map[EventType]string{
		Accept: "ACCEPT", Recv: "RECV", Send: "SEND", Close: "CLOSE",
	} {
		if ty.String() != want {
			t.Errorf("%d = %q", ty, ty.String())
		}
	}
	if EventType(9).String() != "event(9)" {
		t.Error("unknown event type")
	}
}

func TestMsgIDReverse(t *testing.T) {
	m := MsgID{SrcIP: "a", SrcPort: 1, DstIP: "b", DstPort: 2, Size: 10}
	r := m.Reverse(99)
	if r.SrcIP != "b" || r.SrcPort != 2 || r.DstIP != "a" || r.DstPort != 1 || r.Size != 99 {
		t.Fatalf("reverse = %+v", r)
	}
}

func TestPersistentConnectionsShareMsgIDs(t *testing.T) {
	svc := workload.Redis()
	tp := NewTopology(svc)
	evs, _, err := Generate(tp, soloSojourns(svc, 0.5), GenOptions{
		Requests: 50, Rate: 100, Threads: 2, Persistent: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct pod-to-pod message identifiers: with 2 threads and
	// one pod pair there are at most 2 forward five-tuples.
	ids := map[MsgID]bool{}
	for _, e := range evs {
		if e.Type == Send && e.Ctx.Program == "Master" && e.Msg.DstPort == 8001 {
			ids[e.Msg] = true
		}
	}
	if len(ids) > 2 {
		t.Fatalf("persistent connections should share identifiers, got %d distinct", len(ids))
	}
}
