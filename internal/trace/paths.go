package trace

import "sort"

// CallPath is one identified service call path: the ordered sequence of
// Servpods a request's causal chain visits (§3.3: "the request tracer
// identifies the service call paths of requests"). Requests taking the
// same path share a signature, which is how the tracer discovers the
// service's structure without a deployment manifest.
type CallPath struct {
	// Pods is the visit order along the causal chain (first occurrence
	// per pod).
	Pods []string
	// Count is how many requests took this path.
	Count int
}

// Signature returns the canonical string form of the path.
func (p CallPath) Signature() string {
	s := ""
	for i, pod := range p.Pods {
		if i > 0 {
			s += ">"
		}
		s += pod
	}
	return s
}

// CallPaths identifies the service call paths in the CPG by grouping
// events into weakly connected causal components (one per request when
// requests do not interleave on shared thread contexts) and reading each
// component's pod visit order. podOf maps an event's context to its
// Servpod name; events from contexts it rejects are ignored.
//
// Under heavy interleaving, components merge and paths blur — the same
// limitation §3.3 works around by consuming sojourn means; the identified
// paths remain correct whenever any tracing window with low concurrency
// exists, which production tracers exploit by sampling.
func (g *CPG) CallPaths(pods []PodAddr) []CallPath {
	podOf := func(c Context) (string, bool) {
		for _, p := range pods {
			if p.matches(c) {
				return p.Name, true
			}
		}
		return "", false
	}

	// Union-find over events connected by causal edges.
	parent := make([]int, len(g.Events))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range g.Edges {
		union(e.From, e.To)
	}

	// ACCEPT and CLOSE carry no causal edges, so they form singleton
	// components; only components with a real causal chain count as
	// requests.
	size := map[int]int{}
	for i := range g.Events {
		size[find(i)]++
	}

	// Events are time-ordered in the CPG, so walking each component in
	// index order yields the visit order.
	visits := map[int][]string{}
	seen := map[int]map[string]bool{}
	for i, ev := range g.Events {
		pod, ok := podOf(ev.Ctx)
		if !ok {
			continue
		}
		root := find(i)
		if size[root] < 2 {
			continue
		}
		if seen[root] == nil {
			seen[root] = map[string]bool{}
		}
		if !seen[root][pod] {
			seen[root][pod] = true
			visits[root] = append(visits[root], pod)
		}
	}

	counts := map[string]*CallPath{}
	for _, podsInOrder := range visits {
		cp := CallPath{Pods: podsInOrder}
		sig := cp.Signature()
		if ex, ok := counts[sig]; ok {
			ex.Count++
		} else {
			cp.Count = 1
			counts[sig] = &cp
		}
	}
	out := make([]CallPath, 0, len(counts))
	for _, cp := range counts {
		out = append(out, *cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Signature() < out[j].Signature()
	})
	return out
}

// DominantPath returns the most common call path, or false when the log
// identified none.
func (g *CPG) DominantPath(pods []PodAddr) (CallPath, bool) {
	ps := g.CallPaths(pods)
	if len(ps) == 0 {
		return CallPath{}, false
	}
	return ps[0], true
}
