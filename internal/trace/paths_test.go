package trace

import (
	"math"
	"strings"
	"testing"

	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func TestCallPathIdentificationChain(t *testing.T) {
	svc := workload.ECommerce()
	// Low rate: requests do not interleave, so each forms one component.
	evs, _, tp := generate(t, svc, GenOptions{Requests: 60, Rate: 2, Threads: 8, Seed: 3})
	g := BuildCPG(evs, tp.Pods)
	paths := g.CallPaths(tp.Pods)
	if len(paths) != 1 {
		t.Fatalf("chain service should yield one path, got %v", paths)
	}
	want := "Haproxy>Tomcat>Amoeba>MySQL"
	if got := paths[0].Signature(); got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}
	if paths[0].Count != 60 {
		t.Fatalf("count = %d, want 60", paths[0].Count)
	}
}

func TestCallPathFanOut(t *testing.T) {
	svc := workload.SNMS()
	// One thread per request: thread reuse leaks the fan-out's unmatched
	// reply RECVs across requests and merges their causal components
	// (FIFO pairing is stateful per context), so structure discovery
	// wants a low-concurrency sampling window.
	evs, _, tp := generate(t, svc, GenOptions{Requests: 40, Rate: 2, Threads: 64, Seed: 5})
	g := BuildCPG(evs, tp.Pods)
	// Under the strict FIFO context pairing of §3.3, a fan-out request
	// splits into one causal chain per branch (the same fan-out
	// limitation that makes the paper use jaeger for SNMS): the tracer
	// identifies both branch paths, each rooted at the frontend.
	paths := g.CallPaths(tp.Pods)
	sigs := map[string]int{}
	for _, p := range paths {
		sigs[p.Signature()] = p.Count
	}
	if sigs["frontend>UserService"] != 40 || sigs["frontend>MediaService"] != 40 {
		t.Fatalf("fan-out branch paths not identified: %v", sigs)
	}
}

func TestCallPathsEmptyCPG(t *testing.T) {
	g := &CPG{}
	if ps := g.CallPaths(nil); len(ps) != 0 {
		t.Fatalf("empty CPG produced paths: %v", ps)
	}
	if _, ok := g.DominantPath(nil); ok {
		t.Fatal("empty CPG should have no dominant path")
	}
}

func TestCallPathSignatureOrdering(t *testing.T) {
	p := CallPath{Pods: []string{"a", "b", "c"}}
	if p.Signature() != "a>b>c" {
		t.Fatalf("signature = %q", p.Signature())
	}
}

// Failure injection: a lossy capture (dropped and duplicated events) must
// not crash the tracer. The §3.3 mean-invariance identity requires a
// complete log — a dropped SEND shifts every later pairing in its context,
// so loss corrupts the means rather than degrading them gracefully. Real
// deployments watch the capture's drop counters and discard lossy windows;
// this test documents the sensitivity.
func TestTracerSurvivesEventLossButMeansNeedCompleteLogs(t *testing.T) {
	svc := workload.ECommerce()
	evs, truth, tp := generate(t, svc, GenOptions{Requests: 400, Rate: 10, Threads: 8, Seed: 11})

	r := sim.NewRNG(99)
	var lossy []Event
	for _, e := range evs {
		roll := r.Float64()
		if roll < 0.02 {
			continue // 2% drop
		}
		lossy = append(lossy, e)
		if roll > 0.98 {
			lossy = append(lossy, e) // 2% duplicate
		}
	}
	res, err := Analyze(lossy, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("lossy log lost every request")
	}
	// The complete log is exact; the lossy one is corrupted. Verify both
	// halves of the statement so a silent robustness regression (or a
	// silent accuracy regression) fails the test.
	clean, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, c := range svc.Components {
		want := truth.MeanSojourn(c.Name)
		if math.Abs(clean.PerPod[c.Name].MeanPerRequest-want)/want > 1e-6 {
			t.Errorf("%s: complete log should stay exact", c.Name)
		}
		if math.Abs(res.PerPod[c.Name].MeanPerRequest-want)/want > 0.30 {
			corrupted = true
		}
	}
	if !corrupted {
		t.Log("note: this loss pattern happened to preserve the means")
	}
}

func TestTracerToleratesCorruptTimestamps(t *testing.T) {
	svc := workload.Redis()
	evs, _, tp := generate(t, svc, GenOptions{Requests: 200, Rate: 10, Threads: 4, Seed: 13})
	// Shuffle a fraction of timestamps (clock skew between CPUs).
	r := sim.NewRNG(7)
	for i := range evs {
		if r.Float64() < 0.05 {
			evs[i].At += sim.Time(r.Intn(200000)) // up to 200µs skew
		}
	}
	res, err := Analyze(evs, tp.Pods, svc.Graph.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("skewed log lost all requests")
	}
	g := BuildCPG(evs, tp.Pods)
	if !g.Acyclic() {
		t.Fatal("CPG must stay acyclic under timestamp skew (defensive sort)")
	}
}

func TestCallPathsInTracerDemoFlow(t *testing.T) {
	// The discovered structure matches the declared service graphs for
	// every chain service in the catalog.
	for _, svc := range []*workload.Service{workload.Redis(), workload.Solr(), workload.Elgg()} {
		evs, _, tp := generate(t, svc, GenOptions{Requests: 30, Rate: 1, Threads: 8, Seed: 17})
		g := BuildCPG(evs, tp.Pods)
		p, ok := g.DominantPath(tp.Pods)
		if !ok {
			t.Fatalf("%s: no path", svc.Name)
		}
		want := strings.Join(svc.Graph.Paths()[0], ">")
		if p.Signature() != want {
			t.Errorf("%s: discovered %q, declared %q", svc.Name, p.Signature(), want)
		}
	}
}
