package trace

import (
	"fmt"
	"sort"
	"time"

	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// GenOptions controls the synthetic event-log generator that stands in for
// the paper's SystemTap capture of a live service.
type GenOptions struct {
	// Requests is the number of traced requests.
	Requests int
	// Rate is the arrival rate in requests/second; arrivals are Poisson.
	Rate float64
	// Threads is the worker-thread pool size per Servpod; when the
	// concurrency at a pod exceeds it, requests share thread contexts,
	// producing the non-blocking interleavings of Fig. 5.
	Threads int
	// Persistent makes neighbouring Servpods reuse one TCP connection:
	// all requests between a pod pair share the same message identifier
	// (§3.3's persistent-connection ambiguity).
	Persistent bool
	// NoiseEvents is the number of unrelated-process events injected per
	// Servpod host (OS daemons, other tenants) that the tracer must
	// filter out via the context identifier.
	NoiseEvents int
	// Seed drives all randomness.
	Seed uint64
}

// Truth is the generator's ground truth, used to validate the tracer: the
// real per-request sojourns that the event log encodes.
type Truth struct {
	// Sojourn[pod][i] is request i's true local processing time at pod,
	// in seconds.
	Sojourn map[string][]float64
	// E2E[i] is request i's true end-to-end latency in seconds.
	E2E []float64
}

// MeanSojourn returns the true mean sojourn at pod.
func (t *Truth) MeanSojourn(pod string) float64 { return sim.Mean(t.Sojourn[pod]) }

// Topology assigns network identities to the service's Servpods.
type Topology struct {
	Service *workload.Service
	Pods    []PodAddr
	// hostOf and portOf index pods by component name.
	hostOf map[string]string
	portOf map[string]int
}

// NewTopology assigns each component of the service its own host
// 10.0.0.(i+1) and listening port 8000+i — one Servpod per machine, the
// default placement.
func NewTopology(svc *workload.Service) *Topology {
	tp := &Topology{
		Service: svc,
		hostOf:  make(map[string]string),
		portOf:  make(map[string]int),
	}
	for i, c := range svc.Components {
		host := fmt.Sprintf("10.0.0.%d", i+1)
		tp.hostOf[c.Name] = host
		tp.portOf[c.Name] = 8000 + i
		tp.Pods = append(tp.Pods, PodAddr{Name: c.Name, HostIP: host, Programs: []string{c.Name}})
	}
	return tp
}

// clientIP is the load generator's address.
const clientIP = "10.0.0.100"

// netDelay is the one-way network latency between machines.
const netDelay = 100 * time.Microsecond

// fwdFraction is the share of a pod's local processing spent before
// forwarding downstream; the rest happens on the reply path.
const fwdFraction = 0.65

type generator struct {
	tp       *Topology
	opts     GenOptions
	rng      *sim.RNG
	sojourns map[string]queueing.Sojourn
	events   []Event
	truth    *Truth
	msgSeq   int
}

// Generate produces the event log of opts.Requests requests against the
// topology's service, with per-component local processing drawn from the
// supplied sojourn distributions (one per component, typically produced by
// the queueing model at the profiled load level). It returns the
// time-sorted event log and the ground truth.
func Generate(tp *Topology, sojourns map[string]queueing.Sojourn, opts GenOptions) ([]Event, *Truth, error) {
	if opts.Requests <= 0 {
		return nil, nil, fmt.Errorf("trace: Requests must be positive, got %d", opts.Requests)
	}
	if opts.Rate <= 0 {
		return nil, nil, fmt.Errorf("trace: Rate must be positive, got %g", opts.Rate)
	}
	if opts.Threads <= 0 {
		opts.Threads = 4
	}
	for _, c := range tp.Service.Components {
		if _, ok := sojourns[c.Name]; !ok {
			return nil, nil, fmt.Errorf("trace: missing sojourn distribution for component %s", c.Name)
		}
	}
	g := &generator{
		tp:       tp,
		opts:     opts,
		rng:      sim.NewRNG(opts.Seed).Fork("trace-generator"),
		sojourns: sojourns,
		truth: &Truth{
			Sojourn: make(map[string][]float64),
		},
	}
	for _, c := range tp.Service.Components {
		g.truth.Sojourn[c.Name] = make([]float64, opts.Requests)
	}

	at := sim.Time(0)
	for i := 0; i < opts.Requests; i++ {
		at = at.Add(time.Duration(g.rng.ExpFloat64() / opts.Rate * float64(time.Second)))
		g.request(i, at)
	}
	g.injectNoise()
	sort.SliceStable(g.events, func(a, b int) bool { return g.events[a].At < g.events[b].At })
	return g.events, g.truth, nil
}

// ctxFor returns the thread context handling request req at pod.
func (g *generator) ctxFor(pod string, req int) Context {
	return Context{
		HostIP:  g.tp.hostOf[pod],
		Program: pod,
		PID:     1000,
		TID:     req % g.opts.Threads,
	}
}

// msgBetween returns the message identifier for a transfer from src to dst
// handled by thread tid. With persistent connections the identifier is
// fully determined by the pod pair (and reused by every request); otherwise
// an ephemeral source port makes it unique.
func (g *generator) msgBetween(srcHost string, srcPod, dstPod string, tid int) MsgID {
	srcPort := 40000 + tid
	size := 0
	if !g.opts.Persistent {
		g.msgSeq++
		srcPort = 40000 + g.msgSeq
		size = 64 + g.rng.Intn(4000)
	}
	return MsgID{
		SrcIP:   srcHost,
		SrcPort: srcPort,
		DstIP:   g.tp.hostOf[dstPod],
		DstPort: g.tp.portOf[dstPod],
		Size:    size,
	}
}

func (g *generator) emit(t EventType, at sim.Time, ctx Context, msg MsgID) {
	g.events = append(g.events, Event{Type: t, At: at, Ctx: ctx, Msg: msg})
}

// request emits the full event trail of one request: client SEND, the
// recursive walk of the call graph, client RECV.
func (g *generator) request(req int, at sim.Time) {
	root := g.tp.Service.Graph
	entry := root.Comp
	clientCtx := Context{HostIP: clientIP, Program: "client", PID: 1, TID: req % 64}
	reqMsg := MsgID{
		SrcIP: clientIP, SrcPort: 50000 + req,
		DstIP: g.tp.hostOf[entry], DstPort: g.tp.portOf[entry],
		Size: 128,
	}
	g.emit(Send, at, clientCtx, reqMsg)
	arrive := at.Add(netDelay)
	entryCtx := g.ctxFor(entry, req)
	g.emit(Accept, arrive, entryCtx, MsgID{})
	replyAt := g.visit(root, req, arrive, reqMsg)
	// Reply reaches the client; the request call closes at the entry pod.
	g.emit(Recv, replyAt.Add(netDelay), clientCtx, reqMsg.Reverse(256))
	g.emit(Close, replyAt.Add(netDelay/2), entryCtx, MsgID{})
	g.truth.E2E = append(g.truth.E2E, replyAt.Add(netDelay).Sub(at).Seconds())
}

// visit walks the call graph node: the pod receives the request (inMsg),
// spends its forward share of local processing, calls its children, spends
// the return share, and sends the reply. It returns the time the reply
// leaves the pod.
func (g *generator) visit(n *workload.Node, req int, arrive sim.Time, inMsg MsgID) sim.Time {
	pod := n.Comp
	ctx := g.ctxFor(pod, req)
	local := g.sojourns[pod].Sample(g.rng)
	g.truth.Sojourn[pod][req] += local
	g.emit(Recv, arrive, ctx, inMsg)

	if len(n.Children) == 0 {
		depart := arrive.Add(time.Duration(local * float64(time.Second)))
		g.emit(Send, depart, ctx, inMsg.Reverse(256))
		return depart
	}

	fwdDone := arrive.Add(time.Duration(local * fwdFraction * float64(time.Second)))
	var lastReply sim.Time
	if n.Parallel {
		// Fan-out: issue all children back-to-back, wait for the slowest.
		for ci, ch := range n.Children {
			out := g.msgBetween(g.tp.hostOf[pod], pod, ch.Comp, ctx.TID)
			sendAt := fwdDone.Add(time.Duration(ci) * time.Microsecond)
			g.emit(Send, sendAt, ctx, out)
			childReply := g.visit(ch, req, sendAt.Add(netDelay), out)
			replyArrive := childReply.Add(netDelay)
			g.emit(Recv, replyArrive, ctx, out.Reverse(256))
			if replyArrive > lastReply {
				lastReply = replyArrive
			}
		}
	} else {
		// Sequence: call children one after another.
		t := fwdDone
		for _, ch := range n.Children {
			out := g.msgBetween(g.tp.hostOf[pod], pod, ch.Comp, ctx.TID)
			g.emit(Send, t, ctx, out)
			childReply := g.visit(ch, req, t.Add(netDelay), out)
			t = childReply.Add(netDelay)
			g.emit(Recv, t, ctx, out.Reverse(256))
		}
		lastReply = t
	}
	depart := lastReply.Add(time.Duration(local * (1 - fwdFraction) * float64(time.Second)))
	g.emit(Send, depart, ctx, inMsg.Reverse(256))
	return depart
}

// injectNoise adds events from unrelated processes (OS daemons, other
// tenants) on the Servpod hosts: same hosts, different program names and
// foreign traffic, which the tracer must discard via the context filter.
func (g *generator) injectNoise() {
	if g.opts.NoiseEvents <= 0 || len(g.events) == 0 {
		return
	}
	programs := []string{"kworker", "sshd", "containerd", "node_exporter"}
	span := g.events[len(g.events)-1].At
	for _, pod := range g.tp.Pods {
		for i := 0; i < g.opts.NoiseEvents; i++ {
			ctx := Context{
				HostIP:  pod.HostIP,
				Program: programs[g.rng.Intn(len(programs))],
				PID:     2000 + g.rng.Intn(500),
				TID:     g.rng.Intn(8),
			}
			at := sim.Time(g.rng.Float64() * float64(span))
			typ := []EventType{Recv, Send, Accept, Close}[g.rng.Intn(4)]
			msg := MsgID{
				SrcIP: "172.16.0.9", SrcPort: 60000 + g.rng.Intn(1000),
				DstIP: pod.HostIP, DstPort: 22, Size: g.rng.Intn(9000),
			}
			g.emit(typ, at, ctx, msg)
		}
	}
}
