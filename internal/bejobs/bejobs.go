// Package bejobs models the best-effort batch jobs of Table 1: four
// synthetic microbenchmarks that each saturate one shared resource
// (CPU-stress, stream-llc, stream-dram, iperf) and three real workloads
// with mixed pressure (wordcount, imageClassify, LSTM).
//
// A BE job type is described by the per-core pressure it exerts on each
// shared resource and by how many cores it would use running alone on a
// machine. Instances are granted resources by the subcontrollers
// (internal/controller); their progress rate — and hence the normalized
// "BE throughput" metric of §5.1 — follows from the grant.
package bejobs

import (
	"fmt"
	"sort"

	"rhythm/internal/cluster"
)

// Type identifies a BE job type from Table 1.
type Type string

// The seven BE job types of Table 1, plus the big/small intensity variants
// of the two stream benchmarks used in the Fig. 2 characterization.
const (
	CPUStress     Type = "CPU-stress"
	StreamLLC     Type = "stream-llc"
	StreamDRAM    Type = "stream-dram"
	Iperf         Type = "iperf"
	Wordcount     Type = "wordcount"
	ImageClassify Type = "imageClassify"
	LSTM          Type = "LSTM"

	// Intensity variants for §2's characterization: big saturates the
	// resource, small occupies about half of it.
	StreamLLCBig    Type = "stream-llc(big)"
	StreamLLCSmall  Type = "stream-llc(small)"
	StreamDRAMBig   Type = "stream-dram(big)"
	StreamDRAMSmall Type = "stream-dram(small)"
)

// Spec describes the resource behaviour of one BE job type.
type Spec struct {
	Type   Type
	Domain string // Table 1 "Domain" column
	// Intensive is the Table 1 "-intensive" column: which resource the
	// job stresses, or "mixed".
	Intensive string

	// PerCore is the pressure one core of this job exerts on each shared
	// resource dimension. CPU pressure is 1 per core by construction;
	// LLC pressure is in cache ways the job's working set would occupy;
	// MemBW in GB/s; NetBW in Gb/s; Power in watts above idle.
	PerCore cluster.Vector

	// MemoryGB is the per-instance resident set (paper §3.5.2: instances
	// start at 2 GB and are adjusted in 100 MB steps).
	MemoryGB float64

	// SoloCores is how many cores the job uses when it runs alone on a
	// 40-core machine; normalized throughput is measured against this.
	SoloCores int

	// SoloHours is the solo completion time of one job in hours; only
	// the ratio between granted and solo rate matters for the normalized
	// throughput metric, but completion counting (Table 2 "BE kills")
	// uses it.
	SoloHours float64
}

// MinDispatchCores is the smallest free-core count at which placing the
// job on a machine is worthwhile: an eighth of its solo footprint,
// rounded up, at least one core. Placement itself only grants the §3.5.2
// starting slice (a single core), so any machine can technically host
// any job — but Rate is linear in granted cores, so a machine that can
// never grow the instance past SoloCores/8 pins it below 12.5% of its
// solo rate, stretching a half-hour job past four hours while it holds
// memory and a BE slot the whole time. The cluster scheduler
// (internal/scheduler) treats such a machine as a non-fit and keeps the
// job queued for one with real headroom.
func (s Spec) MinDispatchCores() int {
	if min := (s.SoloCores + 7) / 8; min > 1 {
		return min
	}
	return 1
}

// catalog holds the calibrated BE specs. Pressure magnitudes are chosen so
// that "big" variants saturate their resource on the default machine
// (68 GB/s memBW, 20 ways, 10 Gb/s) when running solo, matching the §2
// definition, and the mixed jobs reproduce the orderings of Figs. 9-14
// (LSTM and CPU-stress are CPU-heavy; wordcount and stream-dram are
// memBW-heavy; imageClassify sits in between).
var catalog = map[Type]Spec{
	CPUStress: {
		Type: CPUStress, Domain: "CPU stress testing tool", Intensive: "CPU",
		PerCore:  vec(1.0, 0.05, 0.15, 0, 0, 3.2),
		MemoryGB: 0.5, SoloCores: 38, SoloHours: 0.5,
	},
	StreamLLC: {
		Type: StreamLLC, Domain: "LLC-benchmark in iBench", Intensive: "LLC",
		PerCore:  vec(1.0, 2.5, 0.9, 0, 0, 2.4),
		MemoryGB: 1, SoloCores: 8, SoloHours: 0.5,
	},
	StreamDRAM: {
		Type: StreamDRAM, Domain: "DRAM-benchmark in iBench", Intensive: "DRAM",
		PerCore:  vec(1.0, 0.8, 8.5, 0, 0, 2.8),
		MemoryGB: 4, SoloCores: 8, SoloHours: 0.5,
	},
	Iperf: {
		Type: Iperf, Domain: "Network stress testing tool", Intensive: "Network",
		PerCore:  vec(1.0, 0.1, 0.3, 4.8, 0, 1.6),
		MemoryGB: 0.3, SoloCores: 2, SoloHours: 0.5,
	},
	Wordcount: {
		Type: Wordcount, Domain: "Big data analytics", Intensive: "mixed",
		PerCore:  vec(1.0, 0.9, 3.6, 0.25, 0, 2.6),
		MemoryGB: 2, SoloCores: 32, SoloHours: 1.2,
	},
	ImageClassify: {
		Type: ImageClassify, Domain: "Image classification on CycleGAN", Intensive: "mixed",
		PerCore:  vec(1.0, 0.6, 2.2, 0.05, 0, 3.0),
		MemoryGB: 3, SoloCores: 30, SoloHours: 2.0,
	},
	LSTM: {
		Type: LSTM, Domain: "Deep learning on Tensorflow", Intensive: "mixed",
		PerCore:  vec(1.0, 0.4, 1.6, 0.02, 0, 3.1),
		MemoryGB: 3, SoloCores: 36, SoloHours: 2.5,
	},

	// §2 intensity variants. "big" saturates the target resource on the
	// default machine (8 cores x 8.5 GB/s = 68 GB/s for stream-dram;
	// 8 x 2.5 = 20 ways for stream-llc); "small" halves the pressure.
	StreamLLCBig: {
		Type: StreamLLCBig, Domain: "LLC-benchmark in iBench", Intensive: "LLC",
		PerCore:  vec(1.0, 2.5, 0.9, 0, 0, 2.4),
		MemoryGB: 1, SoloCores: 8, SoloHours: 0.5,
	},
	StreamLLCSmall: {
		Type: StreamLLCSmall, Domain: "LLC-benchmark in iBench", Intensive: "LLC",
		PerCore:  vec(1.0, 1.25, 0.45, 0, 0, 1.9),
		MemoryGB: 1, SoloCores: 8, SoloHours: 0.5,
	},
	StreamDRAMBig: {
		Type: StreamDRAMBig, Domain: "DRAM-benchmark in iBench", Intensive: "DRAM",
		PerCore:  vec(1.0, 0.8, 8.5, 0, 0, 2.8),
		MemoryGB: 4, SoloCores: 8, SoloHours: 0.5,
	},
	StreamDRAMSmall: {
		Type: StreamDRAMSmall, Domain: "DRAM-benchmark in iBench", Intensive: "DRAM",
		PerCore:  vec(1.0, 0.4, 4.25, 0, 0, 2.2),
		MemoryGB: 4, SoloCores: 8, SoloHours: 0.5,
	},
}

func vec(cpu, llc, membw, netbw, mem, power float64) cluster.Vector {
	var v cluster.Vector
	v[cluster.ResCPU] = cpu
	v[cluster.ResLLC] = llc
	v[cluster.ResMemBW] = membw
	v[cluster.ResNetBW] = netbw
	v[cluster.ResMemory] = mem
	v[cluster.ResPower] = power
	return v
}

// Lookup returns the spec for a BE type.
func Lookup(t Type) (Spec, error) {
	s, ok := catalog[t]
	if !ok {
		return Spec{}, fmt.Errorf("bejobs: unknown BE type %q", t)
	}
	return s, nil
}

// MustLookup is Lookup for known-good types; it panics on unknown types.
func MustLookup(t Type) Spec {
	s, err := Lookup(t)
	if err != nil {
		panic(err)
	}
	return s
}

// Types returns the seven Table 1 BE types in a stable order.
func Types() []Type {
	return []Type{CPUStress, StreamLLC, StreamDRAM, Iperf, Wordcount, ImageClassify, LSTM}
}

// EvaluationTypes returns the six types used in the Fig. 9-16 grids
// (iperf is used in §2's characterization but not in the co-location
// grids, which use SL/SD/CS/LS/IC/WC).
func EvaluationTypes() []Type {
	return []Type{StreamLLC, StreamDRAM, CPUStress, LSTM, ImageClassify, Wordcount}
}

// All returns every cataloged type, including intensity variants, sorted.
func All() []Type {
	out := make([]Type, 0, len(catalog))
	for t := range catalog {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// State is the lifecycle state of a BE instance.
type State int

// Instance lifecycle states. Suspended instances keep memory but do not run
// (paper's SuspendBE); killed instances are terminated and their resources
// released (StopBE).
const (
	Running State = iota
	Suspended
	Killed
	Finished
)

// String names the state.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Killed:
		return "killed"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Instance is one running BE job on one machine.
type Instance struct {
	ID    string
	Spec  Spec
	State State
	// Progress in [0,1]; reaching 1 completes the job.
	Progress float64
	// Completions counts jobs finished by this instance slot (a finished
	// instance restarts a fresh job, keeping its allocation).
	Completions int
}

// NewInstance returns a running instance of the given type.
func NewInstance(id string, t Type) (*Instance, error) {
	s, err := Lookup(t)
	if err != nil {
		return nil, err
	}
	return &Instance{ID: id, Spec: s, State: Running}, nil
}

// Demand returns the pressure this instance exerts on the machine's shared
// resources given its granted core count. Suspended and killed instances
// exert no pressure.
func (in *Instance) Demand(grantedCores int) cluster.Vector {
	if in.State != Running || grantedCores <= 0 {
		return cluster.Vector{}
	}
	return in.Spec.PerCore.Scale(float64(grantedCores))
}

// Rate returns the instantaneous normalized progress rate: the fraction of
// the job's solo (whole-machine) rate it achieves with grantedCores cores
// and a resource-satisfaction factor sat in [0,1] reflecting how much of
// its bandwidth demands the machine can actually serve.
func (in *Instance) Rate(grantedCores int, sat float64) float64 {
	if in.State != Running || grantedCores <= 0 {
		return 0
	}
	if sat < 0 {
		sat = 0
	} else if sat > 1 {
		sat = 1
	}
	return float64(grantedCores) / float64(in.Spec.SoloCores) * sat
}

// Advance progresses the instance by dt hours at the given normalized rate
// and returns the number of job completions that occurred.
func (in *Instance) Advance(rate, dtHours float64) int {
	if in.State != Running || rate <= 0 {
		return 0
	}
	in.Progress += rate * dtHours / in.Spec.SoloHours
	done := 0
	for in.Progress >= 1 {
		in.Progress -= 1
		in.Completions++
		done++
	}
	return done
}
