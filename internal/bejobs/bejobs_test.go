package bejobs

import (
	"math"
	"testing"
	"testing/quick"

	"rhythm/internal/cluster"
)

func TestCatalogComplete(t *testing.T) {
	for _, ty := range Types() {
		s, err := Lookup(ty)
		if err != nil {
			t.Fatalf("missing catalog entry for %s: %v", ty, err)
		}
		if s.Type != ty {
			t.Errorf("%s: spec type mismatch %s", ty, s.Type)
		}
		if s.SoloCores <= 0 || s.SoloHours <= 0 || s.MemoryGB <= 0 {
			t.Errorf("%s: non-positive solo parameters %+v", ty, s)
		}
		if s.PerCore[cluster.ResCPU] != 1 {
			t.Errorf("%s: per-core CPU pressure should be 1", ty)
		}
	}
	if len(Types()) != 7 {
		t.Fatalf("Table 1 lists 7 BE jobs, catalog has %d", len(Types()))
	}
	if len(EvaluationTypes()) != 6 {
		t.Fatalf("evaluation grid uses 6 BE jobs, got %d", len(EvaluationTypes()))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("bitcoin-miner"); err == nil {
		t.Fatal("unknown type accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup should panic on unknown type")
		}
	}()
	MustLookup("bitcoin-miner")
}

func TestIntensityVariants(t *testing.T) {
	big := MustLookup(StreamDRAMBig)
	small := MustLookup(StreamDRAMSmall)
	if small.PerCore[cluster.ResMemBW] >= big.PerCore[cluster.ResMemBW] {
		t.Fatal("small stream-dram should exert less memBW pressure than big")
	}
	// Per §2: big saturates the machine's DRAM bandwidth when solo.
	solo := big.PerCore[cluster.ResMemBW] * float64(big.SoloCores)
	if solo < cluster.DefaultSpec().MemBWGBs {
		t.Fatalf("stream-dram(big) solo pressure %v should saturate %v GB/s",
			solo, cluster.DefaultSpec().MemBWGBs)
	}
	lb, ls := MustLookup(StreamLLCBig), MustLookup(StreamLLCSmall)
	if ls.PerCore[cluster.ResLLC] >= lb.PerCore[cluster.ResLLC] {
		t.Fatal("small stream-llc should want fewer ways than big")
	}
	if got := lb.PerCore[cluster.ResLLC] * float64(lb.SoloCores); got < float64(cluster.DefaultSpec().LLCWays) {
		t.Fatalf("stream-llc(big) solo occupancy %v should cover the %d ways",
			got, cluster.DefaultSpec().LLCWays)
	}
}

func TestIntensiveColumnsMatchPressure(t *testing.T) {
	// The synthetic benchmarks must dominate their declared dimension.
	cs := MustLookup(CPUStress)
	if cs.PerCore[cluster.ResMemBW] > 1 || cs.PerCore[cluster.ResNetBW] > 0 {
		t.Error("CPU-stress should exert little non-CPU pressure")
	}
	ip := MustLookup(Iperf)
	if ip.PerCore[cluster.ResNetBW] <= 1 {
		t.Error("iperf should exert strong network pressure")
	}
	sd := MustLookup(StreamDRAM)
	if sd.PerCore[cluster.ResMemBW] <= MustLookup(Wordcount).PerCore[cluster.ResMemBW] {
		t.Error("stream-dram should exert more memBW pressure per core than wordcount")
	}
}

func TestInstanceLifecycle(t *testing.T) {
	in, err := NewInstance("wc-0", Wordcount)
	if err != nil {
		t.Fatal(err)
	}
	if in.State != Running {
		t.Fatal("new instance should run")
	}
	// A full solo grant for SoloHours should complete exactly one job.
	done := in.Advance(1.0, in.Spec.SoloHours)
	if done != 1 || in.Completions != 1 {
		t.Fatalf("done=%d completions=%d, want 1", done, in.Completions)
	}
	if in.Progress > 1e-9 {
		t.Fatalf("progress should wrap to ~0, got %v", in.Progress)
	}
}

func TestSuspendedInstanceIsInert(t *testing.T) {
	in, _ := NewInstance("ls-0", LSTM)
	in.State = Suspended
	if d := in.Demand(8); d != (cluster.Vector{}) {
		t.Fatalf("suspended demand = %v, want zero", d)
	}
	if r := in.Rate(8, 1); r != 0 {
		t.Fatalf("suspended rate = %v, want 0", r)
	}
	if in.Advance(1, 10) != 0 {
		t.Fatal("suspended instance advanced")
	}
}

func TestDemandScalesWithCores(t *testing.T) {
	in, _ := NewInstance("sd-0", StreamDRAM)
	d4 := in.Demand(4)
	d8 := in.Demand(8)
	for r := 0; r < cluster.NumResources; r++ {
		if math.Abs(d8[r]-2*d4[r]) > 1e-12 {
			t.Fatalf("demand not linear in cores at resource %d", r)
		}
	}
	if in.Demand(0) != (cluster.Vector{}) {
		t.Fatal("zero cores should mean zero demand")
	}
}

func TestRateProperties(t *testing.T) {
	f := func(seed int64) bool {
		in, _ := NewInstance("x", CPUStress)
		cores := int(uint64(seed)%40) + 1
		sat := math.Mod(math.Abs(float64(seed))/1e9, 1.5) // may exceed 1
		r := in.Rate(cores, sat)
		// Rate is non-negative and capped by cores/SoloCores.
		return r >= 0 && r <= float64(cores)/float64(in.Spec.SoloCores)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateFullMachineIsUnity(t *testing.T) {
	in, _ := NewInstance("x", LSTM)
	r := in.Rate(in.Spec.SoloCores, 1)
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("solo-equivalent grant should run at rate 1, got %v", r)
	}
}

func TestAdvanceMultipleCompletions(t *testing.T) {
	in, _ := NewInstance("cs-0", CPUStress) // SoloHours = 0.5
	done := in.Advance(1.0, 1.6)            // 3.2 job-units
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	if math.Abs(in.Progress-0.2) > 1e-9 {
		t.Fatalf("progress = %v, want 0.2", in.Progress)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Running: "running", Suspended: "suspended", Killed: "killed", Finished: "finished",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(42).String() != "state(42)" {
		t.Error("unknown state string")
	}
}

func TestAllIncludesVariants(t *testing.T) {
	all := All()
	if len(all) != 11 { // 7 base + 4 intensity variants
		t.Fatalf("All() = %d entries, want 11", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatal("All() not sorted")
		}
	}
}
