// Package replay reads recorded traffic traces — CSV or JSONL files of
// (timestamp, load-or-QPS) samples — and turns them into loadgen.Pattern
// arrival sources, so a scenario (SCENARIOS.md) can offer real recorded
// traffic instead of a synthetic process. The file formats are designed
// for exports from monitoring systems: one sample per line, seconds-based
// timestamps relative to run start, values either as a load fraction
// ("load" mode, dimensionless) or as an absolute request rate ("qps"
// mode, rescaled by the consumer).
//
// # Formats
//
// CSV: a header line naming the two columns — "t_s,load" or "t_s,qps" —
// then one "time,value" row per sample. Blank lines and lines starting
// with '#' are skipped.
//
// JSONL: one JSON object per line, {"t_s": 30, "load": 0.8} or
// {"t_s": 30, "qps": 900}. Every line must use the same value key.
//
// # Determinism and thread safety
//
// A Trace is plain recorded data: reading one draws no randomness, and
// the Pattern it yields is a pure interpolation over the immutable sample
// slice — safe for concurrent readers and byte-identical across -jobs
// counts by construction. Replayed runs therefore inherit the repo-wide
// determinism contract with no substream bookkeeping at all.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rhythm/internal/loadgen"
	"rhythm/internal/sim"
)

// Value modes: what a trace's value column measures.
const (
	// ModeLoad values are offered-load fractions (or arrival intensities
	// around 1 when used as a scenario class source).
	ModeLoad = "load"
	// ModeQPS values are absolute request rates; the consumer divides by
	// its own rate scale (Pattern's scale argument).
	ModeQPS = "qps"
)

// Interpolation modes for Trace.Pattern.
const (
	// InterpStep holds each sample's value until the next sample.
	InterpStep = "step"
	// InterpLinear interpolates linearly between samples.
	InterpLinear = "linear"
)

// Point is one recorded sample: virtual seconds from run start and the
// value (load fraction or QPS, per the trace mode).
type Point struct {
	T float64
	V float64
}

// Trace is a validated, immutable recorded-traffic trace.
type Trace struct {
	// Name labels the trace in errors and output (usually the file path).
	Name string
	// Mode is ModeLoad or ModeQPS, detected from the file header.
	Mode string
	// Points are the samples in non-decreasing time order.
	Points []Point
}

// Open reads a trace file, choosing the format by extension: .csv for
// CSV, .jsonl (or .ndjson) for JSONL.
func Open(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadCSV(path, f)
	case ".jsonl", ".ndjson":
		return ReadJSONL(path, f)
	default:
		return nil, fmt.Errorf("replay: %s: unknown trace extension %q (want .csv, .jsonl or .ndjson)", path, ext)
	}
}

// ReadCSV parses a CSV trace: a "t_s,load" or "t_s,qps" header, then one
// "time,value" row per line. name labels errors.
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("replay: %s:%d: want 2 comma-separated fields, got %d", name, lineNo, len(fields))
		}
		c0, c1 := strings.TrimSpace(fields[0]), strings.TrimSpace(fields[1])
		if tr.Mode == "" {
			// The first data line must be the header naming the columns.
			if c0 != "t_s" || (c1 != ModeLoad && c1 != ModeQPS) {
				return nil, fmt.Errorf("replay: %s:%d: want header \"t_s,load\" or \"t_s,qps\", got %q", name, lineNo, line)
			}
			tr.Mode = c1
			continue
		}
		t, err := strconv.ParseFloat(c0, 64)
		if err != nil {
			return nil, fmt.Errorf("replay: %s:%d: bad time %q: %v", name, lineNo, c0, err)
		}
		v, err := strconv.ParseFloat(c1, 64)
		if err != nil {
			return nil, fmt.Errorf("replay: %s:%d: bad value %q: %v", name, lineNo, c1, err)
		}
		tr.Points = append(tr.Points, Point{T: t, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %s: %w", name, err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// jsonlPoint is the JSONL line shape; exactly one of Load/QPS is set.
type jsonlPoint struct {
	TS   *float64 `json:"t_s"`
	Load *float64 `json:"load"`
	QPS  *float64 `json:"qps"`
}

// ReadJSONL parses a JSONL trace: one {"t_s": ..., "load": ...} or
// {"t_s": ..., "qps": ...} object per line, all lines in the same mode.
func ReadJSONL(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var p jsonlPoint
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("replay: %s:%d: %v", name, lineNo, err)
		}
		if p.TS == nil {
			return nil, fmt.Errorf("replay: %s:%d: missing \"t_s\"", name, lineNo)
		}
		var v float64
		var mode string
		switch {
		case p.Load != nil && p.QPS != nil:
			return nil, fmt.Errorf("replay: %s:%d: both \"load\" and \"qps\" set", name, lineNo)
		case p.Load != nil:
			v, mode = *p.Load, ModeLoad
		case p.QPS != nil:
			v, mode = *p.QPS, ModeQPS
		default:
			return nil, fmt.Errorf("replay: %s:%d: want a \"load\" or \"qps\" value", name, lineNo)
		}
		if tr.Mode == "" {
			tr.Mode = mode
		} else if tr.Mode != mode {
			return nil, fmt.Errorf("replay: %s:%d: mixed %q and %q values in one trace", name, lineNo, tr.Mode, mode)
		}
		tr.Points = append(tr.Points, Point{T: *p.TS, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %s: %w", name, err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Validate rejects empty traces, out-of-order timestamps and
// non-finite or negative samples.
func (tr *Trace) Validate() error {
	if tr.Mode != ModeLoad && tr.Mode != ModeQPS {
		return fmt.Errorf("replay: %s: mode must be %q or %q, got %q", tr.Name, ModeLoad, ModeQPS, tr.Mode)
	}
	if len(tr.Points) == 0 {
		return fmt.Errorf("replay: %s: trace has no samples", tr.Name)
	}
	for i, p := range tr.Points {
		if math.IsNaN(p.T) || math.IsInf(p.T, 0) || p.T < 0 {
			return fmt.Errorf("replay: %s: sample %d: time %g must be finite and >= 0", tr.Name, i, p.T)
		}
		if i > 0 && p.T < tr.Points[i-1].T {
			return fmt.Errorf("replay: %s: sample %d: time %g goes backwards (previous %g)", tr.Name, i, p.T, tr.Points[i-1].T)
		}
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) || p.V < 0 {
			return fmt.Errorf("replay: %s: sample %d: value %g must be finite and >= 0", tr.Name, i, p.V)
		}
	}
	return nil
}

// Duration returns the time of the last sample.
func (tr *Trace) Duration() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T
}

// pattern is the interpolating loadgen.Pattern over a trace.
type pattern struct {
	tr     *Trace
	scale  float64
	linear bool
}

// Pattern returns the trace as a load pattern: each sample's value times
// scale, held (InterpStep) or linearly interpolated (InterpLinear)
// between samples, clamped to the first value before the trace and the
// last value after it. For ModeQPS traces the caller passes
// scale = 1/rateQPS to normalize against its own rate; for ModeLoad
// traces scale is usually 1.
func (tr *Trace) Pattern(scale float64, interp string) (loadgen.Pattern, error) {
	switch interp {
	case InterpStep, InterpLinear:
	default:
		return nil, fmt.Errorf("replay: %s: interp must be %q or %q, got %q", tr.Name, InterpStep, InterpLinear, interp)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("replay: %s: pattern scale must be positive and finite, got %g", tr.Name, scale)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &pattern{tr: tr, scale: scale, linear: interp == InterpLinear}, nil
}

// Load returns the interpolated trace value at t. Pure over immutable
// data; safe for concurrent readers.
func (p *pattern) Load(t sim.Time) float64 {
	pts := p.tr.Points
	ts := t.Seconds()
	// First sample strictly after ts; pts[i-1] is then the last sample at
	// or before ts (the one whose value holds at exactly its timestamp —
	// with duplicate timestamps the later sample wins).
	i := sort.Search(len(pts), func(k int) bool { return pts[k].T > ts })
	switch {
	case i == 0:
		return pts[0].V * p.scale
	case i == len(pts):
		return pts[len(pts)-1].V * p.scale
	}
	if !p.linear {
		return pts[i-1].V * p.scale
	}
	a, b := pts[i-1], pts[i]
	if b.T == a.T {
		return b.V * p.scale
	}
	frac := (ts - a.T) / (b.T - a.T)
	return (a.V*(1-frac) + b.V*frac) * p.scale
}
