package replay

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rhythm/internal/sim"
)

func at(t *testing.T, p interface{ Load(sim.Time) float64 }, sec float64) float64 {
	t.Helper()
	return p.Load(sim.Time(time.Duration(sec * float64(time.Second))))
}

func TestReadCSV(t *testing.T) {
	const src = `# comment
t_s,load

0,1.0
10,2.0
20,0.5
`
	tr, err := ReadCSV("test.csv", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mode != ModeLoad {
		t.Fatalf("mode = %q, want %q", tr.Mode, ModeLoad)
	}
	if len(tr.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(tr.Points))
	}
	if d := tr.Duration(); d != 20 {
		t.Fatalf("Duration = %g, want 20", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing header", "0,1.0\n", "want header"},
		{"bad header mode", "t_s,requests\n0,1\n", "want header"},
		{"three fields", "t_s,load\n0,1,2\n", "want 2 comma-separated fields"},
		{"bad time", "t_s,load\nx,1\n", "bad time"},
		{"bad value", "t_s,load\n0,x\n", "bad value"},
		{"empty", "t_s,load\n", "no samples"},
		{"backwards time", "t_s,load\n10,1\n5,1\n", "goes backwards"},
		{"negative value", "t_s,load\n0,-1\n", "must be finite and >= 0"},
		{"negative time", "t_s,load\n-1,1\n", "must be finite and >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV("bad.csv", strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadJSONL(t *testing.T) {
	const src = `{"t_s": 0, "qps": 100}
# comment
{"t_s": 30, "qps": 400}
{"t_s": 60, "qps": 50}
`
	tr, err := ReadJSONL("test.jsonl", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mode != ModeQPS {
		t.Fatalf("mode = %q, want %q", tr.Mode, ModeQPS)
	}
	if len(tr.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(tr.Points))
	}
	if tr.Points[1].V != 400 {
		t.Fatalf("point 1 value = %g, want 400", tr.Points[1].V)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing t_s", `{"load": 1}`, `missing "t_s"`},
		{"no value", `{"t_s": 0}`, `want a "load" or "qps" value`},
		{"both values", `{"t_s": 0, "load": 1, "qps": 2}`, "both"},
		{"unknown field", `{"t_s": 0, "load": 1, "extra": 2}`, "unknown field"},
		{"mixed modes", "{\"t_s\": 0, \"load\": 1}\n{\"t_s\": 1, \"qps\": 2}", "mixed"},
		{"not json", "hello", "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL("bad.jsonl", strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestOpenDispatchesByExtension(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "a.csv")
	if err := os.WriteFile(csv, []byte("t_s,load\n0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonl := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(jsonl, []byte(`{"t_s": 0, "qps": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "c.txt")
	if err := os.WriteFile(bad, []byte("t_s,load\n0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if tr, err := Open(csv); err != nil || tr.Mode != ModeLoad {
		t.Fatalf("Open(csv) = %v, %v", tr, err)
	}
	if tr, err := Open(jsonl); err != nil || tr.Mode != ModeQPS {
		t.Fatalf("Open(jsonl) = %v, %v", tr, err)
	}
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "unknown trace extension") {
		t.Fatalf("Open(txt) err = %v, want unknown-extension error", err)
	}
	if _, err := Open(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("Open(missing) succeeded, want error")
	}
}

func TestPatternStep(t *testing.T) {
	tr := &Trace{Name: "t", Mode: ModeLoad, Points: []Point{{0, 1}, {10, 2}, {20, 0.5}}}
	p, err := tr.Pattern(1, InterpStep)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ sec, want float64 }{
		{0, 1}, {5, 1}, {10, 2}, {15, 2}, {20, 0.5}, {100, 0.5},
	} {
		if got := at(t, p, tc.sec); got != tc.want {
			t.Errorf("step Load(%gs) = %g, want %g", tc.sec, got, tc.want)
		}
	}
}

func TestPatternLinear(t *testing.T) {
	tr := &Trace{Name: "t", Mode: ModeLoad, Points: []Point{{0, 1}, {10, 2}, {20, 0.5}}}
	p, err := tr.Pattern(1, InterpLinear)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ sec, want float64 }{
		{0, 1}, {5, 1.5}, {10, 2}, {15, 1.25}, {20, 0.5}, {100, 0.5},
	} {
		if got := at(t, p, tc.sec); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("linear Load(%gs) = %g, want %g", tc.sec, got, tc.want)
		}
	}
}

func TestPatternScaleAndDuplicateTimes(t *testing.T) {
	// QPS trace: scale = 1/rate normalizes to intensity around 1.
	tr := &Trace{Name: "t", Mode: ModeQPS, Points: []Point{{0, 100}, {10, 100}, {10, 300}, {20, 300}}}
	p, err := tr.Pattern(1.0/100, InterpLinear)
	if err != nil {
		t.Fatal(err)
	}
	if got := at(t, p, 5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Load(5s) = %g, want 1", got)
	}
	// Duplicate timestamp: the later sample wins at exactly t=10.
	if got := at(t, p, 10); math.Abs(got-1) > 1e-12 && math.Abs(got-3) > 1e-12 {
		t.Fatalf("Load(10s) = %g, want 1 or 3 (a defined sample value)", got)
	}
	if got := at(t, p, 15); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Load(15s) = %g, want 3", got)
	}
}

func TestPatternErrors(t *testing.T) {
	tr := &Trace{Name: "t", Mode: ModeLoad, Points: []Point{{0, 1}}}
	if _, err := tr.Pattern(1, "cubic"); err == nil || !strings.Contains(err.Error(), "interp") {
		t.Fatalf("bad interp err = %v", err)
	}
	if _, err := tr.Pattern(0, InterpStep); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Fatalf("zero scale err = %v", err)
	}
	if _, err := tr.Pattern(math.Inf(1), InterpStep); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Fatalf("inf scale err = %v", err)
	}
	empty := &Trace{Name: "e", Mode: ModeLoad}
	if _, err := empty.Pattern(1, InterpStep); err == nil {
		t.Fatal("empty trace Pattern succeeded, want error")
	}
}

func TestPatternDeterministicAndConcurrent(t *testing.T) {
	tr := &Trace{Name: "t", Mode: ModeLoad, Points: []Point{{0, 1}, {30, 3}, {60, 0.2}}}
	p, err := tr.Pattern(1, InterpLinear)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 61)
	for s := range want {
		want[s] = at(t, p, float64(s))
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for s := 0; s <= 60; s++ {
				if got := p.Load(sim.Time(time.Duration(s) * time.Second)); got != want[s] {
					done <- fmt.Errorf("Load(%ds) = %g, want %g", s, got, want[s])
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
