// Package analyzer implements the contribution analyzer of §3.4: it turns
// the solo-run load-sweep profile of an LC service (per-Servpod mean
// sojourn times and the overall tail latency at each load level) into the
// per-Servpod tail-latency contributions that drive Rhythm's thresholds.
//
// The contribution of Servpod i is (Equations 1-5 of the paper):
//
//	P_i  = T̄_i / Σ_k T̄_k                        — sojourn-time weight
//	ρ_i  = Pearson(T_i^j, T_tail^j) over loads j — correlation with tail
//	V_i  = (1/T̄_i)·sqrt(Σ_j (T_i^j-T̄_i)² / (m(m-1))) — normalized CoV
//	C_i  = ρ_i · P_i · V_i                        — contribution (Eq. 4)
//	C_i  = α_i · ρ_i · P_i · V_i                  — fan-out scaling (Eq. 5)
//
// where α_i < 1 for Servpods off the critical path R: α_i is the mean
// latency of the longest path through i divided by the critical path's.
package analyzer

import (
	"fmt"
	"math"

	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// LoadProfile is the solo-run sweep produced by the profiler: for each of
// the m load levels, the mean sojourn per Servpod and the overall tail
// latency.
type LoadProfile struct {
	// Levels are the swept load fractions, ascending.
	Levels []float64
	// Sojourns maps Servpod name to its mean sojourn time (seconds) at
	// each load level.
	Sojourns map[string][]float64
	// Tail is the overall tail latency (seconds) at each load level.
	Tail []float64
}

// Validate reports structural problems with the profile.
func (p *LoadProfile) Validate() error {
	m := len(p.Levels)
	if m < 2 {
		return fmt.Errorf("analyzer: need at least 2 load levels, got %d", m)
	}
	if len(p.Tail) != m {
		return fmt.Errorf("analyzer: %d tail samples for %d levels", len(p.Tail), m)
	}
	if len(p.Sojourns) == 0 {
		return fmt.Errorf("analyzer: no Servpod sojourn series")
	}
	for pod, s := range p.Sojourns {
		if len(s) != m {
			return fmt.Errorf("analyzer: pod %s has %d sojourn samples for %d levels", pod, len(s), m)
		}
	}
	return nil
}

// Contribution is the analyzed contribution of one Servpod.
type Contribution struct {
	Pod string
	// MeanSojourn is T̄_i: the mean sojourn across all load levels.
	MeanSojourn float64
	// Weight is P_i (Eq. 1).
	Weight float64
	// Rho is the Pearson correlation with tail latency (Eq. 2), clamped
	// to [0, 1]: a Servpod anti-correlated with the tail cannot be said
	// to contribute to it.
	Rho float64
	// CoV is V_i (Eq. 3).
	CoV float64
	// Alpha is the Eq. 5 critical-path factor (1 on the critical path).
	Alpha float64
	// Raw is C_i = α·ρ·P·V (Eq. 5).
	Raw float64
	// Normalized is Raw scaled so contributions sum to 1 across pods;
	// this is the form §5.3.2 reports (0.295/0.14/0.565 for SNMS) and
	// the thresholding algorithm consumes.
	Normalized float64
}

// Analyze computes the contribution of every Servpod in the profile. The
// call graph supplies the critical-path structure for Eq. 5; a nil graph
// treats every pod as on the critical path (α = 1).
func Analyze(p *LoadProfile, graph *workload.Node) ([]Contribution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pods := podOrder(p, graph)
	m := float64(len(p.Levels))

	// T̄_i and Σ T̄_k.
	means := make(map[string]float64, len(pods))
	var total float64
	for _, pod := range pods {
		mu := sim.Mean(p.Sojourns[pod])
		means[pod] = mu
		total += mu
	}
	if total <= 0 {
		return nil, fmt.Errorf("analyzer: all sojourn means are zero")
	}

	alphas := alphaFactors(means, graph)

	out := make([]Contribution, 0, len(pods))
	var rawSum float64
	for _, pod := range pods {
		s := p.Sojourns[pod]
		mu := means[pod]
		c := Contribution{
			Pod:         pod,
			MeanSojourn: mu,
			Weight:      mu / total,
			Rho:         math.Max(0, sim.Pearson(s, p.Tail)),
			Alpha:       alphas[pod],
		}
		// Eq. 3: normalized coefficient of variation across load levels.
		if mu > 0 {
			var ss float64
			for _, v := range s {
				ss += (v - mu) * (v - mu)
			}
			c.CoV = math.Sqrt(ss/(m*(m-1))) / mu
		}
		c.Raw = c.Alpha * c.Rho * c.Weight * c.CoV
		rawSum += c.Raw
		out = append(out, c)
	}
	if rawSum > 0 {
		for i := range out {
			out[i].Normalized = out[i].Raw / rawSum
		}
	} else {
		// Degenerate profile (e.g. perfectly flat sojourns): fall back to
		// sojourn weights so the thresholding algorithm still has a
		// usable ordering.
		for i := range out {
			out[i].Normalized = out[i].Weight
		}
	}
	return out, nil
}

// podOrder returns the pods in graph order when available (stable output
// for printing), otherwise sorted map order.
func podOrder(p *LoadProfile, graph *workload.Node) []string {
	if graph != nil {
		var out []string
		for _, name := range graph.Components() {
			if _, ok := p.Sojourns[name]; ok {
				out = append(out, name)
			}
		}
		if len(out) == len(p.Sojourns) {
			return out
		}
	}
	out := make([]string, 0, len(p.Sojourns))
	for pod := range p.Sojourns {
		out = append(out, pod)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// alphaFactors computes Eq. 5's α for every pod: 1 on the critical path
// (the root-to-leaf path with the largest total mean sojourn), and the
// ratio of the longest path through the pod to the critical path
// otherwise.
func alphaFactors(means map[string]float64, graph *workload.Node) map[string]float64 {
	alphas := make(map[string]float64, len(means))
	for pod := range means {
		alphas[pod] = 1
	}
	if graph == nil {
		return alphas
	}
	paths := graph.Paths()
	if len(paths) < 2 {
		return alphas // chain: everything is critical
	}
	pathSum := func(path []string) float64 {
		var s float64
		for _, pod := range path {
			s += means[pod]
		}
		return s
	}
	critical, criticalSum := paths[0], pathSum(paths[0])
	for _, path := range paths[1:] {
		if s := pathSum(path); s > criticalSum {
			critical, criticalSum = path, s
		}
	}
	onCritical := make(map[string]bool, len(critical))
	for _, pod := range critical {
		onCritical[pod] = true
	}
	for pod := range means {
		if onCritical[pod] || criticalSum <= 0 {
			continue
		}
		best := 0.0
		for _, path := range paths {
			through := false
			for _, q := range path {
				if q == pod {
					through = true
					break
				}
			}
			if through {
				if s := pathSum(path); s > best {
					best = s
				}
			}
		}
		alphas[pod] = best / criticalSum
	}
	return alphas
}

// loadlimitMargin guards the Fig. 8 rule against sampling noise: a level
// only counts as "fluctuating above the average" when it exceeds it by
// this relative margin. Steady pods (Amoeba, Zookeeper) whose measured
// CoV wanders a few percent around a flat line then keep a high loadlimit
// instead of tripping on noise.
const loadlimitMargin = 0.10

// Loadlimit applies the Fig. 8 rule: given the per-level CoV of a
// Servpod's sojourn times, the loadlimit is the first load level whose CoV
// exceeds the sweep-average CoV (by the noise margin).
//
// Fallback contract: when no level exceeds the threshold — a flat or
// noise-only CoV curve with no detectable knee — Loadlimit returns the
// LAST sweep level, deliberately: a pod whose variability never rises
// above its own average is steady at every measured load, so it tolerates
// BE co-location up to the top of the sweep (this is what gives Zookeeper
// its 0.93 loadlimit and makes Solr the biggest Rhythm winner, Figs.
// 12-15). Callers therefore never receive an error for a knee-less curve;
// a future knee-detection change that wants different fallback behavior
// must update the pinning test in analyzer_test.go as a deliberate
// decision.
func Loadlimit(levels, cov []float64) (float64, error) {
	if len(levels) != len(cov) || len(levels) == 0 {
		return 0, fmt.Errorf("analyzer: loadlimit needs matching non-empty series, got %d/%d",
			len(levels), len(cov))
	}
	threshold := sim.Mean(cov) * (1 + loadlimitMargin)
	for i, c := range cov {
		if c > threshold {
			return levels[i], nil
		}
	}
	return levels[len(levels)-1], nil
}
