package analyzer

import (
	"math"
	"testing"
	"testing/quick"

	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// syntheticProfile builds a 3-pod profile where pod "hot" grows steeply
// and noisily with load (high contribution), "warm" grows mildly, and
// "cold" is flat (near-zero contribution).
func syntheticProfile() *LoadProfile {
	levels := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	p := &LoadProfile{
		Levels:   levels,
		Sojourns: map[string][]float64{},
	}
	for _, l := range levels {
		p.Sojourns["hot"] = append(p.Sojourns["hot"], 0.020+0.100*l*l)
		p.Sojourns["warm"] = append(p.Sojourns["warm"], 0.030+0.010*l)
		p.Sojourns["cold"] = append(p.Sojourns["cold"], 0.005)
		p.Tail = append(p.Tail, 0.080+0.300*l*l)
	}
	return p
}

func byPod(cs []Contribution) map[string]Contribution {
	out := map[string]Contribution{}
	for _, c := range cs {
		out[c.Pod] = c
	}
	return out
}

func TestContributionOrdering(t *testing.T) {
	cs, err := Analyze(syntheticProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := byPod(cs)
	if !(m["hot"].Normalized > m["warm"].Normalized) {
		t.Fatalf("hot should dominate warm: %+v", m)
	}
	if !(m["warm"].Normalized >= m["cold"].Normalized) {
		t.Fatalf("warm should dominate cold: %+v", m)
	}
	// Cold pod: constant sojourn => zero CoV => zero raw contribution.
	if m["cold"].Raw != 0 {
		t.Fatalf("flat pod should contribute 0, got %v", m["cold"].Raw)
	}
}

func TestContributionsSumToOne(t *testing.T) {
	cs, err := Analyze(syntheticProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range cs {
		sum += c.Normalized
		if c.Normalized < 0 {
			t.Fatalf("negative normalized contribution: %+v", c)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("contributions sum to %v", sum)
	}
}

func TestWeightsMatchEquation1(t *testing.T) {
	p := syntheticProfile()
	cs, _ := Analyze(p, nil)
	var total float64
	for _, s := range p.Sojourns {
		total += sim.Mean(s)
	}
	for _, c := range cs {
		want := sim.Mean(p.Sojourns[c.Pod]) / total
		if math.Abs(c.Weight-want) > 1e-12 {
			t.Fatalf("%s: weight %v, want %v", c.Pod, c.Weight, want)
		}
	}
}

func TestRhoClampedNonNegative(t *testing.T) {
	p := syntheticProfile()
	// An anti-correlated pod: sojourn shrinks as tail grows.
	p.Sojourns["anti"] = []float64{0.050, 0.040, 0.030, 0.020, 0.010}
	cs, err := Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := byPod(cs)
	if m["anti"].Rho != 0 || m["anti"].Raw != 0 {
		t.Fatalf("anti-correlated pod should have zero contribution: %+v", m["anti"])
	}
}

func TestEquation3MatchesHandComputation(t *testing.T) {
	levels := []float64{0.2, 0.4, 0.6}
	s := []float64{1.0, 2.0, 3.0}
	p := &LoadProfile{
		Levels:   levels,
		Sojourns: map[string][]float64{"x": s, "y": {1, 1.1, 1.2}},
		Tail:     []float64{2, 4, 6},
	}
	cs, err := Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := byPod(cs)
	// V = (1/2) * sqrt(((1-2)^2+(2-2)^2+(3-2)^2) / (3*2)) = 0.5*sqrt(1/3)
	want := 0.5 * math.Sqrt(1.0/3.0)
	if math.Abs(m["x"].CoV-want) > 1e-12 {
		t.Fatalf("V = %v, want %v", m["x"].CoV, want)
	}
	// Perfectly correlated with tail: rho = 1.
	if math.Abs(m["x"].Rho-1) > 1e-12 {
		t.Fatalf("rho = %v, want 1", m["x"].Rho)
	}
}

func TestAlphaOnChainIsOne(t *testing.T) {
	svc := workload.ECommerce()
	p := &LoadProfile{
		Levels:   []float64{0.2, 0.5, 0.8},
		Sojourns: map[string][]float64{},
		Tail:     []float64{0.05, 0.1, 0.2},
	}
	for _, c := range svc.Components {
		p.Sojourns[c.Name] = []float64{0.01, 0.02, 0.04}
	}
	cs, err := Analyze(p, svc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if c.Alpha != 1 {
			t.Fatalf("%s: alpha %v on a chain, want 1", c.Pod, c.Alpha)
		}
	}
}

func TestAlphaOnFanOut(t *testing.T) {
	svc := workload.SNMS()
	p := &LoadProfile{
		Levels:   []float64{0.2, 0.5, 0.8},
		Sojourns: map[string][]float64{},
		Tail:     []float64{0.1, 0.2, 0.4},
	}
	// UserService path is the critical one; MediaService is faster.
	grow := func(base float64) []float64 {
		return []float64{base, base * 1.5, base * 2.5}
	}
	p.Sojourns["frontend"] = grow(0.020)
	p.Sojourns["UserService"] = grow(0.080)
	p.Sojourns["MediaService"] = grow(0.050)
	cs, err := Analyze(p, svc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	m := byPod(cs)
	if m["frontend"].Alpha != 1 || m["UserService"].Alpha != 1 {
		t.Fatalf("critical path pods must have alpha 1: %+v", m)
	}
	a := m["MediaService"].Alpha
	// Longest path through MediaService: frontend + MediaService.
	fm := sim.Mean(p.Sojourns["frontend"])
	mm := sim.Mean(p.Sojourns["MediaService"])
	um := sim.Mean(p.Sojourns["UserService"])
	want := (fm + mm) / (fm + um)
	if math.Abs(a-want) > 1e-12 {
		t.Fatalf("MediaService alpha = %v, want %v", a, want)
	}
	if a >= 1 {
		t.Fatalf("off-critical alpha should be < 1, got %v", a)
	}
}

func TestValidation(t *testing.T) {
	bad := []*LoadProfile{
		{Levels: []float64{0.5}, Tail: []float64{1}, Sojourns: map[string][]float64{"a": {1}}},
		{Levels: []float64{0.2, 0.5}, Tail: []float64{1}, Sojourns: map[string][]float64{"a": {1, 2}}},
		{Levels: []float64{0.2, 0.5}, Tail: []float64{1, 2}, Sojourns: map[string][]float64{}},
		{Levels: []float64{0.2, 0.5}, Tail: []float64{1, 2}, Sojourns: map[string][]float64{"a": {1}}},
	}
	for i, p := range bad {
		if _, err := Analyze(p, nil); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestAllZeroSojournsRejected(t *testing.T) {
	p := &LoadProfile{
		Levels:   []float64{0.2, 0.5},
		Tail:     []float64{1, 2},
		Sojourns: map[string][]float64{"a": {0, 0}},
	}
	if _, err := Analyze(p, nil); err == nil {
		t.Fatal("all-zero profile accepted")
	}
}

func TestDegenerateFlatProfileFallsBackToWeights(t *testing.T) {
	p := &LoadProfile{
		Levels:   []float64{0.2, 0.5, 0.8},
		Tail:     []float64{1, 1, 1},
		Sojourns: map[string][]float64{"a": {2, 2, 2}, "b": {1, 1, 1}},
	}
	cs, err := Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := byPod(cs)
	if math.Abs(m["a"].Normalized-2.0/3.0) > 1e-12 {
		t.Fatalf("fallback weight = %v", m["a"].Normalized)
	}
}

func TestContributionInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		m := 2 + r.Intn(20)
		p := &LoadProfile{Sojourns: map[string][]float64{}}
		for j := 0; j < m; j++ {
			p.Levels = append(p.Levels, float64(j+1)/float64(m))
			p.Tail = append(p.Tail, 0.05+r.Float64())
		}
		pods := 1 + r.Intn(5)
		for i := 0; i < pods; i++ {
			s := make([]float64, m)
			for j := range s {
				s[j] = 0.001 + r.Float64()*0.1
			}
			p.Sojourns[string(rune('a'+i))] = s
		}
		cs, err := Analyze(p, nil)
		if err != nil {
			return false
		}
		var sum float64
		for _, c := range cs {
			if c.Raw < 0 || c.Rho < 0 || c.Rho > 1 || c.Alpha <= 0 || c.Alpha > 1 {
				return false
			}
			sum += c.Normalized
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadlimitRule(t *testing.T) {
	levels := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	cov := []float64{0.1, 0.1, 0.1, 0.5, 0.9} // avg = 0.34; first above: 0.8
	ll, err := Loadlimit(levels, cov)
	if err != nil {
		t.Fatal(err)
	}
	if ll != 0.8 {
		t.Fatalf("loadlimit = %v, want 0.8", ll)
	}
}

func TestLoadlimitFlatSeries(t *testing.T) {
	levels := []float64{0.2, 0.6, 1.0}
	ll, err := Loadlimit(levels, []float64{0.3, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if ll != 1.0 {
		t.Fatalf("flat CoV should allow BE at any load, got %v", ll)
	}
}

// TestLoadlimitFallbackContract pins the documented fallback: a sweep
// whose CoV varies but never exceeds the mean-plus-margin threshold has no
// knee, and Loadlimit must return the LAST level (steady pods tolerate BE
// at any measured load), never an error. A knee-detection change that
// alters this is a deliberate decision and must rewrite this test.
func TestLoadlimitFallbackContract(t *testing.T) {
	levels := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	// Rising but sub-threshold: mean = 0.31, threshold = 0.341, max 0.33.
	cov := []float64{0.29, 0.30, 0.31, 0.32, 0.33}
	ll, err := Loadlimit(levels, cov)
	if err != nil {
		t.Fatalf("knee-less curve must not error: %v", err)
	}
	if ll != 1.0 {
		t.Fatalf("knee-less curve: loadlimit = %v, want last level 1.0", ll)
	}
	// Decreasing curve (noisy warm-up): still no level above threshold.
	ll, err = Loadlimit(levels, []float64{0.33, 0.32, 0.31, 0.30, 0.29})
	if err != nil {
		t.Fatalf("decreasing curve must not error: %v", err)
	}
	if ll != 1.0 {
		t.Fatalf("decreasing curve: loadlimit = %v, want last level 1.0", ll)
	}
}

func TestLoadlimitValidation(t *testing.T) {
	if _, err := Loadlimit(nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := Loadlimit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestPodOrderStable(t *testing.T) {
	p := syntheticProfile()
	a, _ := Analyze(p, nil)
	b, _ := Analyze(p, nil)
	for i := range a {
		if a[i].Pod != b[i].Pod {
			t.Fatal("analysis order not deterministic")
		}
	}
}
