// Package sim provides the deterministic discrete-event simulation kernel
// used by every substrate in this repository: a virtual clock with an event
// heap, a seeded splitmix64 random number generator, the latency
// distributions the workload models draw from, numerically stable
// statistics helpers, and the worker-pool primitives (ForEach, ForEachErr)
// that parallel sweeps are built on.
//
// Everything in sim is deterministic under a fixed seed so that experiments
// (and tests) are exactly reproducible.
//
// # Thread safety
//
// The stateless helpers (statistics, distributions with value receivers,
// SubSeed, Jobs) are safe for concurrent use. The stateful types — RNG and
// Clock — are NOT safe for concurrent use: each goroutine must own its
// generator and clock. The supported way to hand randomness to concurrent
// workers is to derive an independent substream per unit of work before (or
// without) sharing: either Fork a child RNG per worker from a parent that a
// single goroutine owns, or compute a per-work-item seed with SubSeed and
// have each worker construct its own NewRNG. Two goroutines must never call
// methods (including Fork) on the same RNG concurrently — Fork reads the
// parent's state, so even "read-only" forking races with any sibling that
// is drawing numbers. See DESIGN.md "Concurrency & determinism".
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; each simulated entity owns
// its own RNG (forked from a parent via Fork) so that adding entities does
// not perturb the random streams of existing ones.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from r, keyed by label so that the
// same entity always receives the same stream regardless of creation order.
//
// Fork reads (but does not advance) the parent's state, so the child's
// stream depends on how many numbers the parent has already drawn. Two
// rules follow for parallel code: fork all substreams from a single
// goroutine before workers start (or give each call site its own fresh
// parent, NewRNG(seed).Fork(label)), and never call Fork on an RNG that
// another goroutine may be using — that is a data race, not merely a
// determinism hazard.
func (r *RNG) Fork(label string) *RNG {
	return &RNG{state: r.state ^ labelHash(label) ^ 0x9e3779b97f4a7c15}
}

// SubSeed returns the seed of the substream that NewRNG(seed).Fork(label)
// would produce, without allocating the intermediate generators. It is the
// preferred way to derive per-work-item seeds for parallel sweeps (one
// label per level, trial or experiment): workers receive plain uint64
// seeds, so no RNG is ever shared, and the resulting streams are
// independent of both worker count and execution order.
func SubSeed(seed uint64, label string) uint64 {
	return seed ^ labelHash(label) ^ 0x9e3779b97f4a7c15
}

// SubSeedBytes is SubSeed for a label assembled in a byte buffer: it
// returns the same seed SubSeed(seed, string(label)) would, without
// requiring the caller to materialize the string. Hot per-epoch loops (the
// fleet's arrival substreams) build the label in a reused buffer and stay
// allocation-free.
func SubSeedBytes(seed uint64, label []byte) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return seed ^ h ^ 0x9e3779b97f4a7c15
}

// labelHash is FNV-1a over the label bytes.
func labelHash(label string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// Reseed resets r to the state NewRNG(seed) would produce. It lets hot
// loops that derive a fresh substream per iteration (the fleet's
// per-epoch arrival batches) reuse one generator instead of allocating a
// new RNG each time.
func (r *RNG) Reseed(seed uint64) {
	r.state = seed
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller; one value per
// call, the pair's second half is discarded to keep the stream simple).
//
// # Frozen draw-order contract
//
// Every experiment table in this repository is pinned byte-identical across
// refactors, so both the uniform-consumption order and the produced bits of
// this function are frozen: one call consumes exactly two Float64 draws
// (u1 first — redrawn while zero — then u2) and returns exactly
//
//	math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
//
// bit-for-bit (the cosine goes through cos2pi, a branch-reduced kernel
// differentially pinned to math.Cos). Batched samplers such as
// SumLognormals re-implement this expression pass-by-pass over many draws;
// any change here must be mirrored there and will show up as a stdout diff
// in every golden experiment run. See DESIGN.md §9.
func (r *RNG) NormFloat64() float64 {
	// Avoid u1 == 0 which would yield log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * cos2pi(u2)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
