package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesNaive(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 100, -3, 0.5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Fatalf("mean %v != %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-wantVar) > 1e-9 {
		t.Fatalf("var %v != %v", w.Var(), wantVar)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CV() != 0 {
		t.Fatal("zero-value Welford should report zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
}

// TestWelfordCVNegativeMean pins the sign contract: the CV normalizes by
// |mean|, so a mirrored series has the same, non-negative CV.
func TestWelfordCVNegativeMean(t *testing.T) {
	var pos, neg Welford
	for _, x := range []float64{8, 10, 12} {
		pos.Add(x)
		neg.Add(-x)
	}
	if neg.CV() <= 0 {
		t.Fatalf("negative-mean CV = %v, want positive", neg.CV())
	}
	if math.Abs(neg.CV()-pos.CV()) > 1e-15 {
		t.Fatalf("CV not mirror-symmetric: %v vs %v", neg.CV(), pos.CV())
	}
	if got := CoV([]float64{-8, -10, -12}); math.Abs(got-pos.CV()) > 1e-15 {
		t.Fatalf("CoV(negative series) = %v, want %v", got, pos.CV())
	}
}

// TestWelfordCVZeroMean: a zero mean has no meaningful CV; the contract is 0.
func TestWelfordCVZeroMean(t *testing.T) {
	var w Welford
	w.Add(-1)
	w.Add(1)
	if w.CV() != 0 {
		t.Fatalf("zero-mean CV = %v, want 0", w.CV())
	}
	if CoV([]float64{-1, 1}) != 0 {
		t.Fatal("CoV of zero-mean series should be 0")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		var all, a, b Welford
		for i, x := range xs {
			all.Add(x)
			if i < n/2 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAgainstSortedDefinition(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("median = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.9)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if Quantile(nil, 0.99) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		// Bounds: every quantile within [min, max].
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return Quantile(xs, 0.5) >= s[0] && Quantile(xs, 0.5) <= s[n-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	ys := []float64{1, 2, 3, 4}
	if r := Pearson(xs, ys); r != 0 {
		t.Fatalf("constant series should yield 0, got %v", r)
	}
}

func TestPearsonMismatchedLengths(t *testing.T) {
	if r := Pearson([]float64{1, 2}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("mismatched lengths should yield 0, got %v", r)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64() + 0.3*xs[i]
		}
		p := Pearson(xs, ys)
		return p >= -1 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
			ys[i] = r.Float64()
		}
		return math.Abs(Pearson(xs, ys)-Pearson(ys, xs)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoVScaleInvariant(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = 7 * x
	}
	if math.Abs(CoV(xs)-CoV(scaled)) > 1e-12 {
		t.Fatalf("CoV not scale invariant: %v vs %v", CoV(xs), CoV(scaled))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}
