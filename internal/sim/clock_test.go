package sim

import (
	"testing"
	"time"
)

func TestClockFiresInOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(3*time.Second, func(Time) { order = append(order, 3) })
	c.After(1*time.Second, func(Time) { order = append(order, 1) })
	c.After(2*time.Second, func(Time) { order = append(order, 2) })
	if n := c.Run(); n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if c.Now() != FromSeconds(3) {
		t.Fatalf("clock at %v, want 3s", c.Now())
	}
}

func TestClockFIFOAmongSimultaneous(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(FromSeconds(1), func(Time) { order = append(order, i) })
	}
	c.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockPastSchedulingPanics(t *testing.T) {
	c := NewClock()
	c.After(time.Second, func(Time) {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(0, func(Time) {})
}

func TestClockNegativeDelayPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	c.After(-time.Second, func(Time) {})
}

func TestClockRunUntil(t *testing.T) {
	c := NewClock()
	fired := 0
	for i := 1; i <= 10; i++ {
		c.At(FromSeconds(float64(i)), func(Time) { fired++ })
	}
	n := c.RunUntil(FromSeconds(5.5))
	if n != 5 || fired != 5 {
		t.Fatalf("fired %d/%d events, want 5", n, fired)
	}
	if c.Now() != FromSeconds(5.5) {
		t.Fatalf("clock at %v, want 5.5s", c.Now())
	}
	if c.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", c.Pending())
	}
	// The rest still fire.
	c.Run()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

func TestClockCascadingEvents(t *testing.T) {
	c := NewClock()
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 100 {
			c.After(time.Millisecond, tick)
		}
	}
	c.After(time.Millisecond, tick)
	c.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if c.Now() != Time(100*time.Millisecond) {
		t.Fatalf("clock at %v, want 100ms", c.Now())
	}
}

func TestClockEventSeesOwnTimestamp(t *testing.T) {
	c := NewClock()
	c.At(FromSeconds(2), func(now Time) {
		if now != FromSeconds(2) {
			t.Errorf("callback saw %v, want 2s", now)
		}
		if c.Now() != now {
			t.Errorf("clock.Now() = %v during callback at %v", c.Now(), now)
		}
	})
	c.Run()
}

func TestTimeArithmetic(t *testing.T) {
	t0 := FromSeconds(1.5)
	t1 := t0.Add(500 * time.Millisecond)
	if t1.Seconds() != 2 {
		t.Fatalf("Add: %v", t1.Seconds())
	}
	if d := t1.Sub(t0); d != 500*time.Millisecond {
		t.Fatalf("Sub: %v", d)
	}
	if s := Time(1500 * time.Millisecond).String(); s != "1.5s" {
		t.Fatalf("String: %q", s)
	}
}
