package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMoments(d Dist, n int, seed uint64) (mean, cv float64) {
	r := NewRNG(seed)
	var w Welford
	for i := 0; i < n; i++ {
		w.Add(d.Sample(r))
	}
	return w.Mean(), w.CV()
}

func TestExponentialMoments(t *testing.T) {
	d := NewExponential(3.5)
	mean, cv := sampleMoments(d, 200000, 1)
	if math.Abs(mean-3.5)/3.5 > 0.02 {
		t.Fatalf("mean = %v, want ~3.5", mean)
	}
	if math.Abs(cv-1) > 0.03 {
		t.Fatalf("cv = %v, want ~1", cv)
	}
	if d.Mean() != 3.5 || d.CV() != 1 {
		t.Fatalf("analytic moments wrong: %v, %v", d.Mean(), d.CV())
	}
}

func TestLognormalMoments(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{1, 0.2}, {10, 0.5}, {0.003, 1.2}, {250, 0.05},
	} {
		d := NewLognormal(tc.mean, tc.cv)
		mean, cv := sampleMoments(d, 400000, 7)
		if math.Abs(mean-tc.mean)/tc.mean > 0.03 {
			t.Errorf("lognormal(%v,%v): sample mean %v", tc.mean, tc.cv, mean)
		}
		if tc.cv > 0 && math.Abs(cv-tc.cv)/tc.cv > 0.08 {
			t.Errorf("lognormal(%v,%v): sample cv %v", tc.mean, tc.cv, cv)
		}
	}
}

func TestLognormalPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLognormal(0, 1) },
		func() { NewLognormal(-1, 1) },
		func() { NewLognormal(1, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLognormalQuantileMonotone(t *testing.T) {
	d := NewLognormal(5, 0.8)
	prev := 0.0
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		v := d.Quantile(q)
		if v <= prev {
			t.Fatalf("quantile not increasing at q=%v: %v <= %v", q, v, prev)
		}
		prev = v
	}
	// Median of a lognormal is exp(mu) < mean for cv > 0.
	if med := d.Quantile(0.5); med >= d.Mean() {
		t.Fatalf("median %v >= mean %v for right-skewed lognormal", med, d.Mean())
	}
}

func TestLognormalQuantileMatchesSamples(t *testing.T) {
	d := NewLognormal(2, 0.6)
	r := NewRNG(5)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	emp := Quantile(xs, 0.99)
	ana := d.Quantile(0.99)
	if math.Abs(emp-ana)/ana > 0.05 {
		t.Fatalf("p99 empirical %v vs analytic %v", emp, ana)
	}
}

func TestParetoBounds(t *testing.T) {
	p := Pareto{Alpha: 1.5, Xm: 100, Cap: 100000}
	r := NewRNG(9)
	for i := 0; i < 50000; i++ {
		v := p.Sample(r)
		if v < p.Xm || v > p.Cap {
			t.Fatalf("sample %v outside [%v,%v]", v, p.Xm, p.Cap)
		}
	}
}

func TestParetoMoments(t *testing.T) {
	p := Pareto{Alpha: 3, Xm: 2}
	if math.Abs(p.Mean()-3) > 1e-12 {
		t.Fatalf("mean = %v, want 3", p.Mean())
	}
	if math.IsInf(p.CV(), 1) {
		t.Fatal("cv should be finite for alpha=3")
	}
	inf := Pareto{Alpha: 1, Xm: 2}
	if !math.IsInf(inf.Mean(), 1) {
		t.Fatal("mean should be infinite for alpha=1")
	}
}

func TestNormQuantileInverseOfCDF(t *testing.T) {
	// Known values of the standard normal quantile.
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959964,
		0.99:  2.326348,
		0.999: 3.090232,
		0.025: -1.959964,
	}
	for p, want := range cases {
		got := NormQuantile(p)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("NormQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98) / 2 // p in [0, 0.49)
		if p == 0 {
			return true
		}
		return math.Abs(NormQuantile(p)+NormQuantile(1-p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistSamplesNonNegative(t *testing.T) {
	dists := []Dist{
		NewExponential(1),
		NewLognormal(1, 0.5),
		Pareto{Alpha: 2, Xm: 1},
	}
	r := NewRNG(31)
	for _, d := range dists {
		for i := 0; i < 10000; i++ {
			if v := d.Sample(r); v < 0 {
				t.Fatalf("%T produced negative sample %v", d, v)
			}
		}
	}
}

// TestParetoDegenerate pins the descriptive panics for distributions with
// no valid density: non-positive or NaN tail index and minimum.
func TestParetoDegenerate(t *testing.T) {
	cases := []struct {
		name string
		p    Pareto
	}{
		{"zero alpha", Pareto{Alpha: 0, Xm: 1}},
		{"negative alpha", Pareto{Alpha: -2, Xm: 1}},
		{"nan alpha", Pareto{Alpha: math.NaN(), Xm: 1}},
		{"zero xm", Pareto{Alpha: 1.5, Xm: 0}},
		{"negative xm", Pareto{Alpha: 1.5, Xm: -3}},
		{"nan xm", Pareto{Alpha: 1.5, Xm: math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Sample did not panic", tc.name)
				}
			}()
			tc.p.Sample(NewRNG(1))
		})
	}
}

// TestParetoValidStillSamples guards the guard: a well-formed Pareto keeps
// sampling within its support.
func TestParetoValidStillSamples(t *testing.T) {
	p := Pareto{Alpha: 1.5, Xm: 2, Cap: 50}
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := p.Sample(r)
		if v < p.Xm || v > p.Cap {
			t.Fatalf("sample %v outside [%v, %v]", v, p.Xm, p.Cap)
		}
	}
}
