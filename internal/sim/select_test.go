package sim

import (
	"sort"
	"testing"
)

// oracleQuantile is the reference SelectQuantile is pinned against: a
// fresh sorted copy fed to QuantileSorted, exactly what the seed code did.
func oracleQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// TestSelectQuantileMatchesSortOracle pins selection to the sort oracle
// with exact float equality over randomized inputs and the adversarial
// shapes that break naive pivoting: heavy duplicates, pre-sorted,
// reversed, all-equal, and single-element inputs, across the quantiles
// the repo actually queries plus random ones.
func TestSelectQuantileMatchesSortOracle(t *testing.T) {
	r := NewRNG(0x5E1EC7)
	quantiles := []float64{0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1}

	gen := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Float64()
			}
			return xs
		},
		"duplicates": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(r.Intn(4))
			}
			return xs
		},
		"sorted": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		"reversed": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
		"all-equal": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 3.25
			}
			return xs
		},
		"negative-mix": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Float64() - 0.5
			}
			return xs
		},
	}

	sizes := []int{1, 2, 3, 7, 100, 601, 2048}
	for name, g := range gen {
		for _, n := range sizes {
			for _, q := range quantiles {
				xs := g(n)
				want := oracleQuantile(xs, q)
				got := SelectQuantile(xs, q)
				if want != got {
					t.Fatalf("%s n=%d q=%v: SelectQuantile = %v, oracle = %v",
						name, n, q, got, want)
				}
			}
		}
	}

	// Randomized sizes and quantiles on top of the fixed grid.
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(700)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * float64(1+r.Intn(3))
		}
		q := r.Float64()
		want := oracleQuantile(xs, q)
		got := SelectQuantile(xs, q)
		if want != got {
			t.Fatalf("trial %d n=%d q=%v: SelectQuantile = %v, oracle = %v",
				trial, n, q, got, want)
		}
	}
}

// TestSelectQuantileEmpty matches Quantile's empty-input contract.
func TestSelectQuantileEmpty(t *testing.T) {
	if got := SelectQuantile(nil, 0.99); got != 0 {
		t.Fatalf("SelectQuantile(nil) = %v, want 0", got)
	}
}

// TestSelectQuantileZeroAllocs pins the selection path to zero heap
// allocations: it runs inside profiling sweeps that are themselves pinned
// allocation-free.
func TestSelectQuantileZeroAllocs(t *testing.T) {
	r := NewRNG(11)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Float64()
	}
	allocs := testing.AllocsPerRun(100, func() {
		SelectQuantile(xs, 0.99)
	})
	if allocs != 0 {
		t.Fatalf("SelectQuantile allocates %.1f per op, want 0", allocs)
	}
}
