package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork("machine-0")
	a2 := NewRNG(7).Fork("machine-0")
	// Same label yields the same stream; different labels diverge.
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("fork with same label diverged at %d", i)
		}
	}
	c := NewRNG(7).Fork("machine-0")
	d := NewRNG(7).Fork("machine-1")
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forks with different labels matched %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Float64())
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", w.Mean())
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.Std()-1) > 0.02 {
		t.Fatalf("normal std = %v, want ~1", w.Std())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.ExpFloat64())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", w.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(19)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d never produced", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestSubSeedMatchesFork(t *testing.T) {
	for _, label := range []string{"", "level/0", "trial/3/1", "experiment/fig9"} {
		forked := NewRNG(2020).Fork(label)
		seeded := NewRNG(SubSeed(2020, label))
		for i := 0; i < 50; i++ {
			if forked.Uint64() != seeded.Uint64() {
				t.Fatalf("SubSeed(%q) stream diverged from Fork at step %d", label, i)
			}
		}
	}
	if SubSeed(2020, "a") == SubSeed(2020, "b") {
		t.Fatal("different labels produced the same subseed")
	}
	if SubSeed(1, "a") == SubSeed(2, "a") {
		t.Fatal("different parents produced the same subseed")
	}
}
