package sim

import (
	"fmt"
	"math"
)

// Dist is a one-dimensional distribution of non-negative values (service
// times, message sizes). Implementations must be deterministic given the
// RNG stream.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// CV returns the coefficient of variation (stddev / mean).
	CV() float64
}

// Exponential is an exponential distribution with the given mean.
type Exponential struct{ M float64 }

// NewExponential returns an exponential distribution with mean m.
func NewExponential(m float64) Exponential { return Exponential{M: m} }

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return e.M * r.ExpFloat64() }

// Mean returns the mean.
func (e Exponential) Mean() float64 { return e.M }

// CV returns 1 (exponential distributions have unit CV).
func (e Exponential) CV() float64 { return 1 }

// Lognormal is a lognormal distribution parameterized by its (linear-space)
// mean and coefficient of variation, the natural parameterization for
// service-time models where we calibrate mean and tail heaviness
// independently.
type Lognormal struct {
	mu    float64 // log-space mean
	sigma float64 // log-space stddev
	mean  float64
	cv    float64
}

// NewLognormal returns a lognormal distribution with the given linear-space
// mean and coefficient of variation. It panics if mean <= 0 or cv < 0.
func NewLognormal(mean, cv float64) Lognormal {
	if mean <= 0 {
		panic(fmt.Sprintf("sim: lognormal mean must be positive, got %g", mean))
	}
	if cv < 0 {
		panic(fmt.Sprintf("sim: lognormal cv must be non-negative, got %g", cv))
	}
	// For X ~ LogNormal(mu, sigma):
	//   E[X]   = exp(mu + sigma^2/2)
	//   CV^2   = exp(sigma^2) - 1
	s2 := math.Log(1 + cv*cv)
	return Lognormal{
		mu:    math.Log(mean) - s2/2,
		sigma: math.Sqrt(s2),
		mean:  mean,
		cv:    cv,
	}
}

// Sample draws a lognormal variate.
func (l Lognormal) Sample(r *RNG) float64 {
	return math.Exp(l.mu + l.sigma*r.NormFloat64())
}

// LogParams returns the log-space mean and standard deviation, the
// parameters a fused sampler needs to reproduce Sample's exact expression
// (exp(mu + sigma*z)) without going through the method: SumLognormals and
// the queueing path estimator flatten many distributions into (mu, sigma)
// structure-of-arrays scratch and draw in bulk.
func (l Lognormal) LogParams() (mu, sigma float64) { return l.mu, l.sigma }

// Mean returns the linear-space mean.
func (l Lognormal) Mean() float64 { return l.mean }

// CV returns the linear-space coefficient of variation.
func (l Lognormal) CV() float64 { return l.cv }

// Quantile returns the q-quantile (0 < q < 1) of the lognormal.
func (l Lognormal) Quantile(q float64) float64 {
	return math.Exp(l.mu + l.sigma*normQuantile(q))
}

// Pareto is a bounded Pareto used for heavy-tailed message sizes.
type Pareto struct {
	Alpha float64 // tail index (> 1 for finite mean)
	Xm    float64 // minimum value
	Cap   float64 // upper truncation (0 means unbounded)
}

// Sample draws a Pareto variate, truncated at Cap when Cap > 0. It panics
// on a degenerate distribution (Alpha <= 0, NaN parameters, or Xm <= 0):
// such a Pareto has no valid density, and silently returning the Inf/NaN
// that the sampling formula produces would poison every statistic
// downstream of the draw.
func (p Pareto) Sample(r *RNG) float64 {
	if !(p.Alpha > 0) {
		panic(fmt.Sprintf("sim: Pareto tail index Alpha must be positive, got %g", p.Alpha))
	}
	if !(p.Xm > 0) {
		panic(fmt.Sprintf("sim: Pareto minimum Xm must be positive, got %g", p.Xm))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := p.Xm / math.Pow(u, 1/p.Alpha)
	if p.Cap > 0 && v > p.Cap {
		v = p.Cap
	}
	return v
}

// Mean returns the untruncated mean (infinite when Alpha <= 1).
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// CV returns the untruncated coefficient of variation (infinite when
// Alpha <= 2).
func (p Pareto) CV() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	// Var = xm^2 * a / ((a-1)^2 (a-2))
	a := p.Alpha
	variance := p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
	return math.Sqrt(variance) / p.Mean()
}

// normQuantile returns the standard normal quantile using the
// Beasley-Springer-Moro rational approximation (max abs error ~3e-9), good
// enough for p99/p999 targets.
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sim: normQuantile requires 0 < p < 1, got %g", p))
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormQuantile exposes the standard normal quantile for other packages
// (e.g. analytic p99 computations in the queueing model).
func NormQuantile(p float64) float64 { return normQuantile(p) }
