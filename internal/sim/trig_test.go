package sim

import (
	"math"
	"testing"
)

// TestCos2PiMatchesStdlib pins the branch-reduced cosine kernel to
// math.Cos bit-for-bit over the uniform range NormFloat64 feeds it, the
// octant boundaries where the reduction's integer fixups flip, and the
// hostile arguments that take the fallback path. This equality is what
// keeps every experiment table byte-identical across the hot-path rewrite.
func TestCos2PiMatchesStdlib(t *testing.T) {
	check := func(u float64) {
		t.Helper()
		want := math.Cos(2 * math.Pi * u)
		got := cos2pi(u)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("cos2pi(%v) = %x (%v), want %x (%v)",
				u, math.Float64bits(got), got, math.Float64bits(want), want)
		}
	}

	// Octant boundaries and their floating-point neighbours: each eighth
	// of the circle exercises a different (sign, polynomial) pair.
	for i := 0; i <= 8; i++ {
		u := float64(i) / 8
		check(u)
		check(math.Nextafter(u, 0))
		check(math.Nextafter(u, 1))
	}
	// Extremes of the producible range.
	for _, u := range []float64{0, 5e-324, 1e-300, 1e-17, 0.5, 1 - 1e-16,
		math.Nextafter(1, 0)} {
		check(u)
	}
	// Fallback path: arguments NormFloat64 can never produce.
	for _, u := range []float64{-0.25, -1, 1 << 30, math.Inf(1), math.Inf(-1)} {
		want := math.Cos(2 * math.Pi * u)
		got := cos2pi(u)
		if math.Float64bits(want) != math.Float64bits(got) &&
			!(math.IsNaN(want) && math.IsNaN(got)) {
			t.Fatalf("cos2pi(%v) = %v, want %v", u, got, want)
		}
	}

	// Dense uniform sweep, the actual hot-path input distribution.
	r := NewRNG(0xC05)
	for i := 0; i < 5_000_000; i++ {
		check(r.Float64())
	}
}

// TestCos2Pi2MatchesSingle pins the pairwise kernel to cos2pi per lane:
// both results must be the single-argument kernel's bits exactly, in every
// lane pairing — including pairs that straddle the fallback condition,
// where one hostile lane sends BOTH arguments through math.Cos (still
// bit-identical, since cos2pi falls back to math.Cos for such arguments
// and math.Cos agrees with the kernel on in-range ones).
func TestCos2Pi2MatchesSingle(t *testing.T) {
	check := func(u0, u1 float64) {
		t.Helper()
		g0, g1 := cos2pi2(u0, u1)
		w0, w1 := cos2pi(u0), cos2pi(u1)
		if math.Float64bits(g0) != math.Float64bits(w0) ||
			math.Float64bits(g1) != math.Float64bits(w1) {
			t.Fatalf("cos2pi2(%v, %v) = (%x, %x), want (%x, %x)", u0, u1,
				math.Float64bits(g0), math.Float64bits(g1),
				math.Float64bits(w0), math.Float64bits(w1))
		}
	}
	// All octant-boundary pairings.
	var edges []float64
	for i := 0; i <= 8; i++ {
		u := float64(i) / 8
		edges = append(edges, u, math.Nextafter(u, 0), math.Nextafter(u, 1))
	}
	for _, a := range edges {
		for _, b := range edges {
			check(a, b)
		}
	}
	// Fallback straddling: one lane hostile, the other in range.
	for _, bad := range []float64{-0.25, 1 << 30} {
		check(bad, 0.3)
		check(0.3, bad)
	}
	// Dense uniform sweep in pairs.
	r := NewRNG(0xC052)
	for i := 0; i < 2_500_000; i++ {
		check(r.Float64(), r.Float64())
	}
}

// TestNormFloat64Frozen pins the frozen Box-Muller expression: the variate
// must equal sqrt(-2 ln u1) * cos(2π u2) computed from the same two
// uniforms, bit-for-bit. A change to the draw order or the kernel breaks
// this before it breaks a golden experiment run.
func TestNormFloat64Frozen(t *testing.T) {
	a := NewRNG(42).Fork("norm")
	b := NewRNG(42).Fork("norm")
	for i := 0; i < 100_000; i++ {
		u1 := b.Float64()
		for u1 == 0 {
			u1 = b.Float64()
		}
		u2 := b.Float64()
		want := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		got := a.NormFloat64()
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("draw %d: NormFloat64 = %x, want %x", i,
				math.Float64bits(got), math.Float64bits(want))
		}
	}
}
