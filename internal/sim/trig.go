package sim

import "math"

// cos2pi returns math.Cos(2 * math.Pi * u) bit-for-bit, restructured for
// throughput: the tail-estimation hot path calls it once per normal draw
// (RNG.NormFloat64), where the argument is always 2π·u for a uniform
// u ∈ [0, 1).
//
// The standard library's cos kernel (math/sin.go, the Cephes cmath sin.c
// derivation) selects the octant, the result sign and one of two
// polynomials through four data-dependent branches. For uniformly random
// arguments each is close to a coin flip, so the branch predictor
// mispredicts ~2 times per call and the kernel measures ~28ns/op on random
// inputs — nearly 3x its cost on repeated (predictor-trained) inputs. This
// version computes the identical floating-point expressions but replaces
// every data-dependent branch with integer arithmetic: the octant fixup,
// the sign and the polynomial choice become bit operations on j, both
// polynomials are evaluated unconditionally (they pipeline in parallel —
// the second polynomial is cheaper than one mispredict), and the selected
// result is assembled from its bit pattern. Measured ~13ns/op on the same
// random inputs.
//
// Bit-identity holds because no floating-point operation changed: the
// argument reduction, both polynomial evaluations and the final negation
// (an IEEE sign-bit flip, exactly what `y = -y` does) are the stdlib's
// expressions verbatim, in the same association order; only the *selection*
// between already-computed results is new. TestCos2PiMatchesStdlib pins
// this over the full uniform range and the octant boundaries. Arguments
// outside [0, 2^29) — impossible for 2π·u with u ∈ [0, 1), but reachable
// through a hostile u — fall back to math.Cos.
func cos2pi(u float64) float64 {
	const (
		pi4a            = 7.85398125648498535156e-1 // Pi/4 split into three parts
		pi4b            = 3.77489470793079817668e-8 // (math/sin.go PI4A/B/C)
		pi4c            = 2.69515142907905952645e-15
		reduceThreshold = 1 << 29
	)
	x := 2 * math.Pi * u
	if !(x >= 0 && x < reduceThreshold) {
		// Negative, huge or NaN argument: not a hot-path input.
		return math.Cos(x)
	}

	j := uint64(x * (4 / math.Pi)) // octant index, as in math.cos
	y := float64(j)
	odd := j & 1 // map zeros to origin: stdlib's `if j&1 == 1 { j++; y++ }`
	j += odd
	y += float64(odd)
	j &= 7
	z := ((x - y*pi4a) - y*pi4b) - y*pi4c // extended-precision reduction

	// Stdlib: `if j > 3 { j -= 4; sign = !sign }; if j > 1 { sign = !sign }`
	// over j ∈ [0, 7] is bit 2 XOR bit 1 of j.
	sign := ((j >> 2) ^ (j >> 1)) & 1
	// The sine polynomial is used for post-reduction octants 1 and 2
	// (j&3 ∈ {1, 2}), which is bit 1 of (j&3)+1.
	sel := (((j & 3) + 1) >> 1) & 1

	zz := z * z
	ysin := z + z*zz*((((((1.58962301576546568060e-10*zz)+-2.50507477628578072866e-8)*zz+2.75573136213857245213e-6)*zz+-1.98412698295895385996e-4)*zz+8.33333333332211858878e-3)*zz+-1.66666666666666307295e-1)
	ycos := 1.0 - 0.5*zz + zz*zz*((((((-1.13585365213876817300e-11*zz)+2.08757008419747316778e-9)*zz+-2.75573141792967388112e-7)*zz+2.48015872888517045348e-5)*zz+-1.38888888888730564116e-3)*zz+4.16666666666665929218e-2)

	mask := -sel // all-ones selects the sine polynomial
	bits := (math.Float64bits(ycos) &^ mask) | (math.Float64bits(ysin) & mask)
	bits ^= sign << 63
	return math.Float64frombits(bits)
}

// cos2pi2 is cos2pi over two independent arguments in one call: the batch
// sampler's angle pass is latency-bound (the reduction and polynomial form
// one serial FP chain per element), so evaluating two interleaved chains
// per call overlaps them explicitly and halves the call overhead. Each
// result is exactly cos2pi of its argument.
func cos2pi2(u0, u1 float64) (float64, float64) {
	const (
		pi4a            = 7.85398125648498535156e-1
		pi4b            = 3.77489470793079817668e-8
		pi4c            = 2.69515142907905952645e-15
		reduceThreshold = 1 << 29
	)
	x0 := 2 * math.Pi * u0
	x1 := 2 * math.Pi * u1
	if !(x0 >= 0 && x0 < reduceThreshold) || !(x1 >= 0 && x1 < reduceThreshold) {
		return math.Cos(x0), math.Cos(x1)
	}

	j0 := uint64(x0 * (4 / math.Pi))
	j1 := uint64(x1 * (4 / math.Pi))
	y0 := float64(j0)
	y1 := float64(j1)
	odd0 := j0 & 1
	odd1 := j1 & 1
	j0 += odd0
	j1 += odd1
	y0 += float64(odd0)
	y1 += float64(odd1)
	j0 &= 7
	j1 &= 7
	z0 := ((x0 - y0*pi4a) - y0*pi4b) - y0*pi4c
	z1 := ((x1 - y1*pi4a) - y1*pi4b) - y1*pi4c

	sign0 := ((j0 >> 2) ^ (j0 >> 1)) & 1
	sign1 := ((j1 >> 2) ^ (j1 >> 1)) & 1
	sel0 := (((j0 & 3) + 1) >> 1) & 1
	sel1 := (((j1 & 3) + 1) >> 1) & 1

	zz0 := z0 * z0
	zz1 := z1 * z1
	ysin0 := z0 + z0*zz0*((((((1.58962301576546568060e-10*zz0)+-2.50507477628578072866e-8)*zz0+2.75573136213857245213e-6)*zz0+-1.98412698295895385996e-4)*zz0+8.33333333332211858878e-3)*zz0+-1.66666666666666307295e-1)
	ysin1 := z1 + z1*zz1*((((((1.58962301576546568060e-10*zz1)+-2.50507477628578072866e-8)*zz1+2.75573136213857245213e-6)*zz1+-1.98412698295895385996e-4)*zz1+8.33333333332211858878e-3)*zz1+-1.66666666666666307295e-1)
	ycos0 := 1.0 - 0.5*zz0 + zz0*zz0*((((((-1.13585365213876817300e-11*zz0)+2.08757008419747316778e-9)*zz0+-2.75573141792967388112e-7)*zz0+2.48015872888517045348e-5)*zz0+-1.38888888888730564116e-3)*zz0+4.16666666666665929218e-2)
	ycos1 := 1.0 - 0.5*zz1 + zz1*zz1*((((((-1.13585365213876817300e-11*zz1)+2.08757008419747316778e-9)*zz1+-2.75573141792967388112e-7)*zz1+2.48015872888517045348e-5)*zz1+-1.38888888888730564116e-3)*zz1+4.16666666666665929218e-2)

	mask0 := -sel0
	mask1 := -sel1
	bits0 := (math.Float64bits(ycos0) &^ mask0) | (math.Float64bits(ysin0) & mask0)
	bits1 := (math.Float64bits(ycos1) &^ mask1) | (math.Float64bits(ysin1) & mask1)
	bits0 ^= sign0 << 63
	bits1 ^= sign1 << 63
	return math.Float64frombits(bits0), math.Float64frombits(bits1)
}
