package sim

import "math"

// sumBatch is the scratch extent (in draws×stages elements) of one
// SumLognormals / LognormalDraws chunk: two float64 arrays of this size
// live on the stack (8 KiB total), small enough to stay in L1 while the
// four passes stream over them.
const sumBatch = 512

// SumLognormals fills dst with len(dst) independent path sums over the
// per-stage lognormal parameters mu and sigma (log-space, as returned by
// Lognormal.LogParams):
//
//	dst[i] = Σ_s exp(mu[s] + sigma[s] * z_{i,s})
//
// where z_{i,s} are standard normal draws from r.
//
// The draw order is frozen (see RNG.NormFloat64): draw-major,
// stage-minor — for each path sum i, one normal per stage s in stage
// order — exactly the uniform stream a plain `for each i { for each s {
// dist.Sample(r) } }` loop consumes, and every produced float is
// bit-identical to that loop's. Byte-determinism of the experiment tables
// depends on both properties.
//
// Internally the work is restructured for throughput rather than
// per-draw: uniforms for a chunk of draws are pulled from r in stream
// order into stack scratch, then the radius pass (sqrt of log), the angle
// pass (cos2pi) and the exp-accumulate pass each stream over the chunk as
// a separate loop. Splitting the expensive kernels into per-kernel passes
// keeps each loop's call target and branch pattern uniform, which is what
// lets out-of-order execution overlap successive calls; the fused
// per-draw form measures ~40% slower on random data. Zero heap
// allocations.
//
// mu and sigma must have equal length; len(mu) == 0 zero-fills dst.
func SumLognormals(dst []float64, mu, sigma []float64, r *RNG) {
	k := len(mu)
	if len(sigma) != k {
		panic("sim: SumLognormals mu/sigma length mismatch")
	}
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if k > sumBatch {
		// Degenerate path depth; keep the frozen order with the plain
		// per-draw loop rather than growing heap scratch.
		for i := range dst {
			t := 0.0
			for s := 0; s < k; s++ {
				t += math.Exp(mu[s] + sigma[s]*r.NormFloat64())
			}
			dst[i] = t
		}
		return
	}
	var zrs, css [sumBatch]float64
	drawsPer := sumBatch / k
	n := len(dst)
	for base := 0; base < n; base += drawsPer {
		m := drawsPer
		if n-base < m {
			m = n - base
		}
		e := m * k
		zr := zrs[:e]
		cs := css[:e]
		// Pass 1: uniforms in the frozen stream order. u1 is redrawn
		// while zero, exactly as NormFloat64 does.
		for j := range zr {
			u1 := r.Float64()
			for u1 == 0 {
				u1 = r.Float64()
			}
			zr[j] = u1
			cs[j] = r.Float64()
		}
		// Pass 2: Box-Muller radius.
		for j, u := range zr {
			zr[j] = math.Sqrt(-2 * math.Log(u))
		}
		// Pass 3: Box-Muller angle, fused with the radius*angle product —
		// after this pass zr holds the normal variates themselves. The
		// product is the same single multiplication NormFloat64 performs.
		// Two angles per call (cos2pi2) overlap the per-element serial
		// reduction+polynomial chains, which is worth ~15% of the pass.
		j := 0
		for ; j+1 < len(cs); j += 2 {
			c0, c1 := cos2pi2(cs[j], cs[j+1])
			zr[j] *= c0
			zr[j+1] *= c1
		}
		if j < len(cs) {
			zr[j] *= cos2pi(cs[j])
		}
		// Pass 4: exponentiate and accumulate the path sums. The argument
		// grouping mu + sigma*norm matches Lognormal.Sample bit-for-bit.
		// Row re-slicing keeps every index provably in bounds so the inner
		// loop is check-free.
		out := dst[base : base+m]
		for d := range out {
			row := zr[d*k : d*k+k : d*k+k]
			t := 0.0
			for s, norm := range row {
				t += math.Exp(mu[s] + sigma[s]*norm)
			}
			out[d] = t
		}
	}
}

// LognormalDraws fills dst with len(dst)/k complete draws over the
// per-stage lognormal parameters mu and sigma (log-space), draw-major and
// stage-minor:
//
//	dst[i*k+s] = exp(mu[s] + sigma[s] * z_{i,s})
//
// where z_{i,s} are standard normal draws from r and k = len(mu). It is
// SumLognormals without the row accumulation: the same frozen uniform
// stream, the same chunked radius/angle/exp passes, but the per-stage
// values are written out individually so the caller can combine them with
// an association other than a left-to-right sum (the engine's latency
// graphs nest chains to the right and take maxima across parallel fan-out,
// so their per-draw combine is not a flat Σ). Every element is
// bit-identical to the plain per-draw loop
// `math.Exp(mu[s] + sigma[s]*r.NormFloat64())` in the same order, and r is
// left at the same stream position. Zero heap allocations.
//
// mu and sigma must have equal length, and len(dst) must be a multiple of
// k; len(mu) == 0 requires len(dst) == 0 and is a no-op.
func LognormalDraws(dst []float64, mu, sigma []float64, r *RNG) {
	k := len(mu)
	if len(sigma) != k {
		panic("sim: LognormalDraws mu/sigma length mismatch")
	}
	if k == 0 {
		if len(dst) != 0 {
			panic("sim: LognormalDraws dst not a multiple of stage count")
		}
		return
	}
	if len(dst)%k != 0 {
		panic("sim: LognormalDraws dst not a multiple of stage count")
	}
	if k > sumBatch {
		// Degenerate path depth; keep the frozen order with the plain
		// per-draw loop rather than growing heap scratch.
		for i := 0; i < len(dst); i += k {
			row := dst[i : i+k]
			for s := range row {
				row[s] = math.Exp(mu[s] + sigma[s]*r.NormFloat64())
			}
		}
		return
	}
	var zrs, css [sumBatch]float64
	drawsPer := sumBatch / k
	n := len(dst) / k
	for base := 0; base < n; base += drawsPer {
		m := drawsPer
		if n-base < m {
			m = n - base
		}
		e := m * k
		zr := zrs[:e]
		cs := css[:e]
		// Pass 1: uniforms in the frozen stream order. u1 is redrawn
		// while zero, exactly as NormFloat64 does.
		for j := range zr {
			u1 := r.Float64()
			for u1 == 0 {
				u1 = r.Float64()
			}
			zr[j] = u1
			cs[j] = r.Float64()
		}
		// Pass 2: Box-Muller radius.
		for j, u := range zr {
			zr[j] = math.Sqrt(-2 * math.Log(u))
		}
		// Pass 3: Box-Muller angle fused with the radius*angle product,
		// two angles per call — identical to SumLognormals' pass 3.
		j := 0
		for ; j+1 < len(cs); j += 2 {
			c0, c1 := cos2pi2(cs[j], cs[j+1])
			zr[j] *= c0
			zr[j+1] *= c1
		}
		if j < len(cs) {
			zr[j] *= cos2pi(cs[j])
		}
		// Pass 4: exponentiate element-wise into dst. The argument
		// grouping mu + sigma*norm matches Lognormal.Sample bit-for-bit.
		out := dst[base*k : base*k+e]
		for d := 0; d < m; d++ {
			row := zr[d*k : d*k+k : d*k+k]
			o := out[d*k : d*k+k : d*k+k]
			for s, norm := range row {
				o[s] = math.Exp(mu[s] + sigma[s]*norm)
			}
		}
	}
}
