package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		ForEach(n, jobs, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("jobs=%d: index %d visited %d times", jobs, i, h)
			}
		}
	}
	// n <= 0 is a no-op.
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-3, 4, func(int) { t.Fatal("fn called for n<0") })
}

func TestForEachResultsIndependentOfJobs(t *testing.T) {
	// The isolated-writes contract: per-index slots assembled in order
	// give identical results for any worker count.
	run := func(jobs int) []uint64 {
		out := make([]uint64, 64)
		ForEach(len(out), jobs, func(i int) {
			r := NewRNG(SubSeed(99, fmt.Sprintf("item/%d", i)))
			out[i] = r.Uint64()
		})
		return out
	}
	serial := run(1)
	for _, jobs := range []int{2, 4, 16} {
		got := run(jobs)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("jobs=%d: slot %d = %d, serial %d", jobs, i, got[i], serial[i])
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) error {
		isBad := map[int]bool{}
		for _, b := range bad {
			isBad[b] = true
		}
		return ForEachErr(20, 8, func(i int) error {
			if isBad[i] {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
	}
	if err := errAt(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	// Regardless of scheduling, the reported error is the serial-first one.
	for trial := 0; trial < 10; trial++ {
		err := errAt(17, 3, 11)
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("got %v, want fail@3", err)
		}
	}
}

func TestForEachErrSerialPath(t *testing.T) {
	want := errors.New("boom")
	err := ForEachErr(5, 1, func(i int) error {
		if i == 2 {
			return want
		}
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("jobs=%d: panic did not propagate", jobs)
				}
			}()
			ForEach(10, jobs, func(i int) {
				if i == 5 {
					panic("kaboom")
				}
			})
		}()
	}
}

func TestJobsDefault(t *testing.T) {
	if Jobs(3) != 3 {
		t.Fatal("positive request not honored")
	}
	if Jobs(0) < 1 || Jobs(-1) < 1 {
		t.Fatal("default must be at least 1")
	}
}
