package sim

import "math"

// SelectQuantile returns exactly what sorting xs ascending and calling
// QuantileSorted would return, without the sort: a Floyd–Rivest partial
// selection materializes just the one or two order statistics the
// interpolation reads, so the cost is O(n) instead of O(n log n). The
// Monte Carlo tail estimator (queueing.PathEstimator) and the profiling
// statistics path call this once per estimate over fresh random data,
// where a full sort's comparison branches mispredict heavily.
//
// xs is partially reordered in place (the selection's partition order,
// which is unspecified); callers that need the original order must copy
// first — Quantile does exactly that and remains the copying entry point.
// Inputs must be NaN-free: selection uses plain < comparisons, while
// sort.Float64s orders NaNs first. Every producer in this repository
// (latency samples, path sums) is NaN-free by construction.
//
// An empty xs returns 0, like Quantile.
func SelectQuantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return minOf(xs)
	}
	if q >= 1 {
		return maxOf(xs)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	floydRivestSelect(xs, lo)
	if lo == hi {
		return xs[lo]
	}
	// After selection everything right of lo is >= xs[lo], so the next
	// order statistic is the minimum of that suffix — one linear scan
	// instead of a second selection.
	next := minOf(xs[lo+1:])
	frac := pos - float64(lo)
	// The interpolation expression mirrors QuantileSorted exactly; the
	// differential test pins equality bit-for-bit.
	return xs[lo]*(1-frac) + next*frac
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// floydRivestSelect partially reorders a so that a[k] holds the k-th
// smallest element, everything left of k is <= a[k] and everything right
// is >= a[k]. It is the classic Floyd–Rivest SELECT (CACM 18(3), 1975) —
// deterministic, no RNG involvement (the estimator must not perturb any
// simulation stream).
func floydRivestSelect(a []float64, k int) {
	frSelect(a, 0, len(a)-1, k)
}

func frSelect(a []float64, left, right, k int) {
	for right > left {
		if right-left > 600 {
			// On large ranges, recursively select within a sampled
			// sub-interval first so a[k] becomes a near-exact pivot for
			// the partition below; this is what bounds the expected
			// comparison count at n + min(k, n-k) + o(n).
			n := float64(right - left + 1)
			i := float64(k-left) + 1
			z := math.Log(n)
			s := 0.5 * math.Exp(2*z/3)
			sd := 0.5 * math.Sqrt(z*s*(n-s)/n)
			if i < n/2 {
				sd = -sd
			}
			nl := left
			if v := int(float64(k) - i*s/n + sd); v > nl {
				nl = v
			}
			nr := right
			if v := int(float64(k) + (n-i)*s/n + sd); v < nr {
				nr = v
			}
			frSelect(a, nl, nr, k)
		}
		// Hoare partition around the current a[k], with the pivot parked
		// at the ends (Floyd–Rivest's arrangement keeps duplicates from
		// degrading the split).
		t := a[k]
		i, j := left, right
		a[i], a[k] = a[k], a[i]
		if a[j] > t {
			a[i], a[j] = a[j], a[i]
		}
		for i < j {
			a[i], a[j] = a[j], a[i]
			i++
			j--
			for a[i] < t {
				i++
			}
			for a[j] > t {
				j--
			}
		}
		if a[left] == t {
			a[left], a[j] = a[j], a[left]
		} else {
			j++
			a[j], a[right] = a[right], a[j]
		}
		if j <= k {
			left = j + 1
		}
		if k <= j {
			right = j - 1
		}
	}
}
