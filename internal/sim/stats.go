package sim

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single numerically stable pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than two samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CV returns the coefficient of variation (stddev / |mean|), 0 when the
// mean is 0. The magnitude of the mean is what normalizes dispersion: a
// series centred at -10 is exactly as variable as its mirror at +10, so
// the CV is non-negative for every input.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Std() / math.Abs(w.mean)
}

// Merge folds another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/n
	w.mean += d * float64(o.n) / n
	w.n += o.n
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts the input.
// An empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile over an already ascending-sorted slice.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the lengths differ or are
// shorter than two samples; the analyzer treats "no detectable correlation"
// as zero contribution, matching Eq. 2's use in the paper.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against floating-point drift outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// CoV returns the coefficient of variation of xs (stddev/|mean|, unbiased
// variance), 0 for fewer than two samples or a zero mean.
func CoV(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.CV()
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
