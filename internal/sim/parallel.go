package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rhythm/internal/obs"
)

// This file holds the worker-pool primitives every parallel sweep in the
// repository is built on. The contract that keeps parallel runs
// bit-identical to serial ones is simple and strict:
//
//   - fn(i) must depend only on i and on state that is read-only for the
//     duration of the ForEach call (typically: an options struct and a
//     seed derived from i or from content, never from a shared RNG);
//   - fn(i) must write only to the i-th slot of pre-sized result slices,
//     never append to shared slices or write shared maps;
//   - the caller assembles results in index order after ForEach returns.
//
// Under these rules the worker count changes wall-clock time and nothing
// else, which is what the determinism regression tests assert.

// Jobs resolves a requested worker count: n itself when positive,
// otherwise runtime.NumCPU(). Centralizing the default keeps `-jobs`,
// Options.Jobs fields and test helpers consistent.
func Jobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach runs fn(i) for every i in [0, n) on up to jobs worker
// goroutines (jobs <= 0 selects runtime.NumCPU()). Indices are claimed
// from an atomic counter, so the assignment of indices to workers is
// nondeterministic — fn must follow the isolated-writes contract above.
// With jobs == 1 (or n <= 1) the calls happen inline on the caller's
// goroutine in index order, exactly like the pre-parallel code.
//
// A panic in any fn is captured and re-raised on the calling goroutine
// after all workers have drained, so a crashing sweep fails the caller
// rather than the whole process.
func ForEach(n, jobs int, fn func(i int)) {
	if n <= 0 {
		return
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	// Observability: one dispatch event per fan-out plus a live-worker
	// gauge. The nil-safe instruments make this free when no bus is
	// installed, and the bus never touches any RNG stream, so tracing
	// cannot perturb the sweep (DESIGN.md §8).
	var occupancy *obs.Gauge
	if bus := obs.Active(); bus != nil {
		bus.Scope("pool").Pool(n, jobs)
		bus.Counter("rhythm_pool_dispatch_total").Inc()
		occupancy = bus.Gauge("rhythm_pool_active_workers")
	}

	if jobs <= 1 {
		occupancy.Add(1)
		for i := 0; i < n; i++ {
			fn(i)
		}
		occupancy.Add(-1)
		return
	}

	var (
		next     int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked interface{}
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			occupancy.Add(1)
			defer occupancy.Add(-1)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEachErr is ForEach for fallible work: it collects one error per
// index and returns the error with the lowest index, so the reported
// failure is the same one a serial loop would have hit first, regardless
// of which worker ran it. All n calls are attempted even after a failure
// (sweeps are cheap relative to the cost of losing determinism in
// error reporting).
func ForEachErr(n, jobs int, fn func(i int) error) error {
	errs := make([]error, n)
	ForEach(n, jobs, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
