package sim

import (
	"math"
	"testing"
)

// TestSumLognormalsMatchesPerDrawLoop pins the batched sampler to the
// plain dispatch loop it replaced: identical produced bits AND identical
// RNG stream position afterwards, for stage counts around the real
// services' path depths and draw counts that exercise partial final
// chunks.
func TestSumLognormalsMatchesPerDrawLoop(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		for _, n := range []int{1, 5, sumBatch / k, sumBatch/k + 3, 1000} {
			dists := make([]Lognormal, k)
			mu := make([]float64, k)
			sigma := make([]float64, k)
			for s := 0; s < k; s++ {
				dists[s] = NewLognormal(0.01*float64(s+1), 0.2+0.3*float64(s))
				mu[s], sigma[s] = dists[s].LogParams()
			}

			ref := NewRNG(2020).Fork("batch")
			want := make([]float64, n)
			for i := range want {
				sum := 0.0
				for s := 0; s < k; s++ {
					sum += dists[s].Sample(ref)
				}
				want[i] = sum
			}

			got := make([]float64, n)
			rng := NewRNG(2020).Fork("batch")
			SumLognormals(got, mu, sigma, rng)

			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("k=%d n=%d sum %d: got %x want %x", k, n, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
			// The stream must be left exactly where the dispatch loop
			// leaves it, or every later draw in a run diverges.
			if a, b := ref.Uint64(), rng.Uint64(); a != b {
				t.Fatalf("k=%d n=%d: stream position diverged (%x vs %x)", k, n, a, b)
			}
		}
	}
}

// TestSumLognormalsZeroStages zero-fills without touching the stream.
func TestSumLognormalsZeroStages(t *testing.T) {
	rng := NewRNG(1)
	before := *rng
	dst := []float64{1, 2, 3}
	SumLognormals(dst, nil, nil, rng)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("dst[%d] = %v, want 0", i, v)
		}
	}
	if *rng != before {
		t.Fatal("zero-stage call advanced the RNG")
	}
}

// TestSumLognormalsMismatch panics on uneven parameter arrays.
func TestSumLognormalsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mu/sigma length mismatch")
		}
	}()
	SumLognormals(make([]float64, 4), []float64{1}, []float64{1, 2}, NewRNG(1))
}

// TestSumLognormalsZeroAllocs: the batched sampler must not allocate —
// its scratch is stack arrays.
func TestSumLognormalsZeroAllocs(t *testing.T) {
	mu := []float64{-3, -3.2, -2.9, -4}
	sigma := []float64{0.3, 0.4, 0.2, 0.5}
	dst := make([]float64, 1000)
	rng := NewRNG(7)
	allocs := testing.AllocsPerRun(20, func() {
		SumLognormals(dst, mu, sigma, rng)
	})
	if allocs != 0 {
		t.Fatalf("SumLognormals allocates %.1f per op, want 0", allocs)
	}
}

// TestLognormalDrawsMatchesPerDrawLoop pins the matrix-fill sampler to the
// plain per-draw loop the engine's sampling pass replaced: every element
// bit-identical, draw-major stage-minor, and the RNG stream left at the
// same position.
func TestLognormalDrawsMatchesPerDrawLoop(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		for _, n := range []int{1, 5, sumBatch / k, sumBatch/k + 3, 1000} {
			dists := make([]Lognormal, k)
			mu := make([]float64, k)
			sigma := make([]float64, k)
			for s := 0; s < k; s++ {
				dists[s] = NewLognormal(0.01*float64(s+1), 0.2+0.3*float64(s))
				mu[s], sigma[s] = dists[s].LogParams()
			}

			ref := NewRNG(2020).Fork("draws")
			want := make([]float64, n*k)
			for i := 0; i < n; i++ {
				for s := 0; s < k; s++ {
					want[i*k+s] = dists[s].Sample(ref)
				}
			}

			got := make([]float64, n*k)
			rng := NewRNG(2020).Fork("draws")
			LognormalDraws(got, mu, sigma, rng)

			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("k=%d n=%d element %d: got %x want %x", k, n, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
			if a, b := ref.Uint64(), rng.Uint64(); a != b {
				t.Fatalf("k=%d n=%d: stream position diverged (%x vs %x)", k, n, a, b)
			}
		}
	}
}

// TestLognormalDrawsZeroStages is a no-op that leaves the stream alone.
func TestLognormalDrawsZeroStages(t *testing.T) {
	rng := NewRNG(1)
	before := *rng
	LognormalDraws(nil, nil, nil, rng)
	if *rng != before {
		t.Fatal("zero-stage call advanced the RNG")
	}
}

// TestLognormalDrawsBadLength panics when dst is not a whole number of
// draws.
func TestLognormalDrawsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dst not a multiple of the stage count")
		}
	}()
	LognormalDraws(make([]float64, 5), make([]float64, 2), make([]float64, 2), NewRNG(1))
}

// TestSubSeedBytesMatchesSubSeed pins the byte-buffer variant to the
// string one.
func TestSubSeedBytesMatchesSubSeed(t *testing.T) {
	for _, label := range []string{"", "fleet/arrivals/0", "fleet/arrivals/12345"} {
		if got, want := SubSeedBytes(2020, []byte(label)), SubSeed(2020, label); got != want {
			t.Fatalf("SubSeedBytes(%q) = %x, want %x", label, got, want)
		}
	}
}
