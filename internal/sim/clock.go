package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual simulation time. The zero Time is the start of
// the simulation. Internally it is nanoseconds, like time.Duration, so
// arithmetic composes with the standard library's duration constants.
type Time int64

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t as floating-point seconds since the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// String formats the time as a duration since the simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback in the virtual timeline.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fire func(Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is the discrete-event scheduler. Events fire in timestamp order;
// events with equal timestamps fire in scheduling order. Clock is not safe
// for concurrent use: the entire simulation is single-threaded and
// deterministic by design.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewClock returns a clock positioned at time zero with no pending events.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// At schedules fire to run at the absolute time at. Scheduling in the past
// panics: it indicates a logic error that would silently corrupt causality.
func (c *Clock) At(at Time, fire func(Time)) {
	if at < c.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", at, c.now))
	}
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fire: fire})
}

// After schedules fire to run d after the current time.
func (c *Clock) After(d time.Duration, fire func(Time)) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	c.At(c.now.Add(d), fire)
}

// Pending reports the number of events waiting to fire.
func (c *Clock) Pending() int { return len(c.events) }

// Step fires the next event and advances the clock to its timestamp.
// It reports whether an event was fired.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	e := heap.Pop(&c.events).(*event)
	c.now = e.at
	e.fire(e.at)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline, then advances the clock to deadline. It returns the
// number of events fired.
func (c *Clock) RunUntil(deadline Time) int {
	fired := 0
	for len(c.events) > 0 && c.events[0].at <= deadline {
		c.Step()
		fired++
	}
	if c.now < deadline {
		c.now = deadline
	}
	return fired
}

// Run fires events until the queue drains and returns the number fired.
// Callers must ensure the event graph terminates.
func (c *Clock) Run() int {
	fired := 0
	for c.Step() {
		fired++
	}
	return fired
}
