//go:build race

package sim

// RaceEnabled reports whether the binary was built with -race. Tests use
// it to shrink sweeps whose full-scale cost is prohibitive under the race
// detector's ~5-10x slowdown.
const RaceEnabled = true
