package benchmarks

import "testing"

// The benchmark bodies live in the non-test package file so that
// cmd/rhythm-bench can run them through testing.Benchmark; these wrappers
// expose them to `go test -bench`.

func BenchmarkTailTrackerAdd(b *testing.B)    { TailTrackerAdd(b) }
func BenchmarkTailTrackerAddP99(b *testing.B) { TailTrackerAddP99(b) }
func BenchmarkEngineTick(b *testing.B)        { EngineTick(b) }
func BenchmarkPathP99(b *testing.B)           { PathP99(b) }
