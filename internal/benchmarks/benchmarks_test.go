package benchmarks

import (
	"testing"

	"rhythm/internal/obs"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// The benchmark bodies live in the non-test package file so that
// cmd/rhythm-bench can run them through testing.Benchmark; these wrappers
// expose them to `go test -bench`.

func BenchmarkTailTrackerAdd(b *testing.B)    { TailTrackerAdd(b) }
func BenchmarkTailTrackerAddP99(b *testing.B) { TailTrackerAddP99(b) }
func BenchmarkEngineTick(b *testing.B)        { EngineTick(b) }
func BenchmarkFleetTick(b *testing.B)         { FleetTick(b) }
func BenchmarkPathP99(b *testing.B)           { PathP99(b) }
func BenchmarkObsDisabled(b *testing.B)       { ObsDisabled(b) }

// TestObsDisabledZeroAllocs pins the observability contract in the test
// suite (not just the bench harness): with no bus installed, the full set
// of emit points allocates nothing.
func TestObsDisabledZeroAllocs(t *testing.T) {
	obs.Uninstall()
	sc := obs.Active().Scope("pin")
	var (
		c *obs.Counter
		g *obs.Gauge
		h *obs.Histogram
	)
	allocs := testing.AllocsPerRun(1000, func() {
		sc.Tick(1, 100, 0.7, 700, 80)
		sc.Decision(1, "pod", "AllowBEGrowth", 0.7, 0.2, 0.01, "")
		sc.BE(1, "pod", "be-1", "grow", 2, 4)
		sc.Cache("profile", "key", true)
		sc.Pool(16, 8)
		c.Inc()
		g.Add(1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %.1f per op, want 0", allocs)
	}
}

// TestPathP99ZeroAllocs pins the steady-state path-tail estimate — the
// exact loop PathP99 benchmarks — to zero heap allocations once the
// scratch buffer has grown: sampling is stack-batched (sim.SumLognormals)
// and the quantile comes from in-place selection, so a profiling sweep's
// per-estimate cost is pure compute.
func TestPathP99ZeroAllocs(t *testing.T) {
	svc := workload.ECommerce()
	stages := make([]queueing.Sojourn, 0, len(svc.Components))
	for _, c := range svc.Components {
		stages = append(stages, c.Station.At(0.7*svc.MaxLoadQPS, 1.1, 1.2, 1))
	}
	rng := sim.NewRNG(2020).Fork("alloc-pathp99")
	const n = 1000
	_, buf := queueing.PathP99Into(nil, stages, n, rng)
	allocs := testing.AllocsPerRun(50, func() {
		_, buf = queueing.PathP99Into(buf, stages, n, rng)
	})
	if allocs != 0 {
		t.Fatalf("PathP99Into allocates %.1f per op at steady state, want 0", allocs)
	}
}
