package benchmarks

import (
	"testing"

	"rhythm/internal/obs"
)

// The benchmark bodies live in the non-test package file so that
// cmd/rhythm-bench can run them through testing.Benchmark; these wrappers
// expose them to `go test -bench`.

func BenchmarkTailTrackerAdd(b *testing.B)    { TailTrackerAdd(b) }
func BenchmarkTailTrackerAddP99(b *testing.B) { TailTrackerAddP99(b) }
func BenchmarkEngineTick(b *testing.B)        { EngineTick(b) }
func BenchmarkPathP99(b *testing.B)           { PathP99(b) }
func BenchmarkObsDisabled(b *testing.B)       { ObsDisabled(b) }

// TestObsDisabledZeroAllocs pins the observability contract in the test
// suite (not just the bench harness): with no bus installed, the full set
// of emit points allocates nothing.
func TestObsDisabledZeroAllocs(t *testing.T) {
	obs.Uninstall()
	sc := obs.Active().Scope("pin")
	var (
		c *obs.Counter
		g *obs.Gauge
		h *obs.Histogram
	)
	allocs := testing.AllocsPerRun(1000, func() {
		sc.Tick(1, 100, 0.7, 700, 80)
		sc.Decision(1, "pod", "AllowBEGrowth", 0.7, 0.2, 0.01, "")
		sc.BE(1, "pod", "be-1", "grow", 2, 4)
		sc.Cache("profile", "key", true)
		sc.Pool(16, 8)
		c.Inc()
		g.Add(1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %.1f per op, want 0", allocs)
	}
}
