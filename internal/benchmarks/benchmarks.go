// Package benchmarks hosts the measurement hot-path micro benchmarks shared
// by `go test -bench` (benchmarks_test.go) and the `make bench` harness
// (cmd/rhythm-bench), which runs them through testing.Benchmark and emits
// BENCH_engine.json. Keeping the benchmark bodies in a plain (non-test)
// package is what lets one definition serve both entry points.
//
// The benchmarks cover the per-sample unit economics of the measurement
// pipeline:
//
//   - TailTrackerAdd / TailTrackerAddP99: sliding-window insert+evict cost,
//     alone and interleaved with a p99 query per sample (the worst case
//     for the tracker's lazy reconcile).
//   - EngineTick: one full engine tick — sojourn modeling, utilization
//     accounting, SamplesPerTick end-to-end latency draws through the call
//     graph, tail-tracker maintenance.
//   - FleetTick: one fleet epoch over a 100-machine fleet — the parallel
//     per-machine slices plus the serial scheduler barrier — reported
//     both as ns/op and as a machines/s throughput metric (the
//     datacenter-scale gate).
//   - PathP99: the Monte Carlo path-tail estimator used by profiling.
//   - ObsDisabled: every observability emit point with no bus installed —
//     the nil-check path the engine hot loop pays on untraced runs, pinned
//     at 0 allocs/op (TestObsDisabledZeroAllocs).
package benchmarks

import (
	"testing"
	"time"

	"rhythm/internal/controller"
	"rhythm/internal/engine"
	"rhythm/internal/fleet"
	"rhythm/internal/loadgen"
	"rhythm/internal/metrics"
	"rhythm/internal/obs"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// benchWindow mirrors the engine's tracker window; benchSpacing yields the
// same steady-state occupancy as the default engine configuration
// (3 s window / 100 ms tick * 80 samples = 2400 live samples).
const (
	benchWindow  = 3 * time.Second
	benchSpacing = 1250 * time.Microsecond // 3s / 2400
)

// TailTrackerAdd measures the pure insert+evict path at steady-state
// occupancy (~2400 samples), with no quantile queries.
func TailTrackerAdd(b *testing.B) {
	tt := metrics.NewTailTracker(benchWindow)
	rng := sim.NewRNG(2020).Fork("bench-tail-add")
	now := sim.Time(0)
	// Fill to steady state so every measured Add also evicts.
	for i := 0; i < 2400; i++ {
		now = now.Add(benchSpacing)
		tt.Add(now, rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(benchSpacing)
		tt.Add(now, rng.Float64())
	}
}

// TailTrackerAddP99 interleaves one Add with one P99 query, the worst-case
// pattern for a copy-and-sort tracker: every query pays the full window.
func TailTrackerAddP99(b *testing.B) {
	tt := metrics.NewTailTracker(benchWindow)
	rng := sim.NewRNG(2020).Fork("bench-tail-p99")
	now := sim.Time(0)
	for i := 0; i < 2400; i++ {
		now = now.Add(benchSpacing)
		tt.Add(now, rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		now = now.Add(benchSpacing)
		tt.Add(now, rng.Float64())
		sink = tt.P99()
	}
	_ = sink
}

// EngineTick measures one engine tick of the E-commerce service at a
// constant 70% load: the per-tick sojourn/utilization pass over every pod
// plus SamplesPerTick end-to-end latency samples through the call graph.
func EngineTick(b *testing.B) {
	e, err := engine.New(engine.Config{
		Service: workload.ECommerce(),
		Pattern: loadgen.Constant(0.7),
		Seed:    2020,
	})
	if err != nil {
		b.Fatal(err)
	}
	const dt = 100 * time.Millisecond
	now := sim.Time(0)
	// Warm up past the inertia transient so the measured ticks are
	// steady state, like the bulk of every experiment run.
	for i := 0; i < 100; i++ {
		now = now.Add(dt)
		e.Step(now, 0.7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(dt)
		e.Step(now, 0.7)
	}
}

// engineForPasses builds the EngineTick fixture (E-commerce, constant
// 70%, seed 2020) warmed past the inertia transient, for the per-pass
// sub-benchmarks that attribute the tick's cost to its SoA passes.
func engineForPasses(b *testing.B) (*engine.Engine, sim.Time) {
	e, err := engine.New(engine.Config{
		Service: workload.ECommerce(),
		Pattern: loadgen.Constant(0.7),
		Seed:    2020,
	})
	if err != nil {
		b.Fatal(err)
	}
	const dt = 100 * time.Millisecond
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now = now.Add(dt)
		e.Step(now, 0.7)
	}
	return e, now
}

// enginePass runs one named SoA pass in isolation over the warmed
// EngineTick fixture; together the four passes bound where an EngineTick
// regression lives before anyone reaches for a profiler. Time advances
// one tick per iteration so the sample pass's tail trackers evict at
// steady-state occupancy instead of growing without bound.
func enginePass(b *testing.B, name string) {
	e, now := engineForPasses(b)
	const dt = 100 * time.Millisecond
	if !e.RunPass(name, now, 0.7) {
		b.Fatalf("unknown engine pass %q", name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(dt)
		e.RunPass(name, now, 0.7)
	}
}

// EngineTickDemand measures the demand gather plus dirty BE re-sync pass.
func EngineTickDemand(b *testing.B) { enginePass(b, "demand") }

// EngineTickInflation measures the pressure map and inertia-smoothed
// inflation pass.
func EngineTickInflation(b *testing.B) { enginePass(b, "inflation") }

// EngineTickSojourn measures the sojourn-cache pass; at constant load the
// key never changes, so this is the steady-state (cache-hit) cost.
func EngineTickSojourn(b *testing.B) { enginePass(b, "sojourn") }

// EngineTickSample measures the sampling pass: the SamplesPerTick×stages
// lognormal draw matrix, the plan combine, and the tail bulk insert —
// the dominant share of EngineTick.
func EngineTickSample(b *testing.B) { enginePass(b, "sample") }

// FleetTick measures one epoch of a 100-machine fleet (25 E-commerce
// replicas under the uniform Heracles policy, constant 60% load): 100
// engines advancing one 2 s control period each plus the shared-queue
// barrier (evictions, dispatch, admissions). Throughput is additionally
// reported as machines/s — machine-epochs advanced per wall second — the
// ROADMAP item 1 scale gate.
func FleetTick(b *testing.B) {
	entries := []fleet.Entry{{
		Service:  workload.ECommerce(),
		Replicas: 25, // 4 components each: 100 machines
		Policy:   controller.NewHeracles(),
	}}
	f, err := fleet.New(fleet.Config{
		Entries:  entries,
		Pattern:  loadgen.Constant(0.6),
		Duration: time.Hour, // nominal; the benchmark drives Step directly
		Seed:     2020,
		Jobs:     1, // single worker: measure the work, not the pool
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm past the engines' inertia transient.
	for i := 0; i < 5; i++ {
		f.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step()
	}
	b.ReportMetric(float64(f.Machines()*b.N)/b.Elapsed().Seconds(), "machines/s")
}

// PathP99 measures the Monte Carlo path-tail estimator over the four-stage
// E-commerce chain with the profiler's default sample count, in the
// scratch-reuse pattern sweeps use (one buffer across all calls).
func PathP99(b *testing.B) {
	svc := workload.ECommerce()
	stages := make([]queueing.Sojourn, 0, len(svc.Components))
	for _, c := range svc.Components {
		stages = append(stages, c.Station.At(0.7*svc.MaxLoadQPS, 1.1, 1.2, 1))
	}
	rng := sim.NewRNG(2020).Fork("bench-pathp99")
	const n = 1000
	// Warm the scratch before the timer: a sweep grows its buffer exactly
	// once, so steady state — the thing worth measuring — is 0 allocs/op
	// (pinned by TestPathP99ZeroAllocs).
	var buf []float64
	var sink float64
	sink, buf = queueing.PathP99Into(buf, stages, n, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink, buf = queueing.PathP99Into(buf, stages, n, rng)
	}
	_ = sink
}

// ObsDisabled measures the full set of observability emit points with no
// bus installed: the Active() load, a zero Scope's event emitters, and
// nil counter/gauge/histogram updates — everything an instrumented hot
// path executes per tick when tracing is off. The contract (pinned by
// TestObsDisabledZeroAllocs and recorded by `make bench`) is 0 allocs/op:
// an untraced run must not pay for the instrumentation's existence.
func ObsDisabled(b *testing.B) {
	obs.Uninstall()
	sc := obs.Active().Scope("bench")
	var (
		c *obs.Counter
		g *obs.Gauge
		h *obs.Histogram
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if obs.Active() != nil {
			b.Fatal("bus installed during disabled-path benchmark")
		}
		sc.Tick(int64(i), 100, 0.7, 700, 80)
		sc.Decision(int64(i), "pod", "AllowBEGrowth", 0.7, 0.2, 0.01, "")
		sc.BE(int64(i), "pod", "be-1", "grow", 2, 4)
		sc.Cache("profile", "key", true)
		sc.Pool(16, 8)
		c.Inc()
		g.Add(1)
		h.Observe(0.5)
	}
}
