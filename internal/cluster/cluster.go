// Package cluster models the physical substrate of the paper's testbed:
// machines with cores, a way-partitioned last-level cache, memory capacity,
// memory bandwidth, network bandwidth, and a power budget with DVFS
// frequency scaling. It is the state the isolation actuators
// (internal/isolation) manipulate and the interference model
// (internal/interference) reads.
//
// The defaults mirror §5.1 of the paper: four machines, each with 40 cores
// of a quad-socket Xeon E7-4820 v4 @ 2.0 GHz, 20 MB of shared L3 per socket
// (modeled as 20 CAT ways), and 64 GB of DRAM per socket.
package cluster

import "fmt"

// Resource identifies one of the shared resources the controller manages.
type Resource int

// The managed resources. Their order is stable and used for vector
// indexing across packages.
const (
	ResCPU    Resource = iota // physical cores
	ResLLC                    // last-level cache ways (Intel CAT)
	ResMemBW                  // memory bandwidth
	ResNetBW                  // network link bandwidth
	ResMemory                 // DRAM capacity
	ResPower                  // socket power (RAPL)
	numResources
)

// NumResources is the number of managed resource dimensions.
const NumResources = int(numResources)

// String returns the conventional short name of the resource.
func (r Resource) String() string {
	switch r {
	case ResCPU:
		return "cpu"
	case ResLLC:
		return "llc"
	case ResMemBW:
		return "membw"
	case ResNetBW:
		return "netbw"
	case ResMemory:
		return "memory"
	case ResPower:
		return "power"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Vector is a per-resource quantity (capacities, demands, pressures).
type Vector [NumResources]float64

// Add returns v + o element-wise.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// MachineSpec describes the capacities of one physical machine.
type MachineSpec struct {
	Cores    int     // physical cores
	LLCWays  int     // CAT-partitionable cache ways
	MemoryGB float64 // DRAM capacity
	MemBWGBs float64 // peak memory bandwidth, GB/s
	NetGbps  float64 // network link rate, Gb/s
	TDPWatts float64 // socket power budget (RAPL cap)
	BaseGHz  float64 // nominal core frequency
	MinGHz   float64 // lowest DVFS operating point
	MaxGHz   float64 // highest DVFS operating point
}

// DefaultSpec returns the testbed machine of §5.1.
func DefaultSpec() MachineSpec {
	return MachineSpec{
		Cores:    40,
		LLCWays:  20,
		MemoryGB: 256,
		MemBWGBs: 68, // quad-socket DDR4-1866 aggregate, conservative
		NetGbps:  10,
		TDPWatts: 460, // 4 sockets x 115 W
		BaseGHz:  2.0,
		MinGHz:   1.2,
		MaxGHz:   2.0,
	}
}

// Owner identifies who holds an allocation on a machine: the LC Servpod or
// a BE job instance.
type Owner struct {
	Kind OwnerKind
	Name string // Servpod name or BE instance id
}

// OwnerKind distinguishes LC from BE allocations.
type OwnerKind int

// Allocation owner kinds.
const (
	OwnerLC OwnerKind = iota
	OwnerBE
)

// String returns "lc" or "be".
func (k OwnerKind) String() string {
	if k == OwnerLC {
		return "lc"
	}
	return "be"
}

// Alloc is one owner's current grant on a machine. Cores and LLC ways are
// integers in the real system; they are tracked as float64 here only in the
// bandwidth dimensions.
type Alloc struct {
	Cores    int
	LLCWays  int
	MemoryGB float64
	MemBWGBs float64 // reserved share enforced by the model
	NetGbps  float64 // qdisc class rate
	FreqGHz  float64 // DVFS operating point for this owner's cores
}

// Machine is one physical machine plus its allocation ledger. It enforces
// the capacity invariants: the sum of granted cores, ways, memory and
// bandwidth never exceeds the spec. Machine is not safe for concurrent use;
// the simulation is single-threaded.
//
// Alongside the ledger map the machine maintains its owners in the sorted
// order every reader wants (LC first, then by name): free-capacity checks
// walk a flat slice instead of the map, re-granting an existing owner
// updates its Alloc in place, and the subcontrollers iterate BE owners
// without the per-call sort the old BEOwners paid. That keeps control
// ticks allocation-free — the fleet layer runs ~100 of them per epoch.
type Machine struct {
	Name string
	Spec MachineSpec

	allocs map[Owner]*Alloc
	// owners and ownerAllocs mirror allocs in sorted order (LC owners
	// first, then BE, each by name); lcCount is the LC prefix length.
	owners      []Owner
	ownerAllocs []*Alloc
	lcCount     int

	// overErr is the reused oversubscription error. Failed grants are how
	// the isolation agents probe for headroom every control tick, so the
	// failure path must not allocate; the message is formatted lazily in
	// Error(), and the value is valid until the machine's next failed
	// Grant.
	overErr overcommitError
}

// overcommitError reports a Grant that would violate a capacity
// invariant. It formats its message on demand so the headroom-probe hot
// path (grant, check, roll back) never touches the allocator.
type overcommitError struct {
	m *Machine
	o Owner
	u Alloc
}

func (e *overcommitError) Error() string {
	return fmt.Sprintf("cluster: grant to %s/%s oversubscribes %s (cores %d/%d, ways %d/%d, mem %.1f/%.1f GB, net %.1f/%.1f Gbps)",
		e.o.Kind, e.o.Name, e.m.Name, e.u.Cores, e.m.Spec.Cores, e.u.LLCWays, e.m.Spec.LLCWays,
		e.u.MemoryGB, e.m.Spec.MemoryGB, e.u.NetGbps, e.m.Spec.NetGbps)
}

// NewMachine returns an empty machine with the given spec.
func NewMachine(name string, spec MachineSpec) *Machine {
	return &Machine{Name: name, Spec: spec, allocs: make(map[Owner]*Alloc)}
}

// Alloc returns the current grant for owner, or nil if none. The pointed-to
// value is updated in place when the owner is re-granted, so a held pointer
// always reads the owner's current grant (and must be re-fetched only after
// a Release).
func (m *Machine) Alloc(o Owner) *Alloc {
	return m.allocs[o]
}

// ownerIdx returns the sorted position of o in owners and whether it is
// present (binary search on the LC-first, then-by-name order).
func (m *Machine) ownerIdx(o Owner) (int, bool) {
	lo, hi := 0, len(m.owners)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := m.owners[mid]
		if c.Kind < o.Kind || (c.Kind == o.Kind && c.Name < o.Name) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(m.owners) && m.owners[lo] == o
}

// insertOwner adds o at its sorted position; the caller guarantees absence.
func (m *Machine) insertOwner(o Owner, a *Alloc) {
	i, _ := m.ownerIdx(o)
	m.owners = append(m.owners, Owner{})
	copy(m.owners[i+1:], m.owners[i:])
	m.owners[i] = o
	m.ownerAllocs = append(m.ownerAllocs, nil)
	copy(m.ownerAllocs[i+1:], m.ownerAllocs[i:])
	m.ownerAllocs[i] = a
	if o.Kind == OwnerLC {
		m.lcCount++
	}
}

// removeOwner drops o from the sorted mirrors if present.
func (m *Machine) removeOwner(o Owner) {
	i, ok := m.ownerIdx(o)
	if !ok {
		return
	}
	m.owners = append(m.owners[:i], m.owners[i+1:]...)
	m.ownerAllocs = append(m.ownerAllocs[:i], m.ownerAllocs[i+1:]...)
	if o.Kind == OwnerLC {
		m.lcCount--
	}
}

// Owners returns a copy of all owners with grants, sorted for determinism
// (LC first, then by name).
func (m *Machine) Owners() []Owner {
	return append([]Owner(nil), m.owners...)
}

// used sums all grants, walking the sorted mirror so the float sums are
// evaluated in a deterministic order.
func (m *Machine) used() Alloc {
	var u Alloc
	for _, a := range m.ownerAllocs {
		u.Cores += a.Cores
		u.LLCWays += a.LLCWays
		u.MemoryGB += a.MemoryGB
		u.MemBWGBs += a.MemBWGBs
		u.NetGbps += a.NetGbps
	}
	return u
}

// FreeCores returns the number of unallocated cores.
func (m *Machine) FreeCores() int { return m.Spec.Cores - m.used().Cores }

// FreeLLCWays returns the number of unallocated cache ways.
func (m *Machine) FreeLLCWays() int { return m.Spec.LLCWays - m.used().LLCWays }

// FreeMemoryGB returns unallocated DRAM in GB.
func (m *Machine) FreeMemoryGB() float64 { return m.Spec.MemoryGB - m.used().MemoryGB }

// FreeNetGbps returns unreserved network bandwidth.
func (m *Machine) FreeNetGbps() float64 { return m.Spec.NetGbps - m.used().NetGbps }

// Grant installs or replaces the allocation for owner after validating that
// the machine-wide invariants hold. On violation it returns an error and
// leaves the ledger unchanged.
func (m *Machine) Grant(o Owner, a Alloc) error {
	if a.Cores < 0 || a.LLCWays < 0 || a.MemoryGB < 0 || a.MemBWGBs < 0 || a.NetGbps < 0 {
		return fmt.Errorf("cluster: negative allocation for %s/%s: %+v", o.Kind, o.Name, a)
	}
	if a.FreqGHz != 0 && (a.FreqGHz < m.Spec.MinGHz-1e-9 || a.FreqGHz > m.Spec.MaxGHz+1e-9) {
		return fmt.Errorf("cluster: frequency %.2f GHz outside [%.2f, %.2f]",
			a.FreqGHz, m.Spec.MinGHz, m.Spec.MaxGHz)
	}
	if prev, had := m.allocs[o]; had {
		// Re-grant: update the existing Alloc in place so no allocation
		// happens and held pointers keep reading the current grant.
		old := *prev
		*prev = a
		u := m.used()
		if u.Cores > m.Spec.Cores || u.LLCWays > m.Spec.LLCWays ||
			u.MemoryGB > m.Spec.MemoryGB+1e-9 || u.NetGbps > m.Spec.NetGbps+1e-9 {
			*prev = old
			return m.oversubscribed(o, u)
		}
		return nil
	}
	// A fresh heap Alloc only on the new-owner path; taking &a directly
	// would force a on the re-grant hot path onto the heap too.
	na := new(Alloc)
	*na = a
	m.allocs[o] = na
	m.insertOwner(o, na)
	u := m.used()
	if u.Cores > m.Spec.Cores || u.LLCWays > m.Spec.LLCWays ||
		u.MemoryGB > m.Spec.MemoryGB+1e-9 || u.NetGbps > m.Spec.NetGbps+1e-9 {
		delete(m.allocs, o)
		m.removeOwner(o)
		return m.oversubscribed(o, u)
	}
	return nil
}

// oversubscribed fills the machine's reused invariant-violation error for
// Grant. The returned value is overwritten by the next failed grant;
// callers that retain errors must capture Error() first (none in this
// repository do — the actuators treat it as a headroom boolean).
func (m *Machine) oversubscribed(o Owner, u Alloc) error {
	m.overErr = overcommitError{m: m, o: o, u: u}
	return &m.overErr
}

// Release removes owner's allocation. Releasing an absent owner is a no-op.
func (m *Machine) Release(o Owner) {
	if _, ok := m.allocs[o]; !ok {
		return
	}
	delete(m.allocs, o)
	m.removeOwner(o)
}

// LCAlloc returns the (single) LC allocation on the machine, or nil.
func (m *Machine) LCAlloc() *Alloc {
	if m.lcCount == 0 {
		return nil
	}
	return m.ownerAllocs[0]
}

// BEOwners returns a copy of the BE owners on the machine, sorted by name.
func (m *Machine) BEOwners() []Owner {
	return append([]Owner(nil), m.BEOwnersView()...)
}

// BEOwnersView returns the BE owners sorted by name as a read-only view of
// the machine's internal mirror: valid until the next Grant of a new owner
// or Release, and never to be mutated by the caller. Re-granting an
// existing owner (the subcontrollers' step operations) does not disturb
// it, so iterating the view while adjusting grants is safe — the
// allocation-free path the per-control-tick actuators use.
func (m *Machine) BEOwnersView() []Owner {
	return m.owners[m.lcCount:]
}

// BETotals sums all BE grants on the machine.
func (m *Machine) BETotals() Alloc {
	var u Alloc
	for _, a := range m.ownerAllocs[m.lcCount:] {
		u.Cores += a.Cores
		u.LLCWays += a.LLCWays
		u.MemoryGB += a.MemoryGB
		u.MemBWGBs += a.MemBWGBs
		u.NetGbps += a.NetGbps
	}
	return u
}

// Cluster is a named set of machines.
type Cluster struct {
	Machines []*Machine
}

// New returns a cluster of n machines with the given spec, named m0..m(n-1).
func New(n int, spec MachineSpec) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.Machines = append(c.Machines, NewMachine(fmt.Sprintf("m%d", i), spec))
	}
	return c
}

// Machine returns the machine with the given name, or nil.
func (c *Cluster) Machine(name string) *Machine {
	for _, m := range c.Machines {
		if m.Name == name {
			return m
		}
	}
	return nil
}
