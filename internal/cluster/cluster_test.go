package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"rhythm/internal/sim"
)

func lc(name string) Owner { return Owner{Kind: OwnerLC, Name: name} }
func be(name string) Owner { return Owner{Kind: OwnerBE, Name: name} }

func TestGrantAndFree(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(lc("mysql"), Alloc{Cores: 16, LLCWays: 10, MemoryGB: 64}); err != nil {
		t.Fatal(err)
	}
	if err := m.Grant(be("wc-1"), Alloc{Cores: 4, LLCWays: 2, MemoryGB: 2}); err != nil {
		t.Fatal(err)
	}
	if m.FreeCores() != 20 {
		t.Fatalf("free cores = %d, want 20", m.FreeCores())
	}
	if m.FreeLLCWays() != 8 {
		t.Fatalf("free ways = %d, want 8", m.FreeLLCWays())
	}
	if m.FreeMemoryGB() != 190 {
		t.Fatalf("free mem = %v, want 190", m.FreeMemoryGB())
	}
}

func TestGrantRejectsOversubscription(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(lc("a"), Alloc{Cores: 30}); err != nil {
		t.Fatal(err)
	}
	err := m.Grant(be("b"), Alloc{Cores: 11})
	if err == nil {
		t.Fatal("expected oversubscription error")
	}
	if !strings.Contains(err.Error(), "oversubscribes") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Ledger unchanged after the failed grant.
	if m.Alloc(be("b")) != nil {
		t.Fatal("failed grant left residue")
	}
	if m.FreeCores() != 10 {
		t.Fatalf("free cores = %d, want 10", m.FreeCores())
	}
}

func TestGrantReplaceRollsBackOnFailure(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(be("b"), Alloc{Cores: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Grant(be("b"), Alloc{Cores: 100}); err == nil {
		t.Fatal("expected failure")
	}
	if got := m.Alloc(be("b")).Cores; got != 5 {
		t.Fatalf("rollback failed: cores = %d, want 5", got)
	}
}

func TestGrantRejectsNegative(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(be("b"), Alloc{Cores: -1}); err == nil {
		t.Fatal("negative cores accepted")
	}
	if err := m.Grant(be("b"), Alloc{MemBWGBs: -0.5}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestGrantRejectsBadFrequency(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(lc("a"), Alloc{Cores: 1, FreqGHz: 3.5}); err == nil {
		t.Fatal("over-max frequency accepted")
	}
	if err := m.Grant(lc("a"), Alloc{Cores: 1, FreqGHz: 0.4}); err == nil {
		t.Fatal("under-min frequency accepted")
	}
	if err := m.Grant(lc("a"), Alloc{Cores: 1, FreqGHz: 1.5}); err != nil {
		t.Fatalf("valid frequency rejected: %v", err)
	}
	// Zero means "unset" and is allowed.
	if err := m.Grant(be("b"), Alloc{Cores: 1}); err != nil {
		t.Fatalf("zero frequency rejected: %v", err)
	}
}

func TestRelease(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(be("b"), Alloc{Cores: 10}); err != nil {
		t.Fatal(err)
	}
	m.Release(be("b"))
	if m.FreeCores() != 40 {
		t.Fatalf("free cores = %d after release", m.FreeCores())
	}
	m.Release(be("absent")) // no-op
}

func TestOwnersSortedDeterministically(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	for _, n := range []string{"z", "a", "q"} {
		if err := m.Grant(be(n), Alloc{Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Grant(lc("pod"), Alloc{Cores: 1}); err != nil {
		t.Fatal(err)
	}
	got := m.Owners()
	want := []Owner{lc("pod"), be("a"), be("q"), be("z")}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("owners = %v, want %v", got, want)
		}
	}
}

func TestBETotalsExcludesLC(t *testing.T) {
	m := NewMachine("m0", DefaultSpec())
	if err := m.Grant(lc("pod"), Alloc{Cores: 20, LLCWays: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.Grant(be("b1"), Alloc{Cores: 3, LLCWays: 2, MemoryGB: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Grant(be("b2"), Alloc{Cores: 2, LLCWays: 1, MemoryGB: 2}); err != nil {
		t.Fatal(err)
	}
	tot := m.BETotals()
	if tot.Cores != 5 || tot.LLCWays != 3 || tot.MemoryGB != 4 {
		t.Fatalf("BE totals = %+v", tot)
	}
	if got := m.LCAlloc(); got == nil || got.Cores != 20 {
		t.Fatalf("LC alloc = %+v", got)
	}
	if n := len(m.BEOwners()); n != 2 {
		t.Fatalf("BE owners = %d, want 2", n)
	}
}

// Property: a sequence of random grants/releases never leaves the ledger
// oversubscribed, and failed grants never change free counts.
func TestLedgerInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		m := NewMachine("m0", DefaultSpec())
		names := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 200; i++ {
			o := be(names[r.Intn(len(names))])
			if r.Float64() < 0.3 {
				m.Release(o)
			} else {
				a := Alloc{
					Cores:    r.Intn(30),
					LLCWays:  r.Intn(15),
					MemoryGB: float64(r.Intn(100)),
					NetGbps:  r.Float64() * 5,
				}
				_ = m.Grant(o, a) // errors are fine; state must stay valid
			}
			if m.FreeCores() < 0 || m.FreeLLCWays() < 0 ||
				m.FreeMemoryGB() < -1e-9 || m.FreeNetGbps() < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterLookup(t *testing.T) {
	c := New(4, DefaultSpec())
	if len(c.Machines) != 4 {
		t.Fatalf("machines = %d", len(c.Machines))
	}
	if c.Machine("m2") == nil {
		t.Fatal("m2 missing")
	}
	if c.Machine("nope") != nil {
		t.Fatal("phantom machine")
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Add(Vector{1, 1, 1}).Scale(2)
	if w[0] != 4 || w[1] != 6 || w[2] != 8 {
		t.Fatalf("vector ops: %v", w)
	}
	// Add/Scale are value ops: v unchanged.
	if v[0] != 1 {
		t.Fatal("vector mutated")
	}
}

func TestResourceString(t *testing.T) {
	names := map[Resource]string{
		ResCPU: "cpu", ResLLC: "llc", ResMemBW: "membw",
		ResNetBW: "netbw", ResMemory: "memory", ResPower: "power",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if Resource(99).String() != "resource(99)" {
		t.Error("unknown resource name")
	}
	if OwnerLC.String() != "lc" || OwnerBE.String() != "be" {
		t.Error("owner kind names")
	}
}
