package controller

import (
	"strings"
	"testing"
)

func registryOpts() FactoryOpts {
	return FactoryOpts{
		Thresholds: map[string]Thresholds{
			"frontend": {Loadlimit: 0.8, Slacklimit: 0.12},
			"cache":    {Loadlimit: 1.1, Slacklimit: 0.05},
		},
		SLA: 0.5,
	}
}

// TestRegistryRoundTrip: every registered name constructs a working
// policy with a non-empty display name, fresh per call (stateful
// policies must not share history across runs).
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, want := range []string{"rhythm", "heracles", "none", "predictive", "scoring", "rack-central"} {
		if !Registered(want) {
			t.Fatalf("built-in policy %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, name := range names {
		a, err := New(name, registryOpts())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() == "" {
			t.Fatalf("New(%q) returned a nameless policy", name)
		}
		b, err := New(name, registryOpts())
		if err != nil {
			t.Fatal(err)
		}
		// Pointer-typed policies must be fresh instances; value types
		// (Disabled) are stateless and exempt by construction.
		if _, stateless := a.(Disabled); !stateless && a == b {
			t.Fatalf("New(%q) returned a shared instance", name)
		}
	}
}

// TestRegistryUnknownName: the error carries the full registered list so
// CLI and spec validation can surface it verbatim.
func TestRegistryUnknownName(t *testing.T) {
	_, err := New("nope", registryOpts())
	if err == nil {
		t.Fatal("unknown name constructed")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered policy %q", err, name)
		}
	}
	if Registered("nope") {
		t.Fatal("Registered(nope)")
	}
}

// TestRegisterRejectsDuplicatesAndEmpty: both are init-time programmer
// errors and must panic rather than shadow an existing policy.
func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("Register(%q) did not panic", name)
			}
		}()
		Register(name, f)
	}
	mustPanic("rhythm", func(FactoryOpts) (Policy, error) { return Disabled{}, nil })
	mustPanic("", func(FactoryOpts) (Policy, error) { return Disabled{}, nil })
	mustPanic("nilfactory", nil)
}

// TestRhythmFactoryRequiresThresholds: "rhythm" without per-Servpod
// thresholds must error — running it uniform would silently benchmark a
// different policy.
func TestRhythmFactoryRequiresThresholds(t *testing.T) {
	if _, err := New("rhythm", FactoryOpts{}); err == nil {
		t.Fatal("rhythm constructed without thresholds")
	}
	for _, name := range []string{"predictive", "scoring", "rack-central", "heracles", "none"} {
		if _, err := New(name, FactoryOpts{}); err != nil {
			t.Fatalf("%s must fall back to uniform thresholds, got %v", name, err)
		}
	}
}
