// Predictive is the PCS-style policy (arXiv 1511.02960): instead of
// reacting to the load a control tick measures, it fits a linear trend
// to each Servpod's recent load history and controls against the
// forecast. A load wave that will crest above the loadlimit two control
// periods from now suspends BE work *before* it arrives; a receding wave
// releases the brakes no later than Algorithm 2 would.

package controller

import (
	"fmt"
	"math"
)

// Predictive forecasts per-Servpod load with a least-squares linear
// trend over a sliding window and applies Algorithm 2 to the *worse* of
// the measured and forecast state. Deterministic and stateful: it keeps
// a per-pod load history, so construct a fresh instance per run (the
// registry does) and never share one across concurrent engines.
type Predictive struct {
	perPod  map[string]Thresholds
	uniform Thresholds
	// window is how many observations the trend is fit over; lookahead is
	// the forecast distance in control periods.
	window    int
	lookahead float64
	hist      map[string][]float64
}

// NewPredictive returns the forecasting policy over the deployment's
// per-Servpod thresholds; a nil map falls back to the uniform Heracles
// pair for every pod. The defaults — an 8-observation window, a
// 2-period lookahead — match one engine control period per observation:
// the forecast reaches as far ahead as the actuation pipeline takes to
// bite.
func NewPredictive(perPod map[string]Thresholds) *Predictive {
	cp := make(map[string]Thresholds, len(perPod))
	for k, v := range perPod {
		cp[k] = v
	}
	return &Predictive{
		perPod:    cp,
		uniform:   NewHeracles().Uniform,
		window:    8,
		lookahead: 2,
		hist:      map[string][]float64{},
	}
}

func (p *Predictive) thresholds(pod string) Thresholds {
	if t, ok := p.perPod[pod]; ok {
		return t
	}
	return p.uniform
}

// forecast extrapolates the least-squares trend of h by ahead steps past
// the last observation. Short histories forecast flat.
func forecast(h []float64, ahead float64) float64 {
	n := len(h)
	if n == 0 {
		return 0
	}
	last := h[n-1]
	if n < 2 {
		return last
	}
	// Least-squares slope over x = 0..n-1: with xbar = (n-1)/2,
	// slope = sum((x-xbar)*(y-ybar)) / sum((x-xbar)^2).
	xbar := float64(n-1) / 2
	var ybar float64
	for _, y := range h {
		ybar += y
	}
	ybar /= float64(n)
	var num, den float64
	for i, y := range h {
		dx := float64(i) - xbar
		num += dx * (y - ybar)
		den += dx * dx
	}
	return last + num/den*ahead
}

// observe records a load measurement and returns the forecast load.
func (p *Predictive) observe(pod string, load float64) float64 {
	h := append(p.hist[pod], load)
	if len(h) > p.window {
		h = h[len(h)-p.window:]
	}
	p.hist[pod] = h
	return forecast(h, p.lookahead)
}

// project maps a measured (load, slack) pair to the state Algorithm 2
// should control against: the max of measured and forecast load, and the
// slack discounted by the forecast rise — an approaching wave consumes
// slack before it arrives, at roughly the rate load consumes it (slack
// and load are both normalized to capacity).
func (p *Predictive) project(pod string, load, slack float64) (float64, float64) {
	pred := p.observe(pod, load)
	ctlLoad := math.Max(load, pred)
	if rise := pred - load; rise > 0 {
		slack -= rise
	}
	return ctlLoad, slack
}

// DecideInput forecasts from the measured load, then applies Algorithm 2
// to the projected state. NaN measurements never enter the history: a
// blind period would otherwise poison the trend for a full window after
// measurements return.
func (p *Predictive) DecideInput(in PolicyInput) Action {
	if math.IsNaN(in.Load) || math.IsNaN(in.Slack) {
		return DisallowBEGrowth
	}
	load, slack := p.project(in.Pod, in.Load, in.Slack)
	return decide(p.thresholds(in.Pod), load, slack)
}

// Decide is the legacy entry point; it forwards to the same forecast
// path with only the partial input.
func (p *Predictive) Decide(pod string, load, slack float64) Action {
	return p.DecideInput(PolicyInput{Pod: pod, Load: load, Slack: slack})
}

// ExplainInput mirrors DecideInput with the branch reason, prefixed by
// the forecast that drove it. It advances the same history DecideInput
// would, so the engine must call exactly one of them per pod per tick —
// it does: Explain replaces Decide under tracing, never augments it.
func (p *Predictive) ExplainInput(in PolicyInput) (Action, string) {
	if math.IsNaN(in.Load) || math.IsNaN(in.Slack) {
		return DisallowBEGrowth, "degraded: NaN measurement input; freezing BE growth"
	}
	load, slack := p.project(in.Pod, in.Load, in.Slack)
	act, reason := explain(p.thresholds(in.Pod), load, slack)
	return act, fmt.Sprintf("forecast load %.2f (measured %.2f): %s", load, in.Load, reason)
}

// Name returns "Predictive".
func (p *Predictive) Name() string { return "Predictive" }

// SlacklimitFor reports the pod's slacklimit for CutBE step sizing.
func (p *Predictive) SlacklimitFor(pod string) float64 {
	return p.thresholds(pod).Slacklimit
}
