package controller

import (
	"math"
	"strings"
	"testing"

	"rhythm/internal/sim"
)

// TestNaNInputsNeverAllowGrowth pins the graceful-degradation contract:
// a NaN slack or load must never reach an Algorithm 2 comparison (every
// NaN comparison is false, which would fall through to AllowBEGrowth) and
// must never panic.
func TestNaNInputsNeverAllowGrowth(t *testing.T) {
	nan := math.NaN()
	pols := []Policy{
		mustRhythm(t),
		NewHeracles(),
	}
	cases := []struct{ load, slack float64 }{
		{nan, 0.5},
		{0.5, nan},
		{nan, nan},
		{math.Inf(1), nan},
		{nan, math.Inf(-1)},
	}
	for _, pol := range pols {
		for _, tc := range cases {
			act := pol.Decide("MySQL", tc.load, tc.slack)
			if act == AllowBEGrowth {
				t.Fatalf("%s: Decide(load=%v, slack=%v) = AllowBEGrowth on NaN input", pol.Name(), tc.load, tc.slack)
			}
			if act != DisallowBEGrowth {
				t.Fatalf("%s: Decide(load=%v, slack=%v) = %v, want conservative DisallowBEGrowth", pol.Name(), tc.load, tc.slack, act)
			}
			ex := pol.(Explainer)
			exAct, reason := ex.Explain("MySQL", tc.load, tc.slack)
			if exAct != act {
				t.Fatalf("%s: Explain diverges from Decide on NaN input: %v vs %v", pol.Name(), exAct, act)
			}
			if !strings.Contains(reason, "degraded") {
				t.Fatalf("%s: Explain reason %q does not report degraded mode", pol.Name(), reason)
			}
		}
	}
}

// TestArbitraryDropoutSequences fuzzes decide with random interleavings
// of clean and poisoned (NaN/Inf/stale-extreme) measurements: no input
// sequence may panic, and every poisoned input must map to a
// conservative action.
func TestArbitraryDropoutSequences(t *testing.T) {
	rng := sim.NewRNG(2020)
	pol := mustRhythm(t)
	her := NewHeracles()
	for i := 0; i < 5000; i++ {
		load := rng.Float64() * 1.2
		slack := rng.Float64()*2 - 1
		switch rng.Intn(5) {
		case 0:
			slack = math.NaN()
		case 1:
			load = math.NaN()
		case 2:
			slack = math.Inf(1 - 2*rng.Intn(2))
		}
		for _, p := range []Policy{pol, her} {
			act := p.Decide("MySQL", load, slack)
			if act < StopBE || act > AllowBEGrowth {
				t.Fatalf("%s: out-of-range action %d", p.Name(), act)
			}
			if (math.IsNaN(load) || math.IsNaN(slack)) && act == AllowBEGrowth {
				t.Fatalf("%s: AllowBEGrowth from NaN input (load=%v slack=%v)", p.Name(), load, slack)
			}
		}
	}
}

// TestDegradedEscalation pins the DisallowBEGrowth -> CutBE escalation
// and that it never grows BE while blind.
func TestDegradedEscalation(t *testing.T) {
	for n := 1; n <= 10; n++ {
		act := Degraded(n)
		if act == AllowBEGrowth {
			t.Fatalf("Degraded(%d) allows growth while blind", n)
		}
		want := DisallowBEGrowth
		if n > DegradedAfter {
			want = CutBE
		}
		if act != want {
			t.Fatalf("Degraded(%d) = %v, want %v", n, act, want)
		}
		reason := DegradedReason(n, "p99 NaN")
		if !strings.Contains(reason, "degraded") || !strings.Contains(reason, act.String()) {
			t.Fatalf("DegradedReason(%d) = %q missing mode or action", n, reason)
		}
	}
}

func mustRhythm(t *testing.T) *Rhythm {
	t.Helper()
	pol, err := NewRhythm(map[string]Thresholds{
		"MySQL": {Loadlimit: 0.6, Slacklimit: 0.3},
		"Web":   {Loadlimit: 0.9, Slacklimit: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pol
}
