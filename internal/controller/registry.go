// The name-keyed policy registry: the single place CLI flags, scenario
// specs, the tournament experiment and the facade resolve policy names
// through. It replaces the sentinel switch that used to live in
// internal/core — core.System.Run now asks the registry to construct
// anything that isn't the system's own calibrated Rhythm instance.
// See DESIGN.md §15.2.

package controller

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FactoryOpts carries the deployment-derived inputs a policy factory may
// use. Factories must tolerate zero values: Thresholds may be nil (a
// policy that requires them returns an error, like "rhythm"; most fall
// back to the uniform Heracles pair) and SLA may be 0.
type FactoryOpts struct {
	// Thresholds are the deployed system's per-Servpod control pairs
	// (§4.3's output), keyed by Servpod name.
	Thresholds map[string]Thresholds
	// SLA is the system's derived end-to-end SLA in seconds.
	SLA float64
}

// Factory constructs a fresh policy instance. The registry calls it once
// per run, so stateful policies never leak history across runs and never
// see concurrent Decide calls from different engines.
type Factory func(opts FactoryOpts) (Policy, error)

var registry = struct {
	sync.Mutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register adds a named policy factory. Names are the stable CLI /
// scenario-spec identifiers (lowercase, hyphenated); registering an
// empty name or a duplicate panics — both are programmer errors that
// must fail loudly at init time, not at resolution time.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("controller: Register needs a non-empty name and a factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("controller: policy %q registered twice", name))
	}
	registry.factories[name] = f
}

// New constructs a fresh instance of the named policy. Unknown names
// error with the full registered list, so CLI and spec validation
// messages can surface it verbatim.
func New(name string, opts FactoryOpts) (Policy, error) {
	registry.Lock()
	f, ok := registry.factories[name]
	registry.Unlock()
	if !ok {
		return nil, fmt.Errorf("controller: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(opts)
}

// Registered reports whether a policy name is known.
func Registered(name string) bool {
	registry.Lock()
	defer registry.Unlock()
	_, ok := registry.factories[name]
	return ok
}

// Names returns every registered policy name, sorted.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// uniformOrPerPod resolves the threshold source shared by the zoo
// policies: the deployment's per-Servpod pairs when available, else the
// published uniform Heracles pair for every pod.
func uniformOrPerPod(opts FactoryOpts) map[string]Thresholds {
	if len(opts.Thresholds) > 0 {
		return opts.Thresholds
	}
	return nil
}

// The built-in zoo. "rhythm" demands real per-Servpod thresholds — it is
// the component-distinguishable policy, and running it uniform would
// silently benchmark something else. The rest degrade gracefully to the
// uniform pair.
func init() {
	Register("rhythm", func(opts FactoryOpts) (Policy, error) {
		return NewRhythm(opts.Thresholds)
	})
	Register("heracles", func(FactoryOpts) (Policy, error) {
		return NewHeracles(), nil
	})
	Register("none", func(FactoryOpts) (Policy, error) {
		return Disabled{}, nil
	})
	Register("predictive", func(opts FactoryOpts) (Policy, error) {
		return NewPredictive(uniformOrPerPod(opts)), nil
	})
	Register("scoring", func(opts FactoryOpts) (Policy, error) {
		return NewScoring(uniformOrPerPod(opts)), nil
	})
	Register("rack-central", func(FactoryOpts) (Policy, error) {
		return NewRackCentral(), nil
	})
}
