// Package controller implements the decision side of §3.5: the top
// controller's five actions (Algorithm 2) computed from the real-time
// request load and latency slack against the per-Servpod thresholds, plus
// the Heracles baseline of §5.1 which applies one uniform threshold pair
// to every machine.
//
// The actuation side (the four subcontrollers adjusting cores, LLC ways,
// frequency, memory and network bandwidth) lives in internal/isolation and
// is driven by internal/engine in response to these decisions.
package controller

import (
	"fmt"
	"math"
	"sort"
)

// Action is a top-controller decision (§3.5.2).
type Action int

// The five actions of the top controller. StopBE kills all BE jobs and
// releases their resources; SuspendBE pauses them but keeps their memory;
// CutBE shrinks their allocations; DisallowBEGrowth freezes them;
// AllowBEGrowth admits more BE jobs and resources.
const (
	StopBE Action = iota
	SuspendBE
	CutBE
	DisallowBEGrowth
	AllowBEGrowth
)

// String names the action as the paper does.
func (a Action) String() string {
	switch a {
	case StopBE:
		return "StopBE"
	case SuspendBE:
		return "SuspendBE"
	case CutBE:
		return "CutBE"
	case DisallowBEGrowth:
		return "DisallowBEGrowth"
	case AllowBEGrowth:
		return "AllowBEGrowth"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Thresholds is one Servpod's control pair (§3.5.1).
type Thresholds struct {
	// Loadlimit is the load fraction above which no BE jobs may run.
	Loadlimit float64
	// Slacklimit is the minimum latency slack that permits BE growth.
	Slacklimit float64
}

// Policy decides the action for one machine from its Servpod's measured
// state. Implementations must be deterministic.
type Policy interface {
	// Decide returns the action for the named Servpod given the current
	// service load fraction and latency slack (slack = (SLA - tail)/SLA;
	// negative when the SLA is violated).
	Decide(pod string, load, slack float64) Action
	// Name identifies the policy in experiment output.
	Name() string
}

// decide implements Algorithm 2 for a threshold pair.
//
// The NaN guard comes first: every float comparison against NaN is false,
// so without it a broken measurement pipeline (measurement-dropout faults,
// internal/faults) would fall through every branch to AllowBEGrowth — the
// most aggressive action, taken exactly when the controller is blind.
// Degraded inputs instead freeze BE growth; the engine escalates further
// via Degraded when blindness persists.
func decide(t Thresholds, load, slack float64) Action {
	switch {
	case math.IsNaN(slack) || math.IsNaN(load):
		return DisallowBEGrowth
	case slack < 0:
		return StopBE
	case load > t.Loadlimit:
		return SuspendBE
	case slack < t.Slacklimit/2:
		return CutBE
	case slack < t.Slacklimit:
		return DisallowBEGrowth
	default:
		return AllowBEGrowth
	}
}

// Explainer is implemented by policies that can name the Algorithm 2
// branch behind a decision. The engine consults it only when the
// observability bus is enabled, so the string building never costs an
// untraced run anything.
type Explainer interface {
	// Explain returns the same action Decide would and a human-readable
	// reason naming the branch and the thresholds it compared against.
	Explain(pod string, load, slack float64) (Action, string)
}

// explain is decide plus the branch taken, rendered against the pod's
// thresholds. It must stay in lockstep with decide: both switch on the
// identical conditions, which TestExplainMatchesDecide locks in.
func explain(t Thresholds, load, slack float64) (Action, string) {
	switch {
	case math.IsNaN(slack) || math.IsNaN(load):
		return DisallowBEGrowth, "degraded: NaN measurement input; freezing BE growth"
	case slack < 0:
		return StopBE, fmt.Sprintf("slack %.3f < 0: SLA violated", slack)
	case load > t.Loadlimit:
		return SuspendBE, fmt.Sprintf("load %.2f > loadlimit %.2f", load, t.Loadlimit)
	case slack < t.Slacklimit/2:
		return CutBE, fmt.Sprintf("slack %.3f < slacklimit/2 %.3f", slack, t.Slacklimit/2)
	case slack < t.Slacklimit:
		return DisallowBEGrowth, fmt.Sprintf("slack %.3f < slacklimit %.3f", slack, t.Slacklimit)
	default:
		return AllowBEGrowth, fmt.Sprintf("slack %.3f >= slacklimit %.3f", slack, t.Slacklimit)
	}
}

// Rhythm is the component-distinguishable policy: per-Servpod thresholds
// derived from contributions.
type Rhythm struct {
	perPod map[string]Thresholds
}

// NewRhythm returns a Rhythm policy over the given per-Servpod thresholds.
func NewRhythm(perPod map[string]Thresholds) (*Rhythm, error) {
	if len(perPod) == 0 {
		return nil, fmt.Errorf("controller: Rhythm needs at least one Servpod threshold")
	}
	for pod, t := range perPod {
		if t.Loadlimit <= 0 || t.Loadlimit > 1.5 {
			return nil, fmt.Errorf("controller: %s loadlimit %v out of (0, 1.5]", pod, t.Loadlimit)
		}
		if t.Slacklimit <= 0 || t.Slacklimit > 1 {
			return nil, fmt.Errorf("controller: %s slacklimit %v out of (0, 1]", pod, t.Slacklimit)
		}
	}
	cp := make(map[string]Thresholds, len(perPod))
	for k, v := range perPod {
		cp[k] = v
	}
	return &Rhythm{perPod: cp}, nil
}

// Decide applies Algorithm 2 with the pod's own thresholds. Unknown pods
// are controlled with the most conservative configured thresholds, so a
// placement mistake degrades to safety rather than SLA risk.
func (r *Rhythm) Decide(pod string, load, slack float64) Action {
	t, ok := r.perPod[pod]
	if !ok {
		t = r.conservative()
	}
	return decide(t, load, slack)
}

// conservative returns the lowest loadlimit and highest slacklimit among
// the configured pods.
func (r *Rhythm) conservative() Thresholds {
	out := Thresholds{Loadlimit: 1.5, Slacklimit: 0}
	for _, t := range r.perPod {
		if t.Loadlimit < out.Loadlimit {
			out.Loadlimit = t.Loadlimit
		}
		if t.Slacklimit > out.Slacklimit {
			out.Slacklimit = t.Slacklimit
		}
	}
	return out
}

// Name returns "Rhythm".
func (r *Rhythm) Name() string { return "Rhythm" }

// Explain returns Decide's action plus the Algorithm 2 branch it took
// against the pod's thresholds.
func (r *Rhythm) Explain(pod string, load, slack float64) (Action, string) {
	t, ok := r.perPod[pod]
	if !ok {
		t = r.conservative()
	}
	return explain(t, load, slack)
}

// Thresholds returns the pod's configured thresholds and whether they
// exist.
func (r *Rhythm) Thresholds(pod string) (Thresholds, bool) {
	t, ok := r.perPod[pod]
	return t, ok
}

// Pods returns the configured Servpod names, sorted.
func (r *Rhythm) Pods() []string {
	out := make([]string, 0, len(r.perPod))
	for pod := range r.perPod {
		out = append(out, pod)
	}
	sort.Strings(out)
	return out
}

// Heracles is the §5.1 baseline: the same Algorithm 2 loop with one
// uniform threshold pair for every machine — it "does not distinguish
// between Servpods". The paper configures it to disable BE jobs whenever
// the load exceeds 0.85 and to disallow BE growth whenever slack is below
// 0.10.
type Heracles struct {
	Uniform Thresholds
}

// NewHeracles returns the baseline with its published thresholds.
func NewHeracles() *Heracles {
	return &Heracles{Uniform: Thresholds{Loadlimit: 0.85, Slacklimit: 0.10}}
}

// Decide applies Algorithm 2 with the uniform thresholds.
func (h *Heracles) Decide(_ string, load, slack float64) Action {
	return decide(h.Uniform, load, slack)
}

// Name returns "Heracles".
func (h *Heracles) Name() string { return "Heracles" }

// Explain returns Decide's action plus the Algorithm 2 branch it took
// against the uniform thresholds.
func (h *Heracles) Explain(_ string, load, slack float64) (Action, string) {
	return explain(h.Uniform, load, slack)
}

// Disabled is a policy that never admits BE jobs: the solo-run baseline.
type Disabled struct{}

// Decide always suspends.
func (Disabled) Decide(string, float64, float64) Action { return SuspendBE }

// Name returns "solo".
func (Disabled) Name() string { return "solo" }

// SlacklimitFor returns the pod's slacklimit (the conservative default for
// unknown pods); the engine uses it to scale CutBE severity.
func (r *Rhythm) SlacklimitFor(pod string) float64 {
	if t, ok := r.perPod[pod]; ok {
		return t.Slacklimit
	}
	return r.conservative().Slacklimit
}

// SlacklimitFor returns the uniform slacklimit.
func (h *Heracles) SlacklimitFor(string) float64 { return h.Uniform.Slacklimit }

// DegradedAfter is the number of consecutive blind control periods the
// degraded-mode escalation tolerates before it moves from freezing BE
// growth to actively cutting allocations.
const DegradedAfter = 2

// Degraded maps the count of consecutive control periods with an
// unusable latency measurement (NaN or known-stale p99) to the
// conservative action for that much blindness: freeze BE growth for the
// first DegradedAfter periods, then start cutting BE allocations until
// measurements return. The mapping is stateless — the engine owns the
// per-pod counter — so shared policy values stay safe for concurrent
// runs. It never returns AllowBEGrowth: a blind controller must not
// expand the interference it cannot measure.
func Degraded(consecutive int) Action {
	if consecutive <= DegradedAfter {
		return DisallowBEGrowth
	}
	return CutBE
}

// DegradedReason renders the Explainer-style reason for a degraded-mode
// decision; cause names what broke (e.g. "p99 NaN", "p99 stale").
func DegradedReason(consecutive int, cause string) string {
	act := Degraded(consecutive)
	return fmt.Sprintf("degraded: %s for %d period(s): %s until measurements return", cause, consecutive, act)
}
