// Scoring is the interference-scoring policy in the spirit of Alibaba's
// colocation scoring mechanism (arXiv 2407.12248): before letting BE
// work grow on a machine, score the machine by its predicted
// interference pressure and admit growth only where the score is low —
// absolutely low, or low relative to the other machines in the last
// control period. Algorithm 2 still governs the protective actions
// (StopBE/SuspendBE/CutBE); scoring only gates the expansion step.

package controller

import (
	"fmt"
	"math"
	"sort"

	"rhythm/internal/sim"
)

// defaultScoreCap is the absolute pressure below which BE growth is
// always admitted: a machine whose smoothed interference inflation is
// within 15% of the interference-free baseline is considered quiet
// regardless of how its peers are doing.
const defaultScoreCap = 1.15

// Scoring ranks Servpod machines by interference pressure and admits BE
// growth only on machines at or below the previous control period's
// median pressure (or below the absolute cap). Deterministic and
// stateful — it keeps one period of per-pod scores — so construct a
// fresh instance per run (the registry does).
//
// The ranking uses the *previous* period's scores: the engine decides
// pods one at a time within a tick, so the current period's full ranking
// doesn't exist until the tick ends. One period of staleness (100ms of
// virtual time) is well inside the pressure smoothing constant.
type Scoring struct {
	perPod   map[string]Thresholds
	uniform  Thresholds
	scoreCap float64

	lastNow sim.Time
	started bool
	cur     map[string]float64
	prev    []float64 // previous period's scores, sorted
}

// NewScoring returns the pressure-scoring policy over the deployment's
// per-Servpod thresholds; a nil map falls back to the uniform Heracles
// pair.
func NewScoring(perPod map[string]Thresholds) *Scoring {
	cp := make(map[string]Thresholds, len(perPod))
	for k, v := range perPod {
		cp[k] = v
	}
	return &Scoring{
		perPod:   cp,
		uniform:  NewHeracles().Uniform,
		scoreCap: defaultScoreCap,
		cur:      map[string]float64{},
	}
}

func (s *Scoring) thresholds(pod string) Thresholds {
	if t, ok := s.perPod[pod]; ok {
		return t
	}
	return s.uniform
}

// observe rotates the score window on a new control period and records
// the pod's pressure, returning the score growth decisions use.
func (s *Scoring) observe(in PolicyInput) float64 {
	if !s.started || in.Now != s.lastNow {
		s.started = true
		s.lastNow = in.Now
		s.prev = s.prev[:0]
		for _, v := range s.cur {
			s.prev = append(s.prev, v)
		}
		sort.Float64s(s.prev)
		s.cur = map[string]float64{}
	}
	score := in.Pressure
	if math.IsNaN(score) || score < 1 {
		// The legacy 3-arg path (and a pressure-less engine) hands 0:
		// treat "no pressure signal" as the interference-free baseline so
		// the policy degrades to plain Algorithm 2 rather than vetoing
		// all growth forever.
		score = 1
	}
	s.cur[in.Pod] = score
	return score
}

// admit reports whether a machine with this score may grow BE work:
// absolutely quiet, or no louder than the median machine last period.
func (s *Scoring) admit(score float64) bool {
	if score <= s.scoreCap {
		return true
	}
	if len(s.prev) == 0 {
		return true
	}
	return score <= sim.QuantileSorted(s.prev, 0.5)
}

// DecideInput applies Algorithm 2, then downgrades AllowBEGrowth to
// DisallowBEGrowth on machines whose interference score doesn't clear
// the admission rank.
func (s *Scoring) DecideInput(in PolicyInput) Action {
	score := s.observe(in)
	act := decide(s.thresholds(in.Pod), in.Load, in.Slack)
	if act == AllowBEGrowth && !s.admit(score) {
		return DisallowBEGrowth
	}
	return act
}

// Decide is the legacy entry point: with no pressure signal the score is
// the baseline 1.0 and the policy reduces to per-pod Algorithm 2.
func (s *Scoring) Decide(pod string, load, slack float64) Action {
	return s.DecideInput(PolicyInput{Pod: pod, Load: load, Slack: slack})
}

// ExplainInput mirrors DecideInput with the branch reason; it advances
// the same score window, so the engine calls exactly one of
// DecideInput/ExplainInput per pod per tick.
func (s *Scoring) ExplainInput(in PolicyInput) (Action, string) {
	score := s.observe(in)
	act, reason := explain(s.thresholds(in.Pod), in.Load, in.Slack)
	if act == AllowBEGrowth && !s.admit(score) {
		return DisallowBEGrowth, fmt.Sprintf("pressure score %.3f over cap %.2f and above median: growth vetoed", score, s.scoreCap)
	}
	return act, reason
}

// Name returns "Scoring".
func (s *Scoring) Name() string { return "Scoring" }

// SlacklimitFor reports the pod's slacklimit for CutBE step sizing.
func (s *Scoring) SlacklimitFor(pod string) float64 {
	return s.thresholds(pod).Slacklimit
}
