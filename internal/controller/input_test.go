package controller

import (
	"math"
	"testing"
)

// plainPolicy is a legacy 3-argument policy with no optional
// capabilities — the worst case the adapter must carry.
type plainPolicy struct{}

func (plainPolicy) Decide(_ string, load, slack float64) Action {
	if slack < 0.2 || load > 0.9 {
		return SuspendBE
	}
	return AllowBEGrowth
}
func (plainPolicy) Name() string { return "plain" }

// adapterGrid is the differential input grid: every Algorithm 2 branch
// plus the NaN guard, across known and unknown pods.
func adapterGrid() []PolicyInput {
	loads := []float64{0, 0.4, 0.86, 1.2, math.NaN()}
	slacks := []float64{-0.2, 0, 0.03, 0.07, 0.15, 1, math.NaN()}
	var grid []PolicyInput
	for _, pod := range []string{"frontend", "unknown-pod"} {
		for _, load := range loads {
			for _, slack := range slacks {
				grid = append(grid, PolicyInput{
					Pod: pod, Load: load, Slack: slack,
					P99: 0.2, Pressure: 1.3, Degraded: 1, Now: 42,
				})
			}
		}
	}
	return grid
}

// TestAdapterMatchesDecide is the api_redesign differential test: for
// every existing policy, the adapter-wrapped DecideInput/ExplainInput
// must produce the identical action and explanation the direct 3-argument
// calls produce, over a grid covering every Algorithm 2 branch.
func TestAdapterMatchesDecide(t *testing.T) {
	rhythm, err := NewRhythm(map[string]Thresholds{
		"frontend": {Loadlimit: 0.8, Slacklimit: 0.12},
		"cache":    {Loadlimit: 1.1, Slacklimit: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{rhythm, NewHeracles(), Disabled{}, plainPolicy{}}
	for _, pol := range policies {
		ad := AsInput(pol)
		if ad.Name() != pol.Name() {
			t.Fatalf("%s: adapter renamed the policy to %q", pol.Name(), ad.Name())
		}
		for _, in := range adapterGrid() {
			want := pol.Decide(in.Pod, in.Load, in.Slack)
			if got := ad.DecideInput(in); got != want {
				t.Fatalf("%s: DecideInput(%+v) = %v, Decide = %v", pol.Name(), in, got, want)
			}
			if got := ad.Decide(in.Pod, in.Load, in.Slack); got != want {
				t.Fatalf("%s: adapter Decide diverges: %v vs %v", pol.Name(), got, want)
			}
			ex, isInputEx := ad.(InputExplainer)
			if !isInputEx {
				t.Fatalf("%s: adapter must always be an InputExplainer", pol.Name())
			}
			gotAct, gotReason := ex.ExplainInput(in)
			wantReason := ""
			wantAct := want
			if direct, ok := pol.(Explainer); ok {
				wantAct, wantReason = direct.Explain(in.Pod, in.Load, in.Slack)
			}
			if gotAct != wantAct || gotReason != wantReason {
				t.Fatalf("%s: ExplainInput(%+v) = (%v, %q), want (%v, %q)",
					pol.Name(), in, gotAct, gotReason, wantAct, wantReason)
			}
		}
	}
}

// TestAsInputPassthrough: InputPolicies are returned unchanged (no
// double wrapping) and nil stays nil.
func TestAsInputPassthrough(t *testing.T) {
	if AsInput(nil) != nil {
		t.Fatal("AsInput(nil) must be nil")
	}
	p := NewPredictive(nil)
	if got := AsInput(p); got != InputPolicy(p) {
		t.Fatalf("AsInput re-wrapped an InputPolicy: %T", got)
	}
	wrapped := AsInput(plainPolicy{})
	if got := AsInput(wrapped); got != wrapped {
		t.Fatalf("AsInput re-wrapped an adapter: %T", got)
	}
}

// TestAdapterForwardsSlacklimit: the SlacklimitReporter capability
// crosses the adapter; policies without it report 0 ("unknown"), which
// the engine maps to its conservative default.
func TestAdapterForwardsSlacklimit(t *testing.T) {
	rhythm, err := NewRhythm(map[string]Thresholds{
		"frontend": {Loadlimit: 0.8, Slacklimit: 0.12},
	})
	if err != nil {
		t.Fatal(err)
	}
	sl, ok := AsInput(rhythm).(SlacklimitReporter)
	if !ok {
		t.Fatal("adapter over Rhythm lost SlacklimitReporter")
	}
	if got := sl.SlacklimitFor("frontend"); got != 0.12 {
		t.Fatalf("SlacklimitFor(frontend) = %v, want 0.12", got)
	}
	sl, ok = AsInput(plainPolicy{}).(SlacklimitReporter)
	if !ok {
		t.Fatal("adapter must implement SlacklimitReporter uniformly")
	}
	if got := sl.SlacklimitFor("frontend"); got != 0 {
		t.Fatalf("non-reporter policy leaked a slacklimit %v", got)
	}
}

// TestAdapterUnwrap: the wrapped policy stays reachable.
func TestAdapterUnwrap(t *testing.T) {
	orig := plainPolicy{}
	un, ok := AsInput(orig).(interface{ Unwrap() Policy })
	if !ok {
		t.Fatal("adapter does not expose Unwrap")
	}
	if un.Unwrap() != Policy(orig) {
		t.Fatal("Unwrap lost the original policy")
	}
}
