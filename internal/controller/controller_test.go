package controller

import (
	"testing"
	"testing/quick"

	"rhythm/internal/sim"
)

func rhythmForTest(t *testing.T) *Rhythm {
	t.Helper()
	r, err := NewRhythm(map[string]Thresholds{
		// The paper's derived values for E-commerce (§3.5.1).
		"Haproxy": {Loadlimit: 0.90, Slacklimit: 0.032},
		"Tomcat":  {Loadlimit: 0.87, Slacklimit: 0.078},
		"Amoeba":  {Loadlimit: 0.92, Slacklimit: 0.040},
		"MySQL":   {Loadlimit: 0.76, Slacklimit: 0.347},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAlgorithm2Decisions(t *testing.T) {
	r := rhythmForTest(t)
	cases := []struct {
		pod         string
		load, slack float64
		want        Action
	}{
		{"MySQL", 0.5, -0.1, StopBE},            // SLA violated
		{"MySQL", 0.8, 0.5, SuspendBE},          // load above 0.76
		{"MySQL", 0.5, 0.1, CutBE},              // slack < slacklimit/2
		{"MySQL", 0.5, 0.2, DisallowBEGrowth},   // slacklimit/2 < slack < slacklimit
		{"MySQL", 0.5, 0.5, AllowBEGrowth},      // comfortable slack
		{"Tomcat", 0.8, 0.5, AllowBEGrowth},     // same load fine for Tomcat
		{"Tomcat", 0.88, 0.5, SuspendBE},        // above Tomcat's 0.87
		{"Tomcat", 0.5, 0.05, DisallowBEGrowth}, // 0.039 < 0.05 < 0.078
		{"Tomcat", 0.5, 0.03, CutBE},
	}
	for _, tc := range cases {
		if got := r.Decide(tc.pod, tc.load, tc.slack); got != tc.want {
			t.Errorf("Decide(%s, load=%v, slack=%v) = %v, want %v",
				tc.pod, tc.load, tc.slack, got, tc.want)
		}
	}
}

func TestStopDominatesEverything(t *testing.T) {
	// slack < 0 must stop BE jobs regardless of load (Algorithm 2 line 4).
	r := rhythmForTest(t)
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		load := rng.Float64() * 1.2
		return r.Decide("MySQL", load, -rng.Float64()) == StopBE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentDistinguishability(t *testing.T) {
	// The same (load, slack) point yields different actions on different
	// Servpods — the defining property Heracles lacks.
	r := rhythmForTest(t)
	load, slack := 0.80, 0.20
	my := r.Decide("MySQL", load, slack)
	zk := r.Decide("Tomcat", load, slack)
	if my == zk {
		t.Fatalf("Rhythm should distinguish pods: MySQL=%v Tomcat=%v", my, zk)
	}
	h := NewHeracles()
	if h.Decide("MySQL", load, slack) != h.Decide("Tomcat", load, slack) {
		t.Fatal("Heracles must treat pods uniformly")
	}
}

func TestHeraclesPublishedThresholds(t *testing.T) {
	h := NewHeracles()
	if h.Uniform.Loadlimit != 0.85 || h.Uniform.Slacklimit != 0.10 {
		t.Fatalf("Heracles thresholds = %+v, want 0.85/0.10 (§5.1)", h.Uniform)
	}
	if h.Decide("any", 0.86, 0.9) != SuspendBE {
		t.Fatal("Heracles must disable BE above 85% load")
	}
	if h.Decide("any", 0.5, 0.08) != DisallowBEGrowth {
		t.Fatal("Heracles must disallow growth below 10% slack")
	}
	if h.Decide("any", 0.5, 0.2) != AllowBEGrowth {
		t.Fatal("Heracles should allow growth with ample slack")
	}
}

func TestUnknownPodGetsConservativeThresholds(t *testing.T) {
	r := rhythmForTest(t)
	// Conservative = min loadlimit (0.76), max slacklimit (0.347).
	if got := r.Decide("ghost", 0.80, 0.9); got != SuspendBE {
		t.Fatalf("unknown pod at load 0.80 = %v, want SuspendBE", got)
	}
	if got := r.Decide("ghost", 0.5, 0.3); got != DisallowBEGrowth {
		t.Fatalf("unknown pod at slack 0.3 = %v, want DisallowBEGrowth", got)
	}
}

func TestNewRhythmValidation(t *testing.T) {
	if _, err := NewRhythm(nil); err == nil {
		t.Fatal("empty thresholds accepted")
	}
	bad := []Thresholds{
		{Loadlimit: 0, Slacklimit: 0.1},
		{Loadlimit: 2, Slacklimit: 0.1},
		{Loadlimit: 0.8, Slacklimit: 0},
		{Loadlimit: 0.8, Slacklimit: 1.5},
	}
	for i, th := range bad {
		if _, err := NewRhythm(map[string]Thresholds{"x": th}); err == nil {
			t.Errorf("case %d: invalid thresholds accepted: %+v", i, th)
		}
	}
}

func TestRhythmIsolatedFromCallerMap(t *testing.T) {
	m := map[string]Thresholds{"a": {Loadlimit: 0.9, Slacklimit: 0.1}}
	r, err := NewRhythm(m)
	if err != nil {
		t.Fatal(err)
	}
	m["a"] = Thresholds{Loadlimit: 0.1, Slacklimit: 0.9}
	if got, _ := r.Thresholds("a"); got.Loadlimit != 0.9 {
		t.Fatal("policy shares caller's map")
	}
}

func TestPodsSorted(t *testing.T) {
	r := rhythmForTest(t)
	pods := r.Pods()
	if len(pods) != 4 {
		t.Fatalf("pods = %v", pods)
	}
	for i := 1; i < len(pods); i++ {
		if pods[i-1] >= pods[i] {
			t.Fatalf("pods not sorted: %v", pods)
		}
	}
}

func TestDisabledPolicyNeverAdmits(t *testing.T) {
	var d Disabled
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		return d.Decide("x", rng.Float64(), rng.Float64()) == SuspendBE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActionAndNameStrings(t *testing.T) {
	for a, want := range map[Action]string{
		StopBE: "StopBE", SuspendBE: "SuspendBE", CutBE: "CutBE",
		DisallowBEGrowth: "DisallowBEGrowth", AllowBEGrowth: "AllowBEGrowth",
	} {
		if a.String() != want {
			t.Errorf("%d = %q", a, a.String())
		}
	}
	if Action(9).String() != "action(9)" {
		t.Error("unknown action string")
	}
	if rhythmForTest(t).Name() != "Rhythm" || NewHeracles().Name() != "Heracles" || (Disabled{}).Name() != "solo" {
		t.Error("policy names")
	}
}

func TestBoundaryConditions(t *testing.T) {
	r := rhythmForTest(t)
	// Exactly at loadlimit: not above, so load check passes through.
	if got := r.Decide("MySQL", 0.76, 0.9); got != AllowBEGrowth {
		t.Fatalf("at loadlimit exactly = %v", got)
	}
	// Exactly zero slack is not a violation but falls in CutBE range.
	if got := r.Decide("MySQL", 0.5, 0); got != CutBE {
		t.Fatalf("at zero slack = %v", got)
	}
}

// TestExplainMatchesDecide sweeps a dense (load, slack) grid — including
// the exact threshold boundaries — and asserts Explain returns the same
// action as Decide for both policies, with a non-empty reason. This is
// the lockstep pin the explain doc comment promises: the decision trace
// must never report a branch the controller did not take.
func TestExplainMatchesDecide(t *testing.T) {
	r := rhythmForTest(t)
	h := NewHeracles()
	loads := []float64{0, 0.3, 0.5, 0.76, 0.761, 0.85, 0.851, 0.9, 1.2}
	slacks := []float64{-0.5, -0.001, 0, 0.01, 0.05, 0.0785, 0.157, 0.3, 0.347, 0.5, 1}
	pods := []string{"Haproxy", "Tomcat", "Amoeba", "MySQL", "not-a-pod"}
	for _, pod := range pods {
		for _, load := range loads {
			for _, slack := range slacks {
				if got, reason := r.Explain(pod, load, slack); got != r.Decide(pod, load, slack) {
					t.Fatalf("Rhythm(%s, %v, %v): Explain %v != Decide %v",
						pod, load, slack, got, r.Decide(pod, load, slack))
				} else if reason == "" {
					t.Fatalf("Rhythm(%s, %v, %v): empty reason", pod, load, slack)
				}
				if got, reason := h.Explain(pod, load, slack); got != h.Decide(pod, load, slack) {
					t.Fatalf("Heracles(%s, %v, %v): Explain %v != Decide %v",
						pod, load, slack, got, h.Decide(pod, load, slack))
				} else if reason == "" {
					t.Fatalf("Heracles(%s, %v, %v): empty reason", pod, load, slack)
				}
			}
		}
	}
}
