// The redesigned policy surface: PolicyInput carries everything the
// engine's control tick knows about one Servpod, InputPolicy is the
// interface richer policies implement against it, and AsInput adapts the
// original 3-argument Policy so every existing implementation keeps
// working bit-for-bit. See DESIGN.md §15.

package controller

import "rhythm/internal/sim"

// PolicyInput is one Servpod's measured state at a control tick — the
// full context the engine can offer a policy. The original Policy
// interface sees only (pod, load, slack); predictive and
// interference-scoring policies need the rest.
//
// All fields are as the controller *sees* them: under measurement-dropout
// faults P99 and Slack may be NaN while the ground truth stays finite.
// Policies must handle NaN inputs (the Algorithm 2 guard freezes BE
// growth); the engine escalates persistent blindness itself via Degraded,
// so DecideInput is only called when a usable measurement exists —
// Degraded reports how many consecutive blind periods *preceded* it.
type PolicyInput struct {
	// Pod names the Servpod being decided.
	Pod string
	// Load is the current service load fraction (1.0 = profiled capacity).
	Load float64
	// Slack is the latency slack (SLA - seen p99)/SLA after the engine's
	// safety guard; negative means the SLA is violated.
	Slack float64
	// P99 is the seen sliding-window tail latency in seconds (NaN under a
	// measurement-dropout fault).
	P99 float64
	// Pressure is the pod machine's smoothed interference inflation
	// (>= 1.0; 1.0 = no BE pressure). It is the engine's per-machine
	// estimate of how much co-located BE work is inflating sojourn times.
	Pressure float64
	// Degraded counts the consecutive preceding control periods this pod
	// was decided in degraded (blind-controller) mode; 0 in a healthy run.
	Degraded int
	// Now is the virtual time of the control tick.
	Now sim.Time
}

// InputPolicy is the full-context policy interface. It embeds Policy so
// every InputPolicy still works anywhere a legacy Policy does (engine
// config, fleet entries, RunConfig) — implementations typically forward
// Decide to DecideInput with the partial input.
//
// Implementations must be deterministic: same input sequence, same
// decisions. Stateful implementations (forecast histories, score
// rankings) are safe because the engine calls DecideInput from a single
// goroutine in a fixed pod order; construct a fresh instance per run
// (the registry does) rather than sharing one across concurrent runs.
type InputPolicy interface {
	Policy
	// DecideInput returns the action for the pod described by in.
	DecideInput(in PolicyInput) Action
}

// InputExplainer is the full-context analogue of Explainer. The engine
// consults it only when the observability bus is enabled.
type InputExplainer interface {
	// ExplainInput returns the same action DecideInput would and a
	// human-readable reason.
	ExplainInput(in PolicyInput) (Action, string)
}

// SlacklimitReporter is the capability interface behind CutBE step
// sizing: the engine scales how hard a CutBE squeezes by how far slack
// has fallen below the pod's slacklimit, and asks the policy for that
// limit here. Policies that don't implement it (or return <= 0) get the
// engine's conservative default. Rhythm, Heracles and every registry
// policy implement it; the AsInput adapter forwards it, so third-party
// policies get correct step sizing without the engine knowing their
// concrete type.
type SlacklimitReporter interface {
	// SlacklimitFor returns the pod's slacklimit, or <= 0 when unknown.
	SlacklimitFor(pod string) float64
}

// AsInput adapts any legacy Policy to InputPolicy. A policy that already
// implements InputPolicy is returned unchanged; nil stays nil. The
// adapter is pure indirection — DecideInput forwards to Decide with
// (Pod, Load, Slack) and drops the rest of the input, ExplainInput
// forwards to Explain when the wrapped policy is an Explainer (and
// returns an empty reason otherwise, matching the engine's untraceable-
// policy behavior), and SlacklimitFor forwards to the wrapped policy's
// SlacklimitReporter (returning 0 — "unknown" — otherwise). Adapted
// policies therefore produce byte-identical runs to the pre-adapter
// engine, which the golden pin enforces.
func AsInput(p Policy) InputPolicy {
	if p == nil {
		return nil
	}
	if ip, ok := p.(InputPolicy); ok {
		return ip
	}
	return adapter{p: p}
}

// adapter wraps a legacy 3-argument Policy as an InputPolicy.
type adapter struct {
	p Policy
}

func (a adapter) Decide(pod string, load, slack float64) Action {
	return a.p.Decide(pod, load, slack)
}

func (a adapter) Name() string { return a.p.Name() }

func (a adapter) DecideInput(in PolicyInput) Action {
	return a.p.Decide(in.Pod, in.Load, in.Slack)
}

func (a adapter) ExplainInput(in PolicyInput) (Action, string) {
	if ex, ok := a.p.(Explainer); ok {
		return ex.Explain(in.Pod, in.Load, in.Slack)
	}
	return a.p.Decide(in.Pod, in.Load, in.Slack), ""
}

func (a adapter) SlacklimitFor(pod string) float64 {
	if sl, ok := a.p.(SlacklimitReporter); ok {
		return sl.SlacklimitFor(pod)
	}
	return 0
}

// Unwrap exposes the wrapped policy, mirroring errors.Unwrap, so callers
// holding an adapted value can still reach capability interfaces the
// adapter doesn't forward.
func (a adapter) Unwrap() Policy { return a.p }
