// RackCentral is the centralized-queue baseline inspired by RackSched
// (arXiv 2010.05969): one rack-level scheduler makes one decision per
// control period from rack-aggregate state and applies it to every
// machine uniformly. It is the anti-Rhythm — deliberately component-
// blind — and exists so the tournament can quantify what per-Servpod
// distinction buys over a centralized rack policy, not just over
// per-machine Heracles.

package controller

import (
	"fmt"

	"rhythm/internal/sim"
)

// rackPressureGain converts excess rack pressure (max smoothed inflation
// above the interference-free 1.0) into a slack penalty: a rack whose
// loudest machine runs 10% inflated behaves as if the whole rack had 5
// points less slack.
const rackPressureGain = 0.5

// RackCentral applies one uniform threshold pair rack-wide, deciding
// once per control period from the rack's aggregate view: the measured
// load/slack, with slack discounted by the previous period's worst
// interference pressure anywhere in the rack. Every pod in a period gets
// the same action — the rack moves together. Deterministic and stateful
// (one period of rack-max pressure); construct a fresh instance per run.
type RackCentral struct {
	// Uniform is the rack-wide threshold pair (the published Heracles
	// numbers by default).
	Uniform Thresholds

	lastNow sim.Time
	started bool
	act     Action
	reason  string
	curMax  float64
	prevMax float64
}

// NewRackCentral returns the rack-level baseline with the published
// uniform thresholds.
func NewRackCentral() *RackCentral {
	return &RackCentral{Uniform: NewHeracles().Uniform}
}

// step recomputes the rack-wide action on the first pod of each control
// period and tracks the running rack-max pressure for the next one.
func (r *RackCentral) step(in PolicyInput) {
	if !r.started || in.Now != r.lastNow {
		r.started = true
		r.lastNow = in.Now
		r.prevMax = r.curMax
		r.curMax = 0
		slack := in.Slack
		if r.prevMax > 1 {
			slack -= rackPressureGain * (r.prevMax - 1)
		}
		r.act, r.reason = explain(r.Uniform, in.Load, slack)
		r.reason = "rack-wide: " + r.reason
	}
	if in.Pressure > r.curMax {
		r.curMax = in.Pressure
	}
}

// DecideInput returns the period's rack-wide action.
func (r *RackCentral) DecideInput(in PolicyInput) Action {
	r.step(in)
	return r.act
}

// Decide is the legacy entry point. Without a virtual clock every call
// starts a fresh period, so the policy reduces to uniform Algorithm 2.
func (r *RackCentral) Decide(pod string, load, slack float64) Action {
	return r.DecideInput(PolicyInput{Pod: pod, Load: load, Slack: slack})
}

// ExplainInput returns the rack-wide action and the branch that chose
// it, noting the pressure discount when one applied.
func (r *RackCentral) ExplainInput(in PolicyInput) (Action, string) {
	r.step(in)
	if r.prevMax > 1 {
		return r.act, fmt.Sprintf("%s (rack max pressure %.3f discounted slack)", r.reason, r.prevMax)
	}
	return r.act, r.reason
}

// Name returns "RackCentral".
func (r *RackCentral) Name() string { return "RackCentral" }

// SlacklimitFor reports the uniform slacklimit for CutBE step sizing.
func (r *RackCentral) SlacklimitFor(string) float64 { return r.Uniform.Slacklimit }
