package controller

import (
	"math"
	"testing"

	"rhythm/internal/sim"
)

var zooThresholds = map[string]Thresholds{
	"frontend": {Loadlimit: 0.85, Slacklimit: 0.10},
}

// TestPredictiveAnticipatesRisingLoad: a load ramp still under the
// loadlimit must suspend BE work under the forecasting policy while the
// reactive Algorithm 2 would still be allowing growth — the whole point
// of the PCS-style contender.
func TestPredictiveAnticipatesRisingLoad(t *testing.T) {
	p := NewPredictive(zooThresholds)
	ramp := []float64{0.50, 0.58, 0.66, 0.74, 0.80}
	var act Action
	for i, load := range ramp {
		act = p.DecideInput(PolicyInput{Pod: "frontend", Load: load, Slack: 0.5, Now: sim.Time(i)})
	}
	last := ramp[len(ramp)-1]
	if reactive := decide(zooThresholds["frontend"], last, 0.5); reactive != AllowBEGrowth {
		t.Fatalf("test premise broken: reactive decide = %v", reactive)
	}
	if act != SuspendBE {
		t.Fatalf("predictive on a ramp to %.2f = %v, want SuspendBE before the wave crests", last, act)
	}
	// A flat history forecasts flat: the same final load with no trend
	// behaves like the reactive policy.
	flat := NewPredictive(zooThresholds)
	for i := 0; i < 5; i++ {
		act = flat.DecideInput(PolicyInput{Pod: "frontend", Load: last, Slack: 0.5, Now: sim.Time(i)})
	}
	if act != AllowBEGrowth {
		t.Fatalf("predictive on flat %.2f load = %v, want AllowBEGrowth", last, act)
	}
}

// TestPredictiveNaNGuard: blind periods freeze growth and never enter
// the history — the trend must not be poisoned once measurements return.
func TestPredictiveNaNGuard(t *testing.T) {
	p := NewPredictive(zooThresholds)
	for i := 0; i < 4; i++ {
		p.DecideInput(PolicyInput{Pod: "frontend", Load: 0.5, Slack: 0.5, Now: sim.Time(i)})
	}
	if act := p.DecideInput(PolicyInput{Pod: "frontend", Load: math.NaN(), Slack: math.NaN(), Now: sim.Time(4)}); act != DisallowBEGrowth {
		t.Fatalf("NaN input = %v, want DisallowBEGrowth", act)
	}
	if act := p.DecideInput(PolicyInput{Pod: "frontend", Load: 0.5, Slack: 0.5, Now: sim.Time(5)}); act != AllowBEGrowth {
		t.Fatalf("post-blindness steady load = %v, want AllowBEGrowth (history poisoned?)", act)
	}
}

// TestScoringGatesGrowthOnPressure: a machine whose interference score
// is over the absolute cap and above the previous period's median is
// denied BE growth even though Algorithm 2 would allow it; the quiet
// machine keeps its growth.
func TestScoringGatesGrowthOnPressure(t *testing.T) {
	s := NewScoring(zooThresholds)
	calm := PolicyInput{Pod: "frontend", Load: 0.3, Slack: 0.5, Pressure: 1.0, Now: 1}
	loud := PolicyInput{Pod: "cache", Load: 0.3, Slack: 0.5, Pressure: 1.5, Now: 1}
	// Period 1: no previous ranking yet, the cap admits the calm pod and
	// the empty-history fallback admits the loud one.
	if act := s.DecideInput(calm); act != AllowBEGrowth {
		t.Fatalf("period 1 calm = %v", act)
	}
	if act := s.DecideInput(loud); act != AllowBEGrowth {
		t.Fatalf("period 1 loud = %v (first period must admit)", act)
	}
	// Period 2: ranking exists (median 1.25). The loud machine is over
	// the cap and over the median: growth vetoed. The calm machine grows.
	calm.Now, loud.Now = 2, 2
	if act := s.DecideInput(calm); act != AllowBEGrowth {
		t.Fatalf("period 2 calm = %v, want AllowBEGrowth", act)
	}
	if act := s.DecideInput(loud); act != DisallowBEGrowth {
		t.Fatalf("period 2 loud = %v, want DisallowBEGrowth", act)
	}
	// The veto never touches protective actions: an SLA violation still
	// stops BE outright whatever the score.
	if act := s.DecideInput(PolicyInput{Pod: "cache", Load: 0.3, Slack: -0.1, Pressure: 9, Now: 3}); act != StopBE {
		t.Fatalf("violated SLA = %v, want StopBE", act)
	}
}

// TestScoringLegacyPathDegradesToAlgorithm2: through the 3-argument
// Decide there is no pressure signal; the policy must behave exactly as
// per-pod Algorithm 2 rather than vetoing growth forever.
func TestScoringLegacyPathDegradesToAlgorithm2(t *testing.T) {
	s := NewScoring(zooThresholds)
	for _, in := range adapterGrid() {
		want := decide(s.thresholds(in.Pod), in.Load, in.Slack)
		if got := s.Decide(in.Pod, in.Load, in.Slack); got != want {
			t.Fatalf("legacy Decide(%v, %v) = %v, want %v", in.Load, in.Slack, got, want)
		}
	}
}

// TestRackCentralMovesTogether: every pod in a control period gets the
// same action regardless of its own inputs (the decision is made once,
// rack-wide), and the previous period's worst pressure discounts the
// rack's slack.
func TestRackCentralMovesTogether(t *testing.T) {
	r := NewRackCentral()
	first := r.DecideInput(PolicyInput{Pod: "frontend", Load: 0.5, Slack: 0.5, Pressure: 1.4, Now: 1})
	if first != AllowBEGrowth {
		t.Fatalf("period 1 = %v, want AllowBEGrowth", first)
	}
	// Same period, wildly worse per-pod inputs: the rack already decided.
	if act := r.DecideInput(PolicyInput{Pod: "cache", Load: 1.2, Slack: -1, Pressure: 1.4, Now: 1}); act != first {
		t.Fatalf("rack split within a period: %v vs %v", act, first)
	}
	// Period 2: slack 0.12 clears the 0.10 slacklimit on its own, but the
	// recorded rack-max pressure 1.4 discounts it to 0.12-0.5*0.4 < 0:
	// the pressure-blind baseline would allow growth, the rack view stops.
	if act := r.DecideInput(PolicyInput{Pod: "frontend", Load: 0.5, Slack: 0.12, Pressure: 1.0, Now: 2}); act != StopBE {
		t.Fatalf("period 2 under recorded pressure = %v, want StopBE", act)
	}
}

// TestZooDeterminism: fresh instances replaying the same input sequence
// must produce identical action sequences — the tournament's
// byte-determinism rests on it.
func TestZooDeterminism(t *testing.T) {
	seq := make([]PolicyInput, 0, 64)
	for i := 0; i < 16; i++ {
		for _, pod := range []string{"frontend", "cache"} {
			seq = append(seq, PolicyInput{
				Pod:  pod,
				Load: 0.3 + 0.04*float64(i%9), Slack: 0.4 - 0.05*float64(i%7),
				Pressure: 1 + 0.06*float64(i%5), Now: sim.Time(i),
			})
		}
	}
	build := func() []InputPolicy {
		return []InputPolicy{NewPredictive(zooThresholds), NewScoring(zooThresholds), NewRackCentral()}
	}
	a, b := build(), build()
	for i := range a {
		for _, in := range seq {
			if x, y := a[i].DecideInput(in), b[i].DecideInput(in); x != y {
				t.Fatalf("%s diverged on replay: %v vs %v at %+v", a[i].Name(), x, y, in)
			}
		}
	}
}
