package scheduler

import (
	"testing"

	"rhythm/internal/bejobs"
	"rhythm/internal/obs"
	"rhythm/internal/sim"
)

// TestSchedulerHealthCounters pins the scheduler's obs instruments: every
// queue transition lands in exactly one health counter, and the depth
// gauge tracks Pending(). A scheduler built without an installed bus must
// behave identically (nil-safe instruments) — the zero-value path is
// exercised by every other test in this package.
func TestSchedulerHealthCounters(t *testing.T) {
	bus := obs.NewBus()
	obs.Install(bus)
	defer obs.Uninstall()

	s := New(2)
	if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bejobs.LSTM, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bejobs.CPUStress, 0); err == nil {
		t.Fatal("third submit should be rejected by the 2-slot queue")
	}
	if v := bus.Gauge("rhythm_sched_queue_depth").Value(); v != 2 {
		t.Fatalf("queue depth gauge = %v, want 2", v)
	}

	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: true, FreeCores: 64, FreeMemoryGB: 256},
	}, sim.FromSeconds(1))
	if len(as) == 0 {
		t.Fatal("dispatch assigned nothing")
	}
	if !s.Requeue(as[0].Job) {
		t.Fatal("requeue into spare capacity must succeed")
	}
	// Fill the queue, then drop a requeue on the floor.
	for s.Pending() < 2 {
		if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Requeue(Job{ID: "lost", Type: bejobs.LSTM}) {
		t.Fatal("requeue into a full queue must fail")
	}

	wantCounters := map[string]uint64{
		"rhythm_sched_submitted_total":       uint64(s.Submitted()),
		"rhythm_sched_rejected_total":        uint64(s.Dropped()),
		"rhythm_sched_requeued_total":        uint64(s.Requeued()),
		"rhythm_sched_requeue_dropped_total": uint64(s.RequeueDropped()),
		"rhythm_sched_dispatched_total":      uint64(s.Dispatched()),
	}
	for name, want := range wantCounters {
		if want == 0 {
			t.Errorf("test did not exercise %s", name)
		}
		if got := bus.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if v := bus.Gauge("rhythm_sched_queue_depth").Value(); v != float64(s.Pending()) {
		t.Fatalf("queue depth gauge = %v, want %d", v, s.Pending())
	}
}
