package scheduler

import (
	"sort"
	"testing"
	"testing/quick"

	"rhythm/internal/bejobs"
	"rhythm/internal/sim"
)

func TestSubmitAndDispatchFIFO(t *testing.T) {
	s := New(10)
	j1, err := s.Submit(bejobs.Wordcount, sim.FromSeconds(0))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(bejobs.LSTM, sim.FromSeconds(1))
	if err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: true, FreeCores: 10, FreeMemoryGB: 100},
		{Name: "m1", Accepting: true, FreeCores: 10, FreeMemoryGB: 100},
	}, sim.FromSeconds(5))
	if len(as) != 2 {
		t.Fatalf("assignments = %d, want 2", len(as))
	}
	if as[0].Job.ID != j1.ID || as[1].Job.ID != j2.ID {
		t.Fatalf("not FIFO: %v", as)
	}
	if as[0].Waited != sim.FromSeconds(5) {
		t.Fatalf("waited = %v", as[0].Waited)
	}
	if s.Pending() != 0 {
		t.Fatal("queue should drain")
	}
}

func TestOnlyAcceptingMachinesReceive(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.CPUStress, 0); err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: false, FreeCores: 10, FreeMemoryGB: 100},
		{Name: "m1", Accepting: true, FreeCores: 0, FreeMemoryGB: 100},
	}, 0)
	if len(as) != 0 {
		t.Fatalf("dispatched to non-accepting/full machine: %v", as)
	}
	if s.Pending() != 1 {
		t.Fatal("job should stay queued")
	}
}

func TestLeastLoadedFirst(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "busy", Accepting: true, FreeCores: 20, FreeMemoryGB: 100, Resident: 5},
		{Name: "idle", Accepting: true, FreeCores: 10, FreeMemoryGB: 100, Resident: 0},
	}, 0)
	if len(as) != 1 || as[0].Machine != "idle" {
		t.Fatalf("assignments = %v, want idle machine first", as)
	}
}

func TestMemoryFootprintSkip(t *testing.T) {
	s := New(10)
	// LSTM needs 3 GB; CPU-stress 0.5 GB. Both need 5 cores to dispatch.
	if _, err := s.Submit(bejobs.LSTM, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bejobs.CPUStress, 0); err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "tight", Accepting: true, FreeCores: 8, FreeMemoryGB: 1},
	}, 0)
	if len(as) != 1 || as[0].Job.Type != bejobs.CPUStress {
		t.Fatalf("should skip the over-sized job: %v", as)
	}
	if s.Pending() != 1 {
		t.Fatal("LSTM should remain queued")
	}
}

// TestMinCoresFit is the regression table for the core-demand check: a
// machine must have at least MinDispatchCores (an eighth of the job's
// solo footprint) free, or the job skips it — a 38-solo-core CPU-stress
// Spec must not land on a 1-free-core machine.
func TestMinCoresFit(t *testing.T) {
	cases := []struct {
		name      string
		ty        bejobs.Type
		freeCores int
		want      bool
	}{
		{"cpu-stress starved", bejobs.CPUStress, 1, false}, // solo 38 -> min 5
		{"cpu-stress at threshold", bejobs.CPUStress, 5, true},
		{"cpu-stress below threshold", bejobs.CPUStress, 4, false},
		{"lstm below threshold", bejobs.LSTM, 4, false}, // solo 36 -> min 5
		{"lstm at threshold", bejobs.LSTM, 5, true},
		{"wordcount at threshold", bejobs.Wordcount, 4, true}, // solo 32 -> min 4
		{"wordcount below threshold", bejobs.Wordcount, 3, false},
		{"iperf on one core", bejobs.Iperf, 1, true},          // solo 2 -> min 1
		{"stream-llc on one core", bejobs.StreamLLC, 1, true}, // solo 8 -> min 1
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if min := bejobs.MustLookup(tc.ty).MinDispatchCores(); min < 1 {
				t.Fatalf("MinDispatchCores = %d, want >= 1", min)
			}
			s := New(10)
			if _, err := s.Submit(tc.ty, 0); err != nil {
				t.Fatal(err)
			}
			as := s.Dispatch([]MachineState{
				{Name: "m0", Accepting: true, FreeCores: tc.freeCores, FreeMemoryGB: 100},
			}, 0)
			if got := len(as) == 1; got != tc.want {
				t.Fatalf("%s on %d free cores: dispatched=%v, want %v",
					tc.ty, tc.freeCores, got, tc.want)
			}
			if !tc.want && s.Pending() != 1 {
				t.Fatal("undispatched job should stay queued")
			}
		})
	}
}

func TestQueueLimitAndDrops(t *testing.T) {
	s := New(2)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(bejobs.Wordcount, 0); err == nil {
		t.Fatal("over-limit submission accepted")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	s := New(2)
	if _, err := s.Submit("miner", 0); err == nil {
		t.Fatal("unknown BE type accepted")
	}
}

func TestRequeueGoesToHead(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
		t.Fatal(err)
	}
	killed := Job{ID: "be-old", Type: bejobs.LSTM, SubmittedAt: 0}
	if !s.Requeue(killed) {
		t.Fatal("requeue into a non-full queue should succeed")
	}
	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: true, FreeCores: 8, FreeMemoryGB: 100},
	}, 0)
	if len(as) != 1 || as[0].Job.ID != "be-old" {
		t.Fatalf("requeued job should dispatch first: %v", as)
	}
	if s.Requeued() != 1 {
		t.Fatalf("requeued = %d, want 1", s.Requeued())
	}
}

// TestRequeueFullQueueReportsLoss is the regression for the silent
// requeue drop: a killed job bouncing off a full queue must report
// false and count under RequeueDropped, not vanish into the Dropped
// counter shared with rejected fresh submissions.
func TestRequeueFullQueueReportsLoss(t *testing.T) {
	s := New(1)
	if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
		t.Fatal(err)
	}
	if s.Requeue(Job{ID: "be-killed", Type: bejobs.LSTM, SubmittedAt: 0}) {
		t.Fatal("requeue into a full queue should report the loss")
	}
	if s.RequeueDropped() != 1 {
		t.Fatalf("requeueDropped = %d, want 1", s.RequeueDropped())
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0: requeue losses must not pollute the submission counter", s.Dropped())
	}
	if s.Requeued() != 0 {
		t.Fatalf("requeued = %d, want 0", s.Requeued())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the original job only", s.Pending())
	}
}

func TestMeanWaitAccounting(t *testing.T) {
	s := New(10)
	// Sub-tick submit times make the truncation visible: waits of 3 ns
	// and 2 ns mean 2.5 ns; the old integer-nanosecond division returned
	// 2 ns flat.
	if _, err := s.Submit(bejobs.Wordcount, sim.Time(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bejobs.Wordcount, sim.Time(1)); err != nil {
		t.Fatal(err)
	}
	s.Dispatch([]MachineState{
		{Name: "a", Accepting: true, FreeCores: 8, FreeMemoryGB: 10},
		{Name: "b", Accepting: true, FreeCores: 8, FreeMemoryGB: 10},
	}, sim.Time(3))
	if got, want := s.MeanWait(), 2.5e-9; got != want {
		t.Fatalf("mean wait = %v s, want %v s", got, want)
	}
	if s.Dispatched() != 2 {
		t.Fatalf("dispatched = %d, want 2", s.Dispatched())
	}
	if New(1).MeanWait() != 0 {
		t.Fatal("empty scheduler mean wait should be 0")
	}
}

// Property: Dispatch is exactly FIFO-with-skip against a straight-line
// reference implementation of the documented algorithm — machines sorted
// least-loaded-first (resident asc, free cores desc, position asc), each
// taking the earliest queued job whose cores and memory fit.
func TestDispatchFIFOWithSkipProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		s := New(100)
		types := bejobs.Types()
		var queue []Job
		for i := 0; i < 1+r.Intn(20); i++ {
			j, err := s.Submit(types[r.Intn(len(types))], sim.Time(i))
			if err != nil {
				return false
			}
			queue = append(queue, j)
		}
		var machines []MachineState
		for i := 0; i < 1+r.Intn(6); i++ {
			machines = append(machines, MachineState{
				Name:         string(rune('a' + i)),
				Accepting:    r.Float64() < 0.7,
				FreeCores:    r.Intn(12),
				FreeMemoryGB: r.Float64() * 10,
				Resident:     r.Intn(5),
			})
		}

		// Reference: the documented algorithm, written out naively.
		type cand struct {
			MachineState
			pos int
		}
		var avail []cand
		for i, m := range machines {
			if m.Accepting && m.FreeCores >= 1 {
				avail = append(avail, cand{m, i})
			}
		}
		sort.Slice(avail, func(i, j int) bool {
			if avail[i].Resident != avail[j].Resident {
				return avail[i].Resident < avail[j].Resident
			}
			if avail[i].FreeCores != avail[j].FreeCores {
				return avail[i].FreeCores > avail[j].FreeCores
			}
			return avail[i].pos < avail[j].pos
		})
		var want []Assignment
		for _, m := range avail {
			for qi, j := range queue {
				spec := bejobs.MustLookup(j.Type)
				if m.FreeCores >= spec.MinDispatchCores() && m.FreeMemoryGB >= spec.MemoryGB {
					want = append(want, Assignment{Job: j, Machine: m.Name})
					queue = append(queue[:qi], queue[qi+1:]...)
					break
				}
			}
		}

		got := s.Dispatch(machines, sim.FromSeconds(100))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Job.ID != want[i].Job.ID || got[i].Machine != want[i].Machine {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: least-loaded tie-breaks are stable under machine renaming —
// two fleets identical except for machine names (reported in the same
// order) dispatch the same jobs to the same positions. This is what lets
// the fleet layer name machines "<replica>/<pod>" without renames ever
// reshuffling placements.
func TestTieBreakStableUnderRenaming(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		build := func() (*Scheduler, []MachineState) {
			s := New(100)
			types := bejobs.Types()
			for i := 0; i < 1+r.Intn(15); i++ {
				if _, err := s.Submit(types[r.Intn(len(types))], sim.Time(i)); err != nil {
					return nil, nil
				}
			}
			var ms []MachineState
			for i := 0; i < 1+r.Intn(6); i++ {
				ms = append(ms, MachineState{
					Accepting:    r.Float64() < 0.8,
					FreeCores:    4 + r.Intn(3), // narrow range: ties are common
					FreeMemoryGB: 8,
					Resident:     r.Intn(2),
				})
			}
			return s, ms
		}
		// Two identical schedulers; the RNG is re-seeded so both see the
		// same jobs and machines, differing only in names.
		s1, ms1 := build()
		r = sim.NewRNG(seed)
		s2, ms2 := build()
		if s1 == nil || s2 == nil {
			return true
		}
		for i := range ms1 {
			ms1[i].Name = string(rune('a' + i))
			ms2[i].Name = string(rune('z' - i)) // reverse alphabetical order
		}
		as1 := s1.Dispatch(ms1, sim.FromSeconds(50))
		as2 := s2.Dispatch(ms2, sim.FromSeconds(50))
		if len(as1) != len(as2) {
			return false
		}
		pos1 := map[string]int{}
		pos2 := map[string]int{}
		for i := range ms1 {
			pos1[ms1[i].Name] = i
			pos2[ms2[i].Name] = i
		}
		for i := range as1 {
			if as1[i].Job.ID != as2[i].Job.ID {
				return false
			}
			if pos1[as1[i].Machine] != pos2[as2[i].Machine] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dispatch never assigns more jobs than queued or than accepting
// machines, never duplicates a job, and the queue+assignments conserve the
// submitted set.
func TestDispatchConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		s := New(100)
		types := bejobs.Types()
		n := 1 + r.Intn(20)
		ids := map[string]bool{}
		for i := 0; i < n; i++ {
			j, err := s.Submit(types[r.Intn(len(types))], sim.Time(i))
			if err != nil {
				return false
			}
			ids[j.ID] = true
		}
		var machines []MachineState
		m := 1 + r.Intn(6)
		for i := 0; i < m; i++ {
			machines = append(machines, MachineState{
				Name:         string(rune('a' + i)),
				Accepting:    r.Float64() < 0.7,
				FreeCores:    r.Intn(10),
				FreeMemoryGB: r.Float64() * 10,
				Resident:     r.Intn(5),
			})
		}
		as := s.Dispatch(machines, sim.FromSeconds(100))
		if len(as) > n || len(as) > m {
			return false
		}
		seen := map[string]bool{}
		usedMachine := map[string]bool{}
		for _, a := range as {
			if seen[a.Job.ID] || usedMachine[a.Machine] || !ids[a.Job.ID] {
				return false
			}
			seen[a.Job.ID] = true
			usedMachine[a.Machine] = true
		}
		return s.Pending()+len(as) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
