package scheduler

import (
	"testing"
	"testing/quick"

	"rhythm/internal/bejobs"
	"rhythm/internal/sim"
)

func TestSubmitAndDispatchFIFO(t *testing.T) {
	s := New(10)
	j1, err := s.Submit(bejobs.Wordcount, sim.FromSeconds(0))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(bejobs.LSTM, sim.FromSeconds(1))
	if err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: true, FreeCores: 10, FreeMemoryGB: 100},
		{Name: "m1", Accepting: true, FreeCores: 10, FreeMemoryGB: 100},
	}, sim.FromSeconds(5))
	if len(as) != 2 {
		t.Fatalf("assignments = %d, want 2", len(as))
	}
	if as[0].Job.ID != j1.ID || as[1].Job.ID != j2.ID {
		t.Fatalf("not FIFO: %v", as)
	}
	if as[0].Waited != sim.FromSeconds(5) {
		t.Fatalf("waited = %v", as[0].Waited)
	}
	if s.Pending() != 0 {
		t.Fatal("queue should drain")
	}
}

func TestOnlyAcceptingMachinesReceive(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.CPUStress, 0); err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: false, FreeCores: 10, FreeMemoryGB: 100},
		{Name: "m1", Accepting: true, FreeCores: 0, FreeMemoryGB: 100},
	}, 0)
	if len(as) != 0 {
		t.Fatalf("dispatched to non-accepting/full machine: %v", as)
	}
	if s.Pending() != 1 {
		t.Fatal("job should stay queued")
	}
}

func TestLeastLoadedFirst(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "busy", Accepting: true, FreeCores: 20, FreeMemoryGB: 100, Resident: 5},
		{Name: "idle", Accepting: true, FreeCores: 10, FreeMemoryGB: 100, Resident: 0},
	}, 0)
	if len(as) != 1 || as[0].Machine != "idle" {
		t.Fatalf("assignments = %v, want idle machine first", as)
	}
}

func TestMemoryFootprintSkip(t *testing.T) {
	s := New(10)
	// LSTM needs 3 GB; CPU-stress 0.5 GB.
	if _, err := s.Submit(bejobs.LSTM, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bejobs.CPUStress, 0); err != nil {
		t.Fatal(err)
	}
	as := s.Dispatch([]MachineState{
		{Name: "tight", Accepting: true, FreeCores: 4, FreeMemoryGB: 1},
	}, 0)
	if len(as) != 1 || as[0].Job.Type != bejobs.CPUStress {
		t.Fatalf("should skip the over-sized job: %v", as)
	}
	if s.Pending() != 1 {
		t.Fatal("LSTM should remain queued")
	}
}

func TestQueueLimitAndDrops(t *testing.T) {
	s := New(2)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(bejobs.Wordcount, 0); err == nil {
		t.Fatal("over-limit submission accepted")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	s := New(2)
	if _, err := s.Submit("miner", 0); err == nil {
		t.Fatal("unknown BE type accepted")
	}
}

func TestRequeueGoesToHead(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.Wordcount, 0); err != nil {
		t.Fatal(err)
	}
	killed := Job{ID: "be-old", Type: bejobs.LSTM, SubmittedAt: 0}
	s.Requeue(killed)
	as := s.Dispatch([]MachineState{
		{Name: "m0", Accepting: true, FreeCores: 4, FreeMemoryGB: 100},
	}, 0)
	if len(as) != 1 || as[0].Job.ID != "be-old" {
		t.Fatalf("requeued job should dispatch first: %v", as)
	}
}

func TestMeanWaitAccounting(t *testing.T) {
	s := New(10)
	if _, err := s.Submit(bejobs.Wordcount, sim.FromSeconds(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bejobs.Wordcount, sim.FromSeconds(2)); err != nil {
		t.Fatal(err)
	}
	s.Dispatch([]MachineState{
		{Name: "a", Accepting: true, FreeCores: 2, FreeMemoryGB: 10},
		{Name: "b", Accepting: true, FreeCores: 2, FreeMemoryGB: 10},
	}, sim.FromSeconds(4))
	// Waits: 4s and 2s -> mean 3s.
	if got := s.MeanWait(); got != sim.FromSeconds(3) {
		t.Fatalf("mean wait = %v, want 3s", got)
	}
	if New(1).MeanWait() != 0 {
		t.Fatal("empty scheduler mean wait should be 0")
	}
}

// Property: dispatch never assigns more jobs than queued or than accepting
// machines, never duplicates a job, and the queue+assignments conserve the
// submitted set.
func TestDispatchConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		s := New(100)
		types := bejobs.Types()
		n := 1 + r.Intn(20)
		ids := map[string]bool{}
		for i := 0; i < n; i++ {
			j, err := s.Submit(types[r.Intn(len(types))], sim.Time(i))
			if err != nil {
				return false
			}
			ids[j.ID] = true
		}
		var machines []MachineState
		m := 1 + r.Intn(6)
		for i := 0; i < m; i++ {
			machines = append(machines, MachineState{
				Name:         string(rune('a' + i)),
				Accepting:    r.Float64() < 0.7,
				FreeCores:    r.Intn(10),
				FreeMemoryGB: r.Float64() * 10,
				Resident:     r.Intn(5),
			})
		}
		as := s.Dispatch(machines, sim.FromSeconds(100))
		if len(as) > n || len(as) > m {
			return false
		}
		seen := map[string]bool{}
		usedMachine := map[string]bool{}
		for _, a := range as {
			if seen[a.Job.ID] || usedMachine[a.Machine] || !ids[a.Job.ID] {
				return false
			}
			seen[a.Job.ID] = true
			usedMachine[a.Machine] = true
		}
		return s.Pending()+len(as) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
