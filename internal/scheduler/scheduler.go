// Package scheduler implements the cluster-level BE dispatch loop of §4
// ("Interact with scheduler"): BE jobs wait in a queue; each machine's top
// controller periodically notifies the scheduler whether it currently
// accepts BE jobs; the scheduler dispatches queued jobs to accepting
// machines with sufficient resources, and re-queues jobs whose machines
// later kill them.
//
// The engine embeds a per-machine admission loop for single-service runs;
// this package provides the multi-machine, multi-tenant view a datacenter
// deployment needs: fair dispatch across machines, bounded queue, and
// accounting of waiting times.
package scheduler

import (
	"fmt"
	"sort"

	"rhythm/internal/bejobs"
	"rhythm/internal/sim"
)

// Job is one queued BE job.
type Job struct {
	ID          string
	Type        bejobs.Type
	SubmittedAt sim.Time
}

// MachineState is a machine's report to the scheduler: the §4 feedback
// from the top controller plus free capacity.
type MachineState struct {
	Name string
	// Accepting mirrors the top controller's notification: true only
	// when the machine's current action admits BE growth.
	Accepting bool
	// FreeCores and FreeMemoryGB bound what a dispatch may assume.
	FreeCores    int
	FreeMemoryGB float64
	// Resident counts BE instances already on the machine.
	Resident int
}

// Assignment is one dispatch decision.
type Assignment struct {
	Job     Job
	Machine string
	// Waited is how long the job sat in the queue.
	Waited sim.Time
}

// Scheduler is the BE job queue plus dispatch logic. It is not safe for
// concurrent use; the simulation is single-threaded.
type Scheduler struct {
	limit   int
	queue   []Job
	seq     int
	dropped int

	dispatched int
	totalWait  sim.Time
}

// New returns a scheduler with the given queue capacity (jobs submitted
// beyond it are rejected, like any admission-controlled batch system).
func New(queueLimit int) *Scheduler {
	if queueLimit <= 0 {
		queueLimit = 1024
	}
	return &Scheduler{limit: queueLimit}
}

// Submit enqueues a BE job. It returns the job (with its assigned ID) or
// an error when the queue is full.
func (s *Scheduler) Submit(t bejobs.Type, now sim.Time) (Job, error) {
	if _, err := bejobs.Lookup(t); err != nil {
		return Job{}, err
	}
	if len(s.queue) >= s.limit {
		s.dropped++
		return Job{}, fmt.Errorf("scheduler: queue full (%d jobs)", s.limit)
	}
	s.seq++
	j := Job{ID: fmt.Sprintf("be-%d", s.seq), Type: t, SubmittedAt: now}
	s.queue = append(s.queue, j)
	return j, nil
}

// Requeue puts a killed job back at the head of the queue (BE jobs are
// "second-class citizens" that may be rescheduled at any time — §1).
func (s *Scheduler) Requeue(j Job) {
	if len(s.queue) >= s.limit {
		s.dropped++
		return
	}
	s.queue = append([]Job{j}, s.queue...)
}

// Pending returns the number of queued jobs.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Dropped returns how many submissions were rejected.
func (s *Scheduler) Dropped() int { return s.dropped }

// MeanWait returns the mean queueing delay of dispatched jobs.
func (s *Scheduler) MeanWait() sim.Time {
	if s.dispatched == 0 {
		return 0
	}
	return s.totalWait / sim.Time(s.dispatched)
}

// Dispatch assigns queued jobs to accepting machines, FIFO over the queue
// and least-loaded-first over the machines (fewest resident BE instances,
// then most free cores), one job per machine per call — matching the
// engine's one-launch-per-control-period admission. Machines must have at
// least one free core and the job's memory footprint available.
func (s *Scheduler) Dispatch(machines []MachineState, now sim.Time) []Assignment {
	if len(s.queue) == 0 || len(machines) == 0 {
		return nil
	}
	avail := make([]MachineState, 0, len(machines))
	for _, m := range machines {
		if m.Accepting && m.FreeCores >= 1 {
			avail = append(avail, m)
		}
	}
	sort.Slice(avail, func(i, j int) bool {
		if avail[i].Resident != avail[j].Resident {
			return avail[i].Resident < avail[j].Resident
		}
		if avail[i].FreeCores != avail[j].FreeCores {
			return avail[i].FreeCores > avail[j].FreeCores
		}
		return avail[i].Name < avail[j].Name
	})

	var out []Assignment
	for _, m := range avail {
		if len(s.queue) == 0 {
			break
		}
		// FIFO with a skip for jobs whose footprint does not fit.
		idx := -1
		for qi, j := range s.queue {
			spec := bejobs.MustLookup(j.Type)
			if m.FreeMemoryGB >= spec.MemoryGB {
				idx = qi
				break
			}
		}
		if idx < 0 {
			continue
		}
		j := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		waited := now - j.SubmittedAt
		s.dispatched++
		s.totalWait += waited
		out = append(out, Assignment{Job: j, Machine: m.Name, Waited: waited})
	}
	return out
}
