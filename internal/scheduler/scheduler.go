// Package scheduler implements the cluster-level BE dispatch loop of §4
// ("Interact with scheduler"): BE jobs wait in a queue; each machine's top
// controller periodically notifies the scheduler whether it currently
// accepts BE jobs; the scheduler dispatches queued jobs to accepting
// machines with sufficient resources, and re-queues jobs whose machines
// later kill them.
//
// The engine embeds a per-machine admission loop for single-service runs;
// this package provides the multi-machine, multi-tenant view a datacenter
// deployment needs: fair dispatch across machines, bounded queue, and
// accounting of waiting times. The fleet layer (internal/fleet) drives it
// serially at epoch barriers between parallel per-machine simulation
// slices.
package scheduler

import (
	"fmt"
	"sort"
	"strconv"

	"rhythm/internal/bejobs"
	"rhythm/internal/obs"
	"rhythm/internal/sim"
)

// Job is one queued BE job.
type Job struct {
	ID          string
	Type        bejobs.Type
	SubmittedAt sim.Time
}

// MachineState is a machine's report to the scheduler: the §4 feedback
// from the top controller plus free capacity.
type MachineState struct {
	Name string
	// Accepting mirrors the top controller's notification: true only
	// when the machine's current action admits BE growth.
	Accepting bool
	// FreeCores and FreeMemoryGB bound what a dispatch may assume.
	FreeCores    int
	FreeMemoryGB float64
	// Resident counts BE instances already on the machine.
	Resident int
}

// Assignment is one dispatch decision.
type Assignment struct {
	Job     Job
	Machine string
	// Waited is how long the job sat in the queue.
	Waited sim.Time
}

// candidate is one accepting machine in a Dispatch pass, tagged with its
// caller position for the final tie-break.
type candidate struct {
	MachineState
	pos int
}

// candList orders dispatch candidates least-loaded-first (fewest resident
// BE instances, then most free cores, then caller position). It wraps the
// slice in a struct so Dispatch can sort the Scheduler-owned scratch via
// sort.Sort on a field pointer without any per-call interface or closure
// allocation. The comparator is a total order (pos breaks every tie), so
// the result is independent of the sort algorithm.
type candList struct{ a []candidate }

func (c *candList) Len() int      { return len(c.a) }
func (c *candList) Swap(i, j int) { c.a[i], c.a[j] = c.a[j], c.a[i] }
func (c *candList) Less(i, j int) bool {
	if c.a[i].Resident != c.a[j].Resident {
		return c.a[i].Resident < c.a[j].Resident
	}
	if c.a[i].FreeCores != c.a[j].FreeCores {
		return c.a[i].FreeCores > c.a[j].FreeCores
	}
	return c.a[i].pos < c.a[j].pos
}

// Scheduler is the BE job queue plus dispatch logic. It is not safe for
// concurrent use; the fleet layer drives it serially at epoch barriers.
type Scheduler struct {
	limit int
	queue []Job
	seq   int

	// avail, out and idBuf are per-call scratch reused across epochs so
	// the steady-state dispatch loop is allocation-free.
	avail candList
	out   []Assignment
	idBuf []byte

	submitted      int
	dropped        int
	requeued       int
	requeueDropped int

	dispatched int
	totalWait  sim.Time

	// Health instruments (nil without a bus at New time; every use is
	// nil-safe). These are the scheduler-side calibration series: a
	// deployment's batch system exports the same admission/requeue/loss
	// counters, so `rhythm calibrate` can match queue health directly.
	obsSubmitted      *obs.Counter
	obsRejected       *obs.Counter
	obsRequeued       *obs.Counter
	obsRequeueDropped *obs.Counter
	obsDispatched     *obs.Counter
	obsQueueDepth     *obs.Gauge
}

// New returns a scheduler with the given queue capacity (jobs submitted
// beyond it are rejected, like any admission-controlled batch system).
func New(queueLimit int) *Scheduler {
	if queueLimit <= 0 {
		queueLimit = 1024
	}
	s := &Scheduler{limit: queueLimit}
	if bus := obs.Active(); bus != nil {
		s.obsSubmitted = bus.Counter("rhythm_sched_submitted_total")
		s.obsRejected = bus.Counter("rhythm_sched_rejected_total")
		s.obsRequeued = bus.Counter("rhythm_sched_requeued_total")
		s.obsRequeueDropped = bus.Counter("rhythm_sched_requeue_dropped_total")
		s.obsDispatched = bus.Counter("rhythm_sched_dispatched_total")
		s.obsQueueDepth = bus.Gauge("rhythm_sched_queue_depth")
	}
	return s
}

// Submit enqueues a BE job. It returns the job (with its assigned ID) or
// an error when the queue is full.
func (s *Scheduler) Submit(t bejobs.Type, now sim.Time) (Job, error) {
	if _, err := bejobs.Lookup(t); err != nil {
		return Job{}, err
	}
	if len(s.queue) >= s.limit {
		s.dropped++
		s.obsRejected.Inc()
		return Job{}, fmt.Errorf("scheduler: queue full (%d jobs)", s.limit)
	}
	s.seq++
	s.submitted++
	s.obsSubmitted.Inc()
	// The ID string itself must be retained, but the digits are formatted
	// in a reused buffer so each Submit costs one allocation, not three.
	s.idBuf = append(s.idBuf[:0], "be-"...)
	s.idBuf = strconv.AppendInt(s.idBuf, int64(s.seq), 10)
	j := Job{ID: string(s.idBuf), Type: t, SubmittedAt: now}
	s.queue = append(s.queue, j)
	s.obsQueueDepth.Set(float64(len(s.queue)))
	return j, nil
}

// Requeue puts a killed job back at the head of the queue (BE jobs are
// "second-class citizens" that may be rescheduled at any time — §1). It
// reports whether the job was taken back: false means the queue was full
// and live work is gone, counted under RequeueDropped — deliberately
// separate from Dropped, which counts rejected fresh submissions, so a
// caller watching the stats can tell admission pressure from work loss.
func (s *Scheduler) Requeue(j Job) bool {
	if len(s.queue) >= s.limit {
		s.requeueDropped++
		s.obsRequeueDropped.Inc()
		return false
	}
	s.requeued++
	s.obsRequeued.Inc()
	// Head insert in place: grow by one, shift right, write the head.
	// Amortized allocation-free, unlike rebuilding the slice per requeue.
	s.queue = append(s.queue, Job{})
	copy(s.queue[1:], s.queue)
	s.queue[0] = j
	s.obsQueueDepth.Set(float64(len(s.queue)))
	return true
}

// Pending returns the number of queued jobs.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Submitted returns how many submissions were accepted into the queue.
func (s *Scheduler) Submitted() int { return s.submitted }

// Dropped returns how many fresh submissions were rejected on a full
// queue.
func (s *Scheduler) Dropped() int { return s.dropped }

// Requeued returns how many killed jobs were taken back into the queue.
func (s *Scheduler) Requeued() int { return s.requeued }

// RequeueDropped returns how many killed jobs were lost because the
// queue was full when they came back.
func (s *Scheduler) RequeueDropped() int { return s.requeueDropped }

// Dispatched returns how many assignments Dispatch has made (a requeued
// job counts once per dispatch).
func (s *Scheduler) Dispatched() int { return s.dispatched }

// MeanWait returns the mean queueing delay of dispatched jobs in
// seconds. It is a float64, not a sim.Time: an integer-nanosecond mean
// would truncate whenever the accumulated wait does not divide evenly by
// the dispatch count, and every aggregate statistic in this repo reports
// seconds.
func (s *Scheduler) MeanWait() float64 {
	if s.dispatched == 0 {
		return 0
	}
	return s.totalWait.Seconds() / float64(s.dispatched)
}

// Dispatch assigns queued jobs to accepting machines, FIFO over the queue
// and least-loaded-first over the machines (fewest resident BE instances,
// then most free cores), one job per machine per call — matching the
// engine's one-launch-per-control-period admission. A machine fits a job
// only when it has the job's memory footprint and at least the job's
// MinDispatchCores free: the starting slice is a single core, but a
// machine that can never grow the job past an eighth of its solo
// footprint would pin it at a sliver of its solo rate, so it stays
// queued for a machine with real headroom.
//
// Ties between equally loaded machines break on caller position, never
// on name, so a renamed fleet (the fleet layer names machines
// "<replica>/<pod>") dispatches identically as long as the machines are
// reported in the same order.
//
// The returned slice is scratch owned by the Scheduler, valid until the
// next Dispatch call; callers that retain assignments across calls must
// copy them.
func (s *Scheduler) Dispatch(machines []MachineState, now sim.Time) []Assignment {
	if len(s.queue) == 0 || len(machines) == 0 {
		return nil
	}
	s.avail.a = s.avail.a[:0]
	for i, m := range machines {
		if m.Accepting && m.FreeCores >= 1 {
			s.avail.a = append(s.avail.a, candidate{MachineState: m, pos: i})
		}
	}
	sort.Sort(&s.avail)

	s.out = s.out[:0]
	out := s.out
	for _, m := range s.avail.a {
		if len(s.queue) == 0 {
			break
		}
		// FIFO with a skip for jobs whose footprint does not fit.
		idx := -1
		for qi, j := range s.queue {
			spec := bejobs.MustLookup(j.Type)
			if m.FreeCores >= spec.MinDispatchCores() && m.FreeMemoryGB >= spec.MemoryGB {
				idx = qi
				break
			}
		}
		if idx < 0 {
			continue
		}
		j := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		waited := now - j.SubmittedAt
		s.dispatched++
		s.obsDispatched.Inc()
		s.totalWait += waited
		out = append(out, Assignment{Job: j, Machine: m.Name, Waited: waited})
	}
	s.out = out
	if len(out) > 0 {
		s.obsQueueDepth.Set(float64(len(s.queue)))
	}
	return out
}
