package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/faults"
	"rhythm/internal/loadgen"
)

// TestUnifiedRunMatchesWrappers pins the api_redesign contract: each
// deprecated wrapper is exactly Run with the corresponding
// RunConfig.Policy selector, byte-identical stats included.
func TestUnifiedRunMatchesWrappers(t *testing.T) {
	sys := quickDeploy(t)
	base := RunConfig{
		Pattern:  loadgen.Constant(0.6),
		BETypes:  []bejobs.Type{bejobs.Wordcount},
		Duration: 30 * time.Second,
		Warmup:   6 * time.Second,
		Seed:     7,
	}

	withPolicy := func(pol controller.Policy) RunConfig {
		cfg := base
		cfg.Policy = pol
		return cfg
	}

	// nil and PolicyRhythm are the system's own policy.
	rhythmNil, err := sys.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rhythmSel, err := sys.Run(withPolicy(PolicyRhythm))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rhythmNil, rhythmSel) {
		t.Fatal("nil Policy and PolicyRhythm diverge")
	}
	if rhythmNil.Policy != "Rhythm" {
		t.Fatalf("resolved policy %q, want Rhythm", rhythmNil.Policy)
	}

	her, err := sys.Run(withPolicy(PolicyHeracles))
	if err != nil {
		t.Fatal(err)
	}
	herWrap, err := sys.RunBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(her, herWrap) {
		t.Fatal("RunBaseline diverges from Run(PolicyHeracles)")
	}
	if her.Policy != "Heracles" {
		t.Fatalf("resolved policy %q, want Heracles", her.Policy)
	}

	solo, err := sys.Run(withPolicy(PolicyNone))
	if err != nil {
		t.Fatal(err)
	}
	soloWrap, err := sys.RunSolo(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo, soloWrap) {
		t.Fatal("RunSolo diverges from Run(PolicyNone)")
	}
	if solo.Policy != "solo" || solo.MeanBEThroughput() != 0 {
		t.Fatalf("PolicyNone ran BE work: policy=%q thpt=%v", solo.Policy, solo.MeanBEThroughput())
	}

	custom := controller.NewHeracles()
	custom.Uniform = controller.Thresholds{Loadlimit: 0.7, Slacklimit: 0.2}
	got, err := sys.Run(withPolicy(custom))
	if err != nil {
		t.Fatal(err)
	}
	gotWrap, err := sys.RunWith(custom, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, gotWrap) {
		t.Fatal("RunWith diverges from Run with a custom policy")
	}
}

// TestPolicyNamedResolution pins the registry path through Run: a
// PolicyNamed selector resolves against the deployed system's thresholds
// at run time, and unknown names fail fast listing the registry.
func TestPolicyNamedResolution(t *testing.T) {
	sys := quickDeploy(t)
	cfg := RunConfig{
		Pattern:  loadgen.Constant(0.6),
		BETypes:  []bejobs.Type{bejobs.Wordcount},
		Duration: 30 * time.Second,
		Warmup:   6 * time.Second,
		Seed:     7,
	}

	cfg.Policy = PolicyNamed("predictive")
	st, err := sys.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy != "Predictive" {
		t.Fatalf("resolved policy %q, want Predictive", st.Policy)
	}

	// PolicyNamed("rhythm") is the system's own calibrated instance — the
	// same bytes as the PolicyRhythm selector.
	cfg.Policy = PolicyNamed("rhythm")
	viaName, err := sys.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = PolicyRhythm
	viaSel, err := sys.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaName, viaSel) {
		t.Fatal(`PolicyNamed("rhythm") diverges from PolicyRhythm`)
	}

	cfg.Policy = PolicyNamed("no-such-policy")
	if _, err := sys.Run(cfg); err == nil {
		t.Fatal("unknown policy name accepted")
	} else if !strings.Contains(err.Error(), "predictive") {
		t.Fatalf("error does not list the registry: %v", err)
	}
}

// TestRunWithFaults pins that a fault schedule reaches the engine through
// the unified Run and that an invalid one fails before any work.
func TestRunWithFaults(t *testing.T) {
	sys := quickDeploy(t)
	sched, err := faults.Preset("chaos", 11, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Pattern:  loadgen.Constant(0.6),
		BETypes:  []bejobs.Type{bejobs.Wordcount},
		Duration: 30 * time.Second,
		Warmup:   6 * time.Second,
		Seed:     7,
		Faults:   sched,
	}
	st, err := sys.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCrashes() == 0 && st.DegradedPeriods == 0 {
		t.Fatal("chaos schedule had no visible effect")
	}

	cfg.Faults = &faults.Schedule{Events: []faults.Event{{Kind: "bogus"}}}
	if _, err := sys.Run(cfg); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
