// Package core assembles Rhythm itself: the "profile LC once, feedback
// control BE" pipeline of §3. Deploy profiles a service's Servpods
// (request tracer + contribution analyzer), derives each Servpod's
// loadlimit and slacklimit (§3.5.1, Algorithm 1), and yields a System
// whose per-machine controllers co-locate BE jobs aggressively on
// low-contribution Servpods while protecting the SLA.
package core

import (
	"fmt"
	"strings"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/engine"
	"rhythm/internal/faults"
	"rhythm/internal/loadgen"
	"rhythm/internal/profiler"
	"rhythm/internal/workload"
)

// Options configures Deploy.
type Options struct {
	// Profile configures the offline sweep; zero values use defaults.
	Profile profiler.Options
	// Slack configures the Algorithm 1 search; zero values use defaults.
	Slack profiler.SlackOptions
	// Seed is used when the sub-options carry none.
	Seed uint64
	// Jobs bounds the worker goroutines of the profiling sweep and the
	// Algorithm 1 trial matrix when the sub-options carry none (0 =
	// runtime.NumCPU()). Deployment results are independent of Jobs.
	Jobs int
}

// System is a deployed Rhythm instance for one LC service: the profiling
// results and the derived control policy.
type System struct {
	Service     *workload.Service
	Profile     *profiler.Profile
	Slacklimits map[string]float64
	Thresholds  map[string]controller.Thresholds
	Policy      *controller.Rhythm
	// SLA is the derived tail-latency target (seconds) the controllers
	// protect — the worst solo p99 at max load, per Table 1's rule.
	SLA float64
}

// Deploy runs Rhythm's offline phase end to end: load-sweep profiling
// (through the request tracer for chain services, the built-in tracer for
// fan-out ones), contribution analysis (Eq. 1-5), the Fig. 8 loadlimit
// rule and the Algorithm 1 slacklimit search.
//
// Deploy is safe to call concurrently for different services, and both the
// profile and the slacklimit search go through the process-wide
// content-keyed caches in internal/profiler: redeploying the same
// (service, options, seed) triple — from any goroutine — reuses the first
// deployment's results. The internal sweeps parallelize across opts.Jobs
// workers; the returned System is identical for every worker count.
func Deploy(svc *workload.Service, opts Options) (*System, error) {
	if svc == nil {
		return nil, fmt.Errorf("core: nil service")
	}
	if opts.Profile.Seed == 0 {
		opts.Profile.Seed = opts.Seed
	}
	if opts.Slack.Seed == 0 {
		opts.Slack.Seed = opts.Seed + 1
	}
	if opts.Profile.Jobs == 0 {
		opts.Profile.Jobs = opts.Jobs
	}
	if opts.Slack.Jobs == 0 {
		opts.Slack.Jobs = opts.Jobs
	}
	prof, err := profiler.CachedRun(svc, opts.Profile)
	if err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", svc.Name, err)
	}
	slack, err := profiler.CachedSlacklimits(profiler.ProfileKey(svc, opts.Profile), prof, opts.Slack)
	if err != nil {
		return nil, fmt.Errorf("core: slacklimit search for %s: %w", svc.Name, err)
	}
	th, err := profiler.Thresholds(prof, slack)
	if err != nil {
		return nil, err
	}
	pol, err := controller.NewRhythm(th)
	if err != nil {
		return nil, err
	}
	return &System{
		Service:     svc,
		Profile:     prof,
		Slacklimits: slack,
		Thresholds:  th,
		Policy:      pol,
		SLA:         prof.SLA,
	}, nil
}

// RunConfig shapes a co-location run of a deployed system.
type RunConfig struct {
	// Pattern offers the LC load (required).
	Pattern loadgen.Pattern
	// BETypes are cycled when admitting BE instances (required unless
	// Policy is PolicyNone).
	BETypes []bejobs.Type
	// Duration is the virtual run time (required).
	Duration time.Duration
	// Warmup discards the initial transient from the statistics.
	Warmup time.Duration
	// Seed drives the run.
	Seed uint64
	// Timeline retains the Fig. 17 series.
	Timeline bool
	// CollectSamples retains per-pod sojourn and end-to-end latency
	// samples in the run stats (per-class SLO accounting, profiling).
	CollectSamples bool
	// Policy selects who controls the run: nil or PolicyRhythm uses the
	// system's own derived per-Servpod policy, PolicyNone no BE jobs at
	// all (solo reference), and any other PolicyNamed selector (including
	// PolicyHeracles) constructs a fresh instance from the controller
	// registry with this system's thresholds and SLA. Any other
	// controller.Policy is used as given (threshold sweeps, ablations).
	Policy controller.Policy
	// Faults injects a deterministic fault schedule (internal/faults);
	// nil leaves the run fault-free and bit-frozen.
	Faults *faults.Schedule
}

// builtinPolicy marks the RunConfig.Policy name selectors (PolicyNamed).
// Its Decide is never consulted: Run resolves selectors through the
// controller registry before the engine sees them (the most conservative
// action is returned just in case one is passed to an engine directly).
type builtinPolicy string

// Decide always suspends; selectors never reach an engine through Run.
func (builtinPolicy) Decide(string, float64, float64) controller.Action {
	return controller.SuspendBE
}

// Name identifies the selector.
func (b builtinPolicy) Name() string { return string(b) }

// policyPrefix distinguishes a selector's string from a registry name; it
// predates the registry (the original sentinels were "policy-rhythm" etc.)
// and is kept so selector values remain stable across versions.
const policyPrefix = "policy-"

// PolicyNamed returns a RunConfig.Policy selector for a registered policy
// name (controller.Names() lists them). The name resolves at Run time:
// "rhythm" to the system's own derived per-Servpod policy, "none" to a
// solo run with no BE jobs, and everything else through
// controller.New(name, ...) with the system's thresholds and SLA — a
// fresh instance per run, so stateful policies never share history.
// Unknown names error at Run with the registered list.
func PolicyNamed(name string) controller.Policy {
	return builtinPolicy(policyPrefix + name)
}

// The canonical RunConfig.Policy selectors. PolicyRhythm (or nil) runs
// the system's derived per-Servpod policy, PolicyHeracles the uniform
// baseline, PolicyNone the LC service alone with no BE jobs.
var (
	PolicyRhythm   = PolicyNamed("rhythm")
	PolicyHeracles = PolicyNamed("heracles")
	PolicyNone     = PolicyNamed("none")
)

// Run executes one co-location run of the deployed system, fully described
// by cfg: which policy controls it (RunConfig.Policy), which BE jobs ride
// along, what load pattern is offered, and which faults (if any) are
// injected. It is the single entry point the experiments, examples and
// facade build on; RunBaseline/RunWith/RunSolo are deprecated wrappers
// over it.
func (s *System) Run(cfg RunConfig) (*engine.RunStats, error) {
	pol := cfg.Policy
	betypes := cfg.BETypes
	if cfg.Policy == nil {
		pol = s.Policy
	} else if b, ok := cfg.Policy.(builtinPolicy); ok {
		switch name := strings.TrimPrefix(string(b), policyPrefix); name {
		case "rhythm":
			// The system's own calibrated instance, not a registry
			// reconstruction: byte-for-byte the pre-registry behavior.
			pol = s.Policy
		case "none":
			pol, betypes = nil, nil
		default:
			p, err := controller.New(name, controller.FactoryOpts{
				Thresholds: s.Thresholds,
				SLA:        s.SLA,
			})
			if err != nil {
				return nil, err
			}
			pol = p
		}
	}
	e, err := engine.New(engine.Config{
		Service:        s.Service,
		Pattern:        cfg.Pattern,
		SLA:            s.SLA,
		Policy:         pol,
		BETypes:        betypes,
		Seed:           cfg.Seed,
		Warmup:         cfg.Warmup,
		Timeline:       cfg.Timeline,
		CollectSamples: cfg.CollectSamples,
		Faults:         cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	return e.Run(cfg.Duration)
}

// RunBaseline runs the identical scenario under the Heracles baseline.
//
// Deprecated: set RunConfig.Policy = PolicyHeracles and call Run.
func (s *System) RunBaseline(cfg RunConfig) (*engine.RunStats, error) {
	cfg.Policy = PolicyHeracles
	return s.Run(cfg)
}

// RunWith runs the scenario under an arbitrary policy.
//
// Deprecated: set RunConfig.Policy and call Run.
func (s *System) RunWith(pol controller.Policy, cfg RunConfig) (*engine.RunStats, error) {
	cfg.Policy = pol
	return s.Run(cfg)
}

// RunSolo runs the LC service alone (no BE jobs) for reference.
//
// Deprecated: set RunConfig.Policy = PolicyNone and call Run.
func (s *System) RunSolo(cfg RunConfig) (*engine.RunStats, error) {
	cfg.Policy = PolicyNone
	return s.Run(cfg)
}

// Comparison holds a Rhythm-vs-Heracles pair over the same scenario.
type Comparison struct {
	Rhythm   *engine.RunStats
	Heracles *engine.RunStats
}

// Compare runs the same scenario under both policies.
func (s *System) Compare(cfg RunConfig) (*Comparison, error) {
	cfg.Policy = PolicyRhythm
	r, err := s.Run(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Policy = PolicyHeracles
	h, err := s.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &Comparison{Rhythm: r, Heracles: h}, nil
}

// Improvement returns (rhythm-heracles)/heracles for a metric pair,
// or 0 when the baseline is zero (both idle) — matching how the paper
// reports relative improvements.
func Improvement(rhythm, heracles float64) float64 {
	if heracles == 0 {
		if rhythm == 0 {
			return 0
		}
		return 1 // improvement over a zero baseline: report +100%
	}
	return (rhythm - heracles) / heracles
}
