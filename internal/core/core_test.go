package core

import (
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/loadgen"
	"rhythm/internal/profiler"
	"rhythm/internal/workload"
)

// quickDeploy deploys E-commerce with test-scale profiling.
func quickDeploy(t *testing.T) *System {
	t.Helper()
	sys, err := Deploy(workload.ECommerce(), Options{
		Profile: profiler.Options{
			Levels:        []float64{0.1, 0.3, 0.5, 0.65, 0.75, 0.85, 0.93},
			LevelDuration: 5 * time.Second,
		},
		Slack: profiler.SlackOptions{},
		Seed:  17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDeployPipeline(t *testing.T) {
	sys := quickDeploy(t)
	if sys.SLA <= 0 {
		t.Fatal("no SLA derived")
	}
	if len(sys.Thresholds) != 4 {
		t.Fatalf("thresholds for %d pods, want 4", len(sys.Thresholds))
	}
	// The defining structure: MySQL gets the tightest loadlimit and the
	// largest slacklimit; tolerant pods the opposite.
	my, am := sys.Thresholds["MySQL"], sys.Thresholds["Amoeba"]
	if my.Loadlimit >= am.Loadlimit {
		t.Fatalf("MySQL loadlimit %v should be below Amoeba's %v", my.Loadlimit, am.Loadlimit)
	}
	if my.Slacklimit <= am.Slacklimit {
		t.Fatalf("MySQL slacklimit %v should exceed Amoeba's %v", my.Slacklimit, am.Slacklimit)
	}
	for pod, th := range sys.Thresholds {
		if th.Loadlimit <= 0 || th.Loadlimit > 1 || th.Slacklimit <= 0 || th.Slacklimit > 1 {
			t.Fatalf("%s: thresholds out of range %+v", pod, th)
		}
	}
}

func TestCompareImprovesEMUAtHighLoad(t *testing.T) {
	sys := quickDeploy(t)
	cmp, err := sys.Compare(RunConfig{
		Pattern:  loadgen.Constant(0.75),
		BETypes:  []bejobs.Type{bejobs.Wordcount},
		Duration: 80 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Rhythm.MeanEMU() <= cmp.Heracles.MeanEMU() {
		t.Fatalf("Rhythm EMU %v should beat Heracles %v at 75%% load",
			cmp.Rhythm.MeanEMU(), cmp.Heracles.MeanEMU())
	}
	// SLA safety at a constant near-edge load: occasional grazing is
	// tolerated (the paper's zero-violation claim is for the production
	// load, exercised by the fig15/tab2 experiments), but the controller
	// must keep the worst excursion small.
	if cmp.Rhythm.WorstP99 > sys.SLA*1.10 {
		t.Fatalf("Rhythm worst p99 %v far exceeds SLA %v", cmp.Rhythm.WorstP99, sys.SLA)
	}
}

func TestSoloRun(t *testing.T) {
	sys := quickDeploy(t)
	st, err := sys.Run(RunConfig{
		Pattern:  loadgen.Constant(0.5),
		Duration: 10 * time.Second,
		Seed:     3,
		Policy:   PolicyNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanBEThroughput() != 0 {
		t.Fatal("solo run should have no BE throughput")
	}
}

func TestDeployValidation(t *testing.T) {
	if _, err := Deploy(nil, Options{}); err == nil {
		t.Fatal("nil service accepted")
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(1.2, 1.0) != 0.19999999999999996 && Improvement(1.2, 1.0) != 0.2 {
		t.Fatalf("improvement = %v", Improvement(1.2, 1.0))
	}
	if Improvement(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if Improvement(0.5, 0) != 1 {
		t.Fatal("improvement over zero baseline should report +100%")
	}
	if Improvement(0.8, 1.0) >= 0 {
		t.Fatal("regression should be negative")
	}
}
