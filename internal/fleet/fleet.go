// Package fleet is the datacenter layer (ROADMAP item 1): it scales the
// per-machine Algorithm-2 controllers of internal/engine to N machines
// coordinated through the shared BE queue of internal/scheduler,
// reproducing §4's "interact with scheduler" protocol at fleet size.
//
// # Topology
//
// A fleet is a list of service replicas. Each replica is one engine — one
// machine per component, its own controller loop, its own RNG stream
// seeded sim.SubSeed(seed, "fleet/<replica>") — so a 100-machine fleet is
// ~30 replicas of the six catalog services. BE jobs arrive to a single
// scheduler.Scheduler; machines signal accept/deny through their top
// controller's last action; the scheduler dispatches queued jobs to
// accepting machines and re-queues jobs the machines later kill.
//
// # Epoch barriers and determinism
//
// Time advances in epochs (default: the 2 s control period). One epoch is
//
//	arrivals (serial) -> machine slices (parallel) -> barrier (serial)
//
// Arrivals draw from the content-keyed substream
// "fleet/arrivals/<epoch>", so epoch e's arrival count never depends on
// worker scheduling. The machine slices run engine.RunUntil concurrently
// via sim.ForEach — legal because engines share no mutable state and a
// chunked RunUntil is bitwise-identical to one sweep. The barrier then
// walks replicas in fixed order: evictions re-queue, machine views are
// collected, the scheduler dispatches, and admissions land — all serial,
// all order-fixed. Every byte of the result is therefore identical at any
// -jobs value, the same contract every experiment table in this repo
// carries (DESIGN.md §7).
//
// # Requeue semantics
//
// A killed job re-enters the queue head with its submission time reset to
// the eviction epoch: the queue-wait statistics measure time-to-(re)place,
// not total job lifetime, matching how the paper's testbed scheduler sees
// a re-submitted job as new work.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/controller"
	"rhythm/internal/engine"
	"rhythm/internal/loadgen"
	"rhythm/internal/obs"
	"rhythm/internal/scheduler"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// Entry is one service class in the fleet: a service deployed identically
// on Replicas replicas, each controlled by Policy against SLA.
type Entry struct {
	Service  *workload.Service
	Replicas int
	Policy   controller.Policy
	// SLA is the class's tail-latency target in seconds.
	SLA float64
}

// Config configures a fleet run.
type Config struct {
	// Entries define the fleet composition; at least one is required.
	Entries []Entry
	// Pattern is the offered LC load, shared by every replica (a
	// datacenter-wide diurnal). Required.
	Pattern loadgen.Pattern
	// BETypes is the BE job mix submitted to the shared queue, cycled
	// deterministically. Default: wordcount, CPU-stress, stream-dram,
	// imageClassify — the Table 1 mix spanning CPU-, memory- and
	// mixed-pressure jobs.
	BETypes []bejobs.Type
	// ArrivalsPerMachineHour is the mean BE submission rate, scaled by
	// fleet size. Default 45: Alibaba co-location traces (arXiv
	// 1808.02919, 1811.06901) show batch instances outnumbering online
	// containers roughly 3:1 with batch runtimes in minutes, which at
	// Table 1 job granularity works out to tens of submissions per
	// machine-hour.
	ArrivalsPerMachineHour float64
	// QueueLimit bounds the shared BE queue (default 1024).
	QueueLimit int
	// Duration is the simulated time (required); Warmup discards the
	// initial transient inside each engine.
	Duration time.Duration
	Warmup   time.Duration
	// Epoch is the barrier interval — also each engine's control period,
	// so accept/deny signals refresh exactly once per epoch. Default 2 s.
	Epoch time.Duration
	// Spec is the machine hardware (default cluster.DefaultSpec).
	Spec cluster.MachineSpec
	// Seed is the fleet's root seed; every replica and every arrival
	// epoch forks a content-keyed substream from it.
	Seed uint64
	// Jobs is the worker count for the parallel machine slices
	// (0 = GOMAXPROCS). Output is byte-identical at any value.
	Jobs int
}

// replica is one deployed service instance.
type replica struct {
	name  string
	entry int
	eng   *engine.Engine
	stats *engine.RunStats
	// names holds the fleet-wide machine names ("<replica>/<pod>") in
	// component order — the order MachineViews reports — precomputed at
	// New so the epoch barrier never rebuilds them.
	names []string
}

// owner locates the replica and pod behind a fleet-wide machine name.
type owner struct {
	rep int
	pod string
}

// Fleet is a configured fleet run. Not safe for concurrent use; the
// parallelism lives inside Step.
type Fleet struct {
	cfg      Config
	replicas []*replica
	owners   map[string]owner
	sched    *scheduler.Scheduler
	machines int

	now    sim.Time
	epochs int
	arrSeq int
	// arrRNG and labelBuf are reused per epoch: the arrival substream
	// label "fleet/arrivals/<epoch>" is assembled in labelBuf and hashed
	// with sim.SubSeedBytes, and arrRNG is reseeded in place, so drawing
	// the epoch's Poisson batch allocates nothing.
	arrRNG   sim.RNG
	labelBuf []byte
	// waits holds one queue-wait sample per successful placement.
	waits []float64
	// views and states are reused across epochs to keep the barrier
	// allocation-free at steady state.
	views  []engine.MachineView
	states []scheduler.MachineState

	// Observability (nil/zero without a bus at New time). The fleet emits
	// only from the serial sections — arrivals and the epoch barrier — so
	// traced runs stay byte-identical on stdout at any -jobs: epoch
	// brackets as run events, BE queue transitions (dispatch, requeue,
	// evict) as be events, and the post-barrier queue depth as a gauge.
	obsScope   obs.Scope
	obsPending *obs.Gauge
	obsEpochs  *obs.Counter
}

// New builds a fleet. Entries are deployed in order; replica r of entry
// i is named "<service>-<r>" and seeds its engine from
// sim.SubSeed(cfg.Seed, "fleet/<name>") — adding a class never perturbs
// another class's streams.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Entries) == 0 {
		return nil, fmt.Errorf("fleet: no entries")
	}
	if cfg.Pattern == nil {
		return nil, fmt.Errorf("fleet: load pattern required")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("fleet: non-positive duration %v", cfg.Duration)
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 2 * time.Second
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 1024
	}
	if cfg.ArrivalsPerMachineHour <= 0 {
		cfg.ArrivalsPerMachineHour = 45
	}
	if len(cfg.BETypes) == 0 {
		cfg.BETypes = []bejobs.Type{bejobs.Wordcount, bejobs.CPUStress, bejobs.StreamDRAM, bejobs.ImageClassify}
	}
	f := &Fleet{
		cfg:    cfg,
		owners: make(map[string]owner),
		sched:  scheduler.New(cfg.QueueLimit),
	}
	if bus := obs.Active(); bus != nil {
		f.obsScope = bus.Scope("fleet")
		f.obsPending = bus.Gauge("rhythm_fleet_pending_jobs")
		f.obsEpochs = bus.Counter("rhythm_fleet_epochs_total")
	}
	for i, ent := range cfg.Entries {
		if ent.Service == nil || ent.Replicas <= 0 {
			return nil, fmt.Errorf("fleet: entry %d: service and positive replica count required", i)
		}
		if ent.Policy == nil {
			return nil, fmt.Errorf("fleet: entry %d (%s): policy required", i, ent.Service.Name)
		}
		for r := 0; r < ent.Replicas; r++ {
			name := fmt.Sprintf("%s-%d", ent.Service.Name, r)
			eng, err := engine.New(engine.Config{
				Service:       ent.Service,
				Pattern:       cfg.Pattern,
				SLA:           ent.SLA,
				Policy:        ent.Policy,
				ExternalBE:    true,
				Spec:          cfg.Spec,
				Seed:          sim.SubSeed(cfg.Seed, "fleet/"+name),
				ControlPeriod: cfg.Epoch,
				Warmup:        cfg.Warmup,
				Label:         "fleet/" + name,
			})
			if err != nil {
				return nil, fmt.Errorf("fleet: replica %s: %w", name, err)
			}
			rep := &replica{name: name, entry: i, eng: eng}
			ri := len(f.replicas)
			f.replicas = append(f.replicas, rep)
			for _, c := range ent.Service.Components {
				full := name + "/" + c.Name
				rep.names = append(rep.names, full)
				f.owners[full] = owner{rep: ri, pod: c.Name}
			}
			f.machines += len(ent.Service.Components)
		}
	}
	return f, nil
}

// Machines returns the fleet's machine count.
func (f *Fleet) Machines() int { return f.machines }

// Epochs returns how many epochs have run.
func (f *Fleet) Epochs() int { return f.epochs }

// Step advances the fleet by one epoch: submit arrivals, run every
// machine slice in parallel to the epoch end, then resolve the scheduler
// barrier serially in replica order.
func (f *Fleet) Step() {
	epochEnd := f.now.Add(f.cfg.Epoch)
	if f.obsScope.Enabled() {
		// Reason strings are built only under an installed bus.
		f.obsScope.RunPhase(int64(f.now), "epoch-start", fmt.Sprintf("epoch %d", f.epochs))
	}

	// Arrivals: a Poisson batch for this epoch from its own substream.
	// The label is assembled in a reused buffer and hashed directly;
	// SubSeedBytes guarantees the same seed fmt.Sprintf + SubSeed gave.
	mean := f.cfg.ArrivalsPerMachineHour * float64(f.machines) * f.cfg.Epoch.Hours()
	f.labelBuf = append(f.labelBuf[:0], "fleet/arrivals/"...)
	f.labelBuf = strconv.AppendInt(f.labelBuf, int64(f.epochs), 10)
	f.arrRNG.Reseed(sim.SubSeedBytes(f.cfg.Seed, f.labelBuf))
	n := int(loadgen.Poisson(&f.arrRNG, mean))
	for i := 0; i < n; i++ {
		ty := f.cfg.BETypes[f.arrSeq%len(f.cfg.BETypes)]
		f.arrSeq++
		f.sched.Submit(ty, f.now) // a full queue counts under Dropped
	}

	// Machine slices: engines share nothing, so replicas advance
	// concurrently; each consumes only its own forked RNG streams.
	sim.ForEach(len(f.replicas), f.cfg.Jobs, func(i int) {
		f.replicas[i].stats = f.replicas[i].eng.RunUntil(epochEnd)
	})

	// Barrier, in fixed replica order. Evictions first: a killed job
	// re-enters at the queue head before this epoch's dispatch.
	for _, rep := range f.replicas {
		for _, ev := range rep.eng.TakeEvicted() {
			if f.obsScope.Enabled() {
				f.obsScope.BE(int64(epochEnd), rep.name+"/"+ev.Pod, ev.ID, "evict", 0, 0)
			}
			if f.sched.Requeue(scheduler.Job{ID: ev.ID, Type: ev.Type, SubmittedAt: epochEnd}) &&
				f.obsScope.Enabled() {
				f.obsScope.BE(int64(epochEnd), rep.name+"/"+ev.Pod, ev.ID, "requeue", 0, 0)
			}
		}
	}
	f.views = f.views[:0]
	f.states = f.states[:0]
	for _, rep := range f.replicas {
		start := len(f.views)
		f.views = rep.eng.MachineViews(f.views)
		for vi, v := range f.views[start:] {
			f.states = append(f.states, scheduler.MachineState{
				Name:         rep.names[vi],
				Accepting:    v.Accepting,
				FreeCores:    v.FreeCores,
				FreeMemoryGB: v.FreeMemoryGB,
				Resident:     v.Resident,
			})
		}
	}
	for _, as := range f.sched.Dispatch(f.states, epochEnd) {
		o := f.owners[as.Machine]
		rep := f.replicas[o.rep]
		if rep.eng.AdmitBE(o.pod, as.Job.Type, as.Job.ID) {
			f.waits = append(f.waits, as.Waited.Seconds())
			if f.obsScope.Enabled() {
				f.obsScope.BE(int64(epochEnd), as.Machine, as.Job.ID, "dispatch", 0, 0)
			}
		} else {
			// The fit check passed on free cores and memory, but the
			// isolation agent also needs LLC ways for the starting
			// slice; back to the queue head for the next epoch.
			if f.sched.Requeue(as.Job) && f.obsScope.Enabled() {
				f.obsScope.BE(int64(epochEnd), as.Machine, as.Job.ID, "requeue", 0, 0)
			}
		}
	}

	f.now = epochEnd
	f.epochs++
	f.obsEpochs.Inc()
	f.obsPending.Set(float64(f.sched.Pending()))
	if f.obsScope.Enabled() {
		f.obsScope.RunPhase(int64(epochEnd), "epoch-end",
			fmt.Sprintf("epoch %d: %d pending", f.epochs-1, f.sched.Pending()))
	}
}

// Run executes the configured duration (rounded up to whole epochs) and
// returns the aggregated scorecard.
func (f *Fleet) Run() *Result {
	steps := int((time.Duration(f.cfg.Duration) + f.cfg.Epoch - 1) / f.cfg.Epoch)
	for i := 0; i < steps; i++ {
		f.Step()
	}
	return f.Result()
}

// ClassStats is the per-service-class scorecard row.
type ClassStats struct {
	Service  string
	Replicas int
	Machines int
	// MeanP99 and WorstP99 aggregate the replicas' window p99: the mean
	// of per-replica means, and the worst single replica.
	MeanP99  float64
	WorstP99 float64
	SLA      float64
	// ViolationSeconds sums SLA-violating control periods across
	// replicas.
	ViolationSeconds float64
	// BEThroughput, CPUUtil and MemBWUtil are fleet means over the
	// class's machines.
	BEThroughput float64
	CPUUtil      float64
	MemBWUtil    float64
	Kills        int
	Crashes      int
	Completions  int
}

// QueueStats is the shared BE queue's scorecard.
type QueueStats struct {
	Submitted      int
	Rejected       int // fresh submissions bounced off a full queue
	Requeued       int // evicted jobs taken back
	RequeueDropped int // evicted jobs lost to a full queue
	Dispatched     int
	Pending        int
	MeanWaitS      float64
	P50WaitS       float64
	P99WaitS       float64
}

// Result is the fleet-wide scorecard.
type Result struct {
	Machines int
	Replicas int
	Epochs   int
	Classes  []ClassStats
	// CPUHist and MemBWHist bucket each machine's mean utilization into
	// deciles ([0,10), [10,20), ... [90,100+] percent).
	CPUHist   [10]int
	MemBWHist [10]int
	Queue     QueueStats
	// Completions counts finished BE jobs fleet-wide;
	// GoodputPerMachineHour normalizes by machine-hours simulated.
	Completions           int
	GoodputPerMachineHour float64
	Kills                 int
	Crashes               int
}

// Result aggregates the scorecard so far. Classes appear in Entries
// order; histograms and goodput cover every machine.
func (f *Fleet) Result() *Result {
	res := &Result{
		Machines: f.machines,
		Replicas: len(f.replicas),
		Epochs:   f.epochs,
		Classes:  make([]ClassStats, len(f.cfg.Entries)),
	}
	for i, ent := range f.cfg.Entries {
		res.Classes[i] = ClassStats{Service: ent.Service.Name, Replicas: ent.Replicas, SLA: ent.SLA}
	}
	for _, rep := range f.replicas {
		cs := &res.Classes[rep.entry]
		st := rep.stats
		if st == nil {
			continue
		}
		cs.Machines += len(st.PerPod)
		cs.MeanP99 += st.MeanP99
		if st.WorstP99 > cs.WorstP99 {
			cs.WorstP99 = st.WorstP99
		}
		cs.ViolationSeconds += st.ViolationSeconds
		cs.Kills += st.TotalKills()
		cs.Crashes += st.TotalCrashes()
		// Per-pod walk in component order keeps the histograms
		// deterministic (PerPod is a map).
		svc := f.cfg.Entries[rep.entry].Service
		for _, c := range svc.Components {
			p := st.PerPod[c.Name]
			if p == nil {
				continue
			}
			cs.BEThroughput += p.BEThroughput
			cs.CPUUtil += p.CPUUtil
			cs.MemBWUtil += p.MemBWUtil
			cs.Completions += p.Completions
			res.CPUHist[utilBucket(p.CPUUtil)]++
			res.MemBWHist[utilBucket(p.MemBWUtil)]++
		}
	}
	for i := range res.Classes {
		cs := &res.Classes[i]
		if cs.Replicas > 0 {
			cs.MeanP99 /= float64(cs.Replicas)
		}
		if cs.Machines > 0 {
			cs.BEThroughput /= float64(cs.Machines)
			cs.CPUUtil /= float64(cs.Machines)
			cs.MemBWUtil /= float64(cs.Machines)
		}
		res.Completions += cs.Completions
		res.Kills += cs.Kills
		res.Crashes += cs.Crashes
	}
	if hours := f.cfg.Epoch.Hours() * float64(f.epochs) * float64(f.machines); hours > 0 {
		res.GoodputPerMachineHour = float64(res.Completions) / hours
	}
	res.Queue = QueueStats{
		Submitted:      f.sched.Submitted(),
		Rejected:       f.sched.Dropped(),
		Requeued:       f.sched.Requeued(),
		RequeueDropped: f.sched.RequeueDropped(),
		Dispatched:     f.sched.Dispatched(),
		Pending:        f.sched.Pending(),
		MeanWaitS:      f.sched.MeanWait(),
	}
	if len(f.waits) > 0 {
		ws := append([]float64(nil), f.waits...)
		sort.Float64s(ws)
		res.Queue.P50WaitS = sim.QuantileSorted(ws, 0.50)
		res.Queue.P99WaitS = sim.QuantileSorted(ws, 0.99)
	}
	return res
}

// utilBucket maps a utilization fraction to its decile bucket.
func utilBucket(u float64) int {
	b := int(math.Floor(u * 10))
	if b < 0 {
		b = 0
	}
	if b > 9 {
		b = 9
	}
	return b
}
