package fleet

import (
	"reflect"
	"testing"
	"time"

	"rhythm/internal/controller"
	"rhythm/internal/loadgen"
	"rhythm/internal/workload"
)

// heraclesEntries turns a preset profile into config entries under the
// uniform Heracles policy (no offline profiling needed in tests). SLA 0
// disables the latency guard, so machines accept whenever load allows.
func heraclesEntries(t *testing.T, preset string) []Entry {
	t.Helper()
	prof, err := PresetProfile(preset)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for _, pe := range prof.Mix {
		svc, err := workload.ByName(pe.Service)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, Entry{
			Service:  svc,
			Replicas: pe.Replicas,
			Policy:   controller.NewHeracles(),
		})
	}
	return entries
}

// TestDeterminismAcrossJobs is the ISSUE's fleet determinism regression:
// the 100-machine preset at seed 2020 must produce an identical Result at
// -jobs 1 and -jobs 8. Machine slices run in parallel, so any shared
// mutable state or scheduling-order dependence shows up here as a diff.
func TestDeterminismAcrossJobs(t *testing.T) {
	run := func(jobs int) *Result {
		f, err := New(Config{
			Entries:                heraclesEntries(t, "fleet100"),
			Pattern:                loadgen.Constant(0.5),
			ArrivalsPerMachineHour: 600, // busy queue: dispatch every epoch
			Duration:               6 * time.Second,
			Epoch:                  2 * time.Second,
			Seed:                   2020,
			Jobs:                   jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f.Run()
	}
	r1 := run(1)
	r8 := run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("fleet result differs across worker counts:\njobs=1: %+v\njobs=8: %+v", r1, r8)
	}
	if r1.Machines != 100 {
		t.Fatalf("machines = %d, want 100", r1.Machines)
	}
	if r1.Queue.Dispatched == 0 {
		t.Fatal("degenerate run: nothing dispatched")
	}
}

// TestStepAllocationFree pins the satellite perf contract on the epoch
// barrier: at steady state (arrival label buffer warm, scheduler scratch
// grown, machine-name strings precomputed) a Step over the fleet4 preset
// allocates only the rare admission-path objects — instances being
// launched — never the per-epoch labels, state slices, or dispatch
// scratch it used to rebuild.
func TestStepAllocationFree(t *testing.T) {
	f, err := New(Config{
		Entries:                heraclesEntries(t, "fleet4"),
		Pattern:                loadgen.Constant(0.5),
		ArrivalsPerMachineHour: 600, // busy queue: dispatch every epoch
		Duration:               time.Hour,
		Epoch:                  2 * time.Second,
		Seed:                   2020,
		Jobs:                   1, // measure the barrier, not the pool
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm past the engines' inertia transient and the scratch growth.
	for i := 0; i < 10; i++ {
		f.Step()
	}
	avg := testing.AllocsPerRun(20, func() { f.Step() })
	// The hot path is allocation-free; what remains is admission (new BE
	// instances and their grants) plus occasional slice regrowth — a
	// handful of objects, where the pre-SoA barrier paid thousands
	// (per-machine name concats, fresh dispatch slices, label Sprintfs).
	if avg > 50 {
		t.Fatalf("fleet Step allocates %.1f objects/op at steady state, want <= 50", avg)
	}
}

// TestQueueConservation pins the queue's flow invariant: every job that
// entered (accepted submission or requeue) either left via dispatch or is
// still pending.
func TestQueueConservation(t *testing.T) {
	f, err := New(Config{
		Entries: []Entry{{
			Service:  workload.ECommerce(),
			Replicas: 1,
			Policy:   controller.NewHeracles(),
		}},
		Pattern:                loadgen.Constant(0.4),
		ArrivalsPerMachineHour: 3000,
		QueueLimit:             16, // small: exercise the rejection path too
		Duration:               30 * time.Second,
		Seed:                   7,
		Jobs:                   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run()
	q := res.Queue
	if q.Submitted+q.Requeued-q.Dispatched != q.Pending {
		t.Fatalf("queue flow broken: submitted %d + requeued %d - dispatched %d != pending %d",
			q.Submitted, q.Requeued, q.Dispatched, q.Pending)
	}
	if q.Dispatched == 0 {
		t.Fatal("degenerate run: nothing dispatched")
	}
	if q.Rejected == 0 {
		t.Fatal("expected rejections with a 16-slot queue at 3000 arrivals/machine-hour")
	}
}

// loadKiller allows BE growth below the threshold load and stops BE above
// it — a scripted policy that forces the kill -> requeue protocol
// deterministically (Heracles only kills on negative slack, which depends
// on the latency model's behaviour).
type loadKiller struct{ threshold float64 }

func (k loadKiller) Decide(_ string, load, _ float64) controller.Action {
	if load > k.threshold {
		return controller.StopBE
	}
	return controller.AllowBEGrowth
}
func (k loadKiller) Name() string { return "load-killer" }

// TestRequeueOnKill drives the full §4 loop: jobs dispatch during the
// low-load phase, the load step forces StopBE, the evicted jobs re-enter
// the queue, and the scheduler's requeue counter proves the machines
// reported them back.
func TestRequeueOnKill(t *testing.T) {
	f, err := New(Config{
		Entries: []Entry{{
			Service:  workload.Redis(),
			Replicas: 2,
			Policy:   loadKiller{threshold: 0.6},
		}},
		// 10 s at 0.3 (dispatch + admit), then 10 s at 0.9 (kill).
		Pattern:                loadgen.Step{Levels: []float64{0.3, 0.9}, Dwell: 10 * time.Second},
		ArrivalsPerMachineHour: 3000,
		Duration:               20 * time.Second,
		Seed:                   11,
		Jobs:                   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run()
	if res.Kills == 0 {
		t.Fatal("load step should have forced StopBE kills")
	}
	if res.Queue.Requeued == 0 {
		t.Fatal("killed jobs must be requeued to the shared scheduler")
	}
	if res.Queue.Dispatched == 0 {
		t.Fatal("degenerate run: nothing dispatched")
	}
}
