package fleet

import (
	"fmt"
	"strings"

	"rhythm/internal/workload"
)

// ProfileEntry is one service class in a fleet profile: a catalog service
// name and how many replicas of it the fleet deploys.
type ProfileEntry struct {
	Service  string
	Replicas int
}

// Profile is a named fleet composition. It carries only the shape —
// callers attach policies and SLAs when turning it into Config entries.
type Profile struct {
	Name string
	Mix  []ProfileEntry
}

// Machines returns the profile's machine count (replicas times the
// service's component count).
func (p Profile) Machines() int {
	n := 0
	for _, e := range p.Mix {
		if svc, err := workload.ByName(e.Service); err == nil {
			n += e.Replicas * len(svc.Components)
		}
	}
	return n
}

// DefaultPreset is the preset the fleet experiment runs without -fleet.
const DefaultPreset = "fleet100"

// presets are the ISSUE-mandated fleet sizes: the paper's own 4-machine
// testbed, a 100-machine pod, and a 1000-machine cluster. The 100-machine
// mix leans toward the heavier services the way Alibaba's co-location
// traces lean toward large online applications (arXiv 1808.02919): the
// 4-component e-commerce service contributes about a third of the
// machines, caches (Redis) are numerous but small, and search/analytics
// services fill the rest.
var presets = []Profile{
	{Name: "fleet4", Mix: []ProfileEntry{
		{Service: "E-commerce", Replicas: 1}, // 4 machines: the paper's testbed
	}},
	{Name: "fleet100", Mix: []ProfileEntry{
		{Service: "E-commerce", Replicas: 8},    // 32 machines
		{Service: "Redis", Replicas: 10},        // 20
		{Service: "Solr", Replicas: 6},          // 12
		{Service: "Elasticsearch", Replicas: 6}, // 12
		{Service: "Elgg", Replicas: 4},          // 12
		{Service: "SNMS", Replicas: 4},          // 12
	}},
	{Name: "fleet1000", Mix: []ProfileEntry{
		{Service: "E-commerce", Replicas: 80},
		{Service: "Redis", Replicas: 100},
		{Service: "Solr", Replicas: 60},
		{Service: "Elasticsearch", Replicas: 60},
		{Service: "Elgg", Replicas: 40},
		{Service: "SNMS", Replicas: 40},
	}},
}

// Presets returns the preset names in size order.
func Presets() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// PresetProfile returns the named preset, or an error naming the valid
// choices.
func PresetProfile(name string) (Profile, error) {
	for _, p := range presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("fleet: unknown preset %q (have %s)", name, strings.Join(Presets(), ", "))
}
