package fleet

import (
	"reflect"
	"testing"
	"time"

	"rhythm/internal/loadgen"
	"rhythm/internal/obs"
)

// fleetConfig is the shared fixture for the tracing tests: busy enough
// that every epoch dispatches, long enough to cross several epochs.
func fleetConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Entries:                heraclesEntries(t, "fleet4"),
		Pattern:                loadgen.Constant(0.5),
		ArrivalsPerMachineHour: 1200,
		Duration:               6 * time.Second,
		Epoch:                  2 * time.Second,
		Seed:                   2020,
		Jobs:                   2,
	}
}

// TestTracedRunMatchesUntraced is the observability no-interference pin:
// installing a bus must not change a fleet run's Result in any field.
// Instruments live outside the simulation state, and event emission never
// touches the RNG or the virtual clock.
func TestTracedRunMatchesUntraced(t *testing.T) {
	run := func(traced bool) *Result {
		if traced {
			sink := &obs.MemorySink{}
			obs.Install(obs.NewBus(sink))
			defer obs.Uninstall()
		}
		f, err := New(fleetConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		return f.Run()
	}
	plain := run(false)
	traced := run(true)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing changed the fleet result:\nuntraced: %+v\ntraced:   %+v", plain, traced)
	}
	if plain.Queue.Dispatched == 0 {
		t.Fatal("degenerate run: nothing dispatched")
	}
}

// TestFleetEmitsObsEvents pins the fleet-layer emission contract: epoch
// brackets as run-phase events, BE queue ops (dispatch at minimum) as be
// events, and the epoch counter / pending gauge as instruments.
func TestFleetEmitsObsEvents(t *testing.T) {
	sink := &obs.MemorySink{}
	bus := obs.NewBus(sink)
	obs.Install(bus)
	defer obs.Uninstall()

	f, err := New(fleetConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run()

	phases := map[string]int{}
	beOps := map[string]int{}
	for _, ev := range sink.Events() {
		if ev.Scope != "fleet" {
			continue
		}
		switch ev.Kind {
		case obs.KindRun:
			phases[ev.Op]++
		case obs.KindBE:
			beOps[ev.Op]++
		}
	}
	epochs := res.Epochs
	if phases["epoch-start"] != epochs || phases["epoch-end"] != epochs {
		t.Fatalf("epoch brackets = %v, want %d of each (result: %+v)", phases, epochs, res)
	}
	// One dispatch event per admitted job; the scheduler's Dispatched
	// count also includes assignments the isolation agent bounced.
	if beOps["dispatch"] == 0 || beOps["dispatch"] > res.Queue.Dispatched {
		t.Fatalf("dispatch events = %d, want (0, %d]", beOps["dispatch"], res.Queue.Dispatched)
	}
	// Every successful requeue — post-eviction or post-bounce — emits
	// exactly one event, matching the scheduler's own counter.
	if beOps["requeue"] != res.Queue.Requeued {
		t.Fatalf("requeue events = %d, want %d", beOps["requeue"], res.Queue.Requeued)
	}
	// Evictions cover kills and crashes alike.
	if beOps["evict"] != res.Kills+res.Crashes {
		t.Fatalf("evict events = %d, want %d kills + %d crashes", beOps["evict"], res.Kills, res.Crashes)
	}

	// Instruments: the epoch counter matches the result, and the pending
	// gauge holds the final queue depth.
	if v := bus.Counter("rhythm_fleet_epochs_total").Value(); v != uint64(epochs) {
		t.Fatalf("rhythm_fleet_epochs_total = %d, want %d", v, epochs)
	}
	if v := bus.Gauge("rhythm_fleet_pending_jobs").Value(); v != float64(res.Queue.Pending) {
		t.Fatalf("rhythm_fleet_pending_jobs = %v, want %d", v, res.Queue.Pending)
	}
}
