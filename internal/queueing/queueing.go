// Package queueing provides the analytic station model that underlies every
// simulated LC component: an M/M/c queue (Erlang-C waiting) whose service
// tail is lognormal. It converts an offered load and an interference
// inflation factor into a sojourn-time distribution with load-dependent
// mean, variance and p99 — the same qualitative shape as Fig. 6 of the
// paper (slow growth, then a knee near saturation).
//
// The model deliberately separates:
//   - queueing delay, which grows with utilization (Erlang-C), and
//   - service time, whose mean is inflated multiplicatively by interference
//     and whose variability (CV) grows with both load and interference.
package queueing

import (
	"fmt"

	"rhythm/internal/sim"
)

// Station models one service component deployed with c parallel workers.
type Station struct {
	// BaseService is the uncontended mean service time per request in
	// seconds at the nominal frequency.
	BaseService float64
	// BaseCV is the uncontended service-time coefficient of variation.
	BaseCV float64
	// Workers is the number of parallel servers (threads pinned to cores).
	Workers int
	// LoadCVGrowth scales how much the sojourn CV grows as utilization
	// approaches 1; components with bursty behaviour (MySQL in the paper)
	// use larger values than steady ones (Amoeba).
	LoadCVGrowth float64
	// ServiceLoadFactor inflates the mean service time itself as load
	// rises (lock and buffer-pool contention in database-like
	// components): service *= 1 + factor*rho^2. Zero for components
	// whose per-request work is load-independent.
	ServiceLoadFactor float64
}

// Validate reports a descriptive error when the station parameters are
// unusable.
func (s Station) Validate() error {
	if s.BaseService <= 0 {
		return fmt.Errorf("queueing: base service must be positive, got %g", s.BaseService)
	}
	if s.BaseCV < 0 {
		return fmt.Errorf("queueing: base CV must be non-negative, got %g", s.BaseCV)
	}
	if s.Workers <= 0 {
		return fmt.Errorf("queueing: workers must be positive, got %d", s.Workers)
	}
	return nil
}

// ErlangC returns the probability that an arriving request must wait in an
// M/M/c queue with offered load a = lambda/mu and c servers. It uses the
// numerically stable iterative form of the Erlang-B recursion.
func ErlangC(c int, a float64) float64 {
	if c <= 0 {
		return 1
	}
	if a <= 0 {
		return 0
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	// Erlang-B via recursion: B(0)=1; B(k) = a*B(k-1)/(k + a*B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	// Erlang-C from Erlang-B.
	return b / (1 - rho*(1-b))
}

// Sojourn is the analytic sojourn-time distribution of a station at a given
// operating point.
type Sojourn struct {
	MeanWait    float64 // mean queueing delay, seconds
	MeanService float64 // mean (inflated) service time, seconds
	CV          float64 // coefficient of variation of the total sojourn
	Utilization float64 // rho = lambda / (c * mu')
	dist        sim.Lognormal
}

// Mean returns the mean sojourn time (wait + service).
func (s Sojourn) Mean() float64 { return s.MeanWait + s.MeanService }

// P99 returns the analytic 99th percentile of the sojourn distribution.
func (s Sojourn) P99() float64 { return s.dist.Quantile(0.99) }

// Quantile returns the q-quantile of the sojourn distribution.
func (s Sojourn) Quantile(q float64) float64 { return s.dist.Quantile(q) }

// Sample draws one sojourn time.
func (s Sojourn) Sample(r *sim.RNG) float64 { return s.dist.Sample(r) }

// LogParams exposes the log-space lognormal parameters so hot paths can
// inline exp(mu + sigma*normal) — bit-identical to Sample — without the
// struct copy and method dispatch.
func (s Sojourn) LogParams() (mu, sigma float64) { return s.dist.LogParams() }

// maxUtilization caps the modeled utilization so that the system stays
// (barely) stable even when callers push the offered load to or beyond the
// nominal maximum: real servers shed latency to 'infinite' queues slowly,
// and the controller must still read finite latencies at 100% load.
const maxUtilization = 0.985

// At returns the sojourn distribution when requests arrive at rate lambda
// (per second) and interference inflates the mean service time by the
// factor inflate (>= 1) and the service-time CV by cvInflate (>= 1).
// freqScale scales the service rate for DVFS (1 = nominal frequency).
//
// Degenerate operating points are clamped rather than propagated: a
// negative or NaN lambda models as an idle station (rate 0), matching how
// a load pattern that briefly computes a nonsensical rate should read —
// no offered load — instead of poisoning the lognormal fit with NaNs and
// panicking deep inside NewLognormal.
func (s Station) At(lambda, inflate, cvInflate, freqScale float64) Sojourn {
	if !(lambda > 0) {
		lambda = 0 // negative or NaN offered load: idle
	}
	if inflate < 1 {
		inflate = 1
	}
	if cvInflate < 1 {
		cvInflate = 1
	}
	if freqScale <= 0 {
		freqScale = 1
	}
	service := s.BaseService * inflate / freqScale
	if s.ServiceLoadFactor > 0 {
		// Internal contention grows with nominal utilization.
		rhoNom := lambda * service / float64(s.Workers)
		if rhoNom > 1 {
			rhoNom = 1
		}
		service *= 1 + s.ServiceLoadFactor*rhoNom*rhoNom
	}
	mu := 1 / service
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(s.Workers)
	if rho > maxUtilization {
		rho = maxUtilization
		a = rho * float64(s.Workers)
	}
	pWait := ErlangC(s.Workers, a)
	// Mean M/M/c waiting time: Pwait / (c*mu - lambda).
	meanWait := 0.0
	if denom := float64(s.Workers)*mu - a*mu; denom > 0 {
		meanWait = pWait / denom
	}
	// Sojourn CV: base service variability, amplified by utilization
	// (queueing adds variance) and by interference burstiness. Real
	// servers shed or reject work before their tails become unbounded,
	// so the CV saturates at maxCV.
	const maxCV = 2.0
	cv := s.BaseCV * cvInflate * (1 + s.LoadCVGrowth*rho*rho*rho*rho/(1-rho+0.05))
	if cv > maxCV {
		cv = maxCV
	}
	mean := meanWait + service
	return Sojourn{
		MeanWait:    meanWait,
		MeanService: service,
		CV:          cv,
		Utilization: rho,
		dist:        sim.NewLognormal(mean, cv),
	}
}

// Solo returns the uncontended sojourn distribution at arrival rate lambda.
func (s Station) Solo(lambda float64) Sojourn { return s.At(lambda, 1, 1, 1) }

// MaxRate returns the arrival rate at which the station saturates
// (utilization = 1) without interference.
func (s Station) MaxRate() float64 {
	return float64(s.Workers) / s.BaseService
}

// P99 of a path: given per-stage sojourns, the end-to-end p99 is estimated
// by sampling because stage distributions are dependent through load but
// modeled independent here; the analytic convolution of lognormals has no
// closed form.
//
// PathP99 estimates the p99 of the sum of the given sojourns using n Monte
// Carlo samples from r. It allocates a fresh sample buffer per call; tight
// loops should hold a PathEstimator (or at least a scratch buffer and
// PathP99Into).
func PathP99(stages []Sojourn, n int, r *sim.RNG) float64 {
	p, _ := PathP99Into(nil, stages, n, r)
	return p
}

// pathEstimatorMaxStackStages bounds the stack-resident SoA scratch
// PathP99Into flattens stage parameters into; deeper paths (no real
// service comes close) fall back to heap slices.
const pathEstimatorMaxStackStages = 16

// PathP99Into is PathP99 with a caller-owned scratch buffer: the n path
// sums are written into buf (grown only when cap(buf) < n) and the
// possibly-grown buffer is returned for the next call, so a sweep that
// estimates many operating points allocates once.
//
// Ownership: the returned slice aliases buf's storage, holds the n path
// sums partially reordered by quantile selection (NOT sorted), and is
// overwritten by the next call; callers that need the samples must copy
// them. The estimate is identical to the seed implementation's
// sort-then-interpolate — same draws in the same frozen RNG order (one
// normal per stage per draw, sim.SumLognormals), same order statistics,
// bit-for-bit — but runs in O(n) via sim.SelectQuantile and the batched
// structure-of-arrays sample kernel instead of per-draw method dispatch
// plus an O(n log n) sort. See DESIGN.md §9.
func PathP99Into(buf []float64, stages []Sojourn, n int, r *sim.RNG) (float64, []float64) {
	if len(stages) == 0 || n <= 0 {
		return 0, buf
	}
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	var muArr, sgArr [pathEstimatorMaxStackStages]float64
	var mu, sg []float64
	if len(stages) <= pathEstimatorMaxStackStages {
		mu, sg = muArr[:len(stages)], sgArr[:len(stages)]
	} else {
		mu, sg = make([]float64, len(stages)), make([]float64, len(stages))
	}
	for i, s := range stages {
		mu[i], sg[i] = s.dist.LogParams()
	}
	sim.SumLognormals(buf, mu, sg, r)
	return sim.SelectQuantile(buf, 0.99), buf
}

// PathEstimator is the reusable form of the Monte Carlo path-tail
// estimator: it owns the flattened structure-of-arrays lognormal
// parameters and the sample scratch, so a sweep that estimates many
// operating points pays zero allocations after the first call. Not safe
// for concurrent use; each worker owns its estimator, mirroring the
// one-RNG-per-worker rule.
type PathEstimator struct {
	mu    []float64
	sigma []float64
	buf   []float64
}

// SetStages flattens the per-stage lognormal parameters into the
// estimator's scratch. Call it whenever the operating point changes; the
// stages slice is not retained.
func (pe *PathEstimator) SetStages(stages []Sojourn) {
	pe.mu = pe.mu[:0]
	pe.sigma = pe.sigma[:0]
	for _, s := range stages {
		mu, sg := s.dist.LogParams()
		pe.mu = append(pe.mu, mu)
		pe.sigma = append(pe.sigma, sg)
	}
}

// Quantile estimates the q-quantile of the path sum from n Monte Carlo
// draws. Draw order and produced bits are identical to sampling each
// stage's Sojourn.Sample per draw and sorting (the frozen contract,
// RNG.NormFloat64); the estimate is computed by selection in O(n).
func (pe *PathEstimator) Quantile(q float64, n int, r *sim.RNG) float64 {
	if len(pe.mu) == 0 || n <= 0 {
		return 0
	}
	if cap(pe.buf) < n {
		pe.buf = make([]float64, n)
	}
	pe.buf = pe.buf[:n]
	sim.SumLognormals(pe.buf, pe.mu, pe.sigma, r)
	return sim.SelectQuantile(pe.buf, q)
}

// P99 is Quantile at 0.99, the repo's standard tail statistic.
func (pe *PathEstimator) P99(n int, r *sim.RNG) float64 {
	return pe.Quantile(0.99, n, r)
}
