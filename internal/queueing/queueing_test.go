package queueing

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rhythm/internal/sim"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic value: c=10, a=8 Erlangs -> P(wait) ~ 0.409.
	if got := ErlangC(10, 8); math.Abs(got-0.409) > 0.005 {
		t.Fatalf("ErlangC(10,8) = %v, want ~0.409", got)
	}
	// Single server: M/M/1 P(wait) = rho.
	if got := ErlangC(1, 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ErlangC(1,0.5) = %v, want 0.5", got)
	}
}

func TestErlangCBoundaries(t *testing.T) {
	if ErlangC(5, 0) != 0 {
		t.Fatal("no load should mean no waiting")
	}
	if ErlangC(5, 5) != 1 {
		t.Fatal("saturated queue should always wait")
	}
	if ErlangC(0, 1) != 1 {
		t.Fatal("no servers should always wait")
	}
	if ErlangC(5, 100) != 1 {
		t.Fatal("overloaded queue should always wait")
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		c := 1 + r.Intn(40)
		a1 := r.Float64() * float64(c) * 0.95
		a2 := a1 + r.Float64()*(float64(c)*0.99-a1)
		return ErlangC(c, a1) <= ErlangC(c, a2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErlangCMonotoneInServers(t *testing.T) {
	// More servers at the same offered load wait less.
	for c := 2; c <= 30; c++ {
		if ErlangC(c, 1.5) > ErlangC(c-1, 1.5)+1e-12 {
			t.Fatalf("ErlangC not decreasing in c at c=%d", c)
		}
	}
}

func defaultStation() Station {
	return Station{BaseService: 0.010, BaseCV: 0.4, Workers: 8, LoadCVGrowth: 0.8}
}

func TestStationValidate(t *testing.T) {
	if err := defaultStation().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Station{
		{BaseService: 0, BaseCV: 1, Workers: 1},
		{BaseService: 1, BaseCV: -1, Workers: 1},
		{BaseService: 1, BaseCV: 1, Workers: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: invalid station accepted", i)
		}
	}
}

func TestSojournGrowsWithLoad(t *testing.T) {
	s := defaultStation()
	max := s.MaxRate()
	prevMean, prevP99 := 0.0, 0.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
		sj := s.Solo(frac * max)
		if sj.Mean() <= prevMean {
			t.Fatalf("mean sojourn not increasing at load %v", frac)
		}
		if sj.P99() <= prevP99 {
			t.Fatalf("p99 not increasing at load %v", frac)
		}
		prevMean, prevP99 = sj.Mean(), sj.P99()
	}
}

func TestSojournMinimumIsServiceTime(t *testing.T) {
	s := defaultStation()
	sj := s.Solo(0.01 * s.MaxRate())
	if sj.Mean() < s.BaseService {
		t.Fatalf("mean %v below base service %v", sj.Mean(), s.BaseService)
	}
	if sj.Mean() > s.BaseService*1.05 {
		t.Fatalf("near-idle mean %v should be close to base %v", sj.Mean(), s.BaseService)
	}
}

func TestInterferenceInflatesSojourn(t *testing.T) {
	s := defaultStation()
	lambda := 0.5 * s.MaxRate()
	solo := s.Solo(lambda)
	inflated := s.At(lambda, 1.5, 1.2, 1)
	if inflated.Mean() <= solo.Mean() {
		t.Fatal("interference should inflate mean sojourn")
	}
	if inflated.P99() <= solo.P99() {
		t.Fatal("interference should inflate p99")
	}
	// Inflation also raises utilization (same arrivals, slower service).
	if inflated.Utilization <= solo.Utilization {
		t.Fatal("interference should raise utilization")
	}
}

func TestDVFSSlowdown(t *testing.T) {
	s := defaultStation()
	lambda := 0.4 * s.MaxRate()
	fast := s.At(lambda, 1, 1, 1.0)
	slow := s.At(lambda, 1, 1, 0.6) // 60% frequency
	if slow.Mean() <= fast.Mean() {
		t.Fatal("reducing frequency should slow the station")
	}
	if got, want := slow.MeanService, fast.MeanService/0.6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("service scaling: got %v want %v", got, want)
	}
}

func TestOverloadStaysFinite(t *testing.T) {
	s := defaultStation()
	sj := s.At(10*s.MaxRate(), 2, 2, 1)
	if math.IsInf(sj.Mean(), 0) || math.IsNaN(sj.Mean()) {
		t.Fatalf("overloaded sojourn not finite: %v", sj.Mean())
	}
	if sj.Utilization > 0.99 {
		t.Fatalf("utilization cap not applied: %v", sj.Utilization)
	}
}

func TestSojournSamplingMatchesAnalytic(t *testing.T) {
	s := defaultStation()
	sj := s.Solo(0.6 * s.MaxRate())
	r := sim.NewRNG(3)
	var w sim.Welford
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = sj.Sample(r)
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-sj.Mean())/sj.Mean() > 0.03 {
		t.Fatalf("sample mean %v vs analytic %v", w.Mean(), sj.Mean())
	}
	emp := sim.Quantile(xs, 0.99)
	if math.Abs(emp-sj.P99())/sj.P99() > 0.08 {
		t.Fatalf("sample p99 %v vs analytic %v", emp, sj.P99())
	}
}

func TestCVGrowsWithLoad(t *testing.T) {
	s := defaultStation()
	lo := s.Solo(0.2 * s.MaxRate())
	hi := s.Solo(0.9 * s.MaxRate())
	if hi.CV <= lo.CV {
		t.Fatalf("CV should grow with load: %v vs %v", hi.CV, lo.CV)
	}
}

func TestPathP99AtLeastSingleStage(t *testing.T) {
	s := defaultStation()
	sj := s.Solo(0.5 * s.MaxRate())
	r := sim.NewRNG(7)
	one := PathP99([]Sojourn{sj}, 20000, r)
	two := PathP99([]Sojourn{sj, sj}, 20000, sim.NewRNG(7))
	if two <= one {
		t.Fatalf("two stages should have higher p99: %v vs %v", two, one)
	}
	if PathP99(nil, 100, r) != 0 {
		t.Fatal("empty path should be 0")
	}
}

func TestAtClampsDegenerateInputs(t *testing.T) {
	s := defaultStation()
	sj := s.At(0.5*s.MaxRate(), 0.5, 0.1, -1) // inflate<1, cvInflate<1, freq<=0
	solo := s.Solo(0.5 * s.MaxRate())
	if math.Abs(sj.Mean()-solo.Mean()) > 1e-12 {
		t.Fatal("degenerate inputs should clamp to solo behaviour")
	}
}

// TestAtClampsDegenerateLambda: negative or NaN offered load must model as
// an idle station — finite, NaN-free, and equal to the true zero-load
// operating point — not poison the lognormal fit.
func TestAtClampsDegenerateLambda(t *testing.T) {
	s := defaultStation()
	idle := s.Solo(0)
	for name, lambda := range map[string]float64{
		"negative": -100,
		"nan":      math.NaN(),
		"neg-inf":  math.Inf(-1),
	} {
		sj := s.At(lambda, 1, 1, 1)
		if math.IsNaN(sj.Mean()) || math.IsInf(sj.Mean(), 0) {
			t.Fatalf("%s lambda: mean %v not finite", name, sj.Mean())
		}
		if sj.Mean() != idle.Mean() || sj.Utilization != idle.Utilization {
			t.Fatalf("%s lambda: got mean %v util %v, want idle point mean %v util %v",
				name, sj.Mean(), sj.Utilization, idle.Mean(), idle.Utilization)
		}
		if sj.P99() != idle.P99() {
			t.Fatalf("%s lambda: p99 %v, want %v", name, sj.P99(), idle.P99())
		}
	}
}

// seedPathP99 is the pre-optimization implementation, kept verbatim as the
// differential oracle: per-draw Sojourn.Sample dispatch, full sort,
// interpolated quantile. PathP99Into and PathEstimator must reproduce its
// output bit-for-bit AND leave the RNG at the same stream position.
func seedPathP99(stages []Sojourn, n int, r *sim.RNG) float64 {
	if len(stages) == 0 || n <= 0 {
		return 0
	}
	buf := make([]float64, n)
	for i := range buf {
		t := 0.0
		for _, s := range stages {
			t += s.Sample(r)
		}
		buf[i] = t
	}
	sort.Float64s(buf)
	return sim.QuantileSorted(buf, 0.99)
}

func pathStages(k int) []Sojourn {
	s := defaultStation()
	stages := make([]Sojourn, k)
	for i := range stages {
		frac := 0.3 + 0.15*float64(i)
		stages[i] = s.At(frac*s.MaxRate(), 1+0.1*float64(i), 1+0.05*float64(i), 1)
	}
	return stages
}

func TestPathP99IntoMatchesSeedImplementation(t *testing.T) {
	for _, k := range []int{1, 3, 4, 7} {
		for _, n := range []int{1, 2, 100, 1000, 6000} {
			stages := pathStages(k)

			ref := sim.NewRNG(2020).Fork("path")
			want := seedPathP99(stages, n, ref)

			rng := sim.NewRNG(2020).Fork("path")
			got, _ := PathP99Into(nil, stages, n, rng)

			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("k=%d n=%d: PathP99Into = %x, seed oracle = %x",
					k, n, math.Float64bits(got), math.Float64bits(want))
			}
			if a, b := ref.Uint64(), rng.Uint64(); a != b {
				t.Fatalf("k=%d n=%d: RNG stream diverged after estimate", k, n)
			}
		}
	}
}

func TestPathEstimatorMatchesSeedImplementation(t *testing.T) {
	var pe PathEstimator
	for _, k := range []int{1, 4, 7} {
		stages := pathStages(k)
		pe.SetStages(stages)
		for _, n := range []int{1, 100, 5000} {
			ref := sim.NewRNG(99).Fork("pe")
			want := seedPathP99(stages, n, ref)

			rng := sim.NewRNG(99).Fork("pe")
			got := pe.P99(n, rng)

			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("k=%d n=%d: PathEstimator.P99 = %x, seed oracle = %x",
					k, n, math.Float64bits(got), math.Float64bits(want))
			}
			if a, b := ref.Uint64(), rng.Uint64(); a != b {
				t.Fatalf("k=%d n=%d: RNG stream diverged after estimate", k, n)
			}
		}
	}
	if pe.P99(0, sim.NewRNG(1)) != 0 {
		t.Fatal("n<=0 should return 0")
	}
	pe.SetStages(nil)
	if pe.P99(100, sim.NewRNG(1)) != 0 {
		t.Fatal("no stages should return 0")
	}
}

// TestPathEstimatorZeroAllocs: after the first call grows the scratch,
// repeated estimates at the same n must not allocate.
func TestPathEstimatorZeroAllocs(t *testing.T) {
	stages := pathStages(4)
	var pe PathEstimator
	rng := sim.NewRNG(5)
	pe.SetStages(stages)
	pe.P99(1000, rng) // warm the scratch
	allocs := testing.AllocsPerRun(20, func() {
		pe.SetStages(stages)
		pe.P99(1000, rng)
	})
	if allocs != 0 {
		t.Fatalf("PathEstimator allocates %.1f per op, want 0", allocs)
	}
}

func TestMaxRate(t *testing.T) {
	s := Station{BaseService: 0.010, BaseCV: 0.3, Workers: 10}
	if got := s.MaxRate(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("MaxRate = %v, want 1000", got)
	}
}
