package workload

import (
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// specJSONTags walks the Spec type tree and collects every json field
// name the strict decoder accepts.
func specJSONTags() []string {
	seen := map[string]bool{}
	visited := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		for t.Kind() == reflect.Ptr || t.Kind() == reflect.Slice {
			t = t.Elem()
		}
		if t.Kind() != reflect.Struct || visited[t] {
			return
		}
		visited[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" || tag == "-" {
				continue
			}
			seen[tag] = true
			walk(f.Type)
		}
	}
	walk(reflect.TypeOf(Spec{}))
	out := make([]string, 0, len(seen))
	for tag := range seen {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// TestScenariosDocCoversEverySpecField enforces the SCENARIOS.md
// acceptance criterion: every json field the loader accepts appears in
// the format reference as a backtick-quoted name. A field added to the
// spec without documentation fails here by construction.
func TestScenariosDocCoversEverySpecField(t *testing.T) {
	doc, err := os.ReadFile("../../SCENARIOS.md")
	if err != nil {
		t.Fatalf("SCENARIOS.md must ship with the spec loader: %v", err)
	}
	text := string(doc)
	var missing []string
	for _, tag := range specJSONTags() {
		if !strings.Contains(text, "`"+tag+"`") {
			missing = append(missing, tag)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("SCENARIOS.md does not document spec fields: %v\n(each must appear backtick-quoted)", missing)
	}
}

// TestScenariosDocCoversProcessesAndDefaults: the arrival process names
// and the documented defaults must match the loader's constants.
func TestScenariosDocCoversProcessesAndDefaults(t *testing.T) {
	doc, err := os.ReadFile("../../SCENARIOS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, want := range []string{
		"`" + ArrivalConstant + "`", "`" + ArrivalPoisson + "`", "`" + ArrivalMMPP + "`",
		"`" + ArrivalDiurnal + "`", "`" + ArrivalTrace + "`",
		fmt.Sprintf("version %d", SpecVersion),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("SCENARIOS.md missing %q", want)
		}
	}
}
