package workload

import (
	"math"
	"testing"

	"rhythm/internal/cluster"
)

func TestCatalogValidates(t *testing.T) {
	svcs := Services()
	if len(svcs) != 6 {
		t.Fatalf("Table 1 lists 6 LC workloads, got %d", len(svcs))
	}
	for _, s := range svcs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTable1Parameters(t *testing.T) {
	cases := []struct {
		name       string
		maxQPS     float64
		slaMS      float64
		containers int
		pods       []string
	}{
		{"E-commerce", 1300, 250, 16, []string{"Haproxy", "Tomcat", "Amoeba", "MySQL"}},
		{"Redis", 86000, 1.15, 18, []string{"Master", "Slave"}},
		{"Solr", 400, 350, 15, []string{"Apache+Solr", "Zookeeper"}},
		{"Elasticsearch", 750, 200, 12, []string{"Index", "Kibana"}},
		{"Elgg", 200, 320, 8, []string{"Nginx+PHP-FPM", "Memcached", "MySQL"}},
		{"SNMS", 1500, 380, 30, []string{"UserService", "frontend", "MediaService"}},
	}
	for _, tc := range cases {
		s, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.MaxLoadQPS != tc.maxQPS {
			t.Errorf("%s: max load %v, want %v", tc.name, s.MaxLoadQPS, tc.maxQPS)
		}
		if got := s.SLATable1.Seconds() * 1000; math.Abs(got-tc.slaMS) > 1e-9 {
			t.Errorf("%s: SLA %vms, want %vms", tc.name, got, tc.slaMS)
		}
		if s.Containers != tc.containers {
			t.Errorf("%s: containers %d, want %d", tc.name, s.Containers, tc.containers)
		}
		for _, p := range tc.pods {
			if s.Component(p) == nil {
				t.Errorf("%s: missing Servpod %s", tc.name, p)
			}
		}
		if len(s.Components) != len(tc.pods) {
			t.Errorf("%s: %d Servpods, want %d", tc.name, len(s.Components), len(tc.pods))
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Nope"); err == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestStationsSaturateNearMaxLoad(t *testing.T) {
	// Each station must still be stable at max load (util < 1) but close
	// to saturation (util > 0.7) so that MaxLoad means what Table 1 says.
	for _, s := range Services() {
		for _, c := range s.Components {
			rate := c.Station.MaxRate()
			util := s.MaxLoadQPS / rate
			if util >= 1 {
				t.Errorf("%s/%s: unstable at max load (util %.2f)", s.Name, c.Name, util)
			}
			// Worker counts are integral, so very fast components at low
			// QPS (Memcached at 200 QPS) keep granularity headroom.
			if util < 0.35 {
				t.Errorf("%s/%s: too much headroom at max load (util %.2f)", s.Name, c.Name, util)
			}
		}
	}
}

func TestGraphLatencyChain(t *testing.T) {
	g := chain("a", "b", "c")
	lat := g.Latency(func(c string) float64 {
		return map[string]float64{"a": 1, "b": 2, "c": 3}[c]
	})
	if lat != 6 {
		t.Fatalf("chain latency = %v, want 6", lat)
	}
}

func TestGraphLatencyFanOut(t *testing.T) {
	g := &Node{Comp: "f", Parallel: true,
		Children: []*Node{{Comp: "u"}, {Comp: "m"}}}
	lat := g.Latency(func(c string) float64 {
		return map[string]float64{"f": 1, "u": 10, "m": 4}[c]
	})
	if lat != 11 { // frontend + slowest branch
		t.Fatalf("fan-out latency = %v, want 11", lat)
	}
}

func TestGraphPaths(t *testing.T) {
	seq := chain("a", "b", "c")
	p := seq.Paths()
	if len(p) != 1 || len(p[0]) != 3 {
		t.Fatalf("chain paths = %v", p)
	}
	fan := SNMS().Graph
	paths := fan.Paths()
	if len(paths) != 2 {
		t.Fatalf("SNMS should have 2 paths, got %v", paths)
	}
	for _, path := range paths {
		if path[0] != "frontend" {
			t.Fatalf("paths must start at frontend: %v", path)
		}
	}
}

func TestGraphComponents(t *testing.T) {
	got := SNMS().Graph.Components()
	if len(got) != 3 {
		t.Fatalf("components = %v", got)
	}
}

func TestDemandScalesWithLoad(t *testing.T) {
	c := ECommerce().Component("MySQL")
	d50 := c.DemandAt(0.5)
	d100 := c.DemandAt(1.0)
	if d50[cluster.ResMemBW] >= d100[cluster.ResMemBW] {
		t.Fatal("memBW demand should grow with load")
	}
	// Memory footprint and LLC working set are load-independent.
	if d50[cluster.ResMemory] != d100[cluster.ResMemory] {
		t.Fatal("memory footprint should not scale with load")
	}
	if d50[cluster.ResLLC] != d100[cluster.ResLLC] {
		t.Fatal("LLC working set should not scale with load")
	}
}

func TestFig2SensitivityOrderings(t *testing.T) {
	// §2's characterization constraints, encoded as catalog invariants.
	ec := ECommerce()
	mysql, tomcat := ec.Component("MySQL"), ec.Component("Tomcat")
	if mysql.Sens[cluster.ResMemBW] <= tomcat.Sens[cluster.ResMemBW] {
		t.Error("MySQL must be more stream-dram sensitive than Tomcat (Fig. 2b)")
	}
	if mysql.Sens[cluster.ResLLC] <= tomcat.Sens[cluster.ResLLC] {
		t.Error("MySQL must be more stream-llc sensitive than Tomcat (Fig. 2b)")
	}
	if tomcat.FreqSens <= mysql.FreqSens {
		t.Error("Tomcat must be more DVFS sensitive than MySQL (Fig. 2b)")
	}

	rd := Redis()
	master, slave := rd.Component("Master"), rd.Component("Slave")
	for _, r := range []cluster.Resource{cluster.ResCPU, cluster.ResLLC, cluster.ResMemBW, cluster.ResNetBW} {
		if master.Sens[r] <= slave.Sens[r] {
			t.Errorf("Master must be more %s sensitive than Slave (Fig. 2a)", r)
		}
	}

	// Zookeeper is the most tolerant pod in the evaluation.
	zk := Solr().Component("Zookeeper")
	as := Solr().Component("Apache+Solr")
	for _, r := range []cluster.Resource{cluster.ResCPU, cluster.ResLLC, cluster.ResMemBW} {
		if zk.Sens[r] >= as.Sens[r] {
			t.Errorf("Zookeeper should be less %s sensitive than Apache+Solr", r)
		}
	}
}

func TestSNMSMicroserviceCounts(t *testing.T) {
	s := SNMS()
	total := 0
	for _, c := range s.Components {
		total += c.Microservices
	}
	if total != 30 {
		t.Fatalf("SNMS has %d microservices, want 30", total)
	}
	if s.Component("UserService").Microservices != 14 ||
		s.Component("MediaService").Microservices != 13 ||
		s.Component("frontend").Microservices != 3 {
		t.Fatal("SNMS Servpod grouping mismatch (§5.3.2: 14/13/3)")
	}
	// §5.3.2: 20 cores and 64 GB per Servpod.
	for _, c := range s.Components {
		if c.Cores != 20 || c.MemoryGB != 64 {
			t.Errorf("%s: %d cores / %v GB, want 20 / 64", c.Name, c.Cores, c.MemoryGB)
		}
	}
}

func TestValidateCatchesBrokenServices(t *testing.T) {
	s := ECommerce()
	s.Graph.Children[0].Comp = "Ghost"
	if err := s.Validate(); err == nil {
		t.Fatal("graph with unknown component accepted")
	}

	s2 := ECommerce()
	s2.Components = append(s2.Components, s2.Components[0])
	if err := s2.Validate(); err == nil {
		t.Fatal("duplicate component accepted")
	}

	s3 := ECommerce()
	s3.Components[0].Station.Workers = 0
	if err := s3.Validate(); err == nil {
		t.Fatal("invalid station accepted")
	}

	s4 := ECommerce()
	s4.MaxLoadQPS = 1e9 // beyond every station's capacity
	if err := s4.Validate(); err == nil {
		t.Fatal("saturating max load accepted")
	}
}

func TestComponentLookup(t *testing.T) {
	s := ECommerce()
	if s.Component("MySQL") == nil || s.Component("Ghost") != nil {
		t.Fatal("component lookup broken")
	}
	names := s.ComponentNames()
	if len(names) != 4 || names[0] != "Haproxy" {
		t.Fatalf("names = %v", names)
	}
}
