// Package workload models the latency-critical services of Table 1 as
// component DAGs. Each component is a queueing station (internal/queueing)
// plus a per-resource interference-sensitivity vector calibrated to
// reproduce the orderings observed in §2 of the paper (Fig. 2): Redis
// Master ≫ Slave under stream-llc/stream-dram/CPU-stress, MySQL ≫ Tomcat
// under stream-dram/stream-llc/iperf, Tomcat ≫ MySQL under DVFS, and so on.
//
// A Servpod (§3.1) is the set of components of one LC service placed on the
// same physical machine. In the default placements below each component is
// its own Servpod on its own machine, except SNMS where each Servpod
// aggregates 13/3/14 microservices, mirroring §5.3.2.
//
// Beyond the Table 1 catalog, the package reads workload-spec scenario
// files (spec.go, SCENARIOS.md): versioned JSON or YAML-subset documents
// describing a service (catalog reference or custom DAG), multi-class
// client mixes with per-class arrival processes and SLOs, and the run
// shape. Specs validate with field-exact FieldErrors and materialize
// through BuildService and LoadPattern.
//
// # Determinism and thread safety
//
// Catalog services and decoded specs are plain immutable data once
// built. Spec-built patterns draw randomness only through sim.SubSeed
// substreams labeled "scenario/<name>/client/<class>", so scenario runs
// are byte-identical across -jobs counts and repeats at a fixed seed,
// and every materialized pattern is safe for concurrent readers.
package workload

import (
	"fmt"
	"math"
	"time"

	"rhythm/internal/cluster"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
)

// Component is one LC service component (one Servpod in the default
// placement).
type Component struct {
	Name string

	// Station is the uncontended queueing model; Workers is derived from
	// the service max load so that utilization ≈ 0.95 at MaxLoad.
	Station queueing.Station

	// Sens is the latency sensitivity to interference pressure on each
	// shared resource: the mean-service inflation contributed by unit
	// normalized pressure. Calibrated against Fig. 2.
	Sens cluster.Vector

	// FreqSens is the DVFS sensitivity exponent: halving frequency
	// multiplies service time by 2^FreqSens for the component's own
	// cores (applied when the frequency subcontroller throttles).
	FreqSens float64

	// CVSens scales how much interference inflates the sojourn CV.
	CVSens float64

	// Reserved LC resources for this component's containers.
	Cores    int
	LLCWays  int
	MemoryGB float64

	// Own demand on non-partitioned resources at max load; scales
	// linearly with the offered load fraction.
	MaxMemBWGBs float64
	MaxNetGbps  float64

	// Microservices counts the microservices aggregated in this Servpod
	// (1 for ordinary components, 13/3/14 for SNMS).
	Microservices int
}

// DemandAt returns the component's own demand vector at load fraction f.
func (c *Component) DemandAt(f float64) cluster.Vector {
	f = sim.Clamp(f, 0, 1.2)
	var v cluster.Vector
	v[cluster.ResCPU] = float64(c.Cores) * f
	v[cluster.ResLLC] = float64(c.LLCWays)
	v[cluster.ResMemBW] = c.MaxMemBWGBs * f
	v[cluster.ResNetBW] = c.MaxNetGbps * f
	v[cluster.ResMemory] = c.MemoryGB
	return v
}

// Node is a vertex in the request's service call path. Children are the
// downstream calls issued by this component; when Parallel is set they are
// issued concurrently (fan-out) and the node waits for the slowest child,
// otherwise they are visited in sequence.
type Node struct {
	Comp     string
	Parallel bool
	Children []*Node
}

// Latency evaluates the end-to-end latency of a request given per-component
// sojourn samples.
func (n *Node) Latency(sojourn func(comp string) float64) float64 {
	t := sojourn(n.Comp)
	if len(n.Children) == 0 {
		return t
	}
	if n.Parallel {
		worst := 0.0
		for _, ch := range n.Children {
			if l := ch.Latency(sojourn); l > worst {
				worst = l
			}
		}
		return t + worst
	}
	for _, ch := range n.Children {
		t += ch.Latency(sojourn)
	}
	return t
}

// Paths returns every root-to-leaf component path of the call graph.
func (n *Node) Paths() [][]string {
	if len(n.Children) == 0 {
		return [][]string{{n.Comp}}
	}
	if n.Parallel {
		var out [][]string
		for _, ch := range n.Children {
			for _, p := range ch.Paths() {
				out = append(out, append([]string{n.Comp}, p...))
			}
		}
		return out
	}
	// Sequential children: a single path visiting all of them in order.
	path := []string{n.Comp}
	for _, ch := range n.Children {
		sub := ch.Paths()
		if len(sub) != 1 {
			// Mixed sequential-over-parallel shapes are not needed by
			// the Table 1 services; flatten on the first subpath.
			path = append(path, sub[0]...)
			continue
		}
		path = append(path, sub[0]...)
	}
	return [][]string{path}
}

// Components returns the set of component names reachable from n.
func (n *Node) Components() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Node)
	walk = func(m *Node) {
		if !seen[m.Comp] {
			seen[m.Comp] = true
			out = append(out, m.Comp)
		}
		for _, ch := range m.Children {
			walk(ch)
		}
	}
	walk(n)
	return out
}

// chain builds a sequential call path through the named components.
func chain(comps ...string) *Node {
	if len(comps) == 0 {
		return nil
	}
	root := &Node{Comp: comps[0]}
	cur := root
	for _, c := range comps[1:] {
		next := &Node{Comp: c}
		cur.Children = []*Node{next}
		cur = next
	}
	return root
}

// Service is one LC workload from Table 1.
type Service struct {
	Name       string
	Domain     string
	MaxLoadQPS float64
	// SLATable1 is the tail-latency target printed in Table 1 of the
	// paper (measured on the authors' testbed). The operational SLA used
	// by controllers in this reproduction is derived the same way the
	// paper derives it — worst per-second p99 during a solo run at max
	// load — because absolute latencies differ across substrates.
	SLATable1  time.Duration
	Containers int
	Components []*Component
	Graph      *Node
}

// Component returns the named component, or nil.
func (s *Service) Component(name string) *Component {
	for _, c := range s.Components {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ComponentNames returns the component names in catalog order.
func (s *Service) ComponentNames() []string {
	out := make([]string, len(s.Components))
	for i, c := range s.Components {
		out[i] = c.Name
	}
	return out
}

// Validate checks internal consistency: graph components exist, stations
// are usable, and every component saturates near (not before) MaxLoad.
func (s *Service) Validate() error {
	if s.MaxLoadQPS <= 0 {
		return fmt.Errorf("workload %s: non-positive max load", s.Name)
	}
	byName := map[string]bool{}
	for _, c := range s.Components {
		if err := c.Station.Validate(); err != nil {
			return fmt.Errorf("workload %s/%s: %w", s.Name, c.Name, err)
		}
		if byName[c.Name] {
			return fmt.Errorf("workload %s: duplicate component %s", s.Name, c.Name)
		}
		byName[c.Name] = true
		if c.Cores <= 0 {
			return fmt.Errorf("workload %s/%s: no reserved cores", s.Name, c.Name)
		}
		if rate := c.Station.MaxRate(); rate < s.MaxLoadQPS {
			return fmt.Errorf("workload %s/%s: station saturates at %.1f QPS below max load %.1f",
				s.Name, c.Name, rate, s.MaxLoadQPS)
		}
	}
	if s.Graph == nil {
		return fmt.Errorf("workload %s: nil call graph", s.Name)
	}
	for _, name := range s.Graph.Components() {
		if !byName[name] {
			return fmt.Errorf("workload %s: graph references unknown component %s", s.Name, name)
		}
	}
	return nil
}

// workers returns the station worker count that puts utilization at
// targetUtil when the component serves qps requests per second.
func workers(qps, baseService, targetUtil float64) int {
	w := int(math.Ceil(qps * baseService / targetUtil))
	if w < 1 {
		w = 1
	}
	return w
}

func sens(cpu, llc, membw, netbw float64) cluster.Vector {
	var v cluster.Vector
	v[cluster.ResCPU] = cpu
	v[cluster.ResLLC] = llc
	v[cluster.ResMemBW] = membw
	v[cluster.ResNetBW] = netbw
	return v
}

// comp builds a calibrated component. base is the uncontended mean service
// time in seconds; maxQPS the service max load; utilMax the component's
// utilization when the service runs at max load (sensitive, saturating
// components near 0.95; over-provisioned stable ones much lower — this is
// what makes Amoeba/Zookeeper flat in Fig. 6 while MySQL explodes);
// svcGrowth the load-dependent service inflation (lock contention).
func comp(name string, maxQPS, base, cv, cvGrowth, utilMax, svcGrowth float64, sv cluster.Vector,
	freqSens, cvSens float64, cores, ways int, memGB, membw, net float64) *Component {
	return &Component{
		Name: name,
		Station: queueing.Station{
			BaseService:       base,
			BaseCV:            cv,
			Workers:           workers(maxQPS, base, utilMax),
			LoadCVGrowth:      cvGrowth,
			ServiceLoadFactor: svcGrowth,
		},
		Sens:          sv,
		FreqSens:      freqSens,
		CVSens:        cvSens,
		Cores:         cores,
		LLCWays:       ways,
		MemoryGB:      memGB,
		MaxMemBWGBs:   membw,
		MaxNetGbps:    net,
		Microservices: 1,
	}
}

// ECommerce returns the TPC-W style four-tier website of Table 1:
// HAProxy → Tomcat → Amoeba → MySQL, 1300 QPS max load, 250 ms SLA.
func ECommerce() *Service {
	const q = 1300
	return &Service{
		Name:       "E-commerce",
		Domain:     "TPC-W website",
		MaxLoadQPS: q,
		SLATable1:  250 * time.Millisecond,
		Containers: 16,
		Components: []*Component{
			// HAProxy: tiny mean (<5% of overall latency per Fig. 6a)
			// but high relative variance (>20% share, Fig. 6b).
			comp("Haproxy", q, 0.0012, 0.9, 0.5, 0.55, 0, sens(0.24, 0.2, 0.144, 0.6), 1.2, 0.3, 4, 2, 4, 2, 3.0),
			// Tomcat: large mean, moderate variance; the DVFS-sensitive
			// component of Fig. 2b (416.7% above MySQL).
			comp("Tomcat", q, 0.035, 0.35, 0.35, 0.85, 0.15, sens(0.4, 0.25, 0.126, 0.15), 2.0, 0.27, 16, 6, 24, 8, 1.5),
			// Amoeba: small and very stable (smallest CoV in Fig. 6b).
			comp("Amoeba", q, 0.005, 0.15, 0.2, 0.50, 0, sens(0.16, 0.15, 0.108, 0.25), 0.8, 0.18, 4, 2, 4, 2, 1.2),
			// MySQL: steepest growth beyond ~50% load and the highest
			// variance (Fig. 6); most sensitive to stream-dram,
			// stream-llc, CPU-stress and iperf (Fig. 2b).
			comp("MySQL", q, 0.025, 0.55, 4.5, 0.75, 0.5, sens(0.64, 0.9, 0.792, 0.45), 0.9, 0.6, 12, 8, 48, 14, 1.0),
		},
		Graph: chain("Haproxy", "Tomcat", "Amoeba", "MySQL"),
	}
}

// Redis returns the fan-out key-value store: Master distributing to Slave,
// 86k QPS max load, 1.15 ms SLA.
func Redis() *Service {
	const q = 86000
	return &Service{
		Name:       "Redis",
		Domain:     "Key-value store",
		MaxLoadQPS: q,
		SLATable1:  1150 * time.Microsecond,
		Containers: 18,
		Components: []*Component{
			// Master relies on LLC, memory and network bandwidth for
			// request distribution and data operations (§2): the >28x
			// stream-llc(big) gap vs Slave comes from this vector.
			comp("Master", q, 0.00018, 0.6, 1.8, 0.78, 0.4, sens(0.48, 0.95, 0.576, 0.7), 1.1, 0.48, 8, 8, 32, 16, 4.0),
			comp("Slave", q, 0.00025, 0.3, 0.4, 0.70, 0, sens(0.12, 0.15, 0.126, 0.15), 0.6, 0.21, 8, 4, 32, 8, 2.0),
		},
		Graph: chain("Master", "Slave"),
	}
}

// Solr returns the search service: Apache+Solr fronted by Zookeeper
// coordination, 400 QPS max load, 350 ms SLA.
func Solr() *Service {
	const q = 400
	return &Service{
		Name:       "Solr",
		Domain:     "Search",
		MaxLoadQPS: q,
		SLATable1:  350 * time.Millisecond,
		Containers: 15,
		Components: []*Component{
			comp("Apache+Solr", q, 0.120, 0.4, 1.8, 0.75, 0.5, sens(0.48, 0.45, 0.36, 0.25), 1.0, 0.36, 16, 8, 48, 10, 1.5),
			// Zookeeper: the most interference-tolerant Servpod in the
			// evaluation (loadlimit 0.93, slacklimit 0.035) — Solr
			// benefits the most from Rhythm (Figs. 12-15).
			comp("Zookeeper", q, 0.008, 0.2, 0.2, 0.45, 0, sens(0.08, 0.075, 0.072, 0.1), 0.4, 0.12, 4, 2, 8, 1, 0.5),
		},
		Graph: chain("Zookeeper", "Apache+Solr"),
	}
}

// Elasticsearch returns the index engine: Index plus Kibana, 750 QPS,
// 200 ms SLA.
func Elasticsearch() *Service {
	const q = 750
	return &Service{
		Name:       "Elasticsearch",
		Domain:     "Index Engine",
		MaxLoadQPS: q,
		SLATable1:  200 * time.Millisecond,
		Containers: 12,
		Components: []*Component{
			comp("Index", q, 0.070, 0.45, 2.0, 0.72, 0.6, sens(0.48, 0.4, 0.54, 0.3), 0.9, 0.42, 16, 8, 64, 14, 1.5),
			comp("Kibana", q, 0.020, 0.3, 0.4, 0.60, 0, sens(0.24, 0.15, 0.144, 0.2), 0.7, 0.21, 6, 3, 16, 3, 1.0),
		},
		Graph: chain("Kibana", "Index"),
	}
}

// Elgg returns the social-network website: Nginx+PHP-FPM, Memcached and
// MySQL, 200 QPS, 320 ms SLA.
func Elgg() *Service {
	const q = 200
	return &Service{
		Name:       "Elgg",
		Domain:     "Social Network",
		MaxLoadQPS: q,
		SLATable1:  320 * time.Millisecond,
		Containers: 8,
		Components: []*Component{
			comp("Nginx+PHP-FPM", q, 0.090, 0.4, 0.5, 0.84, 0.2, sens(0.4, 0.3, 0.252, 0.3), 1.2, 0.3, 8, 4, 16, 4, 1.0),
			comp("Memcached", q, 0.002, 0.35, 0.3, 0.40, 0, sens(0.24, 0.4, 0.216, 0.45), 0.8, 0.24, 4, 6, 48, 6, 2.0),
			comp("MySQL", q, 0.060, 0.5, 4.0, 0.68, 0.8, sens(0.64, 0.8, 0.72, 0.4), 0.9, 0.54, 8, 6, 32, 8, 0.8),
		},
		Graph: chain("Nginx+PHP-FPM", "Memcached", "MySQL"),
	}
}

// SNMS returns the social-network microservice benchmark of §5.3.2
// (DeathStarBench): 30 microservices grouped into three Servpods —
// frontend (3 microservices), UserService (14) and MediaService (13) —
// with frontend fanning out to the other two in parallel. 1500 QPS,
// 380 ms SLA, 20 cores and 64 GB per Servpod.
func SNMS() *Service {
	const q = 1500
	s := &Service{
		Name:       "SNMS",
		Domain:     "Microservice",
		MaxLoadQPS: q,
		SLATable1:  380 * time.Millisecond,
		Containers: 30,
		Components: []*Component{
			comp("frontend", q, 0.025, 0.3, 0.5, 0.60, 0, sens(0.32, 0.25, 0.18, 0.4), 1.0, 0.24, 20, 6, 64, 6, 3.0),
			comp("UserService", q, 0.080, 0.5, 2.2, 0.70, 0.7, sens(0.64, 0.6, 0.54, 0.35), 1.0, 0.48, 20, 8, 64, 10, 2.0),
			comp("MediaService", q, 0.055, 0.45, 0.8, 0.80, 0.3, sens(0.4, 0.4, 0.36, 0.3), 0.9, 0.36, 20, 8, 64, 8, 2.0),
		},
		Graph: &Node{
			Comp:     "frontend",
			Parallel: true,
			Children: []*Node{{Comp: "UserService"}, {Comp: "MediaService"}},
		},
	}
	s.Component("frontend").Microservices = 3
	s.Component("UserService").Microservices = 14
	s.Component("MediaService").Microservices = 13
	return s
}

// Services returns the six Table 1 LC workloads in paper order.
func Services() []*Service {
	return []*Service{ECommerce(), Redis(), Solr(), Elasticsearch(), Elgg(), SNMS()}
}

// ByName returns the named service, or an error listing the catalog.
func ByName(name string) (*Service, error) {
	for _, s := range Services() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown service %q (catalog: E-commerce, Redis, Solr, Elasticsearch, Elgg, SNMS)", name)
}
