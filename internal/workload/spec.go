// Workload-spec files: the versioned scenario format documented in
// SCENARIOS.md. A Spec describes a whole co-location scenario as data —
// the LC service (a Table 1 catalog reference or a custom component DAG
// with per-stage service-time parameters), the client classes with their
// arrival processes and per-class SLOs, and the run shape (baseline load,
// duration, BE job mix) — and decodes into the existing workload types:
// Service for the DAG, loadgen.Pattern for the offered load.
//
// Validation mirrors internal/faults: every defect is a *FieldError
// naming the exact spec field in JSON-path form ("clients[1].arrival.
// process"), all defects are returned joined, and decoding is strict
// (unknown keys are errors), so a typo never silently becomes a default.
//
// # Determinism
//
// Building a pattern from a spec draws randomness only through
// sim.SubSeed substreams labeled "scenario/<name>/client/<class>", so
// every class owns an independent stream: adding, removing or reordering
// classes never perturbs another class's arrivals, and the same
// (spec, seed) pair always yields byte-identical runs for any worker
// count.

package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/loadgen"
	"rhythm/internal/queueing"
	"rhythm/internal/replay"
	"rhythm/internal/sim"
)

// SpecVersion is the workload-spec schema version this build reads and
// the only value accepted in a spec's "version" field. The rule
// (DESIGN.md §11): additive, default-preserving fields keep the version;
// any change that alters the meaning of an existing file bumps it.
const SpecVersion = 1

// Spec defaults (documented per field in SCENARIOS.md).
const (
	defaultUtilAtMax  = 0.75
	defaultLLCWays    = 2
	defaultMemoryGB   = 8.0
	defaultMemBWGBs   = 4.0
	defaultNetGbps    = 1.0
	defaultPoissonBin = 1.0 // seconds
	maxUtilAtMax      = 0.98
	rateFractionTol   = 1e-6
)

// FieldError is a spec validation failure naming the exact field it
// concerns in JSON-path form, so callers can report — and tests can pin —
// which part of a scenario file is bad.
type FieldError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *FieldError) Error() string { return "workload: spec " + e.Field + ": " + e.Reason }

// Spec is a whole scenario file: schema version, the LC service, the run
// shape and the client classes. See SCENARIOS.md for the format
// reference and shipped examples.
type Spec struct {
	// Version is the schema version; this build requires SpecVersion.
	Version int `json:"version"`
	// Name labels the scenario; it seeds the per-class RNG substreams, so
	// renaming a scenario deliberately reshuffles its arrival draws.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Service selects or defines the LC service.
	Service ServiceSpec `json:"service"`
	// Run shapes the co-location run.
	Run RunSpec `json:"run"`
	// Clients are the client classes whose weighted arrival intensities
	// compose the offered load.
	Clients []ClientSpec `json:"clients"`

	// dir resolves relative trace paths (set by LoadSpec to the spec
	// file's directory; empty means the current working directory).
	dir string
}

// ServiceSpec selects a Table 1 catalog service or defines a custom one.
// Exactly one of Catalog and Components must be used.
type ServiceSpec struct {
	// Catalog names a built-in Table 1 service (Services()); when set,
	// every other field must stay empty.
	Catalog string `json:"catalog,omitempty"`
	// Name names a custom service; it must not collide with the catalog.
	Name string `json:"name,omitempty"`
	// MaxLoadQPS is the custom service's max load (load fraction 1.0).
	MaxLoadQPS float64 `json:"max_load_qps,omitempty"`
	// SLAMs is an informational Table 1 style tail target in
	// milliseconds; the operational SLA is still derived at deploy time
	// (worst solo p99 at max load), exactly as for catalog services.
	SLAMs float64 `json:"sla_ms,omitempty"`
	// Components are the custom service's stages.
	Components []ComponentSpec `json:"components,omitempty"`
	// Graph is the request call path over the components.
	Graph *GraphNode `json:"graph,omitempty"`
}

// ComponentSpec is one custom service stage (one Servpod).
type ComponentSpec struct {
	// Name identifies the component; graph nodes reference it.
	Name string `json:"name"`
	// ServiceTime parametrizes the stage's service-time distribution.
	ServiceTime ServiceTimeSpec `json:"service_time"`
	// UtilAtMax is the stage utilization when the service runs at max
	// load (worker count is derived from it); default 0.75, max 0.98.
	UtilAtMax float64 `json:"util_at_max,omitempty"`
	// Sensitivity is the interference-sensitivity vector (see Fig. 2).
	Sensitivity SensitivitySpec `json:"sensitivity,omitempty"`
	// FreqSens is the DVFS sensitivity exponent (default 0: insensitive).
	FreqSens float64 `json:"freq_sens,omitempty"`
	// CVSens scales how much interference inflates the sojourn CV.
	CVSens float64 `json:"cv_sens,omitempty"`
	// Resources reserves LC resources for the stage's containers.
	Resources ResourceSpec `json:"resources"`
	// Microservices counts microservices aggregated in the Servpod
	// (default 1).
	Microservices int `json:"microservices,omitempty"`
}

// ServiceTimeSpec parametrizes a stage's service-time distribution by
// mean and coefficient of variation (the queueing model's mean+CV
// parametrization; the distribution family is the engine's lognormal
// fit).
type ServiceTimeSpec struct {
	// MeanMs is the uncontended mean service time in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	// CV is the service-time coefficient of variation (default 0).
	CV float64 `json:"cv,omitempty"`
	// CVGrowth adds load-dependent CV inflation (Station.LoadCVGrowth).
	CVGrowth float64 `json:"cv_growth,omitempty"`
	// LoadFactor adds load-dependent mean inflation, e.g. lock
	// contention (Station.ServiceLoadFactor).
	LoadFactor float64 `json:"load_factor,omitempty"`
}

// SensitivitySpec is the per-resource interference sensitivity: the
// mean-service inflation contributed by unit normalized pressure.
type SensitivitySpec struct {
	CPU   float64 `json:"cpu,omitempty"`
	LLC   float64 `json:"llc,omitempty"`
	MemBW float64 `json:"membw,omitempty"`
	NetBW float64 `json:"netbw,omitempty"`
}

// ResourceSpec reserves LC resources for a stage.
type ResourceSpec struct {
	// Cores is the reserved core count (required, >= 1).
	Cores int `json:"cores"`
	// LLCWays reserves cache ways (default 2).
	LLCWays int `json:"llc_ways,omitempty"`
	// MemoryGB reserves memory (default 8).
	MemoryGB float64 `json:"memory_gb,omitempty"`
	// MemBWGBs is the stage's own memory-bandwidth demand at max load
	// (default 4).
	MemBWGBs float64 `json:"membw_gbs,omitempty"`
	// NetGbps is the stage's own network demand at max load (default 1).
	NetGbps float64 `json:"net_gbps,omitempty"`
}

// GraphNode is a vertex of the custom service's call path, mirroring
// Node: children are downstream calls, issued concurrently when Parallel
// is set and in sequence otherwise.
type GraphNode struct {
	// Comp names the component handling this hop.
	Comp string `json:"comp"`
	// Parallel fans the children out concurrently.
	Parallel bool `json:"parallel,omitempty"`
	// Children are the downstream calls.
	Children []*GraphNode `json:"children,omitempty"`
}

// RunSpec shapes the co-location run.
type RunSpec struct {
	// BaselineLoad is the mean offered-load fraction the client mix is
	// scaled to (each class contributes baseline_load x rate_fraction x
	// its intensity).
	BaselineLoad float64 `json:"baseline_load"`
	// DurationS is the virtual run length in seconds.
	DurationS float64 `json:"duration_s"`
	// WarmupS discards the initial transient from statistics (seconds).
	WarmupS float64 `json:"warmup_s,omitempty"`
	// BEJobs are the best-effort job types co-located with the service,
	// by Table 1 name ("wordcount", "CPU-stress", ...).
	BEJobs []string `json:"be_jobs,omitempty"`
	// Policy names the registered controller policy the scenario
	// experiment runs as the candidate against the Heracles baseline
	// (controller.Names(): "rhythm", "heracles", "none", "predictive",
	// "scoring", "rack-central", ...). Empty means "rhythm". The CLI's
	// -policy flag overrides it.
	Policy string `json:"policy,omitempty"`
}

// ClientSpec is one client class: its share of the offered load, its
// SLO, and its arrival process.
type ClientSpec struct {
	// Class names the client class; it labels the class's RNG substream.
	Class string `json:"class"`
	// RateFraction is the class's share of the mean offered load; the
	// fractions across classes must sum to 1.
	RateFraction float64 `json:"rate_fraction"`
	// SLOScale sets the class SLO as a multiple of the service's derived
	// SLA (default 1). Mutually exclusive with SLOMs.
	SLOScale float64 `json:"slo_scale,omitempty"`
	// SLOMs sets the class SLO absolutely, in milliseconds. Mutually
	// exclusive with SLOScale.
	SLOMs float64 `json:"slo_ms,omitempty"`
	// Arrival is the class's arrival process.
	Arrival ArrivalSpec `json:"arrival"`
}

// ArrivalSpec selects and parametrizes a class's arrival process. Only
// the fields of the selected process may be set; SCENARIOS.md documents
// which fields belong to which process and the underlying math.
type ArrivalSpec struct {
	// Process is "constant", "poisson", "mmpp", "diurnal" or "trace".
	Process string `json:"process"`

	// Level is the constant intensity (process "constant"; default 1).
	Level *float64 `json:"level,omitempty"`

	// BinS is the Poisson bin width in seconds (process "poisson";
	// default 1).
	BinS float64 `json:"bin_s,omitempty"`
	// MeanPerBin is the expected arrivals per bin (process "poisson";
	// default: the class request rate times the bin width).
	MeanPerBin float64 `json:"mean_per_bin,omitempty"`

	// Quiet is the quiet-state intensity (process "mmpp"; default 0).
	Quiet float64 `json:"quiet,omitempty"`
	// Burst is the burst-state intensity (process "mmpp"; required,
	// > quiet).
	Burst float64 `json:"burst,omitempty"`
	// MeanQuietS is the mean quiet-state holding time in seconds
	// (process "mmpp"; required).
	MeanQuietS float64 `json:"mean_quiet_s,omitempty"`
	// MeanBurstS is the mean burst-state holding time in seconds
	// (process "mmpp"; required).
	MeanBurstS float64 `json:"mean_burst_s,omitempty"`

	// Min is the trough intensity (process "diurnal"; default 0).
	Min float64 `json:"min,omitempty"`
	// Max is the peak intensity (process "diurnal"; required, > min).
	Max float64 `json:"max,omitempty"`
	// BurstNoise scales the deterministic AR(1) burst noise, 0..1
	// (process "diurnal"; default 0).
	BurstNoise float64 `json:"burst_noise,omitempty"`
	// Periods are the cosine components (process "diurnal"; default one
	// component spanning the run duration).
	Periods []PeriodSpec `json:"periods,omitempty"`

	// Trace replays a recorded trace file (process "trace"; required).
	Trace *TraceSpec `json:"trace,omitempty"`
}

// PeriodSpec is one cosine component of a diurnal arrival process.
type PeriodSpec struct {
	// PeriodS is the cycle length in seconds.
	PeriodS float64 `json:"period_s"`
	// Weight is the component's relative contribution (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Phase shifts the wave as a fraction of the period in [0, 1).
	Phase float64 `json:"phase,omitempty"`
}

// TraceSpec points a "trace" arrival process at a recorded file
// (internal/replay formats: .csv, .jsonl, .ndjson).
type TraceSpec struct {
	// File is the trace path, relative to the spec file's directory.
	File string `json:"file"`
	// Interp is "step" (default) or "linear" sample interpolation.
	Interp string `json:"interp,omitempty"`
	// RateQPS maps a qps-mode trace to intensity: trace value / RateQPS.
	// Required for qps traces, rejected for load traces.
	RateQPS float64 `json:"rate_qps,omitempty"`
}

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ArrivalConstant = "constant"
	ArrivalPoisson  = "poisson"
	ArrivalMMPP     = "mmpp"
	ArrivalDiurnal  = "diurnal"
	ArrivalTrace    = "trace"
)

// ParseSpec decodes and validates a JSON workload spec. Decoding is
// strict: unknown fields are errors.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: spec: %w", err)
	}
	// Reject trailing garbage after the top-level object.
	if dec.More() {
		return nil, fmt.Errorf("workload: spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseSpecYAML decodes and validates a YAML-subset workload spec (see
// SCENARIOS.md for the accepted subset). The YAML is converted to the
// same JSON document model and decoded through the ParseSpec path, so
// both formats share one validation surface.
func ParseSpecYAML(data []byte) (*Spec, error) {
	doc, err := parseYAMLSubset(data)
	if err != nil {
		return nil, fmt.Errorf("workload: spec: %w", err)
	}
	js, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("workload: spec: %w", err)
	}
	return ParseSpec(js)
}

// LoadSpec reads a spec file, choosing the format by extension (.json,
// or .yaml/.yml for the YAML subset). Relative trace paths inside the
// spec resolve against the spec file's directory.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: spec: %w", err)
	}
	var s *Spec
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		s, err = ParseSpec(data)
	case ".yaml", ".yml":
		s, err = ParseSpecYAML(data)
	default:
		return nil, fmt.Errorf("workload: spec: %s: unknown extension %q (want .json, .yaml or .yml)", path, ext)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.dir = filepath.Dir(path)
	return s, nil
}

// resolvePath resolves a spec-relative path against the spec file's
// directory.
func (s *Spec) resolvePath(p string) string {
	if filepath.IsAbs(p) || s.dir == "" {
		return p
	}
	return filepath.Join(s.dir, p)
}

// finitePos reports whether v is a positive finite number.
func finitePos(v float64) bool { return v > 0 && !math.IsInf(v, 0) }

// Validate checks the whole spec and returns every defect joined, each a
// *FieldError naming the offending field in JSON-path form. File-level
// checks that need I/O (trace existence, trace mode vs rate_qps) run at
// build time instead (LoadPattern), which `rhythm scenario -validate`
// exercises end to end.
func (s *Spec) Validate() error {
	var errs []error
	fail := func(field, format string, args ...any) {
		errs = append(errs, &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if s.Version != SpecVersion {
		fail("version", "unsupported spec version %d (this build reads version %d)", s.Version, SpecVersion)
	}
	if strings.TrimSpace(s.Name) == "" {
		fail("name", "required")
	}
	s.validateService(fail)
	s.validateRun(fail)
	s.validateClients(fail)
	return errors.Join(errs...)
}

type failFunc func(field, format string, args ...any)

func (s *Spec) validateService(fail failFunc) {
	sv := &s.Service
	if sv.Catalog != "" {
		if _, err := ByName(sv.Catalog); err != nil {
			fail("service.catalog", "%v", err)
		}
		for _, f := range []struct {
			field string
			set   bool
		}{
			{"service.name", sv.Name != ""},
			{"service.max_load_qps", sv.MaxLoadQPS != 0},
			{"service.sla_ms", sv.SLAMs != 0},
			{"service.components", len(sv.Components) != 0},
			{"service.graph", sv.Graph != nil},
		} {
			if f.set {
				fail(f.field, "must be empty when service.catalog is set")
			}
		}
		return
	}
	if strings.TrimSpace(sv.Name) == "" {
		fail("service.name", "required for a custom service (or set service.catalog)")
	} else if _, err := ByName(sv.Name); err == nil {
		fail("service.name", "%q collides with a catalog service; reference it via service.catalog instead", sv.Name)
	}
	if !finitePos(sv.MaxLoadQPS) {
		fail("service.max_load_qps", "must be positive and finite, got %g", sv.MaxLoadQPS)
	}
	if sv.SLAMs < 0 || math.IsInf(sv.SLAMs, 0) || math.IsNaN(sv.SLAMs) {
		fail("service.sla_ms", "must be finite and >= 0, got %g", sv.SLAMs)
	}
	if len(sv.Components) == 0 {
		fail("service.components", "a custom service needs at least one component")
	}
	names := map[string]bool{}
	for i := range sv.Components {
		c := &sv.Components[i]
		at := fmt.Sprintf("service.components[%d]", i)
		if strings.TrimSpace(c.Name) == "" {
			fail(at+".name", "required")
		} else if names[c.Name] {
			fail(at+".name", "duplicate component %q", c.Name)
		} else {
			names[c.Name] = true
		}
		if !finitePos(c.ServiceTime.MeanMs) {
			fail(at+".service_time.mean_ms", "must be positive and finite, got %g", c.ServiceTime.MeanMs)
		}
		if c.ServiceTime.CV < 0 {
			fail(at+".service_time.cv", "must be >= 0, got %g", c.ServiceTime.CV)
		}
		if c.ServiceTime.CVGrowth < 0 {
			fail(at+".service_time.cv_growth", "must be >= 0, got %g", c.ServiceTime.CVGrowth)
		}
		if c.ServiceTime.LoadFactor < 0 {
			fail(at+".service_time.load_factor", "must be >= 0, got %g", c.ServiceTime.LoadFactor)
		}
		if c.UtilAtMax < 0 || c.UtilAtMax > maxUtilAtMax {
			fail(at+".util_at_max", "must be in (0, %g] (0 means the %g default), got %g", maxUtilAtMax, defaultUtilAtMax, c.UtilAtMax)
		}
		for _, f := range []struct {
			field string
			v     float64
		}{
			{".sensitivity.cpu", c.Sensitivity.CPU},
			{".sensitivity.llc", c.Sensitivity.LLC},
			{".sensitivity.membw", c.Sensitivity.MemBW},
			{".sensitivity.netbw", c.Sensitivity.NetBW},
			{".freq_sens", c.FreqSens},
			{".cv_sens", c.CVSens},
		} {
			if f.v < 0 || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
				fail(at+f.field, "must be finite and >= 0, got %g", f.v)
			}
		}
		if c.Resources.Cores < 1 {
			fail(at+".resources.cores", "at least 1 core is required, got %d", c.Resources.Cores)
		}
		if c.Resources.LLCWays < 0 {
			fail(at+".resources.llc_ways", "must be >= 0, got %d", c.Resources.LLCWays)
		}
		for _, f := range []struct {
			field string
			v     float64
		}{
			{".resources.memory_gb", c.Resources.MemoryGB},
			{".resources.membw_gbs", c.Resources.MemBWGBs},
			{".resources.net_gbps", c.Resources.NetGbps},
		} {
			if f.v < 0 || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
				fail(at+f.field, "must be finite and >= 0, got %g", f.v)
			}
		}
		if c.Microservices < 0 {
			fail(at+".microservices", "must be >= 0, got %d", c.Microservices)
		}
	}
	if sv.Graph == nil {
		if len(sv.Components) != 0 {
			fail("service.graph", "a custom service needs a call graph")
		}
		return
	}
	referenced := map[string]bool{}
	var walk func(n *GraphNode, at string)
	walk = func(n *GraphNode, at string) {
		if strings.TrimSpace(n.Comp) == "" {
			fail(at+".comp", "required")
		} else if !names[n.Comp] {
			fail(at+".comp", "dangling edge: component %q is not in service.components", n.Comp)
		} else {
			referenced[n.Comp] = true
		}
		for i, ch := range n.Children {
			at := fmt.Sprintf("%s.children[%d]", at, i)
			if ch == nil {
				fail(at, "null graph node")
				continue
			}
			walk(ch, at)
		}
	}
	walk(sv.Graph, "service.graph")
	for i := range sv.Components {
		if name := sv.Components[i].Name; name != "" && names[name] && !referenced[name] {
			fail(fmt.Sprintf("service.components[%d].name", i), "component %q is never referenced by service.graph", name)
		}
	}
}

func (s *Spec) validateRun(fail failFunc) {
	r := &s.Run
	if !(r.BaselineLoad > 0) || r.BaselineLoad > 1.2 {
		fail("run.baseline_load", "must be in (0, 1.2], got %g", r.BaselineLoad)
	}
	if !finitePos(r.DurationS) {
		fail("run.duration_s", "must be positive and finite, got %g", r.DurationS)
	}
	if r.WarmupS < 0 || math.IsInf(r.WarmupS, 0) || math.IsNaN(r.WarmupS) {
		fail("run.warmup_s", "must be finite and >= 0, got %g", r.WarmupS)
	} else if finitePos(r.DurationS) && r.WarmupS >= r.DurationS {
		fail("run.warmup_s", "warmup %gs must be shorter than run.duration_s %gs", r.WarmupS, r.DurationS)
	}
	for i, name := range r.BEJobs {
		if _, err := bejobs.Lookup(bejobs.Type(name)); err != nil {
			fail(fmt.Sprintf("run.be_jobs[%d]", i), "%v", err)
		}
	}
	if r.Policy != "" && !controller.Registered(r.Policy) {
		fail("run.policy", "unknown policy %q (registered: %s)",
			r.Policy, strings.Join(controller.Names(), ", "))
	}
}

func (s *Spec) validateClients(fail failFunc) {
	if len(s.Clients) == 0 {
		fail("clients", "at least one client class is required")
		return
	}
	classes := map[string]bool{}
	sum := 0.0
	for i := range s.Clients {
		c := &s.Clients[i]
		at := fmt.Sprintf("clients[%d]", i)
		if strings.TrimSpace(c.Class) == "" {
			fail(at+".class", "required")
		} else if classes[c.Class] {
			fail(at+".class", "duplicate class %q", c.Class)
		} else {
			classes[c.Class] = true
		}
		if !finitePos(c.RateFraction) || c.RateFraction > 1 {
			fail(at+".rate_fraction", "must be in (0, 1], got %g", c.RateFraction)
		} else {
			sum += c.RateFraction
		}
		if c.SLOScale != 0 && c.SLOMs != 0 {
			fail(at+".slo_scale", "mutually exclusive with %s.slo_ms: set at most one", at)
		}
		if c.SLOScale < 0 || math.IsInf(c.SLOScale, 0) || math.IsNaN(c.SLOScale) {
			fail(at+".slo_scale", "must be finite and >= 0, got %g", c.SLOScale)
		}
		if c.SLOMs < 0 || math.IsInf(c.SLOMs, 0) || math.IsNaN(c.SLOMs) {
			fail(at+".slo_ms", "must be finite and >= 0, got %g", c.SLOMs)
		}
		c.Arrival.validate(at+".arrival", fail)
	}
	if len(classes) == len(s.Clients) && math.Abs(sum-1) > rateFractionTol {
		fail("clients", "rate_fraction values must sum to 1, got %g", sum)
	}
}

// validate checks the arrival process: the selected process's parameters
// are in range, and no parameter of a different process is set (a
// misplaced field is a defect, not a silent no-op).
func (a *ArrivalSpec) validate(at string, fail failFunc) {
	fields := []struct {
		name  string
		owner string
		set   bool
	}{
		{"level", ArrivalConstant, a.Level != nil},
		{"bin_s", ArrivalPoisson, a.BinS != 0},
		{"mean_per_bin", ArrivalPoisson, a.MeanPerBin != 0},
		{"quiet", ArrivalMMPP, a.Quiet != 0},
		{"burst", ArrivalMMPP, a.Burst != 0},
		{"mean_quiet_s", ArrivalMMPP, a.MeanQuietS != 0},
		{"mean_burst_s", ArrivalMMPP, a.MeanBurstS != 0},
		{"min", ArrivalDiurnal, a.Min != 0},
		{"max", ArrivalDiurnal, a.Max != 0},
		{"burst_noise", ArrivalDiurnal, a.BurstNoise != 0},
		{"periods", ArrivalDiurnal, len(a.Periods) != 0},
		{"trace", ArrivalTrace, a.Trace != nil},
	}
	switch a.Process {
	case ArrivalConstant, ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal, ArrivalTrace:
	case "":
		fail(at+".process", "required: one of %s, %s, %s, %s, %s",
			ArrivalConstant, ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal, ArrivalTrace)
		return
	default:
		fail(at+".process", "unknown arrival process %q (want %s, %s, %s, %s or %s)",
			a.Process, ArrivalConstant, ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal, ArrivalTrace)
		return
	}
	for _, f := range fields {
		if f.set && f.owner != a.Process {
			fail(at+"."+f.name, "only valid for the %q arrival process (this class uses %q)", f.owner, a.Process)
		}
	}
	switch a.Process {
	case ArrivalConstant:
		if a.Level != nil && (*a.Level < 0 || math.IsInf(*a.Level, 0) || math.IsNaN(*a.Level)) {
			fail(at+".level", "must be finite and >= 0, got %g", *a.Level)
		}
	case ArrivalPoisson:
		if a.BinS < 0 || math.IsInf(a.BinS, 0) || math.IsNaN(a.BinS) {
			fail(at+".bin_s", "must be finite and > 0 (0 means the %gs default), got %g", defaultPoissonBin, a.BinS)
		}
		if a.MeanPerBin < 0 || math.IsInf(a.MeanPerBin, 0) || math.IsNaN(a.MeanPerBin) {
			fail(at+".mean_per_bin", "must be finite and > 0 (0 derives it from the class rate), got %g", a.MeanPerBin)
		}
	case ArrivalMMPP:
		if a.Quiet < 0 || math.IsInf(a.Quiet, 0) || math.IsNaN(a.Quiet) {
			fail(at+".quiet", "must be finite and >= 0, got %g", a.Quiet)
		}
		if !finitePos(a.Burst) {
			fail(at+".burst", "required: a positive finite burst intensity, got %g", a.Burst)
		} else if a.Burst <= a.Quiet {
			fail(at+".burst", "burst intensity %g must exceed quiet intensity %g", a.Burst, a.Quiet)
		}
		if !finitePos(a.MeanQuietS) {
			fail(at+".mean_quiet_s", "required: a positive finite mean holding time, got %g", a.MeanQuietS)
		}
		if !finitePos(a.MeanBurstS) {
			fail(at+".mean_burst_s", "required: a positive finite mean holding time, got %g", a.MeanBurstS)
		}
	case ArrivalDiurnal:
		if a.Min < 0 || math.IsInf(a.Min, 0) || math.IsNaN(a.Min) {
			fail(at+".min", "must be finite and >= 0, got %g", a.Min)
		}
		if !finitePos(a.Max) {
			fail(at+".max", "required: a positive finite peak intensity, got %g", a.Max)
		} else if a.Max <= a.Min {
			fail(at+".max", "peak intensity %g must exceed trough intensity %g", a.Max, a.Min)
		}
		if a.BurstNoise < 0 || a.BurstNoise > 1 || math.IsNaN(a.BurstNoise) {
			fail(at+".burst_noise", "must be in [0, 1], got %g", a.BurstNoise)
		}
		for i, p := range a.Periods {
			pat := fmt.Sprintf("%s.periods[%d]", at, i)
			if !finitePos(p.PeriodS) {
				fail(pat+".period_s", "must be positive and finite, got %g", p.PeriodS)
			}
			if p.Weight < 0 || math.IsInf(p.Weight, 0) || math.IsNaN(p.Weight) {
				fail(pat+".weight", "must be finite and > 0 (0 means the default 1), got %g", p.Weight)
			}
			if p.Phase < 0 || p.Phase >= 1 || math.IsNaN(p.Phase) {
				fail(pat+".phase", "must be in [0, 1), got %g", p.Phase)
			}
		}
	case ArrivalTrace:
		if a.Trace == nil {
			fail(at+".trace", "required: the trace file to replay")
			return
		}
		if strings.TrimSpace(a.Trace.File) == "" {
			fail(at+".trace.file", "required")
		}
		switch a.Trace.Interp {
		case "", replay.InterpStep, replay.InterpLinear:
		default:
			fail(at+".trace.interp", "must be %q or %q, got %q", replay.InterpStep, replay.InterpLinear, a.Trace.Interp)
		}
		if a.Trace.RateQPS < 0 || math.IsInf(a.Trace.RateQPS, 0) || math.IsNaN(a.Trace.RateQPS) {
			fail(at+".trace.rate_qps", "must be finite and > 0 (required for qps-mode traces), got %g", a.Trace.RateQPS)
		}
	}
}

// Service materializes the spec's LC service: the catalog service it
// references, or the custom component DAG built with the same calibration
// helpers as the Table 1 catalog (worker counts derived from util_at_max,
// defaults for the optional resource fields). The result passes
// Service.Validate, so a custom spec whose stations would saturate below
// max_load_qps is rejected here.
func (s *Spec) BuildService() (*Service, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sv := &s.Service
	if sv.Catalog != "" {
		return ByName(sv.Catalog)
	}
	svc := &Service{
		Name:       sv.Name,
		Domain:     "scenario",
		MaxLoadQPS: sv.MaxLoadQPS,
		SLATable1:  time.Duration(sv.SLAMs * float64(time.Millisecond)),
	}
	for i := range sv.Components {
		c := &sv.Components[i]
		util := c.UtilAtMax
		if util == 0 {
			util = defaultUtilAtMax
		}
		ways := c.Resources.LLCWays
		if ways == 0 {
			ways = defaultLLCWays
		}
		memGB := c.Resources.MemoryGB
		if memGB == 0 {
			memGB = defaultMemoryGB
		}
		membw := c.Resources.MemBWGBs
		if membw == 0 {
			membw = defaultMemBWGBs
		}
		net := c.Resources.NetGbps
		if net == 0 {
			net = defaultNetGbps
		}
		micro := c.Microservices
		if micro == 0 {
			micro = 1
		}
		base := c.ServiceTime.MeanMs / 1000
		svc.Components = append(svc.Components, &Component{
			Name: c.Name,
			Station: queueing.Station{
				BaseService:       base,
				BaseCV:            c.ServiceTime.CV,
				Workers:           workers(sv.MaxLoadQPS, base, util),
				LoadCVGrowth:      c.ServiceTime.CVGrowth,
				ServiceLoadFactor: c.ServiceTime.LoadFactor,
			},
			Sens:          sens(c.Sensitivity.CPU, c.Sensitivity.LLC, c.Sensitivity.MemBW, c.Sensitivity.NetBW),
			FreqSens:      c.FreqSens,
			CVSens:        c.CVSens,
			Cores:         c.Resources.Cores,
			LLCWays:       ways,
			MemoryGB:      memGB,
			MaxMemBWGBs:   membw,
			MaxNetGbps:    net,
			Microservices: micro,
		})
		svc.Containers += micro
	}
	svc.Graph = sv.Graph.node()
	if err := svc.Validate(); err != nil {
		return nil, &FieldError{Field: "service", Reason: err.Error()}
	}
	return svc, nil
}

// node converts a spec graph to the runtime call-path node.
func (g *GraphNode) node() *Node {
	n := &Node{Comp: g.Comp, Parallel: g.Parallel}
	for _, ch := range g.Children {
		if ch != nil {
			n.Children = append(n.Children, ch.node())
		}
	}
	return n
}

// maxQPS returns the service max load the spec resolves to.
func (s *Spec) maxQPS() (float64, error) {
	if s.Service.Catalog != "" {
		svc, err := ByName(s.Service.Catalog)
		if err != nil {
			return 0, err
		}
		return svc.MaxLoadQPS, nil
	}
	return s.Service.MaxLoadQPS, nil
}

// Duration returns the run length.
func (s *Spec) Duration() time.Duration {
	return time.Duration(s.Run.DurationS * float64(time.Second))
}

// Warmup returns the statistics warmup.
func (s *Spec) Warmup() time.Duration {
	return time.Duration(s.Run.WarmupS * float64(time.Second))
}

// BETypes returns the run's BE job mix as typed Table 1 entries.
func (s *Spec) BETypes() ([]bejobs.Type, error) {
	out := make([]bejobs.Type, 0, len(s.Run.BEJobs))
	for i, name := range s.Run.BEJobs {
		t := bejobs.Type(name)
		if _, err := bejobs.Lookup(t); err != nil {
			return nil, &FieldError{Field: fmt.Sprintf("run.be_jobs[%d]", i), Reason: err.Error()}
		}
		out = append(out, t)
	}
	return out, nil
}

// SLOSeconds resolves the class SLO in seconds against the service's
// derived SLA: slo_ms when set, otherwise slo_scale (default 1) times
// the SLA.
func (c *ClientSpec) SLOSeconds(sla float64) float64 {
	if c.SLOMs > 0 {
		return c.SLOMs / 1000
	}
	scale := c.SLOScale
	if scale == 0 {
		scale = 1
	}
	return scale * sla
}

// LoadPattern composes the spec's client classes into the run's offered
// load: a loadgen.Mix of per-class arrival intensities, each weighted by
// run.baseline_load x the class rate_fraction. Every class draws from
// its own sim.SubSeed substream of seed labeled
// "scenario/<name>/client/<class>", so the pattern — and every run built
// on it — is byte-identical across worker counts and repeat runs.
// Trace-replay classes read their files here; relative paths resolve
// against the spec file's directory.
func (s *Spec) LoadPattern(seed uint64) (loadgen.Pattern, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	maxQPS, err := s.maxQPS()
	if err != nil {
		return nil, err
	}
	mix := make(loadgen.Mix, 0, len(s.Clients))
	for i := range s.Clients {
		c := &s.Clients[i]
		sub := sim.SubSeed(seed, "scenario/"+s.Name+"/client/"+c.Class)
		p, err := s.clientPattern(c, sub, maxQPS)
		if err != nil {
			return nil, fmt.Errorf("workload: spec clients[%d] (%s): %w", i, c.Class, err)
		}
		mix = append(mix, loadgen.Weighted{Weight: s.Run.BaselineLoad * c.RateFraction, Pattern: p})
	}
	return mix, nil
}

// clientPattern builds one class's arrival intensity (mean ~ 1).
func (s *Spec) clientPattern(c *ClientSpec, seed uint64, maxQPS float64) (loadgen.Pattern, error) {
	a := &c.Arrival
	switch a.Process {
	case ArrivalConstant:
		level := 1.0
		if a.Level != nil {
			level = *a.Level
		}
		return loadgen.Constant(level), nil
	case ArrivalPoisson:
		binS := a.BinS
		if binS == 0 {
			binS = defaultPoissonBin
		}
		mean := a.MeanPerBin
		if mean == 0 {
			// Default: the class's own request rate times the bin width,
			// so low-rate classes are naturally noisier.
			mean = c.RateFraction * s.Run.BaselineLoad * maxQPS * binS
		}
		return loadgen.NewPoissonBins(time.Duration(binS*float64(time.Second)), mean, seed)
	case ArrivalMMPP:
		return loadgen.NewMMPP2(a.Quiet, a.Burst,
			time.Duration(a.MeanQuietS*float64(time.Second)),
			time.Duration(a.MeanBurstS*float64(time.Second)),
			s.Duration(), seed)
	case ArrivalDiurnal:
		periods := a.Periods
		if len(periods) == 0 {
			periods = []PeriodSpec{{PeriodS: s.Run.DurationS}}
		}
		comps := make([]loadgen.PeriodComponent, len(periods))
		for i, p := range periods {
			w := p.Weight
			if w == 0 {
				w = 1
			}
			comps[i] = loadgen.PeriodComponent{
				Period: time.Duration(p.PeriodS * float64(time.Second)),
				Weight: w,
				Phase:  p.Phase,
			}
		}
		return loadgen.NewMultiDiurnal(comps, a.Min, a.Max, a.BurstNoise, seed)
	case ArrivalTrace:
		tr, err := replay.Open(s.resolvePath(a.Trace.File))
		if err != nil {
			return nil, err
		}
		scale := 1.0
		switch tr.Mode {
		case replay.ModeQPS:
			if a.Trace.RateQPS == 0 {
				return nil, &FieldError{Field: "arrival.trace.rate_qps",
					Reason: fmt.Sprintf("required: %s is a qps-mode trace and needs a reference rate", a.Trace.File)}
			}
			scale = 1 / a.Trace.RateQPS
		case replay.ModeLoad:
			if a.Trace.RateQPS != 0 {
				return nil, &FieldError{Field: "arrival.trace.rate_qps",
					Reason: fmt.Sprintf("only valid for qps-mode traces; %s is a load-mode trace", a.Trace.File)}
			}
		}
		interp := a.Trace.Interp
		if interp == "" {
			interp = replay.InterpStep
		}
		return tr.Pattern(scale, interp)
	}
	return nil, &FieldError{Field: "arrival.process", Reason: fmt.Sprintf("unknown arrival process %q", a.Process)}
}
