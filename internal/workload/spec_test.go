package workload

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rhythm/internal/sim"
)

// validCustomSpec returns a minimal valid custom-service spec for
// mutation-based validation tests.
func validCustomSpec() *Spec {
	const src = `{
	  "version": 1,
	  "name": "t",
	  "service": {
	    "name": "TestSvc",
	    "max_load_qps": 500,
	    "components": [
	      {"name": "A", "service_time": {"mean_ms": 2}, "resources": {"cores": 2}},
	      {"name": "B", "service_time": {"mean_ms": 5}, "resources": {"cores": 4}}
	    ],
	    "graph": {"comp": "A", "children": [{"comp": "B"}]}
	  },
	  "run": {"baseline_load": 0.6, "duration_s": 60, "warmup_s": 10},
	  "clients": [
	    {"class": "web", "rate_fraction": 0.7, "arrival": {"process": "constant"}},
	    {"class": "api", "rate_fraction": 0.3, "arrival": {"process": "poisson"}}
	  ]
	}`
	var s Spec
	if err := json.Unmarshal([]byte(src), &s); err != nil {
		panic(err)
	}
	return &s
}

// fieldsOf collects the Field names of every *FieldError inside err.
func fieldsOf(err error) []string {
	var out []string
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		var fe *FieldError
		if errors.As(e, &fe) {
			out = append(out, fe.Field)
		}
		if u, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range u.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	return out
}

func wantField(t *testing.T, err error, field string) {
	t.Helper()
	if err == nil {
		t.Fatalf("Validate() = nil, want a FieldError for %q", field)
	}
	for _, f := range fieldsOf(err) {
		if f == field {
			return
		}
	}
	t.Fatalf("Validate() = %v\nwant a FieldError for field %q (got fields %v)", err, field, fieldsOf(err))
}

func TestValidateBaseSpecIsValid(t *testing.T) {
	if err := validCustomSpec().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

func TestValidateFieldErrors(t *testing.T) {
	lvl := func(v float64) *float64 { return &v }
	cases := []struct {
		name   string
		mutate func(*Spec)
		field  string
	}{
		{"unknown version", func(s *Spec) { s.Version = 99 }, "version"},
		{"zero version", func(s *Spec) { s.Version = 0 }, "version"},
		{"missing name", func(s *Spec) { s.Name = " " }, "name"},

		{"unknown catalog", func(s *Spec) { s.Service = ServiceSpec{Catalog: "NoSuchService"} }, "service.catalog"},
		{"catalog plus components", func(s *Spec) { s.Service.Catalog = "Redis" }, "service.components"},
		{"catalog plus name", func(s *Spec) {
			s.Service = ServiceSpec{Catalog: "Redis", Name: "X"}
		}, "service.name"},
		{"custom without name", func(s *Spec) { s.Service.Name = "" }, "service.name"},
		{"custom name collides with catalog", func(s *Spec) { s.Service.Name = "Redis" }, "service.name"},
		{"zero max_load_qps", func(s *Spec) { s.Service.MaxLoadQPS = 0 }, "service.max_load_qps"},
		{"negative sla_ms", func(s *Spec) { s.Service.SLAMs = -1 }, "service.sla_ms"},
		{"no components", func(s *Spec) {
			s.Service.Components = nil
			s.Service.Graph = nil
		}, "service.components"},

		{"component without name", func(s *Spec) { s.Service.Components[1].Name = "" }, "service.components[1].name"},
		{"duplicate component", func(s *Spec) { s.Service.Components[1].Name = "A" }, "service.components[1].name"},
		{"zero mean_ms", func(s *Spec) { s.Service.Components[0].ServiceTime.MeanMs = 0 }, "service.components[0].service_time.mean_ms"},
		{"negative cv", func(s *Spec) { s.Service.Components[0].ServiceTime.CV = -0.1 }, "service.components[0].service_time.cv"},
		{"negative cv_growth", func(s *Spec) { s.Service.Components[0].ServiceTime.CVGrowth = -1 }, "service.components[0].service_time.cv_growth"},
		{"negative load_factor", func(s *Spec) { s.Service.Components[0].ServiceTime.LoadFactor = -1 }, "service.components[0].service_time.load_factor"},
		{"util_at_max too high", func(s *Spec) { s.Service.Components[0].UtilAtMax = 0.99 }, "service.components[0].util_at_max"},
		{"negative sensitivity", func(s *Spec) { s.Service.Components[0].Sensitivity.LLC = -0.5 }, "service.components[0].sensitivity.llc"},
		{"NaN sensitivity", func(s *Spec) { s.Service.Components[0].Sensitivity.CPU = math.NaN() }, "service.components[0].sensitivity.cpu"},
		{"negative freq_sens", func(s *Spec) { s.Service.Components[0].FreqSens = -1 }, "service.components[0].freq_sens"},
		{"zero cores", func(s *Spec) { s.Service.Components[0].Resources.Cores = 0 }, "service.components[0].resources.cores"},
		{"negative llc_ways", func(s *Spec) { s.Service.Components[0].Resources.LLCWays = -1 }, "service.components[0].resources.llc_ways"},
		{"negative memory", func(s *Spec) { s.Service.Components[0].Resources.MemoryGB = -8 }, "service.components[0].resources.memory_gb"},
		{"negative microservices", func(s *Spec) { s.Service.Components[0].Microservices = -1 }, "service.components[0].microservices"},

		{"missing graph", func(s *Spec) { s.Service.Graph = nil }, "service.graph"},
		{"dangling root edge", func(s *Spec) { s.Service.Graph.Comp = "Nope" }, "service.graph.comp"},
		{"dangling child edge", func(s *Spec) { s.Service.Graph.Children[0].Comp = "Gone" }, "service.graph.children[0].comp"},
		{"null graph child", func(s *Spec) { s.Service.Graph.Children = append(s.Service.Graph.Children, nil) }, "service.graph.children[1]"},
		{"unreferenced component", func(s *Spec) { s.Service.Graph.Children = nil }, "service.components[1].name"},

		{"zero baseline_load", func(s *Spec) { s.Run.BaselineLoad = 0 }, "run.baseline_load"},
		{"excessive baseline_load", func(s *Spec) { s.Run.BaselineLoad = 1.3 }, "run.baseline_load"},
		{"zero duration", func(s *Spec) { s.Run.DurationS = 0 }, "run.duration_s"},
		{"negative warmup", func(s *Spec) { s.Run.WarmupS = -1 }, "run.warmup_s"},
		{"warmup exceeds duration", func(s *Spec) { s.Run.WarmupS = 60 }, "run.warmup_s"},
		{"unknown be_job", func(s *Spec) { s.Run.BEJobs = []string{"bitcoin-miner"} }, "run.be_jobs[0]"},

		{"no clients", func(s *Spec) { s.Clients = nil }, "clients"},
		{"missing class", func(s *Spec) { s.Clients[0].Class = "" }, "clients[0].class"},
		{"duplicate class", func(s *Spec) { s.Clients[1].Class = "web" }, "clients[1].class"},
		{"zero rate_fraction", func(s *Spec) { s.Clients[0].RateFraction = 0 }, "clients[0].rate_fraction"},
		{"rate_fraction above 1", func(s *Spec) { s.Clients[0].RateFraction = 1.5 }, "clients[0].rate_fraction"},
		{"fractions do not sum to 1", func(s *Spec) { s.Clients[0].RateFraction = 0.5 }, "clients"},
		{"slo_scale and slo_ms together", func(s *Spec) {
			s.Clients[0].SLOScale = 1.5
			s.Clients[0].SLOMs = 100
		}, "clients[0].slo_scale"},
		{"negative slo_ms", func(s *Spec) { s.Clients[0].SLOMs = -5 }, "clients[0].slo_ms"},
		{"negative slo_scale", func(s *Spec) { s.Clients[0].SLOScale = -1 }, "clients[0].slo_scale"},

		{"missing process", func(s *Spec) { s.Clients[0].Arrival.Process = "" }, "clients[0].arrival.process"},
		{"unknown process", func(s *Spec) { s.Clients[0].Arrival.Process = "pareto" }, "clients[0].arrival.process"},
		{"misplaced poisson field", func(s *Spec) { s.Clients[0].Arrival.BinS = 2 }, "clients[0].arrival.bin_s"},
		{"misplaced mmpp field", func(s *Spec) { s.Clients[1].Arrival.Burst = 2 }, "clients[1].arrival.burst"},
		{"misplaced trace field", func(s *Spec) { s.Clients[0].Arrival.Trace = &TraceSpec{File: "x.csv"} }, "clients[0].arrival.trace"},
		{"negative constant level", func(s *Spec) { s.Clients[0].Arrival.Level = lvl(-1) }, "clients[0].arrival.level"},
		{"negative bin_s", func(s *Spec) { s.Clients[1].Arrival.BinS = -1 }, "clients[1].arrival.bin_s"},
		{"negative mean_per_bin", func(s *Spec) { s.Clients[1].Arrival.MeanPerBin = -10 }, "clients[1].arrival.mean_per_bin"},

		{"mmpp without burst", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "mmpp", MeanQuietS: 10, MeanBurstS: 5}
		}, "clients[0].arrival.burst"},
		{"mmpp burst below quiet", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "mmpp", Quiet: 2, Burst: 1, MeanQuietS: 10, MeanBurstS: 5}
		}, "clients[0].arrival.burst"},
		{"mmpp without mean_quiet_s", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "mmpp", Burst: 2, MeanBurstS: 5}
		}, "clients[0].arrival.mean_quiet_s"},
		{"mmpp without mean_burst_s", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "mmpp", Burst: 2, MeanQuietS: 10}
		}, "clients[0].arrival.mean_burst_s"},

		{"diurnal without max", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "diurnal", Min: 0.5}
		}, "clients[0].arrival.max"},
		{"diurnal max below min", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "diurnal", Min: 2, Max: 1}
		}, "clients[0].arrival.max"},
		{"diurnal burst_noise above 1", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "diurnal", Max: 1.5, BurstNoise: 2}
		}, "clients[0].arrival.burst_noise"},
		{"diurnal zero period", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "diurnal", Max: 1.5, Periods: []PeriodSpec{{PeriodS: 0}}}
		}, "clients[0].arrival.periods[0].period_s"},
		{"diurnal negative period weight", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "diurnal", Max: 1.5, Periods: []PeriodSpec{{PeriodS: 60, Weight: -1}}}
		}, "clients[0].arrival.periods[0].weight"},
		{"diurnal phase out of range", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "diurnal", Max: 1.5, Periods: []PeriodSpec{{PeriodS: 60, Phase: 1}}}
		}, "clients[0].arrival.periods[0].phase"},

		{"trace without trace object", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "trace"}
		}, "clients[0].arrival.trace"},
		{"trace without file", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "trace", Trace: &TraceSpec{}}
		}, "clients[0].arrival.trace.file"},
		{"trace bad interp", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "trace", Trace: &TraceSpec{File: "x.csv", Interp: "cubic"}}
		}, "clients[0].arrival.trace.interp"},
		{"trace negative rate_qps", func(s *Spec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: "trace", Trace: &TraceSpec{File: "x.csv", RateQPS: -100}}
		}, "clients[0].arrival.trace.rate_qps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validCustomSpec()
			tc.mutate(s)
			wantField(t, s.Validate(), tc.field)
		})
	}
}

func TestValidateErrorOrderIsDeterministic(t *testing.T) {
	// Many defects at once: the joined message must be identical across
	// repeated validations (no map-iteration order leaks).
	s := validCustomSpec()
	s.Version = 3
	s.Service.Components[0].Sensitivity = SensitivitySpec{CPU: -1, LLC: -1, MemBW: -1, NetBW: -1}
	s.Service.Components[0].Resources.MemoryGB = -1
	s.Clients[0].Arrival.BinS = 2 // misplaced
	s.Clients[0].Arrival.Burst = 2
	want := s.Validate().Error()
	for i := 0; i < 20; i++ {
		if got := s.Validate().Error(); got != want {
			t.Fatalf("validation error order changed between runs:\n%s\nvs\n%s", got, want)
		}
	}
}

func TestParseSpecStrictDecoding(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"version": 1, "nmae": "typo"}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("unknown field err = %v", err)
	}
	if _, err := ParseSpec([]byte(`{"version": 1} {"more": true}`)); err == nil ||
		!strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data err = %v", err)
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Fatal("ParseSpec(garbage) succeeded")
	}
}

func TestLoadSpecUnknownExtension(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "spec.toml")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(p); err == nil || !strings.Contains(err.Error(), "unknown extension") {
		t.Fatalf("err = %v, want unknown-extension", err)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadSpec(missing) succeeded")
	}
}

// examplesDir points at the shipped scenarios from this package's tests.
const examplesDir = "../../examples/scenarios"

// TestShippedExamplesRoundTrip loads every shipped scenario end to end:
// decode, validate, materialize the service, build the arrival pattern
// and resolve the BE mix. Guards the examples against schema drift.
func TestShippedExamplesRoundTrip(t *testing.T) {
	ents, err := os.ReadDir(examplesDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".json", ".yaml", ".yml":
			files = append(files, filepath.Join(examplesDir, e.Name()))
		}
	}
	if len(files) < 3 {
		t.Fatalf("want >= 3 shipped scenarios in %s, found %d", examplesDir, len(files))
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			spec, err := LoadSpec(f)
			if err != nil {
				t.Fatal(err)
			}
			svc, err := spec.BuildService()
			if err != nil {
				t.Fatal(err)
			}
			if len(svc.Components) == 0 {
				t.Fatal("materialized service has no components")
			}
			pat, err := spec.LoadPattern(2020)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := spec.BETypes(); err != nil {
				t.Fatal(err)
			}
			// The composed mix must hover near baseline_load on average.
			sum, n := 0.0, 0
			for ts := time.Duration(0); ts < spec.Duration(); ts += 500 * time.Millisecond {
				v := pat.Load(sim.Time(ts))
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("Load(%v) = %g", ts, v)
				}
				sum += v
				n++
			}
			mean := sum / float64(n)
			if mean < 0.2*spec.Run.BaselineLoad || mean > 2.5*spec.Run.BaselineLoad {
				t.Fatalf("mean offered load %g is far from baseline %g", mean, spec.Run.BaselineLoad)
			}
		})
	}
}

func TestLoadPatternDeterminism(t *testing.T) {
	spec, err := LoadSpec(filepath.Join(examplesDir, "flash-crowd.json"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := spec.LoadPattern(7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.LoadPattern(7)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := spec.LoadPattern(8)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for ts := time.Duration(0); ts < spec.Duration(); ts += 100 * time.Millisecond {
		a, b := p1.Load(sim.Time(ts)), p2.Load(sim.Time(ts))
		if a != b {
			t.Fatalf("same seed diverges at %v: %g vs %g", ts, a, b)
		}
		if a != p3.Load(sim.Time(ts)) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("seeds 7 and 8 produced identical patterns")
	}
}

func TestBuildServiceCustom(t *testing.T) {
	s := validCustomSpec()
	svc, err := s.BuildService()
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name != "TestSvc" || svc.Domain != "scenario" {
		t.Fatalf("svc = %q domain %q", svc.Name, svc.Domain)
	}
	if len(svc.Components) != 2 {
		t.Fatalf("got %d components", len(svc.Components))
	}
	// Defaults applied: llc_ways 2, memory 8, microservices 1.
	c := svc.Components[0]
	if c.LLCWays != 2 || c.MemoryGB != 8 || c.Microservices != 1 {
		t.Fatalf("defaults not applied: ways=%d mem=%g micro=%d", c.LLCWays, c.MemoryGB, c.Microservices)
	}
	if svc.Containers != 2 {
		t.Fatalf("Containers = %d, want 2", svc.Containers)
	}
	if err := svc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildServiceCatalog(t *testing.T) {
	s := validCustomSpec()
	s.Service = ServiceSpec{Catalog: "Redis"}
	svc, err := s.BuildService()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ByName("Redis")
	if svc.Name != want.Name || len(svc.Components) != len(want.Components) {
		t.Fatalf("catalog build returned %q (%d components), want %q (%d)",
			svc.Name, len(svc.Components), want.Name, len(want.Components))
	}
}

func TestSLOSeconds(t *testing.T) {
	sla := 0.2
	cases := []struct {
		c    ClientSpec
		want float64
	}{
		{ClientSpec{}, 0.2},              // default: 1 x SLA
		{ClientSpec{SLOScale: 1.5}, 0.3}, // scaled
		{ClientSpec{SLOMs: 500}, 0.5},    // absolute
		{ClientSpec{SLOScale: 2, SLOMs: 0}, 0.4},
	}
	for i, tc := range cases {
		if got := tc.c.SLOSeconds(sla); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: SLOSeconds = %g, want %g", i, got, tc.want)
		}
	}
}

func TestSpecTracePathResolution(t *testing.T) {
	// A relative trace path resolves against the spec file's directory.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "t.csv"), []byte("t_s,load\n0,1\n60,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := validCustomSpec()
	s.Clients[0].Arrival = ArrivalSpec{Process: "trace", Trace: &TraceSpec{File: "t.csv"}}
	data, err := json.Marshal(struct {
		Version int          `json:"version"`
		Name    string       `json:"name"`
		Service ServiceSpec  `json:"service"`
		Run     RunSpec      `json:"run"`
		Clients []ClientSpec `json:"clients"`
	}{s.Version, s.Name, s.Service, s.Run, s.Clients})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.LoadPattern(1); err != nil {
		t.Fatalf("LoadPattern with spec-relative trace: %v", err)
	}
	// The same spec parsed from memory (no dir) must fail to find t.csv
	// unless the cwd happens to contain it.
	mem, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.LoadPattern(1); err == nil {
		t.Skip("cwd contains t.csv; skipping negative half")
	}
}

func TestQPSTraceNeedsRate(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "q.jsonl"),
		[]byte("{\"t_s\": 0, \"qps\": 100}\n{\"t_s\": 60, \"qps\": 300}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(ts TraceSpec) *Spec {
		s := validCustomSpec()
		s.dir = dir
		s.Clients[0].Arrival = ArrivalSpec{Process: "trace", Trace: &ts}
		return s
	}
	if _, err := mk(TraceSpec{File: "q.jsonl"}).LoadPattern(1); err == nil ||
		!strings.Contains(err.Error(), "rate_qps") {
		t.Fatalf("qps trace without rate_qps: err = %v", err)
	}
	if _, err := mk(TraceSpec{File: "q.jsonl", RateQPS: 200}).LoadPattern(1); err != nil {
		t.Fatalf("qps trace with rate_qps: %v", err)
	}
	// And a load-mode trace must reject rate_qps.
	if err := os.WriteFile(filepath.Join(dir, "l.csv"), []byte("t_s,load\n0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mk(TraceSpec{File: "l.csv", RateQPS: 200}).LoadPattern(1); err == nil ||
		!strings.Contains(err.Error(), "rate_qps") {
		t.Fatalf("load trace with rate_qps: err = %v", err)
	}
}

func TestDurationWarmupBETypes(t *testing.T) {
	s := validCustomSpec()
	s.Run.BEJobs = []string{"wordcount", "iperf"}
	if got := s.Duration(); got != 60*time.Second {
		t.Fatalf("Duration = %v", got)
	}
	if got := s.Warmup(); got != 10*time.Second {
		t.Fatalf("Warmup = %v", got)
	}
	ts, err := s.BETypes()
	if err != nil || len(ts) != 2 {
		t.Fatalf("BETypes = %v, %v", ts, err)
	}
	s.Run.BEJobs = []string{"nope"}
	if _, err := s.BETypes(); err == nil {
		t.Fatal("BETypes accepted an unknown job")
	}
}
