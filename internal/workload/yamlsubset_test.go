package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLSubsetScalars(t *testing.T) {
	doc, err := parseYAMLSubset([]byte(`
a: null
b: ~
c: true
d: false
e: 42
f: 3.5
g: "quoted # not a comment"
h: bare string
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"a": nil, "b": nil, "c": true, "d": false,
		"e": int64(42), "f": 3.5,
		"g": "quoted # not a comment", "h": "bare string",
	}
	if !reflect.DeepEqual(doc, want) {
		t.Fatalf("got %#v\nwant %#v", doc, want)
	}
}

func TestYAMLSubsetNesting(t *testing.T) {
	doc, err := parseYAMLSubset([]byte(`
top:
  child: 1
  list:
    - 1
    - key: a    # inline map item
      more: b
    -
      deep: true
empty:
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"top": map[string]any{
			"child": int64(1),
			"list": []any{
				int64(1),
				map[string]any{"key": "a", "more": "b"},
				map[string]any{"deep": true},
			},
		},
		"empty": nil,
	}
	if !reflect.DeepEqual(doc, want) {
		t.Fatalf("got %#v\nwant %#v", doc, want)
	}
}

func TestYAMLSubsetTopLevelSequence(t *testing.T) {
	doc, err := parseYAMLSubset([]byte("- a\n- b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, []any{"a", "b"}) {
		t.Fatalf("got %#v", doc)
	}
}

func TestYAMLSubsetErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "\n# only comments\n", "empty document"},
		{"tab indent", "a:\n\tb: 1\n", "tabs"},
		{"multi-doc", "---\na: 1\n", "multi-document"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"bad key line", "a: 1\njust words\n", "expected \"key: value\""},
		{"quoted key", "\"a\": 1\n", "quoted keys"},
		{"missing space", "a:1\n", "missing space"},
		{"seq in mapping", "a: 1\n- b\n", "sequence item in a mapping"},
		{"mapping in seq", "- a\nb: 1\n", "mapping key in a sequence"},
		{"bad dedent", "a:\n    b: 1\n  c: 2\n", "indentation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAMLSubset([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestYAMLSubsetFlowCollectionStaysLoud(t *testing.T) {
	// Flow syntax parses as a bare string, which the strict typed decode
	// then rejects — unsupported YAML can never silently misparse a spec.
	doc, err := parseYAMLSubset([]byte("be_jobs: [a, b]\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := doc.(map[string]any)
	if !ok {
		t.Fatalf("doc = %#v", doc)
	}
	if _, isString := m["be_jobs"].(string); !isString {
		t.Fatalf("flow collection parsed as %#v, want a bare string", m["be_jobs"])
	}
}

func TestParseSpecYAMLMatchesJSON(t *testing.T) {
	// The same scenario through both formats must produce equal specs.
	const yamlSrc = `
version: 1
name: pair
service:
  catalog: Redis
run:
  baseline_load: 0.5
  duration_s: 30
clients:
  - class: all
    rate_fraction: 1
    arrival:
      process: constant
      level: 1.0
`
	const jsonSrc = `{
  "version": 1, "name": "pair",
  "service": {"catalog": "Redis"},
  "run": {"baseline_load": 0.5, "duration_s": 30},
  "clients": [{"class": "all", "rate_fraction": 1,
               "arrival": {"process": "constant", "level": 1.0}}]
}`
	fromYAML, err := ParseSpecYAML([]byte(yamlSrc))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseSpec([]byte(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("YAML and JSON decode differ:\n%#v\nvs\n%#v", fromYAML, fromJSON)
	}
}

func TestParseSpecYAMLUnknownField(t *testing.T) {
	_, err := ParseSpecYAML([]byte("version: 1\nnmae: typo\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("err = %v, want strict-decode unknown-field error", err)
	}
}
