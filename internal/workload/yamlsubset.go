// A minimal YAML-subset reader for scenario specs (ParseSpecYAML). The
// accepted subset — documented in SCENARIOS.md — is deliberately small:
//
//   - mappings ("key: value") nested by indentation (spaces only)
//   - block sequences ("- item", including "- key: value" map items)
//   - scalars: null, true/false, integers, floats, double-quoted strings
//     (JSON escapes) and bare strings
//   - comments ("#" to end of line) and blank lines
//
// No anchors, aliases, flow collections ([a, b] / {k: v}), multi-line
// strings, tabs or multi-document streams: those all fail loudly. The
// parsed document converts to the JSON data model and decodes through
// the same strict path as a JSON spec, so the two formats cannot drift.
package workload

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// yamlLine is one significant line: its indent, its content with the
// comment stripped, and its 1-based source line number for errors.
type yamlLine struct {
	indent int
	text   string
	num    int
}

// parseYAMLSubset parses the accepted YAML subset into the JSON data
// model (map[string]any / []any / scalars).
func parseYAMLSubset(data []byte) (any, error) {
	lines, err := lexYAMLSubset(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// lexYAMLSubset splits the input into significant lines, stripping
// comments and rejecting tabs in indentation.
func lexYAMLSubset(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		// Strip comments outside double quotes.
		line := stripYAMLComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		indent := 0
		for _, r := range line {
			if r == ' ' {
				indent++
				continue
			}
			if r == '\t' {
				return nil, fmt.Errorf("yaml: line %d: tabs are not allowed in indentation", num)
			}
			break
		}
		if strings.HasPrefix(trimmed, "---") {
			return nil, fmt.Errorf("yaml: line %d: multi-document streams are not supported", num)
		}
		out = append(out, yamlLine{indent: indent, text: trimmed, num: num})
	}
	return out, nil
}

// stripYAMLComment removes a trailing "# ..." comment, honoring double
// quotes so "#" inside a quoted scalar survives.
func stripYAMLComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inQuote {
				inQuote = true
			} else if i == 0 || line[i-1] != '\\' {
				inQuote = false
			}
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses a mapping or sequence whose lines sit at exactly
// indent; it stops at the first line with smaller indentation.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("yaml: line %d: inconsistent indentation (got %d spaces, block uses %d)", l.num, l.indent, indent)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

// parseMapping parses consecutive "key: value" lines at indent.
func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("yaml: line %d: sequence item in a mapping block", l.num)
		}
		key, rest, err := splitYAMLKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = yamlScalar(rest)
			continue
		}
		// No inline value: a nested block if the next line is deeper,
		// null otherwise.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

// parseSequence parses consecutive "- item" lines at indent.
func (p *yamlParser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, fmt.Errorf("yaml: line %d: mapping key in a sequence block", l.num)
		}
		item := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if item == "" {
			// "-" alone: the item is the deeper block that follows.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if _, _, err := splitYAMLKey(yamlLine{text: item, num: l.num}); err == nil {
			// "- key: value": a map item. Rewrite the line as the map's
			// first key, indented where continuation keys sit, and parse
			// the item as a mapping block.
			itemIndent := indent + (len(l.text) - len(item))
			p.lines[p.pos] = yamlLine{indent: itemIndent, text: item, num: l.num}
			v, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		// Scalar item.
		p.pos++
		seq = append(seq, yamlScalar(item))
	}
	return seq, nil
}

// splitYAMLKey splits "key: value" (or "key:") into key and the inline
// remainder; quoted keys are not supported.
func splitYAMLKey(l yamlLine) (key, rest string, err error) {
	idx := strings.Index(l.text, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", l.num, l.text)
	}
	key = strings.TrimSpace(l.text[:idx])
	rest = strings.TrimSpace(l.text[idx+1:])
	if key == "" {
		return "", "", fmt.Errorf("yaml: line %d: empty mapping key", l.num)
	}
	if strings.HasPrefix(key, "\"") {
		return "", "", fmt.Errorf("yaml: line %d: quoted keys are not supported", l.num)
	}
	if rest != "" && !strings.HasPrefix(l.text[idx:], ": ") {
		return "", "", fmt.Errorf("yaml: line %d: missing space after \":\" in %q", l.num, l.text)
	}
	return key, rest, nil
}

// yamlScalar interprets an inline scalar: null, booleans, numbers,
// double-quoted strings (JSON escapes), else a bare string. A flow
// collection ("[a, b]") lands here as a bare string and then fails the
// strict typed decode, which is how the unsupported syntax stays loud.
func yamlScalar(tok string) any {
	switch tok {
	case "null", "~":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if strings.HasPrefix(tok, "\"") {
		var s string
		if err := json.Unmarshal([]byte(tok), &s); err == nil {
			return s
		}
		return tok
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f
	}
	return tok
}
