package calibration

import (
	"strings"
	"testing"
)

func TestImportPrometheusBasic(t *testing.T) {
	src := `# TYPE rhythm_engine_ticks_total counter
rhythm_engine_ticks_total 42
# HELP free-form comments are ignored
# TYPE rhythm_sched_queue_depth gauge
rhythm_sched_queue_depth 7.5
# TYPE rhythm_window_p99_seconds histogram
rhythm_window_p99_seconds_bucket{le="0.1"} 3
rhythm_window_p99_seconds_bucket{le="+Inf"} 5
rhythm_window_p99_seconds_sum 1.25
rhythm_window_p99_seconds_count 5
`
	set, err := ImportPrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := set.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6 (keys %v)", got, set.Keys())
	}
	if v, ok := set.Value("rhythm_engine_ticks_total"); !ok || v != 42 {
		t.Fatalf("ticks = %v, %v", v, ok)
	}
	if ty := set.Type("rhythm_window_p99_seconds"); ty != "histogram" {
		t.Fatalf("type = %q", ty)
	}
	h, err := set.Histogram("rhythm_window_p99_seconds")
	if err != nil {
		t.Fatalf("histogram: %v", err)
	}
	if h.Count != 5 || h.Sum != 1.25 || len(h.Bounds) != 1 || h.Cumulative[1] != 5 {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestImportPrometheusTimestampsAndForeignTypes(t *testing.T) {
	src := `# TYPE external_requests_total counter
external_requests_total{job="web"} 10 1716822000000
# TYPE external_rt summary
external_rt{quantile="0.99"} 0.25
`
	set, err := ImportPrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if v, _ := set.Value(`external_requests_total{job="web"}`); v != 10 {
		t.Fatalf("timestamped sample = %v", v)
	}
	if ty := set.Type("external_rt"); ty != "summary" {
		t.Fatalf("foreign type = %q", ty)
	}
}

// TestImportPrometheusDefects pins the strict-decode contract: every
// malformed line becomes a FieldError naming its 0-based location, and
// all defects are reported together.
func TestImportPrometheusDefects(t *testing.T) {
	src := `# TYPE ok_total counter
ok_total 1
# TYPE bad_type wibble
# TYPE ok_total gauge
bare-no-value
good_value{l="x"} not-a-number
ok_total 2
`
	_, err := ImportPrometheus(strings.NewReader(src))
	if err == nil {
		t.Fatal("want defects, got nil")
	}
	msg := err.Error()
	for _, want := range []string{
		`lines[2]: unknown metric type "wibble"`,
		"lines[3]: family ok_total re-declared as gauge",
		"lines[4]: malformed sample line",
		`lines[5]: bad value "not-a-number"`,
		"lines[6]: duplicate series ok_total",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
}

func TestImportPrometheusLabelSpaces(t *testing.T) {
	src := `# TYPE spaced gauge
spaced{k="a value with spaces"} 3.5
`
	set, err := ImportPrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if v, ok := set.Value(`spaced{k="a value with spaces"}`); !ok || v != 3.5 {
		t.Fatalf("spaced value = %v, %v (keys %v)", v, ok, set.Keys())
	}
}

// TestImportPrometheusCanonicalizesLabelOrder pins that a foreign export
// with differently ordered labels still matches the sink's spelling.
func TestImportPrometheusCanonicalizesLabelOrder(t *testing.T) {
	src := "m{b=\"2\",a=\"1\"} 4\n"
	set, err := ImportPrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if v, ok := set.Value(`m{a="1",b="2"}`); !ok || v != 4 {
		t.Fatalf("canonical key lookup = %v, %v (keys %v)", v, ok, set.Keys())
	}
}

func TestHistogramSeriesValidation(t *testing.T) {
	src := `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="0.2"} 3
h_bucket{le="+Inf"} 6
h_count 6
h_sum 1
`
	set, err := ImportPrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if _, err := set.Histogram("h"); err == nil || !strings.Contains(err.Error(), "non-cumulative") {
		t.Fatalf("want non-cumulative error, got %v", err)
	}
	if _, err := set.Histogram("nope"); err == nil {
		t.Fatal("want error for unknown family")
	}
}
