package calibration

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func setOf(t *testing.T, pairs map[string]float64, types map[string]string) *MetricSet {
	t.Helper()
	s := NewMetricSet()
	for family, typ := range types {
		s.setType(family, typ)
	}
	for key, v := range pairs {
		// Keys here are pre-canonical (no labels or already sorted).
		s.values[key] = v
		s.stale = true
	}
	return s
}

func TestToleranceAllowance(t *testing.T) {
	tol := Tolerance{Abs: 0.5, Rel: 0.1}
	if got := tol.Allowance(-10); got != 0.5+1.0 {
		t.Fatalf("Allowance(-10) = %v", got)
	}
	if got := (Tolerance{}).Allowance(1e9); got != 0 {
		t.Fatalf("zero tolerance allowance = %v", got)
	}
}

func TestRuleMatching(t *testing.T) {
	sum := Rule{Pattern: "*_sum", Tol: Tolerance{Rel: 1e-6}}
	if !sum.Matches("rhythm_window_p99_seconds_sum") {
		t.Error("family-level match failed")
	}
	if !sum.Matches(`rhythm_pod_sojourn_p99_seconds_sum{pod="MySQL"}`) {
		t.Error("labeled series must match its family's glob")
	}
	if sum.Matches("rhythm_engine_ticks_total") {
		t.Error("counter must not match *_sum")
	}
	exact := Rule{Pattern: `rhythm_decisions_total{action="StopBE"}`, Tol: Tolerance{Abs: 2}}
	if !exact.Matches(`rhythm_decisions_total{action="StopBE"}`) {
		t.Error("full-key match failed")
	}
}

func TestCompareFixedPointAndBreaches(t *testing.T) {
	types := map[string]string{"a_total": "counter"}
	pred := setOf(t, map[string]float64{
		"a_total": 5, "b_sum": 1.0000001, "c": 3, "pred_only": 1,
	}, types)
	obs := setOf(t, map[string]float64{
		"a_total": 5, "b_sum": 1.0, "c": 4, "obs_only": 2,
	}, types)
	rep := Compare(pred, obs, DefaultRules())
	if rep.Pass {
		t.Fatal("want FAIL: series c breaches the exact rule")
	}
	if rep.Matched != 3 || rep.Passed != 2 {
		t.Fatalf("matched/passed = %d/%d, want 3/2", rep.Matched, rep.Passed)
	}
	if len(rep.Breaches) != 1 || rep.Breaches[0].Key != "c" {
		t.Fatalf("breaches = %+v", rep.Breaches)
	}
	if !reflect.DeepEqual(rep.PredictedOnly, []string{"pred_only"}) ||
		!reflect.DeepEqual(rep.ObservedOnly, []string{"obs_only"}) {
		t.Fatalf("one-sided = %v / %v", rep.PredictedOnly, rep.ObservedOnly)
	}
	// b_sum passes only because the *_sum relative rule applies.
	for _, c := range rep.Checks {
		if c.Key == "b_sum" && !c.Pass {
			t.Fatal("b_sum should pass under the *_sum Rel rule")
		}
	}
	// Self-comparison is the fixed point.
	if self := Compare(pred, pred, DefaultRules()); !self.Pass || self.Matched != 4 {
		t.Fatalf("self-compare = pass %v matched %d", self.Pass, self.Matched)
	}
}

func TestCompareBreachOrderingWorstFirst(t *testing.T) {
	pred := setOf(t, map[string]float64{"tiny": 1.001, "huge": 200, "nan": math.NaN()}, nil)
	obs := setOf(t, map[string]float64{"tiny": 1, "huge": 100, "nan": 1}, nil)
	rep := Compare(pred, obs, nil)
	if len(rep.Breaches) != 3 {
		t.Fatalf("breaches = %d", len(rep.Breaches))
	}
	// NaN comparisons pin to the top, then the 100% deviation, then 0.1%.
	if rep.Breaches[0].Key != "nan" || rep.Breaches[1].Key != "huge" || rep.Breaches[2].Key != "tiny" {
		keys := []string{rep.Breaches[0].Key, rep.Breaches[1].Key, rep.Breaches[2].Key}
		t.Fatalf("breach order = %v", keys)
	}
}

func TestCompareNaNBothSidesPasses(t *testing.T) {
	pred := setOf(t, map[string]float64{"g": math.NaN()}, nil)
	obs := setOf(t, map[string]float64{"g": math.NaN()}, nil)
	if rep := Compare(pred, obs, nil); !rep.Pass {
		t.Fatal("NaN == NaN must pass (same undefined state on both sides)")
	}
}

func TestReportWriteTextAndJSON(t *testing.T) {
	pred := setOf(t, map[string]float64{"a": 2, "b_sum": 1.0000001}, nil)
	obs := setOf(t, map[string]float64{"a": 1, "b_sum": 1}, nil)
	rep := Compare(pred, obs, DefaultRules())

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"calibration: FAIL", "worst offenders (1 breach(es))", "a", "least headroom"} {
		if !strings.Contains(out, want) {
			t.Errorf("text missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON invalid: %v\n%s", err, js.String())
	}
	if decoded["pass"] != false || decoded["matched"] != float64(2) {
		t.Fatalf("decoded = %v", decoded)
	}

	// Determinism: rendering twice yields identical bytes.
	var text2 bytes.Buffer
	rep.WriteText(&text2)
	if text.String() != text2.String() {
		t.Fatal("WriteText not deterministic")
	}
}

func TestJSONFloatNullRoundTrip(t *testing.T) {
	b, err := json.Marshal(struct {
		V jsonFloat `json:"v"`
	}{jsonFloat(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"v":null}` {
		t.Fatalf("marshal = %s", b)
	}
	var back struct {
		V jsonFloat `json:"v"`
	}
	if err := json.Unmarshal([]byte(`{"v":null}`), &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back.V)) {
		t.Fatalf("null -> %v, want NaN", float64(back.V))
	}
}
