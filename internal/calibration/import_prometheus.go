package calibration

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rhythm/internal/obs"
)

// ImportPrometheus parses a Prometheus text-exposition snapshot — the
// exact format obs.Bus.WriteMetrics emits — into a MetricSet. The parser
// speaks the shared grammar of internal/obs (ParseSeriesKey,
// ParseMetricValue), so everything the sink writes parses back equal
// (pinned by the round-trip property test). It is strict in the
// internal/workload style: every malformed line becomes a FieldError
// naming its location ("lines[12]"), all defects are collected and
// joined, and a set is returned only when the artifact is clean.
//
// Accepted lines:
//
//	# TYPE <family> <counter|gauge|histogram>
//	# ... (other comments are ignored, as the format specifies)
//	<series-key> <value> [<timestamp-ms>]
//
// A trailing integer timestamp (external scrapes carry them) is accepted
// and ignored; duplicate series and malformed keys, values or TYPE
// declarations are defects.
func ImportPrometheus(r io.Reader) (*MetricSet, error) {
	set := NewMetricSet()
	var defects []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n := -1
	for sc.Scan() {
		n++
		line := strings.TrimRight(sc.Text(), " \t")
		field := fmt.Sprintf("lines[%d]", n)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			if !strings.HasPrefix(rest, "TYPE ") {
				continue // HELP and free comments are ignored
			}
			parts := strings.Fields(rest)
			if len(parts) != 3 {
				defects = append(defects, FieldError{field,
					fmt.Sprintf("malformed TYPE line %q", line)})
				continue
			}
			typ := parts[2]
			switch typ {
			case "counter", "gauge", "histogram":
			case "summary", "untyped":
				// Foreign but well-formed types pass through so external
				// snapshots load; their series compare as plain scalars.
			default:
				defects = append(defects, FieldError{field,
					fmt.Sprintf("unknown metric type %q", typ)})
				continue
			}
			if !set.setType(parts[1], typ) {
				defects = append(defects, FieldError{field,
					fmt.Sprintf("family %s re-declared as %s", parts[1], typ)})
			}
			continue
		}
		key, value, ok := splitSample(line)
		if !ok {
			defects = append(defects, FieldError{field,
				fmt.Sprintf("malformed sample line %q", line)})
			continue
		}
		name, labels, err := obs.ParseSeriesKey(key)
		if err != nil {
			defects = append(defects, FieldError{field,
				fmt.Sprintf("bad series key %q: %v", key, err)})
			continue
		}
		v, err := obs.ParseMetricValue(value)
		if err != nil {
			defects = append(defects, FieldError{field,
				fmt.Sprintf("bad value %q for %s", value, name)})
			continue
		}
		if !set.add(name, labels, v) {
			defects = append(defects, FieldError{field,
				fmt.Sprintf("duplicate series %s", canonicalKey(name, labels))})
		}
	}
	if err := sc.Err(); err != nil {
		defects = append(defects, fmt.Errorf("calibration: reading snapshot: %w", err))
	}
	if err := joinDefects(defects); err != nil {
		return nil, err
	}
	return set, nil
}

// splitSample splits "<key> <value> [<timestamp>]" at the first space
// after the series key. Label values may contain spaces, so the key ends
// at the closing brace when one exists; the value must then be the next
// whitespace-separated token, optionally followed by one integer
// timestamp which is discarded.
func splitSample(line string) (key, value string, ok bool) {
	rest := ""
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		key, rest = line[:i+1], line[i+1:]
	} else if i := strings.IndexAny(line, " \t"); i >= 0 {
		key, rest = line[:i], line[i:]
	} else {
		return "", "", false
	}
	fields := strings.Fields(rest)
	switch len(fields) {
	case 1:
		return key, fields[0], true
	case 2: // value + timestamp; the timestamp must at least look numeric
		if _, err := obs.ParseMetricValue(fields[1]); err != nil {
			return "", "", false
		}
		return key, fields[0], true
	default:
		return "", "", false
	}
}
