package calibration

import (
	"fmt"
	"math"
	"strings"
)

// Bisect solves f(x) = target for x on [lo, hi] by bisection, assuming f
// is monotone on the interval. It returns the midpoint once the interval
// narrows below tol or maxIter halvings elapse, and NaN when the target
// is not bracketed (f(lo) and f(hi) on the same side).
func Bisect(f func(float64) float64, target, lo, hi, tol float64, maxIter int) float64 {
	flo, fhi := f(lo)-target, f(hi)-target
	if flo == 0 {
		return lo
	}
	if fhi == 0 {
		return hi
	}
	if math.IsNaN(flo) || math.IsNaN(fhi) || (flo > 0) == (fhi > 0) {
		return math.NaN()
	}
	for i := 0; i < maxIter && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid) - target
		if fm == 0 {
			return mid
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	return lo + (hi-lo)/2
}

// FitResult carries the workload-distribution corrections an auto-fit
// pass recovered: the sojourn distribution is treated as lognormal, and
// the fit finds the log-domain shift and spread scale that map the
// predicted quantiles onto the observed ones, plus an arrival-rate scale
// from offered load. A deployment whose observed tail disagrees with the
// prediction applies these to the workload spec (service-time mu' =
// mu + MuShift, sigma' = sigma * SigmaScale, rate' = rate * RateScale)
// and re-runs.
type FitResult struct {
	MuShift    jsonFloat `json:"mu_shift"`
	SigmaScale jsonFloat `json:"sigma_scale"`
	RateScale  jsonFloat `json:"rate_scale"`

	PredictedP50 jsonFloat `json:"predicted_p50_seconds"`
	PredictedP99 jsonFloat `json:"predicted_p99_seconds"`
	ObservedP50  jsonFloat `json:"observed_p50_seconds"`
	ObservedP99  jsonFloat `json:"observed_p99_seconds"`
	FittedP99    jsonFloat `json:"fitted_p99_seconds"`

	Converged bool   `json:"converged"`
	Note      string `json:"note,omitempty"`
}

// Summary renders the fitted parameters as a short human block.
func (f *FitResult) Summary() string {
	var b strings.Builder
	status := "converged"
	if !f.Converged {
		status = "did not converge"
	}
	fmt.Fprintf(&b, "auto-fit (%s):\n", status)
	if f.Note != "" {
		fmt.Fprintf(&b, "  note: %s\n", f.Note)
	}
	fmt.Fprintf(&b, "  service-time mu shift:    %+s (log seconds)\n", fmtCell(float64(f.MuShift)))
	fmt.Fprintf(&b, "  service-time sigma scale: x%s\n", fmtCell(float64(f.SigmaScale)))
	fmt.Fprintf(&b, "  arrival-rate scale:       x%s\n", fmtCell(float64(f.RateScale)))
	fmt.Fprintf(&b, "  window p99: predicted %ss, observed %ss, fitted %ss\n",
		fmtCell(float64(f.PredictedP99)), fmtCell(float64(f.ObservedP99)),
		fmtCell(float64(f.FittedP99)))
	return b.String()
}

// fitTolerance is the interval width at which the quantile bisections
// stop; 60 halvings of the widest bracket land well below it.
const (
	fitTolerance = 1e-12
	fitMaxIter   = 60
)

// FitQuantiles recovers the lognormal corrections mapping predicted
// (p50, p99) sojourn quantiles onto observed ones:
//
//	sigmaScale solves sigmaScale*(ln p99p - ln p50p) = ln p99o - ln p50o
//	muShift    solves (ln p50p + muShift)            = ln p50o
//
// Both equations are monotone, so each parameter falls out of one Bisect
// over a generous bracket (sigmaScale in [0.05, 20], muShift in
// [-10, 10] log-seconds). Quantiles must be positive and finite.
func FitQuantiles(predP50, predP99, obsP50, obsP99 float64) (muShift, sigmaScale float64, err error) {
	for _, q := range []struct {
		name string
		v    float64
	}{
		{"predicted p50", predP50}, {"predicted p99", predP99},
		{"observed p50", obsP50}, {"observed p99", obsP99},
	} {
		if !(q.v > 0) || math.IsInf(q.v, 0) {
			return 0, 0, fmt.Errorf("calibration: fit: %s quantile %v is not positive finite", q.name, q.v)
		}
	}
	predSpread := math.Log(predP99) - math.Log(predP50)
	obsSpread := math.Log(obsP99) - math.Log(obsP50)
	if predSpread <= 0 {
		return 0, 0, fmt.Errorf("calibration: fit: predicted quantiles are not spread (p50 %v >= p99 %v)", predP50, predP99)
	}
	if obsSpread < 0 {
		return 0, 0, fmt.Errorf("calibration: fit: observed quantiles are inverted (p50 %v > p99 %v)", obsP50, obsP99)
	}
	sigmaScale = Bisect(func(s float64) float64 { return s * predSpread },
		obsSpread, 0.05, 20, fitTolerance, fitMaxIter)
	muShift = Bisect(func(m float64) float64 { return math.Log(predP50) + m },
		math.Log(obsP50), -10, 10, fitTolerance, fitMaxIter)
	if math.IsNaN(sigmaScale) || math.IsNaN(muShift) {
		return 0, 0, fmt.Errorf("calibration: fit: correction outside bracket (sigma scale in [0.05,20], mu shift in [-10,10])")
	}
	return muShift, sigmaScale, nil
}

// p99Family is the histogram family the fit reads tail quantiles from.
const p99Family = "rhythm_window_p99_seconds"

// loadFamily is the histogram family the arrival-rate scale reads.
const loadFamily = "rhythm_offered_load"

// FitReport runs the auto-fit pass over two metric sets: it reconstructs
// the window-p99 histograms from each side, extracts (p50, p99) of the
// per-tick tail distribution, bisection-fits the lognormal corrections,
// and scales the arrival rate by the ratio of mean offered load. The
// returned FitResult is attached to a Report by the caller. A nil error
// with Converged=false means the artifacts lacked the series the fit
// needs (e.g. a run too short to populate the histograms); that is
// reported, not failed.
func FitReport(predicted, observed *MetricSet) (*FitResult, error) {
	res := &FitResult{
		MuShift: jsonFloat(math.NaN()), SigmaScale: jsonFloat(math.NaN()),
		RateScale: jsonFloat(math.NaN()), PredictedP50: jsonFloat(math.NaN()),
		PredictedP99: jsonFloat(math.NaN()), ObservedP50: jsonFloat(math.NaN()),
		ObservedP99: jsonFloat(math.NaN()), FittedP99: jsonFloat(math.NaN()),
	}
	ph, perr := predicted.Histogram(p99Family)
	oh, oerr := observed.Histogram(p99Family)
	if perr != nil || oerr != nil {
		res.Note = fmt.Sprintf("fit needs %s on both sides (predicted: %v, observed: %v)",
			p99Family, errString(perr), errString(oerr))
		return res, nil
	}
	predP50, predP99 := ph.Quantile(0.50), ph.Quantile(0.99)
	obsP50, obsP99 := oh.Quantile(0.50), oh.Quantile(0.99)
	res.PredictedP50, res.PredictedP99 = jsonFloat(predP50), jsonFloat(predP99)
	res.ObservedP50, res.ObservedP99 = jsonFloat(obsP50), jsonFloat(obsP99)
	muShift, sigmaScale, err := FitQuantiles(predP50, predP99, obsP50, obsP99)
	if err != nil {
		return res, err
	}
	res.MuShift, res.SigmaScale = jsonFloat(muShift), jsonFloat(sigmaScale)
	// Check the corrections actually land the predicted tail on the
	// observed one: map ln p99 through the fitted transform.
	fitted := math.Exp(math.Log(predP50) + muShift +
		sigmaScale*(math.Log(predP99)-math.Log(predP50)))
	res.FittedP99 = jsonFloat(fitted)
	res.Converged = math.Abs(fitted-obsP99) <= 1e-9+1e-9*math.Abs(obsP99)

	res.RateScale = jsonFloat(1)
	pl, plErr := predicted.Histogram(loadFamily)
	ol, olErr := observed.Histogram(loadFamily)
	if plErr == nil && olErr == nil && pl.Count > 0 && ol.Count > 0 && pl.Mean() > 0 {
		scale := Bisect(func(r float64) float64 { return r * pl.Mean() },
			ol.Mean(), 0.01, 100, fitTolerance, fitMaxIter)
		if !math.IsNaN(scale) {
			res.RateScale = jsonFloat(scale)
		}
	}
	return res, nil
}

// errString renders an error for a note ("ok" when nil).
func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
