package calibration

import (
	"math"
	"path"
	"sort"
)

// Tolerance is a per-metric acceptance band: a predicted value matches an
// observed one when |predicted - observed| <= Abs + Rel*|observed|. The
// zero Tolerance demands exact equality — the right default for a
// deterministic simulator whose event counts are reproducible bit-for-bit
// at any worker count.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// Allowance returns the acceptance band half-width around observed.
func (t Tolerance) Allowance(observed float64) float64 {
	return t.Abs + t.Rel*math.Abs(observed)
}

// Rule binds a tolerance to the series it governs. Pattern is a path.Match
// glob tested against the series' family name first and the full series
// key second (keys contain no '/', so '*' spans freely); the first
// matching rule in a rule list wins.
type Rule struct {
	Pattern string    `json:"pattern"`
	Tol     Tolerance `json:"tolerance"`
}

// Matches reports whether the rule governs the series key.
func (r Rule) Matches(key string) bool {
	if ok, _ := path.Match(r.Pattern, familyOfKey(key)); ok {
		return true
	}
	ok, _ := path.Match(r.Pattern, key)
	return ok
}

// DefaultRules are the tolerances under which a run must reproduce its
// own exported metrics (the self-calibration fixed point):
//
//   - histogram _sum series carry a small relative tolerance, because
//     parallel engines add float observations in scheduling order and
//     a re-run at a different -jobs may accumulate last-bit differences;
//   - everything else — counters, bucket counts, gauges — is exact:
//     the simulator's event counts are deterministic at any -jobs.
func DefaultRules() []Rule {
	return []Rule{
		{Pattern: "*_sum", Tol: Tolerance{Rel: 1e-6}},
		{Pattern: "*", Tol: Tolerance{}},
	}
}

// toleranceFor resolves the first matching rule (exact when none match).
func toleranceFor(rules []Rule, key string) Tolerance {
	for _, r := range rules {
		if r.Matches(key) {
			return r.Tol
		}
	}
	return Tolerance{}
}

// Check is one compared series: the predicted and observed values, the
// governing tolerance, and the verdict. Delta is predicted - observed;
// Allowance the band half-width; Headroom = Allowance - |Delta| (negative
// on a breach — how far outside the band the series landed).
type Check struct {
	Key       string    `json:"series"`
	Predicted jsonFloat `json:"predicted"`
	Observed  jsonFloat `json:"observed"`
	Tol       Tolerance `json:"tolerance"`
	Delta     jsonFloat `json:"delta"`
	Allowance jsonFloat `json:"allowance"`
	Headroom  jsonFloat `json:"headroom"`
	Pass      bool      `json:"pass"`
}

// severity orders breaches worst-first: the relative deviation from the
// observed value (falling back to the absolute delta near zero), with
// non-finite comparisons pinned to the top.
func (c Check) severity() float64 {
	d := math.Abs(float64(c.Delta))
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return math.Inf(1)
	}
	scale := math.Max(math.Abs(float64(c.Observed)), 1e-12)
	return d / scale
}

// Report is the calibration scorecard: every matched series in key order,
// the breaches ranked worst offender first, the one-sided series each
// side had that the other did not, and the overall verdict. Pass is true
// only when every matched series is within tolerance — one-sided series
// are informational (a JSONL trace cannot reconstruct every family a
// metrics snapshot carries).
type Report struct {
	Checks        []Check    `json:"checks"`
	Breaches      []Check    `json:"breaches"`
	PredictedOnly []string   `json:"predicted_only,omitempty"`
	ObservedOnly  []string   `json:"observed_only,omitempty"`
	Matched       int        `json:"matched"`
	Passed        int        `json:"passed"`
	Pass          bool       `json:"pass"`
	Fit           *FitResult `json:"fit,omitempty"`
}

// Compare matches every series present in both sets under the first
// governing rule and builds the scorecard. Ordering is deterministic:
// checks in sorted key order, breaches by descending severity (ties on
// key), one-sided lists sorted.
func Compare(predicted, observed *MetricSet, rules []Rule) *Report {
	rep := &Report{Pass: true}
	keys := make(map[string]uint8, predicted.Len()+observed.Len())
	for _, k := range predicted.Keys() {
		keys[k] |= 1
	}
	for _, k := range observed.Keys() {
		keys[k] |= 2
	}
	all := make([]string, 0, len(keys))
	for k := range keys {
		all = append(all, k)
	}
	sort.Strings(all)
	for _, key := range all {
		switch keys[key] {
		case 1:
			rep.PredictedOnly = append(rep.PredictedOnly, key)
			continue
		case 2:
			rep.ObservedOnly = append(rep.ObservedOnly, key)
			continue
		}
		pv, _ := predicted.Value(key)
		ov, _ := observed.Value(key)
		tol := toleranceFor(rules, key)
		delta := pv - ov
		allow := tol.Allowance(ov)
		pass := math.Abs(delta) <= allow
		if math.IsNaN(pv) || math.IsNaN(ov) {
			// Two NaNs are the same undefined state (e.g. a gauge neither
			// side ever set); a one-sided NaN can never be within a band.
			pass = math.IsNaN(pv) && math.IsNaN(ov)
		}
		c := Check{
			Key: key, Predicted: jsonFloat(pv), Observed: jsonFloat(ov), Tol: tol,
			Delta: jsonFloat(delta), Allowance: jsonFloat(allow),
			Headroom: jsonFloat(allow - math.Abs(delta)), Pass: pass,
		}
		rep.Checks = append(rep.Checks, c)
		rep.Matched++
		if pass {
			rep.Passed++
		} else {
			rep.Breaches = append(rep.Breaches, c)
			rep.Pass = false
		}
	}
	sort.SliceStable(rep.Breaches, func(i, j int) bool {
		si, sj := rep.Breaches[i].severity(), rep.Breaches[j].severity()
		if si != sj {
			return si > sj
		}
		return rep.Breaches[i].Key < rep.Breaches[j].Key
	})
	return rep
}

// ExperimentIDs extracts the experiment ids recorded in an artifact
// (rhythm_experiments_total{id=...}): the set of experiments a calibrate
// run must re-run to predict the artifact's metrics.
func ExperimentIDs(s *MetricSet) []string {
	return s.LabelValues("rhythm_experiments_total", "id")
}
