package calibration

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rhythm/internal/obs"
)

// TestRoundTripProperty is the sink/parser anti-drift pin: for randomly
// generated instrument sets — label values that need escaping, histograms
// with unusual bucket bounds, negative gauges, shared families — every
// metric the Prometheus sink writes must parse back equal through the
// importer, and the parsed set must equal the direct bus snapshot.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20200427))
	labelValues := []string{
		"plain", "with space", `back\slash`, `qu"ote`, "new\nline",
		`both\"and` + "\n", "", "unicode-μ",
	}
	for trial := 0; trial < 50; trial++ {
		bus := obs.NewBus()
		nCounter := 1 + rng.Intn(6)
		for i := 0; i < nCounter; i++ {
			labels := randomLabels(rng, labelValues)
			c := bus.Counter(fmt.Sprintf("rt_counter_%d_total", rng.Intn(4)), labels...)
			c.Add(uint64(rng.Intn(1000)))
		}
		nGauge := 1 + rng.Intn(4)
		for i := 0; i < nGauge; i++ {
			labels := randomLabels(rng, labelValues)
			g := bus.Gauge(fmt.Sprintf("rt_gauge_%d", rng.Intn(3)), labels...)
			g.Set((rng.Float64() - 0.5) * 1e6)
		}
		nHist := 1 + rng.Intn(3)
		for i := 0; i < nHist; i++ {
			bounds := randomBounds(rng)
			labels := randomLabels(rng, labelValues)
			h := bus.Histogram(fmt.Sprintf("rt_hist_%d", rng.Intn(3)), bounds, labels...)
			for n := rng.Intn(40); n >= 0; n-- {
				h.Observe((rng.Float64() - 0.3) * 10)
			}
		}

		var buf bytes.Buffer
		if err := bus.WriteMetrics(&buf); err != nil {
			t.Fatalf("trial %d: WriteMetrics: %v", trial, err)
		}
		imported, err := ImportPrometheus(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ImportPrometheus:\n%v\nexport:\n%s", trial, err, buf.String())
		}
		direct := Snapshot(bus)
		if !metricSetsEqual(direct, imported) {
			t.Fatalf("trial %d: snapshot != import round trip\nexport:\n%s\ndirect: %v\nimported: %v",
				trial, buf.String(), direct.Keys(), imported.Keys())
		}
	}
}

// randomLabels draws 0-2 label pairs, value set including escapes.
func randomLabels(rng *rand.Rand, values []string) []string {
	n := rng.Intn(3)
	out := make([]string, 0, n*2)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("l%d", i), values[rng.Intn(len(values))])
	}
	return out
}

// randomBounds draws a small ascending bound set, sometimes negative,
// sometimes with many decimals (exercising the shared float rendering).
func randomBounds(rng *rand.Rand) []float64 {
	n := 1 + rng.Intn(6)
	out := make([]float64, 0, n)
	v := (rng.Float64() - 0.5) * 2
	for i := 0; i < n; i++ {
		v += rng.Float64() * 1.7
		out = append(out, v)
	}
	return out
}

// metricSetsEqual compares values (bitwise, via Float64bits so NaN==NaN)
// and family types.
func metricSetsEqual(a, b *MetricSet) bool {
	if !reflect.DeepEqual(a.Keys(), b.Keys()) {
		return false
	}
	for _, k := range a.Keys() {
		av, _ := a.Value(k)
		bv, _ := b.Value(k)
		if math.Float64bits(av) != math.Float64bits(bv) {
			return false
		}
	}
	return reflect.DeepEqual(a.types, b.types)
}

// TestSeriesKeyEscapingRoundTrip pins the escaping grammar directly:
// parse(render(labels)) == labels for hostile label values.
func TestSeriesKeyEscapingRoundTrip(t *testing.T) {
	cases := [][]string{
		{"a", `x\y`},
		{"a", `x"y`},
		{"a", "x\ny"},
		{"a", `tricky\"combo` + "\n" + `\\`},
		{"a", "", "b", "second"},
	}
	for _, labels := range cases {
		key := obs.SeriesKey("fam", labels)
		name, parsed, err := obs.ParseSeriesKey(key)
		if err != nil {
			t.Fatalf("ParseSeriesKey(%q): %v", key, err)
		}
		if name != "fam" || !reflect.DeepEqual(parsed, labels) {
			t.Fatalf("round trip %v -> %q -> %v", labels, key, parsed)
		}
	}
}

// TestSnapshotMatchesWriteOrder pins that Snapshot ordering (family, then
// series key) matches the text export's line order for data lines.
func TestSnapshotMatchesWriteOrder(t *testing.T) {
	bus := obs.NewBus()
	bus.Counter("z_total", "k", "1").Inc()
	bus.Counter("a_total", "k", "2").Inc()
	bus.Counter("a_total", "k", "1").Add(3)
	bus.Gauge("m_gauge").Set(-1.5)
	points := bus.Snapshot()
	var keys []string
	for _, p := range points {
		keys = append(keys, p.Key)
	}
	want := []string{`a_total{k="1"}`, `a_total{k="2"}`, "m_gauge", `z_total{k="1"}`}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("snapshot order %v, want %v", keys, want)
	}
}
