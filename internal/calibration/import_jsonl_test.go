package calibration

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/engine"
	"rhythm/internal/loadgen"
	"rhythm/internal/obs"
	"rhythm/internal/workload"
)

func TestImportJSONLBasic(t *testing.T) {
	src := strings.Join([]string{
		`{"seq":1,"kind":"run","at":0,"scope":"s","phase":"start","config":"c"}`,
		`{"seq":2,"kind":"tick","at":0,"scope":"s","dur":1,"load":0.5,"qps":10,"samples":3}`,
		`{"seq":3,"kind":"decision","at":5,"scope":"s","pod":"a","action":"AllowBEGrowth","load":0.5,"slack":0.4,"p99":0.02,"reason":"r"}`,
		`{"seq":4,"kind":"decision","at":5,"scope":"s","pod":"b","action":"StopBE","load":0.5,"slack":0.4,"p99":0.02,"reason":"r"}`,
		`{"seq":5,"kind":"be","at":5,"scope":"s","pod":"a","id":"be-1","op":"launch","cores":1,"ways":2}`,
		`{"seq":6,"kind":"be","at":9,"scope":"s","pod":"a","id":"be-1","op":"dispatch","cores":0,"ways":0}`,
		`{"seq":7,"kind":"experiment","scope":"experiment:fig7","id":"fig7","phase":"start"}`,
		`{"seq":8,"kind":"experiment","scope":"experiment:fig7","id":"fig7","phase":"end"}`,
		`{"seq":9,"kind":"fault","at":3,"scope":"s","fault":"storm","phase":"start","pod":"a","magnitude":2,"detail":"d"}`,
		"",
	}, "\n")
	set, err := ImportJSONL(strings.NewReader(src))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	wants := map[string]float64{
		"rhythm_engine_runs_total":                       1,
		"rhythm_engine_ticks_total":                      1,
		`rhythm_decisions_total{action="AllowBEGrowth"}`: 1,
		`rhythm_decisions_total{action="StopBE"}`:        1,
		`rhythm_be_events_total{op="launch"}`:            1,
		`rhythm_experiments_total{id="fig7"}`:            1,
		"rhythm_fault_events_total":                      1,
	}
	for key, want := range wants {
		if v, ok := set.Value(key); !ok || v != want {
			t.Errorf("%s = %v, %v (want %v)", key, v, ok, want)
		}
	}
	// The fleet-perspective dispatch op has no engine instrument.
	if _, ok := set.Value(`rhythm_be_events_total{op="dispatch"}`); ok {
		t.Error("dispatch op must not be counted")
	}
	// Both decision events share (scope, at): the per-tick slack/p99/load
	// observations are deduplicated to one.
	h, err := set.Histogram("rhythm_window_p99_seconds")
	if err != nil {
		t.Fatalf("p99 histogram: %v", err)
	}
	if h.Count != 1 {
		t.Fatalf("p99 count = %d, want 1 (per-tick dedupe)", h.Count)
	}
	if ids := ExperimentIDs(set); len(ids) != 1 || ids[0] != "fig7" {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
}

// TestImportJSONLStrict pins the strict-decode contract in the
// internal/workload style: unknown fields, missing seq/kind and unknown
// kinds each become a FieldError naming the event; all defects join.
func TestImportJSONLStrict(t *testing.T) {
	src := strings.Join([]string{
		`{"seq":1,"kind":"tick","at":0,"scope":"s","dur":1,"load":0.5,"qps":10,"samples":3}`,
		`{"seq":2,"kind":"tick","wibble":true}`,
		`{"kind":"tick","at":0}`,
		`{"seq":4}`,
		`{"seq":5,"kind":"martian"}`,
		`not json at all`,
		"",
	}, "\n")
	_, err := ImportJSONL(strings.NewReader(src))
	if err == nil {
		t.Fatal("want defects, got nil")
	}
	msg := err.Error()
	for _, want := range []string{
		`events[1]: unknown field "wibble"`,
		"events[2].seq: missing sequence number",
		"events[3].kind: missing event kind",
		`events[4].kind: unknown event kind "martian"`,
		"events[5]:",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
}

// TestJSONLTraceMatchesMetricsSnapshot is the cross-artifact equivalence
// pin: a traced engine run's JSONL stream, re-imported, must reconstruct
// the engine's own counter and histogram families exactly — the same
// events drive both, so any disagreement means the sink and the importer
// drifted apart.
func TestJSONLTraceMatchesMetricsSnapshot(t *testing.T) {
	var buf bytes.Buffer
	bus := obs.NewBus(obs.NewJSONLSink(&buf))
	obs.Install(bus)
	defer obs.Uninstall()
	e, err := engine.New(engine.Config{
		Service: workload.Redis(),
		Pattern: loadgen.Constant(0.5),
		SLA:     0.00115,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.CPUStress, bejobs.StreamDRAM},
		Seed:    2020,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	obs.Uninstall()
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}

	fromTrace, err := ImportJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-importing trace: %v", err)
	}
	direct := Snapshot(bus)

	if fromTrace.Len() == 0 {
		t.Fatal("trace reconstructed no series")
	}
	matched := 0
	for _, key := range fromTrace.Keys() {
		tv, _ := fromTrace.Value(key)
		dv, ok := direct.Value(key)
		if !ok {
			t.Errorf("trace-only series %s = %v (snapshot lacks it)", key, tv)
			continue
		}
		matched++
		// _sum series accumulate floats; event replay adds them in the
		// same order here (single engine), so exact equality holds.
		if math.Float64bits(tv) != math.Float64bits(dv) {
			t.Errorf("%s: trace %v != snapshot %v", key, tv, dv)
		}
	}
	if matched < 10 {
		t.Fatalf("only %d series matched; trace families: %v", matched, fromTrace.Families())
	}
	// Sanity: the run actually exercised the interesting families.
	for _, fam := range []string{
		"rhythm_engine_ticks_total", "rhythm_window_p99_seconds_count",
		"rhythm_decision_slack_count",
	} {
		if _, ok := fromTrace.Value(fam); !ok {
			t.Errorf("trace lacks %s", fam)
		}
	}
}

func TestImportFileDispatch(t *testing.T) {
	dir := t.TempDir()
	promPath := dir + "/m.prom"
	jsonlPath := dir + "/t.jsonl"
	writeFile(t, promPath, "# TYPE a counter\na 1\n")
	writeFile(t, jsonlPath, `{"seq":1,"kind":"tick","at":0,"scope":"s","dur":1,"load":0.5,"qps":1,"samples":1}`+"\n")
	p, err := ImportFile(promPath)
	if err != nil || p.Len() != 1 {
		t.Fatalf("prom dispatch: %v, %d", err, p.Len())
	}
	j, err := ImportFile(jsonlPath)
	if err != nil {
		t.Fatalf("jsonl dispatch: %v", err)
	}
	if v, _ := j.Value("rhythm_engine_ticks_total"); v != 1 {
		t.Fatalf("jsonl ticks = %v", v)
	}
	if _, err := ImportFile(dir + "/missing"); err == nil {
		t.Fatal("want error for missing file")
	}
}
