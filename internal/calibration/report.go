package calibration

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// jsonFloat is a float64 that marshals NaN and ±Inf as JSON null (matching
// the JSONL sink's convention) instead of failing the whole report.
type jsonFloat float64

// MarshalJSON renders finite values with the shared 'g' format and
// non-finite ones as null.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON accepts null back as NaN.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// WriteJSON emits the machine-readable scorecard, indented, with a
// trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human scorecard: verdict line, breaches worst
// offender first with per-metric delta and tolerance headroom, the
// tightest passing series (least headroom — the next metrics to drift),
// and the one-sided series counts. Output is deterministic for fixed
// input.
func (r *Report) WriteText(w io.Writer) error {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "calibration: %s  (%d/%d series within tolerance)\n",
		verdict, r.Passed, r.Matched); err != nil {
		return err
	}
	if len(r.Breaches) > 0 {
		fmt.Fprintf(w, "\nworst offenders (%d breach(es)):\n", len(r.Breaches))
		fmt.Fprintf(w, "  %-58s %14s %14s %12s %12s\n", "series", "predicted", "observed", "delta", "allowance")
		for i, c := range r.Breaches {
			if i == maxReportRows {
				fmt.Fprintf(w, "  ... and %d more\n", len(r.Breaches)-maxReportRows)
				break
			}
			fmt.Fprintf(w, "  %-58s %14s %14s %12s %12s\n", clip(c.Key, 58),
				fmtCell(float64(c.Predicted)), fmtCell(float64(c.Observed)),
				fmtCell(float64(c.Delta)), fmtCell(float64(c.Allowance)))
		}
	}
	tight := tightestPasses(r.Checks, 3)
	if len(tight) > 0 {
		fmt.Fprintf(w, "\nleast headroom among passing series:\n")
		for _, c := range tight {
			fmt.Fprintf(w, "  %-58s headroom %s\n", clip(c.Key, 58), fmtCell(float64(c.Headroom)))
		}
	}
	if len(r.PredictedOnly) > 0 || len(r.ObservedOnly) > 0 {
		fmt.Fprintf(w, "\nunmatched series (informational): %d predicted-only, %d observed-only\n",
			len(r.PredictedOnly), len(r.ObservedOnly))
	}
	if r.Fit != nil {
		fmt.Fprintf(w, "\n%s", r.Fit.Summary())
	}
	_, err := fmt.Fprintln(w)
	return err
}

const maxReportRows = 20

// tightestPasses returns up to n passing checks with finite positive
// allowance, ordered by ascending headroom (exact-match series with zero
// allowance are trivially tight and uninformative, so they are skipped).
func tightestPasses(checks []Check, n int) []Check {
	var out []Check
	for _, c := range checks {
		if !c.Pass || float64(c.Allowance) <= 0 {
			continue
		}
		out = append(out, c)
	}
	// Selection by repeated minimum keeps this allocation-light for the
	// tiny n used here and is deterministic (ties broken by key order,
	// which Checks already carries).
	for i := 0; i < len(out) && i < n; i++ {
		min := i
		for j := i + 1; j < len(out); j++ {
			if float64(out[j].Headroom) < float64(out[min].Headroom) {
				min = j
			}
		}
		out[i], out[min] = out[min], out[i]
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// fmtCell renders a numeric table cell compactly.
func fmtCell(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// clip shortens long series keys for the fixed-width table.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
