package calibration

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"rhythm/internal/obs"
)

// ImportJSONL parses an obs JSONL event trace (-trace-out) and aggregates
// it into the same instrument families the engine registers on a live
// bus, so a trace and a -metrics-out snapshot of the same run calibrate
// against each other. The reconstruction mirrors the engine's emit points
// one-to-one (DESIGN.md §13 documents the mapping):
//
//	tick events                      -> rhythm_engine_ticks_total
//	run phase=start events           -> rhythm_engine_runs_total
//	decision events                  -> rhythm_decisions_total{action=...}
//	decision slack/p99, deduplicated -> rhythm_decision_slack,
//	  per (scope, at) control tick      rhythm_window_p99_seconds,
//	                                    rhythm_offered_load
//	be events (engine lifecycle ops) -> rhythm_be_events_total{op=...}
//	fault events (both edges)        -> rhythm_fault_events_total
//	experiment phase=start events    -> rhythm_experiments_total{id=...}
//
// Fleet-level BE queue ops (dispatch/requeue/evict) and the epoch
// brackets ride the same event kinds but are not engine instruments, so
// they are deliberately not counted; cache and pool events have no
// instrument family at all. Families that never pass through events
// (per-pod sojourn histograms, scheduler health counters) cannot be
// reconstructed from a trace and simply stay absent — Compare reports
// them as informational one-sided series.
//
// Decoding is strict: unknown fields, missing required fields and
// non-object lines each produce a FieldError naming the event and field
// ("events[12].kind"); all defects are collected and joined.
func ImportJSONL(r io.Reader) (*MetricSet, error) {
	agg := newJSONLAggregator()
	var defects []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n := -1
	for sc.Scan() {
		n++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev jsonlEvent
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			defects = append(defects, FieldError{fmt.Sprintf("events[%d]", n),
				decodeReason(err)})
			continue
		}
		if ev.Seq == nil {
			defects = append(defects, FieldError{fmt.Sprintf("events[%d].seq", n),
				"missing sequence number"})
			continue
		}
		if ev.Kind == nil {
			defects = append(defects, FieldError{fmt.Sprintf("events[%d].kind", n),
				"missing event kind"})
			continue
		}
		if !knownKinds[*ev.Kind] {
			defects = append(defects, FieldError{fmt.Sprintf("events[%d].kind", n),
				fmt.Sprintf("unknown event kind %q", *ev.Kind)})
			continue
		}
		agg.observe(&ev)
	}
	if err := sc.Err(); err != nil {
		defects = append(defects, fmt.Errorf("calibration: reading trace: %w", err))
	}
	if err := joinDefects(defects); err != nil {
		return nil, err
	}
	return agg.finish(), nil
}

// jsonlEvent is the strict flat union over every field the JSONL sink
// emits (one struct; DisallowUnknownFields catches drift between the sink
// and this decoder). Pointer fields distinguish absent from zero and let
// JSON null (the sink's NaN/Inf spelling) decode to nil.
type jsonlEvent struct {
	Seq       *uint64  `json:"seq"`
	Kind      *string  `json:"kind"`
	At        *float64 `json:"at"`
	Scope     string   `json:"scope"`
	Pod       string   `json:"pod"`
	Action    string   `json:"action"`
	Load      *float64 `json:"load"`
	Slack     *float64 `json:"slack"`
	P99       *float64 `json:"p99"`
	Reason    string   `json:"reason"`
	Dur       *float64 `json:"dur"`
	QPS       *float64 `json:"qps"`
	Samples   *int     `json:"samples"`
	ID        string   `json:"id"`
	Op        string   `json:"op"`
	Cores     *int     `json:"cores"`
	Ways      *int     `json:"ways"`
	Cache     string   `json:"cache"`
	Result    string   `json:"result"`
	Key       string   `json:"key"`
	Items     *int     `json:"items"`
	Workers   *int     `json:"workers"`
	Phase     string   `json:"phase"`
	Config    string   `json:"config"`
	Fault     string   `json:"fault"`
	Magnitude *float64 `json:"magnitude"`
	Detail    string   `json:"detail"`
}

var knownKinds = map[string]bool{
	"run": true, "tick": true, "decision": true, "be": true,
	"cache": true, "pool": true, "experiment": true, "fault": true,
}

// engineBEOps are the BE lifecycle transitions the engine both emits as
// events and counts under rhythm_be_events_total (engine.beOps); the
// fleet layer's queue-perspective ops (dispatch/requeue/evict) share the
// event kind but have no instrument.
var engineBEOps = map[string]bool{
	"launch": true, "kill": true, "suspend": true, "resume": true,
	"grow": true, "cut": true, "crash": true,
}

// decodeReason strips the encoding/json prefix noise down to the reason.
func decodeReason(err error) string {
	return strings.TrimPrefix(err.Error(), "json: ")
}

// histAccum accumulates observations into fixed bounds, mirroring
// obs.Histogram, so the reconstructed series flattens identically.
type histAccum struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newHistAccum(bounds []float64) *histAccum {
	return &histAccum{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histAccum) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// jsonlAggregator folds events into instrument families.
type jsonlAggregator struct {
	counters map[string]uint64 // canonical key -> count
	families map[string]string // family -> type
	slack    *histAccum
	p99      *histAccum
	load     *histAccum
	seenTick map[string]bool // scope\x00at dedupe for per-control-tick observations
}

func newJSONLAggregator() *jsonlAggregator {
	return &jsonlAggregator{
		counters: make(map[string]uint64),
		families: make(map[string]string),
		slack:    newHistAccum(obs.DefBuckets),
		p99:      newHistAccum(obs.LatencyBuckets),
		load:     newHistAccum(obs.DefBuckets),
		seenTick: make(map[string]bool),
	}
}

func (a *jsonlAggregator) inc(family string, labels ...string) {
	a.families[family] = "counter"
	a.counters[canonicalKey(family, labels)]++
}

func (a *jsonlAggregator) observe(ev *jsonlEvent) {
	switch *ev.Kind {
	case "tick":
		a.inc("rhythm_engine_ticks_total")
	case "run":
		if ev.Phase == "start" {
			a.inc("rhythm_engine_runs_total")
		}
	case "decision":
		a.inc("rhythm_decisions_total", "action", ev.Action)
		// The engine observes slack, window p99 and offered load once per
		// control tick; decision events are per pod but share the tick's
		// (scope, at) and values, so the first event of each tick
		// reconstructs the observation exactly.
		at := math.NaN()
		if ev.At != nil {
			at = *ev.At
		}
		tick := ev.Scope + "\x00" + obs.FormatMetricValue(at)
		if a.seenTick[tick] {
			return
		}
		a.seenTick[tick] = true
		if ev.Slack != nil {
			a.slack.observe(*ev.Slack)
		}
		if ev.P99 != nil {
			a.p99.observe(*ev.P99)
		}
		if ev.Load != nil && !math.IsNaN(*ev.Load) {
			a.load.observe(*ev.Load)
		}
	case "be":
		if engineBEOps[ev.Op] {
			a.inc("rhythm_be_events_total", "op", ev.Op)
		}
	case "fault":
		a.inc("rhythm_fault_events_total")
	case "experiment":
		if ev.Phase == "start" {
			a.inc("rhythm_experiments_total", "id", ev.ID)
		}
	}
}

// finish flattens the aggregation into a MetricSet.
func (a *jsonlAggregator) finish() *MetricSet {
	set := NewMetricSet()
	for family, typ := range a.families {
		set.setType(family, typ)
	}
	for key, n := range a.counters {
		name, labels, _ := obs.ParseSeriesKey(key)
		set.add(name, labels, float64(n))
	}
	for _, h := range []struct {
		name string
		acc  *histAccum
	}{
		{"rhythm_decision_slack", a.slack},
		{"rhythm_window_p99_seconds", a.p99},
		{"rhythm_offered_load", a.load},
	} {
		if h.acc.count == 0 {
			continue
		}
		set.setType(h.name, "histogram")
		cum := uint64(0)
		for i, bound := range h.acc.bounds {
			cum += h.acc.counts[i]
			set.add(h.name+"_bucket", []string{"le", obs.FormatMetricValue(bound)}, float64(cum))
		}
		cum += h.acc.counts[len(h.acc.bounds)]
		set.add(h.name+"_bucket", []string{"le", "+Inf"}, float64(cum))
		set.add(h.name+"_sum", nil, h.acc.sum)
		set.add(h.name+"_count", nil, float64(h.acc.count))
	}
	return set
}

// ImportFile reads an observed-metrics artifact, dispatching on the file
// name: .jsonl/.ndjson parse as an obs event trace, anything else as a
// Prometheus text snapshot.
func ImportFile(path string) (*MetricSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		return ImportJSONL(f)
	}
	return ImportPrometheus(f)
}
