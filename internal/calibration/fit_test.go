package calibration

import (
	"math"
	"testing"

	"rhythm/internal/obs"
	"rhythm/internal/sim"
)

func TestBisect(t *testing.T) {
	// Monotone increasing: sqrt(2) from x^2 = 2.
	root := Bisect(func(x float64) float64 { return x * x }, 2, 0, 2, 1e-12, 80)
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("sqrt2 = %v", root)
	}
	// Monotone decreasing brackets work too.
	root = Bisect(func(x float64) float64 { return -x }, -3, 0, 10, 1e-12, 80)
	if math.Abs(root-3) > 1e-9 {
		t.Fatalf("decreasing root = %v", root)
	}
	// Exact endpoints short-circuit.
	if got := Bisect(func(x float64) float64 { return x }, 0, 0, 1, 1e-12, 80); got != 0 {
		t.Fatalf("endpoint = %v", got)
	}
	// Unbracketed target reports NaN rather than a bogus root.
	if got := Bisect(func(x float64) float64 { return x }, 5, 0, 1, 1e-12, 80); !math.IsNaN(got) {
		t.Fatalf("unbracketed = %v, want NaN", got)
	}
}

func TestFitQuantilesRecoversInjectedDrift(t *testing.T) {
	// Ground truth: lognormal(mu, sigma); observed: mu+shift, sigma*scale.
	const mu, sigma = -3.2, 0.45
	const shift, scale = 0.25, 1.3
	z50, z99 := 0.0, sim.NormQuantile(0.99)
	predP50 := math.Exp(mu + sigma*z50)
	predP99 := math.Exp(mu + sigma*z99)
	obsP50 := math.Exp(mu + shift + scale*sigma*z50)
	obsP99 := math.Exp(mu + shift + scale*sigma*z99)

	gotShift, gotScale, err := FitQuantiles(predP50, predP99, obsP50, obsP99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotShift-shift) > 1e-6 {
		t.Errorf("mu shift = %v, want %v", gotShift, shift)
	}
	if math.Abs(gotScale-scale) > 1e-6 {
		t.Errorf("sigma scale = %v, want %v", gotScale, scale)
	}
}

func TestFitQuantilesRejectsDegenerateInputs(t *testing.T) {
	if _, _, err := FitQuantiles(0, 1, 1, 2); err == nil {
		t.Error("zero quantile must error")
	}
	if _, _, err := FitQuantiles(2, 1, 1, 2); err == nil {
		t.Error("inverted predicted spread must error")
	}
	if _, _, err := FitQuantiles(1, 2, 3, 2); err == nil {
		t.Error("inverted observed spread must error")
	}
}

// TestFitReportEndToEnd drives the fit through bucketed histograms the
// way `rhythm calibrate -fit` does: the fitted transform must land the
// predicted p99 exactly on the observed p99 (the convergence contract),
// and the recovered corrections must carry the right sign and rough
// magnitude despite bucket quantization.
func TestFitReportEndToEnd(t *testing.T) {
	const mu, sigma = -2.5, 0.5
	const shift, scale = 0.2231435513, 1.2 // ln 1.25
	bounds := geomBoundsForTest(0.001, 3, 64)

	pred := obs.NewBus()
	drift := obs.NewBus()
	ph := pred.Histogram("rhythm_window_p99_seconds", bounds)
	oh := drift.Histogram("rhythm_window_p99_seconds", bounds)
	for i := 1; i <= 99; i++ {
		z := sim.NormQuantile(float64(i) / 100)
		ph.Observe(math.Exp(mu + sigma*z))
		oh.Observe(math.Exp(mu + shift + scale*sigma*z))
	}
	res, err := FitReport(Snapshot(pred), Snapshot(drift))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fit did not converge: %+v", res)
	}
	if math.Abs(float64(res.FittedP99)-float64(res.ObservedP99)) > 1e-9 {
		t.Fatalf("fitted p99 %v != observed %v", res.FittedP99, res.ObservedP99)
	}
	if float64(res.MuShift) < 0.05 || float64(res.MuShift) > 0.5 {
		t.Errorf("mu shift %v outside plausible band around %v", res.MuShift, shift)
	}
	if float64(res.SigmaScale) < 1.0 || float64(res.SigmaScale) > 1.5 {
		t.Errorf("sigma scale %v outside plausible band around %v", res.SigmaScale, scale)
	}
}

// TestFitReportMissingSeries pins the graceful path: artifacts without
// the p99 family yield Converged=false and an explanatory note, not an
// error.
func TestFitReportMissingSeries(t *testing.T) {
	res, err := FitReport(NewMetricSet(), NewMetricSet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Note == "" {
		t.Fatalf("res = %+v", res)
	}
	if s := res.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestFitReportRateScale(t *testing.T) {
	bounds := geomBoundsForTest(0.01, 2, 32)
	pred := obs.NewBus()
	scaled := obs.NewBus()
	ph := pred.Histogram("rhythm_window_p99_seconds", bounds)
	oh := scaled.Histogram("rhythm_window_p99_seconds", bounds)
	pl := pred.Histogram("rhythm_offered_load", obs.DefBuckets)
	ol := scaled.Histogram("rhythm_offered_load", obs.DefBuckets)
	for i := 1; i <= 99; i++ {
		z := sim.NormQuantile(float64(i) / 100)
		ph.Observe(math.Exp(-2 + 0.4*z))
		oh.Observe(math.Exp(-2 + 0.4*z))
		pl.Observe(0.4)
		ol.Observe(0.6) // the deployment ran 1.5x hotter than predicted
	}
	res, err := FitReport(Snapshot(pred), Snapshot(scaled))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.RateScale)-1.5) > 1e-6 {
		t.Fatalf("rate scale = %v, want 1.5", res.RateScale)
	}
}

// geomBoundsForTest mirrors the experiment's geometric grid without
// importing the experiments package (cycle).
func geomBoundsForTest(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}
