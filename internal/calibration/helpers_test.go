package calibration

import (
	"os"
	"testing"
)

// writeFile writes a test fixture, failing the test on error.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
