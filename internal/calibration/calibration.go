// Package calibration closes the observability loop (ROADMAP item 4): it
// reads the artifacts the repo itself exports — Prometheus text-format
// metric snapshots (-metrics-out) and obs JSONL event traces (-trace-out)
// — back into typed metric series, compares a fresh prediction run against
// them under per-metric tolerances, and reports a pass/fail calibration
// scorecard. An auto-fit pass bisection-tunes workload distribution
// parameters (service-time mu/sigma, arrival rate) until the predicted
// tail lands within tolerance of the observed one, turning the simulator
// into a predictive twin that is checkable against any deployment that
// exports the same metric families.
//
// The package deliberately shares its text grammar with the exporter:
// series keys, label escaping and float rendering all go through
// internal/obs's promtext helpers, so the sink and this parser cannot
// drift — the round-trip property test pins write(parse(x)) == x over
// generated instrument sets.
//
// Decode style follows internal/workload: strict field validation with
// JSON-path FieldErrors ("events[12].kind", "lines[3]"), every defect
// collected and joined rather than failing on the first.
package calibration

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"rhythm/internal/obs"
)

// FieldError names one defective location in an imported artifact, in the
// style of workload.FieldError: Field is the path to the defect
// ("lines[12]", "events[3].slack"), Reason says what is wrong with it.
type FieldError struct {
	Field  string
	Reason string
}

// Error renders "calibration: <field>: <reason>".
func (e FieldError) Error() string { return "calibration: " + e.Field + ": " + e.Reason }

// joinDefects joins collected FieldErrors into one error (nil when none).
func joinDefects(defects []error) error {
	if len(defects) == 0 {
		return nil
	}
	return errors.Join(defects...)
}

// MetricSet is a collection of metric series flattened to scalar samples:
// one value per series key, exactly the data lines of a Prometheus text
// snapshot (histograms contribute their _bucket/_sum/_count component
// series). Keys are canonicalized — labels sorted by name — so the same
// series matches across sources regardless of label order. The zero value
// is not usable; build one with NewMetricSet, Snapshot or the importers.
type MetricSet struct {
	values map[string]float64
	types  map[string]string // family name -> counter | gauge | histogram
	keys   []string          // sorted cache, rebuilt when stale
	stale  bool
}

// NewMetricSet returns an empty set.
func NewMetricSet() *MetricSet {
	return &MetricSet{
		values: make(map[string]float64),
		types:  make(map[string]string),
	}
}

// canonicalKey renders a series key with label pairs sorted by name (then
// value), through the shared exposition grammar.
func canonicalKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].v < pairs[j].v
	})
	flat := make([]string, 0, len(pairs)*2)
	for _, p := range pairs {
		flat = append(flat, p.k, p.v)
	}
	return obs.SeriesKey(name, flat)
}

// add records one scalar sample under the canonical form of key. It
// reports false when the series already exists (duplicate data line).
func (s *MetricSet) add(name string, labels []string, v float64) bool {
	key := canonicalKey(name, labels)
	if _, dup := s.values[key]; dup {
		return false
	}
	s.values[key] = v
	s.stale = true
	return true
}

// setType records a family's instrument type; it reports false on a
// conflicting re-declaration.
func (s *MetricSet) setType(family, typ string) bool {
	if prev, ok := s.types[family]; ok {
		return prev == typ
	}
	s.types[family] = typ
	return true
}

// Len returns the number of scalar series in the set.
func (s *MetricSet) Len() int { return len(s.values) }

// Keys returns every series key, sorted.
func (s *MetricSet) Keys() []string {
	if s.stale || s.keys == nil {
		s.keys = make([]string, 0, len(s.values))
		for k := range s.values {
			s.keys = append(s.keys, k)
		}
		sort.Strings(s.keys)
		s.stale = false
	}
	return s.keys
}

// Value returns the sample stored under the series key (canonical label
// order), and whether it exists.
func (s *MetricSet) Value(key string) (float64, bool) {
	v, ok := s.values[key]
	return v, ok
}

// Type returns the recorded instrument type of a metric family ("" when
// unknown).
func (s *MetricSet) Type(family string) string { return s.types[family] }

// Families returns the family names with a recorded type, sorted.
func (s *MetricSet) Families() []string {
	out := make([]string, 0, len(s.types))
	for f := range s.types {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// LabelValues returns the sorted distinct values of one label across a
// family's series (e.g. the experiment ids under
// rhythm_experiments_total{id="..."}).
func (s *MetricSet) LabelValues(family, label string) []string {
	seen := make(map[string]bool)
	for _, key := range s.Keys() {
		name, labels, err := obs.ParseSeriesKey(key)
		if err != nil || name != family {
			continue
		}
		for i := 0; i+1 < len(labels); i += 2 {
			if labels[i] == label {
				seen[labels[i+1]] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HistogramSeries is one reconstructed histogram series: finite bucket
// bounds with cumulative counts, the +Inf total, sum and count.
type HistogramSeries struct {
	Bounds     []float64 // finite upper bounds, ascending
	Cumulative []uint64  // one per bound, plus the +Inf bucket last
	Sum        float64
	Count      uint64
}

// Quantile estimates the q-quantile by linear interpolation within the
// containing bucket, the same estimate Prometheus's histogram_quantile
// uses. Observations beyond the last finite bound saturate to it.
func (h *HistogramSeries) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	target := q * float64(h.Count)
	prevCum, prevBound := 0.0, 0.0
	if h.Bounds[0] <= 0 {
		// Buckets can span negatives (slack fractions): start the first
		// bucket one inter-bound step below its upper bound.
		step := 1.0
		if len(h.Bounds) > 1 {
			step = h.Bounds[1] - h.Bounds[0]
		}
		prevBound = h.Bounds[0] - step
	}
	for i, bound := range h.Bounds {
		cum := float64(h.Cumulative[i])
		if cum >= target {
			if cum == prevCum {
				return bound
			}
			return prevBound + (bound-prevBound)*(target-prevCum)/(cum-prevCum)
		}
		prevCum, prevBound = cum, bound
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Mean returns Sum/Count (NaN when empty).
func (h *HistogramSeries) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Histogram reconstructs one histogram series of a family from the set's
// flattened _bucket/_sum/_count samples. labels select the series within
// the family (none for unlabeled histograms). It returns an error when
// the family is not a histogram or its component series are incomplete
// or inconsistent (non-cumulative buckets, count mismatch).
func (s *MetricSet) Histogram(family string, labels ...string) (*HistogramSeries, error) {
	if t := s.types[family]; t != "histogram" {
		return nil, fmt.Errorf("calibration: %s: not a histogram family (type %q)", family, t)
	}
	want := canonicalKey("", labels) // "{...}" suffix shared by the series' keys
	type bucket struct {
		bound float64
		cum   uint64
	}
	var buckets []bucket
	for _, key := range s.Keys() {
		name, kl, err := obs.ParseSeriesKey(key)
		if err != nil || name != family+"_bucket" {
			continue
		}
		var le string
		rest := make([]string, 0, len(kl))
		for i := 0; i+1 < len(kl); i += 2 {
			if kl[i] == "le" {
				le = kl[i+1]
				continue
			}
			rest = append(rest, kl[i], kl[i+1])
		}
		if canonicalKey("", rest) != want {
			continue
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			bound, err = obs.ParseMetricValue(le)
			if err != nil {
				return nil, fmt.Errorf("calibration: %s: bad le value %q", key, le)
			}
		}
		buckets = append(buckets, bucket{bound, uint64(s.values[key])})
	}
	if len(buckets) == 0 {
		return nil, fmt.Errorf("calibration: %s%s: no bucket series", family, want)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].bound < buckets[j].bound })
	h := &HistogramSeries{}
	prev := uint64(0)
	for _, b := range buckets {
		if b.cum < prev {
			return nil, fmt.Errorf("calibration: %s%s: non-cumulative buckets", family, want)
		}
		prev = b.cum
		if math.IsInf(b.bound, 1) {
			continue
		}
		h.Bounds = append(h.Bounds, b.bound)
		h.Cumulative = append(h.Cumulative, b.cum)
	}
	if !math.IsInf(buckets[len(buckets)-1].bound, 1) {
		return nil, fmt.Errorf("calibration: %s%s: missing +Inf bucket", family, want)
	}
	h.Cumulative = append(h.Cumulative, prev)
	if v, ok := s.values[canonicalKey(family+"_sum", labels)]; ok {
		h.Sum = v
	}
	if v, ok := s.values[canonicalKey(family+"_count", labels)]; ok {
		h.Count = uint64(v)
	} else {
		h.Count = prev
	}
	if h.Count != prev {
		return nil, fmt.Errorf("calibration: %s%s: _count %d does not match +Inf bucket %d",
			family, want, h.Count, prev)
	}
	return h, nil
}

// Snapshot flattens a live bus's instruments into a MetricSet — the
// "predicted" side of a calibration run. It renders through the same
// grammar the Prometheus sink writes, so Snapshot(bus) equals
// ImportPrometheus(WriteMetrics(bus)) exactly.
func Snapshot(bus *obs.Bus) *MetricSet {
	s := NewMetricSet()
	for _, p := range bus.Snapshot() {
		s.setType(p.Name, p.Type)
		switch p.Type {
		case "histogram":
			for i, bound := range p.Bounds {
				s.add(p.Name+"_bucket",
					append(append([]string{}, p.Labels...), "le", obs.FormatMetricValue(bound)),
					float64(p.Cumulative[i]))
			}
			s.add(p.Name+"_bucket",
				append(append([]string{}, p.Labels...), "le", "+Inf"),
				float64(p.Cumulative[len(p.Bounds)]))
			s.add(p.Name+"_sum", p.Labels, p.Sum)
			s.add(p.Name+"_count", p.Labels, float64(p.Count))
		default:
			s.add(p.Name, p.Labels, p.Value)
		}
	}
	return s
}

// familyOfKey strips the label set, returning the series' family-ish name
// (histogram component suffixes included).
func familyOfKey(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}
