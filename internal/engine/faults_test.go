package engine

import (
	"math"
	"reflect"
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/faults"
	"rhythm/internal/loadgen"
	"rhythm/internal/obs"
	"rhythm/internal/workload"
)

func faultCfg(t *testing.T, sched *faults.Schedule) Config {
	t.Helper()
	pol, err := controller.NewRhythm(map[string]controller.Thresholds{
		"Web":      {Loadlimit: 0.9, Slacklimit: 0.1},
		"MySQL":    {Loadlimit: 0.6, Slacklimit: 0.3},
		"Amoeba":   {Loadlimit: 0.95, Slacklimit: 0.05},
		"Memcache": {Loadlimit: 0.9, Slacklimit: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Service: workload.ECommerce(),
		Pattern: loadgen.Constant(0.5),
		SLA:     0.25,
		Policy:  pol,
		BETypes: []bejobs.Type{bejobs.Wordcount},
		Seed:    2020,
		Warmup:  5 * time.Second,
		Faults:  sched,
	}
}

func mustRun(t *testing.T, cfg Config, dur time.Duration) *RunStats {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEmptyScheduleIsBitFrozen pins the frozen-path contract at the
// stats level: a nil schedule and an empty schedule produce identical
// runs.
func TestEmptyScheduleIsBitFrozen(t *testing.T) {
	a := mustRun(t, faultCfg(t, nil), 30*time.Second)
	b := mustRun(t, faultCfg(t, &faults.Schedule{}), 30*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty schedule perturbed the run:\nnil:   %+v\nempty: %+v", a, b)
	}
}

// TestFaultRunsDeterministic pins that the same seed and schedule give
// byte-identical stats across repeated runs.
func TestFaultRunsDeterministic(t *testing.T) {
	sched := func() *faults.Schedule {
		s, err := faults.Preset("chaos", 2020, 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mustRun(t, faultCfg(t, sched()), 60*time.Second)
	b := mustRun(t, faultCfg(t, sched()), 60*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed + schedule gave different runs")
	}
}

// TestLoadSurgeRaisesPressure: a big surge must push the worst p99 above
// the fault-free run's.
func TestLoadSurgeRaisesPressure(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.LoadSurge, At: 10 * time.Second, Duration: 15 * time.Second, Magnitude: 1.8},
	}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, faultCfg(t, nil), 40*time.Second)
	surged := mustRun(t, faultCfg(t, sched), 40*time.Second)
	if surged.WorstP99 <= base.WorstP99 {
		t.Fatalf("surge did not raise worst p99: %v <= %v", surged.WorstP99, base.WorstP99)
	}
}

// TestCrashKillsAndBlocksRestart: a crash empties the machine's BE set
// and the restart delay keeps it empty.
func TestCrashKillsAndBlocksRestart(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.BECrash, At: 20 * time.Second, RestartDelay: 10 * time.Second},
	}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	st := mustRun(t, faultCfg(t, sched), 40*time.Second)
	if st.TotalCrashes() == 0 {
		t.Fatal("no BE instance crashed")
	}
	base := mustRun(t, faultCfg(t, nil), 40*time.Second)
	if base.TotalCrashes() != 0 {
		t.Fatal("fault-free run counted crashes")
	}
}

// TestDropoutNeverActsOnPoisonedSlack is the acceptance pin: under NaN
// and stale dropouts the engine never panics, never records an
// AllowBEGrowth decision during the blind window, reports the degraded
// reason through the Explainer path, and keeps the true statistics
// NaN-free.
func TestDropoutNeverActsOnPoisonedSlack(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.MeasurementDropout, At: 10 * time.Second, Duration: 8 * time.Second, Mode: faults.DropNaN},
		{Kind: faults.MeasurementDropout, At: 24 * time.Second, Duration: 8 * time.Second, Mode: faults.DropStale},
	}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}

	sink := &obs.MemorySink{}
	obs.Install(obs.NewBus(sink))
	defer obs.Uninstall()

	cfg := faultCfg(t, sched)
	cfg.Timeline = true
	st := mustRun(t, cfg, 40*time.Second)

	if st.DegradedPeriods == 0 {
		t.Fatal("no control period ran degraded")
	}
	if math.IsNaN(st.MeanP99) || math.IsNaN(st.WorstP99) {
		t.Fatal("true statistics NaN-poisoned")
	}
	blind := func(at int64) bool {
		tt := time.Duration(at)
		return (tt >= 10*time.Second && tt < 18*time.Second) ||
			(tt >= 24*time.Second && tt < 32*time.Second)
	}
	sawDegradedReason := false
	for _, ev := range sink.Events() {
		if ev.Kind != obs.KindDecision || !blind(ev.At) {
			continue
		}
		if ev.Op == controller.AllowBEGrowth.String() {
			t.Fatalf("AllowBEGrowth at %v during measurement dropout", time.Duration(ev.At))
		}
		if ev.Reason != "" {
			sawDegradedReason = true
			if want := "degraded"; len(ev.Reason) < len(want) || ev.Reason[:len(want)] != want {
				t.Fatalf("blind-window decision reason %q does not report degraded mode", ev.Reason)
			}
		}
	}
	if !sawDegradedReason {
		t.Fatal("no degraded-mode reason reached the bus")
	}

	// The timeline's action log must show the escalation: growth frozen
	// first, cuts once blindness persists past the threshold.
	sawFreeze, sawCut := false, false
	for _, a := range st.Actions {
		if !blind(int64(a.At)) {
			continue
		}
		switch a.Action {
		case controller.DisallowBEGrowth:
			sawFreeze = true
		case controller.CutBE:
			sawCut = true
		case controller.AllowBEGrowth:
			t.Fatalf("AllowBEGrowth in action log at %v during dropout", a.At)
		}
	}
	if !sawFreeze || !sawCut {
		t.Fatalf("escalation incomplete: freeze=%v cut=%v", sawFreeze, sawCut)
	}
}

// TestFaultEdgesOnBus: with a bus installed, fault activations and
// recoveries appear as KindFault events; without faults none do.
func TestFaultEdgesOnBus(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.InterferenceStorm, At: 5 * time.Second, Duration: 10 * time.Second, Magnitude: 2.5},
	}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	sink := &obs.MemorySink{}
	obs.Install(obs.NewBus(sink))
	defer obs.Uninstall()

	mustRun(t, faultCfg(t, sched), 20*time.Second)
	var starts, ends int
	for _, ev := range sink.Events() {
		if ev.Kind != obs.KindFault {
			continue
		}
		if ev.ID != string(faults.InterferenceStorm) {
			t.Fatalf("unexpected fault kind %q", ev.ID)
		}
		switch ev.Op {
		case "start":
			starts++
		case "end":
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("want one start and one end edge, got %d/%d", starts, ends)
	}
}
