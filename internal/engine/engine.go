// Package engine is the co-location runtime: it deploys an LC service's
// Servpods on a simulated cluster (one Servpod per machine, as in §5.1),
// offers load from a pattern, computes the interference the resident BE
// jobs impose on each Servpod, samples end-to-end latencies through the
// service call graph, advances BE progress, and drives a controller policy
// every control period through the isolation actuators.
//
// The engine is the substrate every experiment runs on: solo profiling
// sweeps, the Rhythm-vs-Heracles grids of Figs. 9-14, the production-load
// runs of Fig. 15 and the timeline of Fig. 17.
package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/controller"
	"rhythm/internal/faults"
	"rhythm/internal/interference"
	"rhythm/internal/isolation"
	"rhythm/internal/loadgen"
	"rhythm/internal/metrics"
	"rhythm/internal/obs"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// Config describes one engine run.
type Config struct {
	// Service is the LC workload to deploy (required).
	Service *workload.Service
	// Pattern offers the load as a fraction of the service max (required).
	Pattern loadgen.Pattern
	// SLA is the tail-latency target in seconds the controllers protect.
	// Zero disables slack-based control (used for pure solo profiling).
	SLA float64
	// Policy decides BE control actions; nil means solo run (no BE).
	Policy controller.Policy
	// BETypes are the BE job types to launch, cycled in order as
	// instances are admitted. Empty means no BE jobs.
	BETypes []bejobs.Type
	// Spec is the machine specification; zero value selects the default.
	Spec cluster.MachineSpec
	// Model is the interference model; zero Gamma selects the default.
	Model interference.Model
	// Seed drives all randomness.
	Seed uint64
	// TickDt is the simulation step (default 100 ms).
	TickDt time.Duration
	// ControlPeriod is the controller interval (default 2 s, §3.5.2).
	ControlPeriod time.Duration
	// SamplesPerTick is the number of end-to-end latency samples drawn
	// per tick (default 80).
	SamplesPerTick int
	// MaxBEPerMachine caps BE instances per machine (default 15).
	MaxBEPerMachine int
	// Warmup discards the initial transient: utilizations, violations
	// and the worst-p99 statistic only accumulate after this much
	// virtual time (control decisions still run during warmup).
	Warmup time.Duration
	// SLAGuard is the controller's safety headroom: slack is computed
	// against (1-SLAGuard)*SLA so that steady-state operation aims a few
	// percent below the target and worst-case noise stays within it
	// (violations still count against the full SLA). Default 0.08;
	// negative disables the guard.
	SLAGuard float64
	// InertiaTau is the time constant with which observed interference
	// inflation approaches its steady-state value (queues filling,
	// caches churning). Real servers do not jump to a new tail latency
	// the instant a co-runner gets another core; this inertia is what
	// gives a 2 s controller room to react. Default 4 s; negative
	// disables smoothing.
	InertiaTau time.Duration
	// CollectSamples retains per-pod sojourn and end-to-end samples in
	// the run stats (profiling).
	CollectSamples bool
	// Timeline retains per-control-tick series and the action log
	// (Fig. 17).
	Timeline bool
	// Label names this run's scope on the observability bus (internal/obs)
	// when one is installed; empty derives "service|policy|seed=N". It has
	// no effect on the simulation.
	Label string
	// Faults injects a deterministic fault schedule (internal/faults):
	// load surges, interference storms, machine slowdowns, BE crashes,
	// profile drift and measurement dropout. Nil disables injection
	// entirely — every fault hook below is behind a nil check, so a
	// fault-free run is byte-identical to one on a build without the
	// faults subsystem at all.
	Faults *faults.Schedule
	// ExternalBE hands BE admission to an external dispatcher (the fleet
	// layer's shared scheduler.Scheduler): AllowBEGrowth still grows
	// resident instances but never self-launches; new instances arrive
	// only through AdmitBE, and every kill or crash is recorded for
	// TakeEvicted so the dispatcher can re-queue the job (§4's "interact
	// with scheduler" protocol). BETypes may be empty in this mode — the
	// dispatcher names the type per admission.
	ExternalBE bool
}

// FieldError is a Config validation failure naming the exact field it
// concerns, so callers can report — and tests can pin — which part of a
// configuration is bad.
type FieldError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *FieldError) Error() string { return "engine: Config." + e.Field + ": " + e.Reason }

// Validate checks the configuration before any work runs. Zero values
// with documented defaults (TickDt, ControlPeriod, SamplesPerTick,
// MaxBEPerMachine, Spec, Model, InertiaTau, SLAGuard) are valid — New
// fills them — and the documented negative sentinels (SLAGuard and
// InertiaTau < 0 disable the guard and smoothing) stay valid; everything
// else out of range fails. All failures are returned joined, each a
// *FieldError naming the Config field.
func (c *Config) Validate() error {
	var errs []error
	fail := func(field, format string, args ...any) {
		errs = append(errs, &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if c.Service == nil {
		fail("Service", "required")
	} else if err := c.Service.Validate(); err != nil {
		fail("Service", "%v", err)
	}
	if c.Pattern == nil {
		fail("Pattern", "required")
	}
	if c.SLA < 0 {
		fail("SLA", "negative tail-latency target %v", c.SLA)
	}
	if c.TickDt < 0 {
		fail("TickDt", "negative tick %v", c.TickDt)
	}
	if c.ControlPeriod < 0 {
		fail("ControlPeriod", "negative control period %v", c.ControlPeriod)
	}
	if c.SamplesPerTick < 0 {
		fail("SamplesPerTick", "negative sample count %d", c.SamplesPerTick)
	}
	if c.MaxBEPerMachine < 0 {
		fail("MaxBEPerMachine", "negative BE cap %d", c.MaxBEPerMachine)
	}
	if c.Warmup < 0 {
		fail("Warmup", "negative warmup %v", c.Warmup)
	}
	if err := c.Faults.Validate(); err != nil {
		fail("Faults", "%v", err)
	}
	return errors.Join(errs...)
}

// fillDefaults fills the zero-value defaults; Validate has already
// rejected out-of-range values.
func (c *Config) fillDefaults() {
	if c.TickDt <= 0 {
		c.TickDt = 100 * time.Millisecond
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 2 * time.Second
	}
	if c.SamplesPerTick <= 0 {
		c.SamplesPerTick = 80
	}
	if c.MaxBEPerMachine <= 0 {
		c.MaxBEPerMachine = 15
	}
	if c.Spec.Cores == 0 {
		c.Spec = cluster.DefaultSpec()
	}
	if c.Model.Gamma == 0 {
		c.Model = interference.Default()
	}
	if c.InertiaTau == 0 {
		c.InertiaTau = 4 * time.Second
	}
	if c.SLAGuard == 0 {
		c.SLAGuard = 0.12
	}
	if c.SLAGuard < 0 {
		c.SLAGuard = 0
	}
}

// PodStats is the per-Servpod outcome of a run.
type PodStats struct {
	Pod string
	// BEThroughput is the time-weighted mean normalized BE throughput on
	// the pod's machine (§5.1's metric; 1.0 = a solo whole-machine run).
	BEThroughput float64
	// CPUUtil and MemBWUtil are time-weighted mean utilizations.
	CPUUtil   float64
	MemBWUtil float64
	// EMU is the time-weighted mean effective machine utilization.
	EMU float64
	// Kills counts BE jobs killed by StopBE; Completions counts BE jobs
	// that finished.
	Kills       int
	Completions int
	// Crashes counts BE jobs lost to injected BE-crash faults
	// (Config.Faults); always 0 without a fault schedule.
	Crashes int
	// SojournSamples holds the pod's sojourn samples when
	// Config.CollectSamples is set.
	SojournSamples []float64
}

// ActionEvent is one controller decision in the timeline.
type ActionEvent struct {
	At     sim.Time
	Pod    string
	Action controller.Action
}

// RunStats is the outcome of an engine run.
type RunStats struct {
	Policy   string
	Duration time.Duration
	PerPod   map[string]*PodStats
	// WorstP99 is the worst sliding-window p99 observed (the paper's SLA
	// statistic); MeanP99 the time-averaged window p99.
	WorstP99 float64
	MeanP99  float64
	// Violations counts control ticks whose window p99 exceeded the SLA.
	Violations int
	// ViolationSeconds is Violations scaled by the control period: the
	// virtual seconds spent in SLA violation (the resilience metric).
	ViolationSeconds float64
	// DegradedPeriods counts control ticks decided in degraded mode —
	// the latency measurement was NaN or stale under a
	// measurement-dropout fault, so the conservative escalation replaced
	// Algorithm 2. Always 0 without a fault schedule.
	DegradedPeriods int
	// E2ESamples holds end-to-end samples when CollectSamples is set.
	E2ESamples []float64
	// Series and Actions hold the Fig. 17 timeline when Timeline is set.
	Series  map[string]*metrics.Series
	Actions []ActionEvent
}

// MeanEMU returns the across-pod mean EMU.
func (r *RunStats) MeanEMU() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.EMU
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanBEThroughput returns the across-pod mean BE throughput.
func (r *RunStats) MeanBEThroughput() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.BEThroughput
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanCPUUtil returns the across-pod mean CPU utilization.
func (r *RunStats) MeanCPUUtil() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.CPUUtil
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanMemBWUtil returns the across-pod mean memory-bandwidth utilization.
func (r *RunStats) MeanMemBWUtil() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.MemBWUtil
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// TotalKills sums BE kills across pods.
func (r *RunStats) TotalKills() int {
	n := 0
	for _, p := range r.PerPod {
		n += p.Kills
	}
	return n
}

// TotalCrashes sums fault-injected BE crashes across pods.
func (r *RunStats) TotalCrashes() int {
	n := 0
	for _, p := range r.PerPod {
		n += p.Crashes
	}
	return n
}

// podRuntime is the cold-path AoS view of one machine: topology, BE
// instance list, controller bookkeeping and instruments. Everything the
// tick reads every 100 ms lives in the engine's soaState block instead
// (indexed by idx); the control-plane methods (apply, launch, resume,
// crashBE, AdmitBE) mutate this view and mark the pod's SoA row dirty so
// the next tick re-syncs the derived caches.
type podRuntime struct {
	idx       int // row in Engine.soa
	comp      *workload.Component
	machine   *cluster.Machine
	agent     *isolation.Agent
	instances []*bejobs.Instance
	beSeq     int
	suspended bool
	stats     *PodStats

	// lastAction is the top controller's most recent decision for this
	// machine; it is the §4 feedback signal MachineViews reports to the
	// cluster scheduler (zero value StopBE: not accepting before the
	// first control tick).
	lastAction controller.Action

	rng     *sim.RNG
	growSeq int

	// instCache mirrors instances with each one's current grant resolved:
	// the BE-progress pass reads it instead of doing a per-instance
	// machine.Alloc map lookup per tick. Rebuilt whenever the pod's SoA
	// row is dirty — grants and instance states only change at control,
	// admission, crash and eviction events, all of which mark the row.
	instCache []beInst

	// Per-pod calibration instruments (nil without a bus; every use is
	// nil-safe): the analytic sojourn p99 the current operating point
	// implies, and completed BE jobs on this machine.
	obsSojournP99  *obs.Histogram
	obsCompletions *obs.Counter

	// degraded counts consecutive control periods decided blind (NaN or
	// stale p99 under a measurement-dropout fault); it drives the
	// conservative DisallowBEGrowth -> CutBE escalation and resets to 0
	// the moment a clean measurement returns.
	degraded int
}

// beInst is one entry of podRuntime.instCache: an instance plus its
// resolved allocation (nil when the owner holds no grant, exactly the
// case the scalar loop skipped) and the LLC working set its current core
// count implies.
type beInst struct {
	in     *bejobs.Instance
	alloc  *cluster.Alloc
	wanted float64 // PerCore[ResLLC] * cores, the cache-satisfaction denominator
}

// soaState is the struct-of-arrays hot block of the tick: one row per
// pod, every field a flat slice the chunked passes stream over. The
// control plane never touches it directly — apply/launch/resume/crashBE/
// AdmitBE mutate the podRuntime AoS view and set beDirty, and the demand
// pass re-syncs the derived BE caches (beDemand, beFreq, beCores,
// instCache) before anything reads them. See DESIGN.md §14.
type soaState struct {
	// Per-tick demand and pressure (recomputed every tick).
	lcDemand []cluster.Vector
	press    []cluster.Vector

	// BE aggregates, valid while beDirty is false: the machine's summed
	// BE demand vector, the frequency subcontroller's current BE clock,
	// and the running instances' total cores.
	beDemand []cluster.Vector
	beFreq   []float64
	beCores  []int
	beDirty  []bool

	// Smoothed interference state (Config.InertiaTau); initialized to 1,
	// the lazy-init value the scalar smooth used.
	inflate []float64
	cvInfl  []float64

	// Cached sojourn distribution per operating point. The sojourn pass
	// recomputes Station.At — Erlang-C plus a lognormal fit — only when
	// the (qps, inflate, cvInflate, muSkew, sigmaSkew) tuple changes; At
	// is pure, so an unchanged tuple reuses the identical distribution.
	// Constant-load runs (every profiling sweep level) pay Erlang-C once
	// per pod. The two skew entries are the profile-drift fault
	// multipliers and are constant 1 without a fault schedule. sjMu and
	// sjSigma denormalize the log-space parameters so a sample is a bare
	// exp(mu + sigma*normal) — bit-identical to sojourn.Sample, which is
	// exactly that expression over these two fields.
	sojourn []queueing.Sojourn
	sjKey   [][5]float64
	sjOK    []bool
	sjMu    []float64
	sjSigma []float64

	// Utilization accumulators.
	cpu []metrics.Usage
	mbw []metrics.Usage
	bet []metrics.Usage
	emu []metrics.Usage

	// Fault scratch, filled by the fault pass each tick; untouched (and
	// unread) when Config.Faults is nil.
	stormMul []float64
	freqCap  []float64
	muSkew   []float64
	sigSkew  []float64

	// Sampling-pass layout: the call graph flattened to stages in
	// traversal order (stagePod maps stage -> pod row), per-stage
	// lognormal parameters gathered per tick, the SamplesPerTick×stages
	// draw matrix (draw-major stage-minor, the frozen RNG order), and the
	// per-draw end-to-end latencies.
	stagePod []int
	stageMu  []float64
	stageSig []float64
	vals     []float64
	lats     []float64
	plan     *samplePlan

	// Tick constants, precomputed once in New.
	alpha    float64  // EMA coefficient 1-exp(-dt/tau); unused when tau < 0
	dtHours  float64  // TickDt in hours, the Advance timebase
	warmupAt sim.Time // end of Config.Warmup
}

// samplePlan mirrors workload.Node with the component name resolved to a
// stage index: eval replays Node.Latency's exact recursion — including
// its right-nested chain association and strict > parallel max — over a
// row of the draw matrix. The association matters: a flat left-to-right
// sum over the same addends rounds differently, so the combine must copy
// the walk, not just its multiset of terms.
type samplePlan struct {
	stage    int
	parallel bool
	children []*samplePlan
}

// eval is Node.Latency with sojourn(comp) replaced by vals[stage].
func (n *samplePlan) eval(vals []float64) float64 {
	t := vals[n.stage]
	if len(n.children) == 0 {
		return t
	}
	if n.parallel {
		worst := 0.0
		for _, ch := range n.children {
			if l := ch.eval(vals); l > worst {
				worst = l
			}
		}
		return t + worst
	}
	for _, ch := range n.children {
		t += ch.eval(vals)
	}
	return t
}

// Engine executes one configured run.
type Engine struct {
	cfg       Config
	pods      []*podRuntime
	podByName map[string]*podRuntime
	soa       soaState
	tail      *metrics.TailTracker
	rng       *sim.RNG
	stats     *RunStats

	// pol is cfg.Policy lifted to the full-context interface once at New
	// time (controller.AsInput); nil when the run has no policy. The
	// control tick only ever talks to pol, so legacy 3-argument policies
	// and registry InputPolicies take the identical code path.
	pol controller.InputPolicy

	// refTick switches tick to the pre-SoA scalar reference
	// implementation (tickReference). Tests set it to pin the SoA passes
	// bitwise-equal to the original single-loop tick; it is never set in
	// production paths.
	refTick bool

	// sampleFn is the per-component sampling callback handed to
	// Graph.Latency; it is built once in New so the per-tick sampling
	// loop allocates nothing.
	sampleFn func(string) float64

	meanP99Accum float64
	meanP99N     int
	lastObserve  sim.Time

	// Incremental-run state. Run is a single RunUntil sweep; the fleet
	// layer instead calls RunUntil once per epoch, interleaving dispatch
	// barriers between slices. cursor is the next tick to execute,
	// nextControl the next control-tick boundary; both persist across
	// RunUntil calls so a chunked run is bitwise identical to one sweep.
	cursor      sim.Time
	nextControl sim.Time
	clock       *sim.Clock

	// evicted accumulates killed/crashed BE instances for TakeEvicted;
	// only populated under Config.ExternalBE.
	evicted []EvictedBE

	// Fault-injection state. lastFaultScan is the previous tick time: the
	// (lastFaultScan, now] window makes each crash fire exactly once and
	// each fault edge report exactly once. staleP99 is the last clean
	// window p99, replayed to the controller under a stale-mode
	// measurement dropout. Both are untouched when cfg.Faults is nil.
	lastFaultScan sim.Time
	staleP99      float64
	faultEdges    []faults.Edge
	obsFaults     *obs.Counter

	// Observability (internal/obs). All fields are zero/nil when no bus
	// was installed at New time, and every use below is a nil check, so an
	// untraced run pays nothing (BenchmarkObsDisabled pins 0 allocs). The
	// bus reads only sim.Time and never touches the engine's RNG streams,
	// so traced and untraced runs are byte-identical on stdout.
	obsScope     obs.Scope
	obsTicks     *obs.Counter
	obsRuns      *obs.Counter
	obsDecisions [5]*obs.Counter
	obsBE        map[string]*obs.Counter
	obsSlackH    *obs.Histogram
	obsP99H      *obs.Histogram
	obsLoadH     *obs.Histogram
}

// New builds an engine: one machine per Servpod, LC pinned per the
// component's reservation.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	e := &Engine{
		cfg:           cfg,
		tail:          metrics.NewTailTracker(3 * time.Second),
		rng:           sim.NewRNG(cfg.Seed).Fork("engine"),
		lastFaultScan: sim.Time(-1),
		clock:         sim.NewClock(),
		nextControl:   sim.Time(0).Add(cfg.ControlPeriod),
		stats: &RunStats{
			PerPod: make(map[string]*PodStats),
			Series: make(map[string]*metrics.Series),
		},
	}
	e.pol = controller.AsInput(cfg.Policy)
	if cfg.Policy != nil {
		e.stats.Policy = cfg.Policy.Name()
	} else {
		e.stats.Policy = "solo"
	}
	bus := obs.Active()
	if bus != nil {
		label := cfg.Label
		if label == "" {
			label = fmt.Sprintf("%s|%s|seed=%d", cfg.Service.Name, e.stats.Policy, cfg.Seed)
		}
		e.obsScope = bus.Scope(label)
		e.obsTicks = bus.Counter("rhythm_engine_ticks_total")
		e.obsRuns = bus.Counter("rhythm_engine_runs_total")
		for a := controller.StopBE; a <= controller.AllowBEGrowth; a++ {
			e.obsDecisions[a] = bus.Counter("rhythm_decisions_total", "action", a.String())
		}
		e.obsBE = make(map[string]*obs.Counter, len(beOps))
		for _, op := range beOps {
			e.obsBE[op] = bus.Counter("rhythm_be_events_total", "op", op)
		}
		e.obsSlackH = bus.Histogram("rhythm_decision_slack", obs.DefBuckets)
		e.obsP99H = bus.Histogram("rhythm_window_p99_seconds", obs.LatencyBuckets)
		e.obsLoadH = bus.Histogram("rhythm_offered_load", obs.DefBuckets)
		e.obsFaults = bus.Counter("rhythm_fault_events_total")
	}
	for i, comp := range cfg.Service.Components {
		m := cluster.NewMachine(fmt.Sprintf("m%d", i), cfg.Spec)
		agent := isolation.NewAgent(m, comp.Name)
		if err := agent.PinLC(comp.Cores, comp.LLCWays, comp.MemoryGB, comp.MaxNetGbps); err != nil {
			return nil, fmt.Errorf("engine: pinning %s: %w", comp.Name, err)
		}
		ps := &PodStats{Pod: comp.Name}
		e.stats.PerPod[comp.Name] = ps
		p := &podRuntime{
			comp:    comp,
			machine: m,
			agent:   agent,
			stats:   ps,
			rng:     e.rng.Fork("pod-" + comp.Name),
		}
		if bus != nil {
			// Per-Servpod calibration series. Fleet replicas share
			// component names, so replicated pods aggregate into one
			// series per component — the granularity a deployment's own
			// dashboards use.
			p.obsSojournP99 = bus.Histogram("rhythm_pod_sojourn_p99_seconds",
				obs.LatencyBuckets, "pod", comp.Name)
			p.obsCompletions = bus.Counter("rhythm_be_completions_total", "pod", comp.Name)
		}
		e.pods = append(e.pods, p)
	}
	e.podByName = make(map[string]*podRuntime, len(e.pods))
	for i, p := range e.pods {
		p.idx = i
		e.podByName[p.comp.Name] = p
	}
	e.initSoA()
	// One closure for the whole run: the scalar reference walk draws from
	// the pod's cached sojourn distribution in traversal order (the RNG
	// stream consumption order is part of the determinism contract,
	// DESIGN.md §7) and appends sojourn samples directly instead of
	// staging them in a per-sample map. The SoA sampling pass consumes
	// the identical stream through sim.LognormalDraws instead.
	e.sampleFn = func(c string) float64 {
		i := e.podByName[c].idx
		v := math.Exp(e.soa.sjMu[i] + e.soa.sjSigma[i]*e.rng.NormFloat64())
		if e.cfg.CollectSamples {
			e.pods[i].stats.SojournSamples = append(e.pods[i].stats.SojournSamples, v)
		}
		return v
	}
	return e, nil
}

// initSoA sizes the struct-of-arrays block, seeds the smoothing state,
// flattens the call graph into the sampling plan and precomputes the tick
// constants. Every pod row starts dirty so the first tick syncs the BE
// caches.
func (e *Engine) initSoA() {
	n := len(e.pods)
	s := &e.soa
	s.lcDemand = make([]cluster.Vector, n)
	s.press = make([]cluster.Vector, n)
	s.beDemand = make([]cluster.Vector, n)
	s.beFreq = make([]float64, n)
	s.beCores = make([]int, n)
	s.beDirty = make([]bool, n)
	s.inflate = make([]float64, n)
	s.cvInfl = make([]float64, n)
	s.sojourn = make([]queueing.Sojourn, n)
	s.sjKey = make([][5]float64, n)
	s.sjOK = make([]bool, n)
	s.sjMu = make([]float64, n)
	s.sjSigma = make([]float64, n)
	s.cpu = make([]metrics.Usage, n)
	s.mbw = make([]metrics.Usage, n)
	s.bet = make([]metrics.Usage, n)
	s.emu = make([]metrics.Usage, n)
	s.stormMul = make([]float64, n)
	s.freqCap = make([]float64, n)
	s.muSkew = make([]float64, n)
	s.sigSkew = make([]float64, n)
	for i := range s.beDirty {
		s.beDirty[i] = true
		// The scalar smooth lazily initialized its state to (1, 1) on
		// first use; the SoA rows start there outright — same first EMA
		// step, no per-tick zero check.
		s.inflate[i], s.cvInfl[i] = 1, 1
	}
	s.plan = e.buildPlan(e.cfg.Service.Graph)
	stages := len(s.stagePod)
	s.stageMu = make([]float64, stages)
	s.stageSig = make([]float64, stages)
	s.vals = make([]float64, e.cfg.SamplesPerTick*stages)
	s.lats = make([]float64, e.cfg.SamplesPerTick)
	s.alpha = 1 - math.Exp(-e.cfg.TickDt.Seconds()/e.cfg.InertiaTau.Seconds())
	s.dtHours = e.cfg.TickDt.Hours()
	s.warmupAt = sim.Time(0).Add(e.cfg.Warmup)
}

// buildPlan flattens the call graph in Latency's traversal order (node
// first, then children left to right — the order sampleFn is called in),
// assigning each node the next stage index and recording which pod row it
// samples.
func (e *Engine) buildPlan(n *workload.Node) *samplePlan {
	p := &samplePlan{stage: len(e.soa.stagePod), parallel: n.Parallel}
	e.soa.stagePod = append(e.soa.stagePod, e.podByName[n.Comp].idx)
	for _, ch := range n.Children {
		p.children = append(p.children, e.buildPlan(ch))
	}
	return p
}

// beOps are the BE lifecycle transitions the engine reports on the bus.
var beOps = []string{"launch", "kill", "suspend", "resume", "grow", "cut", "crash"}

// z99 is the standard-normal 0.99 quantile, the multiplier that turns the
// cached lognormal (mu, sigma) into a per-pod sojourn p99.
var z99 = sim.NormQuantile(0.99)

// beEvent records one BE lifecycle transition on the bus, with the
// instance's allocation after the transition. Free when no bus is active.
func (e *Engine) beEvent(now sim.Time, p *podRuntime, id, op string) {
	if !e.obsScope.Enabled() {
		return
	}
	var cores, ways int
	if al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: id}); al != nil {
		cores, ways = al.Cores, al.LLCWays
	}
	e.obsScope.BE(int64(now), p.comp.Name, id, op, cores, ways)
	e.obsBE[op].Inc()
}

// beDemand aggregates the running BE instances' pressure on the machine.
func (p *podRuntime) beDemand() cluster.Vector {
	var v cluster.Vector
	for _, in := range p.instances {
		if in.State != bejobs.Running {
			continue
		}
		alloc := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
		if alloc == nil {
			continue
		}
		d := in.Demand(alloc.Cores)
		// Throttled cores draw quadratically less power.
		if alloc.FreqGHz > 0 && alloc.FreqGHz < p.machine.Spec.MaxGHz {
			ratio := alloc.FreqGHz / p.machine.Spec.MaxGHz
			d[cluster.ResPower] *= ratio * ratio
		}
		v = v.Add(d)
	}
	return v
}

// Run executes the configured run for the given duration of virtual time
// and returns the collected statistics.
func (e *Engine) Run(duration time.Duration) (*RunStats, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("engine: non-positive run duration %v", duration)
	}
	e.stats.Duration = duration
	end := sim.Time(0).Add(duration)

	if e.obsScope.Enabled() {
		e.obsRuns.Inc()
		e.obsScope.RunPhase(0, "start", fmt.Sprintf("service=%s policy=%s sla=%gs duration=%v seed=%d",
			e.cfg.Service.Name, e.stats.Policy, e.cfg.SLA, duration, e.cfg.Seed))
	}
	e.RunUntil(end)
	if e.obsScope.Enabled() {
		e.obsScope.RunPhase(int64(end), "end", fmt.Sprintf("worst_p99=%gs violations=%d",
			e.stats.WorstP99, e.stats.Violations))
	}
	return e.stats, nil
}

// RunUntil advances the simulation up to (but not including) end on the
// tick grid and returns the stats so far. The tick cursor and the control
// boundary persist across calls, so running one 20 s sweep and running
// ten 2 s slices execute the identical tick/control sequence and consume
// the identical RNG streams — the invariant that lets the fleet layer
// interleave scheduler barriers between slices without perturbing any
// per-machine byte. The caller owns end-of-run bookkeeping (stats.Duration,
// obs run brackets); Run wraps this with both.
func (e *Engine) RunUntil(end sim.Time) *RunStats {
	for ; e.cursor < end; e.cursor = e.cursor.Add(e.cfg.TickDt) {
		now := e.cursor
		e.clock.RunUntil(now)
		load := e.cfg.Pattern.Load(now)
		if e.cfg.Faults != nil {
			// Load surges multiply the offered pattern; both the tick
			// and the controller see the surged load, exactly as a
			// real traffic spike would reach both.
			load *= e.cfg.Faults.LoadMul(now)
		}
		e.tick(now, load)
		if now >= e.nextControl {
			e.controlTick(now, load)
			e.nextControl = e.nextControl.Add(e.cfg.ControlPeriod)
		}
	}
	return e.stats
}

// Now returns the next tick the engine will execute (virtual time reached
// so far).
func (e *Engine) Now() sim.Time { return e.cursor }

// Step advances the engine by exactly one simulation tick at the given
// virtual time and load fraction, without running the controllers. It is
// the benchmark entry point for the per-tick hot path (cmd/rhythm-bench);
// experiments go through Run, which drives Step's internals on the tick
// grid and interleaves control decisions.
func (e *Engine) Step(now sim.Time, load float64) { e.tick(now, load) }

// tick advances the world by one TickDt at the given load fraction. The
// default implementation is the SoA pass sequence; refTick selects the
// pre-SoA scalar reference the differential tests pin it against. Both
// produce bit-identical state: the per-pod arithmetic is the same
// expressions in the same order, no pass consumes engine RNG except the
// sampling step, and the sampling step draws the identical frozen stream
// (draw-major, stage-minor — DESIGN.md §9) through sim.LognormalDraws.
func (e *Engine) tick(now sim.Time, load float64) {
	if e.refTick {
		e.tickReference(now, load)
		return
	}
	dt := e.cfg.TickDt
	qps := load * e.cfg.Service.MaxLoadQPS
	measuring := now >= e.soa.warmupAt

	// Fault hooks run first as sparse edits (crashes mutate the AoS view
	// and mark rows dirty; storm/cap/drift magnitudes land in scratch
	// rows), so the passes themselves stay branch-light. Pods are
	// independent machines, so hoisting the per-pod crash check ahead of
	// the arithmetic reorders nothing observable: within a tick the only
	// scope events before the end-of-tick Tick event are the crash BE
	// events, and they stay in pod order.
	if e.cfg.Faults != nil {
		e.passFaults(now)
	}
	e.passDemand(load)
	e.passPressure()
	e.passInflation()
	e.passSojourn(qps)
	e.passUtilization(dt, measuring)
	e.passBEProgress(load, dt, measuring)
	e.passSample(now)
	e.finishTick(now, dt, load, qps, measuring)
}

// passFaults applies crash triggers to the AoS view and gathers the
// tick's storm/frequency-cap/drift magnitudes into the fault scratch
// rows. Only called with a fault schedule configured.
func (e *Engine) passFaults(now sim.Time) {
	f := e.cfg.Faults
	s := &e.soa
	for i, p := range e.pods {
		if f.CrashTriggered(e.lastFaultScan, now, p.comp.Name) {
			e.crashBE(p, now)
		}
		s.stormMul[i] = f.InterferenceMul(now, p.comp.Name)
		s.freqCap[i] = f.FreqCapGHz(now, p.comp.Name)
		s.muSkew[i], s.sigSkew[i] = f.Drift(now, p.comp.Name)
	}
}

// passDemand gathers per-pod LC demand at the offered load and re-syncs
// the BE caches of any row marked dirty since the last tick.
func (e *Engine) passDemand(load float64) {
	s := &e.soa
	for i, p := range e.pods {
		s.lcDemand[i] = p.comp.DemandAt(load)
		if s.beDirty[i] {
			e.refreshBE(i, p)
		}
	}
}

// refreshBE re-derives one pod's BE row from the AoS view: the summed
// demand vector, the frequency subcontroller's BE clock, the running
// cores, and the per-instance allocation cache the BE-progress pass
// iterates. This is the single AoS -> SoA sync point; every mutation site
// (apply, launch, resume, crashBE, AdmitBE) marks the row dirty.
func (e *Engine) refreshBE(i int, p *podRuntime) {
	s := &e.soa
	s.beDemand[i] = p.beDemand()
	s.beFreq[i] = p.agent.BEFrequency()
	s.beCores[i] = p.runningBEAlloc().Cores
	p.instCache = p.instCache[:0]
	for _, in := range p.instances {
		al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
		var wanted float64
		if al != nil {
			wanted = in.Spec.PerCore[cluster.ResLLC] * float64(al.Cores)
		}
		p.instCache = append(p.instCache, beInst{in: in, alloc: al, wanted: wanted})
	}
	s.beDirty[i] = false
}

// markDirty flags a pod's SoA row for re-sync on the next tick.
func (e *Engine) markDirty(p *podRuntime) { e.soa.beDirty[p.idx] = true }

// passPressure maps demand to the interference pressure vector, with
// storm faults multiplying the pressure before the inflation map — a
// storm behaves exactly like that much more BE demand hammering the
// machine.
func (e *Engine) passPressure() {
	s := &e.soa
	faultsOn := e.cfg.Faults != nil
	for i, p := range e.pods {
		press := e.cfg.Model.Pressure(p.machine.Spec, s.lcDemand[i], s.beDemand[i])
		if faultsOn {
			if m := s.stormMul[i]; m != 1 {
				press = press.Scale(m)
			}
		}
		s.press[i] = press
	}
}

// passInflation maps pressure to the latency inflation targets (a
// machine-slowdown frequency cap stretches LC service time like any DVFS
// step-down would) and applies the first-order inertia of
// Config.InertiaTau with the precomputed EMA coefficient — the same
// alpha the scalar smooth recomputed per call, so the same bits.
func (e *Engine) passInflation() {
	s := &e.soa
	faultsOn := e.cfg.Faults != nil
	bypass := e.cfg.InertiaTau < 0
	for i, p := range e.pods {
		inflate, cvInflate := e.cfg.Model.Inflation(p.comp, s.press[i])
		if faultsOn {
			if fc := s.freqCap[i]; fc > 0 && fc < p.machine.Spec.MaxGHz {
				inflate *= interference.FreqInflation(p.comp, fc, p.machine.Spec.MaxGHz)
			}
		}
		if bypass {
			s.inflate[i], s.cvInfl[i] = inflate, cvInflate
			continue
		}
		s.inflate[i] += (inflate - s.inflate[i]) * s.alpha
		s.cvInfl[i] += (cvInflate - s.cvInfl[i]) * s.alpha
	}
}

// passSojourn refreshes the cached sojourn distribution of every pod
// whose (qps, inflate, cvInflate, muSkew, sigmaSkew) key changed.
func (e *Engine) passSojourn(qps float64) {
	s := &e.soa
	faultsOn := e.cfg.Faults != nil
	for i, p := range e.pods {
		muSkew, sigmaSkew := 1.0, 1.0
		if faultsOn {
			muSkew, sigmaSkew = s.muSkew[i], s.sigSkew[i]
		}
		key := [5]float64{qps, s.inflate[i], s.cvInfl[i], muSkew, sigmaSkew}
		if s.sjOK[i] && key == s.sjKey[i] {
			continue
		}
		s.sojourn[i] = p.comp.Station.At(qps, s.inflate[i], s.cvInfl[i], 1)
		mu, sigma := s.sojourn[i].LogParams()
		// Profile drift skews the fitted lognormal away from what was
		// profiled: the mean by muSkew (an additive log-space shift),
		// the log-space sigma by sigmaSkew.
		if muSkew != 1 {
			mu += math.Log(muSkew)
		}
		if sigmaSkew != 1 {
			sigma *= sigmaSkew
		}
		s.sjMu[i], s.sjSigma[i] = mu, sigma
		s.sjKey[i], s.sjOK[i] = key, true
	}
}

// passUtilization does the utilization accounting: LC cores are busy in
// proportion to station utilization, BE cores are fully busy while
// running.
func (e *Engine) passUtilization(dt time.Duration, measuring bool) {
	s := &e.soa
	for i, p := range e.pods {
		lcBusy := float64(p.comp.Cores) * s.sojourn[i].Utilization
		cpuUtil := (lcBusy + float64(s.beCores[i])) / float64(p.machine.Spec.Cores)
		lcBW := s.lcDemand[i][cluster.ResMemBW]
		servedBW := lcBW + minf(s.beDemand[i][cluster.ResMemBW], p.machine.Spec.MemBWGBs-lcBW)
		mbwUtil := sim.Clamp(servedBW/p.machine.Spec.MemBWGBs, 0, 1)
		if measuring {
			s.cpu[i].Observe(cpuUtil, dt)
			s.mbw[i].Observe(mbwUtil, dt)
		}
	}
}

// passBEProgress advances BE instances: satisfaction is limited by the
// bandwidth the machine can actually serve and by DVFS throttling, with
// per-instance grants read from the dirty-synced instCache instead of a
// per-tick allocation map lookup.
func (e *Engine) passBEProgress(load float64, dt time.Duration, measuring bool) {
	s := &e.soa
	faultsOn := e.cfg.Faults != nil
	for i, p := range e.pods {
		sat := 1.0
		if s.beDemand[i][cluster.ResMemBW] > 0 {
			avail := p.machine.Spec.MemBWGBs - s.lcDemand[i][cluster.ResMemBW]
			if avail < 0 {
				avail = 0
			}
			sat = minf(sat, avail/s.beDemand[i][cluster.ResMemBW])
		}
		beFreq := s.beFreq[i]
		if faultsOn {
			if fc := s.freqCap[i]; fc > 0 && fc < beFreq {
				// A slowed machine caps BE clocks too, below whatever
				// the frequency subcontroller already granted.
				beFreq = fc
			}
		}
		freqScale := beFreq / p.machine.Spec.MaxGHz
		beRate := 0.0
		for _, c := range p.instCache {
			if c.alloc == nil {
				continue
			}
			// Cache-bound jobs also slow down when their CAT partition
			// is smaller than their working set.
			instSat := sat
			if c.wanted > 0 {
				if cacheSat := float64(c.alloc.LLCWays) / c.wanted; cacheSat < instSat {
					// Cache starvation degrades but does not stop
					// progress (misses stream to DRAM).
					if cacheSat < 0.2 {
						cacheSat = 0.2
					}
					instSat = cacheSat
				}
			}
			rate := c.in.Rate(c.alloc.Cores, instSat) * freqScale
			done := c.in.Advance(rate, s.dtHours)
			p.stats.Completions += done
			if done > 0 {
				p.obsCompletions.Add(uint64(done))
			}
			beRate += rate
		}
		if measuring {
			s.bet[i].Observe(beRate, dt)
			s.emu[i].Observe(metrics.EMU(load, beRate), dt)
		}
		p.stats.BEThroughput = s.bet[i].Mean()
		p.stats.CPUUtil = s.cpu[i].Mean()
		p.stats.MemBWUtil = s.mbw[i].Mean()
		p.stats.EMU = s.emu[i].Mean()
	}
}

// passSample draws the tick's end-to-end latency samples: gather the
// per-stage lognormal parameters, fill the draw matrix in the frozen
// stream order with sim.LognormalDraws, then combine each row through
// the sampling plan — the exact Node.Latency recursion — and bulk-insert
// into the tail window. CollectSamples replays the rows into the per-pod
// sample slices in the same element order the scalar walk appended them.
func (e *Engine) passSample(now sim.Time) {
	s := &e.soa
	n := e.cfg.SamplesPerTick
	stages := len(s.stagePod)
	for j, pi := range s.stagePod {
		s.stageMu[j], s.stageSig[j] = s.sjMu[pi], s.sjSigma[pi]
	}
	sim.LognormalDraws(s.vals, s.stageMu, s.stageSig, e.rng)
	for d := 0; d < n; d++ {
		s.lats[d] = s.plan.eval(s.vals[d*stages : (d+1)*stages])
	}
	e.tail.AddBatch(now, s.lats)
	if e.cfg.CollectSamples {
		for d := 0; d < n; d++ {
			row := s.vals[d*stages : (d+1)*stages]
			for j, pi := range s.stagePod {
				pp := e.pods[pi]
				pp.stats.SojournSamples = append(pp.stats.SojournSamples, row[j])
			}
			e.stats.E2ESamples = append(e.stats.E2ESamples, s.lats[d])
		}
	}
}

// finishTick is the shared tick epilogue: the once-per-second window
// observation (the paper records the p99 once per second, §5.1's SLA
// statistic), tick counters and fault-edge reporting.
func (e *Engine) finishTick(now sim.Time, dt time.Duration, load, qps float64, measuring bool) {
	if measuring && now-e.lastObserve >= sim.Time(time.Second) {
		e.lastObserve = now
		e.tail.ObserveWindow(now)
		worst, _ := e.tail.Worst()
		e.stats.WorstP99 = worst
	}

	e.obsTicks.Inc()
	if e.obsScope.Enabled() {
		e.obsScope.Tick(int64(now), int64(dt), load, qps, e.cfg.SamplesPerTick)
		if e.cfg.Faults != nil {
			e.emitFaultEdges(now)
		}
	}
	e.lastFaultScan = now
}

// RunPass executes one named pass of the SoA tick in isolation at the
// given time and load — the per-pass cost-attribution entry point for
// internal/benchmarks and cmd/rhythm-bench. Valid names: "demand" (LC
// demand gather + dirty BE re-sync), "inflation" (pressure + inflation +
// inertia), "sojourn" (cache-key check and refresh), "sample" (draw
// matrix + plan combine + tail insert; consumes engine RNG). Reports
// false for an unknown name. Experiments never call this; they go
// through Run/RunUntil.
func (e *Engine) RunPass(name string, now sim.Time, load float64) bool {
	switch name {
	case "demand":
		e.passDemand(load)
	case "inflation":
		e.passPressure()
		e.passInflation()
	case "sojourn":
		e.passSojourn(load * e.cfg.Service.MaxLoadQPS)
	case "sample":
		e.passSample(now)
	default:
		return false
	}
	return true
}

// tickReference is the pre-SoA tick, kept verbatim as the differential
// oracle (TestTickSoAMatchesScalar): one scalar loop over pods with no
// derived caches — per-instance allocation lookups, per-call smoothing
// coefficient, per-draw graph walks through sampleFn. It shares the SoA
// rows as its backing state so a reference engine and a passes engine
// evolve the same fields, but reads everything the expensive way.
func (e *Engine) tickReference(now sim.Time, load float64) {
	dt := e.cfg.TickDt
	qps := load * e.cfg.Service.MaxLoadQPS
	measuring := now >= e.soa.warmupAt
	s := &e.soa

	// Per-pod sojourn distributions under current interference, cached
	// per operating point (see soaState.sojourn).
	for i, p := range e.pods {
		if e.cfg.Faults != nil && e.cfg.Faults.CrashTriggered(e.lastFaultScan, now, p.comp.Name) {
			e.crashBE(p, now)
		}
		lcDemand := p.comp.DemandAt(load)
		beDemand := p.beDemand()
		press := e.cfg.Model.Pressure(p.machine.Spec, lcDemand, beDemand)
		muSkew, sigmaSkew := 1.0, 1.0
		freqCap := 0.0
		if e.cfg.Faults != nil {
			if m := e.cfg.Faults.InterferenceMul(now, p.comp.Name); m != 1 {
				press = press.Scale(m)
			}
			freqCap = e.cfg.Faults.FreqCapGHz(now, p.comp.Name)
			muSkew, sigmaSkew = e.cfg.Faults.Drift(now, p.comp.Name)
		}
		inflate, cvInflate := e.cfg.Model.Inflation(p.comp, press)
		if freqCap > 0 && freqCap < p.machine.Spec.MaxGHz {
			inflate *= interference.FreqInflation(p.comp, freqCap, p.machine.Spec.MaxGHz)
		}
		if e.cfg.InertiaTau >= 0 {
			// The scalar smooth recomputed alpha per call.
			alpha := 1 - math.Exp(-dt.Seconds()/e.cfg.InertiaTau.Seconds())
			s.inflate[i] += (inflate - s.inflate[i]) * alpha
			s.cvInfl[i] += (cvInflate - s.cvInfl[i]) * alpha
			inflate, cvInflate = s.inflate[i], s.cvInfl[i]
		} else {
			s.inflate[i], s.cvInfl[i] = inflate, cvInflate
		}
		if key := [5]float64{qps, inflate, cvInflate, muSkew, sigmaSkew}; !s.sjOK[i] || key != s.sjKey[i] {
			s.sojourn[i] = p.comp.Station.At(qps, inflate, cvInflate, 1)
			mu, sigma := s.sojourn[i].LogParams()
			if muSkew != 1 {
				mu += math.Log(muSkew)
			}
			if sigmaSkew != 1 {
				sigma *= sigmaSkew
			}
			s.sjMu[i], s.sjSigma[i] = mu, sigma
			s.sjKey[i], s.sjOK[i] = key, true
		}
		sj := s.sojourn[i]

		beAlloc := p.runningBEAlloc()
		lcBusy := float64(p.comp.Cores) * sj.Utilization
		cpuUtil := (lcBusy + float64(beAlloc.Cores)) / float64(p.machine.Spec.Cores)
		servedBW := lcDemand[cluster.ResMemBW] + minf(beDemand[cluster.ResMemBW], p.machine.Spec.MemBWGBs-lcDemand[cluster.ResMemBW])
		mbwUtil := sim.Clamp(servedBW/p.machine.Spec.MemBWGBs, 0, 1)
		if measuring {
			s.cpu[i].Observe(cpuUtil, dt)
			s.mbw[i].Observe(mbwUtil, dt)
		}

		sat := 1.0
		if beDemand[cluster.ResMemBW] > 0 {
			avail := p.machine.Spec.MemBWGBs - lcDemand[cluster.ResMemBW]
			if avail < 0 {
				avail = 0
			}
			sat = minf(sat, avail/beDemand[cluster.ResMemBW])
		}
		beFreq := p.agent.BEFrequency()
		if freqCap > 0 && freqCap < beFreq {
			beFreq = freqCap
		}
		freqScale := beFreq / p.machine.Spec.MaxGHz
		beRate := 0.0
		for _, in := range p.instances {
			alloc := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
			if alloc == nil {
				continue
			}
			instSat := sat
			if wanted := in.Spec.PerCore[cluster.ResLLC] * float64(alloc.Cores); wanted > 0 {
				if cacheSat := float64(alloc.LLCWays) / wanted; cacheSat < instSat {
					if cacheSat < 0.2 {
						cacheSat = 0.2
					}
					instSat = cacheSat
				}
			}
			rate := in.Rate(alloc.Cores, instSat) * freqScale
			done := in.Advance(rate, dt.Hours())
			p.stats.Completions += done
			if done > 0 {
				p.obsCompletions.Add(uint64(done))
			}
			beRate += rate
		}
		if measuring {
			s.bet[i].Observe(beRate, dt)
			s.emu[i].Observe(metrics.EMU(load, beRate), dt)
		}
		p.stats.BEThroughput = s.bet[i].Mean()
		p.stats.CPUUtil = s.cpu[i].Mean()
		p.stats.MemBWUtil = s.mbw[i].Mean()
		p.stats.EMU = s.emu[i].Mean()
	}

	// End-to-end latency sampling through the call graph, one walk per
	// draw.
	for i := 0; i < e.cfg.SamplesPerTick; i++ {
		lat := e.cfg.Service.Graph.Latency(e.sampleFn)
		e.tail.Add(now, lat)
		if e.cfg.CollectSamples {
			e.stats.E2ESamples = append(e.stats.E2ESamples, lat)
		}
	}
	e.finishTick(now, dt, load, qps, measuring)
}

// emitFaultEdges reports fault activations and recoveries in the tick's
// (lastFaultScan, now] window on the bus. Only called with a bus
// installed; untraced runs never scan.
func (e *Engine) emitFaultEdges(now sim.Time) {
	e.faultEdges = e.cfg.Faults.EdgesIn(e.faultEdges[:0], e.lastFaultScan, now)
	for _, edge := range e.faultEdges {
		ev := edge.Event
		op := "start"
		if !edge.Start {
			op = "end"
		}
		mag := ev.Magnitude
		detail := ""
		switch ev.Kind {
		case faults.MachineSlowdown:
			mag = ev.FreqGHz
		case faults.ProfileDrift:
			mag = ev.MuSkew
		case faults.BECrash:
			detail = "restart_delay=" + ev.RestartDelay.String()
		case faults.MeasurementDropout:
			detail = "mode=" + string(ev.Mode)
		}
		e.obsScope.Fault(int64(now), ev.Pod, string(ev.Kind), op, mag, detail)
		e.obsFaults.Inc()
	}
}

// crashBE is the BE-crash fault: every instance on the machine dies at
// once (unlike StopBE, these count as crashes, not policy kills); the
// schedule's restart delay then blocks launch until it expires.
func (e *Engine) crashBE(p *podRuntime, now sim.Time) {
	for _, in := range p.instances {
		if in.State == bejobs.Running || in.State == bejobs.Suspended {
			in.State = bejobs.Killed
			p.stats.Crashes++
			if e.cfg.ExternalBE {
				e.evicted = append(e.evicted, EvictedBE{Pod: p.comp.Name, ID: in.ID, Type: in.Spec.Type, Crashed: true})
			}
		}
		p.agent.KillBE(in.ID)
		e.beEvent(now, p, in.ID, "crash")
	}
	p.instances = p.instances[:0]
	p.suspended = false
	e.markDirty(p)
}

// runningBEAlloc sums allocations of running (not suspended) instances.
func (p *podRuntime) runningBEAlloc() cluster.Alloc {
	var a cluster.Alloc
	for _, in := range p.instances {
		if in.State != bejobs.Running {
			continue
		}
		if al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID}); al != nil {
			a.Cores += al.Cores
			a.LLCWays += al.LLCWays
			a.MemoryGB += al.MemoryGB
		}
	}
	return a
}

// controlTick runs the top controller and the four subcontrollers on every
// machine (§3.5.2).
func (e *Engine) controlTick(now sim.Time, load float64) {
	// truthP99 is what the latency tracker actually measured; p99 is what
	// the controller gets to see. They differ only under a
	// measurement-dropout fault, which poisons the controller's view (NaN
	// or a stale replay) while the run statistics stay honest.
	truthP99 := e.tail.P99()
	p99 := truthP99
	degraded := false
	degradedCause := ""
	if e.cfg.Faults != nil {
		if mode, ok := e.cfg.Faults.Dropout(now); ok {
			degraded = true
			if mode == faults.DropNaN {
				p99 = math.NaN()
				degradedCause = "p99 NaN"
			} else {
				p99 = e.staleP99
				degradedCause = "p99 stale"
			}
		} else {
			e.staleP99 = truthP99
		}
	}
	slack := 1.0
	if e.cfg.SLA > 0 {
		guarded := e.cfg.SLA * (1 - e.cfg.SLAGuard)
		slack = (guarded - p99) / guarded
	}
	if now >= sim.Time(0).Add(e.cfg.Warmup) {
		if e.cfg.SLA > 0 && truthP99 > e.cfg.SLA {
			e.stats.Violations++
			e.stats.ViolationSeconds += e.cfg.ControlPeriod.Seconds()
		}
		// Time-averaged window p99.
		e.meanP99Accum += truthP99
		e.meanP99N++
		e.stats.MeanP99 = e.meanP99Accum / float64(e.meanP99N)
	}
	if degraded {
		e.stats.DegradedPeriods++
	}

	if !math.IsNaN(slack) {
		e.obsSlackH.Observe(slack)
	}
	if !math.IsNaN(p99) {
		e.obsP99H.Observe(p99)
	}
	e.obsLoadH.Observe(load)
	hasBE := e.cfg.Policy != nil && (len(e.cfg.BETypes) > 0 || e.cfg.ExternalBE)
	for _, p := range e.pods {
		if e.soa.sjOK[p.idx] {
			// Per-Servpod analytic tail at the current operating point:
			// the p99 of the pod's fitted lognormal sojourn. This is the
			// series `rhythm calibrate` matches against a deployment's
			// per-pod latency dashboards.
			p.obsSojournP99.Observe(math.Exp(e.soa.sjMu[p.idx] + z99*e.soa.sjSigma[p.idx]))
		}
		// in is the pod's full measured state. Degraded carries the count
		// of consecutive preceding blind periods (captured before the
		// healthy-path reset below), Pressure the machine's smoothed
		// interference inflation — the inputs the zoo policies forecast
		// and score from.
		in := controller.PolicyInput{
			Pod:      p.comp.Name,
			Load:     load,
			Slack:    slack,
			P99:      p99,
			Pressure: e.soa.inflate[p.idx],
			Degraded: p.degraded,
			Now:      now,
		}
		traced := e.obsScope.Enabled()
		var act controller.Action
		reason := "no BE policy"
		switch {
		case !hasBE:
			act = controller.SuspendBE
		case degraded:
			// The measurement pipeline is down: no action may derive
			// from the NaN/stale slack. Escalate conservatively with
			// the blindness count instead (DisallowBEGrowth, then
			// CutBE), and recover the moment measurements return.
			p.degraded++
			act = controller.Degraded(p.degraded)
			if traced {
				reason = controller.DegradedReason(p.degraded, degradedCause)
			}
		case traced:
			// Under tracing, ExplainInput replaces DecideInput rather than
			// augmenting it: explain stays in lockstep with decide
			// (TestExplainMatchesDecide pins it), and stateful policies
			// must observe each input exactly once.
			p.degraded = 0
			if ex, ok := e.pol.(controller.InputExplainer); ok {
				act, reason = ex.ExplainInput(in)
			} else {
				act, reason = e.pol.DecideInput(in), ""
			}
		default:
			p.degraded = 0
			act = e.pol.DecideInput(in)
		}
		p.lastAction = act
		if traced {
			e.obsScope.Decision(int64(now), p.comp.Name, act.String(), load, slack, p99, reason)
		}
		e.obsDecisions[act].Inc()
		// A degraded period hands apply a slack of 0 — the most
		// conservative in-band value — so CutBE severity and the
		// subcontrollers never see NaN or a stale number.
		applySlack := slack
		if degraded {
			applySlack = 0
		}
		e.apply(p, act, now, load, applySlack)
		if e.cfg.Timeline {
			e.stats.Actions = append(e.stats.Actions, ActionEvent{At: now, Pod: p.comp.Name, Action: act})
			e.record(now, p, load, applySlack)
		}
	}
}

// apply executes a top-controller action through the subcontrollers.
func (e *Engine) apply(p *podRuntime, act controller.Action, now sim.Time, load, slack float64) {
	switch act {
	case controller.StopBE:
		for _, in := range p.instances {
			if in.State == bejobs.Running || in.State == bejobs.Suspended {
				in.State = bejobs.Killed
				p.stats.Kills++
				if e.cfg.ExternalBE {
					e.evicted = append(e.evicted, EvictedBE{Pod: p.comp.Name, ID: in.ID, Type: in.Spec.Type})
				}
			}
			p.agent.KillBE(in.ID)
			e.beEvent(now, p, in.ID, "kill")
		}
		p.instances = p.instances[:0]
		p.suspended = false

	case controller.SuspendBE:
		// Pause: jobs keep their memory space but stop executing
		// (§3.5.2); their cores and cache ways return to the pool so
		// that resuming later re-grows from the minimal slice instead
		// of slamming a full allocation back at high load.
		for _, in := range p.instances {
			if in.State == bejobs.Running {
				in.State = bejobs.Suspended
				e.beEvent(now, p, in.ID, "suspend")
			}
			p.agent.ParkBE(in.ID)
		}
		p.suspended = true

	case controller.CutBE:
		e.resume(p, now)
		// The paper leaves CutBE's magnitude open ("reduces part of
		// their allocated resources"); cut harder the deeper the slack
		// has fallen into the band, so a fast-rising load sheds BE
		// pressure before it violates.
		steps := 1 + int(3*sim.Clamp(1-2*slack/maxSlacklimit(e.pol, p.comp.Name), 0, 1))
		for _, in := range p.instances {
			for i := 0; i < steps; i++ {
				p.agent.CutBE(in.ID)
			}
			p.agent.AdjustBEMemory(in.ID, false)
			e.beEvent(now, p, in.ID, "cut")
		}

	case controller.DisallowBEGrowth:
		e.resume(p, now)

	case controller.AllowBEGrowth:
		e.resume(p, now)
		// Memory subcontroller: every job gains a memory step (memory
		// capacity is partitioned and interference-free). The CPU/LLC
		// subcontroller works at one-core/10%-LLC granularity (§3.5.2):
		// one instance grows per period, round-robin, so the latency
		// impact of each step stays inside the slack band.
		for _, in := range p.instances {
			p.agent.AdjustBEMemory(in.ID, true)
		}
		if len(p.instances) > 0 {
			p.growSeq++
			in := p.instances[p.growSeq%len(p.instances)]
			if p.agent.GrowBE(in.ID) {
				e.beEvent(now, p, in.ID, "grow")
			}
		}
		// Under ExternalBE the dispatcher owns admission: the machine
		// only signals Accepting (via MachineViews) and waits for
		// AdmitBE.
		if !e.cfg.ExternalBE && len(p.instances) < e.cfg.MaxBEPerMachine {
			e.launch(p, now)
		}
	}

	// Frequency subcontroller: throttle BE when the socket power budget
	// is at risk, restore otherwise (§3.5.2).
	lcDemand := p.comp.DemandAt(load)
	draw := interference.PowerDraw(p.machine.Spec, lcDemand, p.beDemand())
	if draw > 0.8*p.machine.Spec.TDPWatts {
		p.agent.StepDownBEFrequency()
	} else {
		p.agent.RestoreBEFrequency()
	}

	// Network subcontroller: B_link - 1.2*B_LC to BE (§3.5.2).
	p.agent.SetBENetwork(lcDemand[cluster.ResNetBW])

	// Every action path above may have re-granted allocations or flipped
	// instance states; the next tick re-syncs this pod's SoA row.
	e.markDirty(p)
}

// resume restarts suspended instances from the minimal slice; instances
// that cannot get a core yet stay suspended and retry next period.
func (e *Engine) resume(p *podRuntime, now sim.Time) {
	if !p.suspended {
		return
	}
	allUp := true
	for _, in := range p.instances {
		if in.State != bejobs.Suspended {
			continue
		}
		if p.agent.UnparkBE(in.ID) {
			in.State = bejobs.Running
			e.beEvent(now, p, in.ID, "resume")
		} else {
			allUp = false
		}
	}
	p.suspended = !allUp
	e.markDirty(p)
}

// launch admits one new BE instance with the §3.5.2 starting slice.
func (e *Engine) launch(p *podRuntime, now sim.Time) {
	if e.cfg.Faults != nil && e.cfg.Faults.CrashBlocked(now, p.comp.Name) {
		return // crash restart delay: the BE runtime is still coming back
	}
	ty := e.cfg.BETypes[p.beSeq%len(e.cfg.BETypes)]
	id := fmt.Sprintf("%s-%s-%d", p.comp.Name, ty, p.beSeq)
	if err := p.agent.LaunchBE(id); err != nil {
		return // no headroom; try again next period
	}
	in, err := bejobs.NewInstance(id, ty)
	if err != nil {
		p.agent.KillBE(id)
		return
	}
	p.beSeq++
	p.instances = append(p.instances, in)
	e.markDirty(p)
	e.beEvent(now, p, id, "launch")
}

// EvictedBE is one BE instance the machine evicted — a policy kill
// (StopBE) or a fault crash — reported to the external dispatcher so it
// can re-queue the job (§1: BE jobs are second-class citizens that may be
// rescheduled at any time).
type EvictedBE struct {
	Pod     string
	ID      string
	Type    bejobs.Type
	Crashed bool
}

// MachineView is one machine's report to the cluster scheduler: the top
// controller's accept/deny feedback (§4) plus free capacity, in the shape
// scheduler.MachineState wants.
type MachineView struct {
	Pod          string
	Accepting    bool
	FreeCores    int
	FreeMemoryGB float64
	Resident     int
}

// MachineViews appends one view per machine to dst (in pod order, the
// stable order dispatch tie-breaks rely on) and returns it. A machine
// accepts when its last top-controller decision was AllowBEGrowth and it
// has a BE slot free; before the first control tick nothing accepts.
func (e *Engine) MachineViews(dst []MachineView) []MachineView {
	for _, p := range e.pods {
		dst = append(dst, MachineView{
			Pod:          p.comp.Name,
			Accepting:    p.lastAction == controller.AllowBEGrowth && len(p.instances) < e.cfg.MaxBEPerMachine,
			FreeCores:    p.machine.FreeCores(),
			FreeMemoryGB: p.machine.FreeMemoryGB(),
			Resident:     len(p.instances),
		})
	}
	return dst
}

// AdmitBE places one externally dispatched BE instance on the named
// machine with the §3.5.2 starting slice. It reports false — and leaves
// the machine untouched — when the engine is not in ExternalBE mode, the
// pod is unknown or full, a crash restart delay is pending, or the
// isolation agent has no headroom for even the starting slice; the
// dispatcher should then re-queue the job.
func (e *Engine) AdmitBE(pod string, ty bejobs.Type, id string) bool {
	if !e.cfg.ExternalBE {
		return false
	}
	p, ok := e.podByName[pod]
	if !ok || len(p.instances) >= e.cfg.MaxBEPerMachine {
		return false
	}
	if e.cfg.Faults != nil && e.cfg.Faults.CrashBlocked(e.cursor, pod) {
		return false
	}
	if err := p.agent.LaunchBE(id); err != nil {
		return false
	}
	in, err := bejobs.NewInstance(id, ty)
	if err != nil {
		p.agent.KillBE(id)
		return false
	}
	p.beSeq++
	p.instances = append(p.instances, in)
	e.markDirty(p)
	e.beEvent(e.cursor, p, id, "launch")
	return true
}

// TakeEvicted returns the BE instances evicted since the last call and
// resets the list. Only populated under Config.ExternalBE. The returned
// slice is a view of the engine's internal buffer, valid until the next
// eviction accrues (the next control tick or crash fault after this
// call): the fleet dispatcher consumes it inside the same epoch barrier,
// so re-queueing stays allocation-free. Callers that need to retain
// entries across further engine progress must copy them out.
func (e *Engine) TakeEvicted() []EvictedBE {
	ev := e.evicted
	e.evicted = e.evicted[:0]
	return ev
}

// record appends the Fig. 17 series for one pod.
func (e *Engine) record(now sim.Time, p *podRuntime, load, slack float64) {
	add := func(name string, v float64) {
		key := p.comp.Name + "/" + name
		s, ok := e.stats.Series[key]
		if !ok {
			s = &metrics.Series{Name: key}
			e.stats.Series[key] = s
		}
		s.Append(now, v)
	}
	beAlloc := p.runningBEAlloc()
	running := 0
	for _, in := range p.instances {
		if in.State == bejobs.Running {
			running++
		}
	}
	add("load", load)
	add("slack", slack)
	add("cpu", e.soa.cpu[p.idx].Mean())
	add("be_llc", float64(beAlloc.LLCWays))
	add("be_cores", float64(beAlloc.Cores))
	add("be_instances", float64(running))
	add("be_throughput", e.soa.bet[p.idx].Mean())
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// maxSlacklimit returns the pod's slacklimit under the policy, defaulting
// to Heracles' 0.10 when the policy does not expose one. The capability
// interface is controller.SlacklimitReporter, which the AsInput adapter
// forwards, so third-party registry policies get correct CutBE step
// sizing without the engine knowing any concrete type.
func maxSlacklimit(pol controller.Policy, pod string) float64 {
	if sl, ok := pol.(controller.SlacklimitReporter); ok {
		if v := sl.SlacklimitFor(pod); v > 0 {
			return v
		}
	}
	return 0.10
}
