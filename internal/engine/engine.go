// Package engine is the co-location runtime: it deploys an LC service's
// Servpods on a simulated cluster (one Servpod per machine, as in §5.1),
// offers load from a pattern, computes the interference the resident BE
// jobs impose on each Servpod, samples end-to-end latencies through the
// service call graph, advances BE progress, and drives a controller policy
// every control period through the isolation actuators.
//
// The engine is the substrate every experiment runs on: solo profiling
// sweeps, the Rhythm-vs-Heracles grids of Figs. 9-14, the production-load
// runs of Fig. 15 and the timeline of Fig. 17.
package engine

import (
	"fmt"
	"math"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/controller"
	"rhythm/internal/interference"
	"rhythm/internal/isolation"
	"rhythm/internal/loadgen"
	"rhythm/internal/metrics"
	"rhythm/internal/obs"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// Config describes one engine run.
type Config struct {
	// Service is the LC workload to deploy (required).
	Service *workload.Service
	// Pattern offers the load as a fraction of the service max (required).
	Pattern loadgen.Pattern
	// SLA is the tail-latency target in seconds the controllers protect.
	// Zero disables slack-based control (used for pure solo profiling).
	SLA float64
	// Policy decides BE control actions; nil means solo run (no BE).
	Policy controller.Policy
	// BETypes are the BE job types to launch, cycled in order as
	// instances are admitted. Empty means no BE jobs.
	BETypes []bejobs.Type
	// Spec is the machine specification; zero value selects the default.
	Spec cluster.MachineSpec
	// Model is the interference model; zero Gamma selects the default.
	Model interference.Model
	// Seed drives all randomness.
	Seed uint64
	// TickDt is the simulation step (default 100 ms).
	TickDt time.Duration
	// ControlPeriod is the controller interval (default 2 s, §3.5.2).
	ControlPeriod time.Duration
	// SamplesPerTick is the number of end-to-end latency samples drawn
	// per tick (default 80).
	SamplesPerTick int
	// MaxBEPerMachine caps BE instances per machine (default 15).
	MaxBEPerMachine int
	// Warmup discards the initial transient: utilizations, violations
	// and the worst-p99 statistic only accumulate after this much
	// virtual time (control decisions still run during warmup).
	Warmup time.Duration
	// SLAGuard is the controller's safety headroom: slack is computed
	// against (1-SLAGuard)*SLA so that steady-state operation aims a few
	// percent below the target and worst-case noise stays within it
	// (violations still count against the full SLA). Default 0.08;
	// negative disables the guard.
	SLAGuard float64
	// InertiaTau is the time constant with which observed interference
	// inflation approaches its steady-state value (queues filling,
	// caches churning). Real servers do not jump to a new tail latency
	// the instant a co-runner gets another core; this inertia is what
	// gives a 2 s controller room to react. Default 4 s; negative
	// disables smoothing.
	InertiaTau time.Duration
	// CollectSamples retains per-pod sojourn and end-to-end samples in
	// the run stats (profiling).
	CollectSamples bool
	// Timeline retains per-control-tick series and the action log
	// (Fig. 17).
	Timeline bool
	// Label names this run's scope on the observability bus (internal/obs)
	// when one is installed; empty derives "service|policy|seed=N". It has
	// no effect on the simulation.
	Label string
}

func (c *Config) fillDefaults() error {
	if c.Service == nil {
		return fmt.Errorf("engine: Config.Service is required")
	}
	if err := c.Service.Validate(); err != nil {
		return err
	}
	if c.Pattern == nil {
		return fmt.Errorf("engine: Config.Pattern is required")
	}
	if c.TickDt <= 0 {
		c.TickDt = 100 * time.Millisecond
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 2 * time.Second
	}
	if c.SamplesPerTick <= 0 {
		c.SamplesPerTick = 80
	}
	if c.MaxBEPerMachine <= 0 {
		c.MaxBEPerMachine = 15
	}
	if c.Spec.Cores == 0 {
		c.Spec = cluster.DefaultSpec()
	}
	if c.Model.Gamma == 0 {
		c.Model = interference.Default()
	}
	if c.InertiaTau == 0 {
		c.InertiaTau = 4 * time.Second
	}
	if c.SLAGuard == 0 {
		c.SLAGuard = 0.12
	}
	if c.SLAGuard < 0 {
		c.SLAGuard = 0
	}
	return nil
}

// PodStats is the per-Servpod outcome of a run.
type PodStats struct {
	Pod string
	// BEThroughput is the time-weighted mean normalized BE throughput on
	// the pod's machine (§5.1's metric; 1.0 = a solo whole-machine run).
	BEThroughput float64
	// CPUUtil and MemBWUtil are time-weighted mean utilizations.
	CPUUtil   float64
	MemBWUtil float64
	// EMU is the time-weighted mean effective machine utilization.
	EMU float64
	// Kills counts BE jobs killed by StopBE; Completions counts BE jobs
	// that finished.
	Kills       int
	Completions int
	// SojournSamples holds the pod's sojourn samples when
	// Config.CollectSamples is set.
	SojournSamples []float64
}

// ActionEvent is one controller decision in the timeline.
type ActionEvent struct {
	At     sim.Time
	Pod    string
	Action controller.Action
}

// RunStats is the outcome of an engine run.
type RunStats struct {
	Policy   string
	Duration time.Duration
	PerPod   map[string]*PodStats
	// WorstP99 is the worst sliding-window p99 observed (the paper's SLA
	// statistic); MeanP99 the time-averaged window p99.
	WorstP99 float64
	MeanP99  float64
	// Violations counts control ticks whose window p99 exceeded the SLA.
	Violations int
	// E2ESamples holds end-to-end samples when CollectSamples is set.
	E2ESamples []float64
	// Series and Actions hold the Fig. 17 timeline when Timeline is set.
	Series  map[string]*metrics.Series
	Actions []ActionEvent
}

// MeanEMU returns the across-pod mean EMU.
func (r *RunStats) MeanEMU() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.EMU
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanBEThroughput returns the across-pod mean BE throughput.
func (r *RunStats) MeanBEThroughput() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.BEThroughput
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanCPUUtil returns the across-pod mean CPU utilization.
func (r *RunStats) MeanCPUUtil() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.CPUUtil
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanMemBWUtil returns the across-pod mean memory-bandwidth utilization.
func (r *RunStats) MeanMemBWUtil() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.MemBWUtil
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// TotalKills sums BE kills across pods.
func (r *RunStats) TotalKills() int {
	n := 0
	for _, p := range r.PerPod {
		n += p.Kills
	}
	return n
}

// podRuntime is the mutable per-machine state.
type podRuntime struct {
	comp      *workload.Component
	machine   *cluster.Machine
	agent     *isolation.Agent
	instances []*bejobs.Instance
	beSeq     int
	suspended bool
	stats     *PodStats

	cpu     metrics.Usage
	mbw     metrics.Usage
	bet     metrics.Usage
	emu     metrics.Usage
	rng     *sim.RNG
	growSeq int

	// Smoothed interference state (Config.InertiaTau).
	smoothedInflate float64
	smoothedCV      float64

	// Cached sojourn distribution for the current operating point. The
	// engine recomputes Station.At — Erlang-C plus a lognormal fit — only
	// when the (qps, inflate, cvInflate) tuple changes; At is pure, so an
	// unchanged tuple reuses the identical distribution. Constant-load
	// runs (every profiling sweep level) pay Erlang-C once per pod.
	sojourn    queueing.Sojourn
	sojournKey [3]float64
	sojournOK  bool
	// Log-space lognormal parameters of sojourn, denormalized here so the
	// per-sample hot path (Engine.sampleFn) is a bare
	// exp(mu + sigma*normal) with no struct copy or method dispatch.
	// Bit-identical to sojourn.Sample by construction: Lognormal.Sample
	// is exactly that expression over these two fields.
	sjMu    float64
	sjSigma float64
}

// Engine executes one configured run.
type Engine struct {
	cfg       Config
	pods      []*podRuntime
	podByName map[string]*podRuntime
	tail      *metrics.TailTracker
	rng       *sim.RNG
	stats     *RunStats

	// sampleFn is the per-component sampling callback handed to
	// Graph.Latency; it is built once in New so the per-tick sampling
	// loop allocates nothing.
	sampleFn func(string) float64

	meanP99Accum float64
	meanP99N     int
	lastObserve  sim.Time

	// Observability (internal/obs). All fields are zero/nil when no bus
	// was installed at New time, and every use below is a nil check, so an
	// untraced run pays nothing (BenchmarkObsDisabled pins 0 allocs). The
	// bus reads only sim.Time and never touches the engine's RNG streams,
	// so traced and untraced runs are byte-identical on stdout.
	obsScope     obs.Scope
	obsTicks     *obs.Counter
	obsRuns      *obs.Counter
	obsDecisions [5]*obs.Counter
	obsBE        map[string]*obs.Counter
	obsSlackH    *obs.Histogram
	obsP99H      *obs.Histogram
}

// New builds an engine: one machine per Servpod, LC pinned per the
// component's reservation.
func New(cfg Config) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		tail: metrics.NewTailTracker(3 * time.Second),
		rng:  sim.NewRNG(cfg.Seed).Fork("engine"),
		stats: &RunStats{
			PerPod: make(map[string]*PodStats),
			Series: make(map[string]*metrics.Series),
		},
	}
	if cfg.Policy != nil {
		e.stats.Policy = cfg.Policy.Name()
	} else {
		e.stats.Policy = "solo"
	}
	if bus := obs.Active(); bus != nil {
		label := cfg.Label
		if label == "" {
			label = fmt.Sprintf("%s|%s|seed=%d", cfg.Service.Name, e.stats.Policy, cfg.Seed)
		}
		e.obsScope = bus.Scope(label)
		e.obsTicks = bus.Counter("rhythm_engine_ticks_total")
		e.obsRuns = bus.Counter("rhythm_engine_runs_total")
		for a := controller.StopBE; a <= controller.AllowBEGrowth; a++ {
			e.obsDecisions[a] = bus.Counter("rhythm_decisions_total", "action", a.String())
		}
		e.obsBE = make(map[string]*obs.Counter, len(beOps))
		for _, op := range beOps {
			e.obsBE[op] = bus.Counter("rhythm_be_events_total", "op", op)
		}
		e.obsSlackH = bus.Histogram("rhythm_decision_slack", obs.DefBuckets)
		e.obsP99H = bus.Histogram("rhythm_window_p99_seconds", obs.LatencyBuckets)
	}
	for i, comp := range cfg.Service.Components {
		m := cluster.NewMachine(fmt.Sprintf("m%d", i), cfg.Spec)
		agent := isolation.NewAgent(m, comp.Name)
		if err := agent.PinLC(comp.Cores, comp.LLCWays, comp.MemoryGB, comp.MaxNetGbps); err != nil {
			return nil, fmt.Errorf("engine: pinning %s: %w", comp.Name, err)
		}
		ps := &PodStats{Pod: comp.Name}
		e.stats.PerPod[comp.Name] = ps
		e.pods = append(e.pods, &podRuntime{
			comp:    comp,
			machine: m,
			agent:   agent,
			stats:   ps,
			rng:     e.rng.Fork("pod-" + comp.Name),
		})
	}
	e.podByName = make(map[string]*podRuntime, len(e.pods))
	for _, p := range e.pods {
		e.podByName[p.comp.Name] = p
	}
	// One closure for the whole run: the graph walk draws from the pod's
	// cached sojourn distribution in traversal order (the RNG stream
	// consumption order is part of the determinism contract, DESIGN.md §7)
	// and appends sojourn samples directly instead of staging them in a
	// per-sample map.
	e.sampleFn = func(c string) float64 {
		p := e.podByName[c]
		v := math.Exp(p.sjMu + p.sjSigma*e.rng.NormFloat64())
		if e.cfg.CollectSamples {
			p.stats.SojournSamples = append(p.stats.SojournSamples, v)
		}
		return v
	}
	return e, nil
}

// beOps are the BE lifecycle transitions the engine reports on the bus.
var beOps = []string{"launch", "kill", "suspend", "resume", "grow", "cut"}

// beEvent records one BE lifecycle transition on the bus, with the
// instance's allocation after the transition. Free when no bus is active.
func (e *Engine) beEvent(now sim.Time, p *podRuntime, id, op string) {
	if !e.obsScope.Enabled() {
		return
	}
	var cores, ways int
	if al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: id}); al != nil {
		cores, ways = al.Cores, al.LLCWays
	}
	e.obsScope.BE(int64(now), p.comp.Name, id, op, cores, ways)
	e.obsBE[op].Inc()
}

// beDemand aggregates the running BE instances' pressure on the machine.
func (p *podRuntime) beDemand() cluster.Vector {
	var v cluster.Vector
	for _, in := range p.instances {
		if in.State != bejobs.Running {
			continue
		}
		alloc := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
		if alloc == nil {
			continue
		}
		d := in.Demand(alloc.Cores)
		// Throttled cores draw quadratically less power.
		if alloc.FreqGHz > 0 && alloc.FreqGHz < p.machine.Spec.MaxGHz {
			ratio := alloc.FreqGHz / p.machine.Spec.MaxGHz
			d[cluster.ResPower] *= ratio * ratio
		}
		v = v.Add(d)
	}
	return v
}

// Run executes the configured run for the given duration of virtual time
// and returns the collected statistics.
func (e *Engine) Run(duration time.Duration) (*RunStats, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("engine: non-positive run duration %v", duration)
	}
	clock := sim.NewClock()
	e.stats.Duration = duration
	end := sim.Time(0).Add(duration)

	if e.obsScope.Enabled() {
		e.obsRuns.Inc()
		e.obsScope.RunPhase(0, "start", fmt.Sprintf("service=%s policy=%s sla=%gs duration=%v seed=%d",
			e.cfg.Service.Name, e.stats.Policy, e.cfg.SLA, duration, e.cfg.Seed))
	}
	nextControl := sim.Time(0).Add(e.cfg.ControlPeriod)
	for now := sim.Time(0); now < end; now = now.Add(e.cfg.TickDt) {
		clock.RunUntil(now)
		load := e.cfg.Pattern.Load(now)
		e.tick(now, load)
		if now >= nextControl {
			e.controlTick(now, load)
			nextControl = nextControl.Add(e.cfg.ControlPeriod)
		}
	}
	if e.obsScope.Enabled() {
		e.obsScope.RunPhase(int64(end), "end", fmt.Sprintf("worst_p99=%gs violations=%d",
			e.stats.WorstP99, e.stats.Violations))
	}
	return e.stats, nil
}

// Step advances the engine by exactly one simulation tick at the given
// virtual time and load fraction, without running the controllers. It is
// the benchmark entry point for the per-tick hot path (cmd/rhythm-bench);
// experiments go through Run, which drives Step's internals on the tick
// grid and interleaves control decisions.
func (e *Engine) Step(now sim.Time, load float64) { e.tick(now, load) }

// tick advances the world by one TickDt at the given load fraction.
func (e *Engine) tick(now sim.Time, load float64) {
	dt := e.cfg.TickDt
	qps := load * e.cfg.Service.MaxLoadQPS
	measuring := now >= sim.Time(0).Add(e.cfg.Warmup)

	// Per-pod sojourn distributions under current interference, cached
	// per operating point (see podRuntime.sojourn).
	for _, p := range e.pods {
		lcDemand := p.comp.DemandAt(load)
		beDemand := p.beDemand()
		press := e.cfg.Model.Pressure(p.machine.Spec, lcDemand, beDemand)
		inflate, cvInflate := e.cfg.Model.Inflation(p.comp, press)
		inflate, cvInflate = p.smooth(inflate, cvInflate, dt, e.cfg.InertiaTau)
		if key := [3]float64{qps, inflate, cvInflate}; !p.sojournOK || key != p.sojournKey {
			p.sojourn = p.comp.Station.At(qps, inflate, cvInflate, 1)
			p.sjMu, p.sjSigma = p.sojourn.LogParams()
			p.sojournKey, p.sojournOK = key, true
		}
		sj := p.sojourn

		// Utilization accounting. LC cores are busy in proportion to
		// station utilization; BE cores are fully busy while running.
		beAlloc := p.runningBEAlloc()
		lcBusy := float64(p.comp.Cores) * sj.Utilization
		cpuUtil := (lcBusy + float64(beAlloc.Cores)) / float64(p.machine.Spec.Cores)
		servedBW := lcDemand[cluster.ResMemBW] + minf(beDemand[cluster.ResMemBW], p.machine.Spec.MemBWGBs-lcDemand[cluster.ResMemBW])
		mbwUtil := sim.Clamp(servedBW/p.machine.Spec.MemBWGBs, 0, 1)
		if measuring {
			p.cpu.Observe(cpuUtil, dt)
			p.mbw.Observe(mbwUtil, dt)
		}

		// BE progress: satisfaction is limited by the bandwidth the
		// machine can actually serve and by DVFS throttling.
		sat := 1.0
		if beDemand[cluster.ResMemBW] > 0 {
			avail := p.machine.Spec.MemBWGBs - lcDemand[cluster.ResMemBW]
			if avail < 0 {
				avail = 0
			}
			sat = minf(sat, avail/beDemand[cluster.ResMemBW])
		}
		freqScale := p.agent.BEFrequency() / p.machine.Spec.MaxGHz
		beRate := 0.0
		for _, in := range p.instances {
			alloc := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
			if alloc == nil {
				continue
			}
			// Cache-bound jobs also slow down when their CAT partition
			// is smaller than their working set.
			instSat := sat
			if wanted := in.Spec.PerCore[cluster.ResLLC] * float64(alloc.Cores); wanted > 0 {
				if cacheSat := float64(alloc.LLCWays) / wanted; cacheSat < instSat {
					// Cache starvation degrades but does not stop
					// progress (misses stream to DRAM).
					if cacheSat < 0.2 {
						cacheSat = 0.2
					}
					instSat = cacheSat
				}
			}
			rate := in.Rate(alloc.Cores, instSat) * freqScale
			p.stats.Completions += in.Advance(rate, dt.Hours())
			beRate += rate
		}
		if measuring {
			p.bet.Observe(beRate, dt)
			p.emu.Observe(metrics.EMU(load, beRate), dt)
		}
		p.stats.BEThroughput = p.bet.Mean()
		p.stats.CPUUtil = p.cpu.Mean()
		p.stats.MemBWUtil = p.mbw.Mean()
		p.stats.EMU = p.emu.Mean()
	}

	// End-to-end latency sampling through the call graph. sampleFn draws
	// per-component sojourns (and records them when CollectSamples) with
	// no per-sample allocation.
	for i := 0; i < e.cfg.SamplesPerTick; i++ {
		lat := e.cfg.Service.Graph.Latency(e.sampleFn)
		e.tail.Add(now, lat)
		if e.cfg.CollectSamples {
			e.stats.E2ESamples = append(e.stats.E2ESamples, lat)
		}
	}
	// The paper records the p99 once per second (§5.1's SLA statistic);
	// sample the sliding window on second boundaries only.
	if measuring && now-e.lastObserve >= sim.Time(time.Second) {
		e.lastObserve = now
		e.tail.ObserveWindow(now)
		worst, _ := e.tail.Worst()
		e.stats.WorstP99 = worst
	}

	e.obsTicks.Inc()
	if e.obsScope.Enabled() {
		e.obsScope.Tick(int64(now), int64(dt), load, qps, e.cfg.SamplesPerTick)
	}
}

// smooth applies the first-order inertia of Config.InertiaTau to the
// steady-state inflation targets.
func (p *podRuntime) smooth(inflate, cvInflate float64, dt, tau time.Duration) (float64, float64) {
	if tau < 0 {
		return inflate, cvInflate
	}
	if p.smoothedInflate == 0 {
		p.smoothedInflate, p.smoothedCV = 1, 1
	}
	alpha := 1 - math.Exp(-dt.Seconds()/tau.Seconds())
	p.smoothedInflate += (inflate - p.smoothedInflate) * alpha
	p.smoothedCV += (cvInflate - p.smoothedCV) * alpha
	return p.smoothedInflate, p.smoothedCV
}

// runningBEAlloc sums allocations of running (not suspended) instances.
func (p *podRuntime) runningBEAlloc() cluster.Alloc {
	var a cluster.Alloc
	for _, in := range p.instances {
		if in.State != bejobs.Running {
			continue
		}
		if al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID}); al != nil {
			a.Cores += al.Cores
			a.LLCWays += al.LLCWays
			a.MemoryGB += al.MemoryGB
		}
	}
	return a
}

// controlTick runs the top controller and the four subcontrollers on every
// machine (§3.5.2).
func (e *Engine) controlTick(now sim.Time, load float64) {
	p99 := e.tail.P99()
	slack := 1.0
	if e.cfg.SLA > 0 {
		guarded := e.cfg.SLA * (1 - e.cfg.SLAGuard)
		slack = (guarded - p99) / guarded
	}
	if now >= sim.Time(0).Add(e.cfg.Warmup) {
		if e.cfg.SLA > 0 && p99 > e.cfg.SLA {
			e.stats.Violations++
		}
		// Time-averaged window p99.
		e.meanP99Accum += p99
		e.meanP99N++
		e.stats.MeanP99 = e.meanP99Accum / float64(e.meanP99N)
	}

	e.obsSlackH.Observe(slack)
	e.obsP99H.Observe(p99)
	for _, p := range e.pods {
		var act controller.Action
		if e.cfg.Policy == nil || len(e.cfg.BETypes) == 0 {
			act = controller.SuspendBE
		} else {
			act = e.cfg.Policy.Decide(p.comp.Name, load, slack)
		}
		if e.obsScope.Enabled() {
			reason := "no BE policy"
			if e.cfg.Policy != nil && len(e.cfg.BETypes) > 0 {
				if ex, ok := e.cfg.Policy.(controller.Explainer); ok {
					_, reason = ex.Explain(p.comp.Name, load, slack)
				} else {
					reason = ""
				}
			}
			e.obsScope.Decision(int64(now), p.comp.Name, act.String(), load, slack, p99, reason)
		}
		e.obsDecisions[act].Inc()
		e.apply(p, act, now, load, slack)
		if e.cfg.Timeline {
			e.stats.Actions = append(e.stats.Actions, ActionEvent{At: now, Pod: p.comp.Name, Action: act})
			e.record(now, p, load, slack)
		}
	}
}

// apply executes a top-controller action through the subcontrollers.
func (e *Engine) apply(p *podRuntime, act controller.Action, now sim.Time, load, slack float64) {
	switch act {
	case controller.StopBE:
		for _, in := range p.instances {
			if in.State == bejobs.Running || in.State == bejobs.Suspended {
				in.State = bejobs.Killed
				p.stats.Kills++
			}
			p.agent.KillBE(in.ID)
			e.beEvent(now, p, in.ID, "kill")
		}
		p.instances = p.instances[:0]
		p.suspended = false

	case controller.SuspendBE:
		// Pause: jobs keep their memory space but stop executing
		// (§3.5.2); their cores and cache ways return to the pool so
		// that resuming later re-grows from the minimal slice instead
		// of slamming a full allocation back at high load.
		for _, in := range p.instances {
			if in.State == bejobs.Running {
				in.State = bejobs.Suspended
				e.beEvent(now, p, in.ID, "suspend")
			}
			p.agent.ParkBE(in.ID)
		}
		p.suspended = true

	case controller.CutBE:
		e.resume(p, now)
		// The paper leaves CutBE's magnitude open ("reduces part of
		// their allocated resources"); cut harder the deeper the slack
		// has fallen into the band, so a fast-rising load sheds BE
		// pressure before it violates.
		steps := 1 + int(3*sim.Clamp(1-2*slack/maxSlacklimit(e.cfg.Policy, p.comp.Name), 0, 1))
		for _, in := range p.instances {
			for i := 0; i < steps; i++ {
				p.agent.CutBE(in.ID)
			}
			p.agent.AdjustBEMemory(in.ID, false)
			e.beEvent(now, p, in.ID, "cut")
		}

	case controller.DisallowBEGrowth:
		e.resume(p, now)

	case controller.AllowBEGrowth:
		e.resume(p, now)
		// Memory subcontroller: every job gains a memory step (memory
		// capacity is partitioned and interference-free). The CPU/LLC
		// subcontroller works at one-core/10%-LLC granularity (§3.5.2):
		// one instance grows per period, round-robin, so the latency
		// impact of each step stays inside the slack band.
		for _, in := range p.instances {
			p.agent.AdjustBEMemory(in.ID, true)
		}
		if len(p.instances) > 0 {
			p.growSeq++
			in := p.instances[p.growSeq%len(p.instances)]
			if p.agent.GrowBE(in.ID) {
				e.beEvent(now, p, in.ID, "grow")
			}
		}
		if len(p.instances) < e.cfg.MaxBEPerMachine {
			e.launch(p, now)
		}
	}

	// Frequency subcontroller: throttle BE when the socket power budget
	// is at risk, restore otherwise (§3.5.2).
	lcDemand := p.comp.DemandAt(load)
	draw := interference.PowerDraw(p.machine.Spec, lcDemand, p.beDemand())
	if draw > 0.8*p.machine.Spec.TDPWatts {
		p.agent.StepDownBEFrequency()
	} else {
		p.agent.RestoreBEFrequency()
	}

	// Network subcontroller: B_link - 1.2*B_LC to BE (§3.5.2).
	p.agent.SetBENetwork(lcDemand[cluster.ResNetBW])
}

// resume restarts suspended instances from the minimal slice; instances
// that cannot get a core yet stay suspended and retry next period.
func (e *Engine) resume(p *podRuntime, now sim.Time) {
	if !p.suspended {
		return
	}
	allUp := true
	for _, in := range p.instances {
		if in.State != bejobs.Suspended {
			continue
		}
		if p.agent.UnparkBE(in.ID) {
			in.State = bejobs.Running
			e.beEvent(now, p, in.ID, "resume")
		} else {
			allUp = false
		}
	}
	p.suspended = !allUp
}

// launch admits one new BE instance with the §3.5.2 starting slice.
func (e *Engine) launch(p *podRuntime, now sim.Time) {
	ty := e.cfg.BETypes[p.beSeq%len(e.cfg.BETypes)]
	id := fmt.Sprintf("%s-%s-%d", p.comp.Name, ty, p.beSeq)
	if err := p.agent.LaunchBE(id); err != nil {
		return // no headroom; try again next period
	}
	in, err := bejobs.NewInstance(id, ty)
	if err != nil {
		p.agent.KillBE(id)
		return
	}
	p.beSeq++
	p.instances = append(p.instances, in)
	e.beEvent(now, p, id, "launch")
}

// record appends the Fig. 17 series for one pod.
func (e *Engine) record(now sim.Time, p *podRuntime, load, slack float64) {
	add := func(name string, v float64) {
		key := p.comp.Name + "/" + name
		s, ok := e.stats.Series[key]
		if !ok {
			s = &metrics.Series{Name: key}
			e.stats.Series[key] = s
		}
		s.Append(now, v)
	}
	beAlloc := p.runningBEAlloc()
	running := 0
	for _, in := range p.instances {
		if in.State == bejobs.Running {
			running++
		}
	}
	add("load", load)
	add("slack", slack)
	add("cpu", p.cpu.Mean())
	add("be_llc", float64(beAlloc.LLCWays))
	add("be_cores", float64(beAlloc.Cores))
	add("be_instances", float64(running))
	add("be_throughput", p.bet.Mean())
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// slackLimiter is implemented by policies that expose their per-pod
// slacklimit; the engine scales CutBE severity with it.
type slackLimiter interface {
	SlacklimitFor(pod string) float64
}

// maxSlacklimit returns the pod's slacklimit under the policy, defaulting
// to Heracles' 0.10 when the policy does not expose one.
func maxSlacklimit(pol controller.Policy, pod string) float64 {
	if sl, ok := pol.(slackLimiter); ok {
		if v := sl.SlacklimitFor(pod); v > 0 {
			return v
		}
	}
	return 0.10
}
