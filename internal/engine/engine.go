// Package engine is the co-location runtime: it deploys an LC service's
// Servpods on a simulated cluster (one Servpod per machine, as in §5.1),
// offers load from a pattern, computes the interference the resident BE
// jobs impose on each Servpod, samples end-to-end latencies through the
// service call graph, advances BE progress, and drives a controller policy
// every control period through the isolation actuators.
//
// The engine is the substrate every experiment runs on: solo profiling
// sweeps, the Rhythm-vs-Heracles grids of Figs. 9-14, the production-load
// runs of Fig. 15 and the timeline of Fig. 17.
package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/controller"
	"rhythm/internal/faults"
	"rhythm/internal/interference"
	"rhythm/internal/isolation"
	"rhythm/internal/loadgen"
	"rhythm/internal/metrics"
	"rhythm/internal/obs"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// Config describes one engine run.
type Config struct {
	// Service is the LC workload to deploy (required).
	Service *workload.Service
	// Pattern offers the load as a fraction of the service max (required).
	Pattern loadgen.Pattern
	// SLA is the tail-latency target in seconds the controllers protect.
	// Zero disables slack-based control (used for pure solo profiling).
	SLA float64
	// Policy decides BE control actions; nil means solo run (no BE).
	Policy controller.Policy
	// BETypes are the BE job types to launch, cycled in order as
	// instances are admitted. Empty means no BE jobs.
	BETypes []bejobs.Type
	// Spec is the machine specification; zero value selects the default.
	Spec cluster.MachineSpec
	// Model is the interference model; zero Gamma selects the default.
	Model interference.Model
	// Seed drives all randomness.
	Seed uint64
	// TickDt is the simulation step (default 100 ms).
	TickDt time.Duration
	// ControlPeriod is the controller interval (default 2 s, §3.5.2).
	ControlPeriod time.Duration
	// SamplesPerTick is the number of end-to-end latency samples drawn
	// per tick (default 80).
	SamplesPerTick int
	// MaxBEPerMachine caps BE instances per machine (default 15).
	MaxBEPerMachine int
	// Warmup discards the initial transient: utilizations, violations
	// and the worst-p99 statistic only accumulate after this much
	// virtual time (control decisions still run during warmup).
	Warmup time.Duration
	// SLAGuard is the controller's safety headroom: slack is computed
	// against (1-SLAGuard)*SLA so that steady-state operation aims a few
	// percent below the target and worst-case noise stays within it
	// (violations still count against the full SLA). Default 0.08;
	// negative disables the guard.
	SLAGuard float64
	// InertiaTau is the time constant with which observed interference
	// inflation approaches its steady-state value (queues filling,
	// caches churning). Real servers do not jump to a new tail latency
	// the instant a co-runner gets another core; this inertia is what
	// gives a 2 s controller room to react. Default 4 s; negative
	// disables smoothing.
	InertiaTau time.Duration
	// CollectSamples retains per-pod sojourn and end-to-end samples in
	// the run stats (profiling).
	CollectSamples bool
	// Timeline retains per-control-tick series and the action log
	// (Fig. 17).
	Timeline bool
	// Label names this run's scope on the observability bus (internal/obs)
	// when one is installed; empty derives "service|policy|seed=N". It has
	// no effect on the simulation.
	Label string
	// Faults injects a deterministic fault schedule (internal/faults):
	// load surges, interference storms, machine slowdowns, BE crashes,
	// profile drift and measurement dropout. Nil disables injection
	// entirely — every fault hook below is behind a nil check, so a
	// fault-free run is byte-identical to one on a build without the
	// faults subsystem at all.
	Faults *faults.Schedule
	// ExternalBE hands BE admission to an external dispatcher (the fleet
	// layer's shared scheduler.Scheduler): AllowBEGrowth still grows
	// resident instances but never self-launches; new instances arrive
	// only through AdmitBE, and every kill or crash is recorded for
	// TakeEvicted so the dispatcher can re-queue the job (§4's "interact
	// with scheduler" protocol). BETypes may be empty in this mode — the
	// dispatcher names the type per admission.
	ExternalBE bool
}

// FieldError is a Config validation failure naming the exact field it
// concerns, so callers can report — and tests can pin — which part of a
// configuration is bad.
type FieldError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *FieldError) Error() string { return "engine: Config." + e.Field + ": " + e.Reason }

// Validate checks the configuration before any work runs. Zero values
// with documented defaults (TickDt, ControlPeriod, SamplesPerTick,
// MaxBEPerMachine, Spec, Model, InertiaTau, SLAGuard) are valid — New
// fills them — and the documented negative sentinels (SLAGuard and
// InertiaTau < 0 disable the guard and smoothing) stay valid; everything
// else out of range fails. All failures are returned joined, each a
// *FieldError naming the Config field.
func (c *Config) Validate() error {
	var errs []error
	fail := func(field, format string, args ...any) {
		errs = append(errs, &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if c.Service == nil {
		fail("Service", "required")
	} else if err := c.Service.Validate(); err != nil {
		fail("Service", "%v", err)
	}
	if c.Pattern == nil {
		fail("Pattern", "required")
	}
	if c.SLA < 0 {
		fail("SLA", "negative tail-latency target %v", c.SLA)
	}
	if c.TickDt < 0 {
		fail("TickDt", "negative tick %v", c.TickDt)
	}
	if c.ControlPeriod < 0 {
		fail("ControlPeriod", "negative control period %v", c.ControlPeriod)
	}
	if c.SamplesPerTick < 0 {
		fail("SamplesPerTick", "negative sample count %d", c.SamplesPerTick)
	}
	if c.MaxBEPerMachine < 0 {
		fail("MaxBEPerMachine", "negative BE cap %d", c.MaxBEPerMachine)
	}
	if c.Warmup < 0 {
		fail("Warmup", "negative warmup %v", c.Warmup)
	}
	if err := c.Faults.Validate(); err != nil {
		fail("Faults", "%v", err)
	}
	return errors.Join(errs...)
}

// fillDefaults fills the zero-value defaults; Validate has already
// rejected out-of-range values.
func (c *Config) fillDefaults() {
	if c.TickDt <= 0 {
		c.TickDt = 100 * time.Millisecond
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 2 * time.Second
	}
	if c.SamplesPerTick <= 0 {
		c.SamplesPerTick = 80
	}
	if c.MaxBEPerMachine <= 0 {
		c.MaxBEPerMachine = 15
	}
	if c.Spec.Cores == 0 {
		c.Spec = cluster.DefaultSpec()
	}
	if c.Model.Gamma == 0 {
		c.Model = interference.Default()
	}
	if c.InertiaTau == 0 {
		c.InertiaTau = 4 * time.Second
	}
	if c.SLAGuard == 0 {
		c.SLAGuard = 0.12
	}
	if c.SLAGuard < 0 {
		c.SLAGuard = 0
	}
}

// PodStats is the per-Servpod outcome of a run.
type PodStats struct {
	Pod string
	// BEThroughput is the time-weighted mean normalized BE throughput on
	// the pod's machine (§5.1's metric; 1.0 = a solo whole-machine run).
	BEThroughput float64
	// CPUUtil and MemBWUtil are time-weighted mean utilizations.
	CPUUtil   float64
	MemBWUtil float64
	// EMU is the time-weighted mean effective machine utilization.
	EMU float64
	// Kills counts BE jobs killed by StopBE; Completions counts BE jobs
	// that finished.
	Kills       int
	Completions int
	// Crashes counts BE jobs lost to injected BE-crash faults
	// (Config.Faults); always 0 without a fault schedule.
	Crashes int
	// SojournSamples holds the pod's sojourn samples when
	// Config.CollectSamples is set.
	SojournSamples []float64
}

// ActionEvent is one controller decision in the timeline.
type ActionEvent struct {
	At     sim.Time
	Pod    string
	Action controller.Action
}

// RunStats is the outcome of an engine run.
type RunStats struct {
	Policy   string
	Duration time.Duration
	PerPod   map[string]*PodStats
	// WorstP99 is the worst sliding-window p99 observed (the paper's SLA
	// statistic); MeanP99 the time-averaged window p99.
	WorstP99 float64
	MeanP99  float64
	// Violations counts control ticks whose window p99 exceeded the SLA.
	Violations int
	// ViolationSeconds is Violations scaled by the control period: the
	// virtual seconds spent in SLA violation (the resilience metric).
	ViolationSeconds float64
	// DegradedPeriods counts control ticks decided in degraded mode —
	// the latency measurement was NaN or stale under a
	// measurement-dropout fault, so the conservative escalation replaced
	// Algorithm 2. Always 0 without a fault schedule.
	DegradedPeriods int
	// E2ESamples holds end-to-end samples when CollectSamples is set.
	E2ESamples []float64
	// Series and Actions hold the Fig. 17 timeline when Timeline is set.
	Series  map[string]*metrics.Series
	Actions []ActionEvent
}

// MeanEMU returns the across-pod mean EMU.
func (r *RunStats) MeanEMU() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.EMU
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanBEThroughput returns the across-pod mean BE throughput.
func (r *RunStats) MeanBEThroughput() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.BEThroughput
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanCPUUtil returns the across-pod mean CPU utilization.
func (r *RunStats) MeanCPUUtil() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.CPUUtil
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanMemBWUtil returns the across-pod mean memory-bandwidth utilization.
func (r *RunStats) MeanMemBWUtil() float64 {
	var s float64
	var n int
	for _, p := range r.PerPod {
		s += p.MemBWUtil
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// TotalKills sums BE kills across pods.
func (r *RunStats) TotalKills() int {
	n := 0
	for _, p := range r.PerPod {
		n += p.Kills
	}
	return n
}

// TotalCrashes sums fault-injected BE crashes across pods.
func (r *RunStats) TotalCrashes() int {
	n := 0
	for _, p := range r.PerPod {
		n += p.Crashes
	}
	return n
}

// podRuntime is the mutable per-machine state.
type podRuntime struct {
	comp      *workload.Component
	machine   *cluster.Machine
	agent     *isolation.Agent
	instances []*bejobs.Instance
	beSeq     int
	suspended bool
	stats     *PodStats

	// lastAction is the top controller's most recent decision for this
	// machine; it is the §4 feedback signal MachineViews reports to the
	// cluster scheduler (zero value StopBE: not accepting before the
	// first control tick).
	lastAction controller.Action

	cpu     metrics.Usage
	mbw     metrics.Usage
	bet     metrics.Usage
	emu     metrics.Usage
	rng     *sim.RNG
	growSeq int

	// Per-pod calibration instruments (nil without a bus; every use is
	// nil-safe): the analytic sojourn p99 the current operating point
	// implies, and completed BE jobs on this machine.
	obsSojournP99  *obs.Histogram
	obsCompletions *obs.Counter

	// Smoothed interference state (Config.InertiaTau).
	smoothedInflate float64
	smoothedCV      float64

	// degraded counts consecutive control periods decided blind (NaN or
	// stale p99 under a measurement-dropout fault); it drives the
	// conservative DisallowBEGrowth -> CutBE escalation and resets to 0
	// the moment a clean measurement returns.
	degraded int

	// Cached sojourn distribution for the current operating point. The
	// engine recomputes Station.At — Erlang-C plus a lognormal fit — only
	// when the (qps, inflate, cvInflate, muSkew, sigmaSkew) tuple
	// changes; At is pure, so an unchanged tuple reuses the identical
	// distribution. Constant-load runs (every profiling sweep level) pay
	// Erlang-C once per pod. The two skew entries are the profile-drift
	// fault multipliers and are constant 1 without a fault schedule, so
	// the cache behaves exactly as the original 3-tuple then.
	sojourn    queueing.Sojourn
	sojournKey [5]float64
	sojournOK  bool
	// Log-space lognormal parameters of sojourn, denormalized here so the
	// per-sample hot path (Engine.sampleFn) is a bare
	// exp(mu + sigma*normal) with no struct copy or method dispatch.
	// Bit-identical to sojourn.Sample by construction: Lognormal.Sample
	// is exactly that expression over these two fields.
	sjMu    float64
	sjSigma float64
}

// Engine executes one configured run.
type Engine struct {
	cfg       Config
	pods      []*podRuntime
	podByName map[string]*podRuntime
	tail      *metrics.TailTracker
	rng       *sim.RNG
	stats     *RunStats

	// sampleFn is the per-component sampling callback handed to
	// Graph.Latency; it is built once in New so the per-tick sampling
	// loop allocates nothing.
	sampleFn func(string) float64

	meanP99Accum float64
	meanP99N     int
	lastObserve  sim.Time

	// Incremental-run state. Run is a single RunUntil sweep; the fleet
	// layer instead calls RunUntil once per epoch, interleaving dispatch
	// barriers between slices. cursor is the next tick to execute,
	// nextControl the next control-tick boundary; both persist across
	// RunUntil calls so a chunked run is bitwise identical to one sweep.
	cursor      sim.Time
	nextControl sim.Time
	clock       *sim.Clock

	// evicted accumulates killed/crashed BE instances for TakeEvicted;
	// only populated under Config.ExternalBE.
	evicted []EvictedBE

	// Fault-injection state. lastFaultScan is the previous tick time: the
	// (lastFaultScan, now] window makes each crash fire exactly once and
	// each fault edge report exactly once. staleP99 is the last clean
	// window p99, replayed to the controller under a stale-mode
	// measurement dropout. Both are untouched when cfg.Faults is nil.
	lastFaultScan sim.Time
	staleP99      float64
	faultEdges    []faults.Edge
	obsFaults     *obs.Counter

	// Observability (internal/obs). All fields are zero/nil when no bus
	// was installed at New time, and every use below is a nil check, so an
	// untraced run pays nothing (BenchmarkObsDisabled pins 0 allocs). The
	// bus reads only sim.Time and never touches the engine's RNG streams,
	// so traced and untraced runs are byte-identical on stdout.
	obsScope     obs.Scope
	obsTicks     *obs.Counter
	obsRuns      *obs.Counter
	obsDecisions [5]*obs.Counter
	obsBE        map[string]*obs.Counter
	obsSlackH    *obs.Histogram
	obsP99H      *obs.Histogram
	obsLoadH     *obs.Histogram
}

// New builds an engine: one machine per Servpod, LC pinned per the
// component's reservation.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	e := &Engine{
		cfg:           cfg,
		tail:          metrics.NewTailTracker(3 * time.Second),
		rng:           sim.NewRNG(cfg.Seed).Fork("engine"),
		lastFaultScan: sim.Time(-1),
		clock:         sim.NewClock(),
		nextControl:   sim.Time(0).Add(cfg.ControlPeriod),
		stats: &RunStats{
			PerPod: make(map[string]*PodStats),
			Series: make(map[string]*metrics.Series),
		},
	}
	if cfg.Policy != nil {
		e.stats.Policy = cfg.Policy.Name()
	} else {
		e.stats.Policy = "solo"
	}
	bus := obs.Active()
	if bus != nil {
		label := cfg.Label
		if label == "" {
			label = fmt.Sprintf("%s|%s|seed=%d", cfg.Service.Name, e.stats.Policy, cfg.Seed)
		}
		e.obsScope = bus.Scope(label)
		e.obsTicks = bus.Counter("rhythm_engine_ticks_total")
		e.obsRuns = bus.Counter("rhythm_engine_runs_total")
		for a := controller.StopBE; a <= controller.AllowBEGrowth; a++ {
			e.obsDecisions[a] = bus.Counter("rhythm_decisions_total", "action", a.String())
		}
		e.obsBE = make(map[string]*obs.Counter, len(beOps))
		for _, op := range beOps {
			e.obsBE[op] = bus.Counter("rhythm_be_events_total", "op", op)
		}
		e.obsSlackH = bus.Histogram("rhythm_decision_slack", obs.DefBuckets)
		e.obsP99H = bus.Histogram("rhythm_window_p99_seconds", obs.LatencyBuckets)
		e.obsLoadH = bus.Histogram("rhythm_offered_load", obs.DefBuckets)
		e.obsFaults = bus.Counter("rhythm_fault_events_total")
	}
	for i, comp := range cfg.Service.Components {
		m := cluster.NewMachine(fmt.Sprintf("m%d", i), cfg.Spec)
		agent := isolation.NewAgent(m, comp.Name)
		if err := agent.PinLC(comp.Cores, comp.LLCWays, comp.MemoryGB, comp.MaxNetGbps); err != nil {
			return nil, fmt.Errorf("engine: pinning %s: %w", comp.Name, err)
		}
		ps := &PodStats{Pod: comp.Name}
		e.stats.PerPod[comp.Name] = ps
		p := &podRuntime{
			comp:    comp,
			machine: m,
			agent:   agent,
			stats:   ps,
			rng:     e.rng.Fork("pod-" + comp.Name),
		}
		if bus != nil {
			// Per-Servpod calibration series. Fleet replicas share
			// component names, so replicated pods aggregate into one
			// series per component — the granularity a deployment's own
			// dashboards use.
			p.obsSojournP99 = bus.Histogram("rhythm_pod_sojourn_p99_seconds",
				obs.LatencyBuckets, "pod", comp.Name)
			p.obsCompletions = bus.Counter("rhythm_be_completions_total", "pod", comp.Name)
		}
		e.pods = append(e.pods, p)
	}
	e.podByName = make(map[string]*podRuntime, len(e.pods))
	for _, p := range e.pods {
		e.podByName[p.comp.Name] = p
	}
	// One closure for the whole run: the graph walk draws from the pod's
	// cached sojourn distribution in traversal order (the RNG stream
	// consumption order is part of the determinism contract, DESIGN.md §7)
	// and appends sojourn samples directly instead of staging them in a
	// per-sample map.
	e.sampleFn = func(c string) float64 {
		p := e.podByName[c]
		v := math.Exp(p.sjMu + p.sjSigma*e.rng.NormFloat64())
		if e.cfg.CollectSamples {
			p.stats.SojournSamples = append(p.stats.SojournSamples, v)
		}
		return v
	}
	return e, nil
}

// beOps are the BE lifecycle transitions the engine reports on the bus.
var beOps = []string{"launch", "kill", "suspend", "resume", "grow", "cut", "crash"}

// z99 is the standard-normal 0.99 quantile, the multiplier that turns the
// cached lognormal (mu, sigma) into a per-pod sojourn p99.
var z99 = sim.NormQuantile(0.99)

// beEvent records one BE lifecycle transition on the bus, with the
// instance's allocation after the transition. Free when no bus is active.
func (e *Engine) beEvent(now sim.Time, p *podRuntime, id, op string) {
	if !e.obsScope.Enabled() {
		return
	}
	var cores, ways int
	if al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: id}); al != nil {
		cores, ways = al.Cores, al.LLCWays
	}
	e.obsScope.BE(int64(now), p.comp.Name, id, op, cores, ways)
	e.obsBE[op].Inc()
}

// beDemand aggregates the running BE instances' pressure on the machine.
func (p *podRuntime) beDemand() cluster.Vector {
	var v cluster.Vector
	for _, in := range p.instances {
		if in.State != bejobs.Running {
			continue
		}
		alloc := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
		if alloc == nil {
			continue
		}
		d := in.Demand(alloc.Cores)
		// Throttled cores draw quadratically less power.
		if alloc.FreqGHz > 0 && alloc.FreqGHz < p.machine.Spec.MaxGHz {
			ratio := alloc.FreqGHz / p.machine.Spec.MaxGHz
			d[cluster.ResPower] *= ratio * ratio
		}
		v = v.Add(d)
	}
	return v
}

// Run executes the configured run for the given duration of virtual time
// and returns the collected statistics.
func (e *Engine) Run(duration time.Duration) (*RunStats, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("engine: non-positive run duration %v", duration)
	}
	e.stats.Duration = duration
	end := sim.Time(0).Add(duration)

	if e.obsScope.Enabled() {
		e.obsRuns.Inc()
		e.obsScope.RunPhase(0, "start", fmt.Sprintf("service=%s policy=%s sla=%gs duration=%v seed=%d",
			e.cfg.Service.Name, e.stats.Policy, e.cfg.SLA, duration, e.cfg.Seed))
	}
	e.RunUntil(end)
	if e.obsScope.Enabled() {
		e.obsScope.RunPhase(int64(end), "end", fmt.Sprintf("worst_p99=%gs violations=%d",
			e.stats.WorstP99, e.stats.Violations))
	}
	return e.stats, nil
}

// RunUntil advances the simulation up to (but not including) end on the
// tick grid and returns the stats so far. The tick cursor and the control
// boundary persist across calls, so running one 20 s sweep and running
// ten 2 s slices execute the identical tick/control sequence and consume
// the identical RNG streams — the invariant that lets the fleet layer
// interleave scheduler barriers between slices without perturbing any
// per-machine byte. The caller owns end-of-run bookkeeping (stats.Duration,
// obs run brackets); Run wraps this with both.
func (e *Engine) RunUntil(end sim.Time) *RunStats {
	for ; e.cursor < end; e.cursor = e.cursor.Add(e.cfg.TickDt) {
		now := e.cursor
		e.clock.RunUntil(now)
		load := e.cfg.Pattern.Load(now)
		if e.cfg.Faults != nil {
			// Load surges multiply the offered pattern; both the tick
			// and the controller see the surged load, exactly as a
			// real traffic spike would reach both.
			load *= e.cfg.Faults.LoadMul(now)
		}
		e.tick(now, load)
		if now >= e.nextControl {
			e.controlTick(now, load)
			e.nextControl = e.nextControl.Add(e.cfg.ControlPeriod)
		}
	}
	return e.stats
}

// Now returns the next tick the engine will execute (virtual time reached
// so far).
func (e *Engine) Now() sim.Time { return e.cursor }

// Step advances the engine by exactly one simulation tick at the given
// virtual time and load fraction, without running the controllers. It is
// the benchmark entry point for the per-tick hot path (cmd/rhythm-bench);
// experiments go through Run, which drives Step's internals on the tick
// grid and interleaves control decisions.
func (e *Engine) Step(now sim.Time, load float64) { e.tick(now, load) }

// tick advances the world by one TickDt at the given load fraction.
func (e *Engine) tick(now sim.Time, load float64) {
	dt := e.cfg.TickDt
	qps := load * e.cfg.Service.MaxLoadQPS
	measuring := now >= sim.Time(0).Add(e.cfg.Warmup)

	// Per-pod sojourn distributions under current interference, cached
	// per operating point (see podRuntime.sojourn).
	for _, p := range e.pods {
		if e.cfg.Faults != nil && e.cfg.Faults.CrashTriggered(e.lastFaultScan, now, p.comp.Name) {
			e.crashBE(p, now)
		}
		lcDemand := p.comp.DemandAt(load)
		beDemand := p.beDemand()
		press := e.cfg.Model.Pressure(p.machine.Spec, lcDemand, beDemand)
		muSkew, sigmaSkew := 1.0, 1.0
		freqCap := 0.0
		if e.cfg.Faults != nil {
			// Interference storms multiply the pressure vector before
			// the inflation map, so a storm behaves exactly like that
			// much more BE demand hammering the machine.
			if m := e.cfg.Faults.InterferenceMul(now, p.comp.Name); m != 1 {
				press = press.Scale(m)
			}
			freqCap = e.cfg.Faults.FreqCapGHz(now, p.comp.Name)
			muSkew, sigmaSkew = e.cfg.Faults.Drift(now, p.comp.Name)
		}
		inflate, cvInflate := e.cfg.Model.Inflation(p.comp, press)
		if freqCap > 0 && freqCap < p.machine.Spec.MaxGHz {
			// A machine slowdown stretches LC service time like any
			// DVFS step-down would; it rides through the same inertia
			// as interference, since thermal throttling is not a step
			// function either.
			inflate *= interference.FreqInflation(p.comp, freqCap, p.machine.Spec.MaxGHz)
		}
		inflate, cvInflate = p.smooth(inflate, cvInflate, dt, e.cfg.InertiaTau)
		if key := [5]float64{qps, inflate, cvInflate, muSkew, sigmaSkew}; !p.sojournOK || key != p.sojournKey {
			p.sojourn = p.comp.Station.At(qps, inflate, cvInflate, 1)
			p.sjMu, p.sjSigma = p.sojourn.LogParams()
			// Profile drift skews the fitted lognormal away from what
			// was profiled: the mean by muSkew (an additive log-space
			// shift), the log-space sigma by sigmaSkew.
			if muSkew != 1 {
				p.sjMu += math.Log(muSkew)
			}
			if sigmaSkew != 1 {
				p.sjSigma *= sigmaSkew
			}
			p.sojournKey, p.sojournOK = key, true
		}
		sj := p.sojourn

		// Utilization accounting. LC cores are busy in proportion to
		// station utilization; BE cores are fully busy while running.
		beAlloc := p.runningBEAlloc()
		lcBusy := float64(p.comp.Cores) * sj.Utilization
		cpuUtil := (lcBusy + float64(beAlloc.Cores)) / float64(p.machine.Spec.Cores)
		servedBW := lcDemand[cluster.ResMemBW] + minf(beDemand[cluster.ResMemBW], p.machine.Spec.MemBWGBs-lcDemand[cluster.ResMemBW])
		mbwUtil := sim.Clamp(servedBW/p.machine.Spec.MemBWGBs, 0, 1)
		if measuring {
			p.cpu.Observe(cpuUtil, dt)
			p.mbw.Observe(mbwUtil, dt)
		}

		// BE progress: satisfaction is limited by the bandwidth the
		// machine can actually serve and by DVFS throttling.
		sat := 1.0
		if beDemand[cluster.ResMemBW] > 0 {
			avail := p.machine.Spec.MemBWGBs - lcDemand[cluster.ResMemBW]
			if avail < 0 {
				avail = 0
			}
			sat = minf(sat, avail/beDemand[cluster.ResMemBW])
		}
		beFreq := p.agent.BEFrequency()
		if freqCap > 0 && freqCap < beFreq {
			// A slowed machine caps BE clocks too, below whatever the
			// frequency subcontroller already granted.
			beFreq = freqCap
		}
		freqScale := beFreq / p.machine.Spec.MaxGHz
		beRate := 0.0
		for _, in := range p.instances {
			alloc := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
			if alloc == nil {
				continue
			}
			// Cache-bound jobs also slow down when their CAT partition
			// is smaller than their working set.
			instSat := sat
			if wanted := in.Spec.PerCore[cluster.ResLLC] * float64(alloc.Cores); wanted > 0 {
				if cacheSat := float64(alloc.LLCWays) / wanted; cacheSat < instSat {
					// Cache starvation degrades but does not stop
					// progress (misses stream to DRAM).
					if cacheSat < 0.2 {
						cacheSat = 0.2
					}
					instSat = cacheSat
				}
			}
			rate := in.Rate(alloc.Cores, instSat) * freqScale
			done := in.Advance(rate, dt.Hours())
			p.stats.Completions += done
			if done > 0 {
				p.obsCompletions.Add(uint64(done))
			}
			beRate += rate
		}
		if measuring {
			p.bet.Observe(beRate, dt)
			p.emu.Observe(metrics.EMU(load, beRate), dt)
		}
		p.stats.BEThroughput = p.bet.Mean()
		p.stats.CPUUtil = p.cpu.Mean()
		p.stats.MemBWUtil = p.mbw.Mean()
		p.stats.EMU = p.emu.Mean()
	}

	// End-to-end latency sampling through the call graph. sampleFn draws
	// per-component sojourns (and records them when CollectSamples) with
	// no per-sample allocation.
	for i := 0; i < e.cfg.SamplesPerTick; i++ {
		lat := e.cfg.Service.Graph.Latency(e.sampleFn)
		e.tail.Add(now, lat)
		if e.cfg.CollectSamples {
			e.stats.E2ESamples = append(e.stats.E2ESamples, lat)
		}
	}
	// The paper records the p99 once per second (§5.1's SLA statistic);
	// sample the sliding window on second boundaries only.
	if measuring && now-e.lastObserve >= sim.Time(time.Second) {
		e.lastObserve = now
		e.tail.ObserveWindow(now)
		worst, _ := e.tail.Worst()
		e.stats.WorstP99 = worst
	}

	e.obsTicks.Inc()
	if e.obsScope.Enabled() {
		e.obsScope.Tick(int64(now), int64(dt), load, qps, e.cfg.SamplesPerTick)
		if e.cfg.Faults != nil {
			e.emitFaultEdges(now)
		}
	}
	e.lastFaultScan = now
}

// emitFaultEdges reports fault activations and recoveries in the tick's
// (lastFaultScan, now] window on the bus. Only called with a bus
// installed; untraced runs never scan.
func (e *Engine) emitFaultEdges(now sim.Time) {
	e.faultEdges = e.cfg.Faults.EdgesIn(e.faultEdges[:0], e.lastFaultScan, now)
	for _, edge := range e.faultEdges {
		ev := edge.Event
		op := "start"
		if !edge.Start {
			op = "end"
		}
		mag := ev.Magnitude
		detail := ""
		switch ev.Kind {
		case faults.MachineSlowdown:
			mag = ev.FreqGHz
		case faults.ProfileDrift:
			mag = ev.MuSkew
		case faults.BECrash:
			detail = "restart_delay=" + ev.RestartDelay.String()
		case faults.MeasurementDropout:
			detail = "mode=" + string(ev.Mode)
		}
		e.obsScope.Fault(int64(now), ev.Pod, string(ev.Kind), op, mag, detail)
		e.obsFaults.Inc()
	}
}

// crashBE is the BE-crash fault: every instance on the machine dies at
// once (unlike StopBE, these count as crashes, not policy kills); the
// schedule's restart delay then blocks launch until it expires.
func (e *Engine) crashBE(p *podRuntime, now sim.Time) {
	for _, in := range p.instances {
		if in.State == bejobs.Running || in.State == bejobs.Suspended {
			in.State = bejobs.Killed
			p.stats.Crashes++
			if e.cfg.ExternalBE {
				e.evicted = append(e.evicted, EvictedBE{Pod: p.comp.Name, ID: in.ID, Type: in.Spec.Type, Crashed: true})
			}
		}
		p.agent.KillBE(in.ID)
		e.beEvent(now, p, in.ID, "crash")
	}
	p.instances = p.instances[:0]
	p.suspended = false
}

// smooth applies the first-order inertia of Config.InertiaTau to the
// steady-state inflation targets.
func (p *podRuntime) smooth(inflate, cvInflate float64, dt, tau time.Duration) (float64, float64) {
	if tau < 0 {
		return inflate, cvInflate
	}
	if p.smoothedInflate == 0 {
		p.smoothedInflate, p.smoothedCV = 1, 1
	}
	alpha := 1 - math.Exp(-dt.Seconds()/tau.Seconds())
	p.smoothedInflate += (inflate - p.smoothedInflate) * alpha
	p.smoothedCV += (cvInflate - p.smoothedCV) * alpha
	return p.smoothedInflate, p.smoothedCV
}

// runningBEAlloc sums allocations of running (not suspended) instances.
func (p *podRuntime) runningBEAlloc() cluster.Alloc {
	var a cluster.Alloc
	for _, in := range p.instances {
		if in.State != bejobs.Running {
			continue
		}
		if al := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID}); al != nil {
			a.Cores += al.Cores
			a.LLCWays += al.LLCWays
			a.MemoryGB += al.MemoryGB
		}
	}
	return a
}

// controlTick runs the top controller and the four subcontrollers on every
// machine (§3.5.2).
func (e *Engine) controlTick(now sim.Time, load float64) {
	// truthP99 is what the latency tracker actually measured; p99 is what
	// the controller gets to see. They differ only under a
	// measurement-dropout fault, which poisons the controller's view (NaN
	// or a stale replay) while the run statistics stay honest.
	truthP99 := e.tail.P99()
	p99 := truthP99
	degraded := false
	degradedCause := ""
	if e.cfg.Faults != nil {
		if mode, ok := e.cfg.Faults.Dropout(now); ok {
			degraded = true
			if mode == faults.DropNaN {
				p99 = math.NaN()
				degradedCause = "p99 NaN"
			} else {
				p99 = e.staleP99
				degradedCause = "p99 stale"
			}
		} else {
			e.staleP99 = truthP99
		}
	}
	slack := 1.0
	if e.cfg.SLA > 0 {
		guarded := e.cfg.SLA * (1 - e.cfg.SLAGuard)
		slack = (guarded - p99) / guarded
	}
	if now >= sim.Time(0).Add(e.cfg.Warmup) {
		if e.cfg.SLA > 0 && truthP99 > e.cfg.SLA {
			e.stats.Violations++
			e.stats.ViolationSeconds += e.cfg.ControlPeriod.Seconds()
		}
		// Time-averaged window p99.
		e.meanP99Accum += truthP99
		e.meanP99N++
		e.stats.MeanP99 = e.meanP99Accum / float64(e.meanP99N)
	}
	if degraded {
		e.stats.DegradedPeriods++
	}

	if !math.IsNaN(slack) {
		e.obsSlackH.Observe(slack)
	}
	if !math.IsNaN(p99) {
		e.obsP99H.Observe(p99)
	}
	e.obsLoadH.Observe(load)
	hasBE := e.cfg.Policy != nil && (len(e.cfg.BETypes) > 0 || e.cfg.ExternalBE)
	for _, p := range e.pods {
		if p.sojournOK {
			// Per-Servpod analytic tail at the current operating point:
			// the p99 of the pod's fitted lognormal sojourn. This is the
			// series `rhythm calibrate` matches against a deployment's
			// per-pod latency dashboards.
			p.obsSojournP99.Observe(math.Exp(p.sjMu + z99*p.sjSigma))
		}
		var act controller.Action
		switch {
		case !hasBE:
			act = controller.SuspendBE
		case degraded:
			// The measurement pipeline is down: no action may derive
			// from the NaN/stale slack. Escalate conservatively with
			// the blindness count instead (DisallowBEGrowth, then
			// CutBE), and recover the moment measurements return.
			p.degraded++
			act = controller.Degraded(p.degraded)
		default:
			p.degraded = 0
			act = e.cfg.Policy.Decide(p.comp.Name, load, slack)
		}
		p.lastAction = act
		if e.obsScope.Enabled() {
			reason := "no BE policy"
			switch {
			case hasBE && degraded:
				reason = controller.DegradedReason(p.degraded, degradedCause)
			case hasBE:
				if ex, ok := e.cfg.Policy.(controller.Explainer); ok {
					_, reason = ex.Explain(p.comp.Name, load, slack)
				} else {
					reason = ""
				}
			}
			e.obsScope.Decision(int64(now), p.comp.Name, act.String(), load, slack, p99, reason)
		}
		e.obsDecisions[act].Inc()
		// A degraded period hands apply a slack of 0 — the most
		// conservative in-band value — so CutBE severity and the
		// subcontrollers never see NaN or a stale number.
		applySlack := slack
		if degraded {
			applySlack = 0
		}
		e.apply(p, act, now, load, applySlack)
		if e.cfg.Timeline {
			e.stats.Actions = append(e.stats.Actions, ActionEvent{At: now, Pod: p.comp.Name, Action: act})
			e.record(now, p, load, applySlack)
		}
	}
}

// apply executes a top-controller action through the subcontrollers.
func (e *Engine) apply(p *podRuntime, act controller.Action, now sim.Time, load, slack float64) {
	switch act {
	case controller.StopBE:
		for _, in := range p.instances {
			if in.State == bejobs.Running || in.State == bejobs.Suspended {
				in.State = bejobs.Killed
				p.stats.Kills++
				if e.cfg.ExternalBE {
					e.evicted = append(e.evicted, EvictedBE{Pod: p.comp.Name, ID: in.ID, Type: in.Spec.Type})
				}
			}
			p.agent.KillBE(in.ID)
			e.beEvent(now, p, in.ID, "kill")
		}
		p.instances = p.instances[:0]
		p.suspended = false

	case controller.SuspendBE:
		// Pause: jobs keep their memory space but stop executing
		// (§3.5.2); their cores and cache ways return to the pool so
		// that resuming later re-grows from the minimal slice instead
		// of slamming a full allocation back at high load.
		for _, in := range p.instances {
			if in.State == bejobs.Running {
				in.State = bejobs.Suspended
				e.beEvent(now, p, in.ID, "suspend")
			}
			p.agent.ParkBE(in.ID)
		}
		p.suspended = true

	case controller.CutBE:
		e.resume(p, now)
		// The paper leaves CutBE's magnitude open ("reduces part of
		// their allocated resources"); cut harder the deeper the slack
		// has fallen into the band, so a fast-rising load sheds BE
		// pressure before it violates.
		steps := 1 + int(3*sim.Clamp(1-2*slack/maxSlacklimit(e.cfg.Policy, p.comp.Name), 0, 1))
		for _, in := range p.instances {
			for i := 0; i < steps; i++ {
				p.agent.CutBE(in.ID)
			}
			p.agent.AdjustBEMemory(in.ID, false)
			e.beEvent(now, p, in.ID, "cut")
		}

	case controller.DisallowBEGrowth:
		e.resume(p, now)

	case controller.AllowBEGrowth:
		e.resume(p, now)
		// Memory subcontroller: every job gains a memory step (memory
		// capacity is partitioned and interference-free). The CPU/LLC
		// subcontroller works at one-core/10%-LLC granularity (§3.5.2):
		// one instance grows per period, round-robin, so the latency
		// impact of each step stays inside the slack band.
		for _, in := range p.instances {
			p.agent.AdjustBEMemory(in.ID, true)
		}
		if len(p.instances) > 0 {
			p.growSeq++
			in := p.instances[p.growSeq%len(p.instances)]
			if p.agent.GrowBE(in.ID) {
				e.beEvent(now, p, in.ID, "grow")
			}
		}
		// Under ExternalBE the dispatcher owns admission: the machine
		// only signals Accepting (via MachineViews) and waits for
		// AdmitBE.
		if !e.cfg.ExternalBE && len(p.instances) < e.cfg.MaxBEPerMachine {
			e.launch(p, now)
		}
	}

	// Frequency subcontroller: throttle BE when the socket power budget
	// is at risk, restore otherwise (§3.5.2).
	lcDemand := p.comp.DemandAt(load)
	draw := interference.PowerDraw(p.machine.Spec, lcDemand, p.beDemand())
	if draw > 0.8*p.machine.Spec.TDPWatts {
		p.agent.StepDownBEFrequency()
	} else {
		p.agent.RestoreBEFrequency()
	}

	// Network subcontroller: B_link - 1.2*B_LC to BE (§3.5.2).
	p.agent.SetBENetwork(lcDemand[cluster.ResNetBW])
}

// resume restarts suspended instances from the minimal slice; instances
// that cannot get a core yet stay suspended and retry next period.
func (e *Engine) resume(p *podRuntime, now sim.Time) {
	if !p.suspended {
		return
	}
	allUp := true
	for _, in := range p.instances {
		if in.State != bejobs.Suspended {
			continue
		}
		if p.agent.UnparkBE(in.ID) {
			in.State = bejobs.Running
			e.beEvent(now, p, in.ID, "resume")
		} else {
			allUp = false
		}
	}
	p.suspended = !allUp
}

// launch admits one new BE instance with the §3.5.2 starting slice.
func (e *Engine) launch(p *podRuntime, now sim.Time) {
	if e.cfg.Faults != nil && e.cfg.Faults.CrashBlocked(now, p.comp.Name) {
		return // crash restart delay: the BE runtime is still coming back
	}
	ty := e.cfg.BETypes[p.beSeq%len(e.cfg.BETypes)]
	id := fmt.Sprintf("%s-%s-%d", p.comp.Name, ty, p.beSeq)
	if err := p.agent.LaunchBE(id); err != nil {
		return // no headroom; try again next period
	}
	in, err := bejobs.NewInstance(id, ty)
	if err != nil {
		p.agent.KillBE(id)
		return
	}
	p.beSeq++
	p.instances = append(p.instances, in)
	e.beEvent(now, p, id, "launch")
}

// EvictedBE is one BE instance the machine evicted — a policy kill
// (StopBE) or a fault crash — reported to the external dispatcher so it
// can re-queue the job (§1: BE jobs are second-class citizens that may be
// rescheduled at any time).
type EvictedBE struct {
	Pod     string
	ID      string
	Type    bejobs.Type
	Crashed bool
}

// MachineView is one machine's report to the cluster scheduler: the top
// controller's accept/deny feedback (§4) plus free capacity, in the shape
// scheduler.MachineState wants.
type MachineView struct {
	Pod          string
	Accepting    bool
	FreeCores    int
	FreeMemoryGB float64
	Resident     int
}

// MachineViews appends one view per machine to dst (in pod order, the
// stable order dispatch tie-breaks rely on) and returns it. A machine
// accepts when its last top-controller decision was AllowBEGrowth and it
// has a BE slot free; before the first control tick nothing accepts.
func (e *Engine) MachineViews(dst []MachineView) []MachineView {
	for _, p := range e.pods {
		dst = append(dst, MachineView{
			Pod:          p.comp.Name,
			Accepting:    p.lastAction == controller.AllowBEGrowth && len(p.instances) < e.cfg.MaxBEPerMachine,
			FreeCores:    p.machine.FreeCores(),
			FreeMemoryGB: p.machine.FreeMemoryGB(),
			Resident:     len(p.instances),
		})
	}
	return dst
}

// AdmitBE places one externally dispatched BE instance on the named
// machine with the §3.5.2 starting slice. It reports false — and leaves
// the machine untouched — when the engine is not in ExternalBE mode, the
// pod is unknown or full, a crash restart delay is pending, or the
// isolation agent has no headroom for even the starting slice; the
// dispatcher should then re-queue the job.
func (e *Engine) AdmitBE(pod string, ty bejobs.Type, id string) bool {
	if !e.cfg.ExternalBE {
		return false
	}
	p, ok := e.podByName[pod]
	if !ok || len(p.instances) >= e.cfg.MaxBEPerMachine {
		return false
	}
	if e.cfg.Faults != nil && e.cfg.Faults.CrashBlocked(e.cursor, pod) {
		return false
	}
	if err := p.agent.LaunchBE(id); err != nil {
		return false
	}
	in, err := bejobs.NewInstance(id, ty)
	if err != nil {
		p.agent.KillBE(id)
		return false
	}
	p.beSeq++
	p.instances = append(p.instances, in)
	e.beEvent(e.cursor, p, id, "launch")
	return true
}

// TakeEvicted returns the BE instances evicted since the last call and
// resets the list. Only populated under Config.ExternalBE.
func (e *Engine) TakeEvicted() []EvictedBE {
	ev := e.evicted
	e.evicted = nil
	return ev
}

// record appends the Fig. 17 series for one pod.
func (e *Engine) record(now sim.Time, p *podRuntime, load, slack float64) {
	add := func(name string, v float64) {
		key := p.comp.Name + "/" + name
		s, ok := e.stats.Series[key]
		if !ok {
			s = &metrics.Series{Name: key}
			e.stats.Series[key] = s
		}
		s.Append(now, v)
	}
	beAlloc := p.runningBEAlloc()
	running := 0
	for _, in := range p.instances {
		if in.State == bejobs.Running {
			running++
		}
	}
	add("load", load)
	add("slack", slack)
	add("cpu", p.cpu.Mean())
	add("be_llc", float64(beAlloc.LLCWays))
	add("be_cores", float64(beAlloc.Cores))
	add("be_instances", float64(running))
	add("be_throughput", p.bet.Mean())
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// slackLimiter is implemented by policies that expose their per-pod
// slacklimit; the engine scales CutBE severity with it.
type slackLimiter interface {
	SlacklimitFor(pod string) float64
}

// maxSlacklimit returns the pod's slacklimit under the policy, defaulting
// to Heracles' 0.10 when the policy does not expose one.
func maxSlacklimit(pol controller.Policy, pod string) float64 {
	if sl, ok := pol.(slackLimiter); ok {
		if v := sl.SlacklimitFor(pod); v > 0 {
			return v
		}
	}
	return 0.10
}
