package engine

import (
	"testing"

	"rhythm/internal/controller"
)

// reporterPolicy exposes the SlacklimitReporter capability with a
// non-default per-pod value.
type reporterPolicy struct{ limits map[string]float64 }

func (reporterPolicy) Decide(string, float64, float64) controller.Action {
	return controller.AllowBEGrowth
}
func (reporterPolicy) Name() string                       { return "reporter" }
func (r reporterPolicy) SlacklimitFor(pod string) float64 { return r.limits[pod] }

// bareMinimum implements only the base Policy interface.
type bareMinimum struct{}

func (bareMinimum) Decide(string, float64, float64) controller.Action {
	return controller.AllowBEGrowth
}
func (bareMinimum) Name() string { return "bare" }

// TestMaxSlacklimitCapability: CutBE step sizing reads the slacklimit
// through the controller.SlacklimitReporter capability — any policy
// exposing it is honored, everything else (including a zero or unknown
// pod) falls back to the conservative Heracles 0.10.
func TestMaxSlacklimitCapability(t *testing.T) {
	rep := reporterPolicy{limits: map[string]float64{"frontend": 0.22}}
	cases := []struct {
		name string
		pol  controller.Policy
		pod  string
		want float64
	}{
		{"reporter known pod", rep, "frontend", 0.22},
		{"reporter unknown pod zero-falls-back", rep, "cache", 0.10},
		{"non-reporter", bareMinimum{}, "frontend", 0.10},
		{"nil policy", nil, "frontend", 0.10},
		{"adapter forwards capability", controller.AsInput(rep), "frontend", 0.22},
		{"adapter over non-reporter", controller.AsInput(bareMinimum{}), "frontend", 0.10},
	}
	for _, tc := range cases {
		if got := maxSlacklimit(tc.pol, tc.pod); got != tc.want {
			t.Errorf("%s: maxSlacklimit = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMaxSlacklimitRhythm: the calibrated Rhythm policy reports its
// per-Servpod slacklimit straight through, no adapter needed.
func TestMaxSlacklimitRhythm(t *testing.T) {
	pol, err := controller.NewRhythm(map[string]controller.Thresholds{
		"frontend": {Loadlimit: 0.8, Slacklimit: 0.17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSlacklimit(pol, "frontend"); got != 0.17 {
		t.Fatalf("rhythm slacklimit = %v, want 0.17", got)
	}
	if got := maxSlacklimit(controller.AsInput(pol), "frontend"); got != 0.17 {
		t.Fatalf("adapted rhythm slacklimit = %v, want 0.17", got)
	}
}
