package engine

import (
	"math"
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/loadgen"
	"rhythm/internal/workload"
)

// deriveSLA mimics the paper's SLA definition: the worst window p99 of a
// solo run at max load.
func deriveSLA(t *testing.T, svc *workload.Service) float64 {
	t.Helper()
	e, err := New(Config{
		Service: svc,
		Pattern: loadgen.Constant(1.0),
		Seed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return st.WorstP99
}

func run(t *testing.T, cfg Config, d time.Duration) *RunStats {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSoloRunHasNoBE(t *testing.T) {
	svc := workload.ECommerce()
	st := run(t, Config{Service: svc, Pattern: loadgen.Constant(0.5), Seed: 1}, 20*time.Second)
	for pod, ps := range st.PerPod {
		if ps.BEThroughput != 0 || ps.Completions != 0 {
			t.Fatalf("%s: solo run produced BE activity: %+v", pod, ps)
		}
	}
	if st.WorstP99 <= 0 {
		t.Fatal("solo run should still measure latency")
	}
	if st.Policy != "solo" {
		t.Fatalf("policy label = %q", st.Policy)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	svc := workload.ECommerce()
	lo := run(t, Config{Service: svc, Pattern: loadgen.Constant(0.2), Seed: 2}, 20*time.Second)
	hi := run(t, Config{Service: svc, Pattern: loadgen.Constant(0.9), Seed: 2}, 20*time.Second)
	if hi.WorstP99 <= lo.WorstP99 {
		t.Fatalf("p99 should grow with load: %v vs %v", hi.WorstP99, lo.WorstP99)
	}
}

func TestHeraclesAdmitsBEAtLowLoad(t *testing.T) {
	svc := workload.ECommerce()
	sla := deriveSLA(t, svc)
	st := run(t, Config{
		Service: svc,
		Pattern: loadgen.Constant(0.45),
		SLA:     sla,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.CPUStress},
		Seed:    3,
	}, 60*time.Second)
	if st.MeanBEThroughput() <= 0 {
		t.Fatal("Heracles should admit BE jobs at 45% load")
	}
	if st.MeanEMU() <= 0.45 {
		t.Fatalf("EMU %v should exceed the LC load alone", st.MeanEMU())
	}
}

func TestHeraclesDisablesBEAboveLoadlimit(t *testing.T) {
	svc := workload.ECommerce()
	sla := deriveSLA(t, svc)
	st := run(t, Config{
		Service: svc,
		Pattern: loadgen.Constant(0.86),
		SLA:     sla,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.CPUStress},
		Seed:    4,
	}, 60*time.Second)
	if st.MeanBEThroughput() > 1e-9 {
		t.Fatalf("Heracles must not co-locate above 85%% load, got %v", st.MeanBEThroughput())
	}
}

func rhythmPolicy(t *testing.T) *controller.Rhythm {
	t.Helper()
	r, err := controller.NewRhythm(map[string]controller.Thresholds{
		"Haproxy": {Loadlimit: 0.90, Slacklimit: 0.032},
		"Tomcat":  {Loadlimit: 0.87, Slacklimit: 0.078},
		"Amoeba":  {Loadlimit: 0.92, Slacklimit: 0.040},
		"MySQL":   {Loadlimit: 0.76, Slacklimit: 0.347},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRhythmKeepsBERunningAboveHeraclesLimit(t *testing.T) {
	// At 87% load Heracles suspends everywhere but Rhythm's tolerant
	// pods (loadlimit up to 0.92) keep their BE jobs.
	svc := workload.ECommerce()
	sla := deriveSLA(t, svc)
	st := run(t, Config{
		Service: svc,
		Pattern: loadgen.Constant(0.87),
		SLA:     sla,
		Policy:  rhythmPolicy(t),
		BETypes: []bejobs.Type{bejobs.Wordcount},
		Seed:    5,
	}, 60*time.Second)
	if st.PerPod["Amoeba"].BEThroughput <= 0 {
		t.Fatal("Amoeba (loadlimit 0.92) should host BE at 87% load")
	}
	if st.PerPod["MySQL"].BEThroughput > 1e-9 {
		t.Fatal("MySQL (loadlimit 0.76) should be BE-free at 87% load")
	}
}

func TestRhythmBeatsHeraclesOnEMU(t *testing.T) {
	svc := workload.ECommerce()
	sla := deriveSLA(t, svc)
	base := Config{
		Service: svc,
		Pattern: loadgen.Constant(0.65),
		SLA:     sla,
		BETypes: []bejobs.Type{bejobs.Wordcount},
		Seed:    6,
	}
	h := base
	h.Policy = controller.NewHeracles()
	hst := run(t, h, 90*time.Second)
	r := base
	r.Policy = rhythmPolicy(t)
	rst := run(t, r, 90*time.Second)
	if rst.MeanEMU() <= hst.MeanEMU() {
		t.Fatalf("Rhythm EMU %v should beat Heracles %v at 65%% load",
			rst.MeanEMU(), hst.MeanEMU())
	}
}

func TestSLAProtection(t *testing.T) {
	// With an SLA barely above the solo p99, heavy interference must
	// trigger StopBE/CutBE rather than run unchecked. Count kills.
	svc := workload.ECommerce()
	sla := deriveSLA(t, svc)
	st := run(t, Config{
		Service: svc,
		Pattern: loadgen.Constant(0.7),
		SLA:     sla * 0.7, // deliberately tight: violations expected
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.StreamDRAM},
		Seed:    7,
	}, 60*time.Second)
	if st.TotalKills() == 0 && st.Violations == 0 {
		t.Fatal("tight SLA under stream-dram should trigger the controller")
	}
}

func TestNoOversubscriptionAfterRun(t *testing.T) {
	svc := workload.Solr()
	sla := deriveSLA(t, svc)
	e, err := New(Config{
		Service: svc,
		Pattern: loadgen.Constant(0.3),
		SLA:     sla,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.StreamDRAM, bejobs.CPUStress},
		Seed:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, p := range e.pods {
		if p.machine.FreeCores() < 0 || p.machine.FreeLLCWays() < 0 ||
			p.machine.FreeMemoryGB() < -1e-9 || p.machine.FreeNetGbps() < -1e-9 {
			t.Fatalf("machine %s oversubscribed", p.machine.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	svc := workload.Redis()
	cfg := Config{
		Service: svc,
		Pattern: loadgen.Constant(0.5),
		SLA:     0.01,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.LSTM},
		Seed:    11,
	}
	a := run(t, cfg, 30*time.Second)
	b := run(t, cfg, 30*time.Second)
	if a.WorstP99 != b.WorstP99 || a.MeanEMU() != b.MeanEMU() ||
		a.TotalKills() != b.TotalKills() {
		t.Fatal("same seed should reproduce the run exactly")
	}
}

func TestTimelineSeries(t *testing.T) {
	svc := workload.ECommerce()
	sla := deriveSLA(t, svc)
	st := run(t, Config{
		Service:  svc,
		Pattern:  loadgen.Constant(0.5),
		SLA:      sla,
		Policy:   rhythmPolicy(t),
		BETypes:  []bejobs.Type{bejobs.Wordcount},
		Seed:     12,
		Timeline: true,
	}, 30*time.Second)
	for _, key := range []string{"MySQL/load", "MySQL/slack", "Tomcat/be_cores", "Tomcat/be_throughput"} {
		s, ok := st.Series[key]
		if !ok || s.Len() == 0 {
			t.Fatalf("missing timeline series %q", key)
		}
	}
	if len(st.Actions) == 0 {
		t.Fatal("timeline should record controller actions")
	}
}

func TestCollectSamples(t *testing.T) {
	svc := workload.Redis()
	st := run(t, Config{
		Service:        svc,
		Pattern:        loadgen.Constant(0.5),
		Seed:           13,
		CollectSamples: true,
	}, 10*time.Second)
	if len(st.E2ESamples) == 0 {
		t.Fatal("no e2e samples collected")
	}
	for _, pod := range []string{"Master", "Slave"} {
		if len(st.PerPod[pod].SojournSamples) != len(st.E2ESamples) {
			t.Fatalf("%s: %d sojourn samples vs %d e2e samples",
				pod, len(st.PerPod[pod].SojournSamples), len(st.E2ESamples))
		}
	}
}

func TestBECompletionsAccrue(t *testing.T) {
	svc := workload.Solr()
	sla := deriveSLA(t, svc)
	st := run(t, Config{
		Service:        svc,
		Pattern:        loadgen.Constant(0.25),
		SLA:            sla,
		Policy:         controller.NewHeracles(),
		BETypes:        []bejobs.Type{bejobs.CPUStress}, // shortest solo time (0.5 h)
		Seed:           14,
		TickDt:         time.Second, // coarse tick: the run spans hours
		SamplesPerTick: 10,
	}, 2*time.Hour)
	total := 0
	for _, ps := range st.PerPod {
		total += ps.Completions
	}
	if total == 0 {
		t.Fatal("no BE completions in 2 hours at low load")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := New(Config{Service: workload.Redis()}); err == nil {
		t.Fatal("nil pattern accepted")
	}
	e, err := New(Config{Service: workload.Redis(), Pattern: loadgen.Constant(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestStatsAggregation(t *testing.T) {
	st := &RunStats{PerPod: map[string]*PodStats{
		"a": {EMU: 1.0, BEThroughput: 0.4, CPUUtil: 0.5, MemBWUtil: 0.2, Kills: 2},
		"b": {EMU: 0.5, BEThroughput: 0.2, CPUUtil: 0.3, MemBWUtil: 0.4, Kills: 1},
	}}
	if math.Abs(st.MeanEMU()-0.75) > 1e-12 ||
		math.Abs(st.MeanBEThroughput()-0.3) > 1e-12 ||
		math.Abs(st.MeanCPUUtil()-0.4) > 1e-12 ||
		math.Abs(st.MeanMemBWUtil()-0.3) > 1e-12 ||
		st.TotalKills() != 3 {
		t.Fatal("aggregation broken")
	}
	empty := &RunStats{PerPod: map[string]*PodStats{}}
	if empty.MeanEMU() != 0 || empty.MeanBEThroughput() != 0 ||
		empty.MeanCPUUtil() != 0 || empty.MeanMemBWUtil() != 0 {
		t.Fatal("empty stats should be zero")
	}
}
