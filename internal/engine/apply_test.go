package engine

import (
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/controller"
	"rhythm/internal/loadgen"
	"rhythm/internal/obs"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// newApplyFixture builds an engine with an installed memory-sink bus and
// two seeded BE instances on the first pod (each holding the §3.5.2
// minimal slice: one core, one LLC step). The caller must Uninstall via
// the returned cleanup (registered on t).
func newApplyFixture(t *testing.T) (*Engine, *podRuntime, *obs.MemorySink) {
	t.Helper()
	sink := &obs.MemorySink{}
	obs.Install(obs.NewBus(sink))
	t.Cleanup(obs.Uninstall)
	e, err := New(Config{
		Service: workload.Redis(),
		Pattern: loadgen.Constant(0.3),
		SLA:     0.00115,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.CPUStress},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := e.pods[0]
	e.launch(p, 0)
	e.launch(p, 0)
	if len(p.instances) != 2 {
		t.Fatalf("seeded %d instances, want 2", len(p.instances))
	}
	sink.Reset()
	return e, p, sink
}

// beOpsOf filters the BE lifecycle ops out of a captured event stream, in
// publication order.
func beOpsOf(evs []obs.Event) []string {
	var ops []string
	for _, ev := range evs {
		if ev.Kind == obs.KindBE {
			ops = append(ops, ev.Op)
		}
	}
	return ops
}

// TestApplyActions is the table over every top-controller action crossed
// with the pod's BE state (running vs suspended): each case asserts the
// resulting instance states, the machine's BE core allocation, and the BE
// lifecycle events emitted on the observability bus.
func TestApplyActions(t *testing.T) {
	const at = sim20s // a virtual timestamp events should carry through

	cases := []struct {
		name      string
		act       controller.Action
		suspended bool // park the pod first (SuspendBE pre-applied)
		growFirst bool // grow instance 0 so CutBE has slack to cut

		wantStates    []bejobs.State // the two seeded instances, in order
		wantOps       []string       // BE events emitted by the tested apply
		wantInstances int            // len(p.instances) after
		wantBECores   int            // machine BE core total after
		wantSuspended bool           // p.suspended after
		wantKills     int            // p.stats.Kills after
	}{
		{
			name:          "StopBE kills running instances",
			act:           controller.StopBE,
			wantStates:    []bejobs.State{bejobs.Killed, bejobs.Killed},
			wantOps:       []string{"kill", "kill"},
			wantInstances: 0, wantBECores: 0, wantKills: 2,
		},
		{
			name: "StopBE kills suspended instances", act: controller.StopBE,
			suspended:     true,
			wantStates:    []bejobs.State{bejobs.Killed, bejobs.Killed},
			wantOps:       []string{"kill", "kill"},
			wantInstances: 0, wantBECores: 0, wantKills: 2,
		},
		{
			name: "SuspendBE parks running instances", act: controller.SuspendBE,
			wantStates:    []bejobs.State{bejobs.Suspended, bejobs.Suspended},
			wantOps:       []string{"suspend", "suspend"},
			wantInstances: 2, wantBECores: 0, wantSuspended: true,
		},
		{
			name: "SuspendBE on suspended pod is idempotent", act: controller.SuspendBE,
			suspended:     true,
			wantStates:    []bejobs.State{bejobs.Suspended, bejobs.Suspended},
			wantOps:       nil, // already suspended: no second transition event
			wantInstances: 2, wantBECores: 0, wantSuspended: true,
		},
		{
			name: "CutBE shrinks running instances", act: controller.CutBE,
			growFirst:     true, // instance 0 at 2 cores; instance 1 at the floor
			wantStates:    []bejobs.State{bejobs.Running, bejobs.Running},
			wantOps:       []string{"cut", "cut"},
			wantInstances: 2, wantBECores: 2, // both back at the 1-core floor
		},
		{
			name: "CutBE resumes a suspended pod before cutting", act: controller.CutBE,
			suspended:     true,
			wantStates:    []bejobs.State{bejobs.Running, bejobs.Running},
			wantOps:       []string{"resume", "resume", "cut", "cut"},
			wantInstances: 2, wantBECores: 2,
		},
		{
			name: "DisallowBEGrowth freezes running instances", act: controller.DisallowBEGrowth,
			wantStates:    []bejobs.State{bejobs.Running, bejobs.Running},
			wantOps:       nil,
			wantInstances: 2, wantBECores: 2,
		},
		{
			name: "DisallowBEGrowth resumes a suspended pod", act: controller.DisallowBEGrowth,
			suspended:     true,
			wantStates:    []bejobs.State{bejobs.Running, bejobs.Running},
			wantOps:       []string{"resume", "resume"},
			wantInstances: 2, wantBECores: 2,
		},
		{
			name: "AllowBEGrowth grows one instance and admits another", act: controller.AllowBEGrowth,
			wantStates:    []bejobs.State{bejobs.Running, bejobs.Running},
			wantOps:       []string{"grow", "launch"},
			wantInstances: 3, wantBECores: 4, // 1 + grown 2 + launched 1
		},
		{
			name: "AllowBEGrowth resumes then grows a suspended pod", act: controller.AllowBEGrowth,
			suspended:     true,
			wantStates:    []bejobs.State{bejobs.Running, bejobs.Running},
			wantOps:       []string{"resume", "resume", "grow", "launch"},
			wantInstances: 3, wantBECores: 4,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, p, sink := newApplyFixture(t)
			seeded := append([]*bejobs.Instance(nil), p.instances...)
			if tc.growFirst {
				if !p.agent.GrowBE(seeded[0].ID) {
					t.Fatal("setup: GrowBE failed with free headroom")
				}
			}
			if tc.suspended {
				e.apply(p, controller.SuspendBE, 0, 0.3, 0.2)
				if !p.suspended {
					t.Fatal("setup: pod not suspended after SuspendBE")
				}
				sink.Reset()
			}

			e.apply(p, tc.act, at, 0.3, 0.2)

			for i, in := range seeded {
				if in.State != tc.wantStates[i] {
					t.Errorf("instance %d state = %v, want %v", i, in.State, tc.wantStates[i])
				}
			}
			if got := beOpsOf(sink.Events()); !equalStrings(got, tc.wantOps) {
				t.Errorf("BE events = %v, want %v", got, tc.wantOps)
			}
			for _, ev := range sink.Events() {
				if ev.Kind == obs.KindBE && ev.At != int64(at) {
					t.Errorf("BE event %q at %d, want virtual time %d", ev.Op, ev.At, int64(at))
				}
				if ev.Kind == obs.KindBE && ev.Pod != p.comp.Name {
					t.Errorf("BE event %q on pod %q, want %q", ev.Op, ev.Pod, p.comp.Name)
				}
			}
			if len(p.instances) != tc.wantInstances {
				t.Errorf("instances = %d, want %d", len(p.instances), tc.wantInstances)
			}
			if got := p.machine.BETotals().Cores; got != tc.wantBECores {
				t.Errorf("machine BE cores = %d, want %d", got, tc.wantBECores)
			}
			if p.suspended != tc.wantSuspended {
				t.Errorf("suspended = %v, want %v", p.suspended, tc.wantSuspended)
			}
			if p.stats.Kills != tc.wantKills {
				t.Errorf("kills = %d, want %d", p.stats.Kills, tc.wantKills)
			}
			// The cluster invariant must hold after every action.
			if err := checkNoOversubscription(p.machine); err != nil {
				t.Error(err)
			}
		})
	}
}

// sim20s is 20 virtual seconds in sim.Time nanoseconds.
const sim20s = 20_000_000_000

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkNoOversubscription asserts the machine's grants fit its spec.
func checkNoOversubscription(m *cluster.Machine) error {
	if m.FreeCores() < 0 || m.FreeLLCWays() < 0 || m.FreeMemoryGB() < 0 {
		return &oversubError{m.Name, m.FreeCores(), m.FreeLLCWays(), m.FreeMemoryGB()}
	}
	return nil
}

type oversubError struct {
	machine    string
	cores, llc int
	mem        float64
}

func (e *oversubError) Error() string {
	return "machine " + e.machine + " oversubscribed"
}

// assertSoARowSynced checks one pod's SoA row against a fresh derivation
// from the AoS view: the dirty flag cleared and every cached BE aggregate
// equal to what refreshBE would compute right now.
func assertSoARowSynced(t *testing.T, e *Engine, p *podRuntime) {
	t.Helper()
	i := p.idx
	if e.soa.beDirty[i] {
		t.Fatal("row still dirty after a tick")
	}
	if got, want := e.soa.beDemand[i], p.beDemand(); got != want {
		t.Errorf("soa.beDemand = %v, AoS derives %v", got, want)
	}
	if got, want := e.soa.beFreq[i], p.agent.BEFrequency(); got != want {
		t.Errorf("soa.beFreq = %v, AoS derives %v", got, want)
	}
	if got, want := e.soa.beCores[i], p.runningBEAlloc().Cores; got != want {
		t.Errorf("soa.beCores = %d, AoS derives %d", got, want)
	}
	if len(p.instCache) != len(p.instances) {
		t.Fatalf("instCache holds %d entries, instances %d", len(p.instCache), len(p.instances))
	}
	for j, in := range p.instances {
		c := p.instCache[j]
		if c.in != in {
			t.Errorf("instCache[%d] caches %q, instances[%d] is %q", j, c.in.ID, j, in.ID)
		}
		live := p.machine.Alloc(cluster.Owner{Kind: cluster.OwnerBE, Name: in.ID})
		if c.alloc != live {
			t.Errorf("instCache[%d].alloc = %p, ledger holds %p", j, c.alloc, live)
		}
	}
}

// TestSoAResyncAfterMutations is the satellite coherence table: every
// cold-path mutation of the AoS pod view — control actions through apply,
// fault crashes, external admission, eviction draining — must mark the
// SoA row dirty so the next tick rebuilds the cached BE aggregates to
// exactly what the mutated view derives.
func TestSoAResyncAfterMutations(t *testing.T) {
	const at = sim20s

	applyCase := func(act controller.Action, prep func(*Engine, *podRuntime)) func(t *testing.T) {
		return func(t *testing.T) {
			e, p, _ := newApplyFixture(t)
			// Mid-run: a few ticks so the row is warm and clean.
			now := sim.Time(0)
			for k := 0; k < 3; k++ {
				now = now.Add(e.cfg.TickDt)
				e.Step(now, 0.3)
			}
			if e.soa.beDirty[p.idx] {
				t.Fatal("setup: row dirty before mutation")
			}
			if prep != nil {
				prep(e, p)
			}
			e.apply(p, act, at, 0.3, 0.2)
			if !e.soa.beDirty[p.idx] {
				t.Fatal("apply did not mark the row dirty")
			}
			now = now.Add(e.cfg.TickDt)
			e.Step(now, 0.3)
			assertSoARowSynced(t, e, p)
		}
	}

	t.Run("apply StopBE", applyCase(controller.StopBE, nil))
	t.Run("apply SuspendBE", applyCase(controller.SuspendBE, nil))
	t.Run("apply AllowBEGrowth", applyCase(controller.AllowBEGrowth, nil))
	t.Run("apply CutBE after growth", applyCase(controller.CutBE, func(e *Engine, p *podRuntime) {
		if !p.agent.GrowBE(p.instances[0].ID) {
			t.Fatal("setup: GrowBE failed with free headroom")
		}
	}))
	t.Run("apply resume from suspended", applyCase(controller.DisallowBEGrowth, func(e *Engine, p *podRuntime) {
		e.apply(p, controller.SuspendBE, at, 0.3, 0.2)
	}))

	t.Run("crashBE", func(t *testing.T) {
		e, p, _ := newApplyFixture(t)
		now := sim.Time(0)
		for k := 0; k < 3; k++ {
			now = now.Add(e.cfg.TickDt)
			e.Step(now, 0.3)
		}
		e.crashBE(p, now)
		if !e.soa.beDirty[p.idx] {
			t.Fatal("crashBE did not mark the row dirty")
		}
		if len(p.instances) != 0 {
			t.Fatalf("crash left %d instances", len(p.instances))
		}
		now = now.Add(e.cfg.TickDt)
		e.Step(now, 0.3)
		assertSoARowSynced(t, e, p)
	})

	t.Run("AdmitBE and TakeEvicted", func(t *testing.T) {
		e := newExternalEngine(t, true)
		p := e.pods[0]
		now := sim.Time(0)
		for k := 0; k < 3; k++ {
			now = now.Add(e.cfg.TickDt)
			e.Step(now, 0.3)
		}
		if !e.AdmitBE(p.comp.Name, bejobs.Wordcount, "be-sync-1") {
			t.Fatal("admission onto an empty machine should succeed")
		}
		if !e.soa.beDirty[p.idx] {
			t.Fatal("AdmitBE did not mark the row dirty")
		}
		now = now.Add(e.cfg.TickDt)
		e.Step(now, 0.3)
		assertSoARowSynced(t, e, p)

		// Evict and drain: the view mutation happens at apply time; the
		// drain must not disturb the already-resynced row.
		e.apply(p, controller.StopBE, now, 0.3, -0.1)
		now = now.Add(e.cfg.TickDt)
		e.Step(now, 0.3)
		if ev := e.TakeEvicted(); len(ev) != 1 {
			t.Fatalf("TakeEvicted = %v, want the one eviction", ev)
		}
		assertSoARowSynced(t, e, p)
	})
}

// TestControlTickEmitsDecisionPerPod pins the acceptance property of the
// decision trace: every control tick publishes exactly one decision event
// per Servpod, carrying the action, the measured load and the slack.
func TestControlTickEmitsDecisionPerPod(t *testing.T) {
	sink := &obs.MemorySink{}
	obs.Install(obs.NewBus(sink))
	t.Cleanup(obs.Uninstall)
	svc := workload.Redis()
	e, err := New(Config{
		Service: svc,
		Pattern: loadgen.Constant(0.4),
		SLA:     0.00115,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.CPUStress},
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const d = 10 * time.Second
	if _, err := e.Run(d); err != nil {
		t.Fatal(err)
	}
	// Control ticks fire on the 2 s grid strictly inside (0, d): at 2, 4,
	// 6 and 8 s with the default period and 100 ms tick.
	const wantTicks = 4
	perPod := make(map[string]int)
	for _, ev := range sink.Events() {
		if ev.Kind != obs.KindDecision {
			continue
		}
		perPod[ev.Pod]++
		if ev.Op == "" || ev.Reason == "" {
			t.Fatalf("decision missing action or reason: %+v", ev)
		}
		if ev.Load != 0.4 {
			t.Fatalf("decision load = %v, want 0.4", ev.Load)
		}
		if ev.Slack == 0 {
			t.Fatalf("decision slack not populated: %+v", ev)
		}
	}
	if len(perPod) != len(svc.Components) {
		t.Fatalf("decisions cover %d pods, want %d (%v)", len(perPod), len(svc.Components), perPod)
	}
	for pod, n := range perPod {
		if n != wantTicks {
			t.Fatalf("pod %s got %d decisions, want %d", pod, n, wantTicks)
		}
	}
}
