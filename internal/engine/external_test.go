package engine

import (
	"math"
	"reflect"
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/loadgen"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func newExternalEngine(t *testing.T, external bool) *Engine {
	t.Helper()
	cfg := Config{
		Service:    workload.Redis(),
		Pattern:    loadgen.Constant(0.3),
		SLA:        0.00115,
		Policy:     controller.NewHeracles(),
		Seed:       7,
		ExternalBE: external,
	}
	if !external {
		cfg.BETypes = []bejobs.Type{bejobs.CPUStress}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunUntilMatchesRun pins the chunked-run invariant the fleet layer
// depends on: one 20 s Run and ten 2 s RunUntil slices over an identical
// configuration produce bitwise-equal statistics (same ticks, same
// control boundaries, same RNG stream consumption).
func TestRunUntilMatchesRun(t *testing.T) {
	pattern, err := loadgen.NewDiurnal(10*time.Second, 0.3, 0.8, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Service: workload.Redis(),
		Pattern: pattern,
		SLA:     0.00115,
		Policy:  controller.NewHeracles(),
		BETypes: []bejobs.Type{bejobs.CPUStress, bejobs.Wordcount},
		Seed:    2020,
	}
	whole := func() *RunStats {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Run(20 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	sliced := func() *RunStats {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			e.RunUntil(sim.FromSeconds(float64(2 * i)))
		}
		return e.stats
	}()
	sliced.Duration = whole.Duration // Run-only bookkeeping, set by the caller
	if !reflect.DeepEqual(whole, sliced) {
		t.Fatalf("sliced run diverged from whole run:\nwhole:  worstP99=%v meanP99=%v viol=%d\nsliced: worstP99=%v meanP99=%v viol=%d",
			whole.WorstP99, whole.MeanP99, whole.Violations,
			sliced.WorstP99, sliced.MeanP99, sliced.Violations)
	}
	if math.IsNaN(whole.MeanP99) || whole.MeanP99 <= 0 {
		t.Fatalf("degenerate run: meanP99 = %v", whole.MeanP99)
	}
}

// TestExternalBENoSelfLaunch: in ExternalBE mode AllowBEGrowth must never
// self-launch an instance — admission belongs to the dispatcher.
func TestExternalBENoSelfLaunch(t *testing.T) {
	e := newExternalEngine(t, true)
	p := e.pods[0]
	e.apply(p, controller.AllowBEGrowth, 0, 0.3, 0.5)
	if len(p.instances) != 0 {
		t.Fatalf("ExternalBE engine self-launched %d instances", len(p.instances))
	}
}

// TestAdmitAndEvict drives the full dispatcher protocol: AdmitBE places
// an instance, MachineViews reports it resident, StopBE evicts it, and
// TakeEvicted hands it back exactly once.
func TestAdmitAndEvict(t *testing.T) {
	e := newExternalEngine(t, true)
	p := e.pods[0]

	if e.AdmitBE("no-such-pod", bejobs.Wordcount, "be-x") {
		t.Fatal("admitted onto unknown pod")
	}
	if !e.AdmitBE(p.comp.Name, bejobs.Wordcount, "be-1") {
		t.Fatal("admission onto an empty machine should succeed")
	}
	views := e.MachineViews(nil)
	if len(views) != len(e.pods) {
		t.Fatalf("views = %d, want %d", len(views), len(e.pods))
	}
	if views[0].Pod != p.comp.Name || views[0].Resident != 1 {
		t.Fatalf("view = %+v, want resident 1 on %s", views[0], p.comp.Name)
	}
	if views[0].Accepting {
		t.Fatal("machine should not accept before an AllowBEGrowth decision")
	}
	p.lastAction = controller.AllowBEGrowth
	if v := e.MachineViews(nil)[0]; !v.Accepting {
		t.Fatalf("machine should accept after AllowBEGrowth: %+v", v)
	}

	e.apply(p, controller.StopBE, 0, 0.3, -0.1)
	ev := e.TakeEvicted()
	if len(ev) != 1 || ev[0].ID != "be-1" || ev[0].Type != bejobs.Wordcount || ev[0].Crashed {
		t.Fatalf("evicted = %+v, want the killed be-1", ev)
	}
	if got := e.TakeEvicted(); len(got) != 0 {
		t.Fatalf("TakeEvicted should drain: %v", got)
	}
}

// TestAdmitBERespectsCapAndMode: admission refuses in non-external mode
// and at the per-machine instance cap.
func TestAdmitBERespectsCapAndMode(t *testing.T) {
	if e := newExternalEngine(t, false); e.AdmitBE(e.pods[0].comp.Name, bejobs.Wordcount, "be-1") {
		t.Fatal("non-ExternalBE engine accepted an external admission")
	}
	e := newExternalEngine(t, true)
	p := e.pods[0]
	admitted := 0
	for i := 0; i < e.cfg.MaxBEPerMachine+5; i++ {
		if e.AdmitBE(p.comp.Name, bejobs.Iperf, sprintID(i)) {
			admitted++
		}
	}
	if admitted > e.cfg.MaxBEPerMachine {
		t.Fatalf("admitted %d instances past the cap %d", admitted, e.cfg.MaxBEPerMachine)
	}
	if len(p.instances) != admitted {
		t.Fatalf("instances = %d, want %d", len(p.instances), admitted)
	}
}

func sprintID(i int) string { return "be-" + string(rune('a'+i)) }
