package engine

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/controller"
	"rhythm/internal/faults"
	"rhythm/internal/loadgen"
	"rhythm/internal/obs"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

// pairedOutcome is everything observable about one run that the SoA
// rewrite must not perturb: the aggregated statistics, the tail-tracker
// window contents (probed at several quantiles plus the live count), and
// the full observability event stream.
type pairedOutcome struct {
	stats     *RunStats
	tailN     int
	quantiles []float64
	events    []obs.Event
}

// runOnce executes cfg for dur with the given tick implementation
// (refTick true = the pre-SoA scalar oracle) under a fresh memory-sink
// bus and captures the outcome.
func runOnce(t *testing.T, cfg Config, dur time.Duration, ref bool) pairedOutcome {
	t.Helper()
	sink := &obs.MemorySink{}
	obs.Install(obs.NewBus(sink))
	defer obs.Uninstall()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.refTick = ref
	st, err := e.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	out := pairedOutcome{stats: st, tailN: e.tail.N(), events: sink.Events()}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		out.quantiles = append(out.quantiles, e.tail.Quantile(q))
	}
	return out
}

// assertPairedEqual runs cfg through both tick implementations and
// requires bitwise-identical outcomes.
func assertPairedEqual(t *testing.T, cfg Config, dur time.Duration) {
	t.Helper()
	soa := runOnce(t, cfg, dur, false)
	ref := runOnce(t, cfg, dur, true)
	if !reflect.DeepEqual(soa.stats, ref.stats) {
		t.Errorf("RunStats diverged:\nsoa: worstP99=%v meanP99=%v viol=%d kills=%d\nref: worstP99=%v meanP99=%v viol=%d kills=%d",
			soa.stats.WorstP99, soa.stats.MeanP99, soa.stats.Violations, soa.stats.TotalKills(),
			ref.stats.WorstP99, ref.stats.MeanP99, ref.stats.Violations, ref.stats.TotalKills())
	}
	if soa.tailN != ref.tailN {
		t.Errorf("tail window N = %d soa, %d ref", soa.tailN, ref.tailN)
	}
	if !reflect.DeepEqual(soa.quantiles, ref.quantiles) {
		t.Errorf("tail quantiles diverged:\nsoa: %v\nref: %v", soa.quantiles, ref.quantiles)
	}
	if len(soa.events) != len(ref.events) {
		t.Errorf("obs event count = %d soa, %d ref", len(soa.events), len(ref.events))
		return
	}
	for i := range soa.events {
		if !eventsBitEqual(soa.events[i], ref.events[i]) {
			t.Errorf("obs event %d diverged:\nsoa: %+v\nref: %+v", i, soa.events[i], ref.events[i])
			break
		}
	}
}

// eventsBitEqual compares two obs events with float fields compared by
// bit pattern: measurement-dropout decisions legitimately carry NaN slack
// and p99, which reflect.DeepEqual would call unequal even when both
// streams hold the identical bits.
func eventsBitEqual(a, b obs.Event) bool {
	return a.Seq == b.Seq && a.Kind == b.Kind && a.At == b.At && a.Dur == b.Dur &&
		a.Scope == b.Scope && a.Pod == b.Pod && a.Op == b.Op && a.ID == b.ID &&
		a.Reason == b.Reason && a.N == b.N && a.M == b.M &&
		math.Float64bits(a.Load) == math.Float64bits(b.Load) &&
		math.Float64bits(a.Slack) == math.Float64bits(b.Slack) &&
		math.Float64bits(a.P99) == math.Float64bits(b.P99) &&
		math.Float64bits(a.QPS) == math.Float64bits(b.QPS)
}

// TestTickSoAMatchesScalar is the tentpole's differential gate: the
// chunked SoA pass sequence must be bitwise-equal to the retained scalar
// tick across randomized configurations — services, policies, load
// patterns, warmups, sample counts, self-admission vs external mode — and
// across every fault preset, whose crash/storm/slowdown/drift/dropout
// hooks exercise the sparse-edit path between passes.
func TestTickSoAMatchesScalar(t *testing.T) {
	rng := sim.NewRNG(2020).Fork("soa-differential")
	services := []func() *workload.Service{workload.Redis, workload.ECommerce}
	beMixes := [][]bejobs.Type{
		{bejobs.CPUStress},
		{bejobs.Wordcount, bejobs.StreamDRAM},
		{bejobs.CPUStress, bejobs.Wordcount, bejobs.ImageClassify},
	}
	for trial := 0; trial < 6; trial++ {
		cfg := Config{
			Service: services[rng.Intn(len(services))](),
			SLA:     0.25,
			Policy:  controller.NewHeracles(),
			BETypes: beMixes[rng.Intn(len(beMixes))],
			Seed:    rng.Uint64(),
		}
		if rng.Float64() < 0.5 {
			cfg.Pattern = loadgen.Constant(0.2 + 0.6*rng.Float64())
		} else {
			p, err := loadgen.NewDiurnal(10*time.Second, 0.3, 0.8, 0.05, rng.Uint64())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pattern = p
		}
		if rng.Float64() < 0.5 {
			cfg.Warmup = time.Duration(1+rng.Intn(5)) * time.Second
		}
		if rng.Float64() < 0.3 {
			cfg.CollectSamples = true
		}
		t.Run(fmt.Sprintf("random-%d-%s", trial, cfg.Service.Name), func(t *testing.T) {
			assertPairedEqual(t, cfg, 15*time.Second)
		})
	}

	// Fault presets on the Rhythm policy over the full E-commerce graph:
	// the sparse fault edits (crash kills marking rows dirty, storm and
	// cap scratch, drift skews, dropout-degraded control) must leave both
	// implementations in identical states.
	for _, preset := range []string{"surges", "storm", "chaos"} {
		t.Run("preset-"+preset, func(t *testing.T) {
			sched, err := faults.Preset(preset, 2020, 40*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			assertPairedEqual(t, faultCfg(t, sched), 40*time.Second)
		})
	}
	t.Run("explicit-fault-mix", func(t *testing.T) {
		sched := &faults.Schedule{Events: []faults.Event{
			{Kind: faults.LoadSurge, At: 6 * time.Second, Duration: 8 * time.Second, Magnitude: 1.6},
			{Kind: faults.InterferenceStorm, Pod: "MySQL", At: 8 * time.Second, Duration: 10 * time.Second, Magnitude: 2.0},
			{Kind: faults.MachineSlowdown, Pod: "Web", At: 10 * time.Second, Duration: 10 * time.Second, FreqGHz: 1.4},
			{Kind: faults.BECrash, Pod: "Memcache", At: 12 * time.Second, RestartDelay: 6 * time.Second},
			{Kind: faults.ProfileDrift, Pod: "Amoeba", At: 5 * time.Second, Duration: 20 * time.Second, MuSkew: 1.3, SigmaSkew: 1.2},
		}}
		if err := sched.Validate(); err != nil {
			t.Fatal(err)
		}
		assertPairedEqual(t, faultCfg(t, sched), 35*time.Second)
	})
}

// TestRunUntilChunkingUnchanged re-verifies the chunked-run bitwise
// contract on the SoA core with faults active: a whole Run and unevenly
// sliced RunUntil sweeps must agree exactly, dirty rows and fault scratch
// included. TestRunUntilMatchesRun covers the fault-free path; this case
// makes sure per-epoch re-entry never skips or repeats a pass.
func TestRunUntilChunkingUnchanged(t *testing.T) {
	sched, err := faults.Preset("chaos", 7, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg(t, sched)
	whole := func() *RunStats {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Run(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	sliced := func() *RunStats {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately uneven slice boundaries, including ones that do
		// not align with the control period.
		for _, at := range []float64{1.5, 2, 6.3, 12, 12.1, 20, 29.9, 30} {
			e.RunUntil(sim.FromSeconds(at))
		}
		return e.stats
	}()
	sliced.Duration = whole.Duration // Run-only bookkeeping, set by the caller
	if !reflect.DeepEqual(whole, sliced) {
		t.Fatalf("sliced SoA run diverged from whole run:\nwhole:  %+v\nsliced: %+v", whole, sliced)
	}
}

// TestEvictionInvalidatesInstCache pins the instCache coherence contract:
// the BE-progress pass reads cached allocation pointers, so any eviction
// must mark the row dirty and the next tick must rebuild the cache from
// the post-eviction ledger.
func TestEvictionInvalidatesInstCache(t *testing.T) {
	e := newExternalEngine(t, true)
	p := e.pods[0]
	if !e.AdmitBE(p.comp.Name, bejobs.Wordcount, "be-1") {
		t.Fatal("admission onto an empty machine should succeed")
	}
	if !e.soa.beDirty[p.idx] {
		t.Fatal("AdmitBE did not mark the SoA row dirty")
	}
	now := sim.Time(0)
	step := func() {
		now = now.Add(e.cfg.TickDt)
		e.Step(now, 0.3)
	}
	step()
	if e.soa.beDirty[p.idx] {
		t.Fatal("tick did not clear the dirty flag")
	}
	if len(p.instCache) != 1 || p.instCache[0].in.ID != "be-1" {
		t.Fatalf("instCache = %+v, want the admitted be-1", p.instCache)
	}
	owner := cluster.Owner{Kind: cluster.OwnerBE, Name: "be-1"}
	if p.instCache[0].alloc != p.machine.Alloc(owner) {
		t.Fatal("cached alloc pointer does not match the live ledger entry")
	}

	// Evict via the control path; the cache must be rebuilt empty before
	// the next BE-progress pass reads it.
	e.apply(p, controller.StopBE, now, 0.3, -0.1)
	if !e.soa.beDirty[p.idx] {
		t.Fatal("eviction did not mark the SoA row dirty")
	}
	step()
	if len(p.instCache) != 0 {
		t.Fatalf("instCache not rebuilt after eviction: %+v", p.instCache)
	}
	if e.soa.beCores[p.idx] != 0 {
		t.Fatalf("beCores = %d after eviction, want 0", e.soa.beCores[p.idx])
	}
	if got := e.soa.beDemand[p.idx]; got != (cluster.Vector{}) {
		t.Fatalf("beDemand = %v after eviction, want zero", got)
	}
	if len(e.TakeEvicted()) != 1 {
		t.Fatal("eviction not surfaced to TakeEvicted")
	}
}
