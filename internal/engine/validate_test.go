package engine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rhythm/internal/faults"
	"rhythm/internal/loadgen"
	"rhythm/internal/workload"
)

// TestValidateEveryInvalidField is the satellite table test: each Config
// field that can be invalid produces a *FieldError naming exactly that
// field, and a clean config passes.
func TestValidateEveryInvalidField(t *testing.T) {
	valid := func() Config {
		return Config{
			Service: workload.ECommerce(),
			Pattern: loadgen.Constant(0.5),
		}
	}
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"nil service", func(c *Config) { c.Service = nil }, "Service"},
		{"invalid service", func(c *Config) { c.Service = &workload.Service{Name: "broken"} }, "Service"},
		{"nil pattern", func(c *Config) { c.Pattern = nil }, "Pattern"},
		{"negative SLA", func(c *Config) { c.SLA = -0.1 }, "SLA"},
		{"negative tick", func(c *Config) { c.TickDt = -time.Millisecond }, "TickDt"},
		{"negative control period", func(c *Config) { c.ControlPeriod = -time.Second }, "ControlPeriod"},
		{"negative samples", func(c *Config) { c.SamplesPerTick = -1 }, "SamplesPerTick"},
		{"negative BE cap", func(c *Config) { c.MaxBEPerMachine = -1 }, "MaxBEPerMachine"},
		{"negative warmup", func(c *Config) { c.Warmup = -time.Second }, "Warmup"},
		{"invalid fault schedule", func(c *Config) {
			c.Faults = &faults.Schedule{Events: []faults.Event{{Kind: "meteor-strike"}}}
		}, "Faults"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *FieldError: %v", err)
			}
			if !strings.Contains(err.Error(), "Config."+tc.field) {
				t.Fatalf("error %q does not name Config.%s", err, tc.field)
			}
			if _, nerr := New(cfg); nerr == nil {
				t.Fatal("New accepted the invalid config")
			}
		})
	}

	cfg := valid()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("clean config rejected: %v", err)
	}
	// The documented negative sentinels stay valid.
	cfg.SLAGuard = -1
	cfg.InertiaTau = -1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("negative sentinels rejected: %v", err)
	}
}

// TestValidateCollectsAllFailures pins that multiple bad fields report
// together, not first-error-wins.
func TestValidateCollectsAllFailures(t *testing.T) {
	cfg := Config{TickDt: -1, SamplesPerTick: -1}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("no error")
	}
	for _, field := range []string{"Service", "Pattern", "TickDt", "SamplesPerTick"} {
		if !strings.Contains(err.Error(), "Config."+field) {
			t.Fatalf("joined error %q missing Config.%s", err, field)
		}
	}
}
