// Package cliflags centralizes the flag definitions the rhythm binaries
// share — -seed, -jobs, -quick, -trace-out, -trace-format, -metrics-out,
// -faults, -scenario and -policy — so cmd/rhythm, cmd/rhythm-bench and
// cmd/rhythm-trace default and validate them through one path. Each
// binary registers only the groups it uses; the defaults and the error
// messages are identical everywhere, which the cross-binary tests pin.
package cliflags

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"time"

	"rhythm/internal/controller"
	"rhythm/internal/faults"
	"rhythm/internal/fleet"
	"rhythm/internal/workload"
)

// DefaultSeed is the seed every tool starts from: the paper's year.
const DefaultSeed uint64 = 2020

// Trace file formats accepted by -trace-format.
const (
	FormatJSONL  = "jsonl"
	FormatChrome = "chrome"
)

// Common is the -seed/-jobs/-quick trio.
type Common struct {
	Seed  uint64
	Jobs  int
	Quick bool

	jobsRegistered bool
}

// RegisterSeed binds -seed alone (tools without parallel sweeps).
func (c *Common) RegisterSeed(fs *flag.FlagSet) {
	fs.Uint64Var(&c.Seed, "seed", DefaultSeed, "RNG seed")
}

// RegisterJobs binds -jobs alone.
func (c *Common) RegisterJobs(fs *flag.FlagSet) {
	c.jobsRegistered = true
	fs.IntVar(&c.Jobs, "jobs", runtime.NumCPU(),
		"parallel worker count (>= 1; output is identical for any value)")
}

// RegisterQuick binds -quick alone.
func (c *Common) RegisterQuick(fs *flag.FlagSet) {
	fs.BoolVar(&c.Quick, "quick", true, "reduced experiment scale")
}

// Register binds all three common flags.
func (c *Common) Register(fs *flag.FlagSet) {
	c.RegisterSeed(fs)
	c.RegisterJobs(fs)
	c.RegisterQuick(fs)
}

// Validate rejects invalid common flag values. Jobs is only checked when
// RegisterJobs bound the flag: 0 and negatives used to fall silently
// through to the worker pool's NumCPU backstop; they are usage errors.
func (c *Common) Validate() error {
	if c.jobsRegistered && c.Jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1, got %d", c.Jobs)
	}
	return nil
}

// Trace is the observability flag trio.
type Trace struct {
	Out        string
	Format     string
	MetricsOut string
}

// Register binds -trace-out, -trace-format and -metrics-out.
func (t *Trace) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Out, "trace-out", "",
		"write the observability event stream to this file")
	fs.StringVar(&t.Format, "trace-format", FormatJSONL,
		"trace file format: jsonl or chrome (trace_event JSON)")
	fs.StringVar(&t.MetricsOut, "metrics-out", "",
		"write a Prometheus text-format metrics snapshot to this file")
}

// Validate rejects unknown trace formats.
func (t *Trace) Validate() error {
	if t.Format != FormatJSONL && t.Format != FormatChrome {
		return fmt.Errorf("-trace-format must be %s or %s, got %q",
			FormatJSONL, FormatChrome, t.Format)
	}
	return nil
}

// Faults is the -faults selector: empty (no injection), a canned preset
// name, or a path to a JSON schedule file.
type Faults struct {
	Arg string
}

// Register binds -faults.
func (f *Faults) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Arg, "faults", "",
		"fault schedule: a preset ("+strings.Join(faults.Presets(), ", ")+
			") or a JSON schedule file")
}

// Resolve materializes the selected schedule (nil when the flag is unset,
// leaving every run bit-frozen). Presets place their events over span
// (<= 0 uses the preset default) with timing derived from seed.
func (f *Faults) Resolve(seed uint64, span time.Duration) (*faults.Schedule, error) {
	if f.Arg == "" {
		return nil, nil
	}
	sched, err := faults.Resolve(f.Arg, seed, span)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	return sched, nil
}

// Fleet is the -fleet selector: empty (the default preset), or a named
// fleet-size preset for the fleet experiment.
type Fleet struct {
	Preset string
}

// Register binds -fleet.
func (f *Fleet) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Preset, "fleet", "",
		"fleet-size preset for the fleet experiment ("+
			strings.Join(fleet.Presets(), ", ")+"; default "+fleet.DefaultPreset+")")
}

// Validate rejects unknown presets (empty means the default and is
// valid).
func (f *Fleet) Validate() error {
	if f.Preset == "" {
		return nil
	}
	if _, err := fleet.PresetProfile(f.Preset); err != nil {
		return fmt.Errorf("-fleet: %w", err)
	}
	return nil
}

// Policy is the -policy selector: empty (the scenario spec's `policy`
// field, else rhythm), or a registered policy name from the controller
// registry.
type Policy struct {
	Name string
}

// Register binds -policy.
func (p *Policy) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Name, "policy", "",
		"candidate policy for the scenario experiment ("+
			strings.Join(controller.Names(), ", ")+"; default the spec's policy, else rhythm)")
}

// Validate rejects unregistered policy names (empty means the default and
// is valid). The message carries the full registered list, so a typo is
// a one-round-trip fix.
func (p *Policy) Validate() error {
	if p.Name == "" || controller.Registered(p.Name) {
		return nil
	}
	return fmt.Errorf("-policy: unknown policy %q (registered: %s)",
		p.Name, strings.Join(controller.Names(), ", "))
}

// Calibrate is the flag group of the calibrate subcommand: the observed
// artifact to read back (required), the optional auto-fit pass and the
// optional machine-readable report path.
type Calibrate struct {
	Observed string
	Fit      bool
	Report   string
}

// Register binds -observed, -fit and -report.
func (c *Calibrate) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Observed, "observed", "",
		"observed-metrics artifact: a -metrics-out Prometheus snapshot or a -trace-out JSONL trace")
	fs.BoolVar(&c.Fit, "fit", false,
		"bisection-fit workload distribution corrections (service-time mu/sigma, arrival rate) to the observed tail")
	fs.StringVar(&c.Report, "report", "",
		"also write the calibration scorecard as JSON to this file")
}

// Validate requires the observed artifact.
func (c *Calibrate) Validate() error {
	if c.Observed == "" {
		return fmt.Errorf("calibrate needs -observed <metrics.prom|trace.jsonl>")
	}
	return nil
}

// Scenario is the -scenario selector: empty (no scenario), or a path to
// a workload-spec file (SCENARIOS.md format, .json or .yaml/.yml).
type Scenario struct {
	Path string
}

// Register binds -scenario.
func (s *Scenario) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Path, "scenario", "",
		"workload-spec file (SCENARIOS.md format) for the scenario experiment")
}

// Resolve loads and validates the selected spec (nil when the flag is
// unset). A bad file is a usage error: the spec's joined FieldErrors
// name every defective field.
func (s *Scenario) Resolve() (*workload.Spec, error) {
	if s.Path == "" {
		return nil, nil
	}
	spec, err := workload.LoadSpec(s.Path)
	if err != nil {
		return nil, fmt.Errorf("-scenario: %w", err)
	}
	return spec, nil
}
