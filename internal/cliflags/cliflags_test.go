package cliflags

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// TestDefaults pins the shared defaults every binary inherits: seed 2020,
// jobs NumCPU, quick on, jsonl traces, no fault injection.
func TestDefaults(t *testing.T) {
	fs := newFS()
	var c Common
	var tr Trace
	var f Faults
	c.Register(fs)
	tr.Register(fs)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 2020 || c.Jobs != runtime.NumCPU() || !c.Quick {
		t.Fatalf("common defaults: %+v", c)
	}
	if tr.Format != FormatJSONL || tr.Out != "" || tr.MetricsOut != "" {
		t.Fatalf("trace defaults: %+v", tr)
	}
	if f.Arg != "" {
		t.Fatalf("faults default: %+v", f)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	sched, err := f.Resolve(2020, 0)
	if err != nil || sched != nil {
		t.Fatalf("unset -faults resolved to %v, %v", sched, err)
	}
}

// TestValidation pins the shared error messages: every binary that
// registers a group reports invalid values identically.
func TestValidation(t *testing.T) {
	var c Common
	c.RegisterJobs(newFS())
	c.Jobs = -3
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "-jobs must be at least 1, got -3") {
		t.Fatalf("jobs error: %v", err)
	}
	// A tool that never registers -jobs (rhythm-trace) leaves Jobs at 0
	// without that being a usage error.
	var noJobs Common
	if err := noJobs.Validate(); err != nil {
		t.Fatal(err)
	}

	tr := Trace{Format: "xml"}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "-trace-format must be jsonl or chrome") {
		t.Fatalf("format error: %v", err)
	}
}

// TestFaultsResolve pins that -faults accepts presets and files through
// the same resolution path as the library, deterministically.
func TestFaultsResolve(t *testing.T) {
	f := Faults{Arg: "chaos"}
	a, err := f.Resolve(7, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Resolve(7, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 || len(a.Events) != len(b.Events) {
		t.Fatalf("preset not deterministic: %d vs %d events", len(a.Events), len(b.Events))
	}

	f.Arg = "no-such-preset"
	if _, err := f.Resolve(7, 0); err == nil || !strings.Contains(err.Error(), "-faults:") {
		t.Fatalf("bad preset error: %v", err)
	}

	path := filepath.Join(t.TempDir(), "sched.json")
	body := `{"name":"custom","events":[{"kind":"load-surge","at_s":1,"dur_s":2,"magnitude":1.5}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	f.Arg = path
	sched, err := f.Resolve(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 1 || sched.Name != "custom" {
		t.Fatalf("file schedule: %+v", sched)
	}
}

// TestScenarioResolve pins the -scenario group: unset resolves to nil,
// a valid file loads, and a bad file is a "-scenario:"-prefixed usage
// error carrying the spec's field diagnostics.
func TestScenarioResolve(t *testing.T) {
	var s Scenario
	s.Register(newFS())
	spec, err := s.Resolve()
	if err != nil || spec != nil {
		t.Fatalf("unset -scenario resolved to %v, %v", spec, err)
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	body := `{"version": 1, "name": "cli-test",
	  "service": {"catalog": "Redis"},
	  "run": {"baseline_load": 0.5, "duration_s": 20},
	  "clients": [{"class": "all", "rate_fraction": 1, "arrival": {"process": "constant"}}]}`
	if err := os.WriteFile(good, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Path = good
	spec, err = s.Resolve()
	if err != nil || spec == nil || spec.Name != "cli-test" {
		t.Fatalf("good spec resolved to %v, %v", spec, err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Path = bad
	if _, err := s.Resolve(); err == nil ||
		!strings.Contains(err.Error(), "-scenario:") ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("bad spec error: %v", err)
	}
}
