package loadgen

import (
	"math"
	"sync"
	"testing"
	"time"

	"rhythm/internal/sim"
)

func sample(p Pattern, step time.Duration, span time.Duration) []float64 {
	var out []float64
	for t := time.Duration(0); t < span; t += step {
		out = append(out, p.Load(sim.Time(t)))
	}
	return out
}

func TestPoissonBinsDeterministicAndNonNegative(t *testing.T) {
	p1, err := NewPoissonBins(time.Second, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPoissonBins(time.Second, 50, 7)
	p3, _ := NewPoissonBins(time.Second, 50, 8)
	a := sample(p1, 250*time.Millisecond, time.Minute)
	b := sample(p2, 250*time.Millisecond, time.Minute)
	c := sample(p3, 250*time.Millisecond, time.Minute)
	differ := false
	sum := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at sample %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] < 0 || math.IsNaN(a[i]) {
			t.Fatalf("sample %d = %g", i, a[i])
		}
		if a[i] != c[i] {
			differ = true
		}
		sum += a[i]
	}
	if !differ {
		t.Fatal("different seeds produced identical draws")
	}
	// The normalized intensity hovers around 1.
	if mean := sum / float64(len(a)); mean < 0.7 || mean > 1.3 {
		t.Fatalf("mean intensity %g, want ~1", mean)
	}
}

func TestPoissonBinsQueriesAreOrderIndependent(t *testing.T) {
	// Each bin draws from its own counter-keyed substream, so reading
	// t=50s before t=1s yields the same values as reading in order —
	// the property that makes -jobs counts interchangeable.
	p, err := NewPoissonBins(time.Second, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	forward := sample(p, time.Second, time.Minute)
	for i := len(forward) - 1; i >= 0; i-- {
		if got := p.Load(sim.Time(time.Duration(i) * time.Second)); got != forward[i] {
			t.Fatalf("reverse read at bin %d = %g, want %g", i, got, forward[i])
		}
	}
}

func TestPoissonBinsConcurrentReaders(t *testing.T) {
	p, err := NewPoissonBins(500*time.Millisecond, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := sample(p, 100*time.Millisecond, 30*time.Second)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, w := range want {
				if got := p.Load(sim.Time(time.Duration(i) * 100 * time.Millisecond)); got != w {
					errs <- "concurrent read diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

func TestPoissonBinsValidation(t *testing.T) {
	if _, err := NewPoissonBins(0, 10, 1); err == nil {
		t.Fatal("zero bin accepted")
	}
	if _, err := NewPoissonBins(time.Second, 0, 1); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, err := NewPoissonBins(time.Second, math.Inf(1), 1); err == nil {
		t.Fatal("infinite mean accepted")
	}
}

func TestMMPP2TwoLevelsAndDeterminism(t *testing.T) {
	const horizon = 2 * time.Minute
	p1, err := NewMMPP2(0.2, 2.5, 20*time.Second, 5*time.Second, horizon, 9)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewMMPP2(0.2, 2.5, 20*time.Second, 5*time.Second, horizon, 9)
	sawQuiet, sawBurst := false, false
	for t0 := time.Duration(0); t0 < horizon; t0 += 100 * time.Millisecond {
		v := p1.Load(sim.Time(t0))
		if v != p2.Load(sim.Time(t0)) {
			t.Fatalf("same seed diverges at %v", t0)
		}
		switch v {
		case 0.2:
			sawQuiet = true
		case 2.5:
			sawBurst = true
		default:
			t.Fatalf("Load(%v) = %g, want 0.2 or 2.5", t0, v)
		}
	}
	if !sawQuiet || !sawBurst {
		t.Fatalf("expected both states over %v (quiet %v, burst %v)", horizon, sawQuiet, sawBurst)
	}
	// Beyond the horizon the process wraps rather than dying.
	if v := p1.Load(sim.Time(horizon + 30*time.Second)); v != 0.2 && v != 2.5 {
		t.Fatalf("wrapped Load = %g", v)
	}
}

func TestMMPP2Validation(t *testing.T) {
	h := time.Minute
	if _, err := NewMMPP2(-1, 2, time.Second, time.Second, h, 1); err == nil {
		t.Fatal("negative quiet accepted")
	}
	if _, err := NewMMPP2(2, 1, time.Second, time.Second, h, 1); err == nil {
		t.Fatal("burst <= quiet accepted")
	}
	if _, err := NewMMPP2(0, 2, 0, time.Second, h, 1); err == nil {
		t.Fatal("zero quiet holding time accepted")
	}
	if _, err := NewMMPP2(0, 2, time.Second, time.Second, 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestMultiDiurnalBoundsAndDeterminism(t *testing.T) {
	comps := []PeriodComponent{
		{Period: 2 * time.Minute, Weight: 1},
		{Period: 30 * time.Second, Weight: 0.4, Phase: 0.5},
	}
	p1, err := NewMultiDiurnal(comps, 0.3, 1.5, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewMultiDiurnal(comps, 0.3, 1.5, 0.2, 5)
	lo, hi := math.Inf(1), math.Inf(-1)
	for t0 := time.Duration(0); t0 < 4*time.Minute; t0 += 100 * time.Millisecond {
		v := p1.Load(sim.Time(t0))
		if v != p2.Load(sim.Time(t0)) {
			t.Fatalf("same seed diverges at %v", t0)
		}
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("Load(%v) = %g", t0, v)
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	// The wave plus bounded noise must roughly span [min, max].
	if lo > 0.7 || hi < 1.0 {
		t.Fatalf("range [%g, %g] does not look like a wave over [0.3, 1.5]", lo, hi)
	}
	if hi > 1.5+0.2*(1.5-0.3)+1e-9 {
		t.Fatalf("peak %g exceeds max plus noise bound", hi)
	}
}

func TestMultiDiurnalValidation(t *testing.T) {
	one := []PeriodComponent{{Period: time.Minute, Weight: 1}}
	if _, err := NewMultiDiurnal(nil, 0, 1, 0, 1); err == nil {
		t.Fatal("empty components accepted")
	}
	if _, err := NewMultiDiurnal(one, 1, 1, 0, 1); err == nil {
		t.Fatal("min == max accepted")
	}
	if _, err := NewMultiDiurnal([]PeriodComponent{{Period: 0, Weight: 1}}, 0, 1, 0, 1); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewMultiDiurnal([]PeriodComponent{{Period: time.Minute, Weight: -1}}, 0, 1, 0, 1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMultiDiurnal([]PeriodComponent{{Period: time.Minute, Weight: 1, Phase: 1}}, 0, 1, 0, 1); err == nil {
		t.Fatal("phase 1 accepted")
	}
}

func TestMixWeightedSum(t *testing.T) {
	mix := Mix{
		{Weight: 0.4, Pattern: Constant(1)},
		{Weight: 0.2, Pattern: Constant(2)},
	}
	if got := mix.Load(0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Mix.Load = %g, want 0.8", got)
	}
	// Negative contributions clamp at zero rather than going negative.
	empty := Mix{}
	if got := empty.Load(0); got != 0 {
		t.Fatalf("empty Mix.Load = %g", got)
	}
}
