// Arrival processes for the workload-spec scenario layer (SCENARIOS.md):
// stochastic *intensity* patterns that modulate a client class's offered
// load around a mean of one. A scenario composes them with Mix — each
// class's intensity scaled by its rate share — to form the Pattern an
// engine run consumes.
//
// # Determinism
//
// Every process here draws randomness only at construction time (MMPP2,
// MultiDiurnal precompute their trajectories from the seed they are
// handed) or from counter-keyed substreams recomputed per query
// (PoissonBins derives one substream per time bin via sim.SubSeed, so the
// same bin always yields the same count no matter when, how often, or
// from how many goroutines it is asked). Load never mutates state, which
// makes every pattern in this package safe for concurrent readers and —
// more importantly — byte-identical across -jobs counts and repeat runs
// at a fixed seed. By convention the seed is forked from the scenario
// seed as sim.SubSeed(seed, "scenario/<name>/client/<class>") so adding
// or reordering client classes never perturbs another class's stream.

package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"rhythm/internal/sim"
)

// poisson draws a Poisson variate with the given mean from r: Knuth's
// product method for small means, the clamped normal approximation for
// large ones (the regime where per-bin counts are in the thousands and
// the relative error of the approximation is far below the simulation's
// own model error).
func poisson(r *sim.RNG, mean float64) float64 {
	if !(mean > 0) {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return float64(k)
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*r.NormFloat64()
	if v < 0 {
		v = 0
	}
	return math.Round(v)
}

// Poisson draws a Poisson variate with the given mean from r. It is the
// sampler behind PoissonBins, exported for callers that need raw arrival
// counts rather than a normalized intensity (the fleet layer's per-epoch
// BE job arrivals). Determinism follows from r alone: hand it a
// counter-keyed substream (sim.SubSeed) and the same bin always yields
// the same count.
func Poisson(r *sim.RNG, mean float64) float64 { return poisson(r, mean) }

// PoissonBins is the memoryless arrival process: independent Poisson
// counts per fixed time bin, normalized by the expected count so the
// intensity has mean 1. MeanPerBin is the expected number of arrivals in
// one bin (the class request rate times the bin width); smaller values
// give noisier intensity (relative std = 1/sqrt(MeanPerBin)), exactly as
// a low-rate client class should look.
type PoissonBins struct {
	bin  time.Duration
	mean float64
	seed uint64
}

// NewPoissonBins returns a Poisson arrival intensity with the given bin
// width and expected arrivals per bin, seeded by seed.
func NewPoissonBins(bin time.Duration, meanPerBin float64, seed uint64) (*PoissonBins, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("loadgen: poisson bin must be positive, got %v", bin)
	}
	if !(meanPerBin > 0) || math.IsInf(meanPerBin, 0) {
		return nil, fmt.Errorf("loadgen: poisson mean per bin must be positive and finite, got %g", meanPerBin)
	}
	return &PoissonBins{bin: bin, mean: meanPerBin, seed: seed}, nil
}

// Load returns the bin's normalized intensity (count / expected count).
// Each bin owns a counter-keyed RNG substream, so the value is a pure
// function of (seed, bin index): stateless, order-independent and safe
// for concurrent readers.
func (p *PoissonBins) Load(t sim.Time) float64 {
	idx := int64(time.Duration(t) / p.bin)
	if idx < 0 {
		idx = 0
	}
	r := sim.NewRNG(sim.SubSeed(p.seed, "poisson-bin/"+strconv.FormatInt(idx, 10)))
	return poisson(r, p.mean) / p.mean
}

// MMPP2 is a two-state Markov-modulated Poisson process, the standard
// bursty-arrival model: the intensity alternates between a quiet level
// and a burst level, with exponentially distributed holding times in each
// state. The state trajectory is precomputed over a horizon at
// construction and repeats periodically past it, so long runs keep
// bursting instead of freezing in the final state.
type MMPP2 struct {
	quiet, burst float64
	switches     []sim.Time // state-flip times; even index count = quiet
	horizon      sim.Time
}

// NewMMPP2 builds the bursty process: intensity quiet (in state 0) or
// burst (in state 1), mean holding times meanQuiet/meanBurst, trajectory
// drawn once from seed over horizon.
func NewMMPP2(quiet, burst float64, meanQuiet, meanBurst, horizon time.Duration, seed uint64) (*MMPP2, error) {
	if !(quiet >= 0) || !(burst > 0) {
		return nil, fmt.Errorf("loadgen: mmpp levels must be quiet >= 0 and burst > 0, got %g, %g", quiet, burst)
	}
	if burst <= quiet {
		return nil, fmt.Errorf("loadgen: mmpp burst level %g must exceed quiet level %g", burst, quiet)
	}
	if meanQuiet <= 0 || meanBurst <= 0 {
		return nil, fmt.Errorf("loadgen: mmpp mean holding times must be positive, got %v, %v", meanQuiet, meanBurst)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("loadgen: mmpp horizon must be positive, got %v", horizon)
	}
	m := &MMPP2{quiet: quiet, burst: burst, horizon: sim.Time(0).Add(horizon)}
	r := sim.NewRNG(seed)
	at := sim.Time(0)
	inBurst := false
	for at < m.horizon {
		mean := meanQuiet
		if inBurst {
			mean = meanBurst
		}
		at = at.Add(time.Duration(r.ExpFloat64() * float64(mean)))
		if at >= m.horizon {
			break
		}
		m.switches = append(m.switches, at)
		inBurst = !inBurst
	}
	return m, nil
}

// Load returns the state's intensity level at time t (the trajectory
// wraps modulo the horizon). Read-only after construction; safe for
// concurrent readers.
func (m *MMPP2) Load(t sim.Time) float64 {
	if t < 0 {
		t = 0
	}
	if m.horizon > 0 && t >= m.horizon {
		t = sim.Time(math.Mod(float64(t), float64(m.horizon)))
	}
	// Flips before t: even count means the quiet state.
	n := sort.Search(len(m.switches), func(i int) bool { return m.switches[i] > t })
	if n%2 == 0 {
		return m.quiet
	}
	return m.burst
}

// PeriodComponent is one cosine wave of a MultiDiurnal pattern.
type PeriodComponent struct {
	// Period is the wave's cycle length (a day, a week, ...).
	Period time.Duration
	// Weight is the wave's relative contribution to the combined shape
	// (weights are normalized; zero or negative is rejected).
	Weight float64
	// Phase shifts the wave as a fraction of Period in [0, 1): phase 0
	// puts the trough at t=0, matching Diurnal.
	Phase float64
}

// MultiDiurnal generalizes Diurnal to a weighted sum of periodic waves —
// e.g. a daily cycle plus a weekly one plus a lunch-hour ripple — with
// the same deterministic AR(1) burst noise. Intensity swings between Min
// and Max; scenario client classes center it near 1 (say Min 0.5, Max
// 1.5) so the class mean stays at its configured rate share.
type MultiDiurnal struct {
	Components []PeriodComponent
	Min, Max   float64
	Burst      float64
	weightSum  float64
	noisePer   time.Duration // noise index period: the longest component
	noise      []float64
}

// NewMultiDiurnal returns a multi-period pattern with deterministic burst
// noise drawn from seed. At least one component is required.
func NewMultiDiurnal(comps []PeriodComponent, min, max, burst float64, seed uint64) (*MultiDiurnal, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("loadgen: multi-diurnal needs at least one period component")
	}
	if min < 0 || max <= min {
		return nil, fmt.Errorf("loadgen: need 0 <= min < max, got [%v, %v]", min, max)
	}
	d := &MultiDiurnal{Components: append([]PeriodComponent(nil), comps...), Min: min, Max: max, Burst: burst}
	for _, c := range d.Components {
		if c.Period <= 0 {
			return nil, fmt.Errorf("loadgen: multi-diurnal period must be positive, got %v", c.Period)
		}
		if c.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: multi-diurnal weight must be positive, got %g", c.Weight)
		}
		if c.Phase < 0 || c.Phase >= 1 {
			return nil, fmt.Errorf("loadgen: multi-diurnal phase must be in [0, 1), got %g", c.Phase)
		}
		d.weightSum += c.Weight
		if c.Period > d.noisePer {
			d.noisePer = c.Period
		}
	}
	r := sim.NewRNG(seed)
	d.noise = make([]float64, diurnalNoiseSteps)
	v := 0.0
	for i := range d.noise {
		v = 0.85*v + 0.3*(r.Float64()*2-1)
		d.noise[i] = sim.Clamp(v, -1, 1)
	}
	return d, nil
}

// Load returns the combined wave at time t. Read-only after construction;
// safe for concurrent readers.
func (d *MultiDiurnal) Load(t sim.Time) float64 {
	wave := 0.0
	for _, c := range d.Components {
		phase := math.Mod(t.Seconds()/c.Period.Seconds()+c.Phase, 1)
		wave += c.Weight * (0.5 - 0.5*math.Cos(2*math.Pi*phase))
	}
	wave /= d.weightSum
	base := d.Min + (d.Max-d.Min)*wave
	idx := int(math.Mod(t.Seconds()/d.noisePer.Seconds()*diurnalNoiseSteps, diurnalNoiseSteps))
	if idx < 0 {
		idx += diurnalNoiseSteps
	}
	load := base + d.Burst*(d.Max-d.Min)*d.noise[idx]
	if load < 0 {
		load = 0
	}
	return load
}

// Weighted pairs a pattern with its multiplicative weight in a Mix.
type Weighted struct {
	Weight  float64
	Pattern Pattern
}

// Mix sums weighted patterns: the scenario layer's composition of client
// classes, each term weight = baseline load x the class's rate fraction
// and each term pattern the class's arrival intensity. Mix holds no
// state, so it is as concurrency-safe as its terms (every pattern in
// this package is).
type Mix []Weighted

// Load returns the weighted sum of the term intensities at t, clamped at
// zero.
func (m Mix) Load(t sim.Time) float64 {
	s := 0.0
	for _, w := range m {
		s += w.Weight * w.Pattern.Load(t)
	}
	if s < 0 {
		s = 0
	}
	return s
}
