// Package loadgen produces the request-load patterns of the evaluation:
// constant fractions of the maximum load (Fig. 9-14), sweep profiles for
// offline profiling (§3.2), a diurnal production trace standing in for
// the ClarkNet web trace of §5.3 (same 24-hour periodicity and burst
// structure, scaled to the experiment window), and the arrival processes
// of the workload-spec scenario layer (PoissonBins, MMPP2, MultiDiurnal,
// composed per client class with Mix; see arrival.go and SCENARIOS.md).
//
// # Determinism and thread safety
//
// Every pattern draws randomness only at construction time or from
// counter-keyed sim.SubSeed substreams recomputed per query; Load never
// mutates state. All patterns are therefore safe for concurrent readers
// and byte-identical across -jobs counts and repeat runs at a fixed
// seed — the repo-wide determinism contract (DESIGN.md "Concurrency &
// determinism").
package loadgen

import (
	"fmt"
	"math"
	"time"

	"rhythm/internal/sim"
)

// Pattern yields the offered load as a fraction of the service's maximum
// allowable load at a given virtual time. Values may slightly exceed 1
// during bursts, as production traces do.
type Pattern interface {
	// Load returns the load fraction at time t.
	Load(t sim.Time) float64
}

// Constant is a fixed load fraction.
type Constant float64

// Load returns the constant fraction.
func (c Constant) Load(sim.Time) float64 { return float64(c) }

// Step holds each level of a profiling sweep for a fixed dwell time, then
// stays at the last level.
type Step struct {
	Levels []float64
	Dwell  time.Duration
}

// Load returns the sweep level active at time t.
func (s Step) Load(t sim.Time) float64 {
	if len(s.Levels) == 0 {
		return 0
	}
	if s.Dwell <= 0 {
		return s.Levels[len(s.Levels)-1]
	}
	i := int(time.Duration(t) / s.Dwell)
	if i >= len(s.Levels) {
		i = len(s.Levels) - 1
	}
	return s.Levels[i]
}

// Diurnal is the ClarkNet stand-in: a periodic day/night wave between Min
// and Max with deterministic burst noise. The paper scales five days of
// ClarkNet to six hours; tests scale further, so the period is a parameter.
type Diurnal struct {
	Period time.Duration // one "day"
	Min    float64       // overnight trough load fraction
	Max    float64       // midday peak load fraction
	Burst  float64       // burst amplitude as a fraction of (Max-Min)
	noise  []float64     // precomputed smooth noise, one value per noiseStep
}

const diurnalNoiseSteps = 512

// NewDiurnal returns a diurnal pattern with deterministic noise from seed.
func NewDiurnal(period time.Duration, min, max, burst float64, seed uint64) (*Diurnal, error) {
	if period <= 0 {
		return nil, fmt.Errorf("loadgen: period must be positive, got %v", period)
	}
	if min < 0 || max <= min {
		return nil, fmt.Errorf("loadgen: need 0 <= min < max, got [%v, %v]", min, max)
	}
	d := &Diurnal{Period: period, Min: min, Max: max, Burst: burst}
	r := sim.NewRNG(seed)
	d.noise = make([]float64, diurnalNoiseSteps)
	// Smooth bounded noise: an AR(1) walk pulled back to zero.
	v := 0.0
	for i := range d.noise {
		v = 0.85*v + 0.3*(r.Float64()*2-1)
		d.noise[i] = sim.Clamp(v, -1, 1)
	}
	return d, nil
}

// Load returns the diurnal load at time t.
func (d *Diurnal) Load(t sim.Time) float64 {
	phase := math.Mod(t.Seconds(), d.Period.Seconds()) / d.Period.Seconds()
	// Day shape: trough at phase 0, peak at phase 0.5.
	wave := 0.5 - 0.5*math.Cos(2*math.Pi*phase)
	base := d.Min + (d.Max-d.Min)*wave
	// Deterministic burst noise keyed by absolute time so that replays
	// at the same timestamps see the same bursts.
	idx := int(math.Mod(t.Seconds()/d.Period.Seconds()*diurnalNoiseSteps,
		diurnalNoiseSteps))
	if idx < 0 {
		idx += diurnalNoiseSteps
	}
	load := base + d.Burst*(d.Max-d.Min)*d.noise[idx]
	if load < 0 {
		load = 0
	}
	return load
}

// Replay plays back recorded load samples at fixed spacing, clamping to the
// final sample afterward.
type Replay struct {
	Samples []float64
	Spacing time.Duration
}

// Load returns the linearly interpolated sample at time t.
func (r Replay) Load(t sim.Time) float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	if r.Spacing <= 0 {
		return r.Samples[len(r.Samples)-1]
	}
	pos := t.Seconds() / r.Spacing.Seconds()
	i := int(pos)
	if i >= len(r.Samples)-1 {
		return r.Samples[len(r.Samples)-1]
	}
	if i < 0 {
		return r.Samples[0]
	}
	frac := pos - float64(i)
	return r.Samples[i]*(1-frac) + r.Samples[i+1]*frac
}

// SweepLevels returns the profiling sweep used throughout the paper's
// figures: from 5% to 85% of max load in 20-point steps (Fig. 9-14 use
// 5/25/45/65/85; Fig. 6 uses a finer 1..85 sweep).
func SweepLevels() []float64 { return []float64{0.05, 0.25, 0.45, 0.65, 0.85} }

// FineSweepLevels returns the fine-grained profiling sweep of Fig. 6/8
// (1% to 97% in 4-point steps), dense enough to locate the CoV knee that
// defines loadlimit.
func FineSweepLevels() []float64 {
	var out []float64
	for f := 0.01; f <= 0.97; f += 0.04 {
		out = append(out, math.Round(f*100)/100)
	}
	return out
}
