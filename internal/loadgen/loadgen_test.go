package loadgen

import (
	"math"
	"testing"
	"time"

	"rhythm/internal/sim"
)

func TestConstant(t *testing.T) {
	p := Constant(0.65)
	for _, s := range []float64{0, 100, 1e6} {
		if got := p.Load(sim.FromSeconds(s)); got != 0.65 {
			t.Fatalf("constant load at %vs = %v", s, got)
		}
	}
}

func TestStepSweep(t *testing.T) {
	p := Step{Levels: []float64{0.1, 0.5, 0.9}, Dwell: 10 * time.Second}
	cases := map[float64]float64{0: 0.1, 9.9: 0.1, 10: 0.5, 25: 0.9, 1000: 0.9}
	for at, want := range cases {
		if got := p.Load(sim.FromSeconds(at)); got != want {
			t.Fatalf("step load at %vs = %v, want %v", at, got, want)
		}
	}
}

func TestStepDegenerate(t *testing.T) {
	if (Step{}).Load(0) != 0 {
		t.Fatal("empty sweep should be 0")
	}
	p := Step{Levels: []float64{0.3, 0.7}} // no dwell
	if p.Load(0) != 0.7 {
		t.Fatal("zero dwell should pin to last level")
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	d, err := NewDiurnal(24*time.Hour, 0.2, 0.9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Without bursts the wave is exactly periodic.
	for _, s := range []float64{0, 3600, 40000} {
		a := d.Load(sim.FromSeconds(s))
		b := d.Load(sim.FromSeconds(s + 24*3600))
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("not periodic at %vs: %v vs %v", s, a, b)
		}
	}
	// Trough at phase 0, peak at half period.
	if got := d.Load(0); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("trough = %v, want 0.2", got)
	}
	if got := d.Load(sim.FromSeconds(12 * 3600)); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("peak = %v, want 0.9", got)
	}
}

func TestDiurnalBoundsWithBursts(t *testing.T) {
	d, err := NewDiurnal(time.Hour, 0.1, 0.8, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0.0; s < 7200; s += 7 {
		l := d.Load(sim.FromSeconds(s))
		if l < 0 || l > 0.8+0.3*0.7+1e-9 {
			t.Fatalf("burst load out of bounds at %vs: %v", s, l)
		}
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	a, _ := NewDiurnal(time.Hour, 0.1, 0.9, 0.2, 42)
	b, _ := NewDiurnal(time.Hour, 0.1, 0.9, 0.2, 42)
	for s := 0.0; s < 3600; s += 13 {
		if a.Load(sim.FromSeconds(s)) != b.Load(sim.FromSeconds(s)) {
			t.Fatal("same seed should replay identically")
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := NewDiurnal(0, 0.1, 0.9, 0, 1); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewDiurnal(time.Hour, 0.9, 0.1, 0, 1); err == nil {
		t.Fatal("min >= max accepted")
	}
	if _, err := NewDiurnal(time.Hour, -0.1, 0.9, 0, 1); err == nil {
		t.Fatal("negative min accepted")
	}
}

func TestReplayInterpolation(t *testing.T) {
	r := Replay{Samples: []float64{0, 1, 0.5}, Spacing: 10 * time.Second}
	cases := map[float64]float64{0: 0, 5: 0.5, 10: 1, 15: 0.75, 20: 0.5, 100: 0.5}
	for at, want := range cases {
		if got := r.Load(sim.FromSeconds(at)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("replay at %vs = %v, want %v", at, got, want)
		}
	}
}

func TestReplayDegenerate(t *testing.T) {
	if (Replay{}).Load(0) != 0 {
		t.Fatal("empty replay should be 0")
	}
	r := Replay{Samples: []float64{0.4}}
	if r.Load(sim.FromSeconds(99)) != 0.4 {
		t.Fatal("single sample replay should hold its value")
	}
}

func TestSweepLevels(t *testing.T) {
	l := SweepLevels()
	if len(l) != 5 || l[0] != 0.05 || l[4] != 0.85 {
		t.Fatalf("evaluation sweep = %v", l)
	}
	f := FineSweepLevels()
	if len(f) < 20 {
		t.Fatalf("fine sweep too coarse: %d points", len(f))
	}
	for i := 1; i < len(f); i++ {
		if f[i] <= f[i-1] {
			t.Fatal("fine sweep not increasing")
		}
	}
	if f[0] != 0.01 {
		t.Fatalf("fine sweep starts at %v", f[0])
	}
}
