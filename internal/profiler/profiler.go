// Package profiler implements Rhythm's offline profiling phase (§3.2,
// §3.5.1): the solo-run load sweep that feeds the contribution analyzer,
// the SLA derivation (worst per-window p99 at max load), the Fig. 8
// loadlimit rule, and the Algorithm 1 slacklimit search.
//
// Profiling is "once per LC service": its cost is linear in the number of
// Servpods (M), not in LC x BE combinations (M x N), which is the paper's
// scalability argument against profiling-based co-location.
//
// # Thread safety
//
// All entry points (Run, CachedRun, DeriveSLA, FindSlacklimits,
// CachedSlacklimits, Thresholds) are safe to call from multiple
// goroutines, provided each call receives its own *workload.Service value
// (workload.ByName constructs a fresh one per call) or the callers share a
// Service they all treat as read-only. Internally, load levels and
// Algorithm 1 trial runs fan out across Options.Jobs / SlackOptions.Jobs
// workers; every worker runs an isolated engine seeded from a per-level or
// per-trial substream, so results are bit-identical for every worker
// count. A returned *Profile is immutable by contract: CachedRun hands the
// same pointer to every caller with a matching key, and no consumer may
// mutate it (see DESIGN.md "Concurrency & determinism").
package profiler

import (
	"fmt"
	"sort"
	"time"

	"rhythm/internal/analyzer"
	"rhythm/internal/bejobs"
	"rhythm/internal/controller"
	"rhythm/internal/engine"
	"rhythm/internal/loadgen"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/trace"
	"rhythm/internal/workload"
)

// Options configures the profiling sweep.
type Options struct {
	// Levels are the swept load fractions (default: the fine sweep of
	// Fig. 6/8).
	Levels []float64
	// LevelDuration is the solo-run dwell per level (default 15 s of
	// virtual time; the paper profiles longer on real hardware, but the
	// simulated sampler converges much faster).
	LevelDuration time.Duration
	// Seed drives all randomness.
	Seed uint64
	// UseTracer selects how per-Servpod sojourns are measured: when
	// true, the §3.3 request tracer reconstructs them from generated
	// kernel events; when false the service's built-in tracing (the
	// paper's jaeger case, §5.3.2) reports them directly. Fan-out
	// services always use built-in tracing, as in the paper.
	UseTracer bool
	// TraceRequests is the number of requests traced per level when the
	// tracer is used (default 600).
	TraceRequests int
	// Jobs bounds the worker goroutines of the per-level sweep (0 =
	// runtime.NumCPU()). Jobs changes wall-clock time only, never the
	// profile, and is therefore excluded from the profile cache key.
	Jobs int
}

// normalized returns opts with the sweep defaults applied, so that Run and
// the cache key derivation agree on what will actually be swept.
func (o Options) normalized() Options {
	if len(o.Levels) == 0 {
		o.Levels = loadgen.FineSweepLevels()
	}
	if o.LevelDuration <= 0 {
		o.LevelDuration = 15 * time.Second
	}
	if o.TraceRequests <= 0 {
		o.TraceRequests = 600
	}
	return o
}

// Profile is the result of profiling one LC service.
type Profile struct {
	Service *workload.Service
	// SLA is the derived tail-latency target in seconds: the worst
	// sliding-window p99 of a solo run at max load (the Table 1 rule).
	SLA float64
	// LoadProfile holds per-level mean sojourns and tail latencies.
	LoadProfile *analyzer.LoadProfile
	// CoV maps each Servpod to its per-level sojourn CoV across requests
	// (the Fig. 8 series).
	CoV map[string][]float64
	// Contributions are the Eq. 1-5 results, in graph order.
	Contributions []analyzer.Contribution
	// Loadlimits maps each Servpod to its Fig. 8 loadlimit.
	Loadlimits map[string]float64
}

// Contribution returns the named pod's contribution entry.
func (p *Profile) Contribution(pod string) (analyzer.Contribution, bool) {
	for _, c := range p.Contributions {
		if c.Pod == pod {
			return c, true
		}
	}
	return analyzer.Contribution{}, false
}

// DeriveSLA measures the service's SLA the way Table 1 defines it: run the
// LC service alone at its maximum allowable load and take the worst
// sliding-window p99.
func DeriveSLA(svc *workload.Service, seed uint64, duration time.Duration) (float64, error) {
	if duration <= 0 {
		duration = 30 * time.Second
	}
	e, err := engine.New(engine.Config{
		Service: svc,
		Pattern: loadgen.Constant(1.0),
		Seed:    seed,
		Label:   "sla:" + svc.Name,
	})
	if err != nil {
		return 0, err
	}
	st, err := e.Run(duration)
	if err != nil {
		return 0, err
	}
	return st.WorstP99, nil
}

// Run profiles the service: a solo engine run per load level collecting
// per-Servpod sojourn samples and end-to-end tails, optionally measuring
// sojourn means through the §3.3 tracer, then the Eq. 1-5 analysis and the
// Fig. 8 loadlimit rule.
func Run(svc *workload.Service, opts Options) (*Profile, error) {
	if err := svc.Validate(); err != nil {
		return nil, err
	}
	opts = opts.normalized()
	fanOut := len(svc.Graph.Paths()) > 1
	useTracer := opts.UseTracer && !fanOut

	sla, err := DeriveSLA(svc, opts.Seed, 0)
	if err != nil {
		return nil, err
	}

	prof := &Profile{
		Service: svc,
		SLA:     sla,
		LoadProfile: &analyzer.LoadProfile{
			Levels:   append([]float64(nil), opts.Levels...),
			Sojourns: make(map[string][]float64),
		},
		CoV:        make(map[string][]float64),
		Loadlimits: make(map[string]float64),
	}

	var topo *trace.Topology
	if useTracer {
		topo = trace.NewTopology(svc)
	}

	// Each load level is an isolated engine run with a level-keyed seed,
	// so the sweep parallelizes across Jobs workers without perturbing any
	// other level's stream. Results land in per-level slots and are
	// assembled in level order below, keeping the profile bit-identical to
	// a serial sweep.
	type levelOut struct {
		tail     float64
		cov      map[string]float64
		sojourns map[string]float64
	}
	outs := make([]levelOut, len(opts.Levels))
	err = sim.ForEachErr(len(opts.Levels), opts.Jobs, func(li int) error {
		level := opts.Levels[li]
		e, err := engine.New(engine.Config{
			Service:        svc,
			Pattern:        loadgen.Constant(level),
			Seed:           opts.Seed + uint64(li)*7919,
			CollectSamples: true,
			Label:          fmt.Sprintf("profile:%s|level=%g", svc.Name, level),
		})
		if err != nil {
			return err
		}
		st, err := e.Run(opts.LevelDuration)
		if err != nil {
			return err
		}
		// E2ESamples is dead after the tail statistic, so the O(n)
		// in-place selection replaces the seed's copy+sort Quantile
		// (identical result bits; see sim.SelectQuantile). SojournSamples
		// stay untouched: CoV/Mean accumulate in sample order.
		out := levelOut{
			tail:     sim.SelectQuantile(st.E2ESamples, 0.99),
			cov:      make(map[string]float64, len(svc.Components)),
			sojourns: make(map[string]float64, len(svc.Components)),
		}

		// Per-request sojourn CoV for the Fig. 8 loadlimit rule.
		for _, comp := range svc.Components {
			out.cov[comp.Name] = sim.CoV(st.PerPod[comp.Name].SojournSamples)
		}

		// Mean sojourns: through the tracer pipeline, or from the
		// built-in per-request measurements (jaeger stand-in).
		if useTracer {
			means, err := tracerMeans(topo, svc, level, opts, uint64(li))
			if err != nil {
				return err
			}
			for _, comp := range svc.Components {
				out.sojourns[comp.Name] = means[comp.Name]
			}
		} else {
			for _, comp := range svc.Components {
				out.sojourns[comp.Name] = sim.Mean(st.PerPod[comp.Name].SojournSamples)
			}
		}
		outs[li] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		prof.LoadProfile.Tail = append(prof.LoadProfile.Tail, out.tail)
		for _, comp := range svc.Components {
			prof.CoV[comp.Name] = append(prof.CoV[comp.Name], out.cov[comp.Name])
			prof.LoadProfile.Sojourns[comp.Name] = append(
				prof.LoadProfile.Sojourns[comp.Name], out.sojourns[comp.Name])
		}
	}

	prof.Contributions, err = analyzer.Analyze(prof.LoadProfile, svc.Graph)
	if err != nil {
		return nil, err
	}
	for _, comp := range svc.Components {
		ll, err := analyzer.Loadlimit(opts.Levels, prof.CoV[comp.Name])
		if err != nil {
			return nil, err
		}
		prof.Loadlimits[comp.Name] = ll
	}
	return prof, nil
}

// tracerMeans runs the §3.3 pipeline at one load level: generate the
// kernel-event log of a traced request sample and recover per-pod mean
// sojourns from the CPG pairing.
func tracerMeans(topo *trace.Topology, svc *workload.Service, level float64,
	opts Options, levelIdx uint64) (map[string]float64, error) {
	sojourns := make(map[string]queueing.Sojourn, len(svc.Components))
	for _, c := range svc.Components {
		sojourns[c.Name] = c.Station.Solo(level * svc.MaxLoadQPS)
	}
	// Tracing samples a bounded request rate, like production tracers.
	rate := level * svc.MaxLoadQPS
	if rate > 2000 {
		rate = 2000
	}
	if rate < 1 {
		rate = 1
	}
	events, _, err := trace.Generate(topo, sojourns, trace.GenOptions{
		Requests:    opts.TraceRequests,
		Rate:        rate,
		Threads:     4,
		Persistent:  true,
		NoiseEvents: 50,
		Seed:        opts.Seed ^ (levelIdx+1)*0x9e37,
	})
	if err != nil {
		return nil, err
	}
	res, err := trace.Analyze(events, topo.Pods, svc.Graph.Comp)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(res.PerPod))
	for pod, st := range res.PerPod {
		out[pod] = st.MeanPerRequest
	}
	return out, nil
}

// SlackOptions configures the Algorithm 1 search.
type SlackOptions struct {
	// BETypes are the representative BE jobs run during the search; the
	// paper recommends mixed-intensity BEs (default: wordcount,
	// imageClassify, LSTM, CPU-stress, stream-dram, stream-llc, the
	// Fig. 7 mix).
	BETypes []bejobs.Type
	// TrialLoads are the constant load fractions each iteration's trials
	// run at; by default both just below the smallest loadlimit and just
	// below the largest.
	TrialLoads []float64
	// TrialSets are additional BE compositions each iteration must also
	// survive — the paper's "run the algorithm with representative,
	// mixed-intensive BEs and run multiple times to increase its
	// accuracy". The default adds the pure bandwidth-heavy jobs, whose
	// per-core pressure far exceeds the mix's.
	TrialSets [][]bejobs.Type
	// Load is the constant LC load fraction during the search. The
	// default is just below the smallest derived loadlimit — the
	// highest load at which BE jobs may still run anywhere, i.e. the
	// riskiest operating point the thresholds must keep safe.
	Load float64
	// StepDuration is the run_system dwell per iteration (default 60 s;
	// the paper uses 10 minutes on hardware). Each trial must reach the
	// co-location steady state, or the search underestimates risk and
	// derives unprotective slacklimits. The first third of each dwell
	// is warmup: the BE growth transient is not judged.
	StepDuration time.Duration
	// MinSlacklimit floors the derived slacklimits (default 0.08): the
	// window-p99 estimate the controller acts on is noisy, and a limit
	// below the noise floor lets growth ride the SLA edge where noise
	// dips become violations. The paper's smallest derived value is
	// 0.032 on much less noisy hardware monitoring.
	MinSlacklimit float64
	// Substeps divides each Servpod's Algorithm 1 step (1 - C_i/ΣC)
	// into this many fractional moves (default 4), so that reverting
	// one step on violation lands on a usable limit rather than back at
	// 1.0. With K substeps a pod that never triggers a violation
	// converges to exactly its normalized contribution.
	Substeps int
	// Seed drives the search runs.
	Seed uint64
	// Jobs bounds the worker goroutines evaluating one probe's trial
	// matrix (TrialLoads x BE compositions) concurrently (0 =
	// runtime.NumCPU()). The search outcome is independent of Jobs: each
	// trial is an isolated engine run with a trial-keyed seed and the
	// probe verdict is the OR over the matrix, so Jobs is excluded from
	// the slacklimit cache key.
	Jobs int
}

func (o *SlackOptions) fillDefaults(prof *Profile) {
	_ = prof
	if len(o.BETypes) == 0 {
		o.BETypes = []bejobs.Type{
			bejobs.Wordcount, bejobs.ImageClassify, bejobs.LSTM,
			bejobs.CPUStress, bejobs.StreamDRAM, bejobs.StreamLLC,
		}
	}
	if o.Load <= 0 {
		min := 1.0
		for _, ll := range prof.Loadlimits {
			if ll < min {
				min = ll
			}
		}
		o.Load = sim.Clamp(min-0.02, 0.5, 0.9)
	}
	if len(o.TrialLoads) == 0 {
		// Probe both risky operating points: just below the smallest
		// loadlimit (every machine may host BEs) and just below the
		// largest (only the tolerant machines still do, with the LC
		// near its own saturation and the thinnest latency budget).
		max := 0.0
		for _, ll := range prof.Loadlimits {
			if ll > max {
				max = ll
			}
		}
		o.TrialLoads = []float64{o.Load}
		if hi := sim.Clamp(max-0.02, o.Load, 0.95); hi > o.Load+0.02 {
			o.TrialLoads = append(o.TrialLoads, hi)
		}
	}
	if o.StepDuration <= 0 {
		o.StepDuration = 150 * time.Second
	}
	if o.TrialSets == nil {
		o.TrialSets = [][]bejobs.Type{
			{bejobs.StreamDRAM},
			{bejobs.Wordcount},
		}
	}
	if o.Substeps <= 0 {
		o.Substeps = 4
	}
	if o.MinSlacklimit <= 0 {
		o.MinSlacklimit = 0.12
	}
}

// FindSlacklimits runs Algorithm 1 for every Servpod: starting from
// slacklimit 1.0, each pod's limit descends by its step size
// ((1 - C_i/SumC)/Substeps) until the co-located system violates the SLA -
// then the pod reverts one step and keeps that value - or until the noise
// floor. Pods are searched in ascending contribution order (coordinate
// descent): tolerant pods reach their small limits first, and the
// sensitive pods then search under the realistic combined interference of
// the tolerant pods' BE jobs, which is where their protective limits
// matter. Every probe must survive the ramp trial under each
// representative BE composition (the paper's "run multiple times with
// representative, mixed-intensive BEs").
func FindSlacklimits(prof *Profile, opts SlackOptions) (map[string]float64, error) {
	opts.fillDefaults(prof)
	if len(prof.Contributions) == 0 {
		return nil, fmt.Errorf("profiler: profile has no contributions")
	}

	cur := make(map[string]float64, len(prof.Contributions))
	for _, c := range prof.Contributions {
		cur[c.Pod] = 1.0
	}

	// Ascending contribution order.
	order := append([]analyzer.Contribution(nil), prof.Contributions...)
	sort.Slice(order, func(i, j int) bool { return order[i].Normalized < order[j].Normalized })

	sets := append([][]bejobs.Type{opts.BETypes}, opts.TrialSets...)
	type trialCombo struct{ li, si int }
	var combos []trialCombo
	for li := range opts.TrialLoads {
		for si := range sets {
			combos = append(combos, trialCombo{li, si})
		}
	}
	// One probe evaluates the whole trial matrix concurrently. The serial
	// code short-circuited on the first violating combo; computing every
	// combo and OR-ing the verdicts gives the identical boolean (each
	// trial is an isolated, seed-keyed engine run with no side effects),
	// which is what keeps the search deterministic under any Jobs.
	trial := func(iter uint64) (bool, error) {
		violated := make([]bool, len(combos))
		err := sim.ForEachErr(len(combos), opts.Jobs, func(ci int) error {
			li, si := combos[ci].li, combos[ci].si
			tl := opts.TrialLoads[li]
			// Each trial ramps from half the probe load up to it:
			// BE jobs fatten while there is headroom and the system
			// then carries that state up the flank, the same shape
			// a production trace has.
			pattern := loadgen.Replay{
				Samples: []float64{tl / 2, tl, tl},
				Spacing: opts.StepDuration / 2,
			}
			v, err := trialRun(prof, cur, opts, sets[si], pattern,
				iter+uint64(si+1)*7001+uint64(li)*293)
			if err != nil {
				return err
			}
			violated[ci] = v
			return nil
		})
		if err != nil {
			return false, err
		}
		for _, v := range violated {
			if v {
				return true, nil
			}
		}
		return false, nil
	}

	iter := uint64(0)
	for _, c := range order {
		step := sim.Clamp((1-c.Normalized)/float64(opts.Substeps), 0.01, 0.98)
		for cur[c.Pod] > opts.MinSlacklimit {
			prev := cur[c.Pod]
			next := prev - step
			if next < opts.MinSlacklimit {
				next = opts.MinSlacklimit
			}
			cur[c.Pod] = next
			iter++
			if iter > 400 {
				return cur, nil
			}
			violated, err := trial(iter)
			if err != nil {
				return nil, err
			}
			if violated {
				// Borderline configurations flip on measurement noise;
				// a single violating trial may have nothing to do with
				// this pod's probe. Confirm with two re-runs under
				// different seeds and blame the probe only on a
				// majority (the paper's "run multiple times").
				votes := 1
				for retry := uint64(1); retry <= 2; retry++ {
					v, err := trial(iter + retry*50021)
					if err != nil {
						return nil, err
					}
					if v {
						votes++
					}
				}
				if votes < 2 {
					continue
				}
				// Record.pop(): this pod keeps its last safe value.
				cur[c.Pod] = prev
				break
			}
		}
	}
	return cur, nil
}

// trialRun is Algorithm 1's run_system: co-locate with the candidate
// slacklimits for the dwell and report whether the SLA was violated.
// Concurrent trials of one probe read the slacklimits map simultaneously;
// the search mutates it only between probes, after every trial goroutine
// has drained, so the reads are race-free.
func trialRun(prof *Profile, slacklimits map[string]float64, opts SlackOptions, bes []bejobs.Type, pattern loadgen.Pattern, iter uint64) (bool, error) {
	th := make(map[string]controller.Thresholds, len(slacklimits))
	for pod, sl := range slacklimits {
		ll := prof.Loadlimits[pod]
		if ll <= 0 {
			ll = 0.85
		}
		th[pod] = controller.Thresholds{Loadlimit: ll, Slacklimit: sl}
	}
	pol, err := controller.NewRhythm(th)
	if err != nil {
		return false, err
	}
	e, err := engine.New(engine.Config{
		Service: prof.Service,
		Pattern: pattern,
		SLA:     prof.SLA,
		Policy:  pol,
		BETypes: bes,
		Seed:    opts.Seed + iter*104729,
		Warmup:  opts.StepDuration / 3,
		Label:   fmt.Sprintf("slack-trial:%s|iter=%d", prof.Service.Name, iter),
	})
	if err != nil {
		return false, err
	}
	st, err := e.Run(opts.StepDuration)
	if err != nil {
		return false, err
	}
	// A trial fails when the SLA was violated: the engine's guard band
	// already makes the controller aim below the target, so a violation
	// during the dwell means these limits are genuinely unsafe.
	return st.Violations > 0, nil
}

// Thresholds assembles the final per-Servpod control thresholds from the
// profile's loadlimits and the Algorithm 1 slacklimits.
func Thresholds(prof *Profile, slacklimits map[string]float64) (map[string]controller.Thresholds, error) {
	out := make(map[string]controller.Thresholds, len(prof.Loadlimits))
	for pod, ll := range prof.Loadlimits {
		sl, ok := slacklimits[pod]
		if !ok {
			return nil, fmt.Errorf("profiler: no slacklimit for Servpod %s", pod)
		}
		out[pod] = controller.Thresholds{Loadlimit: ll, Slacklimit: sl}
	}
	return out, nil
}
