package profiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rhythm/internal/bejobs"
	"rhythm/internal/obs"
	"rhythm/internal/workload"
)

// This file implements the shared, content-keyed profile cache. Profiling
// is by far the most expensive step of Deploy ("profile LC once", §3.2),
// and every consumer in one process — core.Deploy, the experiment
// registry, `rhythm profile` — wants the profile of the same (service,
// options, seed) triple. The cache turns those repeated solo sweeps into
// lookups.
//
// Cache-key contract: a key is the service NAME plus every option that
// influences the result (levels, dwell, tracer settings, seed). Two rules
// keep this sound:
//
//  1. Anything that changes the output must be in the key. The workload
//     catalog is static — a name denotes one immutable spec — so the name
//     stands in for the service's content. Callers that hand-build or
//     mutate Service values must not use the cached entry points.
//  2. Anything that must NOT change the output stays out of the key.
//     Jobs (worker count) is the canonical example: the determinism tests
//     assert that parallel and serial sweeps produce identical profiles,
//     which is exactly the property that makes omitting Jobs sound.
//
// Cached values are shared: every hit returns the same *Profile pointer,
// so consumers must treat profiles as immutable (CachedSlacklimits returns
// a fresh map copy instead, because threshold maps are routinely edited by
// sweep experiments). Both caches are singleflight: concurrent misses on
// one key run the computation once and everyone blocks for the result.

type profileEntry struct {
	once sync.Once
	prof *Profile
	err  error
}

type slackEntry struct {
	once sync.Once
	sl   map[string]float64
	err  error
}

var profileCache = struct {
	mu     sync.Mutex
	m      map[string]*profileEntry
	hits   uint64
	misses uint64
}{m: make(map[string]*profileEntry)}

var slackCache = struct {
	mu     sync.Mutex
	m      map[string]*slackEntry
	hits   uint64
	misses uint64
}{m: make(map[string]*slackEntry)}

// ProfileKey returns the cache key for profiling svc under opts: the
// service name plus the normalized sweep options, excluding Jobs.
func ProfileKey(svc *workload.Service, opts Options) string {
	o := opts.normalized()
	levels := make([]string, len(o.Levels))
	for i, l := range o.Levels {
		levels[i] = fmt.Sprintf("%g", l)
	}
	return fmt.Sprintf("%s|levels=%s|dwell=%s|seed=%d|tracer=%t|treq=%d",
		svc.Name, strings.Join(levels, ","), o.LevelDuration, o.Seed,
		o.UseTracer, o.TraceRequests)
}

// slackKey canonicalizes the raw SlackOptions (defaults are filled
// deterministically from the profile, which the profileKey prefix already
// pins down), excluding Jobs.
func slackKey(profileKey string, opts SlackOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|slack|load=%g|loads=", profileKey, opts.Load)
	for _, l := range opts.TrialLoads {
		fmt.Fprintf(&b, "%g,", l)
	}
	fmt.Fprintf(&b, "|bes=%s|sets=", joinBE(opts.BETypes))
	for _, set := range opts.TrialSets {
		fmt.Fprintf(&b, "%s;", joinBE(set))
	}
	fmt.Fprintf(&b, "|step=%s|min=%g|sub=%d|seed=%d",
		opts.StepDuration, opts.MinSlacklimit, opts.Substeps, opts.Seed)
	return b.String()
}

func joinBE(bes []bejobs.Type) string {
	out := make([]string, len(bes))
	for i, be := range bes {
		out[i] = string(be)
	}
	return strings.Join(out, ",")
}

// CachedRun is Run behind the content-keyed cache: the first call for a
// (service name, options, seed) key profiles, every later call — from any
// goroutine — returns the same *Profile. The caller must treat the profile
// as read-only.
func CachedRun(svc *workload.Service, opts Options) (*Profile, error) {
	key := ProfileKey(svc, opts)
	profileCache.mu.Lock()
	e, ok := profileCache.m[key]
	if ok {
		profileCache.hits++
	} else {
		e = &profileEntry{}
		profileCache.m[key] = e
		profileCache.misses++
	}
	profileCache.mu.Unlock()
	cacheEvent("profile", key, ok)
	e.once.Do(func() { e.prof, e.err = Run(svc, opts) })
	return e.prof, e.err
}

// cacheEvent reports one lookup on the observability bus (free when no bus
// is installed). A "hit" is any arrival at an existing key, including those
// that block on the in-flight first computation — the same accounting
// CacheStats uses.
func cacheEvent(cache, key string, hit bool) {
	bus := obs.Active()
	if bus == nil {
		return
	}
	bus.Scope("profile-cache").Cache(cache, key, hit)
	result := "miss"
	if hit {
		result = "hit"
	}
	bus.Counter("rhythm_profile_cache_total", "cache", cache, "result", result).Inc()
}

// CachedSlacklimits is FindSlacklimits behind the cache. profileKey must
// be the ProfileKey the profile was computed under — it pins the profile
// content into the slacklimit key. Each call returns a fresh copy of the
// limits map, since callers routinely modify threshold maps (Fig. 18 /
// Table 2 sweeps).
func CachedSlacklimits(profileKey string, prof *Profile, opts SlackOptions) (map[string]float64, error) {
	key := slackKey(profileKey, opts)
	slackCache.mu.Lock()
	e, ok := slackCache.m[key]
	if ok {
		slackCache.hits++
	} else {
		e = &slackEntry{}
		slackCache.m[key] = e
		slackCache.misses++
	}
	slackCache.mu.Unlock()
	cacheEvent("slacklimit", key, ok)
	e.once.Do(func() { e.sl, e.err = FindSlacklimits(prof, opts) })
	if e.err != nil {
		return nil, e.err
	}
	out := make(map[string]float64, len(e.sl))
	for k, v := range e.sl {
		out[k] = v
	}
	return out, nil
}

// CacheStats reports cumulative hits and misses across both the profile
// and the slacklimit cache (a miss is the first arrival at a key; the
// arrivals that block on an in-flight computation count as hits).
func CacheStats() (hits, misses uint64) {
	profileCache.mu.Lock()
	hits, misses = profileCache.hits, profileCache.misses
	profileCache.mu.Unlock()
	slackCache.mu.Lock()
	hits += slackCache.hits
	misses += slackCache.misses
	slackCache.mu.Unlock()
	return hits, misses
}

// CachedKeys returns the sorted keys currently resident, for debugging and
// tests.
func CachedKeys() []string {
	var out []string
	profileCache.mu.Lock()
	for k := range profileCache.m {
		out = append(out, k)
	}
	profileCache.mu.Unlock()
	slackCache.mu.Lock()
	for k := range slackCache.m {
		out = append(out, k)
	}
	slackCache.mu.Unlock()
	sort.Strings(out)
	return out
}

// resetCache drops every cached entry and zeroes the counters (tests only).
func resetCache() {
	profileCache.mu.Lock()
	profileCache.m = make(map[string]*profileEntry)
	profileCache.hits, profileCache.misses = 0, 0
	profileCache.mu.Unlock()
	slackCache.mu.Lock()
	slackCache.m = make(map[string]*slackEntry)
	slackCache.hits, slackCache.misses = 0, 0
	slackCache.mu.Unlock()
}
