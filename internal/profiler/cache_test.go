package profiler

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"rhythm/internal/workload"
)

// cheapOpts is a deliberately small sweep so cache and determinism tests
// stay fast under -race.
func cheapOpts(seed uint64) Options {
	return Options{
		Levels:        []float64{0.3, 0.6, 0.85},
		LevelDuration: 2 * time.Second,
		Seed:          seed,
	}
}

func TestCachedRunSingleflight(t *testing.T) {
	resetCache()
	defer resetCache()

	const workers = 8
	profs := make([]*Profile, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Fresh Service value per goroutine, same content: the cache
			// keys by name + options, so all workers share one entry.
			profs[w], errs[w] = CachedRun(workload.Redis(), cheapOpts(7))
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if profs[w] != profs[0] {
			t.Fatalf("worker %d received a different *Profile than worker 0", w)
		}
	}
	hits, misses := CacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight)", misses)
	}
	if hits != workers-1 {
		t.Fatalf("hits = %d, want %d", hits, workers-1)
	}

	// A different seed is a different key.
	other, err := CachedRun(workload.Redis(), cheapOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if other == profs[0] {
		t.Fatal("different seed returned the cached profile of another key")
	}
	if _, misses := CacheStats(); misses != 2 {
		t.Fatal("second key did not count as a miss")
	}
}

func TestProfileKeyExcludesJobs(t *testing.T) {
	a := cheapOpts(7)
	b := cheapOpts(7)
	b.Jobs = 16
	if ProfileKey(workload.Redis(), a) != ProfileKey(workload.Redis(), b) {
		t.Fatal("Jobs must not influence the cache key")
	}
	c := cheapOpts(7)
	c.UseTracer = true
	if ProfileKey(workload.Redis(), a) == ProfileKey(workload.Redis(), c) {
		t.Fatal("UseTracer must influence the cache key")
	}
	// Zero-value options normalize before keying, so "defaults spelled
	// out" and "defaults implied" share an entry.
	var zero, spelled Options
	spelled.Levels = zero.normalized().Levels
	spelled.LevelDuration = zero.normalized().LevelDuration
	spelled.TraceRequests = zero.normalized().TraceRequests
	if ProfileKey(workload.Redis(), zero) != ProfileKey(workload.Redis(), spelled) {
		t.Fatal("normalization must happen before keying")
	}
}

// TestParallelProfileMatchesSerial is the profiler-level determinism
// regression: a parallel sweep must produce the bit-identical profile.
func TestParallelProfileMatchesSerial(t *testing.T) {
	serialOpts := cheapOpts(11)
	serialOpts.Jobs = 1
	parallelOpts := cheapOpts(11)
	parallelOpts.Jobs = 4

	serial, err := Run(workload.Redis(), serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(workload.Redis(), parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.SLA != parallel.SLA {
		t.Fatalf("SLA differs: %v vs %v", serial.SLA, parallel.SLA)
	}
	if !reflect.DeepEqual(serial.LoadProfile, parallel.LoadProfile) {
		t.Fatalf("load profiles differ:\nserial   %+v\nparallel %+v",
			serial.LoadProfile, parallel.LoadProfile)
	}
	if !reflect.DeepEqual(serial.CoV, parallel.CoV) {
		t.Fatalf("CoV differs:\nserial   %v\nparallel %v", serial.CoV, parallel.CoV)
	}
	if !reflect.DeepEqual(serial.Contributions, parallel.Contributions) {
		t.Fatalf("contributions differ:\nserial   %v\nparallel %v",
			serial.Contributions, parallel.Contributions)
	}
	if !reflect.DeepEqual(serial.Loadlimits, parallel.Loadlimits) {
		t.Fatalf("loadlimits differ:\nserial   %v\nparallel %v",
			serial.Loadlimits, parallel.Loadlimits)
	}
}

// TestParallelSlacklimitsMatchSerial holds Algorithm 1 to the same
// standard: the trial matrix fans out, the derived limits must not move.
func TestParallelSlacklimitsMatchSerial(t *testing.T) {
	prof, err := Run(workload.Redis(), cheapOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	slackOpts := func(jobs int) SlackOptions {
		return SlackOptions{
			StepDuration: 30 * time.Second,
			Substeps:     2,
			Seed:         13,
			Jobs:         jobs,
		}
	}
	serial, err := FindSlacklimits(prof, slackOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FindSlacklimits(prof, slackOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("slacklimits differ:\nserial   %v\nparallel %v", serial, parallel)
	}
}

func TestCachedSlacklimitsReturnsCopy(t *testing.T) {
	resetCache()
	defer resetCache()

	prof, err := CachedRun(workload.Redis(), cheapOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	key := ProfileKey(workload.Redis(), cheapOpts(11))
	opts := SlackOptions{StepDuration: 30 * time.Second, Substeps: 2, Seed: 13}
	first, err := CachedSlacklimits(key, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pod := range first {
		first[pod] = -1 // sweep experiments edit threshold maps; must not poison the cache
	}
	second, err := CachedSlacklimits(key, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pod, v := range second {
		if v == -1 {
			t.Fatalf("cache returned the caller-mutated map (pod %s)", pod)
		}
	}
	if len(CachedKeys()) != 2 {
		t.Fatalf("expected 2 resident keys (profile + slack), got %v", CachedKeys())
	}
}
