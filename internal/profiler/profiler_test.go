package profiler

import (
	"math"
	"testing"
	"time"

	"rhythm/internal/workload"
)

// coarse profiling options keep the tests fast while preserving shape.
func coarseOpts() Options {
	return Options{
		Levels:        []float64{0.1, 0.3, 0.5, 0.65, 0.75, 0.85, 0.93},
		LevelDuration: 6 * time.Second,
		Seed:          42,
	}
}

func profileECommerce(t *testing.T, useTracer bool) *Profile {
	t.Helper()
	opts := coarseOpts()
	opts.UseTracer = useTracer
	opts.TraceRequests = 300
	p, err := Run(workload.ECommerce(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeriveSLAPositiveAndStable(t *testing.T) {
	svc := workload.ECommerce()
	a, err := DeriveSLA(svc, 7, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveSLA(svc, 7, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatalf("SLA = %v", a)
	}
	if a != b {
		t.Fatalf("SLA derivation not deterministic: %v vs %v", a, b)
	}
	// Order of magnitude: the calibrated E-commerce should be within a
	// factor ~4 of Table 1's 250 ms.
	if a < 0.0625 || a > 1.0 {
		t.Fatalf("derived SLA %v s implausibly far from the 250 ms target", a)
	}
}

func TestProfileShapeMatchesFig6(t *testing.T) {
	p := profileECommerce(t, false)
	lp := p.LoadProfile

	// Tail latency grows with load.
	for i := 1; i < len(lp.Tail); i++ {
		if lp.Tail[i] <= lp.Tail[i-1]*0.8 {
			t.Fatalf("tail not growing: %v", lp.Tail)
		}
	}
	// HAProxy contributes <5% of the overall latency (Fig. 6a).
	last := len(lp.Levels) - 1
	var total float64
	for _, s := range lp.Sojourns {
		total += s[last]
	}
	if frac := lp.Sojourns["Haproxy"][last] / total; frac > 0.05 {
		t.Fatalf("HAProxy sojourn share %v, want < 0.05", frac)
	}
	// MySQL overtakes Tomcat at high load (its sojourn rises faster).
	gLow := lp.Sojourns["MySQL"][1] / lp.Sojourns["Tomcat"][1]
	gHigh := lp.Sojourns["MySQL"][last] / lp.Sojourns["Tomcat"][last]
	if gHigh <= gLow {
		t.Fatalf("MySQL/Tomcat ratio should grow with load: %v -> %v", gLow, gHigh)
	}
}

func TestContributionsMatchPaperOrdering(t *testing.T) {
	p := profileECommerce(t, false)
	get := func(pod string) float64 {
		c, ok := p.Contribution(pod)
		if !ok {
			t.Fatalf("missing contribution for %s", pod)
		}
		return c.Normalized
	}
	mysql, tomcat := get("MySQL"), get("Tomcat")
	haproxy, amoeba := get("Haproxy"), get("Amoeba")
	// §3.5.1: MySQL needs the largest slacklimit (largest contribution);
	// HAProxy and Amoeba are small.
	if !(mysql > tomcat && tomcat > haproxy && tomcat > amoeba) {
		t.Fatalf("contribution ordering wrong: MySQL=%v Tomcat=%v Haproxy=%v Amoeba=%v",
			mysql, tomcat, haproxy, amoeba)
	}
	var sum float64
	for _, c := range p.Contributions {
		sum += c.Normalized
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("normalized contributions sum to %v", sum)
	}
}

func TestTracerAndBuiltinMeansAgree(t *testing.T) {
	direct := profileECommerce(t, false)
	traced := profileECommerce(t, true)
	for _, pod := range []string{"Haproxy", "Tomcat", "Amoeba", "MySQL"} {
		d := direct.LoadProfile.Sojourns[pod]
		tr := traced.LoadProfile.Sojourns[pod]
		for i := range d {
			if d[i] <= 0 {
				t.Fatalf("%s: non-positive sojourn", pod)
			}
			if rel := math.Abs(d[i]-tr[i]) / d[i]; rel > 0.25 {
				t.Fatalf("%s level %d: tracer mean %v vs built-in %v (rel %v)",
					pod, i, tr[i], d[i], rel)
			}
		}
	}
}

func TestLoadlimitsOrderedBySensitivityOfVariance(t *testing.T) {
	p := profileECommerce(t, false)
	my := p.Loadlimits["MySQL"]
	to := p.Loadlimits["Tomcat"]
	if my <= 0 || my > 1 || to <= 0 || to > 1 {
		t.Fatalf("loadlimits out of range: MySQL %v Tomcat %v", my, to)
	}
	// Fig. 8: MySQL's CoV knee appears earlier than Tomcat's
	// (0.76 vs 0.87 in the paper).
	if my >= to {
		t.Fatalf("MySQL loadlimit %v should be below Tomcat's %v", my, to)
	}
}

func TestFanOutUsesBuiltinTracing(t *testing.T) {
	opts := coarseOpts()
	opts.UseTracer = true // must be ignored for fan-out services
	p, err := Run(workload.SNMS(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// UserService dominates contributions, MediaService is off the
	// critical path (§5.3.2 reports 0.565 / 0.295 / 0.14).
	us, _ := p.Contribution("UserService")
	ms, _ := p.Contribution("MediaService")
	fe, _ := p.Contribution("frontend")
	if !(us.Normalized > ms.Normalized && ms.Normalized > fe.Normalized) {
		t.Fatalf("SNMS ordering: user=%v media=%v frontend=%v",
			us.Normalized, ms.Normalized, fe.Normalized)
	}
	if ms.Alpha >= 1 {
		t.Fatalf("MediaService should be off the critical path, alpha=%v", ms.Alpha)
	}
	if us.Alpha != 1 || fe.Alpha != 1 {
		t.Fatal("critical-path pods should have alpha 1")
	}
}

func TestFindSlacklimits(t *testing.T) {
	p := profileECommerce(t, false)
	sl, err := FindSlacklimits(p, SlackOptions{
		StepDuration: 0,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pod, v := range sl {
		if v <= 0 || v > 1 {
			t.Fatalf("%s slacklimit %v out of (0,1]", pod, v)
		}
	}
	// §3.5.1: MySQL ends with a much larger slacklimit than the
	// low-contribution pods, so many more BEs land on Amoeba/HAProxy.
	if !(sl["MySQL"] > sl["Amoeba"] && sl["MySQL"] > sl["Haproxy"]) {
		t.Fatalf("slacklimits: %v", sl)
	}
}

func TestThresholdsAssembly(t *testing.T) {
	p := profileECommerce(t, false)
	sl := map[string]float64{
		"Haproxy": 0.032, "Tomcat": 0.078, "Amoeba": 0.04, "MySQL": 0.347,
	}
	th, err := Thresholds(p, sl)
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 4 {
		t.Fatalf("thresholds = %v", th)
	}
	if th["MySQL"].Slacklimit != 0.347 || th["MySQL"].Loadlimit != p.Loadlimits["MySQL"] {
		t.Fatalf("MySQL thresholds = %+v", th["MySQL"])
	}
	delete(sl, "MySQL")
	if _, err := Thresholds(p, sl); err == nil {
		t.Fatal("missing slacklimit accepted")
	}
}

func TestRunValidation(t *testing.T) {
	svc := workload.ECommerce()
	svc.MaxLoadQPS = -1
	if _, err := Run(svc, coarseOpts()); err == nil {
		t.Fatal("invalid service accepted")
	}
	if _, err := FindSlacklimits(&Profile{Service: workload.ECommerce()}, SlackOptions{}); err == nil {
		t.Fatal("profile without contributions accepted")
	}
}
