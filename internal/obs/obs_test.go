package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestDisabledPathIsSafe: with no bus installed, every consumer-facing
// entry point — Active, Scope, the zero Scope's emitters, nil
// instruments — must no-op without panicking. This is the contract that
// lets hot paths call obs unconditionally.
func TestDisabledPathIsSafe(t *testing.T) {
	Uninstall()
	if Active() != nil {
		t.Fatal("Active() non-nil after Uninstall")
	}
	sc := Active().Scope("anything")
	if sc.Enabled() {
		t.Fatal("zero Scope reports Enabled")
	}
	sc.Decision(0, "pod", "Nothing", 0.5, 0.1, 0.01, "r")
	sc.Tick(0, 1, 0.5, 100, 8)
	sc.BE(0, "pod", "be-1", "kill", 2, 3)
	sc.Cache("profile", "k", true)
	sc.Pool(10, 4)
	sc.RunPhase(0, "start", "cfg")
	sc.Experiment("fig2", "start")

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil Counter has value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil Gauge has value")
	}
	var h *Histogram
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Fatal("nil Histogram has observations")
	}
	if Active().Counter("x") != nil || Active().Gauge("x") != nil ||
		Active().Histogram("x", DefBuckets) != nil {
		t.Fatal("nil bus returned non-nil instrument")
	}
	if got := Active().EventCounts(); len(got) != 0 {
		t.Fatalf("nil bus EventCounts = %v", got)
	}
	if err := Active().Close(); err != nil {
		t.Fatalf("nil bus Close: %v", err)
	}
}

// TestBusPublishAndCounts: events reach every sink in order with 1-based
// sequence numbers, and EventCounts tallies per kind name.
func TestBusPublishAndCounts(t *testing.T) {
	var a, b MemorySink
	bus := NewBus(&a, &b)
	sc := bus.Scope("eng")
	sc.Decision(2e9, "web", "StopBE", 0.6, -0.05, 0.012, "slack below zero")
	sc.Tick(3e9, 1e9, 0.6, 600, 16)
	sc.Cache("profile", "k1", false)

	for _, sink := range []*MemorySink{&a, &b} {
		evs := sink.Events()
		if len(evs) != 3 {
			t.Fatalf("sink got %d events, want 3", len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("event %d has seq %d", i, ev.Seq)
			}
		}
		d := evs[0]
		if d.Kind != KindDecision || d.Pod != "web" || d.Op != "StopBE" ||
			d.Load != 0.6 || d.Slack != -0.05 || d.P99 != 0.012 ||
			d.Reason != "slack below zero" || d.Scope != "eng" || d.At != 2e9 {
			t.Fatalf("decision event mangled: %+v", d)
		}
		if evs[2].At != NoTime || evs[2].Op != "miss" {
			t.Fatalf("cache event mangled: %+v", evs[2])
		}
	}
	counts := bus.EventCounts()
	want := map[string]uint64{"decision": 1, "tick": 1, "cache": 1}
	if len(counts) != len(want) {
		t.Fatalf("EventCounts = %v, want %v", counts, want)
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("EventCounts[%s] = %d, want %d", k, counts[k], n)
		}
	}
}

// TestInstallActive: Install/Active round-trips and Uninstall disables.
func TestInstallActive(t *testing.T) {
	bus := NewBus()
	Install(bus)
	if Active() != bus {
		t.Fatal("Active() did not return the installed bus")
	}
	Uninstall()
	if Active() != nil {
		t.Fatal("Active() non-nil after Uninstall")
	}
}

// TestInstruments: counters accumulate atomically, gauges hold last
// value and support Add, histograms bucket observations by bound, and
// get-or-create returns the same instrument for the same key.
func TestInstruments(t *testing.T) {
	bus := NewBus()
	c := bus.Counter("reqs", "action", "StopBE")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if bus.Counter("reqs", "action", "StopBE") != c {
		t.Fatal("same key produced a second counter")
	}
	if bus.Counter("reqs", "action", "CutBE") == c {
		t.Fatal("different label shared a counter")
	}

	g := bus.Gauge("workers")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %g, want 3", g.Value())
	}

	h := bus.Histogram("slack", []float64{0, 0.1, 0.2})
	for _, v := range []float64{-0.5, 0.05, 0.15, 0.15, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	wantBuckets := []uint64{1, 1, 2, 1} // (-inf,0], (0,0.1], (0.1,0.2], (0.2,+inf)
	for i, want := range wantBuckets {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if bus.Histogram("slack", nil) != h {
		t.Fatal("same name produced a second histogram")
	}
}

// TestInstrumentsConcurrent: instrument updates from many goroutines
// must not lose increments (run under -race in make check).
func TestInstrumentsConcurrent(t *testing.T) {
	bus := NewBus()
	c := bus.Counter("n")
	g := bus.Gauge("g")
	h := bus.Histogram("h", DefBuckets)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram = %d, want %d", h.Count(), workers*per)
	}
}

// TestJSONLSink: every line is valid JSON carrying the kind-specific
// fields the package doc promises; clock-less events omit "at".
func TestJSONLSink(t *testing.T) {
	var out bytes.Buffer
	sink := NewJSONLSink(&out)
	bus := NewBus(sink)
	sc := bus.Scope(`eng "q"`)
	sc.Decision(1500000000, "web", "CutBE", 0.7, 0.02, 0.009, `load 0.7 > loadlimit`)
	sc.Tick(2e9, 1e9, 0.7, 700, 32)
	sc.BE(2e9, "web", "batch-3", "suspend", 0, 0)
	sc.Cache("slacklimit", "k", true)
	sc.Pool(12, 4)
	sc.RunPhase(0, "start", "svc=web")
	sc.Experiment("fig2", "end")
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), out.String())
	}
	var recs []map[string]interface{}
	for i, ln := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		recs = append(recs, m)
	}
	d := recs[0]
	if d["kind"] != "decision" || d["pod"] != "web" || d["action"] != "CutBE" ||
		d["load"] != 0.7 || d["slack"] != 0.02 || d["p99"] != 0.009 ||
		d["reason"] != "load 0.7 > loadlimit" || d["at"] != 1.5 ||
		d["scope"] != `eng "q"` {
		t.Fatalf("decision line wrong: %v", d)
	}
	if recs[1]["dur"] != 1.0 || recs[1]["samples"] != 32.0 || recs[1]["qps"] != 700.0 {
		t.Fatalf("tick line wrong: %v", recs[1])
	}
	if recs[2]["op"] != "suspend" || recs[2]["id"] != "batch-3" ||
		recs[2]["cores"] != 0.0 || recs[2]["ways"] != 0.0 {
		t.Fatalf("be line wrong: %v", recs[2])
	}
	if recs[3]["cache"] != "slacklimit" || recs[3]["result"] != "hit" {
		t.Fatalf("cache line wrong: %v", recs[3])
	}
	if _, hasAt := recs[3]["at"]; hasAt {
		t.Fatalf("clock-less cache event carries at: %v", recs[3])
	}
	if recs[4]["items"] != 12.0 || recs[4]["workers"] != 4.0 {
		t.Fatalf("pool line wrong: %v", recs[4])
	}
	if recs[5]["phase"] != "start" || recs[5]["config"] != "svc=web" {
		t.Fatalf("run line wrong: %v", recs[5])
	}
	if recs[6]["id"] != "fig2" || recs[6]["phase"] != "end" {
		t.Fatalf("experiment line wrong: %v", recs[6])
	}
}

// TestChromeSink: the document is one valid JSON object in trace_event
// shape, with ticks as duration events and metadata naming processes.
func TestChromeSink(t *testing.T) {
	var out bytes.Buffer
	sink := NewChromeSink(&out)
	bus := NewBus(sink)
	sc := bus.Scope("eng")
	sc.Tick(1e9, 1e9, 0.5, 500, 16)
	sc.Decision(2e9, "web", "StopBE", 0.5, -0.1, 0.02, "r")
	sc.BE(2e9, "web", "b1", "kill", 0, 0)
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var phases []string
	var names []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
		names = append(names, ev["name"].(string))
	}
	// process_name metadata, tick X, thread_name metadata for pod "web",
	// decision instant, BE instant.
	wantPh := []string{"M", "X", "M", "i", "i"}
	if fmt.Sprint(phases) != fmt.Sprint(wantPh) {
		t.Fatalf("phases = %v (names %v), want %v", phases, names, wantPh)
	}
	tick := doc.TraceEvents[1]
	if tick["ts"] != 1e6 || tick["dur"] != 1e6 { // µs
		t.Fatalf("tick timing wrong: %v", tick)
	}
}

// TestWriteMetrics: the snapshot is Prometheus text format — TYPE lines
// per family, sorted series, cumulative histogram buckets ending at +Inf
// with _sum and _count.
func TestWriteMetrics(t *testing.T) {
	bus := NewBus()
	bus.Counter("rhythm_decisions_total", "action", "StopBE").Add(7)
	bus.Counter("rhythm_decisions_total", "action", "CutBE").Add(2)
	bus.Gauge("rhythm_pool_active_workers").Set(3)
	h := bus.Histogram("rhythm_decision_slack", []float64{0, 0.1})
	h.Observe(-0.2)
	h.Observe(0.05)
	h.Observe(0.5)

	var out bytes.Buffer
	if err := bus.WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE rhythm_decisions_total counter",
		`rhythm_decisions_total{action="StopBE"} 7`,
		`rhythm_decisions_total{action="CutBE"} 2`,
		"# TYPE rhythm_pool_active_workers gauge",
		"rhythm_pool_active_workers 3",
		"# TYPE rhythm_decision_slack histogram",
		`rhythm_decision_slack_bucket{le="0"} 1`,
		`rhythm_decision_slack_bucket{le="0.1"} 2`,
		`rhythm_decision_slack_bucket{le="+Inf"} 3`,
		"rhythm_decision_slack_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics snapshot missing %q:\n%s", want, text)
		}
	}
	// Buckets must appear in increasing le order (the exposition format's
	// requirement), not lexically — "+Inf" last.
	i0 := strings.Index(text, `le="0"`)
	i1 := strings.Index(text, `le="0.1"`)
	iInf := strings.Index(text, `le="+Inf"`)
	if !(i0 < i1 && i1 < iInf) {
		t.Fatalf("histogram buckets out of le order (indices %d, %d, %d):\n%s", i0, i1, iInf, text)
	}
	// Deterministic: two snapshots of the same bus render identically.
	var again bytes.Buffer
	if err := bus.WriteMetrics(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Fatal("WriteMetrics is not deterministic across calls")
	}
}

// TestSyncWriterAtomicLines: concurrent writers through one SyncWriter
// never interleave mid-line — the bug the CLI routes all diagnostics
// through obs.NewSyncWriter to fix.
func TestSyncWriterAtomicLines(t *testing.T) {
	var out bytes.Buffer
	w := NewSyncWriter(&out)
	var wg sync.WaitGroup
	const workers, lines = 8, 200
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				w.Printf("worker-%d line %d suffix\n", id, i)
			}
		}(id)
	}
	wg.Wait()
	got := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(got) != workers*lines {
		t.Fatalf("got %d lines, want %d", len(got), workers*lines)
	}
	for _, ln := range got {
		if !strings.HasPrefix(ln, "worker-") || !strings.HasSuffix(ln, "suffix") {
			t.Fatalf("interleaved line: %q", ln)
		}
	}
}

// TestSyncWriterNil: a SyncWriter over nil (and a nil *SyncWriter)
// discards without error.
func TestSyncWriterNil(t *testing.T) {
	w := NewSyncWriter(nil)
	if n, err := w.Write([]byte("x")); n != 1 || err != nil {
		t.Fatalf("nil-backed Write = (%d, %v)", n, err)
	}
	var nilw *SyncWriter
	if n, err := nilw.Write([]byte("xy")); n != 2 || err != nil {
		t.Fatalf("nil SyncWriter Write = (%d, %v)", n, err)
	}
}

// TestKindStrings: kind names are stable — sink output and EventCounts
// keys depend on them.
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindRun: "run", KindTick: "tick", KindDecision: "decision",
		KindBE: "be", KindCache: "cache", KindPool: "pool",
		KindExperiment: "experiment", Kind(0): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestMetricKey: the exposition-format series key.
func TestMetricKey(t *testing.T) {
	if got := SeriesKey("n", nil); got != "n" {
		t.Fatalf("SeriesKey no labels = %q", got)
	}
	if got := SeriesKey("n", []string{"a", "1", "b", "2"}); got != `n{a="1",b="2"}` {
		t.Fatalf("SeriesKey = %q", got)
	}
	if got := SeriesKey("n", []string{"a", `x"y\z`}); got != `n{a="x\"y\\z"}` {
		t.Fatalf("SeriesKey escaped = %q", got)
	}
}
