// Package obs is the process-wide instrumentation bus: every controller
// decision, engine tick, BE lifecycle transition, profile-cache lookup and
// worker-pool dispatch can be observed as a typed event fanned out to
// pluggable sinks (JSONL event log, Chrome trace_event JSON), alongside
// counter/gauge/histogram instruments snapshottable in Prometheus text
// format. It is the decision-trace substrate for §3.5's Algorithm 2: with a
// bus installed, `rhythm trace <experiment>` shows which pod triggered
// StopBE vs CutBE, what the measured slack was, and how close the window
// p99 ran to the SLA — without changing a single byte of experiment output.
//
// Two properties are load-bearing and pinned by tests:
//
//   - The disabled path is free. With no bus installed every emit point is
//     a nil check: the zero Scope and nil instruments no-op, and the whole
//     path performs zero allocations (BenchmarkObsDisabled in
//     internal/benchmarks pins 0 allocs/op; `make bench` records it).
//   - Observation does not perturb the experiment. Events carry virtual
//     sim.Time nanoseconds only — no sink ever reads the wall clock — and
//     the bus touches neither experiment stdout nor any RNG stream, so
//     `run all` at seed 2020 is byte-identical with tracing on or off (the
//     CI smoke proves it with cmp). Trace files themselves are
//     deterministic under -jobs 1; under parallel runs event interleaving
//     (and therefore sequence numbers) may differ, but every event still
//     carries its scope and virtual timestamp.
//
// The bus is installed process-wide (Install/Uninstall) because the
// consumers — engines created deep inside parallel sweeps, the profile
// cache, the worker pool — have no common plumbing path; install before
// starting work and uninstall after, as cmd/rhythm does.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// NoTime marks events that occur outside any simulation clock (cache
// lookups, pool dispatches): sinks omit or zero the timestamp.
const NoTime int64 = -1

// Kind discriminates the typed events on the bus.
type Kind uint8

// The event kinds. KindRun brackets one engine run; KindTick is one engine
// simulation step; KindDecision is one Algorithm 2 controller decision;
// KindBE is a BE-instance lifecycle transition (launch/kill/suspend/
// resume/grow/cut); KindCache is a profile-cache lookup; KindPool is a
// worker-pool dispatch; KindExperiment brackets one registry experiment;
// KindFault is a fault-injection activation or recovery (internal/faults).
const (
	KindRun Kind = iota + 1
	KindTick
	KindDecision
	KindBE
	KindCache
	KindPool
	KindExperiment
	KindFault

	kindMax
)

// String names the kind as it appears in sink output.
func (k Kind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindTick:
		return "tick"
	case KindDecision:
		return "decision"
	case KindBE:
		return "be"
	case KindCache:
		return "cache"
	case KindPool:
		return "pool"
	case KindExperiment:
		return "experiment"
	case KindFault:
		return "fault"
	default:
		return "unknown"
	}
}

// Event is one observation on the bus. It is a flat union over the typed
// emitters on Scope: each kind populates the fields its sink serialization
// documents (see JSONLSink) and leaves the rest zero.
type Event struct {
	// Seq is the bus-assigned sequence number (1-based, publication order).
	Seq uint64
	// Kind discriminates which emitter produced the event.
	Kind Kind
	// At is the virtual sim.Time in nanoseconds, or NoTime for events that
	// occur outside any simulation clock. Sinks never read the wall clock.
	At int64
	// Dur is the event's virtual duration in nanoseconds (ticks), 0 if
	// instantaneous.
	Dur int64
	// Scope labels the emitting context (engine run, cache, pool).
	Scope string
	// Pod is the Servpod concerned, when any.
	Pod string
	// Op is the verb: the controller action for decisions, the lifecycle
	// transition for BE events, hit/miss for cache events, start/end for
	// run and experiment brackets.
	Op string
	// ID identifies the object: BE instance id, cache key, experiment id.
	ID string
	// Reason is the human-readable explanation (the Algorithm 2 branch for
	// decisions).
	Reason string
	// Load, Slack, P99 and QPS are the measured controller inputs.
	Load  float64
	Slack float64
	P99   float64
	QPS   float64
	// N and M are kind-specific small integers: samples per tick, pool
	// items and workers, BE instance cores and LLC ways.
	N int
	M int
}

// Bus fans events out to its sinks and hosts the instrument registry. All
// methods are safe for concurrent use; emits from parallel engines are
// serialized per sink under one mutex so sink output stays line-atomic.
type Bus struct {
	mu    sync.Mutex
	sinks []Sink
	seq   atomic.Uint64

	kindCount [kindMax]atomic.Uint64

	imu        sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewBus returns a bus publishing to the given sinks (none is valid: the
// instruments still accumulate and can be snapshotted with WriteMetrics).
func NewBus(sinks ...Sink) *Bus {
	return &Bus{
		sinks:      sinks,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// current is the installed process-wide bus (nil = disabled).
var current atomic.Pointer[Bus]

// Install makes b the process-wide bus. Install before starting the work
// to observe: consumers cache their Scope and instruments at construction
// time, so a bus installed mid-run is only picked up by engines created
// afterwards.
func Install(b *Bus) { current.Store(b) }

// Uninstall disables observation (the default state).
func Uninstall() { current.Store(nil) }

// Active returns the installed bus, or nil when observation is disabled.
// The nil result is usable: (*Bus)(nil).Scope returns the zero Scope and
// nil instruments, all of which no-op for free.
func Active() *Bus { return current.Load() }

// Close flushes and closes every sink. The bus must not be used afterwards.
func (b *Bus) Close() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, s := range b.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// publish stamps and fans out one event.
func (b *Bus) publish(ev Event) {
	ev.Seq = b.seq.Add(1)
	if ev.Kind < kindMax {
		b.kindCount[ev.Kind].Add(1)
	}
	b.mu.Lock()
	for _, s := range b.sinks {
		s.Emit(&ev)
	}
	b.mu.Unlock()
}

// EventCounts returns the number of events published so far per kind name,
// omitting kinds with no events (the `rhythm trace` summary reads it).
func (b *Bus) EventCounts() map[string]uint64 {
	out := make(map[string]uint64)
	if b == nil {
		return out
	}
	for k := Kind(1); k < kindMax; k++ {
		if n := b.kindCount[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// Scope is a bus handle labeled with the emitting context (one engine run,
// the profile cache, the worker pool). The zero Scope is valid and
// disabled: every emitter on it returns immediately without allocating,
// which is what makes instrumented hot paths free when no bus is installed.
type Scope struct {
	bus   *Bus
	label string
}

// Scope returns a handle labeled with the emitting context. Calling it on
// a nil bus returns the disabled zero Scope, so
// obs.Active().Scope(label) is always safe.
func (b *Bus) Scope(label string) Scope {
	if b == nil {
		return Scope{}
	}
	return Scope{bus: b, label: label}
}

// Enabled reports whether events emitted on this scope reach a bus.
func (s Scope) Enabled() bool { return s.bus != nil }

// Decision records one Algorithm 2 controller decision: the action chosen
// for pod from the measured load and latency slack, with the window p99
// the slack was computed from and the decision-branch reason.
func (s Scope) Decision(atNanos int64, pod, action string, load, slack, p99 float64, reason string) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{
		Kind: KindDecision, At: atNanos, Scope: s.label,
		Pod: pod, Op: action, Load: load, Slack: slack, P99: p99, Reason: reason,
	})
}

// Tick records one engine simulation step: the offered load fraction and
// QPS, the number of end-to-end latency samples drawn, and the tick's
// virtual duration.
func (s Scope) Tick(atNanos, durNanos int64, load, qps float64, samples int) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{
		Kind: KindTick, At: atNanos, Dur: durNanos, Scope: s.label,
		Load: load, QPS: qps, N: samples,
	})
}

// BE records a BE-instance lifecycle transition (op one of launch, kill,
// suspend, resume, grow, cut) with the instance's granted cores and LLC
// ways after the transition.
func (s Scope) BE(atNanos int64, pod, id, op string, cores, llcWays int) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{
		Kind: KindBE, At: atNanos, Scope: s.label,
		Pod: pod, ID: id, Op: op, N: cores, M: llcWays,
	})
}

// Cache records one content-keyed cache lookup (cache names which cache,
// e.g. "profile" or "slacklimit").
func (s Scope) Cache(cache, key string, hit bool) {
	if s.bus == nil {
		return
	}
	op := "miss"
	if hit {
		op = "hit"
	}
	s.bus.publish(Event{
		Kind: KindCache, At: NoTime, Scope: s.label,
		Pod: cache, ID: key, Op: op,
	})
}

// Pool records one worker-pool dispatch: items of work fanned out across
// workers goroutines.
func (s Scope) Pool(items, workers int) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{Kind: KindPool, At: NoTime, Scope: s.label, N: items, M: workers})
}

// RunPhase brackets one engine run (op "start" or "end"); reason carries
// the run's configuration summary.
func (s Scope) RunPhase(atNanos int64, op, reason string) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{Kind: KindRun, At: atNanos, Scope: s.label, Op: op, Reason: reason})
}

// Experiment brackets one registry experiment (op "start" or "end").
func (s Scope) Experiment(id, op string) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{Kind: KindExperiment, At: NoTime, Scope: s.label, ID: id, Op: op})
}

// Fault records a fault-injection edge: kind names the fault class
// (internal/faults), op is "start" or "end", pod the targeted Servpod
// ("" = service-wide), magnitude the fault's primary parameter (load or
// pressure multiplier, frequency cap, mu skew), and reason any extra
// detail (dropout mode, restart delay).
func (s Scope) Fault(atNanos int64, pod, kind, op string, magnitude float64, reason string) {
	if s.bus == nil {
		return
	}
	s.bus.publish(Event{
		Kind: KindFault, At: atNanos, Scope: s.label,
		Pod: pod, ID: kind, Op: op, Load: magnitude, Reason: reason,
	})
}

// ---------------------------------------------------------------------------
// Instruments. All are nil-safe: a nil *Counter/*Gauge/*Histogram no-ops,
// so consumers cache instrument pointers once (nil when the bus is
// disabled) and call them unconditionally on hot paths.

// Series keys render through the shared exposition grammar (SeriesKey in
// promtext.go), so instrument registration, the metrics sink and the
// calibration importer all agree on the same name{k="v"} spelling.

// Counter is a monotonically increasing instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil counter (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil counter (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (creating on first use) the counter with the given name
// and label pairs. Returns nil on a nil bus.
func (b *Bus) Counter(name string, labels ...string) *Counter {
	if b == nil {
		return nil
	}
	key := SeriesKey(name, labels)
	b.imu.Lock()
	defer b.imu.Unlock()
	c, ok := b.counters[key]
	if !ok {
		c = &Counter{}
		b.counters[key] = c
	}
	return c
}

// Gauge is a last-value instrument holding a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil gauge (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop). Safe on a nil gauge (no-op).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns (creating on first use) the gauge with the given name and
// label pairs. Returns nil on a nil bus.
func (b *Bus) Gauge(name string, labels ...string) *Gauge {
	if b == nil {
		return nil
	}
	key := SeriesKey(name, labels)
	b.imu.Lock()
	defer b.imu.Unlock()
	g, ok := b.gauges[key]
	if !ok {
		g = &Gauge{}
		b.gauges[key] = g
	}
	return g
}

// DefBuckets are general-purpose histogram bounds for values in [0, 1]
// (slack fractions); LatencyBuckets suit second-denominated tails.
var (
	DefBuckets     = []float64{-0.25, -0.1, 0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1}
	LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
)

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records v. Safe on a nil histogram (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket bounds and label pairs; bounds are fixed by the series'
// first call. Returns nil on a nil bus. Series of one family should share
// bounds (per-pod latency series do), so a family snapshot reads as one
// coherent Prometheus histogram family.
func (b *Bus) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if b == nil {
		return nil
	}
	key := SeriesKey(name, labels)
	b.imu.Lock()
	defer b.imu.Unlock()
	h, ok := b.histograms[key]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		b.histograms[key] = h
	}
	return h
}
