package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// Sink consumes events published on a Bus. Emit is always called under the
// bus mutex, so implementations need no locking of their own and their
// output stays line-atomic under parallel runs. The *Event is only valid
// for the duration of the call.
type Sink interface {
	Emit(ev *Event)
	// Close flushes buffered output. The bus calls it from Bus.Close.
	Close() error
}

// ---------------------------------------------------------------------------
// JSONL sink

// JSONLSink writes one JSON object per event, in publication order. Fields
// are emitted per kind (decisions carry action/load/slack/p99/reason, ticks
// carry load/qps/samples/dur, and so on); "at" is virtual seconds since the
// simulation start and is omitted for events outside any simulation clock.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller owns any
// underlying file; Close flushes but does not close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 64<<10)}
}

// Emit serializes one event as a JSON line.
func (s *JSONLSink) Emit(ev *Event) {
	b := s.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.At != NoTime {
		b = append(b, `,"at":`...)
		b = appendFloat(b, float64(ev.At)/1e9)
	}
	b = appendStr(b, "scope", ev.Scope)
	switch ev.Kind {
	case KindDecision:
		b = appendStr(b, "pod", ev.Pod)
		b = appendStr(b, "action", ev.Op)
		b = append(b, `,"load":`...)
		b = appendFloat(b, ev.Load)
		b = append(b, `,"slack":`...)
		b = appendFloat(b, ev.Slack)
		b = append(b, `,"p99":`...)
		b = appendFloat(b, ev.P99)
		b = appendStr(b, "reason", ev.Reason)
	case KindTick:
		b = append(b, `,"dur":`...)
		b = appendFloat(b, float64(ev.Dur)/1e9)
		b = append(b, `,"load":`...)
		b = appendFloat(b, ev.Load)
		b = append(b, `,"qps":`...)
		b = appendFloat(b, ev.QPS)
		b = append(b, `,"samples":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
	case KindBE:
		b = appendStr(b, "pod", ev.Pod)
		b = appendStr(b, "id", ev.ID)
		b = appendStr(b, "op", ev.Op)
		b = append(b, `,"cores":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
		b = append(b, `,"ways":`...)
		b = strconv.AppendInt(b, int64(ev.M), 10)
	case KindCache:
		b = appendStr(b, "cache", ev.Pod)
		b = appendStr(b, "result", ev.Op)
		b = appendStr(b, "key", ev.ID)
	case KindPool:
		b = append(b, `,"items":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
		b = append(b, `,"workers":`...)
		b = strconv.AppendInt(b, int64(ev.M), 10)
	case KindRun:
		b = appendStr(b, "phase", ev.Op)
		b = appendStr(b, "config", ev.Reason)
	case KindExperiment:
		b = appendStr(b, "id", ev.ID)
		b = appendStr(b, "phase", ev.Op)
	case KindFault:
		b = appendStr(b, "fault", ev.ID)
		b = appendStr(b, "phase", ev.Op)
		b = appendStr(b, "pod", ev.Pod)
		b = append(b, `,"magnitude":`...)
		b = appendFloat(b, ev.Load)
		b = appendStr(b, "detail", ev.Reason)
	}
	b = append(b, '}', '\n')
	s.buf = b
	s.w.Write(b)
}

// Close flushes buffered lines.
func (s *JSONLSink) Close() error { return s.w.Flush() }

// appendStr appends ,"key":"value" with JSON escaping, skipping empty
// values so lines stay compact.
func appendStr(b []byte, key, val string) []byte {
	if val == "" {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return appendQuoted(b, val)
}

// appendQuoted appends a JSON string literal. Scope labels, cache keys and
// reasons are plain ASCII by construction; quotes, backslashes and control
// bytes are escaped for safety.
func appendQuoted(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendFloat appends v in Go's shortest-roundtrip decimal form — the same
// deterministic rendering for a given bit pattern on every platform. NaN
// and the infinities (possible under measurement-dropout faults: a blind
// controller's slack is NaN) render as null, since bare NaN/Inf tokens are
// not valid JSON.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// ---------------------------------------------------------------------------
// Chrome trace_event sink

// ChromeSink writes the Chrome trace_event JSON format for chrome://tracing
// (or Perfetto): each scope becomes a process, each Servpod a thread; ticks
// are duration events, decisions and BE transitions instant events. Load it
// via chrome://tracing "Load" or ui.perfetto.dev.
type ChromeSink struct {
	w     *bufio.Writer
	buf   []byte
	first bool
	pids  map[string]int
	tids  map[string]int
}

// NewChromeSink returns a sink writing one trace_event JSON document to w.
// The caller owns any underlying file; Close writes the closing bracket
// and flushes but does not close it.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{
		w:     bufio.NewWriterSize(w, 64<<10),
		first: true,
		pids:  make(map[string]int),
		tids:  make(map[string]int),
	}
	s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

// pid interns the scope as a process id, emitting the process_name
// metadata event on first sight.
func (s *ChromeSink) pid(scope string) int {
	p, ok := s.pids[scope]
	if !ok {
		p = len(s.pids) + 1
		s.pids[scope] = p
		s.meta("process_name", p, 0, scope)
	}
	return p
}

// tid interns the pod as a thread id within scope (0 = the scope's main
// track), emitting thread_name metadata on first sight.
func (s *ChromeSink) tid(scope string, pid int, pod string) int {
	if pod == "" {
		return 0
	}
	key := scope + "\x00" + pod
	t, ok := s.tids[key]
	if !ok {
		t = len(s.tids) + 1
		s.tids[key] = t
		s.meta("thread_name", pid, t, pod)
	}
	return t
}

func (s *ChromeSink) meta(name string, pid, tid int, value string) {
	b := s.buf[:0]
	b = s.sep(b)
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{"name":`...)
	b = appendQuoted(b, value)
	b = append(b, '}', '}')
	s.buf = b
	s.w.Write(b)
}

func (s *ChromeSink) sep(b []byte) []byte {
	if s.first {
		s.first = false
		return b
	}
	return append(b, ',')
}

// Emit serializes one event. Events without a simulation timestamp render
// at ts 0 on their scope's main track.
func (s *ChromeSink) Emit(ev *Event) {
	pid := s.pid(ev.Scope)
	tid := s.tid(ev.Scope, pid, ev.Pod)
	ts := 0.0
	if ev.At != NoTime {
		ts = float64(ev.At) / 1e3 // ns -> µs
	}

	name, cat, ph := "", "", "i"
	switch ev.Kind {
	case KindTick:
		name, cat, ph = "tick", "engine", "X"
	case KindDecision:
		name, cat = ev.Op, "decision"
	case KindBE:
		name, cat = "be:"+ev.Op, "be"
	case KindCache:
		name, cat = "cache:"+ev.Op, "cache"
	case KindPool:
		name, cat = "pool", "pool"
	case KindRun:
		name, cat = "run:"+ev.Op, "run"
	case KindExperiment:
		name, cat = "experiment:"+ev.Op, "experiment"
	case KindFault:
		name, cat = "fault:"+ev.ID+":"+ev.Op, "fault"
	default:
		name, cat = ev.Kind.String(), "misc"
	}

	b := s.buf[:0]
	b = s.sep(b)
	b = append(b, `{"name":`...)
	b = appendQuoted(b, name)
	b = append(b, `,"cat":"`...)
	b = append(b, cat...)
	b = append(b, `","ph":"`...)
	b = append(b, ph...)
	b = append(b, `","ts":`...)
	b = appendFloat(b, ts)
	if ph == "X" {
		b = append(b, `,"dur":`...)
		b = appendFloat(b, float64(ev.Dur)/1e3)
	} else if ph == "i" {
		b = append(b, `,"s":"t"`...)
	}
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{`...)
	switch ev.Kind {
	case KindDecision:
		b = append(b, `"load":`...)
		b = appendFloat(b, ev.Load)
		b = append(b, `,"slack":`...)
		b = appendFloat(b, ev.Slack)
		b = append(b, `,"p99":`...)
		b = appendFloat(b, ev.P99)
		if ev.Reason != "" {
			b = append(b, `,"reason":`...)
			b = appendQuoted(b, ev.Reason)
		}
	case KindTick:
		b = append(b, `"load":`...)
		b = appendFloat(b, ev.Load)
		b = append(b, `,"qps":`...)
		b = appendFloat(b, ev.QPS)
		b = append(b, `,"samples":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
	case KindBE:
		b = append(b, `"id":`...)
		b = appendQuoted(b, ev.ID)
		b = append(b, `,"cores":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
		b = append(b, `,"ways":`...)
		b = strconv.AppendInt(b, int64(ev.M), 10)
	case KindCache:
		b = append(b, `"key":`...)
		b = appendQuoted(b, ev.ID)
	case KindPool:
		b = append(b, `"items":`...)
		b = strconv.AppendInt(b, int64(ev.N), 10)
		b = append(b, `,"workers":`...)
		b = strconv.AppendInt(b, int64(ev.M), 10)
	case KindRun:
		if ev.Reason != "" {
			b = append(b, `"config":`...)
			b = appendQuoted(b, ev.Reason)
		}
	case KindExperiment:
		b = append(b, `"id":`...)
		b = appendQuoted(b, ev.ID)
	case KindFault:
		b = append(b, `"magnitude":`...)
		b = appendFloat(b, ev.Load)
		if ev.Reason != "" {
			b = append(b, `,"detail":`...)
			b = appendQuoted(b, ev.Reason)
		}
	}
	b = append(b, '}', '}')
	s.buf = b
	s.w.Write(b)
}

// Close writes the closing bracket and flushes.
func (s *ChromeSink) Close() error {
	s.w.WriteString("]}\n")
	return s.w.Flush()
}

// ---------------------------------------------------------------------------
// Memory sink (tests)

// MemorySink retains every event in memory; tests assert against Events.
type MemorySink struct {
	mu  sync.Mutex
	evs []Event
}

// Emit appends a copy of the event.
func (s *MemorySink) Emit(ev *Event) {
	s.mu.Lock()
	s.evs = append(s.evs, *ev)
	s.mu.Unlock()
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// Events returns a copy of the captured events in publication order.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.evs...)
}

// Reset discards captured events.
func (s *MemorySink) Reset() {
	s.mu.Lock()
	s.evs = nil
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Prometheus text-format snapshot

// WriteMetrics writes every instrument registered on the bus in Prometheus
// text exposition format. Families are sorted by name and series within a
// family by key, so successive snapshots diff cleanly; histogram buckets
// render cumulatively in bound order (the le ordering the exposition
// format requires) ending at +Inf, followed by _sum and _count. Every
// line goes through the shared grammar of promtext.go, which is what the
// calibration importer parses — the round-trip is pinned by test.
func (b *Bus) WriteMetrics(w io.Writer) error {
	if b == nil {
		return nil
	}
	points := b.Snapshot()
	prevFamily := ""
	for _, p := range points {
		if p.Name != prevFamily {
			prevFamily = p.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Type); err != nil {
				return err
			}
		}
		switch p.Type {
		case "histogram":
			for i, bound := range p.Bounds {
				if _, err := fmt.Fprintf(w, "%s %d\n",
					BucketKey(p.Name, p.Labels, bound), p.Cumulative[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n",
				BucketKey(p.Name, p.Labels, math.Inf(1)), p.Cumulative[len(p.Bounds)]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n",
				SeriesKey(p.Name+"_sum", p.Labels), FormatMetricValue(p.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n",
				SeriesKey(p.Name+"_count", p.Labels), p.Count); err != nil {
				return err
			}
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", p.Key, uint64(p.Value)); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", p.Key, FormatMetricValue(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
