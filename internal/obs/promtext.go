package obs

// This file is the single source of truth for the Prometheus text
// exposition grammar the repo speaks: how a series key renders
// (name{k1="v1",k2="v2"}), how label values escape, and how float values
// format. Both the metrics sink (WriteMetrics) and the calibration
// importer (internal/calibration) go through these helpers, so the writer
// and the parser cannot drift: every key the sink emits parses back to
// the same (name, labels) pair, which the round-trip property test in
// internal/calibration pins.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SeriesKey renders a metric name plus label pairs in Prometheus
// exposition form: name{k1="v1",k2="v2"}. Labels must come in pairs;
// values are escaped per the exposition format (backslash, double quote
// and newline). A name with no labels renders bare.
func SeriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(labels[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// EscapeLabelValue escapes a label value for the exposition format:
// backslash, double quote and line feed, exactly the three escapes the
// format defines. Clean values (the common case) are returned unchanged
// without allocating.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// UnescapeLabelValue is the exact inverse of EscapeLabelValue. A
// backslash followed by anything other than \, " or n is a grammar error.
func UnescapeLabelValue(v string) (string, error) {
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("dangling backslash")
		}
		switch v[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape %q", `\`+string(v[i]))
		}
	}
	return sb.String(), nil
}

// ParseSeriesKey is the inverse of SeriesKey: it splits a rendered series
// key back into the metric name and the alternating label key/value
// pairs, unescaping values. It accepts exactly what SeriesKey produces
// (plus insignificant whitespace-free external variants with the same
// shape) and reports a descriptive error otherwise.
func ParseSeriesKey(key string) (name string, labels []string, err error) {
	brace := strings.IndexByte(key, '{')
	if brace < 0 {
		if key == "" {
			return "", nil, fmt.Errorf("empty metric name")
		}
		return key, nil, nil
	}
	name = key[:brace]
	if name == "" {
		return "", nil, fmt.Errorf("empty metric name")
	}
	if !strings.HasSuffix(key, "}") {
		return "", nil, fmt.Errorf("unterminated label set")
	}
	body := key[brace+1 : len(key)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq <= 0 {
			return "", nil, fmt.Errorf("malformed label pair near %q", body)
		}
		lname := body[:eq]
		rest := body[eq+2:]
		// Find the closing quote, honoring escapes.
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("unterminated label value for %q", lname)
		}
		val, uerr := UnescapeLabelValue(rest[:end])
		if uerr != nil {
			return "", nil, fmt.Errorf("label %q: %v", lname, uerr)
		}
		labels = append(labels, lname, val)
		body = rest[end+1:]
		if len(body) > 0 {
			if body[0] != ',' {
				return "", nil, fmt.Errorf("expected ',' between labels, got %q", body)
			}
			body = body[1:]
			if body == "" {
				return "", nil, fmt.Errorf("trailing comma in label set")
			}
		}
	}
	return name, labels, nil
}

// FormatMetricValue renders a float in Go's shortest-roundtrip decimal
// form — the deterministic rendering the sink has always used. +Inf, -Inf
// and NaN render as the exposition format's literal spellings, which
// FormatFloat already produces.
func FormatMetricValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseMetricValue is the inverse of FormatMetricValue; it also accepts
// the exposition spellings +Inf/-Inf/NaN (strconv does).
func ParseMetricValue(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// BucketKey renders the series key of one histogram bucket line:
// name_bucket{<labels,>le="<bound>"} with the le label last, as the
// exposition format convention has it.
func BucketKey(name string, labels []string, bound float64) string {
	le := "+Inf"
	if !math.IsInf(bound, 1) {
		le = FormatMetricValue(bound)
	}
	return SeriesKey(name+"_bucket", append(append([]string{}, labels...), "le", le))
}

// MetricPoint is one instrument's exported state, the unit of
// Bus.Snapshot. Counters and gauges carry Value; histograms carry Bounds
// (finite upper bounds), Cumulative (one cumulative count per bound plus
// the +Inf bucket), Sum and Count.
type MetricPoint struct {
	// Name is the metric family name; Key the full series key
	// (SeriesKey(Name, Labels)).
	Name string
	Key  string
	// Labels are the alternating key/value pairs the instrument was
	// registered with.
	Labels []string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Value is the counter count (exact below 2^53) or gauge value.
	Value float64
	// Bounds are the finite bucket upper bounds; Cumulative has
	// len(Bounds)+1 entries, cumulative in bound order, ending at +Inf.
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot returns the state of every instrument registered on the bus,
// sorted by family name then series key — the same deterministic order
// WriteMetrics renders. Safe on a nil bus (returns nil).
func (b *Bus) Snapshot() []MetricPoint {
	if b == nil {
		return nil
	}
	var out []MetricPoint
	b.imu.Lock()
	for key, c := range b.counters {
		out = append(out, snapPoint(key, "counter", float64(c.Value()), nil))
	}
	for key, g := range b.gauges {
		out = append(out, snapPoint(key, "gauge", g.Value(), nil))
	}
	for key, h := range b.histograms {
		p := snapPoint(key, "histogram", 0, h)
		out = append(out, p)
	}
	b.imu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// snapPoint builds one MetricPoint from a registered series key. Keys are
// rendered by SeriesKey at registration, so parsing back cannot fail; a
// corrupted key degrades to an unlabeled family of the full key.
func snapPoint(key, typ string, value float64, h *Histogram) MetricPoint {
	name, labels, err := ParseSeriesKey(key)
	if err != nil {
		name, labels = key, nil
	}
	p := MetricPoint{Name: name, Key: key, Labels: labels, Type: typ, Value: value}
	if h != nil {
		p.Bounds = append([]float64(nil), h.bounds...)
		p.Cumulative = make([]uint64, len(h.bounds)+1)
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			p.Cumulative[i] = cum
		}
		p.Sum = math.Float64frombits(h.sumBits.Load())
		p.Count = h.count.Load()
	}
	return p
}
