package obs

import (
	"fmt"
	"io"
	"sync"
)

// SyncWriter serializes writes to an underlying writer under one mutex, so
// diagnostic lines emitted from concurrent goroutines (parallel experiment
// workers reporting progress, sinks noting errors) never interleave
// mid-line. It buffers nothing: every Write reaches the underlying writer
// before returning, fixing the unflushed-writer variant of the same bug.
//
// All CLI diagnostic output (the -jobs stderr summary, per-experiment
// timing, trace summaries) goes through one SyncWriter per process; the
// experiment tables on stdout are untouched.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w. A nil w yields a writer that discards.
func NewSyncWriter(w io.Writer) *SyncWriter {
	return &SyncWriter{w: w}
}

// Write forwards p to the underlying writer under the mutex. Callers
// should format a complete line (or group of lines) into one Write call —
// fmt.Fprintf does — so the lock brackets whole lines.
func (s *SyncWriter) Write(p []byte) (int, error) {
	if s == nil || s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Printf formats and writes one diagnostic message atomically.
func (s *SyncWriter) Printf(format string, args ...interface{}) {
	fmt.Fprintf(s, format, args...)
}
