//go:build !rhythmstrict

package metrics

// strictDefault is the default for Strict in ordinary builds: clamp
// backwards timestamps instead of panicking.
const strictDefault = false
