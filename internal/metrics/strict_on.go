//go:build rhythmstrict

package metrics

// strictDefault under -tags rhythmstrict: a backwards timestamp is a caller
// bug and panics immediately instead of being clamped.
const strictDefault = true
