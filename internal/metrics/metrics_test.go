package metrics

import (
	"math"
	"testing"
	"time"

	"rhythm/internal/sim"
)

func TestTailTrackerWindowPruning(t *testing.T) {
	tt := NewTailTracker(time.Second)
	tt.Add(sim.FromSeconds(0), 10)
	tt.Add(sim.FromSeconds(0.5), 20)
	tt.Add(sim.FromSeconds(2), 30) // evicts both earlier samples
	if tt.N() != 1 {
		t.Fatalf("window holds %d samples, want 1", tt.N())
	}
	if got := tt.P99(); got != 30 {
		t.Fatalf("p99 = %v, want 30", got)
	}
}

func TestTailTrackerQuantile(t *testing.T) {
	tt := NewTailTracker(time.Minute)
	for i := 1; i <= 100; i++ {
		tt.Add(sim.FromSeconds(float64(i)/1000), float64(i))
	}
	if got := tt.Quantile(0.5); math.Abs(got-50.5) > 1 {
		t.Fatalf("median = %v", got)
	}
	p99 := tt.P99()
	if p99 < 99 || p99 > 100 {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestTailTrackerEmpty(t *testing.T) {
	tt := NewTailTracker(time.Second)
	if tt.P99() != 0 || tt.N() != 0 {
		t.Fatal("empty tracker should report 0")
	}
}

func TestTailTrackerWorst(t *testing.T) {
	tt := NewTailTracker(time.Second)
	tt.Add(sim.FromSeconds(0.1), 100)
	tt.ObserveWindow(sim.FromSeconds(0.1))
	tt.Add(sim.FromSeconds(2), 50) // first sample pruned
	tt.ObserveWindow(sim.FromSeconds(2))
	worst, at := tt.Worst()
	if worst != 100 || at != sim.FromSeconds(0.1) {
		t.Fatalf("worst = %v at %v", worst, at)
	}
	tt.ResetWorst()
	if w, _ := tt.Worst(); w != 0 {
		t.Fatal("reset did not clear worst")
	}
}

func TestTailTrackerDefaultWindow(t *testing.T) {
	tt := NewTailTracker(0)
	tt.Add(sim.FromSeconds(0), 1)
	tt.Add(sim.FromSeconds(0.5), 2)
	if tt.N() != 2 {
		t.Fatal("default window should be one second")
	}
}

func TestEMU(t *testing.T) {
	if got := EMU(0.65, 0.4); math.Abs(got-1.05) > 1e-12 {
		t.Fatalf("EMU = %v, want 1.05 (may exceed 1 per §5.1)", got)
	}
	if EMU(-1, -1) != 0 {
		t.Fatal("negative inputs should clamp")
	}
}

func TestUsageTimeWeighting(t *testing.T) {
	var u Usage
	u.Observe(1.0, time.Second)
	u.Observe(0.0, 3*time.Second)
	if got := u.Mean(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mean = %v, want 0.25", got)
	}
	u.Observe(0.5, 0) // ignored
	if got := u.Mean(); math.Abs(got-0.25) > 1e-12 {
		t.Fatal("zero-duration observation should not count")
	}
	var empty Usage
	if empty.Mean() != 0 {
		t.Fatal("empty usage mean should be 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "load"
	s.Append(sim.FromSeconds(1), 0.5)
	s.Append(sim.FromSeconds(2), 0.8)
	s.Append(sim.FromSeconds(3), 0.2)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max() != 0.8 {
		t.Fatalf("max = %v", s.Max())
	}
	if math.Abs(s.Mean()-0.5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if (&Series{}).Max() != 0 {
		t.Fatal("empty series max should be 0")
	}
}
