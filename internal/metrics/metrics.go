// Package metrics implements the measurement side of the evaluation:
// sliding-window tail-latency tracking (the per-second p99 the paper's
// controllers and SLA definition use), utilization accounting, and the
// EMU (effective machine utilization) throughput metric of §5.1.
package metrics

import (
	"sort"
	"time"

	"rhythm/internal/sim"
)

// TailTracker keeps latency samples over a sliding window and reports tail
// percentiles, mirroring the paper's per-second p99 monitoring.
type TailTracker struct {
	window  time.Duration
	times   []sim.Time
	values  []float64
	worstAt sim.Time
	worst   float64
	// scratch avoids re-allocating the sort buffer on every quantile.
	scratch []float64
}

// NewTailTracker returns a tracker with the given sliding window.
func NewTailTracker(window time.Duration) *TailTracker {
	if window <= 0 {
		window = time.Second
	}
	return &TailTracker{window: window}
}

// Add records a latency sample observed at time t. Samples must arrive in
// non-decreasing time order (the simulation is single-threaded).
func (tt *TailTracker) Add(t sim.Time, v float64) {
	tt.times = append(tt.times, t)
	tt.values = append(tt.values, v)
	tt.prune(t)
}

// prune drops samples older than the window.
func (tt *TailTracker) prune(now sim.Time) {
	cut := 0
	for cut < len(tt.times) && now.Sub(tt.times[cut]) > tt.window {
		cut++
	}
	if cut > 0 {
		tt.times = tt.times[cut:]
		tt.values = tt.values[cut:]
	}
}

// N returns the number of samples currently in the window.
func (tt *TailTracker) N() int { return len(tt.values) }

// Quantile returns the q-quantile over the current window (0 when empty).
func (tt *TailTracker) Quantile(q float64) float64 {
	if len(tt.values) == 0 {
		return 0
	}
	tt.scratch = append(tt.scratch[:0], tt.values...)
	sort.Float64s(tt.scratch)
	return sim.QuantileSorted(tt.scratch, q)
}

// P99 returns the 99th percentile over the current window.
func (tt *TailTracker) P99() float64 { return tt.Quantile(0.99) }

// ObserveWindow records the current window p99 at time t into the running
// worst-case (the paper's SLA definition: worst per-second p99).
func (tt *TailTracker) ObserveWindow(t sim.Time) {
	p := tt.P99()
	if p > tt.worst {
		tt.worst = p
		tt.worstAt = t
	}
}

// Worst returns the worst window p99 observed so far and when it occurred.
func (tt *TailTracker) Worst() (float64, sim.Time) { return tt.worst, tt.worstAt }

// ResetWorst clears the running worst-case (used between profiling phases).
func (tt *TailTracker) ResetWorst() { tt.worst, tt.worstAt = 0, 0 }

// EMU is the effective machine utilization of §5.1:
// LC throughput (load normalized to max load) plus BE throughput (jobs
// finished per hour normalized to a solo machine run). It may exceed 1.
func EMU(lcLoadFrac, beThroughput float64) float64 {
	if lcLoadFrac < 0 {
		lcLoadFrac = 0
	}
	if beThroughput < 0 {
		beThroughput = 0
	}
	return lcLoadFrac + beThroughput
}

// Usage accumulates time-weighted utilization of one quantity.
type Usage struct {
	weighted float64 // integral of utilization over time
	duration float64 // total observed seconds
}

// Observe records utilization u (0..1+) held for dt.
func (u *Usage) Observe(util float64, dt time.Duration) {
	if dt <= 0 {
		return
	}
	s := dt.Seconds()
	u.weighted += util * s
	u.duration += s
}

// Mean returns the time-weighted mean utilization (0 when nothing was
// observed).
func (u *Usage) Mean() float64 {
	if u.duration == 0 {
		return 0
	}
	return u.weighted / u.duration
}

// Series is a named time series collected during a run (Fig. 17's rows).
type Series struct {
	Name   string
	Times  []float64 // seconds
	Values []float64
}

// Append adds one point.
func (s *Series) Append(t sim.Time, v float64) {
	s.Times = append(s.Times, t.Seconds())
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values.
func (s *Series) Mean() float64 { return sim.Mean(s.Values) }
