// Package metrics implements the measurement side of the evaluation:
// sliding-window tail-latency tracking (the per-second p99 the paper's
// controllers and SLA definition use), utilization accounting, and the
// EMU (effective machine utilization) throughput metric of §5.1.
//
// TailTracker is the hot path: every engine tick adds SamplesPerTick
// samples but only every control tick queries the window p99, over
// millions of requests per experiment. The cost model is therefore
// write-heavy: storage is a plain ring buffer where adds and evictions are
// O(1) slot writes with no value-order bookkeeping at all, and a query
// copies the live window into a reused scratch buffer and runs the
// deterministic Floyd–Rivest selection (`sim.SelectQuantile`) — O(W) per
// query instead of the sorted-snapshot reconcile (batch sort + full-window
// merge) the previous tracker paid on every queried window change. With
// ~80 adds between queries that reconcile dominated the engine tick;
// selection-on-read moves the entire cost to the rare reader. The results
// are exact, not approximate: order statistics are permutation-invariant
// and SelectQuantile is differentially pinned bit-equal to
// sort+sim.QuantileSorted, so every quantile matches the seed tracker's
// copy-and-sort to the last bit — the differential test in this package
// pins that down (and `make check` runs it).
package metrics

import (
	"fmt"
	"time"

	"rhythm/internal/sim"
)

// Strict controls how TailTracker.Add treats a timestamp that runs
// backwards (the simulation contract is non-decreasing time). When false —
// the default — the sample's time is clamped to the latest time already
// seen, so the window can never silently widen; when true, Add panics and
// surfaces the caller bug. Build with -tags rhythmstrict to default to
// panicking.
var Strict = strictDefault

// sample is one (time, value) observation in arrival order.
type sample struct {
	t sim.Time
	v float64
}

// TailTracker keeps latency samples over a sliding window and reports tail
// percentiles, mirroring the paper's per-second p99 monitoring.
//
// Storage is a power-of-two ring buffer: eviction recycles slots in place,
// so the footprint is bounded by the window's high-water occupancy instead
// of growing with the total number of samples ever added (the re-slicing
// tracker this replaced leaked its head on every prune). There is no
// value-order index: a query copies the live window into scratch and
// selects the order statistic there, so writes touch exactly one ring slot.
type TailTracker struct {
	window time.Duration
	buf    []sample // ring storage; len(buf) is the capacity, a power of two
	head   int      // index of the oldest live sample
	n      int      // live samples
	latest sim.Time // newest timestamp seen (Add clamps to this)

	// scratch is the query buffer: Quantile copies the live window values
	// here and partially reorders them in place (SelectQuantile). Bounded
	// by the window's high-water occupancy, like the ring.
	scratch []float64

	worstAt sim.Time
	worst   float64
}

// NewTailTracker returns a tracker with the given sliding window.
func NewTailTracker(window time.Duration) *TailTracker {
	if window <= 0 {
		window = time.Second
	}
	return &TailTracker{window: window}
}

// Add records a latency sample observed at time t. Samples must arrive in
// non-decreasing time order (the simulation is single-threaded); a
// backwards t is clamped to the latest time seen, or panics when Strict.
func (tt *TailTracker) Add(t sim.Time, v float64) {
	if t < tt.latest {
		if Strict {
			panic(fmt.Sprintf("metrics: TailTracker.Add time ran backwards: %v after %v", t, tt.latest))
		}
		t = tt.latest
	}
	tt.latest = t
	if tt.n == len(tt.buf) {
		tt.grow()
	}
	tt.buf[(tt.head+tt.n)&(len(tt.buf)-1)] = sample{t: t, v: v}
	tt.n++
	tt.prune(t)
}

// AddBatch records len(vs) samples all observed at time t, in order. It is
// equivalent to calling Add(t, v) for each v — the engine's sampling pass
// produces a whole tick's draws at one timestamp — but pays the
// clamp/Strict check, the capacity check and the prune exactly once.
func (tt *TailTracker) AddBatch(t sim.Time, vs []float64) {
	if len(vs) == 0 {
		return
	}
	if t < tt.latest {
		if Strict {
			panic(fmt.Sprintf("metrics: TailTracker.Add time ran backwards: %v after %v", t, tt.latest))
		}
		t = tt.latest
	}
	tt.latest = t
	for tt.n+len(vs) > len(tt.buf) {
		tt.grow()
	}
	mask := len(tt.buf) - 1
	for i, v := range vs {
		tt.buf[(tt.head+tt.n+i)&mask] = sample{t: t, v: v}
	}
	tt.n += len(vs)
	tt.prune(t)
}

// grow doubles the ring (64 slots minimum), restoring arrival order from
// the head.
func (tt *TailTracker) grow() {
	newCap := len(tt.buf) * 2
	if newCap == 0 {
		newCap = 64
	}
	buf := make([]sample, newCap)
	for i := 0; i < tt.n; i++ {
		buf[i] = tt.buf[(tt.head+i)&(len(tt.buf)-1)]
	}
	tt.buf = buf
	tt.head = 0
}

// prune drops samples older than the window.
func (tt *TailTracker) prune(now sim.Time) {
	for tt.n > 0 {
		if now.Sub(tt.buf[tt.head].t) <= tt.window {
			break
		}
		tt.head = (tt.head + 1) & (len(tt.buf) - 1)
		tt.n--
	}
}

// N returns the number of samples currently in the window.
func (tt *TailTracker) N() int { return tt.n }

// Cap returns the ring capacity in samples. It is bounded by twice the
// window's high-water occupancy (plus the 64-slot floor) — the regression
// test for the old tracker's unbounded growth reads it.
func (tt *TailTracker) Cap() int { return len(tt.buf) }

// Quantile returns the q-quantile over the current window (0 when empty).
// It copies the live window into scratch and runs sim.SelectQuantile —
// bit-equal to sorting the copy and evaluating sim.QuantileSorted (the
// seed tracker's computation), since order statistics are invariant under
// permutation and SelectQuantile is differentially pinned against exactly
// that oracle.
func (tt *TailTracker) Quantile(q float64) float64 {
	if tt.n == 0 {
		return 0
	}
	if cap(tt.scratch) < tt.n {
		tt.scratch = make([]float64, tt.n)
	}
	xs := tt.scratch[:tt.n]
	mask := len(tt.buf) - 1
	for i := range xs {
		xs[i] = tt.buf[(tt.head+i)&mask].v
	}
	return sim.SelectQuantile(xs, q)
}

// P99 returns the 99th percentile over the current window.
func (tt *TailTracker) P99() float64 { return tt.Quantile(0.99) }

// ObserveWindow records the current window p99 at time t into the running
// worst-case (the paper's SLA definition: worst per-second p99).
func (tt *TailTracker) ObserveWindow(t sim.Time) {
	p := tt.P99()
	if p > tt.worst {
		tt.worst = p
		tt.worstAt = t
	}
}

// Worst returns the worst window p99 observed so far and when it occurred.
func (tt *TailTracker) Worst() (float64, sim.Time) { return tt.worst, tt.worstAt }

// ResetWorst clears the running worst-case (used between profiling phases).
func (tt *TailTracker) ResetWorst() { tt.worst, tt.worstAt = 0, 0 }

// EMU is the effective machine utilization of §5.1:
// LC throughput (load normalized to max load) plus BE throughput (jobs
// finished per hour normalized to a solo machine run). It may exceed 1.
func EMU(lcLoadFrac, beThroughput float64) float64 {
	if lcLoadFrac < 0 {
		lcLoadFrac = 0
	}
	if beThroughput < 0 {
		beThroughput = 0
	}
	return lcLoadFrac + beThroughput
}

// Usage accumulates time-weighted utilization of one quantity.
type Usage struct {
	weighted float64 // integral of utilization over time
	duration float64 // total observed seconds
}

// Observe records utilization u (0..1+) held for dt.
func (u *Usage) Observe(util float64, dt time.Duration) {
	if dt <= 0 {
		return
	}
	s := dt.Seconds()
	u.weighted += util * s
	u.duration += s
}

// Mean returns the time-weighted mean utilization (0 when nothing was
// observed).
func (u *Usage) Mean() float64 {
	if u.duration == 0 {
		return 0
	}
	return u.weighted / u.duration
}

// Series is a named time series collected during a run (Fig. 17's rows).
type Series struct {
	Name   string
	Times  []float64 // seconds
	Values []float64
}

// Append adds one point.
func (s *Series) Append(t sim.Time, v float64) {
	s.Times = append(s.Times, t.Seconds())
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values.
func (s *Series) Mean() float64 { return sim.Mean(s.Values) }
