// Package metrics implements the measurement side of the evaluation:
// sliding-window tail-latency tracking (the per-second p99 the paper's
// controllers and SLA definition use), utilization accounting, and the
// EMU (effective machine utilization) throughput metric of §5.1.
//
// TailTracker is the hot path: every engine tick adds SamplesPerTick
// samples but only every control tick queries the window p99, over
// millions of requests per experiment. It is therefore incremental — a
// ring buffer for arrival order plus a sorted snapshot of the window that
// is reconciled lazily: adds and evictions append to pending batches in
// O(1), and a query folds the batches in by sorting only the batch and
// merging it through the snapshot in one linear pass, after which any
// quantile is an O(1) indexed lookup. That replaces the seed tracker's
// copy-and-sort of the whole window on every query (O(W log W)) with
// O(P log P + W) per reconcile, P being just the samples since the last
// query — and with nothing at all on repeated queries of an unchanged
// window. The results are exact, not approximate: the reconciled snapshot
// is precisely the sorted window, and quantiles go through the very same
// sim.QuantileSorted the seed used, which the differential test in this
// package pins down (and `make check` runs).
package metrics

import (
	"fmt"
	"sort"
	"time"

	"rhythm/internal/sim"
)

// Strict controls how TailTracker.Add treats a timestamp that runs
// backwards (the simulation contract is non-decreasing time). When false —
// the default — the sample's time is clamped to the latest time already
// seen, so the window can never silently widen; when true, Add panics and
// surfaces the caller bug. Build with -tags rhythmstrict to default to
// panicking.
var Strict = strictDefault

// sample is one (time, value) observation in arrival order.
type sample struct {
	t sim.Time
	v float64
}

// TailTracker keeps latency samples over a sliding window and reports tail
// percentiles, mirroring the paper's per-second p99 monitoring.
//
// Storage is a power-of-two ring buffer: eviction recycles slots in place,
// so the footprint is bounded by the window's high-water occupancy instead
// of growing with the total number of samples ever added (the re-slicing
// tracker this replaces leaked its head on every prune). The value-order
// side keeps the same bound: sorted/scratch ping-pong at window size, and
// the pending batches are force-reconciled before they outgrow the window.
type TailTracker struct {
	window time.Duration
	buf    []sample // ring storage; len(buf) is the capacity, a power of two
	head   int      // index of the oldest live sample
	n      int      // live samples
	latest sim.Time // newest timestamp seen (Add clamps to this)

	// Value order. sorted is the window multiset as of the last reconcile;
	// added/removed are the mutations since then, in arrival order. The
	// invariant is sorted ∪ added − removed == the live window, element
	// for element: reconcile sorts the two batches and folds them through
	// sorted in one merge pass, restoring added/removed to empty.
	sorted  []float64
	added   []float64
	removed []float64
	scratch []float64 // merge target, swapped with sorted each reconcile

	worstAt sim.Time
	worst   float64
}

// NewTailTracker returns a tracker with the given sliding window.
func NewTailTracker(window time.Duration) *TailTracker {
	if window <= 0 {
		window = time.Second
	}
	return &TailTracker{window: window}
}

// Add records a latency sample observed at time t. Samples must arrive in
// non-decreasing time order (the simulation is single-threaded); a
// backwards t is clamped to the latest time seen, or panics when Strict.
func (tt *TailTracker) Add(t sim.Time, v float64) {
	if t < tt.latest {
		if Strict {
			panic(fmt.Sprintf("metrics: TailTracker.Add time ran backwards: %v after %v", t, tt.latest))
		}
		t = tt.latest
	}
	tt.latest = t
	if tt.n == len(tt.buf) {
		tt.grow()
	}
	tt.buf[(tt.head+tt.n)&(len(tt.buf)-1)] = sample{t: t, v: v}
	tt.n++
	tt.added = append(tt.added, v)
	tt.prune(t)
	// Keep memory bounded even if the caller never queries: once the
	// pending batches reach window size, fold them in now.
	if len(tt.added)+len(tt.removed) > tt.n+64 {
		tt.reconcile()
	}
}

// grow doubles the ring (64 slots minimum), restoring arrival order from
// the head.
func (tt *TailTracker) grow() {
	newCap := len(tt.buf) * 2
	if newCap == 0 {
		newCap = 64
	}
	buf := make([]sample, newCap)
	for i := 0; i < tt.n; i++ {
		buf[i] = tt.buf[(tt.head+i)&(len(tt.buf)-1)]
	}
	tt.buf = buf
	tt.head = 0
}

// prune drops samples older than the window.
func (tt *TailTracker) prune(now sim.Time) {
	for tt.n > 0 {
		s := tt.buf[tt.head]
		if now.Sub(s.t) <= tt.window {
			break
		}
		tt.removed = append(tt.removed, s.v)
		tt.head = (tt.head + 1) & (len(tt.buf) - 1)
		tt.n--
	}
}

// reconcile folds the pending added/removed batches into the sorted
// snapshot: sort each batch (O(P log P)), then one merge pass over
// snapshot+batch that skips each removed value exactly once (O(W)). Both
// batches are multisets of values known to be in snapshot ∪ added, and the
// merge visits values in ascending order, so consuming removed front to
// front matches every eviction against one equal element.
func (tt *TailTracker) reconcile() {
	if len(tt.added) == 0 && len(tt.removed) == 0 {
		return
	}
	sort.Float64s(tt.added)
	sort.Float64s(tt.removed)
	base, add, rem := tt.sorted, tt.added, tt.removed
	out := tt.scratch[:0]
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(add) {
		var v float64
		if j >= len(add) || (i < len(base) && base[i] <= add[j]) {
			v = base[i]
			i++
		} else {
			v = add[j]
			j++
		}
		if k < len(rem) && rem[k] == v {
			k++
			continue
		}
		out = append(out, v)
	}
	tt.scratch = tt.sorted[:0]
	tt.sorted = out
	tt.added = tt.added[:0]
	tt.removed = tt.removed[:0]
}

// N returns the number of samples currently in the window.
func (tt *TailTracker) N() int { return tt.n }

// Cap returns the ring capacity in samples. It is bounded by twice the
// window's high-water occupancy (plus the 64-slot floor) — the regression
// test for the old tracker's unbounded growth reads it.
func (tt *TailTracker) Cap() int { return len(tt.buf) }

// Quantile returns the q-quantile over the current window (0 when empty).
// After reconciling any pending mutations it evaluates sim.QuantileSorted
// on the sorted snapshot — the identical computation the seed tracker ran
// on a fresh sorted copy, minus the copy and the sort. Repeated queries of
// an unchanged window are pure O(1) lookups.
func (tt *TailTracker) Quantile(q float64) float64 {
	if tt.n == 0 {
		return 0
	}
	tt.reconcile()
	return sim.QuantileSorted(tt.sorted, q)
}

// P99 returns the 99th percentile over the current window.
func (tt *TailTracker) P99() float64 { return tt.Quantile(0.99) }

// ObserveWindow records the current window p99 at time t into the running
// worst-case (the paper's SLA definition: worst per-second p99).
func (tt *TailTracker) ObserveWindow(t sim.Time) {
	p := tt.P99()
	if p > tt.worst {
		tt.worst = p
		tt.worstAt = t
	}
}

// Worst returns the worst window p99 observed so far and when it occurred.
func (tt *TailTracker) Worst() (float64, sim.Time) { return tt.worst, tt.worstAt }

// ResetWorst clears the running worst-case (used between profiling phases).
func (tt *TailTracker) ResetWorst() { tt.worst, tt.worstAt = 0, 0 }

// EMU is the effective machine utilization of §5.1:
// LC throughput (load normalized to max load) plus BE throughput (jobs
// finished per hour normalized to a solo machine run). It may exceed 1.
func EMU(lcLoadFrac, beThroughput float64) float64 {
	if lcLoadFrac < 0 {
		lcLoadFrac = 0
	}
	if beThroughput < 0 {
		beThroughput = 0
	}
	return lcLoadFrac + beThroughput
}

// Usage accumulates time-weighted utilization of one quantity.
type Usage struct {
	weighted float64 // integral of utilization over time
	duration float64 // total observed seconds
}

// Observe records utilization u (0..1+) held for dt.
func (u *Usage) Observe(util float64, dt time.Duration) {
	if dt <= 0 {
		return
	}
	s := dt.Seconds()
	u.weighted += util * s
	u.duration += s
}

// Mean returns the time-weighted mean utilization (0 when nothing was
// observed).
func (u *Usage) Mean() float64 {
	if u.duration == 0 {
		return 0
	}
	return u.weighted / u.duration
}

// Series is a named time series collected during a run (Fig. 17's rows).
type Series struct {
	Name   string
	Times  []float64 // seconds
	Values []float64
}

// Append adds one point.
func (s *Series) Append(t sim.Time, v float64) {
	s.Times = append(s.Times, t.Seconds())
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values.
func (s *Series) Mean() float64 { return sim.Mean(s.Values) }
