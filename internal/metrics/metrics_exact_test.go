package metrics

import (
	"sort"
	"strings"
	"testing"
	"time"

	"rhythm/internal/sim"
)

// refTracker is the seed implementation kept as the test oracle: append
// slices, prune by re-slicing, quantile by copy-and-sort. The incremental
// TailTracker must match it bit for bit on every query — that equality is
// what keeps all experiment tables byte-identical across the rewrite.
type refTracker struct {
	window time.Duration
	times  []sim.Time
	values []float64
	latest sim.Time
}

func (rt *refTracker) add(t sim.Time, v float64) {
	if t < rt.latest {
		t = rt.latest // same clamp contract as TailTracker.Add
	}
	rt.latest = t
	rt.times = append(rt.times, t)
	rt.values = append(rt.values, v)
	cut := 0
	for cut < len(rt.times) && t.Sub(rt.times[cut]) > rt.window {
		cut++
	}
	if cut > 0 {
		rt.times = rt.times[cut:]
		rt.values = rt.values[cut:]
	}
}

func (rt *refTracker) quantile(q float64) float64 {
	if len(rt.values) == 0 {
		return 0
	}
	s := append([]float64(nil), rt.values...)
	sort.Float64s(s)
	return sim.QuantileSorted(s, q)
}

// TestTailTrackerMatchesReference is the differential-exactness test the
// tentpole demands (and `make check` runs explicitly): randomized add/prune
// sequences — bursts, gaps, duplicate values, occasional backwards
// timestamps — with every quantile compared for exact float equality
// against the copy-and-sort oracle.
func TestTailTrackerMatchesReference(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for _, window := range []time.Duration{50 * time.Millisecond, time.Second, 3 * time.Second} {
		tt := NewTailTracker(window)
		ref := &refTracker{window: window}
		rng := sim.NewRNG(7).Fork("exactness-" + window.String())
		now := sim.Time(0)
		for step := 0; step < 20000; step++ {
			// Irregular arrival: mostly dense, sometimes a gap that
			// flushes most of the window, rarely a backwards stamp.
			switch {
			case rng.Float64() < 0.01:
				now = now.Add(window * 2)
			case rng.Float64() < 0.05:
				now = now.Add(-time.Millisecond) // exercised clamp path
			default:
				now = now.Add(time.Duration(rng.Float64() * 3 * float64(time.Millisecond)))
			}
			// Coarse values force duplicates into the multiset.
			v := float64(int(rng.Float64()*200)) / 100
			tt.Add(now, v)
			ref.add(now, v)
			if tt.N() != len(ref.values) {
				t.Fatalf("window %v step %d: N = %d, ref %d", window, step, tt.N(), len(ref.values))
			}
			q := quantiles[step%len(quantiles)]
			if got, want := tt.Quantile(q), ref.quantile(q); got != want {
				t.Fatalf("window %v step %d: quantile(%v) = %v, ref %v", window, step, q, got, want)
			}
			// Re-query immediately: querying must not perturb the window
			// (scratch reordering stays inside the scratch buffer).
			if got, want := tt.Quantile(q), ref.quantile(q); got != want {
				t.Fatalf("window %v step %d: reconciled quantile(%v) = %v, ref %v", window, step, q, got, want)
			}
		}
	}
}

// TestTailTrackerBoundedCapacity is the regression test for the seed
// tracker's prune leak: over a multi-hour run the ring and the index arena
// must stay bounded by the window's high-water occupancy, not grow with the
// total samples added.
func TestTailTrackerBoundedCapacity(t *testing.T) {
	const window = 3 * time.Second
	tt := NewTailTracker(window)
	// 100 samples/s for 3 simulated hours: ~1.08M samples through a
	// window that holds at most ~300.
	const perSecond = 100
	step := time.Second / perSecond
	now := sim.Time(0)
	rng := sim.NewRNG(11).Fork("bounded-capacity")
	for i := 0; i < 3*3600*perSecond; i++ {
		now = now.Add(step)
		tt.Add(now, rng.Float64())
	}
	maxLive := perSecond*int(window/time.Second) + 1
	// Ring capacity: next power of two above occupancy, 64 floor, one
	// doubling of headroom.
	if tt.Cap() > 4*maxLive {
		t.Fatalf("ring capacity %d after 1M adds; occupancy never exceeded %d", tt.Cap(), maxLive)
	}
	// Query side: the selection scratch is sized by the high-water window
	// occupancy, never by the total samples added.
	tt.P99()
	if c := cap(tt.scratch); c > 4*maxLive {
		t.Fatalf("scratch capacity %d after 1M adds; occupancy never exceeded %d", c, maxLive)
	}
	if tt.N() > maxLive {
		t.Fatalf("live samples %d exceed window occupancy %d", tt.N(), maxLive)
	}
}

// TestTailTrackerAddBatchMatchesSequential pins the bulk-insert contract:
// AddBatch(t, vs) is element-for-element equivalent to Add(t, v) per value,
// including the clamp path, eviction timing, and every quantile bit.
func TestTailTrackerAddBatchMatchesSequential(t *testing.T) {
	const window = 200 * time.Millisecond
	batched := NewTailTracker(window)
	seq := NewTailTracker(window)
	rng := sim.NewRNG(13).Fork("addbatch-exactness")
	now := sim.Time(0)
	var vs []float64
	for step := 0; step < 5000; step++ {
		switch {
		case rng.Float64() < 0.01:
			now = now.Add(window * 2)
		case rng.Float64() < 0.05:
			now = now.Add(-time.Millisecond) // clamp path
		default:
			now = now.Add(time.Duration(rng.Float64() * 5 * float64(time.Millisecond)))
		}
		vs = vs[:0]
		for k := int(rng.Float64() * 6); k >= 0; k-- {
			vs = append(vs, float64(int(rng.Float64()*200))/100)
		}
		batched.AddBatch(now, vs)
		for _, v := range vs {
			seq.Add(now, v)
		}
		if batched.N() != seq.N() {
			t.Fatalf("step %d: N = %d batched, %d sequential", step, batched.N(), seq.N())
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got, want := batched.Quantile(q), seq.Quantile(q); got != want {
				t.Fatalf("step %d: quantile(%v) = %v batched, %v sequential", step, q, got, want)
			}
		}
	}
	// Empty batch is a no-op, even with a backwards timestamp under Strict.
	defer func(old bool) { Strict = old }(Strict)
	Strict = true
	before := batched.N()
	batched.AddBatch(0, nil)
	if batched.N() != before {
		t.Fatalf("empty AddBatch changed N: %d -> %d", before, batched.N())
	}
}

// TestTailTrackerOutOfOrderClamped pins the default (non-strict) contract:
// a backwards timestamp is recorded at the latest time seen, so it cannot
// resurrect or widen the window.
func TestTailTrackerOutOfOrderClamped(t *testing.T) {
	tt := NewTailTracker(time.Second)
	tt.Add(sim.FromSeconds(5), 10)
	tt.Add(sim.FromSeconds(4), 20) // backwards: clamped to t=5s
	if tt.N() != 2 {
		t.Fatalf("N = %d, want 2 (clamped sample retained)", tt.N())
	}
	// Advancing just past 5s+window must evict both: the second sample
	// lives at the clamped time, not at its claimed 4s.
	tt.Add(sim.FromSeconds(6.5), 30)
	if tt.N() != 1 {
		t.Fatalf("N = %d after window passed, want 1", tt.N())
	}
	if got := tt.P99(); got != 30 {
		t.Fatalf("p99 = %v, want 30", got)
	}
}

// TestTailTrackerOutOfOrderStrict pins the Strict contract: time running
// backwards panics with a diagnostic instead of clamping.
func TestTailTrackerOutOfOrderStrict(t *testing.T) {
	defer func(old bool) { Strict = old }(Strict)
	Strict = true
	tt := NewTailTracker(time.Second)
	tt.Add(sim.FromSeconds(5), 10)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict mode accepted a backwards timestamp")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "time ran backwards") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	tt.Add(sim.FromSeconds(4), 20)
}
