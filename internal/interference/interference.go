// Package interference converts the co-location state of one machine —
// the LC component's own demand plus the aggregate demand of BE jobs —
// into the latency inflation experienced by the LC component. It is the
// quantitative form of §2's characterization (Fig. 2): pressure on a shared
// resource inflates the component's mean service time in proportion to the
// component's sensitivity to that resource, superlinearly as the resource
// approaches saturation.
//
// Isolation mechanisms (§4) reduce, but do not eliminate, the pressure that
// reaches the LC workload: cpuset leaves SMT/prefetcher/power coupling, CAT
// partitions the LLC but misses still consume memory bandwidth, qdisc
// shapes traffic with some burst leakage, and memory bandwidth has no
// hardware partitioning at all on the paper's testbed.
package interference

import (
	"math"

	"rhythm/internal/cluster"
	"rhythm/internal/workload"
)

// Model holds the interference parameters. The zero value is not usable;
// call Default.
type Model struct {
	// Gamma is the superlinearity of contention: inflation grows with
	// pressure^Gamma, so light co-runners are almost free while
	// saturating ones blow up the tail (the knee shape of Fig. 2).
	Gamma float64
	// PressureCap bounds the per-resource normalized pressure so a
	// saturated resource cannot produce unbounded inflation.
	PressureCap float64
	// Leakage is the fraction of BE pressure that reaches the LC
	// workload on each resource when the §4 isolation mechanisms are
	// active. Without isolation every entry is 1.
	Leakage cluster.Vector
	// CVCap bounds the CV inflation factor.
	CVCap float64
}

// Default returns the calibrated model with isolation active.
func Default() Model {
	var leak cluster.Vector
	leak[cluster.ResCPU] = 0.20   // cpuset: SMT, prefetchers, power coupling
	leak[cluster.ResLLC] = 0.30   // CAT: partitioned, misses still interfere
	leak[cluster.ResMemBW] = 1.00 // no partitioning on this hardware (§4)
	leak[cluster.ResNetBW] = 0.30 // qdisc: burst leakage
	leak[cluster.ResMemory] = 0   // capacity is strictly partitioned
	leak[cluster.ResPower] = 1.00 // shared socket power budget
	return Model{Gamma: 1.8, PressureCap: 2, Leakage: leak, CVCap: 4}
}

// Unisolated returns the model with no isolation mechanisms, used by the
// §2 characterization (Fig. 2's static co-location pins tasks but shares
// LLC, DRAM bandwidth and network).
func Unisolated() Model {
	m := Default()
	for i := range m.Leakage {
		m.Leakage[i] = 1
	}
	return m
}

// capacities returns the machine's per-resource capacity vector.
func capacities(spec cluster.MachineSpec) cluster.Vector {
	var c cluster.Vector
	c[cluster.ResCPU] = float64(spec.Cores)
	c[cluster.ResLLC] = float64(spec.LLCWays)
	c[cluster.ResMemBW] = spec.MemBWGBs
	c[cluster.ResNetBW] = spec.NetGbps
	c[cluster.ResMemory] = spec.MemoryGB
	c[cluster.ResPower] = spec.TDPWatts
	return c
}

// Pressure returns the normalized interference pressure that the aggregate
// BE demand exerts on the LC workload on each resource: leaked BE demand
// relative to the headroom the machine has left after serving the LC's own
// demand. Values are clamped to [0, PressureCap].
func (m Model) Pressure(spec cluster.MachineSpec, lcDemand, beDemand cluster.Vector) cluster.Vector {
	caps := capacities(spec)
	var p cluster.Vector
	for r := 0; r < cluster.NumResources; r++ {
		if beDemand[r] <= 0 || m.Leakage[r] <= 0 {
			continue
		}
		head := caps[r] - lcDemand[r]
		if head < caps[r]*0.05 {
			head = caps[r] * 0.05 // LC near saturation: any BE demand is felt hard
		}
		v := m.Leakage[r] * beDemand[r] / head
		if v > m.PressureCap {
			v = m.PressureCap
		}
		p[r] = v
	}
	return p
}

// Inflation returns the mean-service inflation factor (>= 1) and the
// CV inflation factor (>= 1) that the given pressure vector imposes on the
// component, per its sensitivity vector.
func (m Model) Inflation(comp *workload.Component, press cluster.Vector) (inflate, cvInflate float64) {
	inflate = 1.0
	total := 0.0
	for r := 0; r < cluster.NumResources; r++ {
		if press[r] <= 0 {
			continue
		}
		inflate += comp.Sens[r] * math.Pow(press[r], m.Gamma)
		total += press[r]
	}
	cvInflate = 1 + comp.CVSens*total
	if cvInflate > m.CVCap {
		cvInflate = m.CVCap
	}
	return inflate, cvInflate
}

// FreqInflation returns the service-time multiplier when the component's
// cores run at freqGHz instead of baseGHz: (base/freq)^FreqSens. This is
// how the DVFS rows of Fig. 2 are produced and how the frequency
// subcontroller's throttling feeds back into LC latency.
func FreqInflation(comp *workload.Component, freqGHz, baseGHz float64) float64 {
	if freqGHz <= 0 || baseGHz <= 0 || freqGHz >= baseGHz {
		return 1
	}
	return math.Pow(baseGHz/freqGHz, comp.FreqSens)
}

// PowerDraw estimates the machine's power draw in watts: idle floor plus
// the active power of LC and BE demand (ResPower entries carry watts).
func PowerDraw(spec cluster.MachineSpec, lcDemand, beDemand cluster.Vector) float64 {
	const idleFraction = 0.35 // idle draw as a fraction of TDP
	active := lcDemand[cluster.ResCPU]*2.5 + beDemand[cluster.ResPower]
	return idleFraction*spec.TDPWatts + active
}
