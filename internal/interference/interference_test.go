package interference

import (
	"math"
	"testing"
	"testing/quick"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func spec() cluster.MachineSpec { return cluster.DefaultSpec() }

func mysql() *workload.Component  { return workload.ECommerce().Component("MySQL") }
func tomcat() *workload.Component { return workload.ECommerce().Component("Tomcat") }

func TestPressureZeroWithoutBE(t *testing.T) {
	m := Default()
	p := m.Pressure(spec(), mysql().DemandAt(0.5), cluster.Vector{})
	if p != (cluster.Vector{}) {
		t.Fatalf("pressure without BE = %v, want zero", p)
	}
}

func TestPressureGrowsWithBEDemand(t *testing.T) {
	m := Default()
	lc := mysql().DemandAt(0.5)
	small := bejobs.MustLookup(bejobs.StreamDRAM).PerCore.Scale(2)
	big := bejobs.MustLookup(bejobs.StreamDRAM).PerCore.Scale(8)
	ps := m.Pressure(spec(), lc, small)
	pb := m.Pressure(spec(), lc, big)
	if pb[cluster.ResMemBW] <= ps[cluster.ResMemBW] {
		t.Fatal("more BE cores should mean more memBW pressure")
	}
}

func TestPressureGrowsWithLCLoad(t *testing.T) {
	// Higher LC load shrinks headroom, so the same BE demand presses harder.
	m := Default()
	be := bejobs.MustLookup(bejobs.StreamDRAM).PerCore.Scale(6)
	lo := m.Pressure(spec(), mysql().DemandAt(0.2), be)
	hi := m.Pressure(spec(), mysql().DemandAt(0.95), be)
	if hi[cluster.ResMemBW] <= lo[cluster.ResMemBW] {
		t.Fatal("pressure should grow as LC load consumes headroom")
	}
}

func TestPressureCapped(t *testing.T) {
	m := Default()
	huge := bejobs.MustLookup(bejobs.StreamDRAM).PerCore.Scale(1000)
	p := m.Pressure(spec(), mysql().DemandAt(0.9), huge)
	for r := 0; r < cluster.NumResources; r++ {
		if p[r] > m.PressureCap {
			t.Fatalf("pressure[%d] = %v exceeds cap %v", r, p[r], m.PressureCap)
		}
		if p[r] < 0 {
			t.Fatalf("negative pressure[%d] = %v", r, p[r])
		}
	}
}

func TestIsolationReducesPressure(t *testing.T) {
	be := bejobs.MustLookup(bejobs.StreamLLC).PerCore.Scale(8)
	lc := mysql().DemandAt(0.5)
	iso := Default().Pressure(spec(), lc, be)
	raw := Unisolated().Pressure(spec(), lc, be)
	if iso[cluster.ResLLC] >= raw[cluster.ResLLC] {
		t.Fatal("CAT should reduce LLC pressure")
	}
	if iso[cluster.ResCPU] >= raw[cluster.ResCPU] {
		t.Fatal("cpuset should reduce CPU pressure")
	}
	// Memory bandwidth has no partitioning: identical either way (§4).
	if math.Abs(iso[cluster.ResMemBW]-raw[cluster.ResMemBW]) > 1e-12 {
		t.Fatal("memBW pressure should be unaffected by isolation")
	}
}

func TestInflationRespectsSensitivityOrdering(t *testing.T) {
	// The Fig. 2b headline: under stream-dram(big), MySQL inflates far
	// more than Tomcat.
	m := Unisolated()
	be := bejobs.MustLookup(bejobs.StreamDRAMBig)
	press := m.Pressure(spec(), mysql().DemandAt(0.6), be.PerCore.Scale(float64(be.SoloCores)))
	infMy, _ := m.Inflation(mysql(), press)
	pressT := m.Pressure(spec(), tomcat().DemandAt(0.6), be.PerCore.Scale(float64(be.SoloCores)))
	infTo, _ := m.Inflation(tomcat(), pressT)
	if infMy <= infTo {
		t.Fatalf("MySQL inflation %v should exceed Tomcat %v under stream-dram", infMy, infTo)
	}
	if infMy < 1.5 {
		t.Fatalf("stream-dram(big) should hurt MySQL substantially, got %v", infMy)
	}
}

func TestInflationAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		m := Default()
		var be cluster.Vector
		for i := range be {
			be[i] = r.Float64() * 100
		}
		press := m.Pressure(spec(), mysql().DemandAt(r.Float64()), be)
		inf, cv := m.Inflation(mysql(), press)
		return inf >= 1 && cv >= 1 && cv <= m.CVCap && !math.IsNaN(inf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInflationMonotoneInPressure(t *testing.T) {
	m := Default()
	var lo, hi cluster.Vector
	lo[cluster.ResMemBW] = 0.3
	hi[cluster.ResMemBW] = 0.9
	infLo, cvLo := m.Inflation(mysql(), lo)
	infHi, cvHi := m.Inflation(mysql(), hi)
	if infHi <= infLo || cvHi <= cvLo {
		t.Fatal("inflation should grow with pressure")
	}
}

func TestSuperlinearity(t *testing.T) {
	// Doubling pressure should more than double the added inflation
	// (gamma > 1): the Fig. 2 big-vs-small intensity gap.
	m := Default()
	var p1, p2 cluster.Vector
	p1[cluster.ResMemBW] = 0.4
	p2[cluster.ResMemBW] = 0.8
	i1, _ := m.Inflation(mysql(), p1)
	i2, _ := m.Inflation(mysql(), p2)
	if (i2 - 1) <= 2*(i1-1) {
		t.Fatalf("contention not superlinear: %v vs %v", i2-1, i1-1)
	}
}

func TestFreqInflation(t *testing.T) {
	c := tomcat() // FreqSens = 2.0
	if got := FreqInflation(c, 2.0, 2.0); got != 1 {
		t.Fatalf("nominal frequency should not inflate: %v", got)
	}
	if got := FreqInflation(c, 1.0, 2.0); math.Abs(got-4) > 1e-9 {
		t.Fatalf("half frequency with exponent 2 should inflate 4x: %v", got)
	}
	// MySQL (FreqSens 0.9) is much less DVFS sensitive (Fig. 2b).
	if FreqInflation(mysql(), 1.0, 2.0) >= FreqInflation(c, 1.0, 2.0) {
		t.Fatal("Tomcat must be more DVFS sensitive than MySQL")
	}
	// Degenerate inputs clamp to 1.
	if FreqInflation(c, 0, 2) != 1 || FreqInflation(c, 3, 2) != 1 {
		t.Fatal("degenerate frequencies should clamp")
	}
}

func TestPowerDraw(t *testing.T) {
	s := spec()
	idle := PowerDraw(s, cluster.Vector{}, cluster.Vector{})
	if idle <= 0 || idle >= s.TDPWatts {
		t.Fatalf("idle draw %v out of range", idle)
	}
	be := bejobs.MustLookup(bejobs.CPUStress).PerCore.Scale(30)
	busy := PowerDraw(s, mysql().DemandAt(1), be)
	if busy <= idle {
		t.Fatal("load should increase power draw")
	}
}

func TestLCNearSaturationFloor(t *testing.T) {
	// When LC demand exceeds capacity headroom, pressure uses the 5%
	// floor rather than dividing by ~zero or negative headroom.
	m := Default()
	var lc cluster.Vector
	lc[cluster.ResMemBW] = spec().MemBWGBs * 1.5 // oversaturated
	var be cluster.Vector
	be[cluster.ResMemBW] = 5
	p := m.Pressure(spec(), lc, be)
	if p[cluster.ResMemBW] <= 0 || math.IsInf(p[cluster.ResMemBW], 0) || p[cluster.ResMemBW] > m.PressureCap {
		t.Fatalf("saturated-headroom pressure = %v", p[cluster.ResMemBW])
	}
}
