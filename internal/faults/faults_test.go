package faults

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rhythm/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(0).Add(d) }

func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name  string
		ev    Event
		field string
	}{
		{"unknown kind", Event{Kind: "meteor-strike"}, "Events[0].Kind"},
		{"negative at", Event{Kind: LoadSurge, At: -time.Second, Duration: time.Second, Magnitude: 1.5}, "Events[0].At"},
		{"negative duration", Event{Kind: LoadSurge, Duration: -time.Second, Magnitude: 1.5}, "Events[0].Duration"},
		{"surge zero magnitude", Event{Kind: LoadSurge, Duration: time.Second}, "Events[0].Magnitude"},
		{"surge zero duration", Event{Kind: LoadSurge, Magnitude: 1.5}, "Events[0].Duration"},
		{"storm weak magnitude", Event{Kind: InterferenceStorm, Duration: time.Second, Magnitude: 0.5}, "Events[0].Magnitude"},
		{"storm zero duration", Event{Kind: InterferenceStorm, Magnitude: 2}, "Events[0].Duration"},
		{"slowdown zero freq", Event{Kind: MachineSlowdown, Duration: time.Second}, "Events[0].FreqGHz"},
		{"slowdown zero duration", Event{Kind: MachineSlowdown, FreqGHz: 1.3}, "Events[0].Duration"},
		{"crash negative delay", Event{Kind: BECrash, RestartDelay: -time.Second}, "Events[0].RestartDelay"},
		{"drift negative mu", Event{Kind: ProfileDrift, Duration: time.Second, MuSkew: -1, SigmaSkew: 1}, "Events[0].MuSkew"},
		{"drift negative sigma", Event{Kind: ProfileDrift, Duration: time.Second, MuSkew: 1, SigmaSkew: -2}, "Events[0].SigmaSkew"},
		{"drift zero duration", Event{Kind: ProfileDrift, MuSkew: 1.2}, "Events[0].Duration"},
		{"dropout bad mode", Event{Kind: MeasurementDropout, Duration: time.Second, Mode: "shrug"}, "Events[0].Mode"},
		{"dropout zero duration", Event{Kind: MeasurementDropout, Mode: DropNaN}, "Events[0].Duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Schedule{Events: []Event{tc.ev}}
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.ev)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *FieldError: %v", err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name field %s", err, tc.field)
			}
		})
	}
}

func TestValidateDefaults(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: ProfileDrift, Duration: time.Second, MuSkew: 1.5},
		{Kind: MeasurementDropout, Duration: time.Second},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case ProfileDrift:
			if ev.SigmaSkew != 1 {
				t.Fatalf("drift sigma skew not defaulted: %v", ev.SigmaSkew)
			}
		case MeasurementDropout:
			if ev.Mode != DropNaN {
				t.Fatalf("dropout mode not defaulted: %v", ev.Mode)
			}
		}
	}
}

func TestNilScheduleIsNoFaults(t *testing.T) {
	var s *Schedule
	if s.LoadMul(0) != 1 {
		t.Fatal("nil LoadMul != 1")
	}
	if s.InterferenceMul(0, "X") != 1 {
		t.Fatal("nil InterferenceMul != 1")
	}
	if s.FreqCapGHz(0, "X") != 0 {
		t.Fatal("nil FreqCapGHz != 0")
	}
	if mu, sg := s.Drift(0, "X"); mu != 1 || sg != 1 {
		t.Fatal("nil Drift != (1,1)")
	}
	if _, ok := s.Dropout(0); ok {
		t.Fatal("nil Dropout active")
	}
	if s.CrashTriggered(-1, 0, "X") || s.CrashBlocked(0, "X") {
		t.Fatal("nil crash queries fired")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatal("nil not Empty")
	}
}

func TestQueryWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LoadSurge, At: 10 * time.Second, Duration: 5 * time.Second, Magnitude: 1.5},
		{Kind: LoadSurge, At: 12 * time.Second, Duration: 5 * time.Second, Magnitude: 2},
		{Kind: InterferenceStorm, Pod: "MySQL", At: 20 * time.Second, Duration: 4 * time.Second, Magnitude: 3},
		{Kind: MachineSlowdown, At: 30 * time.Second, Duration: 10 * time.Second, FreqGHz: 1.4},
		{Kind: MachineSlowdown, Pod: "Web", At: 32 * time.Second, Duration: 2 * time.Second, FreqGHz: 1.2},
		{Kind: ProfileDrift, At: 40 * time.Second, Duration: 10 * time.Second, MuSkew: 1.2, SigmaSkew: 1.1},
		{Kind: MeasurementDropout, At: 50 * time.Second, Duration: 4 * time.Second, Mode: DropStale},
		{Kind: MeasurementDropout, At: 52 * time.Second, Duration: 4 * time.Second, Mode: DropNaN},
		{Kind: BECrash, Pod: "MySQL", At: 60 * time.Second, RestartDelay: 8 * time.Second},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	if got := s.LoadMul(at(9 * time.Second)); got != 1 {
		t.Fatalf("LoadMul before surge = %v", got)
	}
	if got := s.LoadMul(at(13 * time.Second)); got != 3 {
		t.Fatalf("overlapping surges should multiply: got %v, want 3", got)
	}
	if got := s.LoadMul(at(15 * time.Second)); got != 2 {
		t.Fatalf("first surge ended: got %v, want 2", got)
	}

	if got := s.InterferenceMul(at(21*time.Second), "MySQL"); got != 3 {
		t.Fatalf("storm on target pod = %v", got)
	}
	if got := s.InterferenceMul(at(21*time.Second), "Web"); got != 1 {
		t.Fatalf("storm leaked to other pod: %v", got)
	}

	if got := s.FreqCapGHz(at(33*time.Second), "Web"); got != 1.2 {
		t.Fatalf("tightest cap should win: %v", got)
	}
	if got := s.FreqCapGHz(at(33*time.Second), "MySQL"); got != 1.4 {
		t.Fatalf("pod-wide cap: %v", got)
	}

	if mu, sg := s.Drift(at(45*time.Second), "Web"); mu != 1.2 || sg != 1.1 {
		t.Fatalf("drift = %v, %v", mu, sg)
	}

	if mode, ok := s.Dropout(at(51 * time.Second)); !ok || mode != DropStale {
		t.Fatalf("stale dropout: %v %v", mode, ok)
	}
	if mode, ok := s.Dropout(at(53 * time.Second)); !ok || mode != DropNaN {
		t.Fatalf("overlapping dropouts: NaN should win, got %v %v", mode, ok)
	}
	if _, ok := s.Dropout(at(57 * time.Second)); ok {
		t.Fatal("dropout past end still active")
	}

	if !s.CrashTriggered(at(59*time.Second), at(60*time.Second), "MySQL") {
		t.Fatal("crash not triggered in (59s, 60s]")
	}
	if s.CrashTriggered(at(60*time.Second), at(61*time.Second), "MySQL") {
		t.Fatal("crash fired twice")
	}
	if s.CrashTriggered(at(59*time.Second), at(60*time.Second), "Web") {
		t.Fatal("crash leaked to other pod")
	}
	if !s.CrashBlocked(at(65*time.Second), "MySQL") {
		t.Fatal("launches should be blocked during restart delay")
	}
	if s.CrashBlocked(at(69*time.Second), "MySQL") {
		t.Fatal("launches blocked past restart delay")
	}
}

func TestEdgesIn(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LoadSurge, At: 10 * time.Second, Duration: 5 * time.Second, Magnitude: 1.5},
		{Kind: BECrash, At: 12 * time.Second},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	edges := s.EdgesIn(nil, at(9*time.Second), at(12*time.Second))
	if len(edges) != 2 || !edges[0].Start || !edges[1].Start {
		t.Fatalf("want 2 start edges, got %+v", edges)
	}
	edges = s.EdgesIn(nil, at(14*time.Second), at(15*time.Second))
	if len(edges) != 1 || edges[0].Start {
		t.Fatalf("want 1 end edge for the surge, got %+v", edges)
	}
	// BECrash never produces an end edge.
	for _, e := range s.EdgesIn(nil, 0, at(time.Hour)) {
		if e.Event.Kind == BECrash && !e.Start {
			t.Fatal("crash produced an end edge")
		}
	}
}

func TestPresetsDeterministic(t *testing.T) {
	for _, name := range Presets() {
		a, err := Preset(name, 2020, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Preset(name, 2020, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("preset %q not deterministic", name)
		}
		c, err := Preset(name, 2021, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Events, c.Events) {
			t.Fatalf("preset %q ignores the seed", name)
		}
		if len(a.Events) == 0 {
			t.Fatalf("preset %q is empty", name)
		}
	}
	if _, err := Preset("nope", 1, 0); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestParseAndLoad(t *testing.T) {
	src := `{"name": "custom", "events": [
		{"kind": "load-surge", "at_s": 30, "dur_s": 10, "magnitude": 1.5},
		{"kind": "be-crash", "pod": "MySQL", "at_s": 60, "restart_delay_s": 8},
		{"kind": "measurement-dropout", "at_s": 80, "dur_s": 6, "mode": "stale"}
	]}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || len(s.Events) != 3 {
		t.Fatalf("parsed %q with %d events", s.Name, len(s.Events))
	}
	if got := s.LoadMul(at(35 * time.Second)); got != 1.5 {
		t.Fatalf("parsed surge inactive: %v", got)
	}
	if !s.CrashBlocked(at(62*time.Second), "MySQL") {
		t.Fatal("parsed crash restart delay not honored")
	}

	path := filepath.Join(t.TempDir(), "storm.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve("chaos", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve("no-such-thing", 1, 0); err == nil {
		t.Fatal("Resolve accepted garbage")
	}
	if _, err := Parse([]byte(`{"events": [{"kind": "load-surge"}]}`)); err == nil {
		t.Fatal("Parse accepted an invalid event")
	}
}
