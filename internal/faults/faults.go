// Package faults is the deterministic fault-injection subsystem: a seeded
// Schedule of typed fault events that the engine consults every tick. The
// six fault kinds cover the anomaly classes co-located fleets actually see
// (load spikes, interference storms, partial machine failures, stale
// profiles, broken measurement pipelines) so the controller's graceful
// degradation can be proven rather than assumed.
//
// # Determinism contract
//
// A Schedule is built once — from a preset generator seeded with its own
// sim.SubSeed-forked substream, or parsed from a file — and is immutable
// and purely read afterwards. Query methods never draw randomness and
// never mutate state, so consulting a Schedule from the engine hot path
// cannot perturb the workload RNG streams: the same seed plus the same
// schedule yields byte-identical runs at any worker count, and a nil
// Schedule leaves the engine bit-frozen relative to a build without the
// faults subsystem at all.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rhythm/internal/sim"
)

// Kind names a fault class.
type Kind string

// The six fault kinds.
const (
	// LoadSurge multiplies the offered load pattern by Magnitude for
	// Duration (service-wide; Pod is ignored).
	LoadSurge Kind = "load-surge"
	// InterferenceStorm multiplies the interference pressure a Servpod's
	// machine sees by Magnitude for Duration.
	InterferenceStorm Kind = "interference-storm"
	// MachineSlowdown caps a machine's DVFS operating point at FreqGHz
	// for Duration; both the LC service time (via FreqInflation) and BE
	// progress slow down.
	MachineSlowdown Kind = "machine-slowdown"
	// BECrash kills every BE instance on the pod's machine at At and
	// blocks new launches for RestartDelay.
	BECrash Kind = "be-crash"
	// ProfileDrift skews the sojourn distribution away from the profiled
	// one for Duration: the lognormal mean is multiplied by MuSkew and
	// its log-space sigma by SigmaSkew.
	ProfileDrift Kind = "profile-drift"
	// MeasurementDropout breaks the latency measurement pipeline for
	// Duration: the controller sees a NaN or stale p99 (per Mode) while
	// the true tail keeps being tracked for the run statistics.
	MeasurementDropout Kind = "measurement-dropout"
)

// valid reports whether k is a known kind.
func (k Kind) valid() bool {
	switch k {
	case LoadSurge, InterferenceStorm, MachineSlowdown, BECrash, ProfileDrift, MeasurementDropout:
		return true
	}
	return false
}

// DropoutMode selects what the controller sees during a measurement
// dropout.
type DropoutMode string

// Dropout modes: NaN (the pipeline returns no number at all) or stale (it
// keeps repeating the last pre-dropout value).
const (
	DropNaN   DropoutMode = "nan"
	DropStale DropoutMode = "stale"
)

// Event is one typed fault. Which fields matter depends on Kind; Validate
// rejects events whose required fields are missing or out of range.
type Event struct {
	Kind Kind `json:"kind"`
	// Pod targets one Servpod by component name; empty targets every pod.
	// LoadSurge and MeasurementDropout are service-wide and ignore Pod.
	Pod string `json:"pod,omitempty"`
	// At is when the fault starts (virtual time from run start).
	At time.Duration `json:"at"`
	// Duration is how long the fault stays active. BECrash is
	// instantaneous and ignores it.
	Duration time.Duration `json:"duration,omitempty"`
	// Magnitude is the multiplier for LoadSurge (> 0) and
	// InterferenceStorm (>= 1).
	Magnitude float64 `json:"magnitude,omitempty"`
	// FreqGHz is the MachineSlowdown DVFS cap (> 0).
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// MuSkew and SigmaSkew are the ProfileDrift multipliers (> 0; zero
	// defaults to 1, i.e. no skew on that parameter).
	MuSkew    float64 `json:"mu_skew,omitempty"`
	SigmaSkew float64 `json:"sigma_skew,omitempty"`
	// RestartDelay blocks BE launches after a BECrash (>= 0).
	RestartDelay time.Duration `json:"restart_delay,omitempty"`
	// Mode is the MeasurementDropout behavior (default DropNaN).
	Mode DropoutMode `json:"mode,omitempty"`
}

// active reports whether the event covers virtual time t.
func (ev *Event) active(t sim.Time) bool {
	start := sim.Time(0).Add(ev.At)
	return t >= start && t < start.Add(ev.Duration)
}

// matches reports whether the event targets the named pod.
func (ev *Event) matches(pod string) bool {
	return ev.Pod == "" || ev.Pod == pod
}

// FieldError is a validation failure naming the exact field it is about,
// so callers can report (or test against) which part of a schedule is bad.
type FieldError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *FieldError) Error() string { return "faults: " + e.Field + ": " + e.Reason }

// Schedule is an immutable set of fault events plus per-kind indexes for
// the engine's per-tick queries. All query methods are nil-safe: a nil
// *Schedule behaves as "no faults".
type Schedule struct {
	// Name labels the schedule in output ("surges", "chaos", a file path).
	Name string `json:"name,omitempty"`
	// Events is the full event list. Treat it as read-only once the
	// schedule is validated; Validate sorts it into deterministic order.
	Events []Event `json:"events"`

	compiled  bool
	surges    []Event
	storms    []Event
	slowdowns []Event
	crashes   []Event
	drifts    []Event
	dropouts  []Event
}

// Validate checks every event's fields, applies per-kind defaults
// (drift skews of zero become 1, dropout mode defaults to DropNaN) and
// compiles the per-kind indexes. It returns all failures joined, each a
// *FieldError naming Events[i].<Field>.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	var errs []error
	bad := func(i int, field, format string, args ...any) {
		errs = append(errs, &FieldError{
			Field:  fmt.Sprintf("Events[%d].%s", i, field),
			Reason: fmt.Sprintf(format, args...),
		})
	}
	for i := range s.Events {
		ev := &s.Events[i]
		if !ev.Kind.valid() {
			bad(i, "Kind", "unknown fault kind %q", ev.Kind)
			continue
		}
		if ev.At < 0 {
			bad(i, "At", "negative start time %v", ev.At)
		}
		if ev.Duration < 0 {
			bad(i, "Duration", "negative duration %v", ev.Duration)
		}
		switch ev.Kind {
		case LoadSurge:
			if ev.Magnitude <= 0 {
				bad(i, "Magnitude", "load surge needs a positive multiplier, got %v", ev.Magnitude)
			}
			if ev.Duration == 0 {
				bad(i, "Duration", "load surge needs a positive duration")
			}
		case InterferenceStorm:
			if ev.Magnitude < 1 {
				bad(i, "Magnitude", "interference storm multiplier must be >= 1, got %v", ev.Magnitude)
			}
			if ev.Duration == 0 {
				bad(i, "Duration", "interference storm needs a positive duration")
			}
		case MachineSlowdown:
			if ev.FreqGHz <= 0 {
				bad(i, "FreqGHz", "machine slowdown needs a positive frequency cap, got %v", ev.FreqGHz)
			}
			if ev.Duration == 0 {
				bad(i, "Duration", "machine slowdown needs a positive duration")
			}
		case BECrash:
			if ev.RestartDelay < 0 {
				bad(i, "RestartDelay", "negative restart delay %v", ev.RestartDelay)
			}
		case ProfileDrift:
			if ev.MuSkew == 0 {
				ev.MuSkew = 1
			}
			if ev.SigmaSkew == 0 {
				ev.SigmaSkew = 1
			}
			if ev.MuSkew <= 0 {
				bad(i, "MuSkew", "drift mu skew must be positive, got %v", ev.MuSkew)
			}
			if ev.SigmaSkew <= 0 {
				bad(i, "SigmaSkew", "drift sigma skew must be positive, got %v", ev.SigmaSkew)
			}
			if ev.Duration == 0 {
				bad(i, "Duration", "profile drift needs a positive duration")
			}
		case MeasurementDropout:
			if ev.Mode == "" {
				ev.Mode = DropNaN
			}
			if ev.Mode != DropNaN && ev.Mode != DropStale {
				bad(i, "Mode", "unknown dropout mode %q (want %q or %q)", ev.Mode, DropNaN, DropStale)
			}
			if ev.Duration == 0 {
				bad(i, "Duration", "measurement dropout needs a positive duration")
			}
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	s.compile()
	return nil
}

// compile sorts Events deterministically and builds the per-kind slices.
func (s *Schedule) compile() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		a, b := &s.Events[i], &s.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pod < b.Pod
	})
	s.surges = s.surges[:0]
	s.storms = s.storms[:0]
	s.slowdowns = s.slowdowns[:0]
	s.crashes = s.crashes[:0]
	s.drifts = s.drifts[:0]
	s.dropouts = s.dropouts[:0]
	for _, ev := range s.Events {
		switch ev.Kind {
		case LoadSurge:
			s.surges = append(s.surges, ev)
		case InterferenceStorm:
			s.storms = append(s.storms, ev)
		case MachineSlowdown:
			s.slowdowns = append(s.slowdowns, ev)
		case BECrash:
			s.crashes = append(s.crashes, ev)
		case ProfileDrift:
			s.drifts = append(s.drifts, ev)
		case MeasurementDropout:
			s.dropouts = append(s.dropouts, ev)
		}
	}
	s.compiled = true
}

// ensure panics if a query runs on an uncompiled schedule: the engine
// validates at New time, so reaching this means a caller skipped Validate.
func (s *Schedule) ensure() {
	if !s.compiled {
		if err := s.Validate(); err != nil {
			panic("faults: querying an invalid schedule: " + err.Error())
		}
	}
}

// LoadMul returns the product of the active load-surge multipliers at now
// (1 when none are active, or when s is nil).
func (s *Schedule) LoadMul(now sim.Time) float64 {
	if s == nil {
		return 1
	}
	s.ensure()
	mul := 1.0
	for i := range s.surges {
		if s.surges[i].active(now) {
			mul *= s.surges[i].Magnitude
		}
	}
	return mul
}

// InterferenceMul returns the product of the active interference-storm
// multipliers targeting pod at now (1 when none).
func (s *Schedule) InterferenceMul(now sim.Time, pod string) float64 {
	if s == nil {
		return 1
	}
	s.ensure()
	mul := 1.0
	for i := range s.storms {
		if ev := &s.storms[i]; ev.active(now) && ev.matches(pod) {
			mul *= ev.Magnitude
		}
	}
	return mul
}

// FreqCapGHz returns the tightest active machine-slowdown frequency cap
// targeting pod at now, or 0 when no slowdown is active.
func (s *Schedule) FreqCapGHz(now sim.Time, pod string) float64 {
	if s == nil {
		return 0
	}
	s.ensure()
	tightest := 0.0
	for i := range s.slowdowns {
		if ev := &s.slowdowns[i]; ev.active(now) && ev.matches(pod) {
			if tightest == 0 || ev.FreqGHz < tightest {
				tightest = ev.FreqGHz
			}
		}
	}
	return tightest
}

// Drift returns the combined profile-drift skews targeting pod at now
// (1, 1 when none).
func (s *Schedule) Drift(now sim.Time, pod string) (muSkew, sigmaSkew float64) {
	if s == nil {
		return 1, 1
	}
	s.ensure()
	muSkew, sigmaSkew = 1, 1
	for i := range s.drifts {
		if ev := &s.drifts[i]; ev.active(now) && ev.matches(pod) {
			muSkew *= ev.MuSkew
			sigmaSkew *= ev.SigmaSkew
		}
	}
	return muSkew, sigmaSkew
}

// Dropout reports whether a measurement dropout is active at now and its
// mode. When several overlap, NaN wins (the pipeline is at its most
// broken).
func (s *Schedule) Dropout(now sim.Time) (DropoutMode, bool) {
	if s == nil {
		return "", false
	}
	s.ensure()
	var mode DropoutMode
	for i := range s.dropouts {
		if ev := &s.dropouts[i]; ev.active(now) {
			if ev.Mode == DropNaN {
				return DropNaN, true
			}
			mode = ev.Mode
		}
	}
	return mode, mode != ""
}

// CrashTriggered reports whether a BE-crash event targeting pod fires in
// the half-open window (from, to]. The engine calls it once per tick with
// the previous tick time, so each crash fires exactly once.
func (s *Schedule) CrashTriggered(from, to sim.Time, pod string) bool {
	if s == nil {
		return false
	}
	s.ensure()
	for i := range s.crashes {
		ev := &s.crashes[i]
		at := sim.Time(0).Add(ev.At)
		if at > from && at <= to && ev.matches(pod) {
			return true
		}
	}
	return false
}

// CrashBlocked reports whether BE launches on pod are blocked at now by a
// crash's restart delay.
func (s *Schedule) CrashBlocked(now sim.Time, pod string) bool {
	if s == nil {
		return false
	}
	s.ensure()
	for i := range s.crashes {
		ev := &s.crashes[i]
		at := sim.Time(0).Add(ev.At)
		if now >= at && now < at.Add(ev.RestartDelay) && ev.matches(pod) {
			return true
		}
	}
	return false
}

// Edge is a fault activation or deactivation the engine reports on the
// observability bus.
type Edge struct {
	Event *Event
	// Start is true at activation, false at deactivation.
	Start bool
}

// EdgesIn appends to dst the activation/deactivation edges in the
// half-open window (from, to]: events whose start (or end) time falls in
// it. BECrash produces a single Start edge. The engine only calls this
// when a bus is installed, so untraced runs never pay for it.
func (s *Schedule) EdgesIn(dst []Edge, from, to sim.Time) []Edge {
	if s == nil {
		return dst
	}
	s.ensure()
	for i := range s.Events {
		ev := &s.Events[i]
		start := sim.Time(0).Add(ev.At)
		if start > from && start <= to {
			dst = append(dst, Edge{Event: ev, Start: true})
		}
		if ev.Kind == BECrash {
			continue
		}
		if end := start.Add(ev.Duration); end > from && end <= to {
			dst = append(dst, Edge{Event: ev, Start: false})
		}
	}
	return dst
}

// Empty reports whether the schedule carries no events (nil counts).
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }
