// Canned fault storms and the JSON schedule-file format behind the CLI's
// -faults flag.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"rhythm/internal/sim"
)

// Preset names, sorted. Each is a canned storm the resilience experiment
// and the CLI's -faults flag accept.
func Presets() []string {
	names := make([]string, 0, len(presetGens))
	for name := range presetGens {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// presetGens maps preset name to its generator. Generators draw only from
// the RNG they are handed; span scales event placement.
var presetGens = map[string]func(rng *sim.RNG, span time.Duration) []Event{
	"surges": surgesPreset,
	"storm":  stormPreset,
	"chaos":  chaosPreset,
}

// DefaultSpan is the event-placement window presets assume when the
// caller passes no span (roughly one quick production run).
const DefaultSpan = 2 * time.Minute

// Preset builds one of the canned fault storms. The generator draws from
// a substream forked as SubSeed(seed, "faults/"+name) — at construction
// time only, never during a run — so fault timing is independent of every
// workload stream and of worker count. span stretches event placement
// over the expected run duration; span <= 0 uses DefaultSpan.
func Preset(name string, seed uint64, span time.Duration) (*Schedule, error) {
	gen, ok := presetGens[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown preset %q (have %v)", name, Presets())
	}
	if span <= 0 {
		span = DefaultSpan
	}
	rng := sim.NewRNG(sim.SubSeed(seed, "faults/"+name))
	s := &Schedule{Name: name, Events: gen(rng, span)}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("faults: preset %q generated an invalid schedule: %w", name, err)
	}
	return s, nil
}

// frac returns the virtual time at fraction f of span, jittered by up to
// ±jitter·span.
func frac(rng *sim.RNG, span time.Duration, f, jitter float64) time.Duration {
	j := (2*rng.Float64() - 1) * jitter
	return time.Duration((f + j) * float64(span))
}

// surgesPreset: three transient load surges of growing height — the
// Alibaba-style request spikes the loadlimit rule must absorb.
func surgesPreset(rng *sim.RNG, span time.Duration) []Event {
	var evs []Event
	for i := 0; i < 3; i++ {
		evs = append(evs, Event{
			Kind:      LoadSurge,
			At:        frac(rng, span, 0.2+0.22*float64(i), 0.03),
			Duration:  time.Duration((0.06 + 0.04*rng.Float64()) * float64(span)),
			Magnitude: 1.2 + 0.15*float64(i) + 0.1*rng.Float64(),
		})
	}
	return evs
}

// stormPreset: two interference storms plus a DVFS slowdown on one
// machine — noisy neighbors and a thermally throttled host.
func stormPreset(rng *sim.RNG, span time.Duration) []Event {
	evs := []Event{
		{
			Kind:      InterferenceStorm,
			At:        frac(rng, span, 0.25, 0.03),
			Duration:  time.Duration((0.10 + 0.05*rng.Float64()) * float64(span)),
			Magnitude: 2 + rng.Float64(),
		},
		{
			Kind:      InterferenceStorm,
			At:        frac(rng, span, 0.60, 0.03),
			Duration:  time.Duration((0.12 + 0.05*rng.Float64()) * float64(span)),
			Magnitude: 2.5 + rng.Float64(),
		},
		{
			Kind:     MachineSlowdown,
			At:       frac(rng, span, 0.45, 0.03),
			Duration: time.Duration(0.25 * float64(span)),
			FreqGHz:  1.3 + 0.2*rng.Float64(),
		},
	}
	return evs
}

// chaosPreset: partial failures — BE crashes with restart delay,
// measurement dropouts in both modes, and profile drift.
func chaosPreset(rng *sim.RNG, span time.Duration) []Event {
	evs := []Event{
		{
			Kind:         BECrash,
			At:           frac(rng, span, 0.30, 0.03),
			RestartDelay: time.Duration((0.04 + 0.03*rng.Float64()) * float64(span)),
		},
		{
			Kind:         BECrash,
			At:           frac(rng, span, 0.70, 0.03),
			RestartDelay: time.Duration((0.04 + 0.03*rng.Float64()) * float64(span)),
		},
		{
			Kind:     MeasurementDropout,
			At:       frac(rng, span, 0.40, 0.02),
			Duration: time.Duration(0.08 * float64(span)),
			Mode:     DropNaN,
		},
		{
			Kind:     MeasurementDropout,
			At:       frac(rng, span, 0.58, 0.02),
			Duration: time.Duration(0.08 * float64(span)),
			Mode:     DropStale,
		},
		{
			Kind:      ProfileDrift,
			At:        frac(rng, span, 0.45, 0.03),
			Duration:  time.Duration(0.40 * float64(span)),
			MuSkew:    1.10 + 0.10*rng.Float64(),
			SigmaSkew: 1.05 + 0.05*rng.Float64(),
		},
	}
	return evs
}

// fileEvent is the JSON schedule-file shape: durations are float seconds
// (at_s, dur_s, restart_delay_s) for hand-editability.
type fileEvent struct {
	Kind          Kind        `json:"kind"`
	Pod           string      `json:"pod,omitempty"`
	AtS           float64     `json:"at_s"`
	DurS          float64     `json:"dur_s,omitempty"`
	Magnitude     float64     `json:"magnitude,omitempty"`
	FreqGHz       float64     `json:"freq_ghz,omitempty"`
	MuSkew        float64     `json:"mu_skew,omitempty"`
	SigmaSkew     float64     `json:"sigma_skew,omitempty"`
	RestartDelayS float64     `json:"restart_delay_s,omitempty"`
	Mode          DropoutMode `json:"mode,omitempty"`
}

type fileSchedule struct {
	Name   string      `json:"name,omitempty"`
	Events []fileEvent `json:"events"`
}

// Parse decodes a JSON schedule file and validates it. The format is
//
//	{"name": "my-storm", "events": [
//	  {"kind": "load-surge", "at_s": 30, "dur_s": 10, "magnitude": 1.5},
//	  {"kind": "be-crash", "pod": "MySQL", "at_s": 60, "restart_delay_s": 8},
//	  {"kind": "measurement-dropout", "at_s": 80, "dur_s": 6, "mode": "stale"}
//	]}
func Parse(data []byte) (*Schedule, error) {
	var fs fileSchedule
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("faults: parsing schedule: %w", err)
	}
	s := &Schedule{Name: fs.Name}
	for _, fe := range fs.Events {
		s.Events = append(s.Events, Event{
			Kind:         fe.Kind,
			Pod:          fe.Pod,
			At:           secs(fe.AtS),
			Duration:     secs(fe.DurS),
			Magnitude:    fe.Magnitude,
			FreqGHz:      fe.FreqGHz,
			MuSkew:       fe.MuSkew,
			SigmaSkew:    fe.SigmaSkew,
			RestartDelay: secs(fe.RestartDelayS),
			Mode:         fe.Mode,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and parses a JSON schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}

// Resolve turns a -faults argument into a schedule: a preset name, or a
// path to a JSON schedule file. Presets are generated with the given seed
// and span.
func Resolve(arg string, seed uint64, span time.Duration) (*Schedule, error) {
	if _, ok := presetGens[arg]; ok {
		return Preset(arg, seed, span)
	}
	if _, err := os.Stat(arg); err != nil {
		return nil, fmt.Errorf("faults: %q is neither a preset (%v) nor a readable schedule file", arg, Presets())
	}
	return Load(arg)
}

func secs(v float64) time.Duration {
	return time.Duration(v * float64(time.Second))
}
