package experiments

import (
	"strings"
	"testing"

	"rhythm/internal/sim"
)

// TestResilienceDeterministicAcrossJobs pins the tentpole determinism
// contract for the fault-storm scenario: the resilience table must be
// byte-identical on one worker and on four, and across repeats — fault
// timing rides its own RNG substreams, never the worker schedule.
func TestResilienceDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() || sim.RaceEnabled {
		t.Skip("six fault-storm runs are too heavy for -short/-race")
	}
	render := func(jobs int) string {
		ctx := NewContext(Options{Quick: true, Seed: 2020, Jobs: jobs})
		tab, err := ctx.Run("resilience")
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return tab.String()
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Errorf("jobs=4 table differs from serial\nserial:\n%s\njobs=4:\n%s", serial, got)
	}
	if got := render(1); got != serial {
		t.Error("repeated serial runs diverge")
	}
	if !strings.Contains(serial, "chaos") || !strings.Contains(serial, "Heracles") {
		t.Fatalf("table missing expected rows:\n%s", serial)
	}
}

// TestResilienceExcludedFromRunAll: the scenario is registered (Get
// resolves it) but the paper registry — and therefore `run all` and the
// golden stdout — does not include it.
func TestResilienceExcludedFromRunAll(t *testing.T) {
	if _, err := Get("resilience"); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if id == "resilience" {
			t.Fatal("resilience leaked into IDs()")
		}
	}
	found := false
	for _, id := range ScenarioIDs() {
		if id == "resilience" {
			found = true
		}
	}
	if !found {
		t.Fatalf("resilience missing from ScenarioIDs(): %v", ScenarioIDs())
	}
}
