package experiments

import (
	"fmt"
	"strings"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/fleet"
	"rhythm/internal/loadgen"
	"rhythm/internal/sim"
)

func init() {
	registerScenario("fleet",
		"Datacenter-scale fleet run over a preset mix (scenario, not in `run all`)",
		fleetExperiment)
}

// fleetExperiment is the ROADMAP item 1 scorecard: the chosen preset's
// machine mix (default fleet100), each replica running Rhythm's deployed
// policy for its service, all sharing one BE queue under a fleet-wide
// diurnal load. The table has one row per service class; the notes carry
// the queue, goodput and utilization-histogram aggregates.
//
// Like the other scenario-family experiments it is excluded from
// IDs()/`run all`, so GOLDEN.sha256 and the run-all stdout never move.
// Within the experiment every byte is -jobs-independent: deployments fan
// out into per-index slots and the fleet itself is epoch-barriered
// (internal/fleet package doc).
func fleetExperiment(ctx *Context) (*Table, error) {
	preset := ctx.Opts.Fleet
	if preset == "" {
		preset = fleet.DefaultPreset
	}
	prof, err := fleet.PresetProfile(preset)
	if err != nil {
		return nil, err
	}
	dur, warm := 10*time.Minute, 60*time.Second
	if ctx.Opts.Quick {
		dur, warm = 2*time.Minute, 20*time.Second
	}

	// Deploy each distinct service once (offline profiling; the expensive
	// part), in parallel, into per-index slots.
	entries := make([]fleet.Entry, len(prof.Mix))
	err = sim.ForEachErr(len(prof.Mix), ctx.jobs(), func(i int) error {
		sys, err := ctx.System(prof.Mix[i].Service)
		if err != nil {
			return err
		}
		entries[i] = fleet.Entry{
			Service:  sys.Service,
			Replicas: prof.Mix[i].Replicas,
			Policy:   sys.Policy,
			SLA:      sys.SLA,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	seed := ctx.Opts.Seed ^ hash("fleet"+preset)
	pattern, err := loadgen.NewDiurnal(dur/2, 0.35, 0.85, 0.08, sim.SubSeed(seed, "fleet/load"))
	if err != nil {
		return nil, err
	}
	fl, err := fleet.New(fleet.Config{
		Entries:  entries,
		Pattern:  pattern,
		BETypes:  []bejobs.Type{bejobs.Wordcount, bejobs.CPUStress, bejobs.StreamDRAM, bejobs.ImageClassify},
		Duration: dur,
		Warmup:   warm,
		Seed:     seed,
		Jobs:     ctx.jobs(),
	})
	if err != nil {
		return nil, err
	}
	res := fl.Run()

	t := &Table{
		ID: "fleet",
		Title: fmt.Sprintf("Fleet scorecard: %s (%d machines, %d replicas, diurnal load, shared BE queue)",
			preset, res.Machines, res.Replicas),
		Columns: []string{"class", "mach", "repl", "mean p99", "worst p99/SLA",
			"viol s", "BE thpt", "cpu util", "membw util", "kills"},
	}
	for _, c := range res.Classes {
		t.AddRow(c.Service,
			fmt.Sprintf("%d", c.Machines), fmt.Sprintf("%d", c.Replicas),
			ms(c.MeanP99), f2(c.WorstP99/c.SLA),
			fmt.Sprintf("%.0f", c.ViolationSeconds),
			f3(c.BEThroughput), pct(c.CPUUtil), pct(c.MemBWUtil),
			fmt.Sprintf("%d", c.Kills))
	}
	q := res.Queue
	t.Note("BE goodput %.1f jobs/machine-hour (%d completions, %d kills, %d crashes over %d epochs)",
		res.GoodputPerMachineHour, res.Completions, res.Kills, res.Crashes, res.Epochs)
	t.Note("queue: %d submitted, %d rejected, %d requeued (%d lost full), %d dispatched, %d pending; wait mean %.1fs p50 %.1fs p99 %.1fs",
		q.Submitted, q.Rejected, q.Requeued, q.RequeueDropped, q.Dispatched, q.Pending,
		q.MeanWaitS, q.P50WaitS, q.P99WaitS)
	t.Note("cpu util deciles %s; membw util deciles %s", histString(res.CPUHist), histString(res.MemBWHist))
	return t, nil
}

// histString renders a decile histogram as "n0/n1/.../n9".
func histString(h [10]int) string {
	parts := make([]string, len(h))
	for i, n := range h {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, "/")
}
