package experiments

import (
	"time"

	"rhythm/internal/sim"
)

// Result is the outcome of one experiment inside a RunAll batch.
type Result struct {
	ID    string
	Table *Table
	Err   error
	// Elapsed is this experiment's own wall-clock time. Because
	// experiments share singleflight caches, the first experiment to need
	// an expensive artifact (a deployment, the comparison grid) absorbs
	// its cost; summing Elapsed over a batch approximates the
	// single-worker wall-clock, which is how the CLI estimates speedup.
	Elapsed time.Duration
}

// RunAll executes the experiments named by ids (every registered
// experiment when ids is empty) on up to jobs worker goroutines (0 =
// Opts.Jobs). Results are returned in ids order, one per id, errors
// included in place rather than aborting the batch — callers decide
// whether a failed figure sinks the run.
//
// Tables are byte-identical to a jobs=1 run for any worker count: every
// experiment draws randomness only from content-keyed substreams of
// Opts.Seed, and all cross-experiment state is cached under singleflight
// keys whose values do not depend on which worker computes them first.
// TestRunAllParallelMatchesSerial holds this property down.
func (c *Context) RunAll(ids []string, jobs int) []Result {
	if len(ids) == 0 {
		ids = IDs()
	}
	if jobs <= 0 {
		jobs = c.jobs()
	}
	out := make([]Result, len(ids))
	sim.ForEach(len(ids), jobs, func(i int) {
		start := time.Now()
		tab, err := c.Run(ids[i])
		out[i] = Result{ID: ids[i], Table: tab, Err: err, Elapsed: time.Since(start)}
	})
	return out
}
