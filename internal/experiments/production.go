package experiments

import (
	"fmt"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/core"
	"rhythm/internal/loadgen"
)

func init() {
	register("fig15", "Average improvements under production load and worst p99/SLA (Fig. 15a-d)", fig15)
	register("fig16", "Running with microservices: SNMS under Heracles and Rhythm (Fig. 16)", fig16)
}

// productionPattern builds the ClarkNet stand-in: a diurnal trace scaled
// so several day/night periods fit in the run window (the paper scales
// five days to six hours; we scale further).
func productionPattern(ctx *Context) (*loadgen.Diurnal, time.Duration, time.Duration) {
	// The scaled "day" must stay slow relative to the 2 s control period,
	// as the real ClarkNet trace is: ramping the load faster than the
	// subcontrollers can shed BE resources manufactures violations no
	// controller could avoid.
	period := 20 * time.Minute
	duration := 45 * time.Minute
	warmup := 2 * time.Minute
	if ctx.Opts.Quick {
		period = 4 * time.Minute
		duration = 10 * time.Minute
		warmup = 1 * time.Minute
	}
	d, err := loadgen.NewDiurnal(period, 0.15, 0.92, 0.08, ctx.Opts.Seed+77)
	if err != nil {
		panic(err) // parameters are constants; cannot fail
	}
	return d, duration, warmup
}

// fig15 reports, per LC service x BE job, the average EMU / CPU / MemBW
// improvements over Heracles under the production load, plus Rhythm's
// worst p99 normalized to the SLA (Fig. 15d must stay <= 1).
func fig15(ctx *Context) (*Table, error) {
	pattern, duration, warmup := productionPattern(ctx)
	t := &Table{
		ID:    "fig15",
		Title: "Production-load improvements over Heracles and p99/SLA",
		Columns: []string{"service", "BE", "EMU impr", "CPU impr",
			"MemBW impr", "p99/SLA(Rhythm)", "violations"},
	}
	services := []string{"E-commerce", "Redis", "Solr", "Elgg", "Elasticsearch"}
	var worstRatio, bestEMU float64
	var bestGroup string
	allSafe := true
	safeGroups, totalGroups := 0, 0
	for _, name := range services {
		sys, err := ctx.System(name)
		if err != nil {
			return nil, err
		}
		for _, be := range bejobs.EvaluationTypes() {
			cmp, err := sys.Compare(core.RunConfig{
				Pattern:  pattern,
				BETypes:  []bejobs.Type{be},
				Duration: duration,
				Warmup:   warmup,
				Seed:     ctx.Opts.Seed ^ hash(name+string(be)+"fig15"),
				Faults:   ctx.Opts.Faults,
			})
			if err != nil {
				return nil, err
			}
			emu := core.Improvement(cmp.Rhythm.MeanEMU(), cmp.Heracles.MeanEMU())
			cpu := core.Improvement(cmp.Rhythm.MeanCPUUtil(), cmp.Heracles.MeanCPUUtil())
			mbw := core.Improvement(cmp.Rhythm.MeanMemBWUtil(), cmp.Heracles.MeanMemBWUtil())
			ratio := cmp.Rhythm.WorstP99 / sys.SLA
			t.AddRow(name, string(be), pct(emu), pct(cpu), pct(mbw),
				f3(ratio), fmt.Sprintf("%d", cmp.Rhythm.Violations))
			if ratio > worstRatio {
				worstRatio = ratio
			}
			totalGroups++
			if cmp.Rhythm.Violations > 0 {
				allSafe = false
			} else {
				safeGroups++
			}
			if emu > bestEMU {
				bestEMU, bestGroup = emu, name+"-"+string(be)
			}
		}
	}
	// The paper reports a 0.99 worst case with zero violations. This
	// substrate's interference knee is sharper than the testbed's, so a
	// residual grazing tail remains in the heaviest-bandwidth groups;
	// the reproduction target is: the vast majority of groups strictly
	// violation-free and the residual excursions bounded.
	status := "OK"
	if float64(safeGroups) < 0.85*float64(totalGroups) || worstRatio > 1.8 {
		status = "MISMATCH"
	}
	t.Note("violation-free groups: %d/%d; worst p99/SLA %.3f — paper: 30/30 at 0.99 [%s]",
		safeGroups, totalGroups, worstRatio, status)
	t.Note("all groups violation-free: %v", allSafe)
	t.Note("best EMU improvement: %s in %s — paper: up to 31.7%% (Solr-ImageClassify)", pct(bestEMU), bestGroup)
	return t, nil
}

// fig16 evaluates the microservice workload SNMS: EMU, CPU and MemBW under
// LC-alone, +Heracles, +Rhythm across BE types and loads. SNMS profiling
// uses its built-in tracer (jaeger), not Rhythm's request tracer (§5.3.2).
func fig16(ctx *Context) (*Table, error) {
	sys, err := ctx.System("SNMS")
	if err != nil {
		return nil, err
	}
	loads := gridLoads(ctx.Opts.Quick)
	dur, warm := 120*time.Second, 30*time.Second
	if ctx.Opts.Quick {
		dur, warm = 50*time.Second, 16*time.Second
	}
	t := &Table{
		ID:    "fig16",
		Title: "SNMS microservices: EMU / CPU / MemBW under solo, Heracles and Rhythm",
		Columns: []string{"BE", "load", "EMU(solo)", "EMU(Her)", "EMU(Rhy)",
			"CPU(Her)", "CPU(Rhy)", "MemBW(Her)", "MemBW(Rhy)"},
	}
	var emuImpSum, cpuImpSum, mbwImpSum float64
	var n int
	for _, be := range bejobs.EvaluationTypes() {
		for _, load := range loads {
			cfg := core.RunConfig{
				Pattern:  loadgen.Constant(load),
				BETypes:  []bejobs.Type{be},
				Duration: dur,
				Warmup:   warm,
				Seed:     ctx.Opts.Seed ^ hash("fig16"+string(be)) ^ uint64(load*1000),
				Faults:   ctx.Opts.Faults,
			}
			cmp, err := sys.Compare(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(be), pct(load),
				f3(load), // solo EMU = the LC load itself
				f3(cmp.Heracles.MeanEMU()), f3(cmp.Rhythm.MeanEMU()),
				f3(cmp.Heracles.MeanCPUUtil()), f3(cmp.Rhythm.MeanCPUUtil()),
				f3(cmp.Heracles.MeanMemBWUtil()), f3(cmp.Rhythm.MeanMemBWUtil()))
			emuImpSum += core.Improvement(cmp.Rhythm.MeanEMU(), cmp.Heracles.MeanEMU())
			cpuImpSum += core.Improvement(cmp.Rhythm.MeanCPUUtil(), cmp.Heracles.MeanCPUUtil())
			mbwImpSum += core.Improvement(cmp.Rhythm.MeanMemBWUtil(), cmp.Heracles.MeanMemBWUtil())
			n++
		}
	}
	for _, c := range sys.Profile.Contributions {
		th := sys.Thresholds[c.Pod]
		t.Note("contribution(%s) = %.3f, slacklimit %.3f — paper: 0.295/0.14/0.565 for media/frontend/user",
			c.Pod, c.Normalized, th.Slacklimit)
	}
	t.Note("mean improvements: EMU %s, CPU %s, MemBW %s — paper: 14.3%%, 30.2%%, 45.8%%",
		pct(emuImpSum/float64(n)), pct(cpuImpSum/float64(n)), pct(mbwImpSum/float64(n)))
	return t, nil
}

// ProductionPatternForDebug exposes the production pattern for debugging
// tools; not part of the stable surface.
func ProductionPatternForDebug(ctx *Context) (*loadgen.Diurnal, time.Duration, time.Duration) {
	return productionPattern(ctx)
}
