package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"rhythm/internal/calibration"
	"rhythm/internal/obs"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func init() {
	registerScenario("calibration",
		"Self-calibration fixed point and drift-fit recovery (scenario, not in `run all`)",
		calibrationExperiment)
}

// calibrationExperiment closes the observability loop analytically: it
// builds the E-commerce components' solo sojourn tails on a private
// (never-installed) bus, exports them through the Prometheus sink, parses
// the export back with the calibration importer and compares — the
// write→parse→compare fixed point must hold with zero breaches. A second,
// deliberately drifted copy (service-time mu shifted by ln 1.25, sigma
// scaled x1.1 — a deployment whose requests run 25% slower and noisier
// than profiled) is then handed to the auto-fit, which must recover the
// injected corrections from the bucketed histograms alone.
//
// Everything here is closed-form queueing math on a deterministic
// quantile grid — no RNG, no engine run — so the table is trivially
// byte-identical at any -jobs value. Like the other scenario-family
// experiments it is excluded from IDs()/`run all`; GOLDEN.sha256 and the
// run-all stdout never move.
func calibrationExperiment(ctx *Context) (*Table, error) {
	svc, err := workload.ByName("E-commerce")
	if err != nil {
		return nil, err
	}
	const load = 0.7
	qps := load * svc.MaxLoadQPS

	// The fit reads quantiles back out of bucketed histograms, so the
	// window-p99 family uses a fine geometric grid — a deployment would
	// configure its latency SLO buckets comparably.
	fine := geomBounds(0.001, 2.0, 48)
	grid := quantileGrid()

	const muShift = 0.22314355131420976 // ln 1.25
	const sigmaScale = 1.1

	bus := obs.NewBus()
	winH := bus.Histogram("rhythm_window_p99_seconds", fine)
	drift := obs.NewBus()
	driftWinH := drift.Histogram("rhythm_window_p99_seconds", fine)

	type podRow struct {
		name                string
		soloP99, driftedP99 float64
	}
	rows := make([]podRow, 0, len(svc.Components))
	for _, c := range svc.Components {
		sj := c.Station.Solo(qps)
		mu, sigma := sj.LogParams()
		bus.Histogram("rhythm_pod_sojourn_p99_seconds", obs.LatencyBuckets,
			"pod", c.Name).Observe(sj.P99())
		driftedP99 := 0.0
		for _, q := range grid {
			z := sim.NormQuantile(q)
			winH.Observe(math.Exp(mu + sigma*z))
			dv := math.Exp(mu + muShift + sigmaScale*sigma*z)
			driftWinH.Observe(dv)
			if q == 0.99 {
				driftedP99 = dv
			}
		}
		rows = append(rows, podRow{c.Name, sj.P99(), driftedP99})
	}
	predicted := calibration.Snapshot(bus)

	// Observed side of the fixed point: the bus's own export, written by
	// the sink and parsed back by the importer.
	var buf bytes.Buffer
	if err := bus.WriteMetrics(&buf); err != nil {
		return nil, err
	}
	observed, err := calibration.ImportPrometheus(&buf)
	if err != nil {
		return nil, fmt.Errorf("calibration experiment: re-importing own export: %w", err)
	}
	self := calibration.Compare(predicted, observed, calibration.DefaultRules())

	fit, err := calibration.FitReport(predicted, calibration.Snapshot(drift))
	if err != nil {
		return nil, fmt.Errorf("calibration experiment: fitting drifted twin: %w", err)
	}

	t := &Table{
		ID: "calibration",
		Title: fmt.Sprintf("Self-calibration fixed point: E-commerce solo tails at load %.2f, export/import round trip, drift fit",
			load),
		Columns: []string{"pod", "solo p99", "drifted p99", "fixed point"},
	}
	for _, r := range rows {
		status := "ok"
		for _, b := range self.Breaches {
			if strings.Contains(b.Key, `pod="`+r.name+`"`) {
				status = "BREACH"
			}
		}
		t.AddRow(r.name, ms(r.soloP99), ms(r.driftedP99), status)
	}
	verdict := "PASS"
	if !self.Pass {
		verdict = "FAIL"
	}
	t.Note("self-calibration: %s — %d series compared, %d breach(es), %d predicted-only, %d observed-only",
		verdict, self.Matched, len(self.Breaches), len(self.PredictedOnly), len(self.ObservedOnly))
	t.Note("injected drift: service-time mu %+.4f (x1.25 slower), sigma x%.2f", muShift, sigmaScale)
	conv := "converged"
	if !fit.Converged {
		conv = "did not converge"
	}
	t.Note("fit recovered: mu shift %+.3f (true %+.3f), sigma scale x%.3f (true x%.3f), fitted p99 %s vs observed %s (%s)",
		float64(fit.MuShift), muShift, float64(fit.SigmaScale), sigmaScale,
		ms(float64(fit.FittedP99)), ms(float64(fit.ObservedP99)), conv)
	return t, nil
}

// geomBounds returns n geometrically spaced histogram bounds on [lo, hi].
func geomBounds(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// quantileGrid is the deterministic probe grid the experiment samples each
// sojourn distribution at: every 2% plus the 0.99 tail point itself.
func quantileGrid() []float64 {
	out := make([]float64, 0, 50)
	for i := 1; i <= 49; i++ {
		out = append(out, float64(i)/50)
	}
	return append(out, 0.99)
}
