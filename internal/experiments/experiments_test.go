package experiments

import (
	"strings"
	"testing"
)

// sharedCtx caches one Quick context across the test binary so that the
// expensive per-service deployments run once.
var sharedCtx = NewContext(Options{Quick: true, Seed: 2020})

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := sharedCtx.Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("table id = %q, want %q", tab.ID, id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row width %d != %d columns: %v", id, len(row), len(tab.Columns), row)
		}
	}
	return tab
}

// requireNoMismatch fails when any headline note flags a shape mismatch
// against the paper.
func requireNoMismatch(t *testing.T, tab *Table) {
	t.Helper()
	for _, n := range tab.Notes {
		if strings.Contains(n, "MISMATCH") {
			t.Errorf("%s: %s", tab.ID, n)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"tab1", "tab2",
		"ablation-contribution", "ablation-period", "ablation-pairing",
		"ablation-isolation",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Get("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig2(t *testing.T)  { requireNoMismatch(t, runExp(t, "fig2")) }
func TestFig6(t *testing.T)  { requireNoMismatch(t, runExp(t, "fig6")) }
func TestFig7(t *testing.T)  { requireNoMismatch(t, runExp(t, "fig7")) }
func TestFig8(t *testing.T)  { requireNoMismatch(t, runExp(t, "fig8")) }
func TestTab1(t *testing.T)  { runExp(t, "tab1") }
func TestFig9(t *testing.T)  { requireNoMismatch(t, runExp(t, "fig9")) }
func TestFig12(t *testing.T) { requireNoMismatch(t, runExp(t, "fig12")) }
func TestFig15(t *testing.T) { requireNoMismatch(t, runExp(t, "fig15")) }
func TestFig16(t *testing.T) { runExp(t, "fig16") }
func TestFig17(t *testing.T) { requireNoMismatch(t, runExp(t, "fig17")) }
func TestFig18(t *testing.T) { runExp(t, "fig18") }
func TestTab2(t *testing.T)  { requireNoMismatch(t, runExp(t, "tab2")) }

func TestAblations(t *testing.T) {
	requireNoMismatch(t, runExp(t, "ablation-contribution"))
	runExp(t, "ablation-period")
	requireNoMismatch(t, runExp(t, "ablation-pairing"))
	requireNoMismatch(t, runExp(t, "ablation-isolation"))
}

func TestTableString(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 42)
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestContextCachesSystems(t *testing.T) {
	a, err := sharedCtx.System("E-commerce")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedCtx.System("E-commerce")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("system not cached")
	}
	if _, err := sharedCtx.System("Ghost"); err == nil {
		t.Fatal("unknown service accepted")
	}
}
