package experiments

import (
	"fmt"
	"time"

	"rhythm/internal/bejobs"
	"rhythm/internal/core"
	"rhythm/internal/engine"
	"rhythm/internal/loadgen"
	"rhythm/internal/sim"
)

func init() {
	register("fig9", "BE throughput at Servpods under different loads (Fig. 9)", func(c *Context) (*Table, error) {
		return podGrid(c, "fig9", "BE throughput (normalized jobs/hour)", func(p *engine.PodStats) float64 { return p.BEThroughput })
	})
	register("fig10", "CPU utilization at Servpods under different loads (Fig. 10)", func(c *Context) (*Table, error) {
		return podGrid(c, "fig10", "CPU utilization", func(p *engine.PodStats) float64 { return p.CPUUtil })
	})
	register("fig11", "Memory-bandwidth utilization at Servpods under different loads (Fig. 11)", func(c *Context) (*Table, error) {
		return podGrid(c, "fig11", "memory-bandwidth utilization", func(p *engine.PodStats) float64 { return p.MemBWUtil })
	})
	register("fig12", "EMU improvement over Heracles (Fig. 12)", func(c *Context) (*Table, error) {
		return serviceGrid(c, "fig12", "EMU", func(r *engine.RunStats) float64 { return r.MeanEMU() })
	})
	register("fig13", "CPU-utilization improvement over Heracles (Fig. 13)", func(c *Context) (*Table, error) {
		return serviceGrid(c, "fig13", "CPU utilization", func(r *engine.RunStats) float64 { return r.MeanCPUUtil() })
	})
	register("fig14", "Memory-bandwidth-utilization improvement over Heracles (Fig. 14)", func(c *Context) (*Table, error) {
		return serviceGrid(c, "fig14", "memory-bandwidth utilization", func(r *engine.RunStats) float64 { return r.MeanMemBWUtil() })
	})
}

// gridServices are the five LC services of the constant-load grids, with
// the focus Servpod §5.2.1 plots for each.
var gridServices = []struct{ Service, FocusPod string }{
	{"E-commerce", "Tomcat"},
	{"Redis", "Slave"},
	{"Solr", "Zookeeper"},
	{"Elgg", "Memcached"},
	{"Elasticsearch", "Kibana"},
}

// gridLoads returns the swept load fractions.
func gridLoads(quick bool) []float64 {
	if quick {
		return []float64{0.25, 0.65, 0.85}
	}
	return []float64{0.05, 0.25, 0.45, 0.65, 0.85}
}

// gridKey identifies one cached comparison run.
type gridKey struct {
	service string
	be      bejobs.Type
	load    float64
}

// gridRun computes (and caches on the context) the Rhythm-vs-Heracles
// comparison for one grid cell. Each cell is a singleflight entry: the
// first arrival runs the comparison, concurrent arrivals block for it.
// The cell's seed is derived from the cell's content, so the value is the
// same whichever experiment or worker computes it first.
func (c *Context) gridRun(key gridKey) (*core.Comparison, error) {
	c.mu.Lock()
	e, ok := c.grid[key]
	if !ok {
		e = &gridEntry{}
		c.grid[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		sys, err := c.System(key.service)
		if err != nil {
			e.err = err
			return
		}
		dur, warm := 120*time.Second, 30*time.Second
		if c.Opts.Quick {
			dur, warm = 50*time.Second, 16*time.Second
		}
		e.cmp, e.err = sys.Compare(core.RunConfig{
			Pattern:  loadgen.Constant(key.load),
			BETypes:  []bejobs.Type{key.be},
			Duration: dur,
			Warmup:   warm,
			Seed:     c.Opts.Seed ^ hash(string(key.be)+key.service) ^ uint64(key.load*1000),
			Faults:   c.Opts.Faults,
		})
	})
	return e.cmp, e.err
}

// gridKeys enumerates every cell of the Figs. 9-14 grid in rendering
// order.
func (c *Context) gridKeys() []gridKey {
	var keys []gridKey
	for _, gs := range gridServices {
		for _, be := range bejobs.EvaluationTypes() {
			for _, load := range gridLoads(c.Opts.Quick) {
				keys = append(keys, gridKey{gs.Service, be, load})
			}
		}
	}
	return keys
}

// ensureGrid computes every grid cell across the context's worker pool.
// All six grid figures share the cells, so the first grid experiment pays
// for the sweep once — in parallel — and the rest render from cache. The
// first error in cell order is reported, matching the serial loop.
func (c *Context) ensureGrid() error {
	c.gridOnce.Do(func() {
		keys := c.gridKeys()
		c.gridErr = sim.ForEachErr(len(keys), c.jobs(), func(i int) error {
			_, err := c.gridRun(keys[i])
			return err
		})
	})
	return c.gridErr
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// podGrid renders Figs. 9-11: the focus Servpod's metric under Rhythm and
// Heracles across BE types and loads.
func podGrid(ctx *Context, id, metric string, get func(*engine.PodStats) float64) (*Table, error) {
	if err := ctx.ensureGrid(); err != nil {
		return nil, err
	}
	loads := gridLoads(ctx.Opts.Quick)
	cols := []string{"servpod/service", "BE", "policy"}
	for _, l := range loads {
		cols = append(cols, pct(l))
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s at focus Servpods, Rhythm vs Heracles", metric),
		Columns: cols,
	}
	var rhythmAt85, heraclesAt85 float64
	var improveSum float64
	var improveN int
	for _, gs := range gridServices {
		for _, be := range bejobs.EvaluationTypes() {
			rowR := []string{gs.FocusPod + "/" + gs.Service, string(be), "Rhythm"}
			rowH := []string{gs.FocusPod + "/" + gs.Service, string(be), "Heracles"}
			for _, load := range loads {
				cmp, err := ctx.gridRun(gridKey{gs.Service, be, load})
				if err != nil {
					return nil, err
				}
				rv := get(cmp.Rhythm.PerPod[gs.FocusPod])
				hv := get(cmp.Heracles.PerPod[gs.FocusPod])
				rowR = append(rowR, f3(rv))
				rowH = append(rowH, f3(hv))
				improveSum += rv - hv
				improveN++
				if load == 0.85 {
					rhythmAt85 += rv
					heraclesAt85 += hv
				}
			}
			t.AddRow(rowR...)
			t.AddRow(rowH...)
		}
	}
	t.Note("mean Rhythm-Heracles gap across the grid: %+.3f", improveSum/float64(improveN))
	status := "OK"
	if rhythmAt85 <= heraclesAt85 {
		status = "MISMATCH"
	}
	t.Note("at 85%% load: Rhythm total %.3f vs Heracles %.3f — paper: Heracles drops to zero BE co-location at 85%% [%s]",
		rhythmAt85, heraclesAt85, status)
	return t, nil
}

// serviceGrid renders Figs. 12-14: the relative improvement of a
// service-level metric, (Rhythm-Heracles)/Heracles.
func serviceGrid(ctx *Context, id, metric string, get func(*engine.RunStats) float64) (*Table, error) {
	if err := ctx.ensureGrid(); err != nil {
		return nil, err
	}
	loads := gridLoads(ctx.Opts.Quick)
	cols := []string{"service", "BE"}
	for _, l := range loads {
		cols = append(cols, pct(l))
	}
	cols = append(cols, "mean")
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s improvement (Rhythm-Heracles)/Heracles", metric),
		Columns: cols,
	}
	perService := map[string]float64{}
	perServiceN := map[string]int{}
	for _, gs := range gridServices {
		for _, be := range bejobs.EvaluationTypes() {
			row := []string{gs.Service, string(be)}
			sum := 0.0
			for _, load := range loads {
				cmp, err := ctx.gridRun(gridKey{gs.Service, be, load})
				if err != nil {
					return nil, err
				}
				imp := core.Improvement(get(cmp.Rhythm), get(cmp.Heracles))
				sum += imp
				row = append(row, pct(imp))
			}
			mean := sum / float64(len(loads))
			row = append(row, pct(mean))
			perService[gs.Service] += mean
			perServiceN[gs.Service]++
			t.AddRow(row...)
		}
	}
	best, bestV := "", -1.0
	for _, gs := range gridServices {
		v := perService[gs.Service] / float64(perServiceN[gs.Service])
		t.Note("%s: mean %s improvement %s", gs.Service, metric, pct(v))
		if v > bestV {
			best, bestV = gs.Service, v
		}
	}
	status := "OK"
	if bestV <= 0 {
		status = "MISMATCH"
	}
	t.Note("best service: %s (%s) — paper: Solr benefits the most; improvements positive everywhere [%s]",
		best, pct(bestV), status)
	return t, nil
}
