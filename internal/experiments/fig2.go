package experiments

import (
	"math"

	"rhythm/internal/bejobs"
	"rhythm/internal/cluster"
	"rhythm/internal/interference"
	"rhythm/internal/queueing"
	"rhythm/internal/sim"
	"rhythm/internal/workload"
)

func init() {
	register("fig2", "Impact of interference on the 99th percentile latency of LC components (Fig. 2a/2b)", fig2)
	register("fig7", "Servpod sensitivity vs contribution (Fig. 7)", fig7)
}

// fig2Sources are the §2 interference groups, in figure order.
var fig2Sources = []string{
	"stream_dram(big)", "stream_dram(small)",
	"stream_llc(big)", "stream_llc(small)",
	"DVFS", "iperf", "CPU_stress",
}

// sourceBE maps a Fig. 2 interference group to its BE job; DVFS has none.
func sourceBE(src string) (bejobs.Type, bool) {
	switch src {
	case "stream_dram(big)":
		return bejobs.StreamDRAMBig, true
	case "stream_dram(small)":
		return bejobs.StreamDRAMSmall, true
	case "stream_llc(big)":
		return bejobs.StreamLLCBig, true
	case "stream_llc(small)":
		return bejobs.StreamLLCSmall, true
	case "iperf":
		return bejobs.Iperf, true
	case "CPU_stress":
		return bejobs.CPUStress, true
	default:
		return "", false
	}
}

// e2eP99Into samples the service's end-to-end p99 with the given
// per-component sojourn distributions, writing the n latency samples into
// buf (grown only when too small) and returning the possibly-grown buffer
// for the next call, so a figure's sweep over loads and interference
// sources allocates one sample buffer total. The per-component lognormal
// parameters are flattened out of the Sojourn values once per call, and
// the tail is computed by O(n) selection; the draws and the estimate are
// bit-identical to the seed's per-sample Sojourn.Sample + copy/sort
// Quantile (frozen contract, sim.RNG.NormFloat64).
func e2eP99Into(buf []float64, svc *workload.Service, sj map[string]queueing.Sojourn, n int, rng *sim.RNG) (float64, []float64) {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	params := make(map[string][2]float64, len(sj))
	for c, s := range sj {
		mu, sg := s.LogParams()
		params[c] = [2]float64{mu, sg}
	}
	sample := func(c string) float64 {
		p := params[c]
		return math.Exp(p[0] + p[1]*rng.NormFloat64())
	}
	for i := range buf {
		buf[i] = svc.Graph.Latency(sample)
	}
	return sim.SelectQuantile(buf, 0.99), buf
}

// staticColocationP99 computes the service p99 when one component is
// statically co-located with an interference source (§2's methodology: no
// controller, pinning only, shared LLC/DRAM/network). buf is the shared
// sample scratch (see e2eP99Into).
func staticColocationP99(buf []float64, svc *workload.Service, target string, src string,
	load float64, n int, rng *sim.RNG) (float64, []float64) {
	model := interference.Unisolated()
	spec := cluster.DefaultSpec()
	sj := make(map[string]queueing.Sojourn, len(svc.Components))
	for _, c := range svc.Components {
		qps := load * svc.MaxLoadQPS
		if c.Name != target {
			sj[c.Name] = c.Station.Solo(qps)
			continue
		}
		inflate, cvInflate, freq := 1.0, 1.0, 1.0
		if be, ok := sourceBE(src); ok {
			spec2 := spec
			beSpec := bejobs.MustLookup(be)
			demand := beSpec.PerCore.Scale(float64(beSpec.SoloCores))
			press := model.Pressure(spec2, c.DemandAt(load), demand)
			inflate, cvInflate = model.Inflation(c, press)
		} else {
			// DVFS: run the component's cores at the lowest operating
			// point, as §2 does with the frequency governor.
			freqInfl := interference.FreqInflation(c, spec.MinGHz, spec.BaseGHz)
			inflate = freqInfl
		}
		sj[c.Name] = c.Station.At(qps, inflate, cvInflate, freq)
	}
	return e2eP99Into(buf, svc, sj, n, rng)
}

// fig2 characterizes the inconsistent interference tolerance of LC
// components: per component x interference source x load, the increase in
// service p99 relative to the solo run.
func fig2(ctx *Context) (*Table, error) {
	n := 20000
	if ctx.Opts.Quick {
		n = 6000
	}
	t := &Table{
		ID:      "fig2",
		Title:   "99th-percentile latency increase under static co-location (% over solo)",
		Columns: []string{"service", "component", "interference", "20%", "40%", "60%", "80%"},
	}
	loads := []float64{0.2, 0.4, 0.6, 0.8}

	type pair struct {
		svc  *workload.Service
		pods []string
	}
	cases := []pair{
		{workload.Redis(), []string{"Master", "Slave"}},
		{workload.ECommerce(), []string{"Tomcat", "MySQL"}},
	}
	rng := ctx.ScratchRNG("fig2")
	var buf []float64 // shared sample scratch across the whole sweep

	// increase[src][pod] accumulates the mean increase for the notes.
	increase := map[string]map[string]float64{}
	for _, cs := range cases {
		solo := map[float64]float64{}
		for _, load := range loads {
			sj := make(map[string]queueing.Sojourn)
			for _, c := range cs.svc.Components {
				sj[c.Name] = c.Station.Solo(load * cs.svc.MaxLoadQPS)
			}
			solo[load], buf = e2eP99Into(buf, cs.svc, sj, n, rng)
		}
		for _, pod := range cs.pods {
			for _, src := range fig2Sources {
				row := []string{cs.svc.Name, pod, src}
				sum := 0.0
				for _, load := range loads {
					var p99 float64
					p99, buf = staticColocationP99(buf, cs.svc, pod, src, load, n, rng)
					inc := (p99 - solo[load]) / solo[load]
					sum += inc
					row = append(row, pct(inc))
				}
				if increase[src] == nil {
					increase[src] = map[string]float64{}
				}
				increase[src][pod] = sum / float64(len(loads))
				t.AddRow(row...)
			}
		}
	}

	// Headline orderings from §2.
	note := func(src, hi, lo string) {
		h, l := increase[src][hi], increase[src][lo]
		status := "OK"
		if h <= l {
			status = "MISMATCH"
		}
		t.Note("%s: %s (+%.0f%%) vs %s (+%.0f%%) — paper: %s more sensitive [%s]",
			src, hi, 100*h, lo, 100*l, hi, status)
	}
	note("stream_llc(big)", "Master", "Slave")
	note("stream_dram(big)", "Master", "Slave")
	note("CPU_stress", "Master", "Slave")
	note("stream_dram(big)", "MySQL", "Tomcat")
	note("stream_llc(big)", "MySQL", "Tomcat")
	note("iperf", "MySQL", "Tomcat")
	note("DVFS", "Tomcat", "MySQL")
	return t, nil
}

// fig7 plots contribution (x) against sensitivity (y): the validation that
// higher-contribution Servpods are more interference-sensitive whatever
// the BE is.
func fig7(ctx *Context) (*Table, error) {
	sys, err := ctx.System("E-commerce")
	if err != nil {
		return nil, err
	}
	n := 12000
	if ctx.Opts.Quick {
		n = 5000
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Servpod sensitivity vs contribution (E-commerce, load 60%)",
		Columns: []string{"servpod", "contribution", "mixed", "stream-dram", "CPU-stress", "stream-llc"},
	}
	svc := sys.Service
	rng := ctx.ScratchRNG("fig7")
	var buf []float64
	const load = 0.6

	soloSJ := make(map[string]queueing.Sojourn)
	for _, c := range svc.Components {
		soloSJ[c.Name] = c.Station.Solo(load * svc.MaxLoadQPS)
	}
	solo, buf := e2eP99Into(buf, svc, soloSJ, n, rng)

	groups := map[string][]string{
		"mixed":       {"stream_dram(big)", "stream_llc(big)", "CPU_stress", "iperf"},
		"stream-dram": {"stream_dram(big)"},
		"CPU-stress":  {"CPU_stress"},
		"stream-llc":  {"stream_llc(big)"},
	}
	order := []string{"mixed", "stream-dram", "CPU-stress", "stream-llc"}

	var contribs []float64
	sens := map[string][]float64{}
	for _, c := range svc.Components {
		contrib, _ := sys.Profile.Contribution(c.Name)
		contribs = append(contribs, contrib.Normalized)
		row := []string{c.Name, f3(contrib.Normalized)}
		for _, g := range order {
			sum := 0.0
			for _, src := range groups[g] {
				var p99 float64
				p99, buf = staticColocationP99(buf, svc, c.Name, src, load, n, rng)
				sum += (p99 - solo) / solo
			}
			v := sum / float64(len(groups[g]))
			sens[g] = append(sens[g], v)
			row = append(row, f2(v))
		}
		t.AddRow(row...)
	}
	for _, g := range order {
		r := sim.Pearson(contribs, sens[g])
		status := "OK"
		if r <= 0 {
			status = "MISMATCH"
		}
		t.Note("Pearson(contribution, sensitivity) under %s = %.2f — paper: positive for every BE [%s]", g, r, status)
	}
	return t, nil
}
