package experiments

import (
	"sync"
	"testing"

	"rhythm/internal/sim"
)

// determinismIDs is the registry slice exercised by the serial-vs-parallel
// regression. Under -race (or -short) the full registry would multiply an
// already ~5x-slowed binary, so we keep the cheap experiments that still
// cover every concurrency mechanism: scratch-RNG experiments (fig2, fig7,
// ablations), deployment-backed figures (fig6, fig8, tab1) and the
// controller timeline (fig17). The full registry — including the grid
// prefetch and threshold sweep — runs on plain `go test`.
func determinismIDs() []string {
	if sim.RaceEnabled || testing.Short() {
		return []string{
			"fig2", "fig6", "fig7", "fig8", "tab1", "fig17",
			"ablation-pairing", "ablation-period",
		}
	}
	return IDs()
}

// TestRunAllParallelMatchesSerial is the determinism regression the
// package godoc points at: running the registry on one worker and on four
// must render byte-identical tables. Both contexts are fresh so neither
// inherits the other's singleflight results; only the process-wide profile
// cache is shared, and it is keyed by content, not by worker count.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	ids := determinismIDs()

	serialCtx := NewContext(Options{Quick: true, Seed: 2020, Jobs: 1})
	parallelCtx := NewContext(Options{Quick: true, Seed: 2020, Jobs: 4})

	serial := serialCtx.RunAll(ids, 0)
	parallel := parallelCtx.RunAll(ids, 0)

	if len(serial) != len(ids) || len(parallel) != len(ids) {
		t.Fatalf("result counts: serial %d, parallel %d, want %d",
			len(serial), len(parallel), len(ids))
	}
	for i, id := range ids {
		s, p := serial[i], parallel[i]
		if s.ID != id || p.ID != id {
			t.Fatalf("result %d out of order: serial %q, parallel %q, want %q",
				i, s.ID, p.ID, id)
		}
		if s.Err != nil {
			t.Fatalf("%s (serial): %v", id, s.Err)
		}
		if p.Err != nil {
			t.Fatalf("%s (jobs=4): %v", id, p.Err)
		}
		if got, want := p.Table.String(), s.Table.String(); got != want {
			t.Errorf("%s: jobs=4 table differs from serial\nserial:\n%s\njobs=4:\n%s",
				id, want, got)
		}
	}
}

func TestRunAllReportsErrorsInPlace(t *testing.T) {
	results := sharedCtx.RunAll([]string{"fig2", "no-such-figure"}, 2)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Err != nil {
		t.Fatalf("fig2: %v", results[0].Err)
	}
	if results[0].Table == nil || results[0].ID != "fig2" {
		t.Fatalf("fig2 result malformed: %+v", results[0])
	}
	if results[1].Err == nil {
		t.Fatal("unknown experiment did not surface an error")
	}
}

// TestConcurrentSystemSingleflight hammers System from several goroutines
// and checks they all land on one deployment — the singleflight contract
// the -race run of this package verifies for data safety.
func TestConcurrentSystemSingleflight(t *testing.T) {
	const workers = 8
	ctx := NewContext(Options{Quick: true, Seed: 2020, Jobs: 4})
	systems := make([]interface{}, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			systems[w], errs[w] = ctx.System("Redis")
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if systems[w] != systems[0] {
			t.Fatalf("worker %d deployed a second Redis system", w)
		}
	}
}

// TestScratchRNGDeterministic pins the fork discipline: the stream depends
// only on (seed, label), never on call order or goroutine interleaving.
func TestScratchRNGDeterministic(t *testing.T) {
	a := sharedCtx.ScratchRNG("fig2")
	_ = sharedCtx.ScratchRNG("something-else") // unrelated fork must not disturb a's stream
	b := sharedCtx.ScratchRNG("fig2")
	for i := 0; i < 16; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
	if sharedCtx.ScratchRNG("fig2").Float64() == sharedCtx.ScratchRNG("fig6").Float64() {
		t.Fatal("distinct labels produced identical first draws")
	}
}
