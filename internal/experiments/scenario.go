package experiments

import (
	"fmt"
	"time"

	"rhythm/internal/controller"
	"rhythm/internal/core"
	"rhythm/internal/engine"
	"rhythm/internal/sim"
)

func init() {
	registerScenario("scenario",
		"Rhythm vs Heracles over a workload-spec file (-scenario; not in `run all`)",
		scenarioRun)
}

// scenarioRun executes the workload spec handed in through
// Options.Scenario (the CLI's -scenario flag): it materializes the
// spec's service, deploys it through the usual offline phase, composes
// the client-class arrival mix on the scenario's own seed substream, and
// runs the mix under Rhythm and under Heracles. The table reports the
// run-level scorecard plus one row per client class with its SLO and the
// post-warmup p99 each policy delivered against it.
//
// Determinism: the pattern is built once, serially, before the two
// policy runs fan out (each run only reads it); every cell seed is
// content-derived. The table is byte-identical for every -jobs count.
func scenarioRun(ctx *Context) (*Table, error) {
	spec := ctx.Opts.Scenario
	if spec == nil {
		return nil, fmt.Errorf("experiments: the scenario experiment needs a workload spec (rhythm -scenario <file> run scenario)")
	}
	svc, err := spec.BuildService()
	if err != nil {
		return nil, err
	}
	var sys *core.System
	if spec.Service.Catalog != "" {
		// Catalog services share the context's deployment cache with the
		// paper experiments.
		sys, err = ctx.System(svc.Name)
	} else {
		sys, err = core.Deploy(svc, core.Options{
			Profile: ctx.profileOptions(),
			Slack:   ctx.slackOptions(),
			Seed:    ctx.Opts.Seed,
			Jobs:    ctx.Opts.Jobs,
		})
	}
	if err != nil {
		return nil, err
	}
	pattern, err := spec.LoadPattern(sim.SubSeed(ctx.Opts.Seed, "scenario/"+spec.Name))
	if err != nil {
		return nil, err
	}
	betypes, err := spec.BETypes()
	if err != nil {
		return nil, err
	}

	// The candidate policy facing Heracles: the -policy flag wins, then
	// the spec's `policy` field, then "rhythm" — the default reproduces
	// the original Rhythm-vs-Heracles table byte for byte. The instance
	// built here only supplies the display name (and proves the name
	// resolves with this system's thresholds before any run starts); each
	// run constructs its own fresh instance through PolicyNamed.
	candidate := "rhythm"
	if spec.Run.Policy != "" {
		candidate = spec.Run.Policy
	}
	if ctx.Opts.Policy != "" {
		candidate = ctx.Opts.Policy
	}
	candPol, err := controller.New(candidate, controller.FactoryOpts{
		Thresholds: sys.Thresholds, SLA: sys.SLA,
	})
	if err != nil {
		return nil, err
	}

	names := [2]string{candPol.Name(), "Heracles"}
	stats := [2]*engine.RunStats{}
	runErr := sim.ForEachErr(2, ctx.jobs(), func(i int) error {
		pol := core.PolicyNamed(candidate)
		if i == 1 {
			pol = core.PolicyHeracles
		}
		st, err := sys.Run(core.RunConfig{
			Pattern:        pattern,
			BETypes:        betypes,
			Duration:       spec.Duration(),
			Warmup:         spec.Warmup(),
			Seed:           ctx.Opts.Seed ^ hash("scenario/"+spec.Name+"/"+names[i]),
			Policy:         pol,
			CollectSamples: true,
			Faults:         ctx.Opts.Faults,
		})
		if err != nil {
			return err
		}
		stats[i] = st
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	// Post-warmup end-to-end p99 per policy. E2ESamples accumulate from
	// t=0 at SamplesPerTick per tick; slice off the warmup ticks so the
	// per-class verdicts use the same measurement window as the run
	// statistics.
	p99 := [2]float64{}
	for i, st := range stats {
		p99[i] = sim.Quantile(postWarmupSamples(st.E2ESamples, spec.Warmup()), 0.99)
	}

	t := &Table{
		ID: "scenario",
		Title: fmt.Sprintf("Scenario %q: %s under the spec's client mix (%d classes, baseline %.0f%%)",
			spec.Name, svc.Name, len(spec.Clients), 100*spec.Run.BaselineLoad),
		Columns: []string{"row", "detail", "SLO ms", names[0], names[1]},
	}
	addMetric := func(row, detail string, f func(*engine.RunStats) string) {
		t.AddRow(row, detail, "-", f(stats[0]), f(stats[1]))
	}
	t.AddRow("p99 ms", "post-warmup e2e", "-", ms(p99[0]), ms(p99[1]))
	addMetric("SLO viol s", "window p99 vs derived SLA", func(st *engine.RunStats) string {
		return fmt.Sprintf("%.0f", st.ViolationSeconds)
	})
	addMetric("worst p99/SLA", "sliding window", func(st *engine.RunStats) string {
		return f3(st.WorstP99 / sys.SLA)
	})
	addMetric("BE thpt", "mean normalized", func(st *engine.RunStats) string {
		return f3(st.MeanBEThroughput())
	})
	addMetric("EMU", "effective machine util", func(st *engine.RunStats) string {
		return f3(st.MeanEMU())
	})
	addMetric("BE kills", "", func(st *engine.RunStats) string {
		return fmt.Sprintf("%d", st.TotalKills())
	})
	ok := [2]int{}
	for i := range spec.Clients {
		c := &spec.Clients[i]
		slo := c.SLOSeconds(sys.SLA)
		cells := [2]string{}
		for p := range stats {
			verdict := "ok"
			if p99[p] > slo {
				verdict = "VIOL"
			} else {
				ok[p]++
			}
			cells[p] = fmt.Sprintf("%.2fxSLO %s", p99[p]/slo, verdict)
		}
		t.AddRow("class "+c.Class,
			fmt.Sprintf("%s x%.2f", c.Arrival.Process, c.RateFraction),
			fmt.Sprintf("%.2f", 1000*slo), cells[0], cells[1])
	}
	t.Note("derived SLA %.2fms; %s meets %d/%d class SLOs, Heracles %d/%d",
		1000*sys.SLA, names[0], ok[0], len(spec.Clients), ok[1], len(spec.Clients))
	t.Note("BE throughput improvement (%s vs Heracles): %s",
		names[0], pct(core.Improvement(stats[0].MeanBEThroughput(), stats[1].MeanBEThroughput())))
	return t, nil
}

// postWarmupSamples drops the warmup-period prefix of an E2ESamples
// slice: the engine appends SamplesPerTick samples per TickDt tick from
// t=0, so the first floor(warmup/tickDt)*samplesPerTick entries fall in
// the warmup window. Uses the engine defaults the scenario runs run with.
func postWarmupSamples(samples []float64, warmup time.Duration) []float64 {
	const (
		tickDt         = 100 * time.Millisecond
		samplesPerTick = 80
	)
	skip := int(warmup/tickDt) * samplesPerTick
	if skip >= len(samples) {
		return nil
	}
	return samples[skip:]
}
